// ext_semantic_hit: what the containment-aware semantic tier buys on a
// range-heavy read workload (docs/SEMANTIC.md).
//
// The Set Query BENCH table carries hash indexes on every column but an
// ordered index only on KSEQ, so a range predicate on K100K gives the
// access-path planner nothing: every cold miss is a full scan. The
// workload caches one wide superset (`K100K BETWEEN 1 AND 5000`, ~5% of
// the table) and then issues many *distinct* narrow sub-ranges — exactly
// the pattern where exact-fingerprint caching gets ~0% hits but each probe
// is answerable from the cached superset by a vectorized residual filter.
//
// Self-checks (gate the exit code):
//   * every semantic-hit answer equals the uncached oracle, cell for cell;
//   * hit rate with the semantic tier is >= SEM_MIN_LIFT (default 5) times
//     the exact-only hit rate on the identical workload;
//   * at >= SEM_GATE_ROWS (default 500k) rows, the mean semantic hit is
//     >= SEM_MIN_SPEEDUP (default 10) times faster than the mean cold-miss
//     full scan (skipped below the threshold — quick/CI mode).
//
// Env knobs: SEM_ROWS (default 1'000'000), SEM_PROBES (default 200),
// SEM_REPEATS (default 20), SEM_MIN_SPEEDUP, SEM_MIN_LIFT, SEM_GATE_ROWS.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness.h"
#include "middleware/query_engine.h"
#include "setquery/bench_table.h"
#include "storage/database.h"

namespace qc {
namespace {

using benchharness::BenchMetric;
using benchharness::Check;
using benchharness::EnvU64;
using benchharness::Fmt;
using benchharness::PrintRow;

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

/// Distinct narrow [lo, hi] sub-ranges of [1, span], deterministic.
struct Ranges {
  explicit Ranges(uint64_t seed) : rng(seed) {}
  std::pair<int64_t, int64_t> Next(int64_t span, int64_t width_max) {
    const int64_t width = rng.Uniform(1, width_max);
    const int64_t lo = rng.Uniform(1, span - width);
    return {lo, lo + width};
  }
  Rng rng;
};

std::string RangeSql(int64_t lo, int64_t hi) {
  return "SELECT KSEQ, K100K FROM BENCH WHERE K100K BETWEEN " + std::to_string(lo) + " AND " +
         std::to_string(hi);
}

int Run() {
  const uint64_t rows = EnvU64("SEM_ROWS", 1'000'000);
  const uint64_t probes = EnvU64("SEM_PROBES", 200);
  const uint64_t repeats = EnvU64("SEM_REPEATS", 20);
  const double min_speedup = static_cast<double>(EnvU64("SEM_MIN_SPEEDUP", 10));
  const double min_lift = static_cast<double>(EnvU64("SEM_MIN_LIFT", 5));
  const uint64_t gate_rows = EnvU64("SEM_GATE_ROWS", 500'000);
  constexpr int64_t kSupersetHi = 5'000;  // K100K in [1, 5000] — ~5% of rows
  constexpr int64_t kProbeWidth = 100;

  std::cout << "ext_semantic_hit: containment-aware serving from a cached superset\n"
            << "rows=" << rows << " probes=" << probes << " repeats=" << repeats
            << " min_speedup=" << min_speedup << "x min_lift=" << min_lift << "x\n\n";

  std::vector<BenchMetric> metrics;
  storage::Database db;
  setquery::BenchTable bench(db, rows);

  // ---- Part 1: latency — cold full scan vs semantic residual filter ----
  middleware::CachedQueryEngine engine(db, {});

  // Cold misses: distinct ranges *outside* the superset, so each one is a
  // genuine full scan through the miss path.
  Ranges cold_ranges(0xc01d);
  double cold_ms = 0.0;
  const uint64_t cold_reps = 5;
  for (uint64_t i = 0; i < cold_reps; ++i) {
    auto [lo, hi] = cold_ranges.Next(80'000, kProbeWidth);
    auto q = engine.Prepare(RangeSql(kSupersetHi + lo, kSupersetHi + hi));
    cold_ms += TimeMs([&] { engine.Execute(q); });
  }
  cold_ms /= static_cast<double>(cold_reps);

  // Warm the superset (one full scan), then time contained probes.
  engine.ExecuteSql(RangeSql(1, kSupersetHi));
  Ranges hit_ranges(0x5e11);
  double hit_ms = 0.0;
  uint64_t hit_queries = 0;
  bool all_match = true;
  for (uint64_t i = 0; i < probes; ++i) {
    auto [lo, hi] = hit_ranges.Next(kSupersetHi, kProbeWidth);
    auto q = engine.Prepare(RangeSql(lo, hi));
    middleware::CachedQueryEngine::ExecuteResult got;
    hit_ms += TimeMs([&] { got = engine.Execute(q); });
    ++hit_queries;
    if (i % 20 == 0) {  // differential spot-checks; tests/semantic has the full sweep
      all_match = all_match && got.result->Equals(engine.ExecuteUncached(*q));
    }
  }
  hit_ms /= static_cast<double>(hit_queries);
  const cache::CacheStats cs = engine.cache_stats();
  const double speedup = cold_ms / hit_ms;

  const std::vector<int> widths = {26, 12, 12, 10};
  PrintRow({"path", "avg ms", "queries", ""}, widths);
  PrintRow({"cold miss (full scan)", Fmt(cold_ms, 2), std::to_string(cold_reps), ""}, widths);
  PrintRow({"semantic hit (residual)", Fmt(hit_ms, 3), std::to_string(hit_queries),
            Fmt(speedup, 1) + "x"},
           widths);
  std::cout << "semantic_hits=" << cs.semantic_hits << " probes=" << cs.semantic_probes
            << " residual_avg_us="
            << Fmt(cs.semantic_hits
                       ? static_cast<double>(cs.residual_filter_ns) / 1e3 /
                             static_cast<double>(cs.semantic_hits)
                       : 0.0,
                   1)
            << "\n\n";

  Check(all_match, "semantic-hit answers match the uncached oracle");
  Check(cs.semantic_hits >= probes, "every contained probe was served semantically");
  metrics.push_back({"cold_miss_ms", cold_ms, "ms_per_query", {{"rows", std::to_string(rows)}}});
  metrics.push_back({"semantic_hit_ms", hit_ms, "ms_per_query", {{"rows", std::to_string(rows)}}});
  metrics.push_back({"semantic_speedup", speedup, "ratio", {{"rows", std::to_string(rows)}}});
  if (rows >= gate_rows) {
    Check(speedup >= min_speedup, "semantic hit is >= " + Fmt(min_speedup, 0) +
                                      "x faster than a cold full-scan miss");
  } else {
    std::cout << "(speedup gate skipped below " << gate_rows << " rows)\n";
  }

  // ---- Part 2: hit-rate lift — identical workload, tier on vs off ------
  // Workload: warm the superset, then `probes` distinct sub-ranges plus
  // `repeats` re-issues of already-seen ranges. Exact-only caching hits on
  // the re-issues alone; the semantic tier answers the distinct ranges too.
  auto run_workload = [&](bool semantic_on) {
    middleware::CachedQueryEngine::Options options;
    options.cache.semantic_lookup = semantic_on;
    middleware::CachedQueryEngine e(db, options);
    uint64_t hits = 0, total = 0;
    e.ExecuteSql(RangeSql(1, kSupersetHi));
    ++total;
    Ranges ranges(0x11f7);
    std::vector<std::string> seen;
    for (uint64_t i = 0; i < probes; ++i) {
      auto [lo, hi] = ranges.Next(kSupersetHi, kProbeWidth);
      seen.push_back(RangeSql(lo, hi));
      hits += e.ExecuteSql(seen.back()).cache_hit ? 1 : 0;
      ++total;
    }
    Rng rep_rng(0xeeee);
    for (uint64_t i = 0; i < repeats; ++i) {
      hits += e.ExecuteSql(seen[static_cast<size_t>(rep_rng.Uniform(
                  0, static_cast<int64_t>(seen.size()) - 1))])
                  .cache_hit
                  ? 1
                  : 0;
      ++total;
    }
    return static_cast<double>(hits) / static_cast<double>(total);
  };

  const double exact_rate = run_workload(false);
  const double semantic_rate = run_workload(true);
  const double lift = semantic_rate / std::max(exact_rate, 1e-9);
  std::cout << "\nhit rate, identical workload (" << probes + repeats + 1 << " queries):\n"
            << "  exact-only fingerprint cache: " << Fmt(exact_rate * 100, 1) << "%\n"
            << "  with semantic tier:           " << Fmt(semantic_rate * 100, 1) << "%  ("
            << Fmt(lift, 1) << "x lift)\n";
  metrics.push_back({"hit_rate", exact_rate, "fraction", {{"tier", "exact"}}});
  metrics.push_back({"hit_rate", semantic_rate, "fraction", {{"tier", "semantic"}}});
  metrics.push_back({"hit_rate_lift", lift, "ratio", {}});
  Check(lift >= min_lift, "semantic tier lifts the hit rate >= " + Fmt(min_lift, 0) +
                              "x over exact-only lookup");

  benchharness::WriteBenchJson("ext_semantic_hit", metrics);
  return benchharness::Failures();
}

}  // namespace
}  // namespace qc

int main() { return qc::Run(); }
