// Extension bench: distributed coherence traffic (the paper's motivation
// for Fig. 13 — "distributed caches running on clustered servers ...
// might require some coherence traffic for invalidations. The average
// number of invalidations per transaction ... can be used for predicting
// the invalidation traffic if a remote cache is used").
//
// A three-node rule-server group (paper Fig. 1) runs the Set Query update
// mix; we measure, per policy and per invalidation-delivery latency:
//   * cluster hit rate,
//   * remote invalidations per update (the Fig. 13 prediction realized),
//   * stale hits served inside the latency window.
#include <iostream>

#include "cluster/cluster.h"
#include "harness.h"
#include "setquery/queries.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct Row {
  double hit_rate, remote_per_update, stale_rate;
};

Row RunCluster(const FigureConfig& fig, dup::InvalidationPolicy policy, uint64_t latency) {
  storage::Database db;
  setquery::BenchTable bench(db, fig.rows);
  cluster::ClusterConfig config;
  config.nodes = 3;
  config.policy = policy;
  // Sound dependency mode (NOT paper-fidelity): aggregate inputs and
  // projections are tracked, so with synchronous delivery every hit is
  // exact and any staleness measured is purely the latency window.
  config.latency_ticks = latency;
  cluster::CacheCluster cluster(db, config);

  const auto specs = setquery::BuildAllQueries(bench);
  std::vector<std::shared_ptr<const sql::BoundQuery>> queries;
  for (const auto& spec : specs) queries.push_back(cluster.Prepare(spec.sql));

  Rng rng(fig.seed);
  // Warm every node.
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    for (const auto& query : queries) cluster.ExecuteAt(n, query);
  }

  const auto warm = cluster.stats();
  for (uint64_t t = 0; t < fig.transactions; ++t) {
    if (rng.Chance(0.05)) {  // 5% update rate, 2 attrs per update
      const size_t writer = static_cast<size_t>(rng.Uniform(0, 2));
      cluster.PerformUpdate(writer, [&] {
        const auto row = bench.RandomRow(rng);
        std::vector<std::pair<uint32_t, Value>> sets;
        for (int i = 0; i < 2; ++i) {
          const auto col = static_cast<uint32_t>(rng.Uniform(0, 12));
          sets.emplace_back(col, Value(bench.RandomValue(col, rng)));
        }
        bench.table().Update(row, sets);
      });
    } else {
      cluster.Execute(queries[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1))]);
    }
  }

  const auto stats = cluster.stats();
  Row out;
  const double queries_run = static_cast<double>(stats.queries - warm.queries);
  const double hits = static_cast<double>(stats.hits - warm.hits);
  out.hit_rate = queries_run > 0 ? 100.0 * hits / queries_run : 0.0;
  const double updates = static_cast<double>(stats.updates - warm.updates);
  out.remote_per_update =
      updates > 0 ? static_cast<double>(stats.remote_invalidations - warm.remote_invalidations) /
                        updates
                  : 0.0;
  out.stale_rate = hits > 0 ? 100.0 * static_cast<double>(stats.stale_hits - warm.stale_hits) / hits
                            : 0.0;
  return out;
}

}  // namespace

int main() {
  FigureConfig fig = FigureConfig::FromEnv();
  fig.rows = EnvU64("SETQUERY_ROWS", 20'000);
  fig.transactions = EnvU64("SETQUERY_TXNS", 3'000);
  PrintHeader("Extension: 3-node cluster coherence traffic (5% updates, 2 attrs)", fig);

  const std::vector<uint64_t> latencies = {0, 10, 50};
  const std::vector<int> widths = {10, 12, 12, 16, 16, 12, 12};
  PrintRow({"latency", "II hit%", "III hit%", "II rem-inv/upd", "III rem-inv/upd", "II stale%",
            "III stale%"},
           widths);

  std::vector<Row> ii_rows, iii_rows;
  for (uint64_t latency : latencies) {
    ii_rows.push_back(RunCluster(fig, dup::InvalidationPolicy::kValueUnaware, latency));
    iii_rows.push_back(RunCluster(fig, dup::InvalidationPolicy::kValueAware, latency));
    PrintRow({std::to_string(latency), Fmt(ii_rows.back().hit_rate),
              Fmt(iii_rows.back().hit_rate), Fmt(ii_rows.back().remote_per_update, 2),
              Fmt(iii_rows.back().remote_per_update, 2), Fmt(ii_rows.back().stale_rate, 2),
              Fmt(iii_rows.back().stale_rate, 2)},
             widths);
  }

  std::cout << "\nChecks:\n";
  for (size_t i = 0; i < latencies.size(); ++i) {
    Check(iii_rows[i].remote_per_update < ii_rows[i].remote_per_update,
          "value-aware DUP cuts coherence traffic at latency " + std::to_string(latencies[i]));
    Check(iii_rows[i].hit_rate > ii_rows[i].hit_rate,
          "value-aware DUP lifts cluster hit rate at latency " + std::to_string(latencies[i]));
  }
  Check(ii_rows[0].stale_rate == 0.0 && iii_rows[0].stale_rate == 0.0,
        "synchronous delivery (latency 0) never serves stale hits");
  Check(iii_rows.back().stale_rate >= iii_rows.front().stale_rate,
        "staleness grows with delivery latency");
  return Failures() == 0 ? 0 : 1;
}
