// Extension bench: concurrent query serving. K query threads hammer point
// SELECTs while one update thread issues throttled UPDATEs, under the three
// paper policies. Exercises the sharded GPS cache and the update-epoch
// admission guard (docs/CONCURRENCY.md); compares single-lock (shards=1)
// against the sharded cache at the highest thread count.
//
// Env overrides: CONC_ROWS (table size), CONC_MS (measure window per run,
// milliseconds), CONC_UPDATE_US (updater throttle), CONC_DB_US (simulated
// per-miss database latency).
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct RunConfig {
  dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware;
  int query_threads = 1;
  size_t shards = 16;
  uint64_t rows = 4096;
  uint64_t measure_ms = 500;
  uint64_t update_throttle_us = 500;
  uint64_t db_latency_us = 20;
};

struct Outcome {
  double queries_per_second = 0;
  double hit_rate = 0;       // percent
  uint64_t updates = 0;
  uint64_t stale_discards = 0;
};

Outcome Run(const RunConfig& config) {
  storage::Database db;
  auto& table = db.CreateTable(
      "KV", storage::Schema({{"K", ValueType::kInt, false}, {"V", ValueType::kInt, false}}));
  table.CreateHashIndex(0);
  for (uint64_t k = 0; k < config.rows; ++k) {
    table.Insert({Value(static_cast<int64_t>(k)), Value(0)});
  }

  middleware::CachedQueryEngine::Options options;
  options.policy = config.policy;
  options.cache.shards = config.shards;
  options.simulated_db_latency = std::chrono::microseconds(config.db_latency_us);
  middleware::CachedQueryEngine engine(db, options);
  auto query = engine.Prepare("SELECT V FROM KV WHERE K = $1");

  // Warm the cache single-threaded so the measured window reflects the
  // steady state (hits + invalidation-driven misses), not cold-start misses.
  for (uint64_t k = 0; k < config.rows; ++k) {
    engine.Execute(query, {Value(static_cast<int64_t>(k))});
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_queries{0};

  std::vector<std::thread> readers;
  readers.reserve(config.query_threads);
  for (int t = 0; t < config.query_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t k = rng.Uniform(0, static_cast<int64_t>(config.rows) - 1);
        engine.Execute(query, {Value(k)});
        ++local;
      }
      total_queries.fetch_add(local);
    });
  }

  uint64_t updates = 0;
  {
    Rng rng(7);
    int64_t version = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(config.measure_ms);
    auto next_update = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::chrono::steady_clock::now() >= next_update) {
        const int64_t k = rng.Uniform(0, static_cast<int64_t>(config.rows) - 1);
        engine.ExecuteDml("UPDATE KV SET V = $1 WHERE K = $2", {Value(++version), Value(k)});
        ++updates;
        next_update += std::chrono::microseconds(config.update_throttle_us);
      } else {
        std::this_thread::yield();
      }
    }
    stop.store(true);
  }
  for (auto& reader : readers) reader.join();

  const auto stats = engine.stats();
  Outcome out;
  out.queries_per_second =
      static_cast<double>(total_queries.load()) / (static_cast<double>(config.measure_ms) / 1000.0);
  out.hit_rate = 100.0 *
                 static_cast<double>(stats.cache_hits.load(std::memory_order_relaxed)) /
                 static_cast<double>(std::max<uint64_t>(1, stats.executions.load()));
  out.updates = updates;
  out.stale_discards = stats.stale_discards.load(std::memory_order_relaxed);
  return out;
}

// dup::PolicyName spells out the mechanism; the table needs short labels.
const char* ShortPolicyName(dup::InvalidationPolicy policy) {
  switch (policy) {
    case dup::InvalidationPolicy::kFlushAll: return "Policy I";
    case dup::InvalidationPolicy::kValueUnaware: return "Policy II";
    case dup::InvalidationPolicy::kValueAware: return "Policy III";
    default: return "?";
  }
}

}  // namespace

int main() {
  RunConfig base;
  base.rows = EnvU64("CONC_ROWS", 4096);
  base.measure_ms = EnvU64("CONC_MS", 500);
  base.update_throttle_us = EnvU64("CONC_UPDATE_US", 500);
  base.db_latency_us = EnvU64("CONC_DB_US", 20);

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "=== Extension: concurrent query throughput (" << base.rows << " rows, "
            << base.measure_ms << " ms/run, 1 updater @" << base.update_throttle_us
            << " us, miss penalty " << base.db_latency_us << " us, " << cores
            << " hardware threads) ===\n\n";

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll, dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware};

  const std::vector<int> widths = {12, 10, 14, 12, 10, 10};
  PrintRow({"policy", "threads", "queries/s", "hit rate %", "updates", "stale"}, widths);

  double policy3_1t = 0, policy3_8t = 0;
  for (dup::InvalidationPolicy policy : policies) {
    for (int threads : thread_counts) {
      RunConfig config = base;
      config.policy = policy;
      config.query_threads = threads;
      const Outcome out = Run(config);
      if (policy == dup::InvalidationPolicy::kValueAware) {
        if (threads == 1) policy3_1t = out.queries_per_second;
        if (threads == 8) policy3_8t = out.queries_per_second;
      }
      PrintRow({ShortPolicyName(policy), std::to_string(threads), Fmt(out.queries_per_second, 0),
                Fmt(out.hit_rate), std::to_string(out.updates),
                std::to_string(out.stale_discards)},
               widths);
    }
  }

  // Single global lock vs. sharded cache at the highest thread count.
  RunConfig single = base;
  single.query_threads = 8;
  single.shards = 1;
  const Outcome one_shard = Run(single);
  RunConfig sharded = single;
  sharded.shards = 16;
  const Outcome sixteen_shards = Run(sharded);
  std::cout << "\n";
  PrintRow({"shards=1", "8", Fmt(one_shard.queries_per_second, 0), Fmt(one_shard.hit_rate),
            std::to_string(one_shard.updates), std::to_string(one_shard.stale_discards)},
           widths);
  PrintRow({"shards=16", "8", Fmt(sixteen_shards.queries_per_second, 0),
            Fmt(sixteen_shards.hit_rate), std::to_string(sixteen_shards.updates),
            std::to_string(sixteen_shards.stale_discards)},
           widths);

  std::cout << "\nChecks:\n";
  Check(policy3_1t > 0 && policy3_8t > 0, "all configurations completed and served queries");
  if (cores >= 8) {
    Check(policy3_8t > 2.0 * policy3_1t,
          "sharded cache scales: >2x aggregate q/s from 1 to 8 query threads (Policy III)");
    Check(sixteen_shards.queries_per_second > one_shard.queries_per_second,
          "16 shards beat the single global lock at 8 threads");
  } else {
    std::cout << "  (scaling checks skipped: only " << cores
              << " hardware threads; need >= 8 for a meaningful 1->8 comparison)\n";
  }
  return Failures() == 0 ? 0 : 1;
}
