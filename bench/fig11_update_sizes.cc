// Figure 11: cache hit rate vs. update size (% of the 13 attributes
// modified per update transaction), update rate fixed at 2 %.
//
// Paper shape claim: "the benefits of using value-aware invalidation
// increase with the proportion of attributes being updated per
// transaction."
#include <iostream>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Figure 11: hit rate vs. update size (update rate 2%)", config);

  const std::vector<int> attrs = {1, 2, 6, 13};  // 7.69 / 15.38 / 46.15 / 100 %
  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
  };

  std::vector<std::vector<double>> series(policies.size());
  const std::vector<int> widths = {10, 12, 12, 12};
  PrintRow({"size %", "Policy I", "Policy II", "Policy III"}, widths);
  for (int k : attrs) {
    setquery::WorkloadConfig workload;
    workload.update_rate = 0.02;
    workload.attributes_per_update = k;
    std::vector<double> row;
    for (size_t p = 0; p < policies.size(); ++p) {
      const auto result = RunOne(config, policies[p], workload);
      series[p].push_back(result.HitRatePercent());
      row.push_back(result.HitRatePercent());
    }
    PrintRow({Fmt(100.0 * k / 13.0, 2), Fmt(row[0]), Fmt(row[1]), Fmt(row[2])}, widths);
  }

  std::cout << "\nShape checks vs. paper:\n";
  for (size_t i = 0; i < attrs.size(); ++i) {
    Check(series[2][i] >= series[1][i] && series[1][i] >= series[0][i] - 1.0,
          "III >= II >= I at " + std::to_string(attrs[i]) + " attrs/update");
  }
  const double gap_small = series[2].front() - series[1].front();
  const double gap_large = series[2].back() - series[1].back();
  Check(gap_large > gap_small,
        "value-aware advantage grows with update size (gap " + Fmt(gap_small) + " -> " +
            Fmt(gap_large) + ")");
  Check(std::abs(series[0].front() - series[0].back()) < 8,
        "Policy I is insensitive to update size (any update flushes everything)");
  return Failures() == 0 ? 0 : 1;
}
