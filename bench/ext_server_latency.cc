// Extension bench: end-to-end wire latency of the qcached serving layer.
// An in-process QcServer wraps a warm CachedQueryEngine behind real
// loopback TCP; client threads issue point SELECTs that all hit the cache,
// so every sample measures the full wire->hit->wire path: frame encode,
// kernel round-trip, I/O-thread dispatch, worker execution (cache hit),
// response encode, and the reply round-trip. The same hit executed
// in-process (engine.ExecuteSql) is measured alongside, so the delta
// isolates what the network boundary costs over the middleware itself
// (docs/SERVING.md).
//
// Sweeps connection counts {1, 8, 16}; prints p50/p99 per configuration
// and emits BENCH_ext_server_latency.json (see harness.h WriteBenchJson).
//
// Self-checking: every request is answered, every measured request is a
// cache hit, the server reports zero protocol errors, and p50 stays under
// a generous loopback bound so a pathological regression (e.g. a lost
// wakeup adding a poll-timeout stall) fails the run.
//
// Env overrides: SRV_CONNS (max client threads), SRV_REQS_PER_CONN,
// SRV_KEYS (distinct warm queries), SRV_THREADS (server worker threads).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "harness.h"
#include "middleware/query_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/database.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

using Clock = std::chrono::steady_clock;

std::string QueryFor(uint64_t key) {
  return "SELECT V FROM SRV WHERE K = " + std::to_string(key);
}

double PercentileUs(std::vector<double>& samples_ns, double p) {
  if (samples_ns.empty()) return 0;
  std::sort(samples_ns.begin(), samples_ns.end());
  const size_t idx = std::min(samples_ns.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(samples_ns.size())));
  return samples_ns[idx] / 1000.0;
}

struct Outcome {
  double p50_us = 0;
  double p99_us = 0;
  double requests_per_second = 0;
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t errors = 0;
};

/// N client threads, each with its own connection, hammering warm keys.
Outcome RunWire(server::QcServer& server, int conns, uint64_t reqs_per_conn, uint64_t keys) {
  std::vector<std::vector<double>> samples(conns);
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> errors{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (int t = 0; t < conns; ++t) {
    threads.emplace_back([&, t] {
      try {
        server::QcClient client;
        client.Connect("127.0.0.1", server.port());
        samples[t].reserve(reqs_per_conn);
        uint64_t key = static_cast<uint64_t>(t) * 7919;  // decorrelate walk starts
        for (uint64_t i = 0; i < reqs_per_conn; ++i) {
          key = (key + 1) % keys;
          const auto t0 = Clock::now();
          const auto result = client.Query(QueryFor(key));
          const auto t1 = Clock::now();
          samples[t].push_back(
              static_cast<double>(std::chrono::nanoseconds(t1 - t0).count()));
          if (result.cache_hit) hits.fetch_add(1, std::memory_order_relaxed);
        }
      } catch (const Error&) {
        errors.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> all;
  for (auto& s : samples) all.insert(all.end(), s.begin(), s.end());

  Outcome out;
  out.requests = all.size();
  out.hits = hits.load();
  out.errors = errors.load();
  out.p50_us = PercentileUs(all, 0.50);
  out.p99_us = PercentileUs(all, 0.99);
  out.requests_per_second = seconds > 0 ? static_cast<double>(all.size()) / seconds : 0;
  return out;
}

/// The same warm hits without the network boundary.
Outcome RunInProcess(middleware::CachedQueryEngine& engine, uint64_t reqs, uint64_t keys) {
  std::vector<double> samples;
  samples.reserve(reqs);
  Outcome out;
  uint64_t key = 0;
  for (uint64_t i = 0; i < reqs; ++i) {
    key = (key + 1) % keys;
    const auto t0 = Clock::now();
    const auto result = engine.ExecuteSql(QueryFor(key));
    const auto t1 = Clock::now();
    samples.push_back(static_cast<double>(std::chrono::nanoseconds(t1 - t0).count()));
    if (result.cache_hit) ++out.hits;
  }
  out.requests = samples.size();
  out.p50_us = PercentileUs(samples, 0.50);
  out.p99_us = PercentileUs(samples, 0.99);
  return out;
}

}  // namespace

int main() {
  const int max_conns = static_cast<int>(EnvU64("SRV_CONNS", 16));
  const uint64_t reqs_per_conn = EnvU64("SRV_REQS_PER_CONN", 2000);
  const uint64_t keys = EnvU64("SRV_KEYS", 256);
  const size_t worker_threads = EnvU64("SRV_THREADS", 8);

  storage::Database db;
  storage::Table& table =
      db.CreateTable("SRV", storage::Schema({{"K", ValueType::kInt, false},
                                             {"V", ValueType::kInt, false}}));
  for (uint64_t k = 0; k < keys; ++k) {
    table.Insert({Value(static_cast<int64_t>(k)), Value(static_cast<int64_t>(k * 3))});
  }
  table.CreateHashIndex(0);

  middleware::CachedQueryEngine engine(db, {});
  server::ServerConfig config;
  config.port = 0;
  config.worker_threads = worker_threads;
  server::QcServer server(engine, config);
  server.Start();

  // Warm every key over the wire, so measurement runs are 100% hits.
  {
    server::QcClient client;
    client.Connect("127.0.0.1", server.port());
    for (uint64_t k = 0; k < keys; ++k) client.Query(QueryFor(k));
  }

  std::cout << "=== Extension: qcached wire latency (" << keys << " warm keys, "
            << reqs_per_conn << " reqs/conn, " << worker_threads << " workers, "
            << std::thread::hardware_concurrency() << " hardware threads) ===\n\n";

  const std::vector<int> widths = {12, 12, 12, 12, 14};
  PrintRow({"path", "conns", "p50 us", "p99 us", "reqs/s"}, widths);

  const Outcome inproc = RunInProcess(engine, reqs_per_conn, keys);
  PrintRow({"in-process", "-", Fmt(inproc.p50_us), Fmt(inproc.p99_us), "-"}, widths);

  std::vector<BenchMetric> metrics;
  metrics.push_back({"hit_latency_p50", inproc.p50_us, "us", {{"path", "in_process"}}});
  metrics.push_back({"hit_latency_p99", inproc.p99_us, "us", {{"path", "in_process"}}});

  std::vector<int> sweep = {1, 8, 16};
  sweep.erase(std::remove_if(sweep.begin(), sweep.end(),
                             [&](int c) { return c > max_conns; }),
              sweep.end());
  if (sweep.empty()) sweep.push_back(max_conns);

  bool all_answered = true, all_hits = true;
  double wire_p50_1 = 0;
  for (const int conns : sweep) {
    const Outcome out = RunWire(server, conns, reqs_per_conn, keys);
    PrintRow({"wire", std::to_string(conns), Fmt(out.p50_us), Fmt(out.p99_us),
              Fmt(out.requests_per_second, 0)},
             widths);
    if (conns == 1) wire_p50_1 = out.p50_us;
    all_answered = all_answered && out.errors == 0 &&
                   out.requests == reqs_per_conn * static_cast<uint64_t>(conns);
    all_hits = all_hits && out.hits == out.requests;
    metrics.push_back({"wire_rtt_p50", out.p50_us, "us", {{"conns", std::to_string(conns)}}});
    metrics.push_back({"wire_rtt_p99", out.p99_us, "us", {{"conns", std::to_string(conns)}}});
    metrics.push_back({"wire_throughput",
                       out.requests_per_second,
                       "ops_per_sec",
                       {{"conns", std::to_string(conns)}}});
  }

  const auto stats = server.stats();
  server.RequestDrain();
  server.Wait();

  WriteBenchJson("ext_server_latency", metrics);

  std::cout << "\nChecks:\n";
  Check(all_answered, "every wire request was answered (no errors, no drops)");
  Check(all_hits, "every measured wire request was a cache hit");
  Check(inproc.hits == inproc.requests, "every in-process baseline request was a hit");
  Check(stats.protocol_errors == 0 && stats.slow_consumer_closes == 0,
        "server saw no protocol errors or slow-consumer closes");
  Check(wire_p50_1 > inproc.p50_us,
        "the wire adds measurable cost over the in-process hit path");
  // Generous bound: loopback RTT + dispatch should be far under 20 ms even
  // on a loaded CI box; tripping it means a stall (e.g. a lost wakeup
  // riding the 100 ms poll timeout) sits on the request path.
  Check(wire_p50_1 < 20'000.0, "single-connection wire p50 under 20 ms");
  return Failures() == 0 ? 0 : 1;
}
