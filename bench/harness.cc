#include "harness.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace qc::benchharness {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoull(raw, nullptr, 10);
}

FigureConfig FigureConfig::FromEnv() {
  FigureConfig config;
  config.rows = EnvU64("SETQUERY_ROWS", config.rows);
  config.transactions = EnvU64("SETQUERY_TXNS", config.transactions);
  config.seed = EnvU64("SETQUERY_SEED", config.seed);
  return config;
}

Fixture MakeFixture(const FigureConfig& config, dup::InvalidationPolicy policy) {
  Fixture fixture;
  fixture.db = std::make_unique<storage::Database>();
  fixture.bench = std::make_unique<setquery::BenchTable>(*fixture.db, config.rows, config.seed);
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  // Figure reproductions use the paper's dependency sets (WHERE columns +
  // GROUP BY keys; no projection/aggregate-input edges — see Fig. 8).
  options.extraction = dup::ExtractionOptions::PaperFidelity();
  fixture.engine = std::make_unique<middleware::CachedQueryEngine>(*fixture.db, options);
  fixture.runner = std::make_unique<setquery::WorkloadRunner>(*fixture.bench, *fixture.engine);
  return fixture;
}

setquery::WorkloadResult RunOne(const FigureConfig& config, dup::InvalidationPolicy policy,
                                const setquery::WorkloadConfig& workload) {
  Fixture fixture = MakeFixture(config, policy);
  setquery::WorkloadConfig wl = workload;
  wl.transactions = config.transactions;
  wl.seed = config.seed;
  return fixture.runner->Run(wl);
}

void PrintHeader(const std::string& title, const FigureConfig& config) {
  std::cout << "=== " << title << " ===\n"
            << "BENCH rows=" << config.rows << " (canonical 1M, constants rescaled), "
            << "transactions=" << config.transactions << ", seed=" << config.seed << "\n"
            << "(override via SETQUERY_ROWS / SETQUERY_TXNS / SETQUERY_SEED)\n\n";
}

void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::ostringstream os;
  for (size_t i = 0; i < cells.size(); ++i) {
    os << std::setw(i < widths.size() ? widths[i] : 12) << cells[i];
  }
  std::cout << os.str() << "\n";
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
int g_failures = 0;
}

bool Check(bool condition, const std::string& claim) {
  std::cout << (condition ? "  [ok] " : "  [VIOLATION] ") << claim << "\n";
  if (!condition) ++g_failures;
  return condition;
}

int Failures() { return g_failures; }

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}
}  // namespace

std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<BenchMetric>& metrics) {
  const char* dir = std::getenv("BENCH_JSON_DIR");
  std::string path = (dir && *dir) ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + bench_name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return {};
  }
  out << "{\n  \"bench\": \"" << JsonEscape(bench_name) << "\",\n  \"metrics\": [";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const BenchMetric& m = metrics[i];
    out << (i ? ",\n" : "\n") << "    {\"name\": \"" << JsonEscape(m.name)
        << "\", \"value\": " << std::setprecision(17) << m.value << ", \"unit\": \""
        << JsonEscape(m.unit) << "\"";
    for (const auto& [key, value] : m.labels) {
      out << ", \"" << JsonEscape(key) << "\": \"" << JsonEscape(value) << "\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
  out.close();
  if (!out) {
    std::cerr << "warning: short write to " << path << "\n";
    return {};
  }
  std::cout << "wrote " << path << "\n";
  return path;
}

}  // namespace qc::benchharness
