#include "harness.h"

#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace qc::benchharness {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  return std::strtoull(raw, nullptr, 10);
}

FigureConfig FigureConfig::FromEnv() {
  FigureConfig config;
  config.rows = EnvU64("SETQUERY_ROWS", config.rows);
  config.transactions = EnvU64("SETQUERY_TXNS", config.transactions);
  config.seed = EnvU64("SETQUERY_SEED", config.seed);
  return config;
}

Fixture MakeFixture(const FigureConfig& config, dup::InvalidationPolicy policy) {
  Fixture fixture;
  fixture.db = std::make_unique<storage::Database>();
  fixture.bench = std::make_unique<setquery::BenchTable>(*fixture.db, config.rows, config.seed);
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  // Figure reproductions use the paper's dependency sets (WHERE columns +
  // GROUP BY keys; no projection/aggregate-input edges — see Fig. 8).
  options.extraction = dup::ExtractionOptions::PaperFidelity();
  fixture.engine = std::make_unique<middleware::CachedQueryEngine>(*fixture.db, options);
  fixture.runner = std::make_unique<setquery::WorkloadRunner>(*fixture.bench, *fixture.engine);
  return fixture;
}

setquery::WorkloadResult RunOne(const FigureConfig& config, dup::InvalidationPolicy policy,
                                const setquery::WorkloadConfig& workload) {
  Fixture fixture = MakeFixture(config, policy);
  setquery::WorkloadConfig wl = workload;
  wl.transactions = config.transactions;
  wl.seed = config.seed;
  return fixture.runner->Run(wl);
}

void PrintHeader(const std::string& title, const FigureConfig& config) {
  std::cout << "=== " << title << " ===\n"
            << "BENCH rows=" << config.rows << " (canonical 1M, constants rescaled), "
            << "transactions=" << config.transactions << ", seed=" << config.seed << "\n"
            << "(override via SETQUERY_ROWS / SETQUERY_TXNS / SETQUERY_SEED)\n\n";
}

void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::ostringstream os;
  for (size_t i = 0; i < cells.size(); ++i) {
    os << std::setw(i < widths.size() ? widths[i] : 12) << cells[i];
  }
  std::cout << os.str() << "\n";
}

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

namespace {
int g_failures = 0;
}

bool Check(bool condition, const std::string& claim) {
  std::cout << (condition ? "  [ok] " : "  [VIOLATION] ") << claim << "\n";
  if (!condition) ++g_failures;
  return condition;
}

int Failures() { return g_failures; }

}  // namespace qc::benchharness
