// Extension bench: what does a crash-safe disk tier buy at restart?
//
// A middleware restart used to mean an empty cache: every client query
// pays a database execution until the working set is re-cached. With
// recover_on_open the spool survives, so the restarted engine starts warm.
// This bench fills a disk-tier cache through the query engine, "restarts"
// it both ways (cold wipe vs. recovery scan), and compares the first-pass
// hit rate plus the cost of the recovery scan itself.
#include <chrono>
#include <filesystem>
#include <iostream>

#include "harness.h"
#include "setquery/queries.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

middleware::CachedQueryEngine::Options DiskOptions(const std::string& dir, bool recover) {
  middleware::CachedQueryEngine::Options options;
  options.policy = dup::InvalidationPolicy::kValueAware;
  options.cache.mode = cache::CacheMode::kDisk;
  options.cache.disk_directory = dir;
  options.cache.recover_on_open = recover;
  return options;
}

double Micros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(d).count();
}

}  // namespace

int main() {
  FigureConfig fig = FigureConfig::FromEnv();
  fig.rows = EnvU64("SETQUERY_ROWS", 20'000);
  const uint64_t kQueries = EnvU64("RECOVERY_QUERIES", 200);
  PrintHeader("Extension: warm restart from the crash-safe disk tier", fig);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "qc_bench_recovery").string();
  std::filesystem::remove_all(dir);

  storage::Database db;
  setquery::BenchTable bench(db, fig.rows);
  const auto specs = setquery::BuildAllQueries(bench);

  // Fill: run a parameter sweep so the spool holds kQueries distinct
  // results, then drop the engine without clearing (simulated shutdown).
  uint64_t filled = 0;
  {
    middleware::CachedQueryEngine engine(db, DiskOptions(dir, /*recover=*/true));
    Rng rng(fig.seed);
    for (uint64_t i = 0; i < kQueries; ++i) {
      const auto& spec = specs[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(specs.size()) - 1))];
      engine.Execute(engine.Prepare(spec.sql));
    }
    filled = engine.cache().entry_count();
  }

  // Cold restart: the pre-crash spool is wiped, every query misses.
  const auto cold_start = std::chrono::steady_clock::now();
  uint64_t cold_hits = 0, cold_execs = 0;
  {
    middleware::CachedQueryEngine engine(db, DiskOptions(dir, /*recover=*/false));
    for (const auto& spec : specs) {
      if (engine.Execute(engine.Prepare(spec.sql)).cache_hit) ++cold_hits;
    }
    cold_execs = engine.stats().db_executions;
  }
  const double cold_us = Micros(std::chrono::steady_clock::now() - cold_start);

  // Refill (the cold pass wiped the spool), then measure the warm restart.
  {
    middleware::CachedQueryEngine engine(db, DiskOptions(dir, /*recover=*/true));
    Rng rng(fig.seed);
    for (uint64_t i = 0; i < kQueries; ++i) {
      const auto& spec = specs[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(specs.size()) - 1))];
      engine.Execute(engine.Prepare(spec.sql));
    }
    filled = engine.cache().entry_count();
  }

  const auto open_start = std::chrono::steady_clock::now();
  middleware::CachedQueryEngine engine(db, DiskOptions(dir, /*recover=*/true));
  const double open_us = Micros(std::chrono::steady_clock::now() - open_start);
  const uint64_t recovered = engine.cache_stats().recovered;

  uint64_t warm_hits = 0;
  const auto warm_start = std::chrono::steady_clock::now();
  for (const auto& spec : specs) {
    if (engine.Execute(engine.Prepare(spec.sql)).cache_hit) ++warm_hits;
  }
  const double warm_us = Micros(std::chrono::steady_clock::now() - warm_start);

  const std::vector<int> widths = {26, 14, 14, 16};
  PrintRow({"restart mode", "spool entries", "first-pass", "pass time us"}, widths);
  PrintRow({"cold (wiped spool)", "0", std::to_string(cold_hits) + " hits", Fmt(cold_us, 0)},
           widths);
  PrintRow({"warm (recover_on_open)", std::to_string(recovered),
            std::to_string(warm_hits) + " hits", Fmt(warm_us, 0)},
           widths);
  std::cout << "\nrecovery scan: " << recovered << " entries in " << Fmt(open_us, 0)
            << " us (" << Fmt(recovered / (open_us / 1e6), 0) << " entries/s)\n";

  std::cout << "\nChecks:\n";
  Check(cold_hits == 0, "cold restart serves nothing from the cache");
  Check(recovered == filled, "recovery re-indexes every spilled entry");
  Check(warm_hits == recovered, "every recovered entry hits on the first pass");
  Check(cold_execs >= specs.size() - cold_hits, "cold restart pays one execution per query");
  Check(warm_us < cold_us, "warm first pass is faster than the cold one");
  return Failures() == 0 ? 0 : 1;
}
