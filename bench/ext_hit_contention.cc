// Extension bench: GPS cache hit-path contention. N reader threads hammer
// Get() on a fully-resident hot set while one writer refreshes and
// invalidates keys, directly against the GpsCache (no SQL engine in the
// way) — this isolates the cost of the hit path itself. The sweep crosses
// shards {1, 16} with eviction {lru, clock}: under kLru every hit takes
// the shard lock exclusively (list splice), under kClock hits run under a
// shared lock and only set an atomic reference bit
// (docs/CONCURRENCY.md, "Lock-light hit path").
//
// Self-checking: on machines with enough cores the clock configuration
// must beat exact LRU by >= 3x aggregate hit throughput at 16 readers.
// Also emits BENCH_ext_hit_contention.json (see harness.h WriteBenchJson).
//
// A second, engine-level section measures the exact-hit fast path of
// CachedQueryEngine with the semantic tier enabled vs disabled: the
// containment probe runs only after an exact-fingerprint miss, so a warm
// exact hit must cost the same either way (gated at <= 1.25x).
//
// Env overrides: HIT_MS (measure window per run, ms), HIT_READERS (reader
// thread count), HIT_KEYS (hot-set size), HIT_WRITE_US (writer throttle).
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "cache/gps_cache.h"
#include "common/rng.h"
#include "harness.h"
#include "middleware/query_engine.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct RunConfig {
  cache::EvictionPolicy eviction = cache::EvictionPolicy::kClock;
  size_t shards = 16;
  int readers = 16;
  uint64_t keys = 2048;
  uint64_t measure_ms = 400;
  uint64_t write_throttle_us = 200;
};

struct Outcome {
  double gets_per_second = 0;
  double ns_per_get = 0;  // per reader thread
  double hit_rate = 0;    // percent
  uint64_t writes = 0;
  bool counters_consistent = false;
};

std::string KeyFor(uint64_t i) { return "q" + std::to_string(i); }

Outcome Run(const RunConfig& config) {
  cache::GpsCacheConfig cache_config;
  cache_config.shards = config.shards;
  cache_config.eviction = config.eviction;
  cache_config.memory_budget_bytes = 64 * 1024 * 1024;  // hot set always fits
  cache::GpsCache cache(cache_config);

  for (uint64_t i = 0; i < config.keys; ++i) {
    cache.Put(KeyFor(i), std::make_shared<cache::StringValue>("v" + std::to_string(i)));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_gets{0};

  std::vector<std::thread> readers;
  readers.reserve(config.readers);
  for (int t = 0; t < config.readers; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t i =
            static_cast<uint64_t>(rng.Uniform(0, static_cast<int64_t>(config.keys) - 1));
        cache.Get(KeyFor(i));
        ++local;
      }
      total_gets.fetch_add(local);
    });
  }

  // One writer: mostly replaces (exclusive-lock fills), occasionally a
  // full invalidate + refill — the mix every reader's shard lock must ride
  // out.
  uint64_t writes = 0;
  {
    Rng rng(7);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(config.measure_ms);
    auto next_write = std::chrono::steady_clock::now();
    uint64_t version = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::chrono::steady_clock::now() >= next_write) {
        const uint64_t i =
            static_cast<uint64_t>(rng.Uniform(0, static_cast<int64_t>(config.keys) - 1));
        const std::string key = KeyFor(i);
        if (++version % 8 == 0) cache.Invalidate(key);
        cache.Put(key, std::make_shared<cache::StringValue>("v" + std::to_string(version)));
        ++writes;
        next_write += std::chrono::microseconds(config.write_throttle_us);
      } else {
        std::this_thread::yield();
      }
    }
    stop.store(true);
  }
  for (auto& reader : readers) reader.join();

  const cache::CacheStats stats = cache.stats();
  Outcome out;
  const double seconds = static_cast<double>(config.measure_ms) / 1000.0;
  out.gets_per_second = static_cast<double>(total_gets.load()) / seconds;
  out.ns_per_get = total_gets.load() == 0
                       ? 0
                       : seconds * 1e9 * config.readers / static_cast<double>(total_gets.load());
  out.hit_rate = 100.0 * stats.HitRate();
  out.writes = writes;
  // Every Get records exactly one lookup and exactly one hit-or-miss in
  // the striped counters; with all threads joined the totals must agree.
  out.counters_consistent =
      stats.hits + stats.misses == stats.lookups && stats.lookups >= total_gets.load();
  return out;
}

}  // namespace

int main() {
  RunConfig base;
  base.measure_ms = EnvU64("HIT_MS", 400);
  base.readers = static_cast<int>(EnvU64("HIT_READERS", 16));
  base.keys = EnvU64("HIT_KEYS", 2048);
  base.write_throttle_us = EnvU64("HIT_WRITE_US", 200);

  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "=== Extension: GPS cache hit-path contention (" << base.keys << " hot keys, "
            << base.readers << " readers x 1 writer @" << base.write_throttle_us << " us, "
            << base.measure_ms << " ms/run, " << cores << " hardware threads) ===\n\n";

  const std::vector<int> widths = {10, 10, 14, 12, 12, 10};
  PrintRow({"eviction", "shards", "gets/s", "ns/get", "hit rate %", "writes"}, widths);

  std::vector<BenchMetric> metrics;
  double lru_16 = 0, clock_16 = 0, lru_1 = 0, clock_1 = 0;
  bool all_consistent = true;
  for (size_t shards : {size_t{1}, size_t{16}}) {
    for (cache::EvictionPolicy eviction :
         {cache::EvictionPolicy::kLru, cache::EvictionPolicy::kClock}) {
      RunConfig config = base;
      config.shards = shards;
      config.eviction = eviction;
      const Outcome out = Run(config);
      const char* policy = cache::EvictionPolicyName(eviction);
      PrintRow({policy, std::to_string(shards), Fmt(out.gets_per_second, 0),
                Fmt(out.ns_per_get, 0), Fmt(out.hit_rate), std::to_string(out.writes)},
               widths);
      all_consistent = all_consistent && out.counters_consistent;
      if (eviction == cache::EvictionPolicy::kLru) {
        (shards == 16 ? lru_16 : lru_1) = out.gets_per_second;
      } else {
        (shards == 16 ? clock_16 : clock_1) = out.gets_per_second;
      }
      metrics.push_back({"hit_throughput",
                         out.gets_per_second,
                         "ops_per_sec",
                         {{"eviction", policy},
                          {"shards", std::to_string(shards)},
                          {"threads", std::to_string(base.readers)}}});
      metrics.push_back({"hit_latency",
                         out.ns_per_get,
                         "ns_per_op",
                         {{"eviction", policy},
                          {"shards", std::to_string(shards)},
                          {"threads", std::to_string(base.readers)}}});
    }
  }

  // ---- Engine-level exact-hit path: semantic tier on vs off ------------
  // The ladder is exact -> semantic -> miss; a warm exact hit returns
  // before the containment probe runs, so enabling the semantic tier must
  // not tax it.
  auto exact_hit_ns = [&](bool semantic_on) {
    storage::Database db;
    auto& t = db.CreateTable("H", storage::Schema({{"ID", ValueType::kInt, false},
                                                   {"V", ValueType::kInt, false}}));
    for (int i = 0; i < 1000; ++i) t.Insert({Value(i), Value(i * 3)});
    middleware::CachedQueryEngine::Options options;
    options.cache.semantic_lookup = semantic_on;
    middleware::CachedQueryEngine engine(db, options);
    auto query = engine.Prepare("SELECT ID, V FROM H WHERE ID BETWEEN 100 AND 500");
    engine.Execute(query);  // warm: everything after this is an exact hit
    uint64_t reps = 0;
    const auto t0 = std::chrono::steady_clock::now();
    const auto deadline = t0 + std::chrono::milliseconds(base.measure_ms / 2);
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 64; ++i) engine.Execute(query);
      reps += 64;
    }
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    return ns / static_cast<double>(reps);
  };
  const double hit_ns_off = exact_hit_ns(false);
  const double hit_ns_on = exact_hit_ns(true);
  std::cout << "\nengine exact-hit path: semantic off " << Fmt(hit_ns_off, 0)
            << " ns/op, semantic on " << Fmt(hit_ns_on, 0) << " ns/op ("
            << Fmt(hit_ns_on / hit_ns_off, 2) << "x)\n";
  metrics.push_back({"exact_hit_ns", hit_ns_off, "ns_per_op", {{"semantic", "off"}}});
  metrics.push_back({"exact_hit_ns", hit_ns_on, "ns_per_op", {{"semantic", "on"}}});

  WriteBenchJson("ext_hit_contention", metrics);

  std::cout << "\nChecks:\n";
  Check(lru_1 > 0 && lru_16 > 0 && clock_1 > 0 && clock_16 > 0,
        "all configurations completed and served gets");
  Check(all_consistent, "striped hit counters are exact: hits + misses == lookups");
  Check(hit_ns_on <= 1.25 * hit_ns_off,
        "semantic probe does not regress the exact-hit fast path (<= 1.25x)");
  if (cores >= 8 && base.readers >= 16) {
    Check(clock_16 >= 3.0 * lru_16,
          "shared-lock CLOCK hits beat exclusive-lock LRU by >= 3x at 16 readers (16 shards)");
    Check(clock_1 > lru_1,
          "CLOCK beats LRU even on a single shard (readers share one rw-lock)");
  } else {
    std::cout << "  (contention checks skipped: " << cores << " hardware threads, "
              << base.readers
              << " readers; need >= 8 cores and >= 16 readers for a meaningful ratio)\n";
  }
  return Failures() == 0 ? 0 : 1;
}
