// §5.1 "Other Benchmarks": TPC-C-like and TPC-D-like workloads.
//
// Paper claims:
//   * TPC-C (high update share): "We did not see significant improvements
//     in cache hit rates when our methods were applied to TPC-C."
//   * TPC-D (batch-refreshed warehouse): "having a sophisticated
//     invalidation strategy such as ours is not important" — hit rates are
//     driven by the refresh cadence, not by the policy.
#include <iostream>

#include "harness.h"
#include "tpc/tpcc_like.h"
#include "tpc/tpcd_like.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  std::cout << "=== Section 5.1: TPC-C-like and TPC-D-like workloads ===\n\n";

  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
  };
  const std::vector<int> widths = {26, 12, 12, 12};

  std::cout << "TPC-C-like (45% New-Order, 43% Payment, 4% Order-Status, 4% Delivery, 4% "
               "Stock-Level):\n";
  PrintRow({"metric", "Policy I", "Policy II", "Policy III"}, widths);
  std::vector<tpc::MixResult> tpcc;
  for (auto policy : policies) {
    tpc::TpccConfig config;
    tpc::TpccSimulation sim(config, policy);
    tpcc.push_back(sim.Run());
  }
  PrintRow({"hit rate %", Fmt(tpcc[0].HitRatePercent()), Fmt(tpcc[1].HitRatePercent()),
            Fmt(tpcc[2].HitRatePercent())},
           widths);
  PrintRow({"update share %",
            Fmt(100.0 * tpcc[0].updates / tpcc[0].transactions),
            Fmt(100.0 * tpcc[1].updates / tpcc[1].transactions),
            Fmt(100.0 * tpcc[2].updates / tpcc[2].transactions)},
           widths);

  std::cout << "\nTPC-D-like (aggregates over LINEITEM; batch refresh every 250 txns):\n";
  PrintRow({"metric", "Policy I", "Policy II", "Policy III"}, widths);
  std::vector<tpc::MixResult> tpcd;
  for (auto policy : policies) {
    tpc::TpcdConfig config;
    tpc::TpcdSimulation sim(config, policy);
    tpcd.push_back(sim.Run());
  }
  PrintRow({"hit rate %", Fmt(tpcd[0].HitRatePercent()), Fmt(tpcd[1].HitRatePercent()),
            Fmt(tpcd[2].HitRatePercent())},
           widths);

  std::cout << "\nShape checks vs. paper:\n";
  Check(tpcc[2].HitRatePercent() - tpcc[0].HitRatePercent() < 25 &&
            tpcc[2].HitRatePercent() < 55,
        "TPC-C: no significant hit-rate improvement from smart invalidation (update-dominated "
        "mix)");
  Check(tpcc[2].HitRatePercent() < 55,
        "TPC-C: even value-aware caching stays unimpressive under ~92% update share");
  Check(std::abs(tpcd[2].HitRatePercent() - tpcd[1].HitRatePercent()) < 5,
        "TPC-D: Policies II and III are equivalent under batch refresh");
  Check(std::abs(tpcd[1].HitRatePercent() - tpcd[0].HitRatePercent()) < 10,
        "TPC-D: even flush-all is close — the refresh cadence dominates");
  Check(tpcd[2].HitRatePercent() > 80,
        "TPC-D: hit rates are high between refreshes regardless of policy");
  return Failures() == 0 ? 0 : 1;
}
