// Extension bench: the weighted-DUP obsolescence trade (paper Fig. 2 /
// §4: "retaining slightly obsolete versions of cached objects results in
// better performance than updating or invalidating an object every time
// it changes").
//
// Sweep the per-object obsolescence budget on the Set Query mix at a 10 %
// update rate and measure what the budget buys (hit rate) and what it
// costs (fraction of hits whose value no longer matches the database).
#include <iostream>

#include "harness.h"
#include "setquery/queries.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct Row {
  double hit_rate, stale_rate, tolerated;
};

Row RunBudget(const FigureConfig& fig, double threshold) {
  storage::Database db;
  setquery::BenchTable bench(db, fig.rows);
  middleware::CachedQueryEngine::Options options;
  options.policy = dup::InvalidationPolicy::kValueAware;
  // Sound dependency mode so the threshold-0 baseline is exactly
  // consistent; every stale hit measured is bought by the budget.
  options.obsolescence_threshold = threshold;
  middleware::CachedQueryEngine engine(db, options);

  const auto specs = setquery::BuildAllQueries(bench);
  std::vector<std::shared_ptr<const sql::BoundQuery>> queries;
  for (const auto& spec : specs) queries.push_back(engine.Prepare(spec.sql));
  for (const auto& query : queries) engine.Execute(query);

  Rng rng(fig.seed);
  uint64_t queries_run = 0, hits = 0, stale_hits = 0;
  for (uint64_t t = 0; t < fig.transactions; ++t) {
    if (rng.Chance(0.10)) {
      const auto row = bench.RandomRow(rng);
      std::vector<std::pair<uint32_t, Value>> sets;
      for (int i = 0; i < 2; ++i) {
        const auto col = static_cast<uint32_t>(rng.Uniform(0, 12));
        sets.emplace_back(col, Value(bench.RandomValue(col, rng)));
      }
      bench.table().Update(row, sets);
    } else {
      const auto& query = queries[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1))];
      auto outcome = engine.Execute(query);
      ++queries_run;
      if (outcome.cache_hit) {
        ++hits;
        if (!outcome.result->Equals(engine.ExecuteUncached(*query))) ++stale_hits;
      }
    }
  }

  Row out;
  out.hit_rate = queries_run ? 100.0 * static_cast<double>(hits) / queries_run : 0;
  out.stale_rate = hits ? 100.0 * static_cast<double>(stale_hits) / hits : 0;
  out.tolerated = static_cast<double>(engine.dup_stats().tolerated_changes);
  return out;
}

}  // namespace

int main() {
  FigureConfig fig = FigureConfig::FromEnv();
  fig.rows = EnvU64("SETQUERY_ROWS", 20'000);
  fig.transactions = EnvU64("SETQUERY_TXNS", 3'000);
  PrintHeader("Extension: obsolescence budget vs hit rate (10% updates, 2 attrs, Policy III)",
              fig);

  const std::vector<double> thresholds = {0, 1, 2, 4, 8};
  const std::vector<int> widths = {12, 12, 12, 14};
  PrintRow({"threshold", "hit rate %", "stale hits %", "tolerated"}, widths);
  std::vector<Row> rows;
  for (double threshold : thresholds) {
    rows.push_back(RunBudget(fig, threshold));
    PrintRow({Fmt(threshold, 0), Fmt(rows.back().hit_rate), Fmt(rows.back().stale_rate, 2),
              Fmt(rows.back().tolerated, 0)},
             widths);
  }

  std::cout << "\nChecks:\n";
  Check(rows[0].stale_rate == 0.0, "threshold 0 serves no stale hits (exact consistency)");
  Check(rows.back().hit_rate > rows.front().hit_rate + 3,
        "a larger budget buys a real hit-rate improvement");
  Check(rows.back().stale_rate > 0.0, "the improvement is paid for in bounded staleness");
  for (size_t i = 1; i < rows.size(); ++i) {
    Check(rows[i].hit_rate >= rows[i - 1].hit_rate - 1.5,
          "hit rate is monotone-ish in the budget (threshold " + Fmt(thresholds[i], 0) + ")");
  }
  return Failures() == 0 ? 0 : 1;
}
