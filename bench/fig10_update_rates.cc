// Figure 10: overall cache hit rate vs. update rate (1–50 % of
// transactions), two attributes per update (15 % update size).
//
// Paper shape claims: the value-aware policy sustains "reasonably high hit
// rates even in the presence of frequent updates"; Policy I collapses as
// the update rate grows; III ≥ II ≥ I at every rate.
#include <iostream>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Figure 10: hit rate vs. update rate (update size 15% = 2 attrs)", config);

  const std::vector<double> rates = {0.01, 0.02, 0.05, 0.10, 0.25, 0.50};
  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
  };

  std::vector<std::vector<double>> series(policies.size());
  const std::vector<int> widths = {10, 12, 12, 12};
  PrintRow({"rate %", "Policy I", "Policy II", "Policy III"}, widths);
  for (double rate : rates) {
    setquery::WorkloadConfig workload;
    workload.update_rate = rate;
    workload.attributes_per_update = 2;
    std::vector<double> row;
    for (size_t p = 0; p < policies.size(); ++p) {
      const auto result = RunOne(config, policies[p], workload);
      series[p].push_back(result.HitRatePercent());
      row.push_back(result.HitRatePercent());
    }
    PrintRow({Fmt(rate * 100, 0), Fmt(row[0]), Fmt(row[1]), Fmt(row[2])}, widths);
  }

  std::cout << "\nShape checks vs. paper:\n";
  for (size_t i = 0; i < rates.size(); ++i) {
    Check(series[2][i] >= series[1][i] - 1.0 && series[1][i] >= series[0][i] - 1.0,
          "III >= II >= I at update rate " + Fmt(rates[i] * 100, 0) + "%");
  }
  Check(series[0].front() - series[0].back() > 30,
        "Policy I collapses as the update rate grows");
  Check(series[2].back() >= 20 && series[2].back() >= 3 * series[0].back(),
        "Policy III sustains a usable hit rate at 50% updates (paper: 'reasonably high')");
  Check(series[2].back() >= 3 * series[1].back(),
        "Policy III's advantage over II is largest at the highest update rate");
  Check(series[2].front() >= 85, "Policy III is near its ceiling at 1% updates");
  return Failures() == 0 ? 0 : 1;
}
