// Extension bench: the cost of cluster coherence over the real wire
// (docs/CLUSTER.md). One storage node publishes the sequenced CDC stream
// over loopback TCP; a cache node consumes it through a CacheNodeRuntime
// exactly as a qcached --upstream process would. Two questions:
//
//   1. DML -> remote invalidation latency: from the writer's Dml() call on
//      the storage node until the cache node has fully applied the pushed
//      CDC record (gate advanced, invalidations run, record relayed) —
//      the staleness window a remote reader can ever observe. p50/p99.
//   2. What the sequence-guarded admission costs on the fill path: cold
//      fills/sec through QUERY_SEQ with the gate wired in, versus the same
//      fills with no gate. The guard is two relaxed atomic loads and a
//      compare under the shard lock, so the gated rate must stay within
//      2x of the ungated rate.
//
// Self-checking: every CDC record is applied (no drops, no gap flushes),
// the warmed query is actually invalidated and re-reads fresh, no fill is
// spuriously refused in the quiet run (seq_admit_rejects == 0), and the
// invalidation p50 stays under a generous loopback bound.
//
// Emits BENCH_ext_cluster_invalidation.json (harness.h WriteBenchJson).
//
// Env overrides: CLUSTER_DMLS (latency samples), CLUSTER_FILLS (cold fills
// per admission variant).
#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cache_node.h"
#include "harness.h"
#include "middleware/query_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/fingerprint.h"
#include "storage/database.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

using Clock = std::chrono::steady_clock;
using namespace std::chrono_literals;

double PercentileMs(std::vector<double>& samples_us, double p) {
  if (samples_us.empty()) return 0;
  std::sort(samples_us.begin(), samples_us.end());
  const size_t idx = std::min(samples_us.size() - 1,
                              static_cast<size_t>(p * static_cast<double>(samples_us.size())));
  return samples_us[idx] / 1000.0;
}

/// Cold fills/sec through an engine whose misses go upstream over
/// QUERY_SEQ; `gated` wires the sequence-admission guard in.
double FillRate(storage::Database& db, uint16_t upstream_port, bool gated, uint64_t fills,
                uint64_t* admitted_hits, uint64_t* rejects) {
  server::QcClient upstream;
  upstream.Connect("127.0.0.1", upstream_port);

  middleware::CachedQueryEngine::Options options;
  options.subscribe_to_database = false;
  if (gated) options.seq_gate = std::make_shared<dup::CdcSequenceGate>();
  options.remote_fetch = [&upstream](const sql::BoundQuery& query,
                                     const std::vector<Value>& params) {
    middleware::CachedQueryEngine::RemoteFill fill;
    auto reply = upstream.QuerySeq(sql::CanonicalSql(query.stmt()), params);
    fill.observed_seq = reply.observed_seq;
    fill.result = std::make_shared<const sql::ResultSet>(std::move(reply.result));
    return fill;
  };
  middleware::CachedQueryEngine engine(db, options);

  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE PRICE <= $1");
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < fills; ++i) {
    engine.Execute(query, {Value(static_cast<int64_t>(i))});
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  // Second pass: everything the first pass filled must now hit locally.
  *admitted_hits = 0;
  for (uint64_t i = 0; i < fills; ++i) {
    if (engine.Execute(query, {Value(static_cast<int64_t>(i))}).cache_hit) ++*admitted_hits;
  }
  *rejects = engine.stats().seq_admit_rejects;
  return seconds > 0 ? static_cast<double>(fills) / seconds : 0;
}

}  // namespace

int main() {
  const uint64_t dmls = EnvU64("CLUSTER_DMLS", 300);
  const uint64_t fills = EnvU64("CLUSTER_FILLS", 2000);

  // Storage node: the catalog plus the CDC publisher.
  storage::Database db;
  storage::Table& items =
      db.CreateTable("ITEMS", storage::Schema({{"ID", ValueType::kInt, false},
                                               {"KIND", ValueType::kString, false},
                                               {"PRICE", ValueType::kInt, false}}));
  for (int i = 1; i <= 500; ++i) {
    items.Insert({Value(i), Value(i % 2 ? "odd" : "even"), Value(i % 100)});
  }
  middleware::CachedQueryEngine storage_engine(db, middleware::CachedQueryEngine::Options{});
  server::ServerConfig storage_config;
  storage_config.port = 0;
  storage_config.cdc_publish = true;
  server::QcServer storage_server(storage_engine, storage_config);
  storage_server.Start();

  // Cache node: an empty local catalog, fills over QUERY_SEQ, the CDC
  // applier keeping its cache honest — the in-process twin of
  // `qcached --upstream`.
  storage::Database cache_db;
  cache_db.CreateTable("ITEMS", storage::Schema({{"ID", ValueType::kInt, false},
                                                 {"KIND", ValueType::kString, false},
                                                 {"PRICE", ValueType::kInt, false}}));
  cluster::CacheNodeConfig node_config;
  node_config.name = "cache0";
  node_config.upstream_port = storage_server.port();
  cluster::CacheNodeRuntime runtime(node_config);
  middleware::CachedQueryEngine cache_engine(
      cache_db, runtime.DecorateEngineOptions(middleware::CachedQueryEngine::Options{}));
  server::ServerConfig cache_config;
  cache_config.port = 0;
  server::QcServer cache_server(cache_engine, cache_config);
  runtime.AttachServer(cache_engine, cache_server);
  cache_server.Start();
  runtime.Start();

  std::cout << "=== Extension: cluster CDC invalidation over loopback (" << dmls
            << " DML samples, " << fills << " cold fills/variant) ===\n\n";

  // --- 1. DML -> remote invalidation latency -------------------------------
  auto warm = cache_engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'odd'");
  cache_engine.Execute(warm);  // remote fill; now cached on the cache node

  server::QcClient writer;
  writer.Connect("127.0.0.1", storage_server.port());

  std::vector<double> samples_us;
  samples_us.reserve(dmls);
  bool all_applied = true;
  uint64_t seq = 0;
  for (uint64_t i = 0; i < dmls; ++i) {
    const std::string sql = "UPDATE ITEMS SET KIND = '" +
                            std::string(i % 2 ? "odd" : "even") + "' WHERE ID = " +
                            std::to_string(1 + i % 500);
    const auto t0 = Clock::now();
    writer.Dml(sql);
    ++seq;  // every statement commits one CDC record
    all_applied = all_applied && runtime.WaitForSeq(seq, 5s);
    samples_us.push_back(
        static_cast<double>(std::chrono::nanoseconds(Clock::now() - t0).count()) / 1000.0);
  }
  const double inv_p50_ms = PercentileMs(samples_us, 0.50);
  const double inv_p99_ms = PercentileMs(samples_us, 0.99);

  // The KIND flips above must have invalidated the warmed query; its next
  // execution is a fresh remote fill that matches the storage node's truth.
  auto requery = cache_engine.Execute(warm);
  const bool invalidated = !requery.cache_hit;
  const auto truth = storage_engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'odd'");
  const bool fresh = requery.result->Equals(*truth.result);

  const std::vector<int> widths = {30, 14, 14};
  PrintRow({"metric", "p50 ms", "p99 ms"}, widths);
  PrintRow({"dml->remote invalidation", Fmt(inv_p50_ms, 3), Fmt(inv_p99_ms, 3)}, widths);

  // --- 2. fill throughput, sequence guard on vs off ------------------------
  uint64_t gated_hits = 0, gated_rejects = 0, plain_hits = 0, plain_rejects = 0;
  const double gated_rate =
      FillRate(cache_db, storage_server.port(), /*gated=*/true, fills, &gated_hits,
               &gated_rejects);
  const double plain_rate =
      FillRate(cache_db, storage_server.port(), /*gated=*/false, fills, &plain_hits,
               &plain_rejects);
  const double ratio = plain_rate > 0 ? gated_rate / plain_rate : 0;

  std::cout << "\n";
  const std::vector<int> fw = {30, 14};
  PrintRow({"fill path", "fills/s"}, fw);
  PrintRow({"seq guard on", Fmt(gated_rate, 0)}, fw);
  PrintRow({"seq guard off", Fmt(plain_rate, 0)}, fw);
  PrintRow({"gated/ungated", Fmt(ratio, 3)}, fw);

  const auto counters = runtime.counters();

  std::vector<BenchMetric> metrics;
  metrics.push_back({"invalidation_latency_p50", inv_p50_ms, "ms", {}});
  metrics.push_back({"invalidation_latency_p99", inv_p99_ms, "ms", {}});
  metrics.push_back({"fill_throughput", gated_rate, "ops_per_sec", {{"seq_guard", "on"}}});
  metrics.push_back({"fill_throughput", plain_rate, "ops_per_sec", {{"seq_guard", "off"}}});
  metrics.push_back({"fill_throughput_ratio", ratio, "ratio", {}});
  metrics.push_back(
      {"cdc_events_applied", static_cast<double>(counters.cdc_events_applied), "count", {}});
  WriteBenchJson("ext_cluster_invalidation", metrics);

  std::cout << "\nChecks:\n";
  Check(all_applied, "every CDC record was applied within its deadline");
  Check(counters.cdc_events_applied >= dmls, "the applier saw every committed record");
  Check(counters.gap_flushes == 0, "no resubscribe gap (stream stayed contiguous)");
  Check(invalidated, "the warmed query was remotely invalidated (no stale hit)");
  Check(fresh, "the post-invalidation re-read matches the storage node");
  Check(gated_hits == fills && plain_hits == fills,
        "every cold fill was admitted and hit on the second pass");
  Check(gated_rejects == 0 && plain_rejects == 0,
        "no spurious sequence rejections in a quiet run");
  // Generous loopback bound: the CDC push rides the same sockets as
  // request traffic, so multi-ms means a stall, not a slow network.
  Check(inv_p50_ms < 50.0, "remote invalidation p50 under 50 ms");
  Check(ratio > 0.5, "sequence-guarded fills within 2x of unguarded fills");

  runtime.Stop();
  cache_server.RequestDrain();
  cache_server.Wait();
  storage_server.RequestDrain();
  storage_server.Wait();
  return Failures() == 0 ? 0 : 1;
}
