// Extension benchmark: invalidation cost vs. number of cached queries, and
// per-statement update batching.
//
// The paper's DUP engine pays O(registered queries) per update event: every
// annotated edge of the touched column is evaluated (Policy III), or every
// registration on the table is filtered (inserts/deletes). The
// predicate-interval index (odg/predicate_index.h, dup/row_index.h) makes
// the common selective update sublinear. This bench measures:
//
//   1. ns/update as the number of registered point queries Q grows
//      (10^2..10^5), indexed vs. linear, under Policies I/II/III. The
//      self-check asserts the indexed Policy III path is at least 5x
//      faster than the linear scan at Q = 10^4.
//   2. Statement-level batching: one B-row statement (B = 1..10^4)
//      delivered as one UpdateBatch vs. B individual events, and the
//      number of cache shard-lock acquisitions the invalidation pays. The
//      self-check asserts a 1000-row batch acquires fewer shard locks than
//      it has rows (it is bounded by the shard count).
//
// Env overrides: EXT_INV_MAX_QUERIES (default 100000), EXT_INV_SHARDS (16).
#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "dup/engine.h"
#include "harness.h"
#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc {
namespace {

using benchharness::Check;
using benchharness::EnvU64;
using benchharness::Fmt;
using benchharness::PrintRow;

struct Rig {
  storage::Database db;
  std::unique_ptr<cache::GpsCache> cache;
  std::unique_ptr<dup::DupEngine> engine;
  std::shared_ptr<const sql::BoundQuery> point_query;
};

/// Q registered point queries "K = q" (q in [0, Q)). Results are put in
/// the cache only when `populate_cache` — the scaling series leaves the
/// cache empty so registrations survive invalidation and every timed
/// update pays the full affected-key computation.
std::unique_ptr<Rig> MakeRig(dup::InvalidationPolicy policy, bool use_index, uint64_t queries,
                             size_t shards, bool populate_cache) {
  auto rig = std::make_unique<Rig>();
  rig->db.CreateTable("BENCH", storage::Schema({{"K", ValueType::kInt, false},
                                                {"V", ValueType::kInt, false}}));
  cache::GpsCacheConfig config;
  config.shards = shards;
  rig->cache = std::make_unique<cache::GpsCache>(config);
  dup::DupEngine::Options options;
  options.policy = policy;
  options.use_predicate_index = use_index;
  rig->engine = std::make_unique<dup::DupEngine>(*rig->cache, options);
  rig->point_query = sql::ParseAndBind("SELECT COUNT(*) FROM BENCH WHERE K = ?", rig->db);
  for (uint64_t q = 0; q < queries; ++q) {
    const std::vector<Value> params{Value(static_cast<int64_t>(q))};
    const std::string key = sql::Fingerprint(rig->point_query->stmt(), params);
    if (populate_cache) rig->cache->Put(key, std::make_shared<cache::StringValue>("r"));
    rig->engine->RegisterQuery(key, rig->point_query, params);
  }
  return rig;
}

storage::UpdateEvent UpdateK(int64_t old_v, int64_t new_v) {
  storage::UpdateEvent event;
  event.kind = storage::UpdateEvent::Kind::kUpdate;
  event.table = "BENCH";
  event.changes.push_back({0, Value(old_v), Value(new_v)});
  event.before = {Value(old_v), Value(0)};
  event.after = {Value(new_v), Value(0)};
  return event;
}

double NsPerUpdate(dup::DupEngine& engine, uint64_t queries, uint64_t reps) {
  // Non-matching selective updates (old/new outside the registered domain):
  // the common case where an update flips nothing. The linear scan still
  // evaluates every annotation; the index answers from two stabbing probes.
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < reps; ++i) {
    engine.OnUpdate(UpdateK(static_cast<int64_t>(queries + 5 + i % 7),
                            static_cast<int64_t>(queries + 13 + i % 5)));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(reps);
}

void ScalingSeries(uint64_t max_queries, double* speedup_at_1e4,
                   std::vector<benchharness::BenchMetric>* metrics) {
  const std::vector<int> widths = {8, 32, 14, 14, 10};
  std::cout << "\n-- per-update invalidation cost vs. registered queries --\n";
  PrintRow({"Q", "policy", "linear ns/up", "indexed ns/up", "speedup"}, widths);
  using dup::InvalidationPolicy;
  for (uint64_t queries = 100; queries <= max_queries; queries *= 10) {
    const uint64_t reps = std::max<uint64_t>(50, 2'000'000 / queries);
    for (const auto policy : {InvalidationPolicy::kFlushAll, InvalidationPolicy::kValueUnaware,
                              InvalidationPolicy::kValueAware}) {
      auto linear = MakeRig(policy, false, queries, 1, false);
      auto indexed = MakeRig(policy, true, queries, 1, false);
      const double linear_ns = NsPerUpdate(*linear->engine, queries, reps);
      const double indexed_ns = NsPerUpdate(*indexed->engine, queries, reps);
      const double speedup = indexed_ns > 0 ? linear_ns / indexed_ns : 0;
      PrintRow({std::to_string(queries), dup::PolicyName(policy), Fmt(linear_ns),
                Fmt(indexed_ns), Fmt(speedup, 2)},
               widths);
      if (policy == InvalidationPolicy::kValueAware && queries == 10'000) {
        *speedup_at_1e4 = speedup;
      }
      metrics->push_back({"update_cost_linear",
                          linear_ns,
                          "ns_per_op",
                          {{"policy", dup::PolicyName(policy)},
                           {"queries", std::to_string(queries)}}});
      metrics->push_back({"update_cost_indexed",
                          indexed_ns,
                          "ns_per_op",
                          {{"policy", dup::PolicyName(policy)},
                           {"queries", std::to_string(queries)}}});
    }
  }
}

void BatchingSeries(size_t shards, uint64_t* locks_at_1000,
                    std::vector<benchharness::BenchMetric>* metrics) {
  std::cout << "\n-- statement batching: B delete rows, Policy III, Q=1000, shards="
            << shards << " --\n";
  const std::vector<int> widths = {8, 16, 16, 12, 12};
  PrintRow({"B", "per-event ns/row", "batched ns/row", "shard locks", "invalidated"}, widths);
  constexpr uint64_t kQueries = 1000;
  for (uint64_t batch : {1ull, 10ull, 100ull, 1000ull, 10000ull}) {
    std::vector<storage::UpdateEvent> events;
    events.reserve(batch);
    for (uint64_t i = 0; i < batch; ++i) {
      storage::UpdateEvent event;
      event.kind = storage::UpdateEvent::Kind::kDelete;
      event.table = "BENCH";
      event.row = i;
      event.before = {Value(static_cast<int64_t>(i % kQueries)), Value(0)};
      events.push_back(std::move(event));
    }

    // Per-event delivery (the pre-batching path: one OnUpdate per row).
    auto per_event = MakeRig(dup::InvalidationPolicy::kValueAware, true, kQueries, shards, true);
    const auto start_events = std::chrono::steady_clock::now();
    for (const storage::UpdateEvent& event : events) per_event->engine->OnUpdate(event);
    const double per_event_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start_events)
                                .count()) /
        static_cast<double>(batch);

    // One statement-level batch.
    auto batched = MakeRig(dup::InvalidationPolicy::kValueAware, true, kQueries, shards, true);
    const cache::CacheStats before = batched->cache->stats();
    const auto start_batch = std::chrono::steady_clock::now();
    batched->engine->OnBatch(storage::UpdateBatch{"BENCH", events.data(), events.size()});
    const double batched_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start_batch)
                                .count()) /
        static_cast<double>(batch);
    const cache::CacheStats after = batched->cache->stats();
    const uint64_t locks = after.invalidate_shard_locks - before.invalidate_shard_locks;
    const uint64_t invalidated = after.invalidations - before.invalidations;
    if (batch == 1000) *locks_at_1000 = locks;
    PrintRow({std::to_string(batch), Fmt(per_event_ns), Fmt(batched_ns), std::to_string(locks),
              std::to_string(invalidated)},
             widths);
    metrics->push_back({"batch_cost_per_event",
                        per_event_ns,
                        "ns_per_row",
                        {{"batch", std::to_string(batch)}, {"shards", std::to_string(shards)}}});
    metrics->push_back({"batch_cost_batched",
                        batched_ns,
                        "ns_per_row",
                        {{"batch", std::to_string(batch)}, {"shards", std::to_string(shards)}}});
    metrics->push_back({"batch_shard_locks",
                        static_cast<double>(locks),
                        "locks",
                        {{"batch", std::to_string(batch)}, {"shards", std::to_string(shards)}}});
  }
}

}  // namespace
}  // namespace qc

int main() {
  using namespace qc;
  const uint64_t max_queries = benchharness::EnvU64("EXT_INV_MAX_QUERIES", 100'000);
  const size_t shards = static_cast<size_t>(benchharness::EnvU64("EXT_INV_SHARDS", 16));
  std::cout << "ext_invalidation_scale: predicate-interval index + statement batching\n";

  double speedup_at_1e4 = 0;
  std::vector<benchharness::BenchMetric> metrics;
  ScalingSeries(max_queries, &speedup_at_1e4, &metrics);

  uint64_t locks_at_1000 = ~0ull;
  BatchingSeries(shards, &locks_at_1000, &metrics);
  benchharness::WriteBenchJson("ext_invalidation_scale", metrics);

  std::cout << "\n";
  if (max_queries >= 10'000) {
    benchharness::Check(speedup_at_1e4 >= 5.0,
                        "indexed Policy III is >= 5x faster than the linear scan at Q=10^4 "
                        "(measured " +
                            benchharness::Fmt(speedup_at_1e4, 2) + "x)");
  }
  benchharness::Check(locks_at_1000 < 1000,
                      "a 1000-row batch acquires fewer shard locks than rows (measured " +
                          std::to_string(locks_at_1000) + ")");
  return benchharness::Failures();
}
