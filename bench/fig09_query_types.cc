// Figure 9: cache hit rates per Set Query type under Policies I/II/III.
// Paper setup: update rate fixed at 2 %, one attribute per update.
//
// Paper shape claims (§5):
//   * Q1/Q2A/Q2B (exact-match, one or two attributes): high hit rates,
//     especially under the value-aware scheme.
//   * Q3/Q4 (range queries): value-aware still effective.
//   * Q5 (GROUP BY): Policies II and III equivalent.
//   * Q6 (join): II and III nearly equivalent, III edges ahead via the
//     extra exact-match conditions.
//   * Overall: III ≥ II ≫ I.
#include <iostream>
#include <map>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Figure 9: hit rate per query type (update rate 2%, 1 attr/update)", config);

  setquery::WorkloadConfig workload;
  workload.update_rate = 0.02;
  workload.attributes_per_update = 1;

  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
  };

  std::map<std::string, std::map<int, double>> table;  // type -> policy idx -> rate
  for (size_t p = 0; p < policies.size(); ++p) {
    const auto result = RunOne(config, policies[p], workload);
    for (const auto& [type, stats] : result.per_type) {
      table[type][static_cast<int>(p)] = stats.HitRatePercent();
    }
  }

  const std::vector<int> widths = {8, 12, 12, 12};
  PrintRow({"type", "Policy I", "Policy II", "Policy III"}, widths);
  for (const std::string& type : setquery::QueryTypeOrder()) {
    PrintRow({type, Fmt(table[type][0]), Fmt(table[type][1]), Fmt(table[type][2])}, widths);
  }

  std::cout << "\nShape checks vs. paper:\n";
  double mean[3] = {0, 0, 0};
  for (const std::string& type : setquery::QueryTypeOrder()) {
    for (int p = 0; p < 3; ++p) mean[p] += table[type][p] / 10.0;
  }
  Check(mean[2] >= mean[1] && mean[1] > mean[0] + 10,
        "overall III >= II >> I (means: " + Fmt(mean[0]) + " / " + Fmt(mean[1]) + " / " +
            Fmt(mean[2]) + ")");
  for (const std::string& type : {"1", "2A", "2B"}) {
    Check(table[type][2] >= 85.0, "Q" + type + " value-aware hit rate is high (>= 85%)");
    Check(table[type][2] >= table[type][1] + 5,
          "Q" + type + " value-aware clearly beats value-unaware");
  }
  for (const std::string& type : {"3A", "3B", "4A", "4B"}) {
    Check(table[type][2] >= table[type][1],
          "Q" + type + " value-aware helps range queries too");
  }
  Check(std::abs(table["5"][2] - table["5"][1]) <= 3.0,
        "Q5 (GROUP BY): Policies II and III are equivalent");
  for (const std::string& type : {"6A", "6B"}) {
    Check(table[type][2] >= table[type][1] - 1.0,
          "Q" + type + " (join): III >= II (small edge from exact-match conditions)");
  }
  return Failures() == 0 ? 0 : 1;
}
