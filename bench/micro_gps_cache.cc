// GPS-cache micro-benchmarks (paper §3 / Iyengar's IPCCC'99 companion
// paper on the GPS cache itself): operation costs for the memory store,
// the expiration mechanism, DUP propagation, and the transaction-log flush
// policy trade-off the paper calls out ("the overhead for immediately
// flushing every transaction log is substantial").
#include <benchmark/benchmark.h>

#include <filesystem>

#include "cache/gps_cache.h"
#include "dup/engine.h"
#include "middleware/query_engine.h"
#include "odg/graph.h"
#include "setquery/bench_table.h"
#include "setquery/queries.h"
#include "accel/page_server.h"
#include "sql/fingerprint.h"
#include "storage/csv.h"

namespace {

using namespace qc;

cache::CacheValuePtr MakeValue(size_t bytes) {
  return std::make_shared<cache::StringValue>(std::string(bytes, 'x'));
}

void BM_MemoryPut(benchmark::State& state) {
  cache::GpsCacheConfig config;
  cache::GpsCache cache(config);
  const auto value = MakeValue(static_cast<size_t>(state.range(0)));
  uint64_t i = 0;
  for (auto _ : state) {
    cache.Put("key" + std::to_string(i++ % 10000), value);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryPut)->Arg(64)->Arg(4096);

void BM_MemoryHit(benchmark::State& state) {
  cache::GpsCacheConfig config;
  cache::GpsCache cache(config);
  for (int i = 0; i < 10000; ++i) cache.Put("key" + std::to_string(i), MakeValue(64));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("key" + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryHit);

void BM_MemoryMiss(benchmark::State& state) {
  cache::GpsCacheConfig config;
  cache::GpsCache cache(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("absent"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MemoryMiss);

void BM_LruEvictionChurn(benchmark::State& state) {
  cache::GpsCacheConfig config;
  config.memory_max_entries = 1024;
  cache::GpsCache cache(config);
  uint64_t i = 0;
  for (auto _ : state) {
    cache.Put("key" + std::to_string(i++), MakeValue(64));  // every put evicts
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LruEvictionChurn);

void BM_ExpirationSweep(benchmark::State& state) {
  // Puts with TTLs landing in the past: each sweep pops the heap once per
  // expired object — the paper's "efficient algorithm for invalidating
  // objects based on expiration times".
  using namespace std::chrono_literals;
  for (auto _ : state) {
    state.PauseTiming();
    cache::TimePoint now{};
    cache::GpsCacheConfig config;
    config.now = [&now] { return now; };
    cache::GpsCache cache(config);
    for (int i = 0; i < 1000; ++i) {
      cache.Put("key" + std::to_string(i), MakeValue(64), std::chrono::seconds(1 + i % 7));
    }
    now += 10s;
    state.ResumeTiming();
    benchmark::DoNotOptimize(cache.ExpireDue());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ExpirationSweep);

void BM_TxLogAppend(benchmark::State& state) {
  const auto policy = static_cast<cache::LogFlushPolicy>(state.range(0));
  const std::string path = "/tmp/qc_bench_txlog.log";
  std::filesystem::remove(path);
  cache::TransactionLog log(path, policy);
  for (auto _ : state) {
    log.Append("hit", "SELECT COUNT(*) FROM BENCH WHERE K100 = 2");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(policy == cache::LogFlushPolicy::kEveryRecord ? "flush-every-record"
                 : policy == cache::LogFlushPolicy::kBuffered  ? "buffered-64KiB"
                                                               : "manual-flush");
}
BENCHMARK(BM_TxLogAppend)
    ->Arg(static_cast<int>(cache::LogFlushPolicy::kEveryRecord))
    ->Arg(static_cast<int>(cache::LogFlushPolicy::kBuffered))
    ->Arg(static_cast<int>(cache::LogFlushPolicy::kManual));

void BM_DiskStoreRoundTrip(benchmark::State& state) {
  cache::GpsCacheConfig config;
  config.mode = cache::CacheMode::kDisk;
  config.disk_directory = "/tmp/qc_bench_disk_store";
  config.deserializer = &cache::StringValue::Deserialize;
  cache::GpsCache cache(config);
  const auto value = MakeValue(4096);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "key" + std::to_string(i++ % 256);
    cache.Put(key, value);
    benchmark::DoNotOptimize(cache.Get(key));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DiskStoreRoundTrip);

void BM_OdgPropagate(benchmark::State& state) {
  // Fan-out: one attribute vertex feeding `range` cached objects.
  odg::Graph graph;
  const auto source = graph.AddVertex("col:T.A", odg::VertexKind::kUnderlying);
  for (int64_t i = 0; i < state.range(0); ++i) {
    const auto object = graph.AddVertex("obj" + std::to_string(i), odg::VertexKind::kObject);
    odg::Atom atom;
    atom.kind = odg::Atom::Kind::kBetween;
    atom.a = Value(i * 10);
    atom.b = Value(i * 10 + 9);
    graph.AddEdge(source, object, 1.0,
                  odg::EdgeAnnotation({atom}, odg::ColumnPredicate::MakeAtom(atom)));
  }
  int64_t v = 0;
  for (auto _ : state) {
    auto spec = odg::ChangeSpec::Update(Value(v), Value(v + 5));
    v = (v + 7) % (state.range(0) * 10);
    benchmark::DoNotOptimize(graph.Propagate(source, spec));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_OdgPropagate)->Arg(64)->Arg(1024);

void BM_CachedQueryHit(benchmark::State& state) {
  // The end-to-end "find" path on a warm cache: fingerprint + GPS lookup.
  storage::Database db;
  setquery::BenchTable bench(db, 5000);
  middleware::CachedQueryEngine engine(db, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM BENCH WHERE K100 = 2");
  engine.Execute(query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Execute(query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedQueryHit);

void BM_UncachedQuery(benchmark::State& state) {
  storage::Database db;
  setquery::BenchTable bench(db, 5000);
  middleware::CachedQueryEngine engine(db, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM BENCH WHERE K100 = 2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ExecuteUncached(*query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UncachedQuery);

void BM_DependencyExtraction(benchmark::State& state) {
  // The "compile time" cost of automatic ODG construction for a Set Query
  // Q3B-shaped statement (OR-of-ranges + equality).
  storage::Database db;
  setquery::BenchTable bench(db, 100);
  auto query = sql::ParseAndBind(
      "SELECT SUM(K1K) FROM BENCH WHERE (KSEQ BETWEEN 1 AND 5 OR KSEQ BETWEEN 20 AND 30) "
      "AND K4 = 3",
      db);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dup::ExtractDependencies(*query));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DependencyExtraction);

void BM_AnnotationInstantiation(benchmark::State& state) {
  // The "run time" parameter-binding cost the paper calls "minimal
  // overhead" (§4.2).
  storage::Database db;
  setquery::BenchTable bench(db, 100);
  auto query = sql::ParseAndBind("SELECT COUNT(*) FROM BENCH WHERE K100K = $1", db);
  auto deps = dup::ExtractDependencies(*query);
  const std::vector<Value> params = {Value(7)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(deps->columns[0].Instantiate(params));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AnnotationInstantiation);

void BM_FingerprintParameterized(benchmark::State& state) {
  storage::Database db;
  setquery::BenchTable bench(db, 100);
  auto query = sql::ParseAndBind("SELECT COUNT(*) FROM BENCH WHERE K100K = $1", db);
  const std::vector<Value> params = {Value(7)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Fingerprint(query->stmt(), params));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FingerprintParameterized);

void BM_AcceleratorServeHit(benchmark::State& state) {
  accel::PageServer server;
  server.SetFragment("nav", "<nav>menu</nav>");
  server.DefinePage("/index.html", "{{nav}}<p>body</p>");
  server.Serve("/index.html");
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.Serve("/index.html"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AcceleratorServeHit);

void BM_CsvImport(benchmark::State& state) {
  storage::Database db;
  setquery::BenchTable bench(db, 2000);
  const std::string csv = storage::ExportCsv(bench.table());
  for (auto _ : state) {
    storage::Database fresh_db;
    setquery::BenchTable schema_only(fresh_db, 1);
    benchmark::DoNotOptimize(storage::ImportCsv(schema_only.table(), csv));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_CsvImport);

}  // namespace

BENCHMARK_MAIN();
