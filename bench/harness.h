// Shared harness for the paper-figure reproduction binaries.
//
// Every fig*_ binary runs the Set Query update-mix workload under the
// three paper policies (plus, where instructive, the row-aware ablation),
// prints the measured series next to the paper's qualitative expectations,
// and self-checks the *shape* claims (who wins, orderings) so a regression
// is visible in CI output.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "dup/policy.h"
#include "middleware/query_engine.h"
#include "setquery/bench_table.h"
#include "setquery/workload.h"
#include "storage/database.h"

namespace qc::benchharness {

/// Environment override helper (SETQUERY_ROWS, SETQUERY_TXNS, ...).
uint64_t EnvU64(const char* name, uint64_t fallback);

struct FigureConfig {
  uint64_t rows = 50'000;        // SETQUERY_ROWS
  uint64_t transactions = 4'000; // SETQUERY_TXNS
  uint64_t seed = 42;            // SETQUERY_SEED
  static FigureConfig FromEnv();
};

/// A fresh database + BENCH table + engine for one measurement run (every
/// run starts from identical storage state and RNG seed so policies are
/// comparable).
struct Fixture {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<setquery::BenchTable> bench;
  std::unique_ptr<middleware::CachedQueryEngine> engine;
  std::unique_ptr<setquery::WorkloadRunner> runner;
};

Fixture MakeFixture(const FigureConfig& config, dup::InvalidationPolicy policy);

/// Run one workload under one policy on a fresh fixture.
setquery::WorkloadResult RunOne(const FigureConfig& config, dup::InvalidationPolicy policy,
                                const setquery::WorkloadConfig& workload);

/// Fixed-width table printing.
void PrintHeader(const std::string& title, const FigureConfig& config);
void PrintRow(const std::vector<std::string>& cells, const std::vector<int>& widths);
std::string Fmt(double v, int precision = 1);

/// Shape-check bookkeeping: Check() prints ok/VIOLATION and returns the
/// process-wide pass/fail accumulator via Failures().
bool Check(bool condition, const std::string& claim);
int Failures();

/// One measured point for the machine-readable artifact: a metric name, a
/// value with its unit, and the configuration labels that locate it in the
/// sweep (threads, shards, eviction policy, ...).
struct BenchMetric {
  std::string name;   // e.g. "hit_throughput"
  double value = 0.0;
  std::string unit;   // e.g. "ops_per_sec", "ns_per_op"
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Write the run's metrics as `BENCH_<bench_name>.json` (into
/// $BENCH_JSON_DIR, default the working directory) so CI and tooling can
/// trend results without scraping the human-readable tables. Returns the
/// path written, or empty on I/O failure (reported to stderr, never fatal
/// — the self-checks, not the artifact, gate the run).
std::string WriteBenchJson(const std::string& bench_name,
                           const std::vector<BenchMetric>& metrics);

}  // namespace qc::benchharness
