// Extension bench: the paper's original motivation (§2) — "performance
// profiling clearly correlated the performance bottleneck with the
// overhead introduced by querying the persistent store". Measures ABR
// decision-point throughput with caching disabled vs. each policy, on the
// web-shopping workload (Q1 + Q2 per page, occasional administration).
#include <chrono>
#include <iostream>

#include "abr/firing.h"
#include "abr/rule_server.h"
#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct Outcome {
  double pages_per_second;
  double hit_rate;
};

Outcome RunShop(bool caching, dup::InvalidationPolicy policy, uint64_t pages,
                bool refresh = false) {
  storage::Database db;
  auto options = abr::RuleServer::DefaultOptions();
  options.caching_enabled = caching;
  options.policy = policy;
  // Model the remote persistent store (the paper's server reached DB2 over
  // JDBC): a conservative 20 µs per database access — two to three orders
  // of magnitude below a 2000-era JDBC round trip.
  options.simulated_db_latency = std::chrono::microseconds(20);
  options.refresh_on_invalidate = refresh;
  abr::RuleServer server(db, options);

  // A realistic rule base: 40 contexts x (1 classifier + promotions for 4
  // levels), plus distractor rules, so Q1/Q2 misses pay a real lookup cost.
  const std::vector<std::string> levels = {"Gold", "Silver", "Bronze", "Basic"};
  for (int c = 0; c < 40; ++c) {
    abr::RuleUseData classifier;
    classifier.name = "classify" + std::to_string(c);
    classifier.context_id = "customerLevel" + std::to_string(c);
    classifier.type = "classifier";
    classifier.implementation = "classify";
    server.CreateRuleUse(classifier);
    for (const std::string& level : levels) {
      abr::RuleUseData promo;
      promo.name = "promo" + std::to_string(c) + level;
      promo.context_id = "promotion";
      promo.classification = level;
      promo.type = "situational";
      promo.implementation = "emit";
      promo.init_params = "/promos/" + level + std::to_string(c) + ".html";
      server.CreateRuleUse(promo);
    }
  }

  abr::RuleRegistry registry;
  registry.Register("classify", [&](const abr::RuleUseView&, const abr::RuleContext& ctx) {
    const int64_t spend = ctx.at("spend").as_int();
    if (spend > 900) return Value("Gold");
    if (spend > 600) return Value("Silver");
    if (spend > 300) return Value("Bronze");
    return Value("Basic");
  });
  registry.Register("emit", [](const abr::RuleUseView& rule, const abr::RuleContext&) {
    return rule.Get("INITPARAMS");
  });

  Rng rng(4242);
  abr::RuleId admin_target = 1;
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t p = 0; p < pages; ++p) {
    if (p % 200 == 199) {  // occasional administration (0.5 % of traffic)
      server.SetAttribute(admin_target, "PRIORITY", Value(rng.Uniform(0, 9)));
      admin_target = 1 + rng.Uniform(0, 39) * 5;
    }
    const std::string context = "customerLevel" + std::to_string(rng.Uniform(0, 39));
    abr::ClassifyAndSelectDecisionPoint dp(server, registry, context);
    auto outcome = dp.Run({{"spend", Value(rng.Uniform(0, 1200))}});
    if (outcome.content.empty()) std::abort();  // every page must fill its hole
  }
  const auto elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start);

  Outcome out;
  out.pages_per_second = static_cast<double>(pages) / elapsed.count();
  out.hit_rate = 100.0 * server.engine().stats().HitRate();
  return out;
}

}  // namespace

int main() {
  const uint64_t pages = EnvU64("ABR_PAGES", 20'000);
  std::cout << "=== Extension: ABR web-shopping throughput (" << pages
            << " pages, 40 contexts, 0.5% admin writes) ===\n\n";

  const Outcome uncached = RunShop(false, dup::InvalidationPolicy::kValueAware, pages);
  const Outcome policy1 = RunShop(true, dup::InvalidationPolicy::kFlushAll, pages);
  const Outcome policy3 = RunShop(true, dup::InvalidationPolicy::kValueAware, pages);
  const Outcome refresh3 = RunShop(true, dup::InvalidationPolicy::kValueAware, pages, true);

  const std::vector<int> widths = {22, 16, 14, 12};
  PrintRow({"configuration", "pages/second", "hit rate %", "speedup"}, widths);
  PrintRow({"no cache", Fmt(uncached.pages_per_second, 0), "-", "1.0x"}, widths);
  PrintRow({"Policy I", Fmt(policy1.pages_per_second, 0), Fmt(policy1.hit_rate),
            Fmt(policy1.pages_per_second / uncached.pages_per_second, 1) + "x"},
           widths);
  PrintRow({"Policy III", Fmt(policy3.pages_per_second, 0), Fmt(policy3.hit_rate),
            Fmt(policy3.pages_per_second / uncached.pages_per_second, 1) + "x"},
           widths);
  PrintRow({"Policy III + refresh", Fmt(refresh3.pages_per_second, 0), Fmt(refresh3.hit_rate),
            Fmt(refresh3.pages_per_second / uncached.pages_per_second, 1) + "x"},
           widths);

  std::cout << "\nChecks:\n";
  Check(policy3.pages_per_second > uncached.pages_per_second * 1.5,
        "caching removes the §2 query bottleneck (>1.5x page throughput)");
  Check(policy3.pages_per_second >= policy1.pages_per_second,
        "value-aware invalidation beats flush-on-any-write under admin traffic");
  Check(policy3.hit_rate > 95.0, "steady-state rule lookups are nearly all cache hits");
  Check(refresh3.hit_rate >= policy3.hit_rate,
        "Fig. 7's 'update cache' path (refresh) keeps the cache at least as warm");
  return Failures() == 0 ? 0 : 1;
}
