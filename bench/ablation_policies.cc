// Ablation (beyond the paper): what each invalidation refinement buys.
//
//   Policy I   — flush everything (no dependency tracking)
//   Policy II  — column-level dependencies (value-unaware DUP)
//   Policy III — + value-aware edge annotations (the paper's contribution)
//   Policy IV  — + row-aware before/after re-evaluation (our extension)
//
// Run on the Fig. 10 sweep so the marginal value of each step is visible
// across update rates, together with the invalidation traffic it avoids.
#include <iostream>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Ablation: invalidation policy ladder (update size 2 attrs)", config);

  const std::vector<double> rates = {0.02, 0.10, 0.25};
  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
      dup::InvalidationPolicy::kRowAware,
  };

  const std::vector<int> widths = {10, 11, 11, 11, 11, 14, 14};
  PrintRow({"rate %", "I", "II", "III", "IV", "inv/txn III", "inv/txn IV"}, widths);
  std::vector<std::vector<setquery::WorkloadResult>> results(rates.size());
  for (size_t r = 0; r < rates.size(); ++r) {
    setquery::WorkloadConfig workload;
    workload.update_rate = rates[r];
    workload.attributes_per_update = 2;
    for (auto policy : policies) {
      results[r].push_back(RunOne(config, policy, workload));
    }
    PrintRow({Fmt(rates[r] * 100, 0), Fmt(results[r][0].HitRatePercent()),
              Fmt(results[r][1].HitRatePercent()), Fmt(results[r][2].HitRatePercent()),
              Fmt(results[r][3].HitRatePercent()),
              Fmt(results[r][2].InvalidationsPerTransaction(), 3),
              Fmt(results[r][3].InvalidationsPerTransaction(), 3)},
             widths);
  }

  std::cout << "\nChecks:\n";
  for (size_t r = 0; r < rates.size(); ++r) {
    const std::string at = " at rate " + Fmt(rates[r] * 100, 0) + "%";
    Check(results[r][1].HitRatePercent() >= results[r][0].HitRatePercent() - 1.0,
          "column deps (II) never hurt vs flush-all" + at);
    Check(results[r][2].HitRatePercent() >= results[r][1].HitRatePercent() - 1.0,
          "value-aware (III) never hurts vs value-unaware" + at);
    Check(results[r][3].HitRatePercent() >= results[r][2].HitRatePercent() - 1.0,
          "row-aware (IV) never hurts vs value-aware" + at);
    Check(results[r][3].InvalidationsPerTransaction() <=
              results[r][2].InvalidationsPerTransaction() + 1e-9,
          "row-aware refinement reduces invalidation traffic" + at);
  }
  const double step2 = results[1][2].HitRatePercent() - results[1][1].HitRatePercent();
  Check(step2 > 5, "the paper's value-aware step is the big win at 10% updates (gap " +
                       Fmt(step2) + " points)");
  return Failures() == 0 ? 0 : 1;
}
