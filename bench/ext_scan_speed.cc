// ext_scan_speed: miss-path scan-engine comparison and Set Query suite
// latency.
//
// Part 1 builds an *unindexed* copy of the Set Query BENCH table (so the
// access-path planner finds no candidate and every query is a genuine full
// scan) and runs representative Q1..Q6B-shaped predicates — including
// two-table self equi-joins and packed-key GROUP BYs — through both
// executors: the vectorized columnar engine (sql::Execute) and the
// row-at-a-time oracle (sql::ExecuteRowAtATime). It self-checks that the
// two engines return identical results and, at >= 100k rows, that the
// vectorized engine clears EXT_SCAN_MIN_SPEEDUP (default 5) on the scan
// shapes, EXT_SCAN_MIN_JOIN_SPEEDUP (default 3) on the join shapes, and
// EXT_SCAN_MIN_GROUP_SPEEDUP (default 3) on the grouped shapes.
//
// Part 2 builds the real (indexed) BenchTable at the same scale and runs
// the full Q1..Q6B suite through the production Execute entry point,
// reporting per-family latency and self-checking that every family stays
// interactive (EXT_SCAN_INTERACTIVE_MS, default 2000 ms per query) — the
// paper's miss-path requirement.
//
// Env knobs: EXT_SCAN_ROWS (default 1'000'000), EXT_SCAN_REPS (default 3),
// EXT_SCAN_MIN_SPEEDUP, EXT_SCAN_MIN_JOIN_SPEEDUP, EXT_SCAN_MIN_GROUP_SPEEDUP,
// EXT_SCAN_INTERACTIVE_MS.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness.h"
#include "setquery/bench_table.h"
#include "setquery/queries.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/vectorized.h"
#include "storage/database.h"

namespace qc {
namespace {

using benchharness::BenchMetric;
using benchharness::Check;
using benchharness::EnvU64;
using benchharness::Fmt;
using benchharness::PrintRow;

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

template <typename Fn>
double TimeMs(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return MsBetween(t0, std::chrono::steady_clock::now());
}

/// Populate `db` with table SCAN: the 13 Set Query columns and value
/// distributions, but *no indexes*, so both engines full-scan.
storage::Table& BuildUnindexedBench(storage::Database& db, uint64_t rows) {
  std::vector<storage::ColumnDef> cols;
  for (const auto& c : setquery::BenchColumns()) {
    cols.push_back({c.name, ValueType::kInt, false});
  }
  storage::Table& t = db.CreateTable("SCAN", storage::Schema(std::move(cols)));
  Rng rng(0x5ca25eed);
  for (uint64_t i = 1; i <= rows; ++i) {
    storage::Row row;
    row.reserve(setquery::BenchAttributeCount());
    for (const auto& c : setquery::BenchColumns()) {
      const int64_t v =
          c.cardinality == 0 ? static_cast<int64_t>(i) : rng.Uniform(1, c.cardinality);
      row.push_back(Value(v));
    }
    t.Insert(std::move(row));
  }
  return t;
}

struct ScanShape {
  std::string name;
  std::string sql;
  bool grouped = false;  // gated separately from the scan shapes
  bool joined = false;   // two-table equi-join, gated separately as well
};

/// Q1..Q5-shaped predicates over the unindexed table. KSEQ constants are
/// scaled to `rows` the same way BenchTable::ScaledKseq scales them.
std::vector<ScanShape> ScanShapes(uint64_t rows) {
  auto kseq = [&](int64_t canonical) {
    return std::to_string(static_cast<int64_t>(
        static_cast<double>(canonical) * static_cast<double>(rows) /
        static_cast<double>(setquery::kCanonicalRows)));
  };
  return {
      {"q1_count_eq", "SELECT COUNT(*) FROM SCAN WHERE K100 = 42"},
      {"q2a_conj", "SELECT COUNT(*) FROM SCAN WHERE K2 = 2 AND K10K = 500"},
      {"q2b_negation", "SELECT COUNT(*) FROM SCAN WHERE K2 = 2 AND NOT K1K = 3"},
      {"q3a_sum_between", "SELECT SUM(K1K) FROM SCAN WHERE KSEQ BETWEEN " + kseq(400'000) +
                              " AND " + kseq(500'000) + " AND K100 = 3"},
      {"q3b_or_ranges", "SELECT SUM(K1K) FROM SCAN WHERE (KSEQ BETWEEN " + kseq(400'000) +
                            " AND " + kseq(410'000) + " OR KSEQ BETWEEN " + kseq(480'000) +
                            " AND " + kseq(500'000) + ") AND K25 = 11"},
      {"q4a_multi_conj",
       "SELECT KSEQ, K500K FROM SCAN WHERE K2 = 1 AND K100 > 80 AND K10K BETWEEN 2000 AND 3000"},
      {"q_in_list", "SELECT COUNT(*) FROM SCAN WHERE K25 IN (3, 11, 19)"},
      {"q5_group_by", "SELECT K10, K25, COUNT(*) FROM SCAN GROUP BY K10, K25", true},
      {"q5_group_small", "SELECT K5, COUNT(*), SUM(K25) FROM SCAN GROUP BY K5", true},
      // Q6A/Q6B-shaped self equi-joins: a selective build side hashed, the
      // full table probed (see setquery/queries.cc for the indexed originals).
      {"q6a_join_count",
       "SELECT COUNT(*) FROM SCAN B1, SCAN B2 WHERE B1.K100 = 49 AND B1.K250K = B2.K500K",
       false, true},
      {"q6b_join_project",
       "SELECT B1.KSEQ, B2.KSEQ FROM SCAN B1, SCAN B2 WHERE B1.K40K = 99 "
       "AND B1.K250K = B2.K500K AND B2.K25 = 19",
       false, true},
  };
}

int Run() {
  const uint64_t rows = EnvU64("EXT_SCAN_ROWS", 1'000'000);
  const uint64_t reps = std::max<uint64_t>(1, EnvU64("EXT_SCAN_REPS", 3));
  const double min_speedup = static_cast<double>(EnvU64("EXT_SCAN_MIN_SPEEDUP", 5));
  const double min_join_speedup = static_cast<double>(EnvU64("EXT_SCAN_MIN_JOIN_SPEEDUP", 3));
  const double min_group_speedup = static_cast<double>(EnvU64("EXT_SCAN_MIN_GROUP_SPEEDUP", 3));
  const double interactive_ms = static_cast<double>(EnvU64("EXT_SCAN_INTERACTIVE_MS", 2000));

  std::cout << "ext_scan_speed: vectorized engine vs row-at-a-time oracle\n"
            << "rows=" << rows << " reps=" << reps << " min_speedup=" << min_speedup
            << "x interactive_ms=" << interactive_ms << "\n\n";

  std::vector<BenchMetric> metrics;

  // ---- Part 1: unindexed full scans, both engines -----------------------
  storage::Database db;
  storage::Table& scan = BuildUnindexedBench(db, rows);
  (void)scan;

  const std::vector<int> widths = {18, 10, 10, 10, 10, 9};
  PrintRow({"shape", "row ms", "vec ms", "row ns/r", "vec ns/r", "speedup"}, widths);

  const sql::VectorizedStats before = sql::GetVectorizedStats();
  double scan_row_ms = 0.0, scan_vec_ms = 0.0;    // filter/aggregate scan shapes
  double group_row_ms = 0.0, group_vec_ms = 0.0;  // GROUP BY (packed/hash)
  double join_row_ms = 0.0, join_vec_ms = 0.0;    // two-table hash joins
  size_t vec_runs = 0;
  for (const ScanShape& shape : ScanShapes(rows)) {
    auto query = sql::ParseAndBind(shape.sql, db);
    sql::ResultSet oracle;
    const double row_ms = TimeMs([&] { oracle = sql::ExecuteRowAtATime(*query, {}); });
    sql::ResultSet vec;
    double vec_ms = -1.0;
    for (uint64_t r = 0; r < reps; ++r) {
      sql::ResultSet out;
      const double ms = TimeMs([&] { out = sql::Execute(*query, {}); });
      if (vec_ms < 0 || ms < vec_ms) vec_ms = ms;
      vec = std::move(out);
      ++vec_runs;
    }
    Check(vec.Equals(oracle), shape.name + ": vectorized result matches the row oracle");

    const double row_ns = row_ms * 1e6 / static_cast<double>(rows);
    const double vec_ns = vec_ms * 1e6 / static_cast<double>(rows);
    (shape.joined ? join_row_ms : shape.grouped ? group_row_ms : scan_row_ms) += row_ms;
    (shape.joined ? join_vec_ms : shape.grouped ? group_vec_ms : scan_vec_ms) += vec_ms;
    PrintRow({shape.name, Fmt(row_ms), Fmt(vec_ms), Fmt(row_ns, 2), Fmt(vec_ns, 2),
              Fmt(row_ms / vec_ms) + "x"},
             widths);
    metrics.push_back({"scan_ns_per_row", row_ns, "ns_per_row",
                       {{"engine", "row"}, {"shape", shape.name}}});
    metrics.push_back({"scan_ns_per_row", vec_ns, "ns_per_row",
                       {{"engine", "vectorized"}, {"shape", shape.name}}});
  }
  const double scan_speedup = scan_row_ms / scan_vec_ms;
  const double group_speedup = group_row_ms / group_vec_ms;
  const double join_speedup = join_row_ms / join_vec_ms;
  std::cout << "\naggregate scan-shape speedup: " << Fmt(scan_speedup, 2) << "x ("
            << Fmt(scan_row_ms) << " ms row vs " << Fmt(scan_vec_ms) << " ms vec)\n"
            << "group-by shape speedup:       " << Fmt(group_speedup, 2)
            << "x (packed direct-array group slots)\n"
            << "join shape speedup:           " << Fmt(join_speedup, 2)
            << "x (typed hash build + batched probe)\n\n";
  metrics.push_back({"scan_speedup", scan_speedup, "ratio", {{"rows", std::to_string(rows)}}});
  metrics.push_back({"group_speedup", group_speedup, "ratio", {{"rows", std::to_string(rows)}}});
  metrics.push_back({"join_speedup", join_speedup, "ratio", {{"rows", std::to_string(rows)}}});

  const sql::VectorizedStats after = sql::GetVectorizedStats();
  Check(after.queries_vectorized - before.queries_vectorized == vec_runs,
        "every full-scan shape took the vectorized path (no silent fallback)");
  Check(after.joins_vectorized > before.joins_vectorized,
        "the join shapes took the vectorized hash join");
  if (rows >= 100'000) {
    Check(scan_speedup >= min_speedup,
          "vectorized scans are >= " + Fmt(min_speedup, 0) + "x faster than the row oracle");
    Check(group_speedup >= min_group_speedup,
          "packed GROUP BY is >= " + Fmt(min_group_speedup, 0) + "x faster than the row oracle");
    Check(join_speedup >= min_join_speedup,
          "vectorized hash join is >= " + Fmt(min_join_speedup, 0) +
              "x faster than the row oracle");
  }
  if (rows >= 2 * sql::kVectorBatchRows * 64 && std::thread::hardware_concurrency() >= 2) {
    Check(after.parallel_scans > before.parallel_scans,
          "large full scans were partitioned across the scan pool");
  }

  // ---- Part 2: indexed BenchTable, full Q1..Q6B suite -------------------
  storage::Database db2;
  setquery::BenchTable bench(db2, rows);
  auto suite = setquery::BuildAllQueries(bench);

  std::cout << "Set Query suite (indexed BENCH, production Execute path):\n";
  const std::vector<int> swidths = {8, 8, 12, 12};
  PrintRow({"family", "queries", "total ms", "avg ms"}, swidths);

  for (const std::string& family : setquery::QueryTypeOrder()) {
    double family_ms = 0.0;
    size_t count = 0;
    bool first = true;
    for (const auto& spec : suite) {
      if (spec.type != family) continue;
      auto query = sql::ParseAndBind(spec.sql, db2);
      sql::ResultSet out;
      family_ms += TimeMs([&] { out = sql::Execute(*query, {}); });
      ++count;
      if (first) {
        // One differential spot-check per family; the randomized suite in
        // tests/sql covers the rest.
        sql::ResultSet oracle = sql::ExecuteRowAtATime(*query, {});
        Check(out.Equals(oracle), "Q" + family + " first variant matches the row oracle");
        first = false;
      }
    }
    const double avg_ms = family_ms / static_cast<double>(count);
    PrintRow({"Q" + family, std::to_string(count), Fmt(family_ms), Fmt(avg_ms, 2)}, swidths);
    Check(avg_ms <= interactive_ms,
          "Q" + family + " average stays interactive (<= " + Fmt(interactive_ms, 0) + " ms)");
    metrics.push_back({"suite_avg_ms", avg_ms, "ms_per_query",
                       {{"family", "Q" + family}, {"rows", std::to_string(rows)}}});
  }

  benchharness::WriteBenchJson("ext_scan_speed", metrics);
  return benchharness::Failures();
}

}  // namespace
}  // namespace qc

int main() { return qc::Run(); }
