// Figure 12: the hot-spot (80/20) effect at update rates 2 % and 25 %,
// two attributes per update.
//
// "80% of the accesses were uniformly distributed among 20% of the data"
// — the skew ranges over parameter *values*, so the workload runs in
// parameterized mode: the cached population is (template × pool value),
// the paper's Q2($1) pattern, and hot spots select parameter values.
//
// Paper shape claims: Policy I's hit rate varies little with hot spots
// (the paper draws a single bar for it); Policies II and III gain
// significantly more, and their advantage increases with the update rate.
#include <cmath>
#include <iostream>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Figure 12: hot-spot effect (80/20), 2 attrs/update, parameterized queries", config);

  const std::vector<double> rates = {0.02, 0.25};
  struct Cell {
    double uniform = 0, hot = 0;
    double Gain() const { return hot - uniform; }
    double Ratio() const { return uniform > 0 ? hot / uniform : 0.0; }
  };
  // [rate][policy] -> Cell ; policies: 0=I, 1=II, 2=III
  std::vector<std::vector<Cell>> grid(rates.size(), std::vector<Cell>(3));
  const std::vector<dup::InvalidationPolicy> policies = {
      dup::InvalidationPolicy::kFlushAll,
      dup::InvalidationPolicy::kValueUnaware,
      dup::InvalidationPolicy::kValueAware,
  };

  for (size_t r = 0; r < rates.size(); ++r) {
    for (size_t p = 0; p < policies.size(); ++p) {
      for (bool hot : {false, true}) {
        setquery::WorkloadConfig workload;
        workload.update_rate = rates[r];
        workload.attributes_per_update = 2;
        workload.hot_spot = hot;
        workload.parameterized = true;
        workload.param_pool_size = 25;
        const auto result = RunOne(config, policies[p], workload);
        (hot ? grid[r][p].hot : grid[r][p].uniform) = result.HitRatePercent();
      }
    }
  }

  const std::vector<int> widths = {8, 11, 11, 12, 12, 13, 13};
  PrintRow({"rate %", "I unif", "I hot", "II unif", "II hot", "III unif", "III hot"}, widths);
  for (size_t r = 0; r < rates.size(); ++r) {
    PrintRow({Fmt(rates[r] * 100, 0), Fmt(grid[r][0].uniform), Fmt(grid[r][0].hot),
              Fmt(grid[r][1].uniform), Fmt(grid[r][1].hot), Fmt(grid[r][2].uniform),
              Fmt(grid[r][2].hot)},
             widths);
  }

  std::cout << "\nShape checks vs. paper:\n";
  for (size_t r = 0; r < rates.size(); ++r) {
    const std::string at = " at rate " + Fmt(rates[r] * 100, 0) + "%";
    Check(grid[r][1].hot > grid[r][1].uniform, "Policy II gains from hot spots" + at);
    Check(grid[r][2].hot > grid[r][2].uniform, "Policy III gains from hot spots" + at);
    Check(grid[r][0].Gain() < 0.5 * grid[r][1].Gain() && grid[r][0].Gain() < 8.0,
          "Policy I varies little with hot spots (paper draws one bar for it)" + at);
  }
  Check(grid[1][1].Ratio() > grid[0][1].Ratio(),
        "Policy II's relative hot-spot advantage grows with the update rate (" +
            Fmt(grid[0][1].Ratio(), 2) + "x -> " + Fmt(grid[1][1].Ratio(), 2) + "x)");
  Check(grid[1][2].Ratio() > grid[0][2].Ratio(),
        "Policy III's relative hot-spot advantage grows with the update rate (" +
            Fmt(grid[0][2].Ratio(), 2) + "x -> " + Fmt(grid[1][2].Ratio(), 2) + "x)");
  return Failures() == 0 ? 0 : 1;
}
