// Figure 13: average number of query invalidations per transaction as a
// function of the update rate (1–10 %), two attributes per update, for
// Policies II and III. The paper reads this as the coherence traffic a
// distributed deployment would pay.
//
// Paper shape claims: invalidations/transaction grows with the update
// rate for both policies, and the value-aware policy produces several
// times fewer invalidations than the value-unaware one.
#include <iostream>

#include "harness.h"

using namespace qc;
using namespace qc::benchharness;

int main() {
  const FigureConfig config = FigureConfig::FromEnv();
  PrintHeader("Figure 13: query invalidations per transaction (2 attrs/update)", config);

  const std::vector<double> rates = {0.01, 0.02, 0.05, 0.10};
  std::vector<double> ii, iii;

  const std::vector<int> widths = {10, 14, 14, 10};
  PrintRow({"rate %", "Policy II", "Policy III", "ratio"}, widths);
  for (double rate : rates) {
    setquery::WorkloadConfig workload;
    workload.update_rate = rate;
    workload.attributes_per_update = 2;
    const auto r2 = RunOne(config, dup::InvalidationPolicy::kValueUnaware, workload);
    const auto r3 = RunOne(config, dup::InvalidationPolicy::kValueAware, workload);
    ii.push_back(r2.InvalidationsPerTransaction());
    iii.push_back(r3.InvalidationsPerTransaction());
    PrintRow({Fmt(rate * 100, 0), Fmt(ii.back(), 3), Fmt(iii.back(), 3),
              Fmt(iii.back() > 0 ? ii.back() / iii.back() : 0.0, 1)},
             widths);
  }

  std::cout << "\nShape checks vs. paper:\n";
  for (size_t i = 0; i + 1 < rates.size(); ++i) {
    Check(ii[i + 1] > ii[i],
          "Policy II invalidations grow with update rate (" + Fmt(rates[i] * 100, 0) + "% -> " +
              Fmt(rates[i + 1] * 100, 0) + "%)");
    Check(iii[i + 1] > iii[i],
          "Policy III invalidations grow with update rate (" + Fmt(rates[i] * 100, 0) + "% -> " +
              Fmt(rates[i + 1] * 100, 0) + "%)");
  }
  for (size_t i = 0; i < rates.size(); ++i) {
    // "far fewer": at low rates III invalidates less than half as often as
    // II; at higher rates the gap compresses (under II more results are
    // already absent when the next update lands) but stays substantial.
    Check(iii[i] < ii[i] / 1.5,
          "Policy III produces substantially fewer invalidations at rate " +
              Fmt(rates[i] * 100, 0) + "%");
  }
  Check(ii.front() / iii.front() > ii.back() / iii.back(),
        "the II/III invalidation ratio is largest at low update rates");
  return Failures() == 0 ? 0 : 1;
}
