// Extension bench: why DUP instead of plain expiration times?
//
// The GPS cache already had TTL invalidation (paper §3); the paper's
// contribution is update-driven selective invalidation (§4). This bench
// quantifies the difference on the Set Query mix: a TTL-only cache must
// pick between freshness (short TTL → misses) and hit rate (long TTL →
// stale reads), while value-aware DUP delivers both at once.
#include <iostream>

#include "harness.h"
#include "setquery/queries.h"

using namespace qc;
using namespace qc::benchharness;

namespace {

struct Row {
  std::string label;
  double hit_rate = 0, stale_rate = 0;
};

Row RunConfig(const FigureConfig& fig, dup::InvalidationPolicy policy,
              std::optional<cache::Duration> ttl, const std::string& label) {
  storage::Database db;
  setquery::BenchTable bench(db, fig.rows);
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  options.default_ttl = ttl;
  // A deterministic logical clock: one microsecond per transaction, so a
  // "200 µs" TTL means 200 transactions of lifetime.
  static uint64_t logical_time;
  logical_time = 0;
  options.cache.now = [] { return cache::TimePoint(std::chrono::microseconds(logical_time)); };
  middleware::CachedQueryEngine engine(db, options);

  const auto specs = setquery::BuildAllQueries(bench);
  std::vector<std::shared_ptr<const sql::BoundQuery>> queries;
  for (const auto& spec : specs) queries.push_back(engine.Prepare(spec.sql));
  for (const auto& query : queries) engine.Execute(query);

  Rng rng(fig.seed);
  uint64_t queries_run = 0, hits = 0, stale = 0;
  for (uint64_t t = 0; t < fig.transactions; ++t) {
    ++logical_time;
    if (rng.Chance(0.05)) {
      const auto row = bench.RandomRow(rng);
      std::vector<std::pair<uint32_t, Value>> sets;
      for (int i = 0; i < 2; ++i) {
        const auto col = static_cast<uint32_t>(rng.Uniform(0, 12));
        sets.emplace_back(col, Value(bench.RandomValue(col, rng)));
      }
      bench.table().Update(row, sets);
    } else {
      const auto& query = queries[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1))];
      auto outcome = engine.Execute(query);
      ++queries_run;
      if (outcome.cache_hit) {
        ++hits;
        if (!outcome.result->Equals(engine.ExecuteUncached(*query))) ++stale;
      }
    }
  }
  Row out;
  out.label = label;
  out.hit_rate = queries_run ? 100.0 * static_cast<double>(hits) / queries_run : 0;
  out.stale_rate = hits ? 100.0 * static_cast<double>(stale) / hits : 0;
  return out;
}

}  // namespace

int main() {
  FigureConfig fig = FigureConfig::FromEnv();
  fig.rows = EnvU64("SETQUERY_ROWS", 20'000);
  fig.transactions = EnvU64("SETQUERY_TXNS", 3'000);
  PrintHeader("Extension: TTL-only caching vs DUP (5% updates, 2 attrs)", fig);

  using std::chrono::microseconds;
  std::vector<Row> rows = {
      RunConfig(fig, dup::InvalidationPolicy::kNone, microseconds(50), "TTL=50 txns"),
      RunConfig(fig, dup::InvalidationPolicy::kNone, microseconds(200), "TTL=200 txns"),
      RunConfig(fig, dup::InvalidationPolicy::kNone, microseconds(1000), "TTL=1000 txns"),
      RunConfig(fig, dup::InvalidationPolicy::kValueAware, std::nullopt, "DUP Policy III"),
  };

  const std::vector<int> widths = {18, 12, 14};
  PrintRow({"configuration", "hit rate %", "stale hits %"}, widths);
  for (const Row& row : rows) {
    PrintRow({row.label, Fmt(row.hit_rate), Fmt(row.stale_rate, 2)}, widths);
  }

  std::cout << "\nChecks:\n";
  Check(rows[0].hit_rate < rows[2].hit_rate,
        "short TTLs cost hit rate; long TTLs recover it...");
  Check(rows[0].stale_rate < rows[2].stale_rate, "...but long TTLs pay in staleness");
  const Row& dup_row = rows[3];
  Check(dup_row.stale_rate == 0.0, "DUP serves zero stale hits (sound dependency mode)");
  // The Pareto claim: TTL can only exceed DUP's hit rate by paying heavily
  // in staleness, and any near-fresh TTL point pays heavily in hit rate.
  bool pareto = true;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (rows[i].hit_rate > dup_row.hit_rate && rows[i].stale_rate < 5.0) pareto = false;
    if (rows[i].stale_rate < 1.0 && rows[i].hit_rate > dup_row.hit_rate - 10.0) pareto = false;
  }
  Check(pareto,
        "no TTL point beats DUP's hit rate without substantial staleness (Pareto frontier)");
  return Failures() == 0 ? 0 : 1;
}
