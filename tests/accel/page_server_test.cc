#include "accel/page_server.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace qc::accel {
namespace {

class PageServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_.SetFragment("header", "<h1>Shop</h1>");
    server_.SetFragment("prices", "<ul>prices v1</ul>");
    server_.SetFragment("footer", "(c) 2000");
    server_.DefinePage("/index.html", "{{header}}welcome{{footer}}");
    server_.DefinePage("/products/a.html", "{{header}}A: {{prices}}{{footer}}");
    server_.DefinePage("/products/b.html", "{{header}}B: {{prices}}{{footer}}");
  }

  PageServer server_;
};

TEST_F(PageServerTest, RendersAndCaches) {
  const std::string html = server_.Serve("/index.html");
  EXPECT_EQ(html, "<h1>Shop</h1>welcome(c) 2000");
  server_.Serve("/index.html");
  EXPECT_EQ(server_.stats().renders, 1u);
  EXPECT_EQ(server_.stats().hits, 1u);
}

TEST_F(PageServerTest, FragmentUpdateInvalidatesEmbeddingPagesOnly) {
  server_.Serve("/index.html");
  server_.Serve("/products/a.html");
  server_.Serve("/products/b.html");
  EXPECT_EQ(server_.cached_pages(), 3u);

  server_.SetFragment("prices", "<ul>prices v2</ul>");
  EXPECT_EQ(server_.stats().invalidated_pages, 2u);  // both product pages
  EXPECT_EQ(server_.cached_pages(), 1u);             // index survives

  EXPECT_NE(server_.Serve("/products/a.html").find("v2"), std::string::npos);  // re-render
  const auto hits_before = server_.stats().hits;
  server_.Serve("/index.html");  // untouched page: still a hit
  EXPECT_EQ(server_.stats().hits, hits_before + 1);
}

TEST_F(PageServerTest, TransitiveIncludesPropagate) {
  // nav includes prices; home includes nav: a prices change must reach home
  // through two hops (the paper's multi-level ODG).
  server_.SetFragment("nav", "menu {{prices}}");
  server_.DefinePage("/home.html", "{{nav}} body");
  const std::string v1 = server_.Serve("/home.html");
  EXPECT_NE(v1.find("prices v1"), std::string::npos);

  server_.SetFragment("prices", "<ul>prices v3</ul>");
  const std::string v3 = server_.Serve("/home.html");
  EXPECT_NE(v3.find("prices v3"), std::string::npos);
  EXPECT_EQ(server_.stats().renders, 2u);
}

TEST_F(PageServerTest, RedefiningPageTemplateInvalidates) {
  server_.Serve("/index.html");
  server_.DefinePage("/index.html", "{{header}}new body{{footer}}");
  EXPECT_NE(server_.Serve("/index.html").find("new body"), std::string::npos);
}

TEST_F(PageServerTest, UnknownPageAndFragmentThrow) {
  EXPECT_THROW(server_.Serve("/missing.html"), Error);
  server_.DefinePage("/broken.html", "{{nope}}");
  EXPECT_THROW(server_.Serve("/broken.html"), Error);
}

TEST_F(PageServerTest, IncludeCycleIsDiagnosed) {
  server_.SetFragment("a", "{{b}}");
  server_.SetFragment("b", "{{a}}");
  server_.DefinePage("/cycle.html", "{{a}}");
  EXPECT_THROW(server_.Serve("/cycle.html"), Error);
}

TEST_F(PageServerTest, ForwardReferencesResolveAtServeTime) {
  server_.DefinePage("/future.html", "{{later}}");
  server_.SetFragment("later", "here now");
  EXPECT_EQ(server_.Serve("/future.html"), "here now");
}

TEST_F(PageServerTest, ObsolescenceBudgetAgesPages) {
  PageServer::Options options;
  options.obsolescence_budget = 2.0;
  PageServer lazy(options);
  lazy.SetFragment("ticker", "t0");
  lazy.DefinePage("/live.html", "now: {{ticker}}");
  EXPECT_EQ(lazy.Serve("/live.html"), "now: t0");

  lazy.SetFragment("ticker", "t1");  // obsolescence 1: tolerated
  lazy.SetFragment("ticker", "t2");  // obsolescence 2: tolerated
  EXPECT_EQ(lazy.Serve("/live.html"), "now: t0");  // deliberately stale
  EXPECT_EQ(lazy.stats().tolerated_updates, 2u);

  lazy.SetFragment("ticker", "t3");  // exceeds the budget
  EXPECT_EQ(lazy.Serve("/live.html"), "now: t3");
  EXPECT_EQ(lazy.stats().invalidated_pages, 1u);
}

TEST_F(PageServerTest, MinorFragmentsAgeSlower) {
  PageServer::Options options;
  options.obsolescence_budget = 2.0;
  PageServer lazy(options);
  lazy.SetFragment("major", "M0", /*weight=*/5.0);
  lazy.SetFragment("minor", "m0", /*weight=*/1.0);
  lazy.DefinePage("/mixed.html", "{{major}}|{{minor}}");
  lazy.Serve("/mixed.html");

  lazy.SetFragment("minor", "m1");  // weight 1 <= budget: tolerated
  EXPECT_EQ(lazy.Serve("/mixed.html"), "M0|m0");
  lazy.SetFragment("major", "M1");  // weight 5 blows straight through
  EXPECT_EQ(lazy.Serve("/mixed.html"), "M1|m1");
}

TEST_F(PageServerTest, DumpOdgShowsStructure) {
  const std::string dot = server_.DumpOdg();
  EXPECT_NE(dot.find("frag:prices"), std::string::npos);
  EXPECT_NE(dot.find("page:/products/a.html"), std::string::npos);
}

}  // namespace
}  // namespace qc::accel
