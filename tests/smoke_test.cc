// End-to-end smoke test: build a small BENCH table, run the cached query
// engine under each policy, and check the cardinal correctness property —
// a cached read always equals a fresh execution.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "middleware/query_engine.h"
#include "setquery/bench_table.h"
#include "setquery/queries.h"
#include "setquery/workload.h"

namespace qc {
namespace {

TEST(Smoke, EndToEndPolicies) {
  for (auto policy : {dup::InvalidationPolicy::kFlushAll, dup::InvalidationPolicy::kValueUnaware,
                      dup::InvalidationPolicy::kValueAware, dup::InvalidationPolicy::kRowAware}) {
    storage::Database db;
    setquery::BenchTable bench(db, 2000);
    middleware::CachedQueryEngine::Options options;
    options.policy = policy;
    middleware::CachedQueryEngine engine(db, options);

    auto specs = setquery::BuildAllQueries(bench);
    Rng rng(7);
    std::vector<std::shared_ptr<const sql::BoundQuery>> prepared;
    for (const auto& spec : specs) prepared.push_back(engine.Prepare(spec.sql));

    for (int step = 0; step < 300; ++step) {
      if (rng.Chance(0.3)) {
        const auto row = bench.RandomRow(rng);
        const auto col = static_cast<uint32_t>(rng.Uniform(0, 12));
        bench.table().Update(row, col, Value(bench.RandomValue(col, rng)));
      } else {
        const auto qi = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(prepared.size()) - 1));
        auto cached = engine.Execute(prepared[qi]);
        auto fresh = engine.ExecuteUncached(*prepared[qi]);
        ASSERT_TRUE(cached.result->Equals(fresh))
            << "policy=" << dup::PolicyName(policy) << " query=" << specs[qi].sql
            << "\ncached:\n" << cached.result->ToString() << "\nfresh:\n" << fresh.ToString();
      }
    }
    EXPECT_GT(engine.stats().cache_hits, 0u);
  }
}

}  // namespace
}  // namespace qc
