#include <gtest/gtest.h>

#include "common/error.h"
#include "middleware/query_engine.h"
#include "sql/evaluator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc::sql {
namespace {

class OrderLimitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& t = db_.CreateTable("R", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"PRIORITY", ValueType::kInt, false},
                                                    {"NAME", ValueType::kString, false}}));
    t.Insert({Value(1), Value(5), Value("e")});
    t.Insert({Value(2), Value(9), Value("a")});
    t.Insert({Value(3), Value(1), Value("c")});
    t.Insert({Value(4), Value(9), Value("b")});
    t.Insert({Value(5), Value(3), Value("d")});
  }

  ResultSet Run(const std::string& sql) { return Execute(*ParseAndBind(sql, db_)); }

  storage::Database db_;
};

TEST_F(OrderLimitTest, OrderAscendingIsDefault) {
  ResultSet rs = Run("SELECT ID, PRIORITY FROM R ORDER BY PRIORITY");
  ASSERT_EQ(rs.row_count(), 5u);
  EXPECT_EQ(rs.rows().front()[1], Value(1));
  EXPECT_EQ(rs.rows().back()[1], Value(9));
}

TEST_F(OrderLimitTest, OrderDescending) {
  ResultSet rs = Run("SELECT ID, PRIORITY FROM R ORDER BY PRIORITY DESC");
  EXPECT_EQ(rs.rows().front()[1], Value(9));
  EXPECT_EQ(rs.rows().back()[1], Value(1));
}

TEST_F(OrderLimitTest, SecondaryKeyBreaksTies) {
  ResultSet rs = Run("SELECT NAME, PRIORITY FROM R ORDER BY PRIORITY DESC, NAME ASC");
  ASSERT_GE(rs.row_count(), 2u);
  EXPECT_EQ(rs.rows()[0][0], Value("a"));  // priority 9, name a
  EXPECT_EQ(rs.rows()[1][0], Value("b"));  // priority 9, name b
}

TEST_F(OrderLimitTest, LimitTruncatesAfterSort) {
  ResultSet rs = Run("SELECT ID, PRIORITY FROM R ORDER BY PRIORITY DESC LIMIT 2");
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.rows()[0][1], Value(9));
  EXPECT_EQ(rs.rows()[1][1], Value(9));
}

TEST_F(OrderLimitTest, LimitZeroAndOversized) {
  EXPECT_EQ(Run("SELECT ID FROM R LIMIT 0").row_count(), 0u);
  EXPECT_EQ(Run("SELECT ID FROM R LIMIT 100").row_count(), 5u);
}

TEST_F(OrderLimitTest, OrderByWorksWithGroupBy) {
  auto& t = db_.GetTable("R");
  t.Insert({Value(6), Value(9), Value("a")});
  ResultSet rs = Run("SELECT PRIORITY, COUNT(*) FROM R GROUP BY PRIORITY ORDER BY PRIORITY DESC");
  ASSERT_EQ(rs.row_count(), 4u);
  EXPECT_EQ(rs.rows()[0][0], Value(9));
  EXPECT_EQ(rs.rows()[0][1], Value(3));
}

TEST_F(OrderLimitTest, OrderByStarProjection) {
  ResultSet rs = Run("SELECT * FROM R ORDER BY NAME");
  EXPECT_EQ(rs.rows().front()[2], Value("a"));
}

TEST_F(OrderLimitTest, NonProjectedOrderKeyRejected) {
  EXPECT_THROW(Run("SELECT ID FROM R ORDER BY PRIORITY"), BindError);
  EXPECT_THROW(Run("SELECT PRIORITY, COUNT(*) FROM R GROUP BY PRIORITY ORDER BY NAME"),
               BindError);
}

TEST_F(OrderLimitTest, ParserErrors) {
  EXPECT_THROW(Parse("SELECT * FROM R ORDER PRIORITY"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM R LIMIT x"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM R LIMIT 1.5"), ParseError);
}

TEST_F(OrderLimitTest, FingerprintDistinguishesOrderAndLimit) {
  const auto base = CanonicalSql(Parse("SELECT ID FROM R"));
  const auto ordered = CanonicalSql(Parse("SELECT ID FROM R ORDER BY ID"));
  const auto desc = CanonicalSql(Parse("SELECT ID FROM R ORDER BY ID DESC"));
  const auto limited = CanonicalSql(Parse("SELECT ID FROM R ORDER BY ID LIMIT 3"));
  EXPECT_NE(base, ordered);
  EXPECT_NE(ordered, desc);
  EXPECT_NE(ordered, limited);
  EXPECT_EQ(ordered, CanonicalSql(Parse("select id from r order by id asc")));
}

TEST_F(OrderLimitTest, CachedTopNStaysCurrent) {
  middleware::CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT ID, PRIORITY FROM R ORDER BY PRIORITY DESC LIMIT 1");
  EXPECT_EQ(engine.Execute(query).result->rows()[0][1], Value(9));
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  // A new top row must invalidate the cached top-1.
  db_.GetTable("R").Update(2, 1, Value(50));  // id 3 priority 1 -> 50
  auto after = engine.Execute(query);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.result->rows()[0][0], Value(3));
}

}  // namespace
}  // namespace qc::sql
