#include "sql/evaluator.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/parser.h"

namespace qc::sql {
namespace {

using storage::Database;
using storage::Row;
using storage::Schema;
using storage::Table;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table& emp = db_.CreateTable("EMP", Schema({{"ID", ValueType::kInt, false},
                                                {"DEPT", ValueType::kString, false},
                                                {"SALARY", ValueType::kInt, false},
                                                {"BONUS", ValueType::kInt, true},
                                                {"MANAGER", ValueType::kInt, true}}));
    emp.CreateHashIndex(0);
    emp.CreateHashIndex(1);
    emp.CreateOrderedIndex(2);
    emp.Insert({Value(1), Value("eng"), Value(100), Value(10), Value::Null()});
    emp.Insert({Value(2), Value("eng"), Value(80), Value::Null(), Value(1)});
    emp.Insert({Value(3), Value("sales"), Value(60), Value(5), Value(1)});
    emp.Insert({Value(4), Value("sales"), Value(70), Value(7), Value(2)});
    emp.Insert({Value(5), Value("hr"), Value(50), Value::Null(), Value(2)});

    Table& dept = db_.CreateTable("DEPT", Schema({{"NAME", ValueType::kString, false},
                                                  {"BUDGET", ValueType::kInt, false}}));
    dept.CreateHashIndex(0);
    dept.Insert({Value("eng"), Value(1000)});
    dept.Insert({Value("sales"), Value(500)});
    dept.Insert({Value("hr"), Value(200)});
  }

  ResultSet Run(const std::string& sql, const std::vector<Value>& params = {}) {
    auto query = ParseAndBind(sql, db_);
    return Execute(*query, params);
  }

  Database db_;
};

TEST_F(EvaluatorTest, SelectStarReturnsAllColumns) {
  ResultSet rs = Run("SELECT * FROM EMP");
  EXPECT_EQ(rs.row_count(), 5u);
  EXPECT_EQ(rs.columns().size(), 5u);
  EXPECT_EQ(rs.columns()[1], "DEPT");
}

TEST_F(EvaluatorTest, ProjectionOrderFollowsSelectList) {
  ResultSet rs = Run("SELECT SALARY, ID FROM EMP WHERE ID = 3");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.rows()[0], (Row{Value(60), Value(3)}));
}

TEST_F(EvaluatorTest, WhereEquality) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT = 'eng'").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT = 'nope'").row_count(), 0u);
}

TEST_F(EvaluatorTest, ReversedOperandsWork) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE 70 <= SALARY").row_count(), 3u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE 'eng' = DEPT").row_count(), 2u);
}

TEST_F(EvaluatorTest, Comparisons) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY > 60").row_count(), 3u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY >= 60").row_count(), 4u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY < 60").row_count(), 1u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY <> 60").row_count(), 4u);
}

TEST_F(EvaluatorTest, BetweenIsInclusive) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY BETWEEN 60 AND 80").row_count(), 3u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE SALARY NOT BETWEEN 60 AND 80").row_count(), 2u);
}

TEST_F(EvaluatorTest, InList) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE ID IN (1, 3, 9)").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE ID NOT IN (1, 3)").row_count(), 3u);
}

TEST_F(EvaluatorTest, LikePatterns) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT LIKE 'e%'").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT LIKE '%s'").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT LIKE '__'").row_count(), 1u);  // hr
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT NOT LIKE 'e%'").row_count(), 3u);
}

TEST_F(EvaluatorTest, BooleanStructure) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT = 'eng' AND SALARY > 90").row_count(), 1u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE DEPT = 'hr' OR SALARY = 100").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE NOT (DEPT = 'eng' OR DEPT = 'sales')").row_count(), 1u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE NOT DEPT = 'eng' AND NOT SALARY < 60").row_count(), 2u);
}

// --- SQL three-valued NULL semantics ----------------------------------------

TEST_F(EvaluatorTest, NullComparisonsExcludeRows) {
  // BONUS is NULL for ids 2 and 5: neither BONUS > 0 nor NOT (BONUS > 0)
  // includes them.
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE BONUS > 0").row_count(), 3u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE NOT BONUS > 0").row_count(), 0u);
}

TEST_F(EvaluatorTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE BONUS IS NULL").row_count(), 2u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE BONUS IS NOT NULL").row_count(), 3u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE MANAGER IS NULL AND DEPT = 'eng'").row_count(), 1u);
}

TEST_F(EvaluatorTest, NotInWithNullMemberIsUnknown) {
  // 1 NOT IN (3, NULL) is unknown, so no rows qualify via that member.
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE ID NOT IN (3, NULL)").row_count(), 0u);
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE ID IN (3, NULL)").row_count(), 1u);
}

TEST_F(EvaluatorTest, OrWithUnknownStillTrueWhenOtherSideTrue) {
  EXPECT_EQ(Run("SELECT * FROM EMP WHERE BONUS > 100 OR ID = 2").row_count(), 1u);
}

// --- aggregates --------------------------------------------------------------

TEST_F(EvaluatorTest, CountStarAndCountColumn) {
  ResultSet rs = Run("SELECT COUNT(*), COUNT(BONUS) FROM EMP");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(5));
  EXPECT_EQ(rs.ScalarAt(0, 1), Value(3));  // NULLs skipped
}

TEST_F(EvaluatorTest, SumMinMaxAvg) {
  ResultSet rs = Run("SELECT SUM(SALARY), MIN(SALARY), MAX(SALARY), AVG(SALARY) FROM EMP");
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(360));
  EXPECT_EQ(rs.ScalarAt(0, 1), Value(50));
  EXPECT_EQ(rs.ScalarAt(0, 2), Value(100));
  EXPECT_EQ(rs.ScalarAt(0, 3), Value(72.0));
}

TEST_F(EvaluatorTest, AggregatesOverEmptyInput) {
  ResultSet rs = Run("SELECT COUNT(*), SUM(SALARY), MIN(SALARY) FROM EMP WHERE ID = 99");
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(0));
  EXPECT_TRUE(rs.ScalarAt(0, 1).is_null());
  EXPECT_TRUE(rs.ScalarAt(0, 2).is_null());
}

TEST_F(EvaluatorTest, GroupByCounts) {
  ResultSet rs = Run("SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT");
  rs.Normalize();
  ASSERT_EQ(rs.row_count(), 3u);
  // normalized: eng, hr, sales
  EXPECT_EQ(rs.rows()[0], (Row{Value("eng"), Value(2)}));
  EXPECT_EQ(rs.rows()[1], (Row{Value("hr"), Value(1)}));
  EXPECT_EQ(rs.rows()[2], (Row{Value("sales"), Value(2)}));
}

TEST_F(EvaluatorTest, GroupByWithWhereAndSum) {
  ResultSet rs = Run("SELECT DEPT, SUM(SALARY) FROM EMP WHERE SALARY >= 60 GROUP BY DEPT");
  rs.Normalize();
  ASSERT_EQ(rs.row_count(), 2u);
  EXPECT_EQ(rs.rows()[0], (Row{Value("eng"), Value(180)}));
  EXPECT_EQ(rs.rows()[1], (Row{Value("sales"), Value(130)}));
}

TEST_F(EvaluatorTest, GroupByEmptyInputHasNoGroups) {
  EXPECT_EQ(Run("SELECT DEPT, COUNT(*) FROM EMP WHERE ID = 99 GROUP BY DEPT").row_count(), 0u);
}

// --- joins -------------------------------------------------------------------

TEST_F(EvaluatorTest, EquiJoin) {
  ResultSet rs = Run(
      "SELECT E.ID, D.BUDGET FROM EMP E, DEPT D WHERE E.DEPT = D.NAME AND E.SALARY > 60");
  rs.Normalize();
  ASSERT_EQ(rs.row_count(), 3u);  // ids 1, 2 (eng), 4 (sales)
  EXPECT_EQ(rs.rows()[0], (Row{Value(1), Value(1000)}));
  EXPECT_EQ(rs.rows()[2], (Row{Value(4), Value(500)}));
}

TEST_F(EvaluatorTest, JoinWithAggregates) {
  ResultSet rs = Run(
      "SELECT COUNT(*) FROM EMP E, DEPT D WHERE E.DEPT = D.NAME AND D.BUDGET >= 500");
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(4));
}

TEST_F(EvaluatorTest, SelfJoin) {
  // Employees with their managers: manager id joins employee id.
  ResultSet rs = Run(
      "SELECT E.ID, M.ID FROM EMP E, EMP M WHERE E.MANAGER = M.ID");
  EXPECT_EQ(rs.row_count(), 4u);  // 2->1, 3->1, 4->2, 5->2
}

TEST_F(EvaluatorTest, NonEquiJoinFallsBackToNestedLoop) {
  ResultSet rs = Run("SELECT COUNT(*) FROM EMP E, DEPT D WHERE E.SALARY > D.BUDGET");
  // budgets 1000/500/200: salaries above 200: none above 500/1000 → each of
  // the 5 salaries compared: only pairs with budget 200 and salary > 200: 0.
  // salaries 100..50 — none exceed 200. So 0.
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(0));
}

TEST_F(EvaluatorTest, EquiConjunctPreferredRegardlessOfWhereOrder) {
  // The equi conjunct is listed *last*; the row engine must still pick it
  // as the hash-join key, so the nested-loop pair counter stays flat.
  const uint64_t before = GetRowEngineStats().join_nested_loop_rows;
  auto hash_q = ParseAndBind(
      "SELECT COUNT(*) FROM EMP E, DEPT D WHERE D.BUDGET >= 500 AND E.SALARY > 60 "
      "AND E.DEPT = D.NAME",
      db_);
  ResultSet rs = ExecuteRowAtATime(*hash_q, {});
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(3));
  EXPECT_EQ(GetRowEngineStats().join_nested_loop_rows, before);

  // With no equi conjunct at all the nested loop is unavoidable and visits
  // every filtered pair: 5 employees x 3 departments.
  auto nested_q =
      ParseAndBind("SELECT COUNT(*) FROM EMP E, DEPT D WHERE E.SALARY < D.BUDGET", db_);
  ExecuteRowAtATime(*nested_q, {});
  EXPECT_EQ(GetRowEngineStats().join_nested_loop_rows, before + 15);
}

TEST_F(EvaluatorTest, CrossJoinViaAlwaysTrueEquiCondition) {
  ResultSet rs = Run("SELECT COUNT(*) FROM EMP E, DEPT D WHERE E.SALARY < D.BUDGET");
  // budget 1000: all 5; 500: all 5; 200: all 5 → salaries all < 200? 100,80,60,70,50 yes.
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(15));
}

// --- parameters ---------------------------------------------------------------

TEST_F(EvaluatorTest, ParameterBinding) {
  auto query = ParseAndBind("SELECT COUNT(*) FROM EMP WHERE DEPT = $1 AND SALARY >= $2", db_);
  EXPECT_EQ(Execute(*query, {Value("eng"), Value(90)}).ScalarAt(0, 0), Value(1));
  EXPECT_EQ(Execute(*query, {Value("sales"), Value(0)}).ScalarAt(0, 0), Value(2));
}

TEST_F(EvaluatorTest, MissingParameterThrows) {
  auto query = ParseAndBind("SELECT * FROM EMP WHERE DEPT = $1", db_);
  EXPECT_THROW(Execute(*query, {}), BindError);
}

// --- index/scan equivalence -----------------------------------------------------

TEST_F(EvaluatorTest, IndexAndScanAgree) {
  // DEPT has a hash index, BONUS has none: the same predicate evaluated
  // through each path must agree (and with the residual filter applied).
  ResultSet indexed = Run("SELECT ID FROM EMP WHERE DEPT = 'sales' AND BONUS > 5");
  ResultSet scanned = Run("SELECT ID FROM EMP WHERE BONUS > 5 AND DEPT = 'sales'");
  EXPECT_TRUE(indexed.Equals(scanned));
  ASSERT_EQ(indexed.row_count(), 1u);
  EXPECT_EQ(indexed.rows()[0][0], Value(4));
}

TEST_F(EvaluatorTest, OrOfRangesUsesUnionWithoutDuplicates) {
  // Overlapping ranges must not double-count rows.
  ResultSet rs = Run(
      "SELECT COUNT(*) FROM EMP WHERE (SALARY BETWEEN 50 AND 80 OR SALARY BETWEEN 70 AND 100)");
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(5));
}

// --- binder errors ---------------------------------------------------------------

TEST_F(EvaluatorTest, BinderRejectsUnknownTableAndColumn) {
  EXPECT_THROW(Run("SELECT * FROM NOPE"), BindError);
  EXPECT_THROW(Run("SELECT NOPE FROM EMP"), BindError);
  EXPECT_THROW(Run("SELECT * FROM EMP WHERE NOPE = 1"), BindError);
  EXPECT_THROW(Run("SELECT X.ID FROM EMP E"), BindError);
}

TEST_F(EvaluatorTest, BinderRejectsAmbiguousColumn) {
  EXPECT_THROW(Run("SELECT ID FROM EMP A, EMP B WHERE A.ID = B.ID"), BindError);
}

TEST_F(EvaluatorTest, BinderRejectsBadGrouping) {
  EXPECT_THROW(Run("SELECT SALARY, COUNT(*) FROM EMP GROUP BY DEPT"), BindError);
  EXPECT_THROW(Run("SELECT DEPT, SALARY FROM EMP GROUP BY DEPT"), BindError);
  EXPECT_THROW(Run("SELECT * FROM EMP GROUP BY DEPT"), BindError);
  EXPECT_THROW(Run("SELECT DEPT, COUNT(*) FROM EMP"), BindError);  // mix without GROUP BY
}

TEST_F(EvaluatorTest, QualifiedColumnsResolveByAliasOrTable) {
  EXPECT_EQ(Run("SELECT EMP.ID FROM EMP WHERE EMP.ID = 1").row_count(), 1u);
  EXPECT_EQ(Run("SELECT E.ID FROM EMP E WHERE e.id = 1").row_count(), 1u);
}

// --- result sets -------------------------------------------------------------------

TEST_F(EvaluatorTest, ResultEqualsIsOrderInsensitive) {
  ResultSet a = Run("SELECT ID FROM EMP WHERE SALARY >= 60");
  ResultSet b = Run("SELECT ID FROM EMP WHERE SALARY >= 60 AND ID > 0");
  EXPECT_TRUE(a.Equals(b));
}

TEST_F(EvaluatorTest, ResultEqualsChecksColumnsAndRows) {
  ResultSet a = Run("SELECT ID FROM EMP");
  ResultSet b = Run("SELECT SALARY FROM EMP");
  EXPECT_FALSE(a.Equals(b));  // different column names
  ResultSet c = Run("SELECT ID FROM EMP WHERE ID < 3");
  EXPECT_FALSE(a.Equals(c));
}

TEST_F(EvaluatorTest, ByteSizeGrowsWithRows) {
  ResultSet small = Run("SELECT * FROM EMP WHERE ID = 1");
  ResultSet large = Run("SELECT * FROM EMP");
  EXPECT_GT(large.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace qc::sql
