// Edge-case coverage for the evaluator beyond the core suite: grouping
// without aggregates, parameterized ranges, empty index buckets, type
// errors, and star expansion over joins.
#include <limits>

#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/evaluator.h"
#include "sql/parser.h"

namespace qc::sql {
namespace {

class EvaluatorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto& t = db_.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false},
                                                    {"B", ValueType::kString, false},
                                                    {"C", ValueType::kDouble, true}}));
    t.CreateHashIndex(0);
    t.CreateOrderedIndex(0);
    t.Insert({Value(1), Value("x"), Value(1.5)});
    t.Insert({Value(2), Value("y"), Value(2.5)});
    t.Insert({Value(2), Value("y"), Value::Null()});
    t.Insert({Value(3), Value("z"), Value(0.5)});
  }

  ResultSet Run(const std::string& sql, const std::vector<Value>& params = {}) {
    return Execute(*ParseAndBind(sql, db_), params);
  }

  storage::Database db_;
};

TEST_F(EvaluatorEdgeTest, GroupByWithoutAggregatesDeduplicates) {
  ResultSet rs = Run("SELECT A FROM T GROUP BY A");
  EXPECT_EQ(rs.row_count(), 3u);  // 1, 2, 3
}

TEST_F(EvaluatorEdgeTest, GroupByNullKeyFormsItsOwnGroup) {
  ResultSet rs = Run("SELECT C, COUNT(*) FROM T GROUP BY C");
  EXPECT_EQ(rs.row_count(), 4u);  // 0.5, 1.5, 2.5, NULL
}

TEST_F(EvaluatorEdgeTest, ParameterizedBetweenUsesOrderedIndex) {
  ResultSet rs = Run("SELECT COUNT(*) FROM T WHERE A BETWEEN $1 AND $2", {Value(2), Value(3)});
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(3));
}

TEST_F(EvaluatorEdgeTest, EmptyEqualityBucketShortCircuits) {
  ResultSet rs = Run("SELECT COUNT(*) FROM T WHERE A = 99 AND B LIKE '%'");
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(0));
}

TEST_F(EvaluatorEdgeTest, InvertedBetweenBoundsSelectNothing) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM T WHERE A BETWEEN 3 AND 1").ScalarAt(0, 0), Value(0));
}

TEST_F(EvaluatorEdgeTest, DoubleColumnAggregates) {
  ResultSet rs = Run("SELECT SUM(C), AVG(C), COUNT(C) FROM T");
  EXPECT_EQ(rs.ScalarAt(0, 0), Value(4.5));
  EXPECT_EQ(rs.ScalarAt(0, 1), Value(1.5));
  EXPECT_EQ(rs.ScalarAt(0, 2), Value(3));  // NULL skipped
}

TEST_F(EvaluatorEdgeTest, MixedIntDoubleComparison) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM T WHERE C > 1").ScalarAt(0, 0), Value(2));
  EXPECT_EQ(Run("SELECT COUNT(*) FROM T WHERE C = 1.5").ScalarAt(0, 0), Value(1));
}

TEST_F(EvaluatorEdgeTest, LikeOnNonStringThrows) {
  EXPECT_THROW(Run("SELECT COUNT(*) FROM T WHERE A LIKE 'x'"), BindError);
}

TEST_F(EvaluatorEdgeTest, StarOverJoinQualifiesColumnNames) {
  auto& u = db_.CreateTable("U", storage::Schema({{"A", ValueType::kInt, false}}));
  u.Insert({Value(1)});
  ResultSet rs = Run("SELECT * FROM T T1, U U1 WHERE T1.A = U1.A");
  ASSERT_EQ(rs.columns().size(), 4u);
  EXPECT_EQ(rs.columns()[0], "T1.A");
  EXPECT_EQ(rs.columns()[3], "U1.A");
  EXPECT_EQ(rs.row_count(), 1u);
}

TEST_F(EvaluatorEdgeTest, DuplicateRowsSurviveProjection) {
  // Two identical (A=2, B='y') rows: no implicit DISTINCT.
  ResultSet rs = Run("SELECT A, B FROM T WHERE A = 2");
  EXPECT_EQ(rs.row_count(), 2u);
}

TEST_F(EvaluatorEdgeTest, NormalizeIsStableForComparison) {
  ResultSet a = Run("SELECT A FROM T");
  ResultSet b = Run("SELECT A FROM T");
  a.Normalize();
  b.Normalize();
  EXPECT_EQ(a.rows(), b.rows());
}

TEST_F(EvaluatorEdgeTest, ToStringTruncatesLongResults) {
  const std::string s = Run("SELECT * FROM T").ToString(2);
  EXPECT_NE(s.find("more rows"), std::string::npos);
}

TEST_F(EvaluatorEdgeTest, ExtraParametersAreIgnoredButMissingThrow) {
  EXPECT_NO_THROW(Run("SELECT COUNT(*) FROM T WHERE A = $1", {Value(1), Value(99)}));
  EXPECT_THROW(Run("SELECT COUNT(*) FROM T WHERE A = $2", {Value(1)}), BindError);
}

TEST_F(EvaluatorEdgeTest, PredicateOnRowRejectsCrossSlotColumns) {
  auto query = ParseAndBind("SELECT COUNT(*) FROM T T1, T T2 WHERE T1.A = T2.A", db_);
  storage::Row image{Value(1), Value("x"), Value(1.0)};
  EXPECT_THROW(EvalPredicateOnRow(*query->stmt().where, image, {}, 0), BindError);
}

TEST_F(EvaluatorEdgeTest, IntSumDegradesToDoubleOnOverflowInsteadOfWrapping) {
  // Two values near INT64_MAX: their int64 sum wraps (UB before the
  // __builtin_add_overflow guard); the accumulator must degrade to the
  // double sum instead of emitting a huge negative integer.
  auto& big = db_.CreateTable("BIG", storage::Schema({{"V", ValueType::kInt, false},
                                                      {"G", ValueType::kInt, false}}));
  const int64_t near_max = std::numeric_limits<int64_t>::max() - 10;
  big.Insert({Value(near_max), Value(1)});
  big.Insert({Value(near_max), Value(1)});

  for (const bool vectorized : {true, false}) {
    SCOPED_TRACE(vectorized ? "vectorized" : "row");
    auto query = ParseAndBind("SELECT SUM(V) FROM BIG", db_);
    ResultSet rs = vectorized ? Execute(*query, {}) : ExecuteRowAtATime(*query, {});
    ASSERT_EQ(rs.row_count(), 1u);
    const Value& sum = rs.ScalarAt(0, 0);
    ASSERT_TRUE(sum.is_double()) << sum.ToString();
    EXPECT_GT(sum.as_double(), 1.8e19);  // ~2 * INT64_MAX, not a wrapped negative
  }

  // Grouped SUM goes through Accumulator::Merge on the parallel path; the
  // overflow degrade must survive the merge too.
  auto query = ParseAndBind("SELECT G, SUM(V) FROM BIG GROUP BY G", db_);
  ResultSet rs = Execute(*query, {});
  ASSERT_EQ(rs.row_count(), 1u);
  EXPECT_TRUE(rs.ScalarAt(0, 1).is_double());
}

TEST_F(EvaluatorEdgeTest, SumBelowOverflowStaysExactInt) {
  ResultSet rs = Run("SELECT SUM(A) FROM T");
  ASSERT_EQ(rs.row_count(), 1u);
  ASSERT_TRUE(rs.ScalarAt(0, 0).is_int());
  EXPECT_EQ(rs.ScalarAt(0, 0).as_int(), 8);
}

TEST_F(EvaluatorEdgeTest, ProjectedNonGroupKeyThrowsInsteadOfEmittingKeyZero) {
  // The binder rejects this shape, so build the broken BoundQuery by hand:
  // GROUP BY A but project B. The emitter used to default to key cell 0
  // (silently printing A's value labeled B); it must throw BindError.
  auto bound = ParseAndBind("SELECT A FROM T GROUP BY A", db_);
  SelectStmt broken = bound->stmt().Clone();
  broken.items[0].expr->column = "B";
  broken.items[0].expr->column_index = 1;  // B: not a grouping key
  BoundQuery query(std::move(broken), {&db_.GetTable("T")}, {});
  EXPECT_THROW(ExecuteRowAtATime(query, {}), BindError);
  EXPECT_THROW(Execute(query, {}), BindError);
}

}  // namespace
}  // namespace qc::sql
