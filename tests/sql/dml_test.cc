#include "sql/dml.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "middleware/query_engine.h"
#include "sql/parser.h"

namespace qc::sql {
namespace {

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"KIND", ValueType::kString, false},
                                                    {"N", ValueType::kInt, true}}));
    Run("INSERT INTO T VALUES (1, 'a', 10)");
    Run("INSERT INTO T VALUES (2, 'b', 20)");
    Run("INSERT INTO T VALUES (3, 'a', 30)");
  }

  uint64_t Run(const std::string& sql, const std::vector<Value>& params = {}) {
    AnyStatement stmt = ParseStatement(sql);
    EXPECT_EQ(stmt.kind, AnyStatement::Kind::kDml) << sql;
    return ExecuteDml(stmt.dml, db_, params);
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST(DmlParser, ParsesAllForms) {
  EXPECT_EQ(ParseStatement("SELECT * FROM T").kind, AnyStatement::Kind::kSelect);
  auto insert = ParseStatement("INSERT INTO T (A, B) VALUES (1, 'x');");
  EXPECT_EQ(insert.dml.kind, DmlStmt::Kind::kInsert);
  EXPECT_EQ(insert.dml.columns.size(), 2u);
  auto update = ParseStatement("UPDATE T SET A = 1, B = $1 WHERE C > 2");
  EXPECT_EQ(update.dml.kind, DmlStmt::Kind::kUpdate);
  EXPECT_EQ(update.dml.param_count, 1u);
  ASSERT_NE(update.dml.where, nullptr);
  auto del = ParseStatement("DELETE FROM T");
  EXPECT_EQ(del.dml.kind, DmlStmt::Kind::kDelete);
  EXPECT_EQ(del.dml.where, nullptr);

  EXPECT_THROW(ParseStatement("DROP TABLE T"), ParseError);
  EXPECT_THROW(ParseStatement("INSERT T VALUES (1)"), ParseError);
  EXPECT_THROW(ParseStatement("UPDATE T WHERE A = 1"), ParseError);
  EXPECT_THROW(ParseStatement("INSERT INTO T VALUES (1) garbage"), ParseError);
}

TEST_F(DmlTest, InsertFullRow) {
  EXPECT_EQ(table_->size(), 3u);
  EXPECT_EQ(Run("INSERT INTO T VALUES (4, 'c', NULL)"), 1u);
  EXPECT_EQ(table_->size(), 4u);
}

TEST_F(DmlTest, InsertWithColumnListDefaultsToNull) {
  Run("INSERT INTO T (ID, KIND) VALUES (9, 'z')");
  const auto rows = [&] {
    std::vector<storage::Row> out;
    table_->ForEachRow([&](storage::RowId r) { out.push_back(table_->GetRow(r)); });
    return out;
  }();
  bool found = false;
  for (const auto& row : rows) {
    if (row[0] == Value(9)) {
      EXPECT_TRUE(row[2].is_null());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DmlTest, InsertErrors) {
  EXPECT_THROW(Run("INSERT INTO T VALUES (1, 'x')"), BindError);          // arity
  EXPECT_THROW(Run("INSERT INTO T (ID) VALUES (1, 2)"), BindError);       // list arity
  EXPECT_THROW(Run("INSERT INTO T (ID, NOPE) VALUES (1, 2)"), StorageError);
  EXPECT_THROW(Run("INSERT INTO NOPE VALUES (1)"), BindError);
  // Non-nullable KIND omitted -> storage rejects the NULL.
  EXPECT_THROW(Run("INSERT INTO T (ID, N) VALUES (7, 7)"), StorageError);
  EXPECT_THROW(Run("INSERT INTO T VALUES (ID, 'x', 1)"), BindError);  // column ref
}

TEST_F(DmlTest, UpdateWithWhere) {
  EXPECT_EQ(Run("UPDATE T SET N = 99 WHERE KIND = 'a'"), 2u);
  int64_t total = 0;
  table_->ForEachRow([&](storage::RowId r) { total += table_->Get(r, 2).as_int(); });
  EXPECT_EQ(total, 99 + 20 + 99);
}

TEST_F(DmlTest, UpdateValueMayReferenceRowColumns) {
  EXPECT_EQ(Run("UPDATE T SET N = ID WHERE ID >= 2"), 2u);
  table_->ForEachRow([&](storage::RowId r) {
    const auto id = table_->Get(r, 0).as_int();
    if (id >= 2) {
      EXPECT_EQ(table_->Get(r, 2).as_int(), id);
    }
  });
}

TEST_F(DmlTest, UpdateWithoutWhereTouchesAllRows) {
  EXPECT_EQ(Run("UPDATE T SET KIND = 'x'"), 3u);
}

TEST_F(DmlTest, UpdateWithParams) {
  EXPECT_EQ(Run("UPDATE T SET KIND = $1 WHERE ID = $2", {Value("zz"), Value(3)}), 1u);
  EXPECT_THROW(Run("UPDATE T SET KIND = $1", {}), BindError);
}

TEST_F(DmlTest, DeleteWithWhere) {
  EXPECT_EQ(Run("DELETE FROM T WHERE KIND = 'a'"), 2u);
  EXPECT_EQ(table_->size(), 1u);
  EXPECT_EQ(Run("DELETE FROM T"), 1u);
  EXPECT_EQ(table_->size(), 0u);
}

TEST_F(DmlTest, WhereUnknownExcludesRows) {
  // N IS NULL rows: N > 0 is unknown -> not updated.
  Run("INSERT INTO T VALUES (4, 'n', NULL)");
  EXPECT_EQ(Run("UPDATE T SET KIND = 'pos' WHERE N > 0"), 3u);
  table_->ForEachRow([&](storage::RowId r) {
    if (table_->Get(r, 0) == Value(4)) {
      EXPECT_EQ(table_->Get(r, 1), Value("n"));
    }
  });
}

TEST_F(DmlTest, DmlThroughMiddlewareInvalidatesCache) {
  middleware::CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'a'");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(2));
  EXPECT_TRUE(engine.Execute(query).cache_hit);

  EXPECT_EQ(engine.ExecuteDml("UPDATE T SET KIND = 'a' WHERE ID = 2"), 1u);
  auto after = engine.Execute(query);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.result->ScalarAt(0, 0), Value(3));

  engine.ExecuteDml("DELETE FROM T WHERE KIND = 'a'");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(0));

  engine.ExecuteDml("INSERT INTO T VALUES ($1, $2, $3)", {Value(50), Value("a"), Value(1)});
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(1));

  EXPECT_THROW(engine.ExecuteDml("SELECT * FROM T"), BindError);
}

TEST_F(DmlTest, ValueAwareDmlSkipsIrrelevantUpdates) {
  middleware::CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE N BETWEEN 100 AND 200");
  engine.Execute(query);
  // All N values stay far below the cached query's range: no invalidation.
  engine.ExecuteDml("UPDATE T SET N = 50 WHERE ID = 1");
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  engine.ExecuteDml("UPDATE T SET N = 150 WHERE ID = 1");  // crosses into range
  EXPECT_FALSE(engine.Execute(query).cache_hit);
}

}  // namespace
}  // namespace qc::sql
