#include "sql/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"

namespace qc::sql {
namespace {

// --- lexer -----------------------------------------------------------------

TEST(Lexer, TokenizesKeywordsAndSymbols) {
  auto tokens = Lex("SELECT * FROM t WHERE a >= 1");
  ASSERT_EQ(tokens.size(), 9u);  // incl. kEnd
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "*");
  EXPECT_EQ(tokens[5].text, "a");
  EXPECT_EQ(tokens[6].text, ">=");
  EXPECT_EQ(tokens[8].type, TokenType::kEnd);
}

TEST(Lexer, NumericLiterals) {
  auto tokens = Lex("12 3.5");
  EXPECT_EQ(tokens[0].literal, Value(12));
  EXPECT_EQ(tokens[1].literal, Value(3.5));
}

TEST(Lexer, StringLiteralWithEscapedQuote) {
  auto tokens = Lex("'it''s'");
  EXPECT_EQ(tokens[0].literal, Value("it's"));
}

TEST(Lexer, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("'oops"), ParseError);
}

TEST(Lexer, Parameters) {
  auto tokens = Lex("$1 $17 ?");
  EXPECT_EQ(tokens[0].number, 0);
  EXPECT_EQ(tokens[1].number, 16);
  EXPECT_EQ(tokens[2].number, -1);
  EXPECT_THROW(Lex("$0"), ParseError);
  EXPECT_THROW(Lex("$x"), ParseError);
}

TEST(Lexer, NormalizesNotEquals) {
  EXPECT_EQ(Lex("a != b")[1].text, "<>");
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW(Lex("a # b"), ParseError);
}

// --- parser ----------------------------------------------------------------

TEST(Parser, MinimalSelect) {
  SelectStmt stmt = Parse("SELECT * FROM BENCH");
  EXPECT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::kStar);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].table, "BENCH");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(Parser, TrailingSemicolonAllowed) {
  EXPECT_NO_THROW(Parse("SELECT * FROM t;"));
  EXPECT_THROW(Parse("SELECT * FROM t; garbage"), ParseError);
}

TEST(Parser, Aggregates) {
  SelectStmt stmt = Parse("SELECT COUNT(*), SUM(K1K), MIN(a), MAX(b), AVG(c) FROM t");
  ASSERT_EQ(stmt.items.size(), 5u);
  EXPECT_EQ(stmt.items[0].func, AggFunc::kCountStar);
  EXPECT_EQ(stmt.items[1].func, AggFunc::kSum);
  EXPECT_EQ(stmt.items[1].expr->column, "K1K");
  EXPECT_EQ(stmt.items[4].func, AggFunc::kAvg);
}

TEST(Parser, TableAliases) {
  SelectStmt stmt = Parse("SELECT B1.KSEQ FROM BENCH B1, BENCH AS B2");
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "B1");
  EXPECT_EQ(stmt.from[1].alias, "B2");
  EXPECT_EQ(stmt.items[0].expr->qualifier, "B1");
}

TEST(Parser, ThreeTablesRejected) {
  EXPECT_THROW(Parse("SELECT * FROM a, b, c"), ParseError);
}

TEST(Parser, WherePrecedenceOrBelowAnd) {
  // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->op, BinaryOp::kOr);
  EXPECT_EQ(stmt.where->children[1]->op, BinaryOp::kAnd);
}

TEST(Parser, NotBindsTighterThanAnd) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE NOT a = 1 AND b = 2");
  EXPECT_EQ(stmt.where->op, BinaryOp::kAnd);
  EXPECT_EQ(stmt.where->children[0]->kind, Expr::Kind::kUnaryNot);
}

TEST(Parser, BetweenAndNegatedBetween) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kBetween);
  EXPECT_FALSE(stmt.where->negated);
  stmt = Parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5");
  EXPECT_TRUE(stmt.where->negated);
}

TEST(Parser, InList) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(stmt.where->kind, Expr::Kind::kIn);
  EXPECT_EQ(stmt.where->children.size(), 4u);  // subject + 3
  stmt = Parse("SELECT * FROM t WHERE a NOT IN (1)");
  EXPECT_TRUE(stmt.where->negated);
}

TEST(Parser, LikeAndIsNull) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a LIKE 'x%' AND b IS NOT NULL AND c IS NULL");
  // ((a LIKE) AND (b IS NOT NULL)) AND (c IS NULL)
  const Expr& top = *stmt.where;
  EXPECT_EQ(top.op, BinaryOp::kAnd);
  EXPECT_EQ(top.children[1]->kind, Expr::Kind::kIsNull);
  EXPECT_FALSE(top.children[1]->negated);
  EXPECT_EQ(top.children[0]->children[1]->kind, Expr::Kind::kIsNull);
  EXPECT_TRUE(top.children[0]->children[1]->negated);
}

TEST(Parser, ParenthesizedOrOfRanges) {
  // The Set Query Q3B shape.
  SelectStmt stmt = Parse(
      "SELECT SUM(K1K) FROM BENCH WHERE (KSEQ BETWEEN 1 AND 2 OR KSEQ BETWEEN 5 AND 9) "
      "AND KN = 3");
  EXPECT_EQ(stmt.where->op, BinaryOp::kAnd);
  EXPECT_EQ(stmt.where->children[0]->op, BinaryOp::kOr);
}

TEST(Parser, GroupBy) {
  SelectStmt stmt = Parse("SELECT K2, K100, COUNT(*) FROM BENCH GROUP BY K2, K100");
  EXPECT_EQ(stmt.group_by.size(), 2u);
  EXPECT_EQ(stmt.group_by[1]->column, "K100");
}

TEST(Parser, ExplicitAndPositionalParams) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a = $2 AND b = $1");
  EXPECT_EQ(stmt.param_count, 2u);
  stmt = Parse("SELECT * FROM t WHERE a = ? AND b = ?");
  EXPECT_EQ(stmt.param_count, 2u);
  EXPECT_EQ(stmt.where->children[0]->children[1]->param_index, 0u);
  EXPECT_EQ(stmt.where->children[1]->children[1]->param_index, 1u);
}

TEST(Parser, ErrorsAreDiagnosed) {
  EXPECT_THROW(Parse(""), ParseError);
  EXPECT_THROW(Parse("SELECT"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM"), ParseError);
  EXPECT_THROW(Parse("SELECT * WHERE a = 1"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE a ="), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE a"), ParseError);      // bare operand
  EXPECT_THROW(Parse("SELECT * FROM t WHERE NOT"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE a BETWEEN 1"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t WHERE a IN ()"), ParseError);
  EXPECT_THROW(Parse("SELECT * FROM t GROUP BY"), ParseError);
  EXPECT_THROW(Parse("SELECT COUNT(* FROM t"), ParseError);
}

TEST(Parser, CloneIsDeep) {
  SelectStmt stmt = Parse("SELECT COUNT(*) FROM t WHERE a = $1 AND b BETWEEN 1 AND 2");
  SelectStmt copy = stmt.Clone();
  EXPECT_EQ(CanonicalSql(stmt), CanonicalSql(copy));
  // Mutating the clone's BETWEEN lower bound must not leak into the original.
  copy.where->children[1]->children[1]->value = Value(99);
  EXPECT_NE(CanonicalSql(stmt), CanonicalSql(copy));
}

// --- canonicalization / fingerprints ----------------------------------------

TEST(Fingerprint, NormalizesCaseAndWhitespace) {
  const std::string a = CanonicalSql(Parse("select count(*) from bench where k2 = 2"));
  const std::string b = CanonicalSql(Parse("SELECT COUNT(*)  FROM BENCH  WHERE K2=2"));
  EXPECT_EQ(a, b);
}

TEST(Fingerprint, NormalizesNotEqualsSpelling) {
  EXPECT_EQ(CanonicalSql(Parse("SELECT * FROM t WHERE a != 1")),
            CanonicalSql(Parse("SELECT * FROM t WHERE a <> 1")));
}

TEST(Fingerprint, DistinguishesDifferentConstants) {
  EXPECT_NE(CanonicalSql(Parse("SELECT * FROM t WHERE a = 1")),
            CanonicalSql(Parse("SELECT * FROM t WHERE a = 2")));
}

TEST(Fingerprint, ParamsRenderPositionally) {
  const std::string sql = CanonicalSql(Parse("SELECT * FROM t WHERE a = ? AND b = ?"));
  EXPECT_NE(sql.find("$1"), std::string::npos);
  EXPECT_NE(sql.find("$2"), std::string::npos);
}

TEST(Fingerprint, BindingsDistinguishCacheKeys) {
  SelectStmt stmt = Parse("SELECT * FROM t WHERE a = $1");
  EXPECT_NE(Fingerprint(stmt, {Value("Gold")}), Fingerprint(stmt, {Value("Silver")}));
  EXPECT_EQ(Fingerprint(stmt, {Value("Gold")}), Fingerprint(stmt, {Value("Gold")}));
  // String vs int parameters cannot collide.
  EXPECT_NE(Fingerprint(stmt, {Value("1")}), Fingerprint(stmt, {Value(1)}));
}

}  // namespace
}  // namespace qc::sql
