// Access-path planner tests, anchored on the arbitrary-range-pick
// regression: with no equality candidate, the planner used to take the
// *first* range conjunct in WHERE order regardless of selectivity, so
// `WHERE K100 < 99 AND KSEQ BETWEEN 1000 AND 2000` materialized ~99% of
// the table. It now sizes every candidate (exact bucket counts for
// equality, capped ordered-index walks for ranges) and materializes only
// the narrowest.
#include "sql/planner.h"

#include <gtest/gtest.h>

#include "sql/exec_common.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::sql {
namespace {

using storage::Database;
using storage::Schema;
using storage::Table;

class PlannerTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 10000;

  void SetUp() override {
    // A shrunk Set Query BENCH: KSEQ is a unique sequence, K100 cycles
    // through 0..99. Ordered indexes on both so each can serve ranges.
    Table& t = db_.CreateTable("BENCH", Schema({{"KSEQ", ValueType::kInt, false},
                                                {"K100", ValueType::kInt, false},
                                                {"K10", ValueType::kInt, false}}));
    t.CreateOrderedIndex(0);
    t.CreateOrderedIndex(1);
    t.CreateHashIndex(2);
    for (int64_t i = 1; i <= kRows; ++i) {
      t.Insert({Value(i), Value(i % 100), Value(i % 10)});
    }
  }

  /// Candidate row ids the planner picks for `sql`'s WHERE clause.
  std::optional<std::vector<storage::RowId>> Candidates(const std::string& sql) {
    query_ = ParseAndBind(sql, db_);
    conjuncts_.clear();
    exec::SplitConjuncts(*query_->stmt().where, conjuncts_);
    return IndexedCandidates(query_->table(0), 0, conjuncts_, {});
  }

  Database db_;
  std::shared_ptr<const BoundQuery> query_;
  std::vector<const Expr*> conjuncts_;
};

TEST_F(PlannerTest, BoundedBetweenBeatsWideHalfOpenRange) {
  // The regression shape: K100 < 99 covers 99% of the table; the BETWEEN
  // covers 1001 rows. The old planner picked K100 (first range conjunct in
  // WHERE order); the sized planner must pick the BETWEEN.
  auto candidates =
      Candidates("SELECT KSEQ FROM BENCH WHERE K100 < 99 AND KSEQ BETWEEN 1000 AND 2000");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_EQ(candidates->size(), 1001u);
}

TEST_F(PlannerTest, ConjunctOrderDoesNotChangeTheWinner) {
  auto a = Candidates("SELECT KSEQ FROM BENCH WHERE K100 < 99 AND KSEQ BETWEEN 1000 AND 2000");
  auto b = Candidates("SELECT KSEQ FROM BENCH WHERE KSEQ BETWEEN 1000 AND 2000 AND K100 < 99");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->size(), 1001u);
  EXPECT_EQ(b->size(), 1001u);
}

TEST_F(PlannerTest, NarrowHalfOpenRangeBeatsWideBetween) {
  // Bounded-both-ends is a sizing heuristic for ordering the walks, not an
  // automatic win: a genuinely narrower half-open range must still win.
  auto candidates =
      Candidates("SELECT KSEQ FROM BENCH WHERE KSEQ > 9990 AND K100 BETWEEN 0 AND 90");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_EQ(candidates->size(), 10u);  // KSEQ 9991..10000
}

TEST_F(PlannerTest, EqualityCandidateStillWinsOverRanges) {
  // K10 = 3 has 1000 rows; the BETWEEN has 1001. Exact equality sizing
  // must keep preferring the narrower equality candidate.
  auto candidates =
      Candidates("SELECT KSEQ FROM BENCH WHERE K10 = 3 AND KSEQ BETWEEN 1000 AND 2000");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_EQ(candidates->size(), 1000u);
}

TEST_F(PlannerTest, RangeNarrowerThanEqualityWins) {
  auto candidates =
      Candidates("SELECT KSEQ FROM BENCH WHERE K10 = 3 AND KSEQ BETWEEN 1000 AND 1004");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_EQ(candidates->size(), 5u);
}

TEST_F(PlannerTest, ProvablyEmptyCandidateShortCircuits) {
  auto candidates =
      Candidates("SELECT KSEQ FROM BENCH WHERE K100 < 99 AND KSEQ BETWEEN 20000 AND 30000");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_TRUE(candidates->empty());
}

TEST_F(PlannerTest, SingleCandidateSkipsSizing) {
  auto candidates = Candidates("SELECT KSEQ FROM BENCH WHERE KSEQ BETWEEN 42 AND 48");
  ASSERT_TRUE(candidates.has_value());
  EXPECT_EQ(candidates->size(), 7u);
}

TEST_F(PlannerTest, UnindexedConjunctsMeanFullScan) {
  // K100 compared to itself is not extractable; no candidate → nullopt.
  auto candidates = Candidates("SELECT KSEQ FROM BENCH WHERE K100 <> 5");
  EXPECT_FALSE(candidates.has_value());
}

TEST_F(PlannerTest, EstimateRangeRowsIsExactAndCapped) {
  const Table& t = db_.GetTable("BENCH");
  // Exact when under the cap.
  EXPECT_EQ(t.EstimateRangeRows(0, Value(1000), true, Value(2000), true, kRows), 1001u);
  EXPECT_EQ(t.EstimateRangeRows(0, Value(1000), false, Value(2000), false, kRows), 999u);
  EXPECT_EQ(t.EstimateRangeRows(1, Value::Null(), true, Value(98), false, kRows), 9800u);
  // Early exit: the walk stops as soon as the running count exceeds the
  // cap; the return value is then merely "already too big".
  EXPECT_GT(t.EstimateRangeRows(1, Value::Null(), true, Value(98), false, 100), 100u);
  // Empty interval.
  EXPECT_EQ(t.EstimateRangeRows(0, Value(5000), true, Value(4000), true, kRows), 0u);
}

TEST_F(PlannerTest, EstimateTracksDeletes) {
  Table& t = db_.GetTable("BENCH");
  const size_t before = t.EstimateRangeRows(0, Value(1), true, Value(100), true, kRows);
  EXPECT_EQ(before, 100u);
  // KSEQ is row id + 1 here because Insert allocates sequentially.
  t.Delete(0);
  t.Delete(1);
  EXPECT_EQ(t.EstimateRangeRows(0, Value(1), true, Value(100), true, kRows), 98u);
}

}  // namespace
}  // namespace qc::sql
