// Randomized differential suite: every generated query runs through both
// engines — Execute (vectorized when the shape is covered) and
// ExecuteRowAtATime (the tree-walking oracle) — and the ResultSets must
// match row for row. Predicates cover int/double/string columns with
// NULLs, IN/BETWEEN/LIKE/IS NULL, negation, OR, column-vs-column and
// cross-type comparisons; select lists cover projections, aggregates,
// GROUP BY, ORDER BY and LIMIT. A parallel variant lowers the scan
// threshold so the worker pool is exercised under the same oracle.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/vectorized.h"
#include "storage/database.h"

namespace qc::sql {
namespace {

using storage::Database;
using storage::Schema;
using storage::Table;

constexpr int64_t kRows = 500;

class VectorizedDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A: unique sequence (ordered index), B: small int domain with NULLs
    // (hash index), C: doubles with NULLs (no index), D: short strings
    // with NULLs (hash index), E: dense group key (no index).
    Table& t = db_.CreateTable("R", Schema({{"A", ValueType::kInt, false},
                                            {"B", ValueType::kInt, true},
                                            {"C", ValueType::kDouble, true},
                                            {"D", ValueType::kString, true},
                                            {"E", ValueType::kInt, false}}));
    t.CreateOrderedIndex(0);
    t.CreateHashIndex(1);
    t.CreateHashIndex(3);
    Rng rng(0xbeefcafe);
    for (int64_t i = 0; i < kRows; ++i) {
      Value b = rng.Chance(0.1) ? Value::Null() : Value(rng.Uniform(0, 20));
      Value c = rng.Chance(0.1) ? Value::Null()
                                : Value(static_cast<double>(rng.Uniform(0, 1000)) / 8.0);
      Value d = rng.Chance(0.1) ? Value::Null()
                                : Value("w" + std::to_string(rng.Uniform(0, 30)));
      t.Insert({Value(i), b, c, d, Value(rng.Uniform(0, 4))});
    }
  }

  // --- query generator -----------------------------------------------------

  // The grammar has no unary minus, so constants stay non-negative.
  std::string IntConst(Rng& rng) { return std::to_string(rng.Uniform(0, 22)); }

  std::string DoubleConst(Rng& rng) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(rng.Uniform(0, 1000)) / 8.0);
    return buf;
  }

  std::string StringConst(Rng& rng) { return "'w" + std::to_string(rng.Uniform(0, 30)) + "'"; }

  std::string CmpOp(Rng& rng) {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return kOps[rng.Uniform(0, 5)];
  }

  /// One atomic predicate (occasionally wrapped in NOT or OR by the caller).
  std::string GenAtom(Rng& rng) {
    switch (rng.Uniform(0, 9)) {
      case 0:  // int column vs int const (A is indexed, B nullable)
        return std::string(rng.Chance(0.5) ? "A" : "B") + " " + CmpOp(rng) + " " + IntConst(rng);
      case 1:  // double column
        return "C " + CmpOp(rng) + " " + DoubleConst(rng);
      case 2:  // string column
        return "D " + CmpOp(rng) + " " + StringConst(rng);
      case 3: {  // BETWEEN (sometimes NOT, sometimes reversed bounds)
        const int64_t lo = rng.Uniform(1, 20);
        const int64_t hi = lo + rng.Uniform(-1, 8);  // hi == lo-1 covers inverted bounds
        const std::string col = rng.Chance(0.5) ? "B" : "E";
        return col + (rng.Chance(0.25) ? " NOT" : "") + " BETWEEN " + std::to_string(lo) +
               " AND " + std::to_string(hi);
      }
      case 4: {  // IN, occasionally with a NULL member (three-valued NOT IN)
        std::string list = IntConst(rng);
        for (int i = rng.Uniform(0, 3); i > 0; --i) list += ", " + IntConst(rng);
        if (rng.Chance(0.2)) list += ", NULL";
        return std::string("B") + (rng.Chance(0.3) ? " NOT" : "") + " IN (" + list + ")";
      }
      case 5: {  // LIKE on the string column
        static const char* kPatterns[] = {"'w1%'", "'%2'", "'w_'", "'w__'", "'w7'", "'%'"};
        return std::string("D") + (rng.Chance(0.3) ? " NOT" : "") + " LIKE " +
               kPatterns[rng.Uniform(0, 5)];
      }
      case 6:  // IS [NOT] NULL
        return std::string(rng.Chance(0.5) ? "B" : "C") + " IS" +
               (rng.Chance(0.5) ? " NOT" : "") + " NULL";
      case 7:  // column vs column (same + cross type class)
        switch (rng.Uniform(0, 2)) {
          case 0: return "B " + CmpOp(rng) + " E";
          case 1: return "A " + CmpOp(rng) + " B";
          default: return "B " + CmpOp(rng) + " D";  // numeric vs string rank
        }
      case 8:  // cross-type or NULL constant comparisons
        switch (rng.Uniform(0, 2)) {
          case 0: return "D " + CmpOp(rng) + " " + IntConst(rng);
          case 1: return "B " + CmpOp(rng) + " " + StringConst(rng);
          default: return "B " + CmpOp(rng) + " NULL";
        }
      default:  // constant-only conjunct
        return IntConst(rng) + " " + CmpOp(rng) + " " + IntConst(rng);
    }
  }

  std::string GenPredicate(Rng& rng) {
    std::string atom = GenAtom(rng);
    if (rng.Chance(0.15)) atom = "NOT (" + atom + ")";
    if (rng.Chance(0.2)) atom = "(" + atom + " OR " + GenAtom(rng) + ")";
    return atom;
  }

  std::string GenQuery(Rng& rng) {
    std::string sql;
    std::string order_col;  // must be a projected column
    const int shape = static_cast<int>(rng.Uniform(0, 2));
    if (shape == 0) {  // plain projection
      static const char* kLists[] = {"*", "A, B", "D, C, A", "E, B", "A"};
      const char* list = kLists[rng.Uniform(0, 4)];
      sql = std::string("SELECT ") + list + " FROM R";
      order_col = (std::string(list) == "*") ? "A" : "A";
      if (std::string(list) == "E, B") order_col = "E";
    } else if (shape == 1) {  // ungrouped aggregates
      static const char* kAggs[] = {
          "COUNT(*)", "COUNT(B), SUM(B), MIN(A), MAX(A)", "SUM(C), AVG(C)",
          "MIN(D), MAX(D), COUNT(D)", "COUNT(*), AVG(B)"};
      sql = std::string("SELECT ") + kAggs[rng.Uniform(0, 4)] + " FROM R";
    } else {  // GROUP BY
      if (rng.Chance(0.5)) {
        sql = "SELECT E, COUNT(*), SUM(B) FROM R";
        order_col = "E";
      } else {
        sql = "SELECT E, B, MIN(C), COUNT(*) FROM R";
        order_col = "B";
      }
    }
    const int conjuncts = static_cast<int>(rng.Uniform(0, 3));
    for (int i = 0; i < conjuncts; ++i) {
      sql += (i == 0 ? " WHERE " : " AND ") + GenPredicate(rng);
    }
    if (shape == 2) {
      sql += (sql.find("E, B,") != std::string::npos) ? " GROUP BY E, B" : " GROUP BY E";
    }
    if (!order_col.empty() && rng.Chance(0.4)) {
      sql += " ORDER BY " + order_col + (rng.Chance(0.5) ? " DESC" : "");
      if (rng.Chance(0.5)) sql += " LIMIT " + std::to_string(rng.Uniform(0, 20));
    }
    return sql;
  }

  // --- differential check --------------------------------------------------

  static bool CellsMatch(const Value& a, const Value& b) {
    if (a.is_double() && b.is_double()) {
      const double x = a.as_double(), y = b.as_double();
      if (x == y) return true;
      // Parallel chunks merge double sums in a different association order.
      return std::abs(x - y) <= 1e-9 * std::max({std::abs(x), std::abs(y), 1.0});
    }
    return a == b;
  }

  void CompareEngines(const std::string& sql) {
    auto query = ParseAndBind(sql, db_);
    std::optional<ResultSet> fast, oracle;
    std::string fast_err, oracle_err;
    try {
      fast = Execute(*query, {});
    } catch (const Error& e) {
      fast_err = e.what();
    }
    try {
      oracle = ExecuteRowAtATime(*query, {});
    } catch (const Error& e) {
      oracle_err = e.what();
    }
    ASSERT_EQ(fast.has_value(), oracle.has_value())
        << "one engine threw: fast=[" << fast_err << "] oracle=[" << oracle_err << "]";
    if (!fast) {
      EXPECT_EQ(fast_err, oracle_err);
      return;
    }
    ASSERT_EQ(fast->columns(), oracle->columns());
    ASSERT_EQ(fast->row_count(), oracle->row_count());
    for (size_t r = 0; r < fast->row_count(); ++r) {
      const auto& fr = fast->rows()[r];
      const auto& orow = oracle->rows()[r];
      ASSERT_EQ(fr.size(), orow.size()) << "row " << r;
      for (size_t c = 0; c < fr.size(); ++c) {
        ASSERT_TRUE(CellsMatch(fr[c], orow[c]))
            << "row " << r << " col " << c << ": vectorized=" << fr[c].ToString()
            << " oracle=" << orow[c].ToString();
      }
    }
  }

  void RunRounds(uint64_t seed, int rounds) {
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
      const std::string sql = GenQuery(rng);
      SCOPED_TRACE("round " + std::to_string(round) + ": " + sql);
      CompareEngines(sql);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  Database db_;
};

TEST_F(VectorizedDiffTest, RandomizedRoundsMatchOracle) {
  const uint64_t vec_before = GetVectorizedStats().queries_vectorized;
  RunRounds(0xd1ff5eed, 220);
  // The generator must actually exercise the vectorized engine, not fall
  // back on every round.
  EXPECT_GT(GetVectorizedStats().queries_vectorized, vec_before + 100);
}

TEST_F(VectorizedDiffTest, RandomizedRoundsMatchOracleUnderParallelScan) {
  // Lower the threshold so the 500-row table takes the worker-pool path,
  // and pin the thread count for reproducibility.
  const size_t old_threshold = SetParallelScanThreshold(64);
  const size_t old_threads = SetScanThreads(4);
  const uint64_t par_before = GetVectorizedStats().parallel_scans;
  RunRounds(0x9a7a11e1, 120);
  EXPECT_GT(GetVectorizedStats().parallel_scans, par_before);
  SetParallelScanThreshold(old_threshold);
  SetScanThreads(old_threads);
}

TEST_F(VectorizedDiffTest, DisablingTheEngineForcesFallback) {
  const bool was_enabled = SetVectorizedEnabled(false);
  const uint64_t vec_before = GetVectorizedStats().queries_vectorized;
  RunRounds(0x0ff1a5e5, 20);
  EXPECT_EQ(GetVectorizedStats().queries_vectorized, vec_before);
  SetVectorizedEnabled(was_enabled);
}

// Deterministic pins for the trickiest semantics, so a generator drift can
// never silently drop coverage of them.
TEST_F(VectorizedDiffTest, KleeneSemanticsPins) {
  const char* kQueries[] = {
      "SELECT A FROM R WHERE B NOT IN (1, 2, NULL)",       // always unknown
      "SELECT A FROM R WHERE NOT (B > 10)",                // NULL B stays unknown
      "SELECT A FROM R WHERE B BETWEEN 5 AND NULL",        // NULL bound
      "SELECT A FROM R WHERE D LIKE NULL",                 // NULL pattern
      "SELECT A FROM R WHERE B = NULL OR B IS NULL",       // unknown OR true
      "SELECT A FROM R WHERE D < 5",                       // string col vs int rank
      "SELECT A FROM R WHERE B <> D",                      // cross-class col-col
      "SELECT COUNT(*), SUM(B) FROM R WHERE B > 100",      // empty aggregate row
      "SELECT E, COUNT(*) FROM R WHERE B > 100 GROUP BY E",  // empty grouped
      "SELECT A FROM R WHERE 3 < 2",                       // constant-folded false
  };
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    CompareEngines(sql);
  }
}

}  // namespace
}  // namespace qc::sql
