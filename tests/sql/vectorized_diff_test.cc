// Randomized differential suite: every generated query runs through both
// engines — Execute (vectorized when the shape is covered) and
// ExecuteRowAtATime (the tree-walking oracle) — and the ResultSets must
// match row for row. Predicates cover int/double/string columns with
// NULLs, IN/BETWEEN/LIKE/IS NULL, negation, OR, column-vs-column and
// cross-type comparisons; select lists cover projections, aggregates,
// GROUP BY, ORDER BY and LIMIT. A parallel variant lowers the scan
// threshold so the worker pool is exercised under the same oracle.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "sql/evaluator.h"
#include "sql/parser.h"
#include "sql/vectorized.h"
#include "storage/database.h"

namespace qc::sql {
namespace {

using storage::Database;
using storage::Schema;
using storage::Table;

constexpr int64_t kRows = 500;
constexpr int64_t kRowsS = 300;

class VectorizedDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A: unique sequence (ordered index), B: small int domain with NULLs
    // (hash index), C: doubles with NULLs (no index), D: short strings
    // with NULLs (hash index), E: dense group key (no index).
    Table& t = db_.CreateTable("R", Schema({{"A", ValueType::kInt, false},
                                            {"B", ValueType::kInt, true},
                                            {"C", ValueType::kDouble, true},
                                            {"D", ValueType::kString, true},
                                            {"E", ValueType::kInt, false}}));
    t.CreateOrderedIndex(0);
    t.CreateHashIndex(1);
    t.CreateHashIndex(3);
    Rng rng(0xbeefcafe);
    for (int64_t i = 0; i < kRows; ++i) {
      Value b = rng.Chance(0.1) ? Value::Null() : Value(rng.Uniform(0, 20));
      Value c = rng.Chance(0.1) ? Value::Null()
                                : Value(static_cast<double>(rng.Uniform(0, 1000)) / 8.0);
      Value d = rng.Chance(0.1) ? Value::Null()
                                : Value("w" + std::to_string(rng.Uniform(0, 30)));
      t.Insert({Value(i), b, c, d, Value(rng.Uniform(0, 4))});
    }
    // Join partner: K overlaps R.B (heavy duplicates and NULLs on both
    // sides), W overlaps R.D for string-key joins, G is a small group key.
    Table& s = db_.CreateTable("S", Schema({{"K", ValueType::kInt, true},
                                            {"G", ValueType::kInt, false},
                                            {"V", ValueType::kDouble, true},
                                            {"W", ValueType::kString, true}}));
    s.CreateHashIndex(0);
    for (int64_t i = 0; i < kRowsS; ++i) {
      Value k = rng.Chance(0.15) ? Value::Null() : Value(rng.Uniform(0, 20));
      Value v = rng.Chance(0.1) ? Value::Null()
                                : Value(static_cast<double>(rng.Uniform(0, 500)) / 4.0);
      Value w = rng.Chance(0.15) ? Value::Null()
                                 : Value("w" + std::to_string(rng.Uniform(0, 30)));
      s.Insert({k, Value(rng.Uniform(0, 6)), v, w});
    }
  }

  // --- query generator -----------------------------------------------------

  // The grammar has no unary minus, so constants stay non-negative.
  std::string IntConst(Rng& rng) { return std::to_string(rng.Uniform(0, 22)); }

  std::string DoubleConst(Rng& rng) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(rng.Uniform(0, 1000)) / 8.0);
    return buf;
  }

  std::string StringConst(Rng& rng) { return "'w" + std::to_string(rng.Uniform(0, 30)) + "'"; }

  std::string CmpOp(Rng& rng) {
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    return kOps[rng.Uniform(0, 5)];
  }

  /// One atomic predicate (occasionally wrapped in NOT or OR by the caller).
  std::string GenAtom(Rng& rng) {
    switch (rng.Uniform(0, 9)) {
      case 0:  // int column vs int const (A is indexed, B nullable)
        return std::string(rng.Chance(0.5) ? "A" : "B") + " " + CmpOp(rng) + " " + IntConst(rng);
      case 1:  // double column
        return "C " + CmpOp(rng) + " " + DoubleConst(rng);
      case 2:  // string column
        return "D " + CmpOp(rng) + " " + StringConst(rng);
      case 3: {  // BETWEEN (sometimes NOT, sometimes reversed bounds)
        const int64_t lo = rng.Uniform(1, 20);
        const int64_t hi = lo + rng.Uniform(-1, 8);  // hi == lo-1 covers inverted bounds
        const std::string col = rng.Chance(0.5) ? "B" : "E";
        return col + (rng.Chance(0.25) ? " NOT" : "") + " BETWEEN " + std::to_string(lo) +
               " AND " + std::to_string(hi);
      }
      case 4: {  // IN, occasionally with a NULL member (three-valued NOT IN)
        std::string list = IntConst(rng);
        for (int i = rng.Uniform(0, 3); i > 0; --i) list += ", " + IntConst(rng);
        if (rng.Chance(0.2)) list += ", NULL";
        return std::string("B") + (rng.Chance(0.3) ? " NOT" : "") + " IN (" + list + ")";
      }
      case 5: {  // LIKE on the string column
        static const char* kPatterns[] = {"'w1%'", "'%2'", "'w_'", "'w__'", "'w7'", "'%'"};
        return std::string("D") + (rng.Chance(0.3) ? " NOT" : "") + " LIKE " +
               kPatterns[rng.Uniform(0, 5)];
      }
      case 6:  // IS [NOT] NULL
        return std::string(rng.Chance(0.5) ? "B" : "C") + " IS" +
               (rng.Chance(0.5) ? " NOT" : "") + " NULL";
      case 7:  // column vs column (same + cross type class)
        switch (rng.Uniform(0, 2)) {
          case 0: return "B " + CmpOp(rng) + " E";
          case 1: return "A " + CmpOp(rng) + " B";
          default: return "B " + CmpOp(rng) + " D";  // numeric vs string rank
        }
      case 8:  // cross-type or NULL constant comparisons
        switch (rng.Uniform(0, 2)) {
          case 0: return "D " + CmpOp(rng) + " " + IntConst(rng);
          case 1: return "B " + CmpOp(rng) + " " + StringConst(rng);
          default: return "B " + CmpOp(rng) + " NULL";
        }
      default:  // constant-only conjunct
        return IntConst(rng) + " " + CmpOp(rng) + " " + IntConst(rng);
    }
  }

  std::string GenPredicate(Rng& rng) {
    std::string atom = GenAtom(rng);
    if (rng.Chance(0.15)) atom = "NOT (" + atom + ")";
    if (rng.Chance(0.2)) atom = "(" + atom + " OR " + GenAtom(rng) + ")";
    return atom;
  }

  std::string GenQuery(Rng& rng) {
    std::string sql;
    std::string order_col;  // must be a projected column
    const int shape = static_cast<int>(rng.Uniform(0, 2));
    if (shape == 0) {  // plain projection
      static const char* kLists[] = {"*", "A, B", "D, C, A", "E, B", "A"};
      const char* list = kLists[rng.Uniform(0, 4)];
      sql = std::string("SELECT ") + list + " FROM R";
      order_col = (std::string(list) == "*") ? "A" : "A";
      if (std::string(list) == "E, B") order_col = "E";
    } else if (shape == 1) {  // ungrouped aggregates
      static const char* kAggs[] = {
          "COUNT(*)", "COUNT(B), SUM(B), MIN(A), MAX(A)", "SUM(C), AVG(C)",
          "MIN(D), MAX(D), COUNT(D)", "COUNT(*), AVG(B)"};
      sql = std::string("SELECT ") + kAggs[rng.Uniform(0, 4)] + " FROM R";
    } else {  // GROUP BY
      if (rng.Chance(0.5)) {
        sql = "SELECT E, COUNT(*), SUM(B) FROM R";
        order_col = "E";
      } else {
        sql = "SELECT E, B, MIN(C), COUNT(*) FROM R";
        order_col = "B";
      }
    }
    const int conjuncts = static_cast<int>(rng.Uniform(0, 3));
    for (int i = 0; i < conjuncts; ++i) {
      sql += (i == 0 ? " WHERE " : " AND ") + GenPredicate(rng);
    }
    if (shape == 2) {
      sql += (sql.find("E, B,") != std::string::npos) ? " GROUP BY E, B" : " GROUP BY E";
    }
    if (!order_col.empty() && rng.Chance(0.4)) {
      sql += " ORDER BY " + order_col + (rng.Chance(0.5) ? " DESC" : "");
      if (rng.Chance(0.5)) sql += " LIMIT " + std::to_string(rng.Uniform(0, 20));
    }
    return sql;
  }

  /// Two-table equi-join shapes over R (alias R1) and S (alias S1):
  /// duplicate keys on both sides, NULL join keys, string keys, local
  /// filters in random conjunct order, cross-slot residuals, occasionally
  /// an empty build side, plus join + GROUP BY + ORDER BY/LIMIT.
  std::string GenJoinQuery(Rng& rng) {
    std::vector<std::string> conjuncts;
    const bool string_key = rng.Chance(0.25);
    conjuncts.push_back(string_key ? "R1.D = S1.W" : "R1.B = S1.K");
    if (rng.Chance(0.5)) {
      conjuncts.push_back("R1.E " + CmpOp(rng) + " " + std::to_string(rng.Uniform(0, 4)));
    }
    if (rng.Chance(0.5)) {
      conjuncts.push_back("S1.G " + CmpOp(rng) + " " + std::to_string(rng.Uniform(0, 6)));
    }
    if (rng.Chance(0.3)) conjuncts.push_back("S1.V IS NOT NULL");
    if (rng.Chance(0.15)) conjuncts.push_back("S1.K > 1000");  // empty build side
    if (rng.Chance(0.3)) {
      // Cross-slot residual; "=" here can even displace the join key —
      // both engines pick the first equi conjunct, so they must agree.
      conjuncts.push_back("R1.E " + CmpOp(rng) + " S1.G");
    }
    // WHERE order must not matter for the equi-join choice: shuffle.
    for (size_t i = conjuncts.size(); i > 1; --i) {
      std::swap(conjuncts[i - 1], conjuncts[static_cast<size_t>(rng.Uniform(0, i - 1))]);
    }
    std::string where;
    for (const std::string& c : conjuncts) {
      where += (where.empty() ? "" : " AND ") + c;
    }

    std::string sql;
    switch (rng.Uniform(0, 3)) {
      case 0:
        sql = "SELECT COUNT(*) FROM R R1, S S1 WHERE " + where;
        break;
      case 1:
        // Un-ORDERed projection: pins the exact pair emission order.
        sql = "SELECT R1.A, S1.G FROM R R1, S S1 WHERE " + where;
        break;
      case 2:
        sql = "SELECT COUNT(*), SUM(R1.B), MIN(S1.V), MAX(R1.A) FROM R R1, S S1 WHERE " + where;
        break;
      default:
        sql = "SELECT S1.G, COUNT(*), SUM(R1.B) FROM R R1, S S1 WHERE " + where +
              " GROUP BY S1.G";
        if (rng.Chance(0.5)) {
          sql += " ORDER BY S1.G" + std::string(rng.Chance(0.5) ? " DESC" : "");
          if (rng.Chance(0.5)) sql += " LIMIT " + std::to_string(rng.Uniform(0, 5));
        }
        break;
    }
    return sql;
  }

  /// Arithmetic select items and predicates (+ - * /, parentheses,
  /// int/double mixing, division by zero, NULL propagation).
  std::string GenArithQuery(Rng& rng) {
    static const char* kScalarLists[] = {
        "A + 1, B * 2", "A - B", "C / 4, A", "(A + 1) * 2", "B + C", "A, B / 0",
    };
    static const char* kArithPreds[] = {
        "A + 1 > 10",         "(A + 1) * 2 >= B + E", "B * 2 = E * 5",
        "C / 2 > 30",         "A - 2 < B",            "B + C >= 50",
        "10 - E > A / 25",    "B / 0 = 1",  // divisor zero: NULL, never true
    };
    std::string sql;
    if (rng.Chance(0.5)) {
      sql = std::string("SELECT ") + kScalarLists[rng.Uniform(0, 5)] + " FROM R";
      if (rng.Chance(0.6)) sql += " WHERE " + std::string(kArithPreds[rng.Uniform(0, 7)]);
    } else {
      sql = "SELECT A FROM R WHERE " + std::string(kArithPreds[rng.Uniform(0, 7)]);
      if (rng.Chance(0.4)) sql += " AND " + GenPredicate(rng);
    }
    return sql;
  }

  // --- differential check --------------------------------------------------

  static bool CellsMatch(const Value& a, const Value& b) {
    if (a.is_double() && b.is_double()) {
      const double x = a.as_double(), y = b.as_double();
      if (x == y) return true;
      // Parallel chunks merge double sums in a different association order.
      return std::abs(x - y) <= 1e-9 * std::max({std::abs(x), std::abs(y), 1.0});
    }
    return a == b;
  }

  void CompareEngines(const std::string& sql) {
    auto query = ParseAndBind(sql, db_);
    std::optional<ResultSet> fast, oracle;
    std::string fast_err, oracle_err;
    try {
      fast = Execute(*query, {});
    } catch (const Error& e) {
      fast_err = e.what();
    }
    try {
      oracle = ExecuteRowAtATime(*query, {});
    } catch (const Error& e) {
      oracle_err = e.what();
    }
    ASSERT_EQ(fast.has_value(), oracle.has_value())
        << "one engine threw: fast=[" << fast_err << "] oracle=[" << oracle_err << "]";
    if (!fast) {
      EXPECT_EQ(fast_err, oracle_err);
      return;
    }
    ASSERT_EQ(fast->columns(), oracle->columns());
    ASSERT_EQ(fast->row_count(), oracle->row_count());
    for (size_t r = 0; r < fast->row_count(); ++r) {
      const auto& fr = fast->rows()[r];
      const auto& orow = oracle->rows()[r];
      ASSERT_EQ(fr.size(), orow.size()) << "row " << r;
      for (size_t c = 0; c < fr.size(); ++c) {
        ASSERT_TRUE(CellsMatch(fr[c], orow[c]))
            << "row " << r << " col " << c << ": vectorized=" << fr[c].ToString()
            << " oracle=" << orow[c].ToString();
      }
    }
  }

  void RunRounds(uint64_t seed, int rounds) {
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
      const std::string sql = GenQuery(rng);
      SCOPED_TRACE("round " + std::to_string(round) + ": " + sql);
      CompareEngines(sql);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  void RunJoinRounds(uint64_t seed, int rounds) {
    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
      const std::string sql = GenJoinQuery(rng);
      SCOPED_TRACE("join round " + std::to_string(round) + ": " + sql);
      CompareEngines(sql);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  Database db_;
};

TEST_F(VectorizedDiffTest, RandomizedRoundsMatchOracle) {
  const uint64_t vec_before = GetVectorizedStats().queries_vectorized;
  RunRounds(0xd1ff5eed, 220);
  // The generator must actually exercise the vectorized engine, not fall
  // back on every round.
  EXPECT_GT(GetVectorizedStats().queries_vectorized, vec_before + 100);
}

TEST_F(VectorizedDiffTest, RandomizedRoundsMatchOracleUnderParallelScan) {
  // Lower the threshold so the 500-row table takes the worker-pool path,
  // and pin the thread count for reproducibility.
  const size_t old_threshold = SetParallelScanThreshold(64);
  const size_t old_threads = SetScanThreads(4);
  const uint64_t par_before = GetVectorizedStats().parallel_scans;
  RunRounds(0x9a7a11e1, 120);
  EXPECT_GT(GetVectorizedStats().parallel_scans, par_before);
  SetParallelScanThreshold(old_threshold);
  SetScanThreads(old_threads);
}

TEST_F(VectorizedDiffTest, DisablingTheEngineForcesFallback) {
  const bool was_enabled = SetVectorizedEnabled(false);
  const uint64_t vec_before = GetVectorizedStats().queries_vectorized;
  RunRounds(0x0ff1a5e5, 20);
  EXPECT_EQ(GetVectorizedStats().queries_vectorized, vec_before);
  SetVectorizedEnabled(was_enabled);
}

// Deterministic pins for the trickiest semantics, so a generator drift can
// never silently drop coverage of them.
TEST_F(VectorizedDiffTest, KleeneSemanticsPins) {
  const char* kQueries[] = {
      "SELECT A FROM R WHERE B NOT IN (1, 2, NULL)",       // always unknown
      "SELECT A FROM R WHERE NOT (B > 10)",                // NULL B stays unknown
      "SELECT A FROM R WHERE B BETWEEN 5 AND NULL",        // NULL bound
      "SELECT A FROM R WHERE D LIKE NULL",                 // NULL pattern
      "SELECT A FROM R WHERE B = NULL OR B IS NULL",       // unknown OR true
      "SELECT A FROM R WHERE D < 5",                       // string col vs int rank
      "SELECT A FROM R WHERE B <> D",                      // cross-class col-col
      "SELECT COUNT(*), SUM(B) FROM R WHERE B > 100",      // empty aggregate row
      "SELECT E, COUNT(*) FROM R WHERE B > 100 GROUP BY E",  // empty grouped
      "SELECT A FROM R WHERE 3 < 2",                       // constant-folded false
  };
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    CompareEngines(sql);
  }
}

TEST_F(VectorizedDiffTest, RandomizedJoinRoundsMatchOracle) {
  const uint64_t joins_before = GetVectorizedStats().joins_vectorized;
  RunJoinRounds(0x10a0beef, 150);
  // Every generated shape carries a usable equi conjunct, so nearly all
  // rounds must take the vectorized hash join, not the row engine.
  EXPECT_GT(GetVectorizedStats().joins_vectorized, joins_before + 120);
}

// Deterministic join pins: edge cases the generator only hits
// probabilistically must never lose coverage.
TEST_F(VectorizedDiffTest, JoinSemanticsPins) {
  const char* kQueries[] = {
      // Equi conjunct listed last: the hash join must still find it.
      "SELECT COUNT(*) FROM R R1, S S1 WHERE R1.E > 0 AND S1.G < 5 AND R1.B = S1.K",
      // Self join, duplicate keys on both sides, un-ORDERed projection
      // (pins the exact probe-outer / build-insertion-inner pair order).
      "SELECT R1.A, R2.A FROM R R1, R R2 WHERE R1.E = R2.E AND R1.A < 6 AND R2.A < 9",
      // Empty build side.
      "SELECT R1.A, S1.G FROM R R1, S S1 WHERE R1.B = S1.K AND S1.K > 1000",
      // String join keys (interned, not boxed).
      "SELECT COUNT(*), MIN(R1.A) FROM R R1, S S1 WHERE R1.D = S1.W",
      // Two equi conjuncts: the first is the key, the second a residual.
      "SELECT COUNT(*) FROM R R1, S S1 WHERE R1.B = S1.K AND R1.E = S1.G",
      // Non-eq cross-slot residual, flipped so slot 1 is on the left.
      "SELECT COUNT(*) FROM R R1, S S1 WHERE S1.G < R1.E AND R1.B = S1.K",
      // Join + GROUP BY + ORDER BY + LIMIT.
      "SELECT S1.G, COUNT(*), SUM(R1.B) FROM R R1, S S1 WHERE R1.B = S1.K "
      "GROUP BY S1.G ORDER BY S1.G DESC LIMIT 3",
      // Group keys drawn from both slots, first-encounter order un-ORDERed.
      "SELECT R1.E, S1.G, COUNT(*) FROM R R1, S S1 WHERE R1.B = S1.K "
      "GROUP BY R1.E, S1.G",
      // Star over both tables.
      "SELECT * FROM R R1, S S1 WHERE R1.B = S1.K AND R1.A < 20",
      // No matching pairs at all: aggregates over the empty pair stream.
      "SELECT COUNT(*), SUM(R1.B), AVG(S1.V) FROM R R1, S S1 "
      "WHERE R1.B = S1.K AND R1.B > 100",
  };
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    CompareEngines(sql);
  }
}

TEST_F(VectorizedDiffTest, RandomizedArithmeticRoundsMatchOracle) {
  Rng rng(0xa417a417);
  const uint64_t vec_before = GetVectorizedStats().queries_vectorized;
  for (int round = 0; round < 120; ++round) {
    const std::string sql = GenArithQuery(rng);
    SCOPED_TRACE("arith round " + std::to_string(round) + ": " + sql);
    CompareEngines(sql);
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(GetVectorizedStats().queries_vectorized, vec_before + 80);
}

TEST_F(VectorizedDiffTest, ArithmeticSemanticsPins) {
  const char* kQueries[] = {
      "SELECT A, B / 0 FROM R LIMIT 10",              // divide by zero -> NULL
      "SELECT A FROM R WHERE B / 0 = 1",              // NULL never satisfies
      "SELECT B + C FROM R LIMIT 20",                 // int + double, NULL operands
      "SELECT (A + 1) * 2 FROM R WHERE (A + 1) * 2 >= B + E",  // parentheses
      "SELECT A FROM R WHERE A - 2 < B",              // arith vs bare column
      "SELECT C / 4, A FROM R WHERE C / 2 > 30",      // double division
      "SELECT A FROM R WHERE 10 - E > A / 25",        // int division truncates
  };
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    CompareEngines(sql);
  }
}

// GROUP BY over provably small all-int key spaces takes the packed
// direct-array layout; results must be indistinguishable from the hash
// grouping path (same first-encounter emission order, same NULL slot).
TEST_F(VectorizedDiffTest, PackedGroupKeyPins) {
  const char* kQueries[] = {
      "SELECT E, COUNT(*) FROM R GROUP BY E",                // dense small domain
      "SELECT B, COUNT(*), SUM(E) FROM R GROUP BY B",        // NULL group keys
      "SELECT E, B, MIN(C), COUNT(*) FROM R GROUP BY E, B",  // two packed dims
      "SELECT A, COUNT(*) FROM R GROUP BY A",                // wide range, still packed
      "SELECT D, COUNT(*) FROM R GROUP BY D",                // string key: hash path
      "SELECT E, COUNT(*) FROM R WHERE A < 0 GROUP BY E",    // no surviving rows
      "SELECT E, AVG(C) FROM R WHERE B IS NOT NULL GROUP BY E ORDER BY E",
  };
  for (const char* sql : kQueries) {
    SCOPED_TRACE(sql);
    CompareEngines(sql);
  }
}

// Refusals are tallied per reason, and the reasons partition the total.
TEST_F(VectorizedDiffTest, FallbackReasonCounters) {
  auto before = GetVectorizedStats();
  // Two tables but no usable equi conjunct: join machinery refuses.
  CompareEngines("SELECT COUNT(*) FROM R R1, S S1 WHERE R1.E < S1.G");
  auto after = GetVectorizedStats();
  EXPECT_EQ(after.fallback_join, before.fallback_join + 1);
  EXPECT_EQ(after.queries_fallback, before.queries_fallback + 1);

  before = after;
  // Arithmetic over a string column never compiles to a kernel (and the
  // row engine raises the same BindError, so the engines still agree).
  CompareEngines("SELECT A FROM R WHERE D + 1 > 2");
  after = GetVectorizedStats();
  EXPECT_EQ(after.fallback_expression, before.fallback_expression + 1);

  before = after;
  // Join keys must be int/int or string/string; double keys fall back.
  CompareEngines("SELECT COUNT(*) FROM R R1, S S1 WHERE R1.C = S1.V");
  after = GetVectorizedStats();
  EXPECT_EQ(after.fallback_type, before.fallback_type + 1);

  // The per-reason counters partition the total (process-wide invariant:
  // every refusal goes through exactly one reason).
  EXPECT_EQ(after.queries_fallback, after.fallback_join + after.fallback_expression +
                                        after.fallback_shape + after.fallback_type);
}

}  // namespace
}  // namespace qc::sql
