// Warm restart of the middleware (docs/PERSISTENCE.md): a CachedQueryEngine
// opened over a surviving spool serves the previous process's results AND
// keeps them transparent to DUP invalidation — exact re-registration from
// the durable tag, conservative re-registration from the fingerprint when
// the tag is gone, and dropped entries when neither can be rebuilt. The
// fork-and-kill test exercises a genuinely unclean shutdown.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "cache/spill_format.h"
#include "common/error.h"
#include "middleware/query_engine.h"

namespace qc::middleware {
namespace {

namespace fs = std::filesystem;

class WarmRestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs cases of this fixture concurrently
    // under -j, so a shared path would race on remove_all vs. writes.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() / (std::string("qc_warm_restart_test_") + info->name());
    fs::remove_all(dir_);
    PopulateItems(db_);
  }

  static void PopulateItems(storage::Database& db) {
    storage::Table& table =
        db.CreateTable("ITEMS", storage::Schema({{"ID", ValueType::kInt, false},
                                                 {"KIND", ValueType::kString, false},
                                                 {"PRICE", ValueType::kInt, false}}));
    for (int i = 1; i <= 20; ++i) {
      table.Insert({Value(i), Value(i % 2 == 0 ? "even" : "odd"), Value(i * 10)});
    }
  }

  CachedQueryEngine::Options Options(
      dup::InvalidationPolicy policy = dup::InvalidationPolicy::kValueAware) {
    CachedQueryEngine::Options options;
    options.policy = policy;
    options.cache.mode = cache::CacheMode::kDisk;
    options.cache.disk_directory = dir_.string();
    options.cache.recover_on_open = true;
    return options;
  }

  std::vector<fs::path> SpillFiles() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir_)) {
      if (entry.path().extension() == ".obj") files.push_back(entry.path());
    }
    return files;
  }

  fs::path dir_;
  storage::Database db_;
};

TEST_F(WarmRestartTest, RecoveredEntriesHitWithoutReexecution) {
  {
    CachedQueryEngine engine(db_, Options());
    auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
    engine.Execute(by_kind, {Value("even")});
    engine.Execute(by_kind, {Value("odd")});
    engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 150");
    // Engine dropped without Clear: an orderly shutdown that keeps the spool.
  }

  CachedQueryEngine engine(db_, Options());
  EXPECT_EQ(engine.stats().recovered_registrations, 3u);
  EXPECT_EQ(engine.stats().recovered_conservative, 0u);
  EXPECT_EQ(engine.stats().recovered_dropped, 0u);

  auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  EXPECT_TRUE(engine.Execute(by_kind, {Value("even")}).cache_hit);
  EXPECT_TRUE(engine.Execute(by_kind, {Value("odd")}).cache_hit);
  EXPECT_TRUE(engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 150").cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 0u);
  EXPECT_EQ(engine.Execute(by_kind, {Value("even")}).result->ScalarAt(0, 0), Value(10));
}

class WarmRestartPolicyTest
    : public WarmRestartTest,
      public ::testing::WithParamInterface<dup::InvalidationPolicy> {};

TEST_P(WarmRestartPolicyTest, DmlInvalidatesRecoveredEntries) {
  const dup::InvalidationPolicy policy = GetParam();
  {
    CachedQueryEngine engine(db_, Options(policy));
    auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
    ASSERT_EQ(engine.Execute(by_kind, {Value("even")}).result->ScalarAt(0, 0), Value(10));
  }

  CachedQueryEngine engine(db_, Options(policy));
  ASSERT_EQ(engine.stats().recovered_registrations, 1u);

  // An update the previous process never saw: row 2 flips even -> odd. The
  // recovered entry must be invalidated — under every policy — or the
  // cache would serve a pre-restart count forever.
  ASSERT_EQ(engine.ExecuteDml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 2"), 1u);

  auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  auto result = engine.Execute(by_kind, {Value("even")});
  EXPECT_FALSE(result.cache_hit);
  EXPECT_EQ(result.result->ScalarAt(0, 0), Value(9));
}

INSTANTIATE_TEST_SUITE_P(Policies, WarmRestartPolicyTest,
                         ::testing::Values(dup::InvalidationPolicy::kFlushAll,
                                           dup::InvalidationPolicy::kValueUnaware,
                                           dup::InvalidationPolicy::kValueAware),
                         [](const auto& info) {
                           switch (info.param) {
                             case dup::InvalidationPolicy::kFlushAll: return "PolicyI";
                             case dup::InvalidationPolicy::kValueUnaware: return "PolicyII";
                             case dup::InvalidationPolicy::kValueAware: return "PolicyIII";
                             default: return "Other";
                           }
                         });

TEST_F(WarmRestartTest, ConservativeFallbackWhenTagLost) {
  {
    CachedQueryEngine engine(db_, Options());
    auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
    engine.Execute(by_kind, {Value("even")});
  }
  // Strip the durable tag from every spill file (simulating an entry
  // written by an older binary, or a tag the decoder rejects): the
  // fingerprint's SQL skeleton is all that survives.
  for (const fs::path& file : SpillFiles()) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    in.close();
    cache::SpillRecord record;
    ASSERT_TRUE(cache::DecodeSpillRecord(bytes, &record));
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    const std::string rewritten = cache::EncodeSpillRecord(
        record.key, "", record.expires_at_micros, record.payload);
    out.write(rewritten.data(), static_cast<std::streamsize>(rewritten.size()));
  }

  CachedQueryEngine engine(db_, Options());
  EXPECT_EQ(engine.stats().recovered_registrations, 0u);
  EXPECT_EQ(engine.stats().recovered_conservative, 1u);
  EXPECT_EQ(engine.stats().recovered_dropped, 0u);

  // Still served from the cache...
  auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  EXPECT_TRUE(engine.Execute(by_kind, {Value("even")}).cache_hit);

  // ...and still invalidated, even by an update a value-aware annotation
  // would have filtered out (PRICE is referenced by no predicate here, but
  // conservative registration fires on ANY referenced-table change — the
  // over-invalidation that makes parameter loss safe).
  ASSERT_EQ(engine.ExecuteDml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 2"), 1u);
  auto result = engine.Execute(by_kind, {Value("even")});
  EXPECT_FALSE(result.cache_hit);
  EXPECT_EQ(result.result->ScalarAt(0, 0), Value(9));
}

TEST_F(WarmRestartTest, UnrebuildableEntryIsDroppedNotServed) {
  fs::create_directories(dir_);
  // A spill whose key is not parseable SQL and whose tag is empty: no
  // registration can be rebuilt, so serving it would create a cache entry
  // no update could ever invalidate. It must be dropped.
  const std::string record = cache::EncodeSpillRecord(
      "!!! not sql !!!", "", cache::kNoExpiry, "RS1\n0\n0\n");
  std::ofstream(dir_ / "dead-1.obj", std::ios::binary)
      .write(record.data(), static_cast<std::streamsize>(record.size()));

  CachedQueryEngine engine(db_, Options());
  EXPECT_EQ(engine.stats().recovered_dropped, 1u);
  EXPECT_EQ(engine.cache().entry_count(), 0u);
  EXPECT_FALSE(engine.cache().Contains("!!! not sql !!!"));
}

TEST_F(WarmRestartTest, QueryAgainstDroppedTableIsDropped) {
  {
    CachedQueryEngine engine(db_, Options());
    engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS");
  }
  // The next process binds against a database without ITEMS: neither the
  // tag nor the skeleton can be re-bound, so the entry is dropped.
  storage::Database empty_db;
  CachedQueryEngine engine(empty_db, Options());
  EXPECT_EQ(engine.stats().recovered_dropped, 1u);
  EXPECT_EQ(engine.cache().entry_count(), 0u);
}

// The real thing: a child process fills the cache and dies via _exit —
// no destructors, no flushes, exactly what a crash leaves behind. The
// parent then recovers the spool. Spill files are written eagerly on the
// Put path, so every cached entry must survive the kill.
TEST_F(WarmRestartTest, ForkAndKillChildThenRecover) {
  const pid_t child = fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child: its own database over the shared spool directory.
    storage::Database child_db;
    PopulateItems(child_db);
    CachedQueryEngine::Options options;
    options.policy = dup::InvalidationPolicy::kValueAware;
    options.cache.mode = cache::CacheMode::kDisk;
    options.cache.disk_directory = dir_.string();
    options.cache.recover_on_open = true;
    CachedQueryEngine engine(child_db, options);
    auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
    engine.Execute(by_kind, {Value("even")});
    engine.Execute(by_kind, {Value("odd")});
    engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 150");
    const bool ok = engine.cache().entry_count() == 3;
    _exit(ok ? 0 : 1);  // unclean: skips every destructor
  }

  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child failed to populate the cache";

  CachedQueryEngine engine(db_, Options());
  EXPECT_EQ(engine.stats().recovered_registrations, 3u);
  auto by_kind = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  EXPECT_TRUE(engine.Execute(by_kind, {Value("even")}).cache_hit);
  EXPECT_TRUE(engine.Execute(by_kind, {Value("odd")}).cache_hit);
  EXPECT_TRUE(engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 150").cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 0u);

  // Recovered state is live state: a post-recovery update invalidates it.
  engine.ExecuteDml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 2");
  auto result = engine.Execute(by_kind, {Value("even")});
  EXPECT_FALSE(result.cache_hit);
  EXPECT_EQ(result.result->ScalarAt(0, 0), Value(9));
}

TEST_F(WarmRestartTest, QueryTagRoundTrip) {
  const std::vector<Value> params = {Value(int64_t{42}), Value("text"), Value(3.5),
                                     Value::Null()};
  const std::string tag = EncodeQueryTag("SELECT * FROM ITEMS WHERE ID = $1", params);
  std::string sql;
  std::vector<Value> decoded;
  DecodeQueryTag(tag, &sql, &decoded);
  EXPECT_EQ(sql, "SELECT * FROM ITEMS WHERE ID = $1");
  ASSERT_EQ(decoded.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) EXPECT_EQ(decoded[i], params[i]) << i;
  EXPECT_THROW(
      {
        std::string s;
        std::vector<Value> p;
        DecodeQueryTag("garbage", &s, &p);
      },
      CacheError);
}

}  // namespace
}  // namespace qc::middleware
