// Crash-safety of the disk tier (docs/PERSISTENCE.md): spill-format
// round-trips, recovery scans that rebuild the index from surviving files,
// quarantine of corrupt files at scan time and on the hot path, and
// wall-clock TTLs that keep expiring across restarts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/disk_store.h"
#include "cache/gps_cache.h"
#include "cache/spill_format.h"

namespace qc::cache {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

std::string Data(const CacheValuePtr& v) {
  return std::static_pointer_cast<const StringValue>(v)->data();
}

std::vector<fs::path> SpillFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".obj") files.push_back(entry.path());
  }
  return files;
}

size_t QuarantineCount(const fs::path& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".quarantine") ++n;
  }
  return n;
}

void WriteFile(const fs::path& file, const std::string& bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- Spill format ------------------------------------------------------------

TEST(SpillFormat, RoundTripsAllFields) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload += static_cast<char>(i);
  const std::string bytes = EncodeSpillRecord("the key", "tag\nwith newline", 123456789, payload);
  EXPECT_EQ(bytes.size(), SpillRecordBytes(7, 16, payload.size()));

  SpillRecord record;
  ASSERT_TRUE(DecodeSpillRecord(bytes, &record));
  EXPECT_EQ(record.key, "the key");
  EXPECT_EQ(record.durable_tag, "tag\nwith newline");
  EXPECT_EQ(record.expires_at_micros, 123456789);
  EXPECT_EQ(record.payload, payload);
}

TEST(SpillFormat, EmptyTagAndNoExpiry) {
  const std::string bytes = EncodeSpillRecord("k", "", kNoExpiry, "v");
  SpillRecord record;
  ASSERT_TRUE(DecodeSpillRecord(bytes, &record));
  EXPECT_EQ(record.durable_tag, "");
  EXPECT_EQ(record.expires_at_micros, kNoExpiry);
}

TEST(SpillFormat, DecodeRejectsCorruptionWithoutThrowing) {
  const std::string good = EncodeSpillRecord("key", "tag", 42, "payload");
  SpillRecord record;

  std::string bad = good;
  bad[0] = 'X';  // magic
  EXPECT_FALSE(DecodeSpillRecord(bad, &record));

  bad = good;
  bad[4] = 99;  // unknown version
  EXPECT_FALSE(DecodeSpillRecord(bad, &record));

  EXPECT_FALSE(DecodeSpillRecord(good.substr(0, good.size() - 1), &record));  // short
  EXPECT_FALSE(DecodeSpillRecord(good + "x", &record));                       // trailing bytes
  EXPECT_FALSE(DecodeSpillRecord(good.substr(0, 10), &record));               // torn header
  EXPECT_FALSE(DecodeSpillRecord("", &record));

  bad = good;
  bad.back() ^= 0x40;  // payload bit rot -> CRC mismatch
  EXPECT_FALSE(DecodeSpillRecord(bad, &record));
}

// --- DiskStore recovery ------------------------------------------------------

// Each test gets its own spool directory: ctest registers every case
// individually, so two cases of one fixture can run concurrently under
// `ctest -j`, and a shared path would race on remove_all vs. writes.
fs::path UniqueTestDir(const char* prefix) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return fs::temp_directory_path() / (std::string(prefix) + "_" + info->name());
}

class DiskRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueTestDir("qc_disk_recovery_test");
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(DiskRecoveryTest, PersistentStoreSurvivesReopen) {
  {
    DiskStore store(dir_, 1 << 20, /*recover=*/true);
    DiskStore::SpillMeta meta;
    meta.durable_tag = "tag-a";
    meta.expires_at_micros = 777;
    ASSERT_TRUE(store.Put("a", "payload-a", meta, nullptr));
    ASSERT_TRUE(store.Put("b", "payload-b", nullptr));
    // No Clear, destructor keeps the files: simulated orderly restart.
  }
  ASSERT_EQ(SpillFiles(dir_).size(), 2u);

  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  EXPECT_EQ(store.entry_count(), 2u);
  EXPECT_EQ(*store.Get("a"), "payload-a");
  EXPECT_EQ(*store.Get("b"), "payload-b");
  EXPECT_EQ(store.io_errors(), 0u);

  ASSERT_EQ(store.recovered().size(), 2u);
  const auto& by_key = [&](const std::string& key) -> const DiskStore::Recovered& {
    for (const auto& r : store.recovered()) {
      if (r.key == key) return r;
    }
    ADD_FAILURE() << "key not recovered: " << key;
    return store.recovered().front();
  };
  EXPECT_EQ(by_key("a").durable_tag, "tag-a");
  EXPECT_EQ(by_key("a").expires_at_micros, 777);
  EXPECT_EQ(by_key("b").durable_tag, "");
  EXPECT_EQ(by_key("b").expires_at_micros, kNoExpiry);
}

TEST_F(DiskRecoveryTest, EphemeralModeStillWipes) {
  {
    DiskStore store(dir_, 1 << 20, /*recover=*/true);
    store.Put("a", "v", nullptr);
  }
  DiskStore store(dir_, 1 << 20, /*recover=*/false);
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_TRUE(SpillFiles(dir_).empty());
}

TEST_F(DiskRecoveryTest, DuplicateKeyKeepsNewestRecord) {
  // A crash between writing a replacement and erasing the old file leaves
  // two records for one key; recovery must keep the highest sequence only.
  fs::create_directories(dir_);
  WriteFile(dir_ / "abc-3.obj", EncodeSpillRecord("k", "", kNoExpiry, "old"));
  WriteFile(dir_ / "abc-7.obj", EncodeSpillRecord("k", "", kNoExpiry, "new"));

  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(*store.Get("k"), "new");
  ASSERT_EQ(store.recovered().size(), 1u);

  // New writes must not collide with recovered sequence numbers.
  ASSERT_TRUE(store.Put("fresh", "v", nullptr));
  EXPECT_EQ(*store.Get("fresh"), "v");
  EXPECT_EQ(*store.Get("k"), "new");
}

TEST_F(DiskRecoveryTest, CorruptFilesQuarantinedAtScan) {
  fs::create_directories(dir_);
  WriteFile(dir_ / "good-1.obj", EncodeSpillRecord("good", "", kNoExpiry, "v"));
  const std::string torn = EncodeSpillRecord("torn", "", kNoExpiry, std::string(500, 'x'));
  WriteFile(dir_ / "torn-2.obj", torn.substr(0, torn.size() / 2));  // torn write
  std::string rot = EncodeSpillRecord("rot", "", kNoExpiry, "vvvv");
  rot[rot.size() - 2] ^= 1;
  WriteFile(dir_ / "rot-3.obj", rot);  // bit rot

  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(*store.Get("good"), "v");
  EXPECT_EQ(store.io_errors(), 2u);
  EXPECT_EQ(store.quarantined(), 2u);
  EXPECT_EQ(QuarantineCount(dir_), 2u);

  // Quarantined files are not rediscovered by the next scan.
  DiskStore again(dir_, 1 << 20, /*recover=*/true);
  EXPECT_EQ(again.entry_count(), 1u);
  EXPECT_EQ(again.quarantined(), 0u);
}

TEST_F(DiskRecoveryTest, ForeignFilesIgnoredByScan) {
  fs::create_directories(dir_);
  WriteFile(dir_ / "notes.txt", "not a spill file");
  WriteFile(dir_ / "a-1.obj", EncodeSpillRecord("a", "", kNoExpiry, "v"));
  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(store.quarantined(), 0u);
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));
}

TEST_F(DiskRecoveryTest, RecoveryTrimsToShrunkenBudget) {
  {
    DiskStore store(dir_, 1 << 20, /*recover=*/true);
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(store.Put("k" + std::to_string(i), std::string(1000, 'a' + i), nullptr));
    }
  }
  DiskStore store(dir_, 2500, /*recover=*/true);
  EXPECT_LE(store.byte_count(), 2500u);
  EXPECT_LT(store.entry_count(), 6u);
  // recovered() only reports entries that survived the trim.
  EXPECT_EQ(store.recovered().size(), store.entry_count());
  for (const auto& r : store.recovered()) {
    EXPECT_TRUE(store.Get(r.key).has_value()) << r.key;
  }
}

// Satellite regression: a truncated spill file on the *hot path* (written
// whole, damaged later) must degrade to a counted miss, never an exception.
TEST_F(DiskRecoveryTest, HotPathTruncationIsCountedMissNotThrow) {
  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  ASSERT_TRUE(store.Put("k", std::string(2000, 'z'), nullptr));
  auto files = SpillFiles(dir_);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], 17);  // short read on next access

  std::string payload;
  DiskStore::ReadStatus status{};
  EXPECT_NO_THROW(status = store.Read("k", &payload));
  EXPECT_EQ(status, DiskStore::ReadStatus::kCorrupt);
  EXPECT_EQ(store.io_errors(), 1u);
  EXPECT_EQ(store.quarantined(), 1u);
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_EQ(store.Read("k", &payload), DiskStore::ReadStatus::kMiss);  // now a plain miss
  EXPECT_EQ(QuarantineCount(dir_), 1u);
}

TEST_F(DiskRecoveryTest, WrongKeyInFileIsQuarantinedOnRead) {
  // Read() cross-checks the decoded key against the requested one; a file
  // swap (or hash-name collision gone wrong) must not serve foreign data.
  DiskStore store(dir_, 1 << 20, /*recover=*/true);
  ASSERT_TRUE(store.Put("k", "mine", nullptr));
  auto files = SpillFiles(dir_);
  ASSERT_EQ(files.size(), 1u);
  WriteFile(files[0], EncodeSpillRecord("other", "", kNoExpiry, "theirs"));

  EXPECT_EQ(store.Get("k"), std::nullopt);
  EXPECT_EQ(store.io_errors(), 1u);
  EXPECT_EQ(store.quarantined(), 1u);
}

// --- GpsCache recovery -------------------------------------------------------

class GpsRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueTestDir("qc_gps_recovery_test");
    fs::remove_all(dir_);
  }

  GpsCacheConfig DiskConfig() {
    GpsCacheConfig config;
    config.mode = CacheMode::kDisk;
    config.disk_directory = dir_.string();
    config.deserializer = &StringValue::Deserialize;
    config.recover_on_open = true;
    return config;
  }

  fs::path dir_;
};

TEST_F(GpsRecoveryTest, DiskCacheSurvivesReopen) {
  {
    GpsCache cache(DiskConfig());
    cache.Put("q1", Str("r1"));
    cache.Put("q2", Str("r2"), std::nullopt, GpsCache::AdmitGuard{}, "tag-2");
    // Dropped without Clear(): the files stay behind.
  }
  GpsCache cache(DiskConfig());
  EXPECT_EQ(cache.stats().recovered, 2u);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(Data(cache.Get("q1")), "r1");
  EXPECT_EQ(Data(cache.Get("q2")), "r2");
  EXPECT_EQ(cache.stats().disk_hits, 2u);

  ASSERT_EQ(cache.recovered_entries().size(), 2u);
  for (const auto& entry : cache.recovered_entries()) {
    if (entry.key == "q2") {
      EXPECT_EQ(entry.durable_tag, "tag-2");
    }
  }

  // Recovered entries behave like any other: invalidation works.
  EXPECT_TRUE(cache.Invalidate("q1"));
  EXPECT_EQ(cache.Get("q1"), nullptr);
}

TEST_F(GpsRecoveryTest, TtlKeepsCountingAcrossRestart) {
  TimePoint now{};
  int64_t wall = 1'000'000'000;  // arbitrary epoch offset, micros
  auto configure = [&] {
    GpsCacheConfig config = DiskConfig();
    config.now = [&now] { return now; };
    config.wall_now_micros = [&wall] { return wall; };
    return config;
  };
  {
    GpsCache cache(configure());
    cache.Put("short", Str("s"), 100s);
    cache.Put("long", Str("l"), 1000s);
    cache.Put("forever", Str("f"));
  }
  // The process is down for 150 wall-clock seconds: "short" expires while
  // nobody is running.
  wall += 150'000'000;
  now += 150s;

  GpsCache cache(configure());
  EXPECT_EQ(cache.stats().recovered, 2u);
  EXPECT_EQ(cache.stats().expirations, 1u);  // "short", dropped at scan
  EXPECT_EQ(cache.Get("short"), nullptr);
  EXPECT_EQ(Data(cache.Get("long")), "l");
  EXPECT_EQ(Data(cache.Get("forever")), "f");

  // The survivor's remaining TTL was re-armed, not reset: 850s left.
  now += 851s;
  wall += 851'000'000;
  EXPECT_EQ(cache.Get("long"), nullptr);
  EXPECT_NE(cache.Get("forever"), nullptr);
}

TEST_F(GpsRecoveryTest, CorruptSpillIsCountedMissNeverThrow) {
  {
    GpsCache cache(DiskConfig());
    cache.Put("ok", Str("fine"));
    cache.Put("bad", Str(std::string(1000, 'b')));
  }
  // Damage "bad"'s file after the fact (simulated torn write / bit rot).
  for (const auto& file : SpillFiles(dir_)) {
    if (fs::file_size(file) > 500) fs::resize_file(file, 40);
  }

  GpsCache cache(DiskConfig());
  // The scan already caught it: quarantined, not recovered, not thrown.
  EXPECT_EQ(cache.stats().recovered, 1u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  CacheValuePtr result;
  EXPECT_NO_THROW(result = cache.Get("bad"));
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(Data(cache.Get("ok")), "fine");
}

TEST_F(GpsRecoveryTest, HotPathCorruptionAfterRecoveryIsCountedMiss) {
  {
    GpsCache cache(DiskConfig());
    cache.Put("k", Str(std::string(1000, 'k')));
  }
  GpsCache cache(DiskConfig());
  ASSERT_EQ(cache.stats().recovered, 1u);
  for (const auto& file : SpillFiles(dir_)) fs::resize_file(file, 10);

  int evicted_notifications = 0;
  cache.SetRemovalListener([&](const std::string&, RemovalCause cause) {
    if (cause == RemovalCause::kEvicted) ++evicted_notifications;
  });
  CacheValuePtr result;
  EXPECT_NO_THROW(result = cache.Get("k"));
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(cache.stats().disk_errors, 1u);
  EXPECT_EQ(cache.stats().quarantined, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The metadata was cleaned up and the removal listener told, so higher
  // layers (the DUP engine) can drop their registration.
  EXPECT_EQ(evicted_notifications, 1);
  EXPECT_FALSE(cache.Contains("k"));
}

TEST_F(GpsRecoveryTest, HybridModeRecoversSpilledEntries) {
  auto configure = [&] {
    GpsCacheConfig config = DiskConfig();
    config.mode = CacheMode::kHybrid;
    config.memory_max_entries = 2;
    return config;
  };
  {
    GpsCache cache(configure());
    cache.Put("a", Str("A"));
    cache.Put("b", Str("B"));
    cache.Put("c", Str("C"));  // spills a
    cache.Put("d", Str("D"));  // spills b
    ASSERT_EQ(cache.stats().spills, 2u);
  }
  // Only the spilled entries are durable: c and d lived in memory alone.
  GpsCache cache(configure());
  EXPECT_EQ(cache.stats().recovered, 2u);
  EXPECT_EQ(Data(cache.Get("a")), "A");
  EXPECT_EQ(Data(cache.Get("b")), "B");
  EXPECT_EQ(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Get("d"), nullptr);
}

TEST_F(GpsRecoveryTest, ShardedSpoolRecoversWithSameShardCount) {
  auto configure = [&] {
    GpsCacheConfig config = DiskConfig();
    config.shards = 4;
    return config;
  };
  {
    GpsCache cache(configure());
    for (int i = 0; i < 20; ++i) cache.Put("key" + std::to_string(i), Str(std::to_string(i)));
  }
  GpsCache cache(configure());
  EXPECT_EQ(cache.stats().recovered, 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(Data(cache.Get("key" + std::to_string(i))), std::to_string(i)) << i;
  }
}

TEST_F(GpsRecoveryTest, RecoveryLogsRestoredCount) {
  const std::string log_path = (fs::temp_directory_path() / "qc_gps_recovery.log").string();
  fs::remove(log_path);
  {
    GpsCache cache(DiskConfig());
    cache.Put("q", Str("v"));
  }
  GpsCacheConfig config = DiskConfig();
  config.log_path = log_path;
  config.log_policy = LogFlushPolicy::kEveryRecord;
  GpsCache cache(config);
  cache.FlushLog();
  std::ifstream in(log_path);
  const std::string contents{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  EXPECT_NE(contents.find("recover * restored=1"), std::string::npos) << contents;
}

// --- Transaction log: wall-clock stamps + session boundaries -----------------

class TxLogRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestDir("qc_txlog_recovery").string() + ".log";
    fs::remove(path_);
  }
  std::string ReadAll() {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }
  std::string path_;
};

TEST_F(TxLogRecoveryTest, RecordsStampWallClockEpochMicros) {
  const auto before = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  {
    TransactionLog log(path_, LogFlushPolicy::kManual);
    log.Append("hit", "q1");
  }
  const auto after = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  const std::string contents = ReadAll();
  const size_t pos = contents.find("hit q1");
  ASSERT_NE(pos, std::string::npos) << contents;
  const size_t line_start = contents.rfind('\n', pos);
  const int64_t stamp =
      std::stoll(contents.substr(line_start == std::string::npos ? 0 : line_start + 1));
  // Epoch micros, not micros-since-open: the stamp lands in [before, after],
  // so records from successive sessions share one timeline.
  EXPECT_GE(stamp, before);
  EXPECT_LE(stamp, after);
}

TEST_F(TxLogRecoveryTest, SessionHeaderAndFooterMarkProcessBoundaries) {
  {
    TransactionLog log(path_, LogFlushPolicy::kManual);
    log.Append("put", "k");
    EXPECT_EQ(log.records_written(), 1u);  // header not counted
  }
  {
    TransactionLog log(path_, LogFlushPolicy::kEveryRecord);
    log.Append("hit", "k");
  }
  const std::string contents = ReadAll();
  size_t opens = 0, closes = 0;
  for (size_t pos = 0; (pos = contents.find("session open", pos)) != std::string::npos; ++pos)
    ++opens;
  for (size_t pos = 0; (pos = contents.find("session close", pos)) != std::string::npos; ++pos)
    ++closes;
  EXPECT_EQ(opens, 2u) << contents;
  EXPECT_EQ(closes, 2u) << contents;
  EXPECT_NE(contents.find("policy=manual"), std::string::npos);
  EXPECT_NE(contents.find("policy=every-record"), std::string::npos);
  // Appends from both sessions landed after their headers.
  EXPECT_LT(contents.find("session open"), contents.find("put k"));
  EXPECT_LT(contents.find("put k"), contents.find("hit k"));
}

}  // namespace
}  // namespace qc::cache
