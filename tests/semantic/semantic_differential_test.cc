// Randomized differential suite for the semantic tier (docs/SEMANTIC.md):
// every answer the engine produces — exact hit, semantic hit, or miss —
// must equal a cold uncached execution cell for cell. The serial rounds
// sweep generated predicates and projections; the concurrent round runs
// readers against a writer and asserts the linearizability property the
// epoch re-validation rule promises: a returned row never predates an
// update that was acknowledged before the query was issued (no stale
// semantic hit, ever). Run under the tsan-semantic / asan-semantic presets
// as well as tier-1.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "middleware/query_engine.h"

namespace qc::middleware {
namespace {

class SemanticDifferentialTest : public ::testing::Test {
 protected:
  static constexpr int kRows = 2000;

  void SetUp() override {
    table_ = &db_.CreateTable("D", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"A", ValueType::kInt, false},
                                                    {"B", ValueType::kInt, false},
                                                    {"C", ValueType::kInt, false}}));
    std::mt19937 rng(20260809);
    std::uniform_int_distribution<int> val(0, 100);
    for (int i = 0; i < kRows; ++i) {
      table_->Insert({Value(i), Value(val(rng)), Value(val(rng)), Value(val(rng))});
    }
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

constexpr const char* kColumns[] = {"ID", "A", "B", "C"};

/// A random conjunctive range/point predicate over `narrow_within` (when
/// given, each per-column range is drawn inside the source's range so the
/// probe is contained).
struct RangePred {
  struct Bound {
    int col;
    int lo;
    int hi;
  };
  std::vector<Bound> bounds;

  std::string ToSql() const {
    std::ostringstream os;
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << " AND ";
      const auto& b = bounds[i];
      switch (i % 3) {  // vary the spelling; fingerprints normalize anyway
        case 0:
          os << kColumns[b.col] << " BETWEEN " << b.lo << " AND " << b.hi;
          break;
        case 1:
          os << kColumns[b.col] << " >= " << b.lo << " AND " << kColumns[b.col] << " <= " << b.hi;
          break;
        default:
          os << b.hi << " >= " << kColumns[b.col] << " AND " << b.lo << " <= " << kColumns[b.col];
          break;
      }
    }
    return os.str();
  }
};

RangePred RandomSourcePred(std::mt19937& rng) {
  std::uniform_int_distribution<int> ncols(1, 2);
  std::uniform_int_distribution<int> col(1, 3);  // A/B/C
  std::uniform_int_distribution<int> lo(0, 40);
  std::uniform_int_distribution<int> width(30, 60);
  RangePred p;
  const int n = ncols(rng);
  for (int i = 0; i < n; ++i) {
    int c = col(rng);
    bool dup = false;
    for (const auto& b : p.bounds) dup |= b.col == c;
    if (dup) continue;
    const int l = lo(rng);
    p.bounds.push_back({c, l, l + width(rng)});
  }
  return p;
}

RangePred NarrowedPred(const RangePred& source, std::mt19937& rng) {
  RangePred p;
  for (const auto& b : source.bounds) {
    std::uniform_int_distribution<int> lo(b.lo, b.hi);
    const int l = lo(rng);
    std::uniform_int_distribution<int> hi(l, b.hi);
    p.bounds.push_back({b.col, l, hi(rng)});
  }
  return p;
}

TEST_F(SemanticDifferentialTest, GeneratedProbesMatchColdExecution) {
  for (uint32_t seed : {1u, 2u, 3u}) {
    CachedQueryEngine engine(db_, {});
    std::mt19937 rng(seed);
    std::uniform_int_distribution<int> pick(0, 4);
    for (int round = 0; round < 25; ++round) {
      const RangePred source = RandomSourcePred(rng);
      engine.ExecuteSql("SELECT ID, A, B, C FROM D WHERE " + source.ToSql());
      for (int probe = 0; probe < 4; ++probe) {
        const RangePred narrow = NarrowedPred(source, rng);
        std::string sql;
        switch (pick(rng)) {
          case 0: sql = "SELECT ID, A FROM D WHERE " + narrow.ToSql(); break;
          case 1: sql = "SELECT COUNT(*) FROM D WHERE " + narrow.ToSql(); break;
          case 2: sql = "SELECT B, COUNT(*) FROM D WHERE " + narrow.ToSql() + " GROUP BY B"; break;
          case 3: sql = "SELECT ID, C FROM D WHERE " + narrow.ToSql() + " ORDER BY ID LIMIT 17"; break;
          default: sql = "SELECT A, B, C FROM D WHERE " + narrow.ToSql() + " AND C <= 100"; break;
        }
        auto query = engine.Prepare(sql);
        sql::ResultSet oracle = engine.ExecuteUncached(*query);
        auto got = engine.Execute(query);
        ASSERT_TRUE(got.result->Equals(oracle))
            << sql << "\n got: " << got.result->ToString() << "\nwant: " << oracle.ToString();
      }
    }
    // The suite must actually exercise the tier, not just miss politely.
    EXPECT_GT(engine.cache_stats().semantic_hits, 25u) << "seed " << seed;
  }
}

TEST_F(SemanticDifferentialTest, DifferentialHoldsAcrossInterleavedUpdates) {
  CachedQueryEngine engine(db_, {});
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> id(0, kRows - 1);
  std::uniform_int_distribution<int> val(0, 100);
  for (int round = 0; round < 30; ++round) {
    const RangePred source = RandomSourcePred(rng);
    engine.ExecuteSql("SELECT ID, A, B, C FROM D WHERE " + source.ToSql());
    engine.ExecuteDml("UPDATE D SET A = " + std::to_string(val(rng)) +
                      " WHERE ID = " + std::to_string(id(rng)));
    const RangePred narrow = NarrowedPred(source, rng);
    const std::string sql = "SELECT ID, A, B FROM D WHERE " + narrow.ToSql();
    auto query = engine.Prepare(sql);
    sql::ResultSet oracle = engine.ExecuteUncached(*query);
    auto got = engine.Execute(query);
    ASSERT_TRUE(got.result->Equals(oracle))
        << sql << "\n got: " << got.result->ToString() << "\nwant: " << oracle.ToString();
  }
}

// The correctness core (ISSUE: "no stale semantic hit, ever"): a writer
// acknowledges monotonically increasing versions row by row; each reader
// records the acknowledged floor *before* issuing its query and asserts
// every returned row is at least that fresh. A semantic hit served from a
// superseded superset would return V < floor and fail. TSan additionally
// checks the mirror build / scan-pool interplay for data races.
TEST_F(SemanticDifferentialTest, NoStaleSemanticHitUnderConcurrentWriter) {
  constexpr int kIds = 48;
  constexpr int kSteps = 600;
  auto& t = db_.CreateTable("U", storage::Schema({{"ID", ValueType::kInt, false},
                                                  {"V", ValueType::kInt, false}}));
  for (int i = 0; i < kIds; ++i) t.Insert({Value(i), Value(0)});

  CachedQueryEngine engine(db_, {});
  std::vector<std::atomic<int64_t>> floor(kIds);
  for (auto& f : floor) f.store(0);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};

  std::thread writer([&] {
    std::mt19937 rng(7);
    std::uniform_int_distribution<int> id(0, kIds - 1);
    for (int64_t step = 1; step <= kSteps; ++step) {
      const int target = id(rng);
      engine.ExecuteDml("UPDATE U SET V = $1 WHERE ID = $2", {Value(step), Value(target)});
      // The DML call returned: epochs are stamped and invalidation is
      // complete, so this version is acknowledged.
      floor[target].store(step, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937 rng(100 + r);
      std::uniform_int_distribution<int> a(0, kIds - 1);
      auto range = engine.Prepare("SELECT ID, V FROM U WHERE ID BETWEEN $1 AND $2");
      auto wide = engine.Prepare("SELECT ID, V FROM U WHERE ID >= 0");
      int iter = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (++iter % 5 == 0) engine.Execute(wide);  // keep a superset warm
        int64_t floors[kIds];
        for (int i = 0; i < kIds; ++i) floors[i] = floor[i].load(std::memory_order_acquire);
        const int x = a(rng), y = a(rng);
        auto got = engine.Execute(range, {Value(std::min(x, y)), Value(std::max(x, y))});
        for (const storage::Row& row : got.result->rows()) {
          const int64_t rid = row[0].as_int();
          if (row[1].as_int() < floors[rid]) violations.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();

  EXPECT_EQ(violations.load(), 0u) << "stale semantic (or exact) serve detected";

  // The ladder was genuinely exercised. Under a loaded CI box the writer
  // can finish before the readers issue a single miss, so don't rely on
  // the concurrent phase alone: warm a superset and issue a cold range
  // probe (distinct fingerprint — literal bounds, not $1/$2 params) that
  // must reach the semantic tier deterministically.
  engine.ExecuteSql("SELECT ID, V FROM U WHERE ID >= 0");
  engine.ExecuteSql("SELECT ID, V FROM U WHERE ID >= 11 AND ID <= 37");
  EXPECT_GT(engine.cache_stats().semantic_probes, 0u);

  // Quiesced: one final read must reflect the exact final state.
  auto final = engine.ExecuteSql("SELECT ID, V FROM U WHERE ID BETWEEN 0 AND 47");
  sql::ResultSet oracle =
      engine.ExecuteUncached(*engine.Prepare("SELECT ID, V FROM U WHERE ID BETWEEN 0 AND 47"));
  EXPECT_TRUE(final.result->Equals(oracle));
}

}  // namespace
}  // namespace qc::middleware
