// Behavioral tests for the semantic lookup tier (docs/SEMANTIC.md): the
// exact → semantic → miss ladder, containment and projection-coverage
// rules, derived-result admission, invalidation of semantic sources, the
// disable knob, and the fingerprint normalization that keeps trivially
// equivalent predicates out of the semantic tier altogether.
#include <gtest/gtest.h>

#include "middleware/query_engine.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc::middleware {
namespace {

class SemanticCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"A", ValueType::kInt, false},
                                                    {"B", ValueType::kInt, false},
                                                    {"S", ValueType::kString, false}}));
    for (int i = 0; i < 100; ++i) {
      table_->Insert({Value(i), Value(i), Value(i % 10), Value(i % 2 ? "odd" : "even")});
    }
  }

  /// The engine's answer must equal the cold oracle, cell for cell (order
  /// insensitive unless the statement orders its output).
  static void ExpectMatchesOracle(CachedQueryEngine& engine, const std::string& sql,
                                  const std::vector<Value>& params = {}) {
    auto query = engine.Prepare(sql);
    sql::ResultSet oracle = engine.ExecuteUncached(*query, params);
    auto got = engine.Execute(query, params);
    EXPECT_TRUE(got.result->Equals(oracle)) << sql << "\n got: " << got.result->ToString()
                                            << "\nwant: " << oracle.ToString();
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(SemanticCacheTest, ContainedRangeServedFromSuperset) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 10 AND 50");
  EXPECT_EQ(engine.stats().db_executions, 1u);

  auto hit = engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 20 AND 30");
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.result->rows().size(), 11u);
  EXPECT_EQ(engine.stats().db_executions, 1u);  // no base-table scan
  EXPECT_EQ(engine.cache_stats().semantic_hits, 1u);
  ExpectMatchesOracle(engine, "SELECT ID, A FROM T WHERE A BETWEEN 22 AND 28");
}

TEST_F(SemanticCacheTest, SemanticHitAnswersMatchOracleAcrossShapes) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A, B FROM T WHERE A >= 0 AND A < 80");
  const uint64_t cold = engine.stats().db_executions;
  // Narrower predicates, projections, aggregates, grouping, ordering — all
  // answerable from the cached superset's rows.
  ExpectMatchesOracle(engine, "SELECT ID FROM T WHERE A >= 5 AND A < 40");
  ExpectMatchesOracle(engine, "SELECT B FROM T WHERE A > 10 AND A <= 20 AND B = 3");
  ExpectMatchesOracle(engine, "SELECT COUNT(*) FROM T WHERE A BETWEEN 1 AND 79");
  ExpectMatchesOracle(engine, "SELECT B, SUM(A) FROM T WHERE A < 50 AND A >= 0 GROUP BY B");
  ExpectMatchesOracle(engine, "SELECT ID, A FROM T WHERE A IN (3, 7, 11) ORDER BY A DESC");
  ExpectMatchesOracle(engine, "SELECT ID FROM T WHERE A BETWEEN 12 AND 64 ORDER BY ID LIMIT 5");
  EXPECT_EQ(engine.stats().db_executions, cold);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 6u);
}

TEST_F(SemanticCacheTest, ProjectionMustCoverEveryReferencedColumn) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A < 50");
  // B is not in the cached projection: the candidate subsumes the predicate
  // but cannot answer, so this goes to the database.
  auto miss = engine.ExecuteSql("SELECT ID, B FROM T WHERE A < 20");
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 2u);
  EXPECT_GE(engine.cache_stats().semantic_rejects_projection, 1u);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 0u);
}

TEST_F(SemanticCacheTest, StarSourceCoversEverything) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT * FROM T WHERE A < 90");
  auto hit = engine.ExecuteSql("SELECT S, B FROM T WHERE A < 10 AND S = 'odd'");
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 1u);
  ExpectMatchesOracle(engine, "SELECT * FROM T WHERE A BETWEEN 2 AND 88");
}

TEST_F(SemanticCacheTest, NonContainedPredicateMisses) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 10 AND 50");
  // Overlaps but is not contained (5 < 10): must scan the base table.
  auto miss = engine.ExecuteSql("SELECT ID FROM T WHERE A BETWEEN 5 AND 30");
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 2u);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 0u);
  // An *extra* conjunct on the probe side narrows further and stays
  // contained (the source leaves ID unconstrained).
  auto hit = engine.ExecuteSql("SELECT ID FROM T WHERE A BETWEEN 12 AND 40 AND ID < 30");
  EXPECT_TRUE(hit.cache_hit);
}

TEST_F(SemanticCacheTest, UnsupportedShapeFallsThroughAndCounts) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A, S FROM T WHERE A >= 0");
  // Wildcard LIKE is not exactly expressible in the interval algebra.
  auto r = engine.ExecuteSql("SELECT ID FROM T WHERE A > 5 AND S LIKE 'od%'");
  EXPECT_FALSE(r.cache_hit);
  EXPECT_GE(engine.cache_stats().semantic_rejects_shape, 1u);
  ExpectMatchesOracle(engine, "SELECT ID FROM T WHERE A > 5 AND S LIKE 'od%'");
}

TEST_F(SemanticCacheTest, DerivedResultIsAdmittedUnderItsOwnFingerprint) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A < 60");
  EXPECT_TRUE(engine.ExecuteSql("SELECT ID, A FROM T WHERE A < 20").cache_hit);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 1u);
  // The repeat is an *exact* hit on the admitted derived entry.
  EXPECT_TRUE(engine.ExecuteSql("SELECT ID, A FROM T WHERE A < 20").cache_hit);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  // ... and is itself a semantic source for still-narrower probes.
  EXPECT_TRUE(engine.ExecuteSql("SELECT ID FROM T WHERE A < 5").cache_hit);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 2u);
}

TEST_F(SemanticCacheTest, UpdateInvalidatesSemanticSource) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 0 AND 99");
  EXPECT_TRUE(engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 1 AND 5").cache_hit);

  engine.ExecuteDml("UPDATE T SET A = 200 WHERE ID = 3");
  // The superset (and the derived entry) are invalidated; serving either
  // semantically would be stale. Both paths must re-execute and agree with
  // the post-update oracle.
  auto fresh = engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 1 AND 5");
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->rows().size(), 4u);  // ID 3 moved out of range
  ExpectMatchesOracle(engine, "SELECT ID, A FROM T WHERE A BETWEEN 0 AND 99");
}

TEST_F(SemanticCacheTest, DisableKnobRestoresExactOnlyLookup) {
  CachedQueryEngine::Options options;
  options.cache.semantic_lookup = false;
  CachedQueryEngine engine(db_, options);
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 10 AND 50");
  auto r = engine.ExecuteSql("SELECT ID, A FROM T WHERE A BETWEEN 20 AND 30");
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 2u);
  EXPECT_EQ(engine.cache_stats().semantic_probes, 0u);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 0u);
}

TEST_F(SemanticCacheTest, CountersFlowThroughCacheStats) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID, A FROM T WHERE A < 50");
  engine.ExecuteSql("SELECT ID FROM T WHERE A < 10");
  const cache::CacheStats s = engine.cache_stats();
  EXPECT_GE(s.semantic_probes, 2u);
  EXPECT_EQ(s.semantic_hits, 1u);
  EXPECT_GT(s.residual_filter_ns, 0u);
  // The generated reflection surfaces see the new counters too.
  bool saw = false;
  s.ForEachCounter([&](const char* name, uint64_t value) {
    if (std::string(name) == "semantic_hits") {
      saw = true;
      EXPECT_EQ(value, 1u);
    }
  });
  EXPECT_TRUE(saw);
  EXPECT_NE(s.ToString().find("semantic_hits=1"), std::string::npos);
}

// --- Satellite: fingerprint normalization ------------------------------

TEST(FingerprintNormalizationTest, BetweenEqualsBoundPair) {
  const auto fp = [](const std::string& sql, std::vector<Value> params = {}) {
    return sql::Fingerprint(sql::Parse(sql), params);
  };
  EXPECT_EQ(fp("SELECT ID FROM T WHERE A BETWEEN 1 AND 5"),
            fp("SELECT ID FROM T WHERE A >= 1 AND A <= 5"));
  // ... in either conjunct order, and with parameters.
  EXPECT_EQ(fp("SELECT ID FROM T WHERE A BETWEEN 1 AND 5"),
            fp("SELECT ID FROM T WHERE A <= 5 AND A >= 1"));
  EXPECT_EQ(fp("SELECT ID FROM T WHERE A BETWEEN $1 AND $2", {Value(1), Value(5)}),
            fp("SELECT ID FROM T WHERE A >= $1 AND A <= $2", {Value(1), Value(5)}));
  // Different bounds stay distinct.
  EXPECT_NE(fp("SELECT ID FROM T WHERE A BETWEEN 1 AND 5"),
            fp("SELECT ID FROM T WHERE A >= 1 AND A <= 6"));
  // NOT BETWEEN is not rewritten (with a NULL bound the two forms diverge
  // under negation).
  EXPECT_NE(fp("SELECT ID FROM T WHERE A NOT BETWEEN 1 AND 5"),
            fp("SELECT ID FROM T WHERE A < 1 OR A > 5"));
}

TEST(FingerprintNormalizationTest, ConjunctOrderIsCanonical) {
  const auto fp = [](const std::string& sql) { return sql::Fingerprint(sql::Parse(sql), {}); };
  EXPECT_EQ(fp("SELECT ID FROM T WHERE A = 1 AND B = 2 AND S = 'x'"),
            fp("SELECT ID FROM T WHERE S = 'x' AND B = 2 AND A = 1"));
  EXPECT_EQ(fp("SELECT ID FROM T WHERE (A = 1 AND B = 2) AND S = 'x'"),
            fp("SELECT ID FROM T WHERE A = 1 AND (B = 2 AND S = 'x')"));
  // OR operands are positional, not commuted.
  EXPECT_NE(fp("SELECT ID FROM T WHERE A = 1 OR B = 2"),
            fp("SELECT ID FROM T WHERE B = 2 OR A = 1"));
}

TEST_F(SemanticCacheTest, NormalizedFingerprintsShareOneCacheEntry) {
  CachedQueryEngine engine(db_, {});
  engine.ExecuteSql("SELECT ID FROM T WHERE A >= 20 AND A <= 30");
  // The BETWEEN spelling is the *same* fingerprint — an exact hit, no
  // semantic machinery involved.
  EXPECT_TRUE(engine.ExecuteSql("SELECT ID FROM T WHERE A BETWEEN 20 AND 30").cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 1u);
  EXPECT_EQ(engine.cache_stats().hits, 1u);
  EXPECT_EQ(engine.cache_stats().semantic_hits, 0u);
}

}  // namespace
}  // namespace qc::middleware
