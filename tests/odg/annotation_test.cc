#include "odg/annotation.h"

#include <gtest/gtest.h>

namespace qc::odg {
namespace {

Atom Cmp(sql::BinaryOp op, Value rhs, bool negated = false) {
  Atom a;
  a.kind = Atom::Kind::kCmp;
  a.cmp_op = op;
  a.a = std::move(rhs);
  a.negated = negated;
  return a;
}

Atom Between(Value lo, Value hi, bool negated = false) {
  Atom a;
  a.kind = Atom::Kind::kBetween;
  a.a = std::move(lo);
  a.b = std::move(hi);
  a.negated = negated;
  return a;
}

TEST(Atom, CmpEval) {
  Atom eq = Cmp(sql::BinaryOp::kEq, Value(3));
  EXPECT_EQ(eq.Eval(Value(3)), true);
  EXPECT_EQ(eq.Eval(Value(4)), false);
  EXPECT_EQ(eq.Eval(Value::Null()), std::nullopt);

  Atom gt = Cmp(sql::BinaryOp::kGt, Value(10));
  EXPECT_EQ(gt.Eval(Value(11)), true);
  EXPECT_EQ(gt.Eval(Value(10)), false);
}

TEST(Atom, NegationAppliesToEvalOnly) {
  Atom ne = Cmp(sql::BinaryOp::kEq, Value(3), /*negated=*/true);
  EXPECT_EQ(ne.Eval(Value(3)), false);
  EXPECT_EQ(ne.Eval(Value(4)), true);
  // Flips ignores polarity: 3 -> 4 flips "= 3" whether or not negated.
  EXPECT_TRUE(ne.Flips(Value(3), Value(4)));
  EXPECT_FALSE(ne.Flips(Value(4), Value(5)));
}

TEST(Atom, BetweenEvalAndFlips) {
  Atom between = Between(Value(2), Value(9));
  EXPECT_EQ(between.Eval(Value(2)), true);
  EXPECT_EQ(between.Eval(Value(9)), true);
  EXPECT_EQ(between.Eval(Value(1)), false);
  // Fig. 4: "A.x was previously between 2 and 9 and is no longer in this
  // range", or vice versa.
  EXPECT_TRUE(between.Flips(Value(5), Value(10)));
  EXPECT_TRUE(between.Flips(Value(1), Value(2)));
  EXPECT_FALSE(between.Flips(Value(3), Value(8)));   // stays inside
  EXPECT_FALSE(between.Flips(Value(1), Value(100))); // stays outside
}

TEST(Atom, FlipsTreatsUnknownAsItsOwnState) {
  Atom gt = Cmp(sql::BinaryOp::kGt, Value(2));
  EXPECT_TRUE(gt.Flips(Value::Null(), Value(5)));   // unknown -> true
  EXPECT_TRUE(gt.Flips(Value::Null(), Value(1)));   // unknown -> false
  EXPECT_FALSE(gt.Flips(Value::Null(), Value::Null()));
}

TEST(Atom, InEval) {
  Atom in;
  in.kind = Atom::Kind::kIn;
  in.set = {Value(1), Value(3)};
  EXPECT_EQ(in.Eval(Value(3)), true);
  EXPECT_EQ(in.Eval(Value(2)), false);
  EXPECT_TRUE(in.Flips(Value(1), Value(2)));
  EXPECT_FALSE(in.Flips(Value(1), Value(3)));
}

TEST(Atom, LikeEval) {
  Atom like;
  like.kind = Atom::Kind::kLike;
  like.a = Value("class%");
  EXPECT_EQ(like.Eval(Value("classifier")), true);
  EXPECT_EQ(like.Eval(Value("situational")), false);
  EXPECT_EQ(like.Eval(Value(7)), false);  // type mismatch cannot match
}

TEST(Atom, IsNullEval) {
  Atom isnull;
  isnull.kind = Atom::Kind::kIsNull;
  EXPECT_EQ(isnull.Eval(Value::Null()), true);
  EXPECT_EQ(isnull.Eval(Value(1)), false);
  EXPECT_TRUE(isnull.Flips(Value::Null(), Value(1)));
}

TEST(Atom, ToStringShowsShape) {
  EXPECT_EQ(Cmp(sql::BinaryOp::kGt, Value(2)).ToString("A.x"), "A.x > 2");
  EXPECT_EQ(Between(Value(2), Value(9)).ToString("A.x"), "A.x BETWEEN 2 AND 9");
  EXPECT_EQ(Cmp(sql::BinaryOp::kEq, Value(3), true).ToString("c"), "NOT c = 3");
}

TEST(ColumnPredicate, TrueAcceptsEverything) {
  ColumnPredicate t = ColumnPredicate::True();
  EXPECT_EQ(t.Eval(Value(1)), true);
  EXPECT_EQ(t.Eval(Value::Null()), true);
}

TEST(ColumnPredicate, AndOrSimplification) {
  auto atom = ColumnPredicate::MakeAtom(Cmp(sql::BinaryOp::kEq, Value(1)));
  // TRUE conjuncts vanish.
  auto conj = ColumnPredicate::And({ColumnPredicate::True(), atom});
  EXPECT_EQ(conj.kind, ColumnPredicate::Kind::kAtom);
  // TRUE disjunct absorbs.
  auto disj = ColumnPredicate::Or({atom, ColumnPredicate::True()});
  EXPECT_TRUE(disj.IsTriviallyTrue());
}

TEST(ColumnPredicate, ThreeValuedAndOr) {
  auto gt2 = ColumnPredicate::MakeAtom(Cmp(sql::BinaryOp::kGt, Value(2)));
  auto lt9 = ColumnPredicate::MakeAtom(Cmp(sql::BinaryOp::kLt, Value(9)));
  auto range = ColumnPredicate::And({gt2, lt9});
  EXPECT_EQ(range.Eval(Value(5)), true);
  EXPECT_EQ(range.Eval(Value(1)), false);
  EXPECT_EQ(range.Eval(Value::Null()), std::nullopt);

  auto either = ColumnPredicate::Or({gt2, lt9});  // always true for ints
  EXPECT_EQ(either.Eval(Value(0)), true);
  EXPECT_EQ(either.Eval(Value(100)), true);
}

TEST(EdgeAnnotation, PaperFig4Example) {
  // Edge annotation "2,9" on A.x for: A.x > 2 AND A.x < 9.
  std::vector<Atom> atoms = {Cmp(sql::BinaryOp::kGt, Value(2)), Cmp(sql::BinaryOp::kLt, Value(9))};
  auto filter = ColumnPredicate::And({ColumnPredicate::MakeAtom(atoms[0]),
                                      ColumnPredicate::MakeAtom(atoms[1])});
  EdgeAnnotation annotation(atoms, filter);

  // 1. previously in (2,9), no longer -> affected
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(5), Value(9)));
  // 2. previously outside, now inside -> affected
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(2), Value(3)));
  // inside -> inside, outside -> outside: unaffected
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(3), Value(8)));
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(10), Value(20)));

  // Insert/delete: a row with A.x in range can affect the result.
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(5)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(1)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value::Null()));  // can't satisfy WHERE
}

TEST(EdgeAnnotation, MultipleAtomsAnyFlipFires) {
  // c < 5 OR c > 10 — two atoms; moving between the two true-regions flips
  // both atoms, moving 6 -> 7 flips neither.
  std::vector<Atom> atoms = {Cmp(sql::BinaryOp::kLt, Value(5)), Cmp(sql::BinaryOp::kGt, Value(10))};
  auto filter = ColumnPredicate::Or({ColumnPredicate::MakeAtom(atoms[0]),
                                     ColumnPredicate::MakeAtom(atoms[1])});
  EdgeAnnotation annotation(atoms, filter);
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(1), Value(20)));   // both flip
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(6), Value(7)));   // gap -> gap
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(6), Value(1)));
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(20)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(7)));
}

TEST(EdgeAnnotation, ToStringIsReadable) {
  std::vector<Atom> atoms = {Between(Value(2), Value(9))};
  EdgeAnnotation annotation(atoms, ColumnPredicate::MakeAtom(atoms[0]));
  const std::string s = annotation.ToString("A.x");
  EXPECT_NE(s.find("A.x BETWEEN 2 AND 9"), std::string::npos);
}

}  // namespace
}  // namespace qc::odg
