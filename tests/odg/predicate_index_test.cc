// Differential test for the predicate-interval index (odg/predicate_index.h):
// for randomized annotated edge sets and randomized update probes, the
// indexed Propagate must fire exactly the edges the linear scan fires.
#include "odg/predicate_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "odg/graph.h"

namespace qc::odg {
namespace {

Value RandomValue(std::mt19937& rng, bool allow_null) {
  std::uniform_int_distribution<int> pick(0, allow_null ? 3 : 2);
  switch (pick(rng)) {
    case 0:
      return Value(static_cast<int64_t>(std::uniform_int_distribution<int>(-20, 20)(rng)));
    case 1:
      return Value(std::uniform_int_distribution<int>(-20, 20)(rng) / 2.0);
    case 2: {
      static const char* kStrings[] = {"alpha", "beta", "gamma", "delta", "a%b", "x_y"};
      return Value(kStrings[std::uniform_int_distribution<size_t>(0, 5)(rng)]);
    }
    default:
      return Value::Null();
  }
}

Atom RandomAtom(std::mt19937& rng) {
  Atom atom;
  std::uniform_int_distribution<int> pick(0, 4);
  switch (pick(rng)) {
    case 0: {
      atom.kind = Atom::Kind::kCmp;
      static const sql::BinaryOp kOps[] = {sql::BinaryOp::kEq, sql::BinaryOp::kNe,
                                           sql::BinaryOp::kLt, sql::BinaryOp::kLe,
                                           sql::BinaryOp::kGt, sql::BinaryOp::kGe};
      atom.cmp_op = kOps[std::uniform_int_distribution<size_t>(0, 5)(rng)];
      atom.a = RandomValue(rng, true);
      break;
    }
    case 1:
      atom.kind = Atom::Kind::kBetween;
      atom.a = RandomValue(rng, true);
      atom.b = RandomValue(rng, true);
      break;
    case 2: {
      atom.kind = Atom::Kind::kIn;
      const size_t n = std::uniform_int_distribution<size_t>(0, 4)(rng);
      for (size_t i = 0; i < n; ++i) atom.set.push_back(RandomValue(rng, true));
      break;
    }
    case 3: {
      atom.kind = Atom::Kind::kLike;
      static const char* kPatterns[] = {"alpha", "a%", "%ta", "x_y", "beta"};
      atom.a = Value(kPatterns[std::uniform_int_distribution<size_t>(0, 4)(rng)]);
      break;
    }
    default:
      atom.kind = Atom::Kind::kIsNull;
      break;
  }
  atom.negated = std::uniform_int_distribution<int>(0, 1)(rng) == 1;
  return atom;
}

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Build a column vertex with a randomized mix of annotated, unannotated
/// and multi-level out-edges, then compare indexed vs. linear propagation
/// over randomized update probes (including NULL transitions, which must
/// fall back to the linear scan with identical results).
TEST(PredicateIndexTest, DifferentialAgainstLinearScan) {
  std::mt19937 rng(20260806);
  for (int round = 0; round < 30; ++round) {
    Graph graph;
    const VertexId col = graph.AddVertex("T.C", VertexKind::kUnderlying);
    const int objects = std::uniform_int_distribution<int>(1, 25)(rng);
    for (int i = 0; i < objects; ++i) {
      const VertexId obj = graph.AddVertex("Q" + std::to_string(i), VertexKind::kObject);
      const int kind = std::uniform_int_distribution<int>(0, 9)(rng);
      if (kind == 0) {
        graph.AddEdge(col, obj);  // unannotated: fires on every update
      } else if (kind == 1) {
        // Multi-level: column -> intermediate -> object (paper Fig. 2).
        const VertexId mid = graph.AddVertex("M" + std::to_string(i), VertexKind::kIntermediate);
        std::vector<Atom> atoms{RandomAtom(rng)};
        graph.AddEdge(col, mid, 1.0,
                      EdgeAnnotation(atoms, ColumnPredicate::MakeAtom(atoms[0])));
        graph.AddEdge(mid, obj);
      } else {
        std::vector<Atom> atoms;
        const int n = std::uniform_int_distribution<int>(1, 3)(rng);
        for (int a = 0; a < n; ++a) atoms.push_back(RandomAtom(rng));
        graph.AddEdge(col, obj, 1.0, EdgeAnnotation(atoms, ColumnPredicate::MakeAtom(atoms[0])));
      }
    }
    // Occasionally remove a vertex to exercise index maintenance.
    if (round % 3 == 0 && objects > 2) {
      graph.RemoveVertex(*graph.Find("Q1"));
    }

    for (int probe = 0; probe < 60; ++probe) {
      const Value old_v = RandomValue(rng, true);
      const Value new_v = RandomValue(rng, true);
      const ChangeSpec spec = ChangeSpec::Update(old_v, new_v);
      graph.SetPredicateIndexEnabled(true);
      const auto indexed = Sorted(graph.Propagate(col, spec));
      graph.SetPredicateIndexEnabled(false);
      const auto linear = Sorted(graph.Propagate(col, spec));
      EXPECT_EQ(indexed, linear) << "round " << round << " probe " << probe << " update "
                                 << old_v.ToString() << " -> " << new_v.ToString();
    }
  }
}

TEST(PredicateIndexTest, NullProbesCountAsFallbacks) {
  Graph graph;
  const VertexId col = graph.AddVertex("T.C", VertexKind::kUnderlying);
  const VertexId obj = graph.AddVertex("Q", VertexKind::kObject);
  Atom atom;
  atom.kind = Atom::Kind::kCmp;
  atom.cmp_op = sql::BinaryOp::kGt;
  atom.a = Value(5);
  graph.AddEdge(col, obj, 1.0, EdgeAnnotation({atom}, ColumnPredicate::MakeAtom(atom)));

  graph.Propagate(col, ChangeSpec::Update(Value(1), Value(9)));
  EXPECT_EQ(graph.index_probes(), 1u);
  EXPECT_EQ(graph.index_fallbacks(), 0u);

  graph.Propagate(col, ChangeSpec::Update(Value::Null(), Value(9)));
  EXPECT_EQ(graph.index_probes(), 1u);
  EXPECT_EQ(graph.index_fallbacks(), 1u);
}

}  // namespace
}  // namespace qc::odg
