#include "odg/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"

namespace qc::odg {
namespace {

bool Contains(const std::vector<VertexId>& vs, VertexId v) {
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

TEST(Graph, AddFindRemoveVertices) {
  Graph g;
  const VertexId a = g.AddVertex("a", VertexKind::kUnderlying);
  EXPECT_EQ(g.Find("a"), a);
  EXPECT_EQ(g.NameOf(a), "a");
  EXPECT_EQ(g.KindOf(a), VertexKind::kUnderlying);
  EXPECT_THROW(g.AddVertex("a", VertexKind::kObject), Error);
  EXPECT_EQ(g.GetOrAdd("a", VertexKind::kObject), a);  // existing wins
  g.RemoveVertex(a);
  EXPECT_FALSE(g.Find("a").has_value());
  EXPECT_FALSE(g.IsLive(a));
  EXPECT_THROW(g.NameOf(a), Error);
}

TEST(Graph, VertexIdReuseAfterRemoval) {
  Graph g;
  const VertexId a = g.AddVertex("a", VertexKind::kObject);
  g.RemoveVertex(a);
  const VertexId b = g.AddVertex("b", VertexKind::kObject);
  EXPECT_EQ(a, b);  // freed slot reused
  EXPECT_EQ(g.VertexCount(), 1u);
}

TEST(Graph, PaperFig2Transitivity) {
  // go2 changes -> go5, go6 change; by transitivity go7 changes.
  Graph g;
  const auto go1 = g.AddVertex("go1", VertexKind::kUnderlying);
  const auto go2 = g.AddVertex("go2", VertexKind::kUnderlying);
  const auto go3 = g.AddVertex("go3", VertexKind::kUnderlying);
  const auto go4 = g.AddVertex("go4", VertexKind::kUnderlying);
  const auto go5 = g.AddVertex("go5", VertexKind::kIntermediate);
  const auto go6 = g.AddVertex("go6", VertexKind::kIntermediate);
  const auto go7 = g.AddVertex("go7", VertexKind::kObject);
  g.AddEdge(go1, go5, 10);
  g.AddEdge(go2, go5, 2);
  g.AddEdge(go2, go6, 3);
  g.AddEdge(go3, go6, 1);
  g.AddEdge(go4, go6, 8);
  g.AddEdge(go5, go7, 12);
  g.AddEdge(go6, go7, 5);

  auto affected = g.Propagate(go2, ChangeSpec::Generic());
  EXPECT_EQ(affected.size(), 3u);
  EXPECT_TRUE(Contains(affected, go5));
  EXPECT_TRUE(Contains(affected, go6));
  EXPECT_TRUE(Contains(affected, go7));

  auto from_go3 = g.Propagate(go3, ChangeSpec::Generic());
  EXPECT_EQ(from_go3.size(), 2u);
  EXPECT_FALSE(Contains(from_go3, go5));
}

TEST(Graph, DiamondReportsEachVertexOnce) {
  Graph g;
  const auto src = g.AddVertex("src", VertexKind::kUnderlying);
  const auto a = g.AddVertex("a", VertexKind::kIntermediate);
  const auto b = g.AddVertex("b", VertexKind::kIntermediate);
  const auto sink = g.AddVertex("sink", VertexKind::kObject);
  g.AddEdge(src, a);
  g.AddEdge(src, b);
  g.AddEdge(a, sink);
  g.AddEdge(b, sink);
  auto affected = g.Propagate(src, ChangeSpec::Generic());
  EXPECT_EQ(affected.size(), 3u);
  EXPECT_EQ(std::count(affected.begin(), affected.end(), sink), 1);
}

TEST(Graph, CyclesTerminate) {
  Graph g;
  const auto a = g.AddVertex("a", VertexKind::kIntermediate);
  const auto b = g.AddVertex("b", VertexKind::kIntermediate);
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  auto affected = g.Propagate(a, ChangeSpec::Generic());
  EXPECT_EQ(affected.size(), 1u);  // b only; a is the source
}

TEST(Graph, AnnotatedEdgeGatesFirstHop) {
  Graph g;
  const auto col = g.AddVertex("col", VertexKind::kUnderlying);
  const auto obj = g.AddVertex("obj", VertexKind::kObject);
  Atom atom;
  atom.kind = Atom::Kind::kBetween;
  atom.a = Value(2);
  atom.b = Value(9);
  g.AddEdge(col, obj, 1.0, EdgeAnnotation({atom}, ColumnPredicate::MakeAtom(atom)));

  EXPECT_TRUE(g.Propagate(col, ChangeSpec::Update(Value(5), Value(10))).size() == 1);
  EXPECT_TRUE(g.Propagate(col, ChangeSpec::Update(Value(3), Value(4))).empty());
  EXPECT_TRUE(g.Propagate(col, ChangeSpec::Generic()).size() == 1);  // value-unaware
  EXPECT_TRUE(g.Propagate(col, ChangeSpec::RowValue(Value(5))).size() == 1);
  EXPECT_TRUE(g.Propagate(col, ChangeSpec::RowValue(Value(50))).empty());
}

TEST(Graph, RemoveVertexDetachesEdges) {
  Graph g;
  const auto col = g.AddVertex("col", VertexKind::kUnderlying);
  const auto obj1 = g.AddVertex("obj1", VertexKind::kObject);
  const auto obj2 = g.AddVertex("obj2", VertexKind::kObject);
  g.AddEdge(col, obj1);
  g.AddEdge(col, obj2);
  EXPECT_EQ(g.EdgeCount(), 2u);
  g.RemoveVertex(obj1);
  EXPECT_EQ(g.EdgeCount(), 1u);
  auto affected = g.Propagate(col, ChangeSpec::Generic());
  EXPECT_EQ(affected.size(), 1u);
  EXPECT_TRUE(Contains(affected, obj2));
  EXPECT_EQ(g.OutDegree(col), 1u);
}

TEST(Graph, RemoveMiddleVertexBreaksTransitivity) {
  Graph g;
  const auto a = g.AddVertex("a", VertexKind::kUnderlying);
  const auto mid = g.AddVertex("mid", VertexKind::kIntermediate);
  const auto c = g.AddVertex("c", VertexKind::kObject);
  g.AddEdge(a, mid);
  g.AddEdge(mid, c);
  g.RemoveVertex(mid);
  EXPECT_TRUE(g.Propagate(a, ChangeSpec::Generic()).empty());
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(Graph, WeightedObsolescenceAccumulates) {
  // Paper Fig. 2: edge weights quantify how obsolete an object becomes.
  Graph g;
  const auto go1 = g.AddVertex("go1", VertexKind::kUnderlying);
  const auto go2 = g.AddVertex("go2", VertexKind::kUnderlying);
  const auto go5 = g.AddVertex("go5", VertexKind::kObject);
  g.AddEdge(go1, go5, 10);
  g.AddEdge(go2, go5, 2);

  g.PropagateWeighted(go2, ChangeSpec::Generic());
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(go5), 2.0);
  g.PropagateWeighted(go2, ChangeSpec::Generic());
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(go5), 4.0);
  g.PropagateWeighted(go1, ChangeSpec::Generic());  // the important dependency
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(go5), 14.0);
  g.ResetObsolescence(go5);  // object refreshed
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(go5), 0.0);
}

TEST(Graph, WeightedPathStrengthIsBottleneck) {
  Graph g;
  const auto src = g.AddVertex("src", VertexKind::kUnderlying);
  const auto mid = g.AddVertex("mid", VertexKind::kIntermediate);
  const auto sink = g.AddVertex("sink", VertexKind::kObject);
  g.AddEdge(src, mid, 10);
  g.AddEdge(mid, sink, 3);
  g.PropagateWeighted(src, ChangeSpec::Generic());
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(mid), 10.0);
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(sink), 3.0);  // min along the path
}

TEST(Graph, ToDotMentionsVerticesAndAnnotations) {
  Graph g;
  const auto col = g.AddVertex("A.x", VertexKind::kUnderlying);
  const auto obj = g.AddVertex("Q1", VertexKind::kObject);
  Atom atom;
  atom.kind = Atom::Kind::kBetween;
  atom.a = Value(2);
  atom.b = Value(9);
  g.AddEdge(col, obj, 1.0, EdgeAnnotation({atom}, ColumnPredicate::MakeAtom(atom)));
  const std::string dot = g.ToDot();
  EXPECT_NE(dot.find("A.x"), std::string::npos);
  EXPECT_NE(dot.find("Q1"), std::string::npos);
  EXPECT_NE(dot.find("BETWEEN 2 AND 9"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace qc::odg
