// Graph-surgery coverage: RemoveInEdges (dependency-set rebuilds) and
// interactions between removal, reuse and propagation.
#include <gtest/gtest.h>

#include "odg/graph.h"

namespace qc::odg {
namespace {

TEST(GraphEdit, RemoveInEdgesKeepsVertexAndOutEdges) {
  Graph g;
  const auto a = g.AddVertex("a", VertexKind::kUnderlying);
  const auto b = g.AddVertex("b", VertexKind::kUnderlying);
  const auto mid = g.AddVertex("mid", VertexKind::kIntermediate);
  const auto sink = g.AddVertex("sink", VertexKind::kObject);
  g.AddEdge(a, mid);
  g.AddEdge(b, mid);
  g.AddEdge(mid, sink);
  ASSERT_EQ(g.EdgeCount(), 3u);

  g.RemoveInEdges(mid);
  EXPECT_EQ(g.EdgeCount(), 1u);  // mid -> sink survives
  EXPECT_TRUE(g.IsLive(mid));
  EXPECT_TRUE(g.Propagate(a, ChangeSpec::Generic()).empty());
  EXPECT_EQ(g.Propagate(mid, ChangeSpec::Generic()).size(), 1u);
}

TEST(GraphEdit, RemoveInEdgesThenRebuild) {
  Graph g;
  const auto old_src = g.AddVertex("old", VertexKind::kUnderlying);
  const auto new_src = g.AddVertex("new", VertexKind::kUnderlying);
  const auto obj = g.AddVertex("obj", VertexKind::kObject);
  g.AddEdge(old_src, obj);
  g.RemoveInEdges(obj);
  g.AddEdge(new_src, obj);
  EXPECT_TRUE(g.Propagate(old_src, ChangeSpec::Generic()).empty());
  EXPECT_EQ(g.Propagate(new_src, ChangeSpec::Generic()).size(), 1u);
}

TEST(GraphEdit, RemoveInEdgesOnSourcelessVertexIsNoOp) {
  Graph g;
  const auto v = g.AddVertex("v", VertexKind::kObject);
  EXPECT_NO_THROW(g.RemoveInEdges(v));
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(GraphEdit, ParallelEdgesAllRemoved) {
  Graph g;
  const auto src = g.AddVertex("src", VertexKind::kUnderlying);
  const auto obj = g.AddVertex("obj", VertexKind::kObject);
  g.AddEdge(src, obj, 1.0);
  g.AddEdge(src, obj, 2.0);  // parallel edge (e.g. two atoms, two weights)
  EXPECT_EQ(g.EdgeCount(), 2u);
  g.RemoveInEdges(obj);
  EXPECT_EQ(g.EdgeCount(), 0u);
  EXPECT_EQ(g.OutDegree(src), 0u);
}

TEST(GraphEdit, RemoveVertexAfterRemoveInEdgesIsClean) {
  Graph g;
  const auto src = g.AddVertex("src", VertexKind::kUnderlying);
  const auto obj = g.AddVertex("obj", VertexKind::kObject);
  g.AddEdge(src, obj);
  g.RemoveInEdges(obj);
  g.RemoveVertex(obj);
  EXPECT_EQ(g.VertexCount(), 1u);
  EXPECT_EQ(g.EdgeCount(), 0u);
  // The freed id can be reused and wired up again without residue.
  const auto reborn = g.AddVertex("obj2", VertexKind::kObject);
  g.AddEdge(src, reborn);
  EXPECT_EQ(g.Propagate(src, ChangeSpec::Generic()).size(), 1u);
}

TEST(GraphEdit, ObsolescenceSurvivesUnrelatedSurgery) {
  Graph g;
  const auto src = g.AddVertex("src", VertexKind::kUnderlying);
  const auto a = g.AddVertex("a", VertexKind::kObject);
  const auto b = g.AddVertex("b", VertexKind::kObject);
  g.AddEdge(src, a, 3.0);
  g.AddEdge(src, b, 1.0);
  g.PropagateWeighted(src, ChangeSpec::Generic());
  g.RemoveVertex(b);
  EXPECT_DOUBLE_EQ(g.ObsolescenceOf(a), 3.0);
}

}  // namespace
}  // namespace qc::odg
