// ABR + ORDER BY/LIMIT: "highest-priority rule wins" selection expressed
// in the query itself, cached and invalidated like everything else.
#include <gtest/gtest.h>

#include "abr/rule_server.h"

namespace qc::abr {
namespace {

TEST(AbrOrderedQueries, TopPriorityRuleViaDynamicSql) {
  storage::Database db;
  RuleServer server(db);

  auto make = [&](const std::string& name, int64_t priority) {
    RuleUseData data;
    data.name = name;
    data.context_id = "discount";
    data.type = "situational";
    data.priority = priority;
    data.implementation = "emit";
    return server.CreateRuleUse(data);
  };
  make("low", 1);
  const RuleId high = make("high", 9);
  make("mid", 5);

  const std::string sql =
      "SELECT RULEID, PRIORITY FROM RULEUSETABLE WHERE CONTEXTID = 'discount' "
      "AND COMPLETIONSTATUS = 'ready' ORDER BY PRIORITY DESC LIMIT 1";
  auto result = server.FindDynamic(sql);
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0], high);
  EXPECT_TRUE(server.FindDynamic(sql).cache_hit);

  // A new top-priority rule must displace the cached winner.
  const RuleId top = make("top", 20);
  auto after = server.FindDynamic(sql);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.rules[0], top);

  // Retiring the winner hands the crown back.
  server.Retire(top);
  EXPECT_EQ(server.FindDynamic(sql).rules[0], high);
}

TEST(AbrOrderedQueries, LimitedListIsInvalidatedByReordering) {
  storage::Database db;
  RuleServer server(db);
  for (int i = 1; i <= 6; ++i) {
    RuleUseData data;
    data.name = "r" + std::to_string(i);
    data.context_id = "ctx";
    data.type = "situational";
    data.priority = i;
    server.CreateRuleUse(data);
  }
  const std::string sql =
      "SELECT RULEID, PRIORITY FROM RULEUSETABLE WHERE CONTEXTID = 'ctx' "
      "ORDER BY PRIORITY DESC LIMIT 3";
  auto top3 = server.FindDynamic(sql);
  ASSERT_EQ(top3.rules.size(), 3u);

  // Bumping a low-priority rule above the cut reshuffles the top 3.
  server.SetAttribute(top3.rules[2] - 2, "PRIORITY", Value(50));
  auto after = server.FindDynamic(sql);
  EXPECT_FALSE(after.cache_hit);
  ASSERT_EQ(after.rules.size(), 3u);
  EXPECT_NE(after.rules, top3.rules);
}

}  // namespace
}  // namespace qc::abr

namespace qc::abr {
namespace {

TEST(AbrDynamicSql, NonRuleIdProjectionRejected) {
  storage::Database db;
  RuleServer server(db);
  EXPECT_THROW(server.FindDynamic("SELECT NAME FROM RULEUSETABLE WHERE PRIORITY > 0"), Error);
  EXPECT_THROW(server.FindDynamic("SELECT COUNT(*) FROM RULEUSETABLE"), Error);
  EXPECT_NO_THROW(server.FindDynamic("SELECT RULEID FROM RULEUSETABLE WHERE PRIORITY > 0"));
}

}  // namespace
}  // namespace qc::abr
