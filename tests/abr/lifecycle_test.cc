#include <gtest/gtest.h>

#include "abr/firing.h"
#include "abr/rule_server.h"
#include "common/error.h"

namespace qc::abr {
namespace {

RuleUseData Draft(const std::string& name) {
  RuleUseData data;
  data.name = name;
  data.context_id = "ctx";
  data.type = "situational";
  data.completion_status = "draft";
  data.implementation = "emit";
  return data;
}

class LifecycleTest : public ::testing::Test {
 protected:
  LifecycleTest() : server_(db_) {}
  storage::Database db_;
  RuleServer server_;
};

TEST_F(LifecycleTest, DraftReadyRetiredTransitions) {
  const RuleId id = server_.CreateRuleUse(Draft("r"));
  EXPECT_EQ(server_.GetAttribute(id, "COMPLETIONSTATUS"), Value("draft"));
  server_.Promote(id);
  EXPECT_EQ(server_.GetAttribute(id, "COMPLETIONSTATUS"), Value("ready"));
  server_.Retire(id);
  EXPECT_EQ(server_.GetAttribute(id, "COMPLETIONSTATUS"), Value("retired"));
  server_.Reinstate(id);
  EXPECT_EQ(server_.GetAttribute(id, "COMPLETIONSTATUS"), Value("draft"));
}

TEST_F(LifecycleTest, InvalidTransitionsThrow) {
  const RuleId id = server_.CreateRuleUse(Draft("r"));
  EXPECT_THROW(server_.Retire(id), Error);     // draft cannot retire
  EXPECT_THROW(server_.Reinstate(id), Error);  // draft cannot reinstate
  server_.Promote(id);
  EXPECT_THROW(server_.Promote(id), Error);    // already ready
}

TEST_F(LifecycleTest, PromotionInvalidatesReadyQueries) {
  const RuleId id = server_.CreateRuleUse(Draft("r"));
  EXPECT_TRUE(server_.Find("findReadyByContext", {Value("ctx")}).rules.empty());
  ASSERT_TRUE(server_.Find("findReadyByContext", {Value("ctx")}).cache_hit);

  server_.Promote(id);
  auto after = server_.Find("findReadyByContext", {Value("ctx")});
  EXPECT_FALSE(after.cache_hit);  // status flip crossed the 'ready' annotation
  EXPECT_EQ(after.rules, std::vector<RuleId>{id});
}

TEST_F(LifecycleTest, UpdateImplementationBumpsVersion) {
  const RuleId id = server_.CreateRuleUse(Draft("r"));
  server_.UpdateImplementation(id, "emit_v2", "param");
  EXPECT_EQ(server_.GetAttribute(id, "IMPLEMENTATION"), Value("emit_v2"));
  EXPECT_EQ(server_.GetAttribute(id, "VERSION"), Value(2));
}

TEST_F(LifecycleTest, CloneAsDraftCopiesButStaysInvisible) {
  const RuleId id = server_.CreateRuleUse(Draft("r"));
  server_.Promote(id);
  server_.Find("findReadyByContext", {Value("ctx")});

  const RuleId clone = server_.CloneAsDraft(id, "r-v2");
  EXPECT_EQ(server_.GetAttribute(clone, "COMPLETIONSTATUS"), Value("draft"));
  EXPECT_EQ(server_.GetAttribute(clone, "VERSION"), Value(2));
  // The draft clone fails the 'ready' filter: the cached result survives.
  auto ready = server_.Find("findReadyByContext", {Value("ctx")});
  EXPECT_TRUE(ready.cache_hit);
  EXPECT_EQ(ready.rules, std::vector<RuleId>{id});
}

TEST_F(LifecycleTest, TriggerPointFiresQueryWithContextParams) {
  RuleUseData rule = Draft("seasonal");
  rule.completion_status = "ready";
  rule.folder = "summer";
  rule.init_params = "sun.html";
  const RuleId id = server_.CreateRuleUse(rule);

  RuleRegistry registry;
  registry.Register("emit", [](const RuleUseView& r, const RuleContext&) {
    return r.Get("INITPARAMS");
  });

  TriggerPoint trigger(server_, registry, "findByFolderReady", {"season"});
  auto outcome = trigger.Fire({{"season", Value("summer")}});
  EXPECT_EQ(outcome.rules, std::vector<RuleId>{id});
  ASSERT_EQ(outcome.results.size(), 1u);
  EXPECT_EQ(outcome.results[0], Value("sun.html"));
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_TRUE(trigger.Fire({{"season", Value("summer")}}).cache_hit);
  EXPECT_TRUE(trigger.Fire({{"season", Value("winter")}}).rules.empty());

  EXPECT_THROW(trigger.Fire({{"wrong_key", Value(1)}}), Error);
}

}  // namespace
}  // namespace qc::abr
