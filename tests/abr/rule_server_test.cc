#include "abr/rule_server.h"

#include <gtest/gtest.h>

#include "abr/firing.h"
#include "common/error.h"

namespace qc::abr {
namespace {

RuleUseData MakeRule(const std::string& name, const std::string& context,
                     const std::string& type, const std::string& classification = "") {
  RuleUseData data;
  data.name = name;
  data.context_id = context;
  data.type = type;
  data.classification = classification;
  data.implementation = "noop";
  return data;
}

class RuleServerTest : public ::testing::Test {
 protected:
  RuleServerTest() : server_(db_) {}
  storage::Database db_;
  RuleServer server_;
};

TEST_F(RuleServerTest, ServerOffersTwentyThreeQueries) {
  EXPECT_EQ(ServerQueries().size(), 23u);
  for (const NamedQuery& query : ServerQueries()) {
    EXPECT_FALSE(query.name.empty());
    EXPECT_NE(query.sql.find("RULEID"), std::string::npos) << query.name;
  }
}

TEST_F(RuleServerTest, CreateGetDelete) {
  const RuleId id = server_.CreateRuleUse(MakeRule("r1", "ctx", "classifier"));
  EXPECT_TRUE(server_.Exists(id));
  RuleUseData data = server_.GetRuleUse(id);
  EXPECT_EQ(data.name, "r1");
  EXPECT_EQ(data.completion_status, "ready");
  server_.DeleteRuleUse(id);
  EXPECT_FALSE(server_.Exists(id));
  EXPECT_THROW(server_.GetRuleUse(id), StorageError);
}

TEST_F(RuleServerTest, AttributesReadThroughLive) {
  const RuleId id = server_.CreateRuleUse(MakeRule("r1", "ctx", "classifier"));
  server_.SetAttribute(id, "PRIORITY", Value(9));
  EXPECT_EQ(server_.GetAttribute(id, "PRIORITY"), Value(9));
  EXPECT_THROW(server_.SetAttribute(id, "RULEID", Value(99)), StorageError);
  EXPECT_THROW(server_.SetAttribute(id, "NOPE", Value(1)), StorageError);
}

TEST_F(RuleServerTest, FindClassifiersMatchesPaperQ1) {
  const RuleId ready = server_.CreateRuleUse(MakeRule("c1", "customerLevel", "classifier"));
  RuleUseData draft = MakeRule("c2", "customerLevel", "classifier");
  draft.completion_status = "draft";
  server_.CreateRuleUse(draft);
  server_.CreateRuleUse(MakeRule("other", "promotion", "classifier"));

  auto result = server_.FindClassifiers("customerLevel");
  ASSERT_EQ(result.rules.size(), 1u);
  EXPECT_EQ(result.rules[0], ready);
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(server_.FindClassifiers("customerLevel").cache_hit);
}

TEST_F(RuleServerTest, FindPromotionsIsParameterized) {
  const RuleId gold =
      server_.CreateRuleUse(MakeRule("pGold", "promotion", "situational", "Gold"));
  const RuleId silver =
      server_.CreateRuleUse(MakeRule("pSilver", "promotion", "situational", "Silver"));
  EXPECT_EQ(server_.FindPromotions("Gold").rules, std::vector<RuleId>{gold});
  EXPECT_EQ(server_.FindPromotions("Silver").rules, std::vector<RuleId>{silver});
  EXPECT_TRUE(server_.FindPromotions("Gold").cache_hit);
  EXPECT_TRUE(server_.FindPromotions("Silver").cache_hit);
}

TEST_F(RuleServerTest, PaperPlatinumScenario) {
  // §4.2: introducing a new customer-level classifier invalidates Q1 but
  // NOT the cached Q2 results for existing classifications.
  server_.CreateRuleUse(MakeRule("c1", "customerLevel", "classifier"));
  server_.CreateRuleUse(MakeRule("pGold", "promotion", "situational", "Gold"));
  server_.FindClassifiers("customerLevel");
  server_.FindPromotions("Gold");
  ASSERT_TRUE(server_.FindClassifiers("customerLevel").cache_hit);
  ASSERT_TRUE(server_.FindPromotions("Gold").cache_hit);

  server_.CreateRuleUse(MakeRule("cPlatinum", "customerLevel", "classifier"));

  EXPECT_FALSE(server_.FindClassifiers("customerLevel").cache_hit);  // Q1 invalidated
  EXPECT_TRUE(server_.FindPromotions("Gold").cache_hit);             // Q2 survives
  EXPECT_EQ(server_.FindClassifiers("customerLevel").rules.size(), 2u);
}

TEST_F(RuleServerTest, SetterInvalidationMatchesFig6) {
  const RuleId id = server_.CreateRuleUse(MakeRule("r", "customerLevel", "classifier"));
  server_.FindClassifiers("customerLevel");
  // No-op set: no invalidation (the Fig. 6 equals guard).
  server_.SetAttribute(id, "CONTEXTID", Value("customerLevel"));
  EXPECT_TRUE(server_.FindClassifiers("customerLevel").cache_hit);
  // Real change moves the rule out of the context: invalidate.
  server_.SetAttribute(id, "CONTEXTID", Value("somethingElse"));
  auto result = server_.FindClassifiers("customerLevel");
  EXPECT_FALSE(result.cache_hit);
  EXPECT_TRUE(result.rules.empty());
}

TEST_F(RuleServerTest, NamedQueriesExecuteAndCache) {
  RuleUseData rule = MakeRule("r1", "ctx", "situational", "Gold");
  rule.folder = "f";
  rule.owner = "me";
  rule.priority = 5;
  rule.start_date = 20260101;
  rule.end_date = 20261231;
  rule.version = 3;
  const RuleId id = server_.CreateRuleUse(rule);

  const std::vector<std::pair<std::string, std::vector<Value>>> calls = {
      {"findAllReady", {}},
      {"findByName", {Value("r1")}},
      {"findByContext", {Value("ctx")}},
      {"findReadyByContext", {Value("ctx")}},
      {"findSituational", {Value("ctx"), Value("Gold")}},
      {"findByType", {Value("situational")}},
      {"findByFolder", {Value("f")}},
      {"findByFolderReady", {Value("f")}},
      {"findByOwner", {Value("me")}},
      {"findByClassification", {Value("Gold")}},
      {"findByContextAndType", {Value("ctx"), Value("situational")}},
      {"findActiveAt", {Value(20260615)}},
      {"findReadyActiveByContext", {Value("ctx"), Value(20260615)}},
      {"findByPriorityAtLeast", {Value(5)}},
      {"findByPriorityBetween", {Value(1), Value(9)}},
      {"findByContextPrioritized", {Value("ctx"), Value(2)}},
      {"findByVersionAtLeast", {Value(2)}},
      {"findByOwnerAndFolder", {Value("me"), Value("f")}},
      {"findByContextNotClassification", {Value("ctx"), Value("Bronze")}},
  };
  for (const auto& [name, params] : calls) {
    auto result = server_.Find(name, params);
    EXPECT_EQ(result.rules, std::vector<RuleId>{id}) << name;
    EXPECT_TRUE(server_.Find(name, params).cache_hit) << name;
  }
  EXPECT_TRUE(server_.Find("findDrafts").rules.empty());
  EXPECT_TRUE(server_.Find("findRetired").rules.empty());
  EXPECT_THROW(server_.Find("noSuchQuery"), Error);
}

TEST_F(RuleServerTest, DynamicSqlPathWorksAndCaches) {
  const RuleId id = server_.CreateRuleUse(MakeRule("dyn", "ctx", "classifier"));
  const std::string sql =
      "SELECT RULEID FROM RULEUSETABLE WHERE NAME = 'dyn' AND VERSION >= 1";
  EXPECT_EQ(server_.FindDynamic(sql).rules, std::vector<RuleId>{id});
  EXPECT_TRUE(server_.FindDynamic(sql).cache_hit);
  server_.SetAttribute(id, "VERSION", Value(0));
  EXPECT_TRUE(server_.FindDynamic(sql).rules.empty());
}

// --- firing -------------------------------------------------------------------

TEST(RuleFiring, FiresInPriorityOrderAndSkipsNulls) {
  storage::Database db;
  RuleServer server(db);
  RuleRegistry registry;
  registry.Register("emit_name",
                    [](const RuleUseView& rule, const RuleContext&) { return rule.Get("NAME"); });
  registry.Register("maybe", [](const RuleUseView&, const RuleContext& ctx) {
    return ctx.count("go") ? Value("went") : Value::Null();
  });

  RuleUseData low = MakeRule("low", "ctx", "classifier");
  low.priority = 1;
  low.implementation = "emit_name";
  RuleUseData high = MakeRule("high", "ctx", "classifier");
  high.priority = 9;
  high.implementation = "emit_name";
  RuleUseData silent = MakeRule("silent", "ctx", "classifier");
  silent.priority = 5;
  silent.implementation = "maybe";
  const RuleId low_id = server.CreateRuleUse(low);
  const RuleId high_id = server.CreateRuleUse(high);
  const RuleId silent_id = server.CreateRuleUse(silent);

  auto fired = registry.Fire(server, {low_id, silent_id, high_id}, {});
  ASSERT_EQ(fired.size(), 2u);  // "maybe" returned NULL
  EXPECT_EQ(fired[0], Value("high"));
  EXPECT_EQ(fired[1], Value("low"));

  auto with_context = registry.Fire(server, {silent_id}, {{"go", Value(1)}});
  ASSERT_EQ(with_context.size(), 1u);
  EXPECT_EQ(with_context[0], Value("went"));
}

TEST(RuleFiring, UnknownImplementationThrows) {
  storage::Database db;
  RuleServer server(db);
  RuleRegistry registry;
  const RuleId id = server.CreateRuleUse(MakeRule("r", "ctx", "classifier"));
  EXPECT_THROW(registry.Fire(server, {id}, {}), Error);
}

TEST(RuleFiring, DecisionPointClassifiesThenSelects) {
  storage::Database db;
  RuleServer server(db);
  RuleRegistry registry;
  registry.Register("classify", [](const RuleUseView&, const RuleContext& ctx) {
    return ctx.at("spend").as_int() >= 100 ? Value("Gold") : Value("Bronze");
  });
  registry.Register("emit", [](const RuleUseView& rule, const RuleContext&) {
    return rule.Get("INITPARAMS");
  });

  RuleUseData classifier = MakeRule("c", "customerLevel", "classifier");
  classifier.implementation = "classify";
  server.CreateRuleUse(classifier);
  RuleUseData gold = MakeRule("pg", "promotion", "situational", "Gold");
  gold.implementation = "emit";
  gold.init_params = "gold.html";
  server.CreateRuleUse(gold);
  RuleUseData bronze = MakeRule("pb", "promotion", "situational", "Bronze");
  bronze.implementation = "emit";
  bronze.init_params = "bronze.html";
  server.CreateRuleUse(bronze);

  ClassifyAndSelectDecisionPoint dp(server, registry, "customerLevel");
  auto rich = dp.Run({{"spend", Value(500)}});
  ASSERT_EQ(rich.classifications, std::vector<std::string>{"Gold"});
  ASSERT_EQ(rich.content.size(), 1u);
  EXPECT_EQ(rich.content[0], Value("gold.html"));

  auto poor = dp.Run({{"spend", Value(5)}});
  EXPECT_EQ(poor.classifications, std::vector<std::string>{"Bronze"});
  EXPECT_EQ(poor.content[0], Value("bronze.html"));
  EXPECT_TRUE(poor.q1_cache_hit);  // classifier query cached from the first run
}

}  // namespace
}  // namespace qc::abr
