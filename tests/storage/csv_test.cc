#include "storage/csv.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "storage/database.h"

namespace qc::storage {
namespace {

Schema TestSchema() {
  return Schema({{"ID", ValueType::kInt, false},
                 {"NAME", ValueType::kString, true},
                 {"SCORE", ValueType::kDouble, true}});
}

TEST(Csv, ExportBasics) {
  Table table("T", TestSchema());
  table.Insert({Value(1), Value("alice"), Value(1.5)});
  table.Insert({Value(2), Value::Null(), Value::Null()});
  const std::string csv = ExportCsv(table);
  EXPECT_EQ(csv, "ID,NAME,SCORE\n1,alice,1.5\n2,\\N,\\N\n");
}

TEST(Csv, RoundTripPreservesValues) {
  Table source("S", TestSchema());
  source.Insert({Value(1), Value("plain"), Value(2.25)});
  source.Insert({Value(2), Value("has,comma"), Value::Null()});
  source.Insert({Value(3), Value("has \"quotes\""), Value(-0.5)});
  source.Insert({Value(4), Value("multi\nline"), Value(1e300)});
  source.Insert({Value(5), Value(""), Value(0.0)});
  source.Insert({Value(6), Value("\\N"), Value(7.0)});  // literal backslash-N string
  source.Insert({Value(7), Value::Null(), Value(3.5)});

  const std::string csv = ExportCsv(source);
  Table target("D", TestSchema());
  EXPECT_EQ(ImportCsv(target, csv), 7u);
  ASSERT_EQ(target.size(), source.size());
  source.ForEachRow([&](RowId row) { EXPECT_EQ(target.GetRow(row), source.GetRow(row)); });
}

TEST(Csv, HeaderAllowsColumnReordering) {
  Table table("T", TestSchema());
  ImportCsv(table, "NAME,ID\nbob,9\n");
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Get(0, 0), Value(9));
  EXPECT_EQ(table.Get(0, 1), Value("bob"));
  EXPECT_TRUE(table.Get(0, 2).is_null());  // SCORE absent -> NULL
}

TEST(Csv, NoHeaderUsesSchemaOrder) {
  Table table("T", TestSchema());
  CsvOptions options;
  options.header = false;
  EXPECT_EQ(ImportCsv(table, "1,x,0.5\n2,y,\\N\n", options), 2u);
  EXPECT_EQ(table.Get(1, 1), Value("y"));
}

TEST(Csv, CustomSeparator) {
  Table table("T", TestSchema());
  CsvOptions options;
  options.separator = ';';
  ImportCsv(table, "ID;NAME;SCORE\n1;semi,colon;2.5\n", options);
  EXPECT_EQ(table.Get(0, 1), Value("semi,colon"));
  const std::string out = ExportCsv(table, options);
  EXPECT_NE(out.find("semi,colon"), std::string::npos);  // unquoted: ',' is data now
}

TEST(Csv, CrlfLineEndings) {
  Table table("T", TestSchema());
  EXPECT_EQ(ImportCsv(table, "ID,NAME,SCORE\r\n1,a,0.5\r\n2,b,1.5\r\n"), 2u);
}

TEST(Csv, Errors) {
  Table table("T", TestSchema());
  EXPECT_THROW(ImportCsv(table, "ID,NOPE\n1,2\n"), StorageError);       // unknown column
  EXPECT_THROW(ImportCsv(table, "ID,NAME,SCORE\nx,a,1.0\n"), StorageError);  // bad int
  EXPECT_THROW(ImportCsv(table, "ID,NAME,SCORE\n1,a,nope\n"), StorageError); // bad double
  EXPECT_THROW(ImportCsv(table, "ID,NAME,SCORE\n1\n"), StorageError);   // short record
  EXPECT_THROW(ImportCsv(table, "NAME\nonly\n"), StorageError);         // ID is non-nullable
}

TEST(Csv, QuotedNullTokenIsAString) {
  Table table("T", TestSchema());
  ImportCsv(table, "ID,NAME,SCORE\n1,\"\\N\",\\N\n");
  EXPECT_EQ(table.Get(0, 1), Value("\\N"));
  EXPECT_TRUE(table.Get(0, 2).is_null());
}

TEST(Csv, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qc_csv_test.csv").string();
  Table source("S", TestSchema());
  source.Insert({Value(1), Value("file"), Value(9.0)});
  ExportCsvFile(source, path);
  Table target("D", TestSchema());
  EXPECT_EQ(ImportCsvFile(target, path), 1u);
  EXPECT_EQ(target.Get(0, 1), Value("file"));
  EXPECT_THROW(ImportCsvFile(target, "/nonexistent/x.csv"), StorageError);
}

TEST(Csv, ImportDrivesInvalidationLikeAnyInsert) {
  Database db;
  Table& table = db.CreateTable("T", TestSchema());
  int events = 0;
  db.Subscribe([&](const UpdateEvent& e) {
    if (e.kind == UpdateEvent::Kind::kInsert) ++events;
  });
  ImportCsv(table, "ID,NAME,SCORE\n1,a,1.0\n2,b,2.0\n");
  EXPECT_EQ(events, 2);
}

}  // namespace
}  // namespace qc::storage
