#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "storage/database.h"

namespace qc::storage {
namespace {

Schema TestSchema() {
  return Schema({{"ID", ValueType::kInt, false},
                 {"NAME", ValueType::kString, false},
                 {"SCORE", ValueType::kInt, true}});
}

TEST(Schema, FindIsCaseInsensitive) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.Find("id"), 0u);
  EXPECT_EQ(schema.Find("Name"), 1u);
  EXPECT_EQ(schema.Find("SCORE"), 2u);
  EXPECT_FALSE(schema.Find("missing").has_value());
}

TEST(Schema, RequireThrowsOnUnknown) {
  EXPECT_THROW(TestSchema().Require("nope"), StorageError);
}

TEST(Schema, DuplicateColumnRejected) {
  EXPECT_THROW(Schema({{"A", ValueType::kInt, false}, {"a", ValueType::kInt, false}}),
               StorageError);
}

TEST(Schema, AcceptsChecksTypesAndNullability) {
  Schema schema = TestSchema();
  EXPECT_TRUE(schema.Accepts(0, Value(1)));
  EXPECT_FALSE(schema.Accepts(0, Value("x")));
  EXPECT_FALSE(schema.Accepts(0, Value::Null()));  // not nullable
  EXPECT_TRUE(schema.Accepts(2, Value::Null()));   // nullable
  EXPECT_FALSE(schema.Accepts(1, Value(1)));
}

TEST(Table, InsertGetRoundTrip) {
  Table table("T", TestSchema());
  const RowId row = table.Insert({Value(1), Value("alice"), Value(10)});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Get(row, 0), Value(1));
  EXPECT_EQ(table.Get(row, 1), Value("alice"));
  EXPECT_EQ(table.GetRow(row), (Row{Value(1), Value("alice"), Value(10)}));
}

TEST(Table, InsertValidatesArityAndTypes) {
  Table table("T", TestSchema());
  EXPECT_THROW(table.Insert({Value(1)}), StorageError);
  EXPECT_THROW(table.Insert({Value("x"), Value("alice"), Value(1)}), StorageError);
  EXPECT_THROW(table.Insert({Value(1), Value::Null(), Value(1)}), StorageError);
  EXPECT_NO_THROW(table.Insert({Value(1), Value("a"), Value::Null()}));
}

TEST(Table, DeleteFreesSlotAndReusesIt) {
  Table table("T", TestSchema());
  const RowId a = table.Insert({Value(1), Value("a"), Value(1)});
  table.Insert({Value(2), Value("b"), Value(2)});
  table.Delete(a);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.IsLive(a));
  EXPECT_THROW(table.Get(a, 0), StorageError);
  const RowId c = table.Insert({Value(3), Value("c"), Value(3)});
  EXPECT_EQ(c, a);  // slot reuse
  EXPECT_EQ(table.size(), 2u);
}

TEST(Table, DoubleDeleteThrows) {
  Table table("T", TestSchema());
  const RowId a = table.Insert({Value(1), Value("a"), Value(1)});
  table.Delete(a);
  EXPECT_THROW(table.Delete(a), StorageError);
}

TEST(Table, UpdateChangesCell) {
  Table table("T", TestSchema());
  const RowId a = table.Insert({Value(1), Value("a"), Value(1)});
  table.Update(a, 2, Value(99));
  EXPECT_EQ(table.Get(a, 2), Value(99));
}

TEST(Table, UpdateEventCarriesChangesAndImages) {
  Table table("T", TestSchema());
  std::vector<UpdateEvent> events;
  table.Subscribe([&](const UpdateEvent& e) { events.push_back(e); });

  const RowId a = table.Insert({Value(1), Value("a"), Value(5)});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, UpdateEvent::Kind::kInsert);
  EXPECT_EQ(events[0].after, (Row{Value(1), Value("a"), Value(5)}));
  EXPECT_EQ(events[0].table, "T");

  table.Update(a, {{1, Value("b")}, {2, Value(6)}});
  ASSERT_EQ(events.size(), 2u);
  const UpdateEvent& update = events[1];
  EXPECT_EQ(update.kind, UpdateEvent::Kind::kUpdate);
  ASSERT_EQ(update.changes.size(), 2u);
  EXPECT_EQ(update.changes[0].column, 1u);
  EXPECT_EQ(update.changes[0].old_value, Value("a"));
  EXPECT_EQ(update.changes[0].new_value, Value("b"));
  EXPECT_EQ(update.before, (Row{Value(1), Value("a"), Value(5)}));
  EXPECT_EQ(update.after, (Row{Value(1), Value("b"), Value(6)}));

  table.Delete(a);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2].kind, UpdateEvent::Kind::kDelete);
  EXPECT_EQ(events[2].before, (Row{Value(1), Value("b"), Value(6)}));
}

TEST(Table, NoOpUpdateEmitsNoEvent) {
  // The paper's Fig. 6 setter guard: setting an attribute to its current
  // value must not trigger invalidation.
  Table table("T", TestSchema());
  const RowId a = table.Insert({Value(1), Value("a"), Value(5)});
  int events = 0;
  table.Subscribe([&](const UpdateEvent&) { ++events; });
  table.Update(a, 1, Value("a"));
  EXPECT_EQ(events, 0);
  table.Update(a, {{1, Value("a")}, {2, Value(5)}});
  EXPECT_EQ(events, 0);
  // Mixed: only the actually-changed attribute appears in the event.
  std::vector<UpdateEvent> captured;
  table.Subscribe([&](const UpdateEvent& e) { captured.push_back(e); });
  table.Update(a, {{1, Value("a")}, {2, Value(7)}});
  ASSERT_EQ(captured.size(), 1u);
  ASSERT_EQ(captured[0].changes.size(), 1u);
  EXPECT_EQ(captured[0].changes[0].column, 2u);
}

TEST(Table, HashIndexLookup) {
  Table table("T", TestSchema());
  table.CreateHashIndex(1);
  const RowId a = table.Insert({Value(1), Value("x"), Value(1)});
  const RowId b = table.Insert({Value(2), Value("x"), Value(2)});
  table.Insert({Value(3), Value("y"), Value(3)});
  auto rows = table.LookupEqual(1, Value("x"));
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE((rows[0] == a && rows[1] == b) || (rows[0] == b && rows[1] == a));
  EXPECT_TRUE(table.LookupEqual(1, Value("z")).empty());
}

TEST(Table, IndexBackfilledWhenCreatedLate) {
  Table table("T", TestSchema());
  table.Insert({Value(1), Value("x"), Value(1)});
  table.Insert({Value(2), Value("y"), Value(2)});
  table.CreateHashIndex(0);
  EXPECT_EQ(table.LookupEqual(0, Value(2)).size(), 1u);
}

TEST(Table, IndexMaintainedAcrossUpdateAndDelete) {
  Table table("T", TestSchema());
  table.CreateHashIndex(1);
  const RowId a = table.Insert({Value(1), Value("x"), Value(1)});
  table.Update(a, 1, Value("y"));
  EXPECT_TRUE(table.LookupEqual(1, Value("x")).empty());
  EXPECT_EQ(table.LookupEqual(1, Value("y")).size(), 1u);
  table.Delete(a);
  EXPECT_TRUE(table.LookupEqual(1, Value("y")).empty());
}

TEST(Table, OrderedIndexRange) {
  Table table("T", TestSchema());
  table.CreateOrderedIndex(2);
  for (int i = 1; i <= 10; ++i) table.Insert({Value(i), Value("r"), Value(i * 10)});
  EXPECT_EQ(table.LookupRange(2, Value(30), true, Value(50), true).size(), 3u);   // 30,40,50
  EXPECT_EQ(table.LookupRange(2, Value(30), false, Value(50), false).size(), 1u); // 40
  EXPECT_EQ(table.LookupRange(2, Value::Null(), true, Value(25), true).size(), 2u);
  EXPECT_EQ(table.LookupRange(2, Value(95), true, Value::Null(), true).size(), 1u);
  EXPECT_EQ(table.LookupRange(2, Value::Null(), true, Value::Null(), true).size(), 10u);
}

TEST(Table, LookupWithoutIndexThrows) {
  Table table("T", TestSchema());
  EXPECT_THROW(table.LookupEqual(0, Value(1)), StorageError);
  EXPECT_THROW(table.LookupRange(2, Value(1), true, Value(2), true), StorageError);
}

TEST(Table, OrderedIndexServesEquality) {
  Table table("T", TestSchema());
  table.CreateOrderedIndex(0);
  table.Insert({Value(5), Value("a"), Value(1)});
  EXPECT_TRUE(table.CanLookupEqual(0));
  EXPECT_EQ(table.LookupEqual(0, Value(5)).size(), 1u);
}

TEST(Table, ForEachRowVisitsOnlyLive) {
  Table table("T", TestSchema());
  const RowId a = table.Insert({Value(1), Value("a"), Value(1)});
  table.Insert({Value(2), Value("b"), Value(2)});
  table.Delete(a);
  int count = 0;
  table.ForEachRow([&](RowId row) {
    ++count;
    EXPECT_TRUE(table.IsLive(row));
  });
  EXPECT_EQ(count, 1);
}

TEST(Database, CatalogBasics) {
  Database db;
  db.CreateTable("T1", TestSchema());
  EXPECT_TRUE(db.HasTable("t1"));  // case-insensitive
  EXPECT_EQ(db.GetTable("T1").name(), "T1");
  EXPECT_EQ(db.FindTable("nope"), nullptr);
  EXPECT_THROW(db.GetTable("nope"), StorageError);
  EXPECT_THROW(db.CreateTable("t1", TestSchema()), StorageError);
  EXPECT_EQ(db.TableNames().size(), 1u);
}

TEST(Database, SubscriberSeesExistingAndFutureTables) {
  Database db;
  Table& t1 = db.CreateTable("T1", TestSchema());
  std::vector<std::string> seen;
  db.Subscribe([&](const UpdateEvent& e) { seen.push_back(e.table); });
  t1.Insert({Value(1), Value("a"), Value(1)});
  Table& t2 = db.CreateTable("T2", TestSchema());
  t2.Insert({Value(2), Value("b"), Value(2)});
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "T1");
  EXPECT_EQ(seen[1], "T2");
}

}  // namespace
}  // namespace qc::storage
