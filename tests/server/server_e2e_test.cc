// End-to-end tests of the qcached serving layer over real loopback TCP:
// an in-process QcServer wrapping a CachedQueryEngine, driven by QcClient
// connections (and raw sockets for the malformed-frame cases). Covers the
// session model, typed error codes, both backpressure valves, concurrent
// clients, and graceful drain (docs/SERVING.md).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "middleware/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace qc::server {
namespace {

class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table& table =
        db_.CreateTable("ITEMS", storage::Schema({{"ID", ValueType::kInt, false},
                                                  {"KIND", ValueType::kString, false},
                                                  {"PRICE", ValueType::kInt, false}}));
    for (int i = 1; i <= 20; ++i) {
      table.Insert({Value(i), Value(i % 2 == 0 ? "even" : "odd"), Value(i * 10)});
    }
  }

  void StartServer(middleware::CachedQueryEngine::Options options = {},
                   ServerConfig config = {}) {
    engine_ = std::make_unique<middleware::CachedQueryEngine>(db_, options);
    config.port = 0;
    server_ = std::make_unique<QcServer>(*engine_, config);
    server_->Start();
  }

  QcClient Connect() {
    QcClient client;
    client.Connect("127.0.0.1", server_->port());
    return client;
  }

  /// Raw socket for pre-handshake protocol tests.
  struct RawConn {
    int fd = -1;
    ~RawConn() {
      if (fd >= 0) ::close(fd);
    }
    std::pair<FrameHeader, std::string> RoundTrip(const std::string& frame) {
      WriteAll(fd, frame);
      std::string header_bytes;
      if (!ReadExact(fd, kFrameHeaderSize, header_bytes)) throw NetError("closed");
      const FrameHeader h = DecodeFrameHeader(header_bytes);
      std::string payload;
      if (h.length > 0 && !ReadExact(fd, h.length, payload)) throw NetError("closed mid-frame");
      return {h, std::move(payload)};
    }
    bool ReadEof() {
      std::string buf;
      try {
        return !ReadExact(fd, 1, buf);
      } catch (const NetError&) {
        return true;  // reset counts as closed
      }
    }
  };

  RawConn RawConnect() {
    RawConn raw;
    raw.fd = ConnectTcp("127.0.0.1", server_->port());
    return raw;
  }

  static DecodedError ErrorOf(const std::pair<FrameHeader, std::string>& frame) {
    WireReader r(frame.second);
    return DecodeError(r);
  }

  storage::Database db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  std::unique_ptr<QcServer> server_;
};

TEST_F(ServerE2eTest, QueryMissThenHitAndDmlInvalidation) {
  StartServer();
  QcClient client = Connect();
  EXPECT_EQ(client.server_banner(), "qcached/1");

  auto first = client.Query("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.result.row_count(), 1u);
  EXPECT_EQ(first.result.ScalarAt(0, 0), Value(10));

  auto second = client.Query("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result.ScalarAt(0, 0), Value(10));

  // DML over the wire invalidates the cached result before returning.
  EXPECT_EQ(client.Dml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 2"), 1u);
  auto third = client.Query("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(third.result.ScalarAt(0, 0), Value(9));
}

TEST_F(ServerE2eTest, QueryWithParamsAndMultiRowResults) {
  StartServer();
  QcClient client = Connect();
  auto rows = client.Query("SELECT ID, PRICE FROM ITEMS WHERE PRICE > $1", {Value(150)});
  EXPECT_EQ(rows.result.row_count(), 5u);
  ASSERT_EQ(rows.result.columns().size(), 2u);

  // Cross-check against a direct in-process execution.
  const auto oracle = engine_->ExecuteSql("SELECT ID, PRICE FROM ITEMS WHERE PRICE > $1",
                                          {Value(150)});
  EXPECT_TRUE(rows.result.Equals(*oracle.result));
}

TEST_F(ServerE2eTest, PreparedStatementsAreSessionScoped) {
  StartServer();
  QcClient a = Connect();
  QcClient b = Connect();

  const auto stmt = a.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  EXPECT_EQ(stmt.param_count, 1u);

  auto result = a.Execute(stmt.id, {Value("even")});
  EXPECT_EQ(result.result.ScalarAt(0, 0), Value(10));
  EXPECT_TRUE(a.Execute(stmt.id, {Value("even")}).cache_hit);

  // The id is scoped to connection A's session; B never prepared anything.
  try {
    b.Execute(stmt.id, {Value("even")});
    FAIL() << "expected UNKNOWN_STATEMENT";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownStatement);
  }

  // Closing the statement frees the id; re-use is an error.
  a.CloseStmt(stmt.id);
  try {
    a.Execute(stmt.id, {Value("even")});
    FAIL() << "expected UNKNOWN_STATEMENT";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnknownStatement);
  }
}

TEST_F(ServerE2eTest, TypedErrorCodes) {
  StartServer();
  QcClient client = Connect();

  try {
    client.Query("SELEC BROKEN");
    FAIL() << "expected PARSE";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kParse);
  }

  try {
    client.Query("SELECT * FROM NO_SUCH_TABLE");
    FAIL() << "expected BIND";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBind);
  }

  const auto stmt = client.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  try {
    client.Execute(stmt.id, {});  // one parameter short
    FAIL() << "expected BAD_PARAMS";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadParams);
  }

  // The connection survives typed errors; later requests still work.
  EXPECT_EQ(client.Execute(stmt.id, {Value("odd")}).result.ScalarAt(0, 0), Value(10));
}

TEST_F(ServerE2eTest, HandshakeRejectsBadMagicVersionAndMissingHello) {
  StartServer();
  {
    RawConn raw = RawConnect();
    WireWriter w;
    w.U32(0x12345678);  // wrong magic
    w.U8(1);
    w.U8(1);
    const auto reply = raw.RoundTrip(BuildFrame(Opcode::kHello, 1, w.bytes()));
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    EXPECT_EQ(ErrorOf(reply).code, ErrorCode::kMalformedFrame);
    EXPECT_TRUE(raw.ReadEof());
  }
  {
    RawConn raw = RawConnect();
    WireWriter w;
    w.U32(kProtocolMagic);
    w.U8(9);  // speaks only future versions
    w.U8(9);
    const auto reply = raw.RoundTrip(BuildFrame(Opcode::kHello, 1, w.bytes()));
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    EXPECT_EQ(ErrorOf(reply).code, ErrorCode::kUnsupportedVersion);
    EXPECT_TRUE(raw.ReadEof());
  }
  {
    RawConn raw = RawConnect();
    const auto reply = raw.RoundTrip(BuildFrame(Opcode::kPing, 1, {}));
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    EXPECT_EQ(ErrorOf(reply).code, ErrorCode::kMalformedFrame);
    EXPECT_TRUE(raw.ReadEof());
  }
}

TEST_F(ServerE2eTest, MalformedFramesAfterHandshake) {
  StartServer();
  {
    QcClient client = Connect();
    const auto reply = client.RoundTrip(Opcode::kPing, {}, kProtocolVersion, /*flags=*/1);
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    WireReader r(reply.second);
    EXPECT_EQ(DecodeError(r).code, ErrorCode::kMalformedFrame);
  }
  {
    QcClient client = Connect();
    const auto reply = client.RoundTrip(static_cast<Opcode>(0x55), {});
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    WireReader r(reply.second);
    EXPECT_EQ(DecodeError(r).code, ErrorCode::kMalformedFrame);
  }
  {
    // A QUERY whose payload is garbage: worker-level MALFORMED_FRAME.
    QcClient client = Connect();
    const auto reply = client.RoundTrip(Opcode::kQuery, "\x01");
    EXPECT_EQ(reply.first.opcode, Opcode::kError);
    WireReader r(reply.second);
    EXPECT_EQ(DecodeError(r).code, ErrorCode::kMalformedFrame);
  }
  EXPECT_GE(server_->stats().protocol_errors, 3u);
}

TEST_F(ServerE2eTest, OversizedFrameRefusedWithTooLarge) {
  ServerConfig config;
  config.max_frame_bytes = 1024;
  StartServer({}, config);
  QcClient client = Connect();
  WireWriter w;
  w.Str(std::string(4096, 'x'));
  w.U16(0);
  const auto reply = client.RoundTrip(Opcode::kQuery, w.bytes());
  EXPECT_EQ(reply.first.opcode, Opcode::kError);
  WireReader r(reply.second);
  EXPECT_EQ(DecodeError(r).code, ErrorCode::kTooLarge);
}

TEST_F(ServerE2eTest, StatsOverWireReflectTraffic) {
  StartServer();
  QcClient client = Connect();
  client.Query("SELECT COUNT(*) FROM ITEMS");
  client.Query("SELECT COUNT(*) FROM ITEMS");
  client.Ping();

  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("engine.executions"), 2.0);
  EXPECT_EQ(stats.at("engine.cache_hits"), 1.0);
  EXPECT_EQ(stats.at("engine.db_executions"), 1.0);
  EXPECT_DOUBLE_EQ(stats.at("engine.hit_rate"), 0.5);
  EXPECT_EQ(stats.at("cache.puts"), 1.0);
  EXPECT_EQ(stats.at("dup.registered_queries"), 1.0);
  EXPECT_EQ(stats.at("server.connections_open"), 1.0);
  EXPECT_GE(stats.at("server.frames_received"), 4.0);
  EXPECT_EQ(stats.at("server.draining"), 0.0);
}

TEST_F(ServerE2eTest, SixteenConcurrentClients) {
  middleware::CachedQueryEngine::Options options;
  ServerConfig config;
  config.worker_threads = 8;
  StartServer(options, config);

  constexpr int kClients = 16;
  constexpr int kIterations = 50;
  std::atomic<uint64_t> selects{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        QcClient client;
        client.Connect("127.0.0.1", server_->port());
        const auto stmt = client.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
        for (int i = 0; i < kIterations; ++i) {
          if (t == 0 && i % 10 == 5) {
            // One writer stirs invalidation traffic into the mix.
            client.Dml("UPDATE ITEMS SET PRICE = $1 WHERE ID = $2",
                       {Value(100 + i), Value(1 + (i % 20))});
            continue;
          }
          const bool use_prepared = (i % 2) == 0;
          QcClient::QueryResult result =
              use_prepared
                  ? client.Execute(stmt.id, {Value(i % 2 == 0 ? "even" : "odd")})
                  : client.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > $1",
                                 {Value((i % 5) * 40)});
          selects.fetch_add(1);
          if (result.cache_hit) hits.fetch_add(1);
          if (result.result.row_count() != 1) failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  const auto es = engine_->stats();
  EXPECT_EQ(es.executions.load(), selects.load());
  EXPECT_EQ(es.cache_hits.load(), hits.load());
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
  EXPECT_EQ(server_->stats().connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GT(hits.load(), 0u);
}

TEST_F(ServerE2eTest, InFlightCapShedsWithBusy) {
  middleware::CachedQueryEngine::Options options;
  options.simulated_db_latency = std::chrono::microseconds(300'000);
  ServerConfig config;
  config.max_in_flight = 1;
  config.worker_threads = 2;
  StartServer(options, config);

  std::thread occupier([&] {
    QcClient slow = Connect();
    // A miss holds the single in-flight slot for ~300 ms.
    slow.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 0");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  QcClient client = Connect();
  try {
    client.Query("SELECT COUNT(*) FROM ITEMS");
    FAIL() << "expected BUSY";
  } catch (const RpcError& e) {
    EXPECT_TRUE(e.IsBusy());
  }
  occupier.join();

  // The shed is typed and transient: the retry succeeds on the same
  // connection. (Responses are enqueued before the in-flight slot is
  // released — the ordering the drain path needs — so the slot may look
  // occupied for a moment after the occupier's reply arrives; retry as a
  // real client would.)
  for (int attempt = 0;; ++attempt) {
    try {
      EXPECT_EQ(client.Query("SELECT COUNT(*) FROM ITEMS").result.ScalarAt(0, 0), Value(20));
      break;
    } catch (const RpcError& e) {
      ASSERT_TRUE(e.IsBusy());
      ASSERT_LT(attempt, 50) << "BUSY never cleared after the in-flight query finished";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_GE(server_->stats().busy_rejections, 1u);
}

TEST_F(ServerE2eTest, SlowConsumerIsDisconnectedNotBuffered) {
  ServerConfig config;
  config.max_write_queue_bytes = 64;  // any real result overflows this
  StartServer({}, config);
  QcClient client = Connect();
  try {
    client.Query("SELECT * FROM ITEMS");  // response is several hundred bytes
    FAIL() << "expected disconnect";
  } catch (const Error&) {
    // Connection closed by the write-queue cap.
  }
  // Poll briefly: the close is counted on the I/O thread's next pass.
  for (int i = 0; i < 100 && server_->stats().slow_consumer_closes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server_->stats().slow_consumer_closes, 1u);
}

TEST_F(ServerE2eTest, DrainFinishesInFlightThenCloses) {
  middleware::CachedQueryEngine::Options options;
  options.simulated_db_latency = std::chrono::microseconds(200'000);
  StartServer(options);

  std::atomic<bool> got_result{false};
  std::thread in_flight([&] {
    QcClient slow = Connect();
    const auto result = slow.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 10");
    if (result.result.ScalarAt(0, 0) == Value(19)) got_result.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  QcClient admin = Connect();
  admin.Drain(/*wait_for_close=*/true);
  server_->Wait();

  in_flight.join();
  EXPECT_TRUE(got_result.load()) << "in-flight query must finish before the drain completes";
  EXPECT_FALSE(admin.connected());

  // The listener is gone: new connections are refused.
  EXPECT_THROW(Connect(), NetError);
}

TEST_F(ServerE2eTest, DrainRejectsNewWorkWithTypedError) {
  middleware::CachedQueryEngine::Options options;
  options.simulated_db_latency = std::chrono::microseconds(400'000);
  StartServer(options);

  std::thread in_flight([&] {
    QcClient slow = Connect();
    try {
      slow.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 20");
    } catch (const Error&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  QcClient client = Connect();
  client.Drain(/*wait_for_close=*/false);
  try {
    client.Query("SELECT COUNT(*) FROM ITEMS");
    FAIL() << "expected DRAINING";
  } catch (const RpcError& e) {
    EXPECT_TRUE(e.IsDraining());
  } catch (const NetError&) {
    // The in-flight query finished first and the drain completed; also a
    // valid outcome on a slow machine.
  }
  in_flight.join();
  server_->Wait();
  EXPECT_GE(server_->stats().drain_rejections, 0u);
}

TEST_F(ServerE2eTest, PingAndStatsServedDuringNormalOperation) {
  StartServer();
  QcClient client = Connect();
  client.Ping();
  client.Ping();
  EXPECT_GE(client.Stats().at("server.frames_received"), 3.0);
}

}  // namespace
}  // namespace qc::server
