// QCP/1 encoding round-trips and malformed-input rejection
// (docs/SERVING.md is the spec; these tests pin the byte layout).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <limits>

namespace qc::server {
namespace {

TEST(FrameHeader, RoundTripsAllFields) {
  FrameHeader h;
  h.length = 0xdeadbeef;
  h.version = 7;
  h.opcode = Opcode::kStatsResult;
  h.flags = 0x1234;
  h.request_id = 0xcafef00d;
  std::string bytes;
  EncodeFrameHeader(h, bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);

  const FrameHeader d = DecodeFrameHeader(bytes);
  EXPECT_EQ(d.length, h.length);
  EXPECT_EQ(d.version, h.version);
  EXPECT_EQ(d.opcode, h.opcode);
  EXPECT_EQ(d.flags, h.flags);
  EXPECT_EQ(d.request_id, h.request_id);
}

TEST(FrameHeader, ByteLayoutIsLittleEndianAndFixed) {
  // The exact layout promised by docs/SERVING.md: length u32 LE, version,
  // opcode, flags u16 LE, request_id u32 LE.
  FrameHeader h;
  h.length = 0x04030201;
  h.version = 1;
  h.opcode = Opcode::kQuery;  // 0x02
  h.flags = 0x0605;
  h.request_id = 0x0a090807;
  std::string bytes;
  EncodeFrameHeader(h, bytes);
  const uint8_t expected[kFrameHeaderSize] = {0x01, 0x02, 0x03, 0x04, 0x01, 0x02,
                                              0x05, 0x06, 0x07, 0x08, 0x09, 0x0a};
  ASSERT_EQ(bytes.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST(FrameHeader, TruncatedHeaderThrows) {
  EXPECT_THROW(DecodeFrameHeader(std::string(kFrameHeaderSize - 1, '\0')), ProtocolError);
}

TEST(Wire, ScalarsRoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello");
  w.Str("");
  w.Str(std::string("nul\0byte", 8));

  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Str(), std::string("nul\0byte", 8));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, ValuesRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),
      Value(int64_t{0}),
      Value(int64_t{-123456789}),
      Value(std::numeric_limits<int64_t>::min()),
      Value(std::numeric_limits<int64_t>::max()),
      Value(0.0),
      Value(-1.5e300),
      Value(""),
      Value("it's quoted"),
      Value(std::string(100000, 'x')),
  };
  WireWriter w;
  w.Params(values);
  WireReader r(w.bytes());
  const std::vector<Value> decoded = r.Params();
  r.ExpectEnd();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i].type(), values[i].type()) << i;
    EXPECT_EQ(decoded[i], values[i]) << i;
  }
}

TEST(Wire, ResultSetRoundTrips) {
  sql::ResultSet rs({"ID", "NAME", "SCORE"});
  rs.AddRow({Value(1), Value("alpha"), Value(1.5)});
  rs.AddRow({Value(2), Value::Null(), Value(-2.0)});

  WireWriter w;
  EncodeResultSet(rs, /*cache_hit=*/true, w);
  WireReader r(w.bytes());
  const DecodedResult decoded = DecodeResultSet(r);
  r.ExpectEnd();

  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_EQ(decoded.result.columns(), rs.columns());
  ASSERT_EQ(decoded.result.row_count(), 2u);
  EXPECT_TRUE(decoded.result.Equals(rs));
}

TEST(Wire, EmptyResultSetRoundTrips) {
  sql::ResultSet rs({"COUNT"});
  WireWriter w;
  EncodeResultSet(rs, /*cache_hit=*/false, w);
  WireReader r(w.bytes());
  const DecodedResult decoded = DecodeResultSet(r);
  EXPECT_FALSE(decoded.cache_hit);
  EXPECT_EQ(decoded.result.row_count(), 0u);
  EXPECT_EQ(decoded.result.columns().size(), 1u);
}

TEST(Wire, StatsRoundTrip) {
  std::vector<StatsEntry> entries;
  StatsEntry a;
  a.key = "cache.hits";
  a.kind = 0;
  a.u64 = 0xffffffffffffffffull;
  StatsEntry b;
  b.key = "engine.hit_rate";
  b.kind = 1;
  b.f64 = 0.9375;
  entries.push_back(a);
  entries.push_back(b);

  WireWriter w;
  EncodeStats(entries, w);
  WireReader r(w.bytes());
  const auto decoded = DecodeStats(r);
  r.ExpectEnd();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].key, "cache.hits");
  EXPECT_EQ(decoded[0].u64, a.u64);
  EXPECT_EQ(decoded[1].key, "engine.hit_rate");
  EXPECT_EQ(decoded[1].f64, b.f64);
}

TEST(Wire, ErrorRoundTrip) {
  WireWriter w;
  EncodeError(ErrorCode::kDraining, "server is draining", w);
  WireReader r(w.bytes());
  const DecodedError e = DecodeError(r);
  EXPECT_EQ(e.code, ErrorCode::kDraining);
  EXPECT_EQ(e.message, "server is draining");
}

TEST(Wire, UnderflowThrows) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U16(), 7);
  EXPECT_THROW(r.U32(), ProtocolError);
}

TEST(Wire, TruncatedStringThrows) {
  WireWriter w;
  w.U32(100);  // claims 100 bytes, supplies none
  WireReader r(w.bytes());
  EXPECT_THROW(r.Str(), ProtocolError);
}

TEST(Wire, UnknownValueTagThrows) {
  WireWriter w;
  w.U8(9);
  WireReader r(w.bytes());
  EXPECT_THROW(r.Val(), ProtocolError);
}

TEST(Wire, TrailingBytesDetected) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  WireReader r(w.bytes());
  r.U8();
  EXPECT_THROW(r.ExpectEnd(), ProtocolError);
  r.U8();
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(Wire, BuildFramePrependsHeader) {
  const std::string frame = BuildFrame(Opcode::kPing, 42, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 3);
  const FrameHeader h = DecodeFrameHeader(frame);
  EXPECT_EQ(h.length, 3u);
  EXPECT_EQ(h.opcode, Opcode::kPing);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(frame.substr(kFrameHeaderSize), "abc");
}

TEST(Names, OpcodeAndErrorCodeNames) {
  EXPECT_STREQ(OpcodeName(Opcode::kQuery), "QUERY");
  EXPECT_STREQ(OpcodeName(Opcode::kBusy), "BUSY");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnsupportedVersion), "UNSUPPORTED_VERSION");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kBusy), "BUSY");
}

}  // namespace
}  // namespace qc::server
