// QCP/1 encoding round-trips and malformed-input rejection
// (docs/SERVING.md is the spec; these tests pin the byte layout).
#include "server/protocol.h"

#include <gtest/gtest.h>

#include <limits>

namespace qc::server {
namespace {

TEST(FrameHeader, RoundTripsAllFields) {
  FrameHeader h;
  h.length = 0xdeadbeef;
  h.version = 7;
  h.opcode = Opcode::kStatsResult;
  h.flags = 0x1234;
  h.request_id = 0xcafef00d;
  std::string bytes;
  EncodeFrameHeader(h, bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);

  const FrameHeader d = DecodeFrameHeader(bytes);
  EXPECT_EQ(d.length, h.length);
  EXPECT_EQ(d.version, h.version);
  EXPECT_EQ(d.opcode, h.opcode);
  EXPECT_EQ(d.flags, h.flags);
  EXPECT_EQ(d.request_id, h.request_id);
}

TEST(FrameHeader, ByteLayoutIsLittleEndianAndFixed) {
  // The exact layout promised by docs/SERVING.md: length u32 LE, version,
  // opcode, flags u16 LE, request_id u32 LE.
  FrameHeader h;
  h.length = 0x04030201;
  h.version = 1;
  h.opcode = Opcode::kQuery;  // 0x02
  h.flags = 0x0605;
  h.request_id = 0x0a090807;
  std::string bytes;
  EncodeFrameHeader(h, bytes);
  const uint8_t expected[kFrameHeaderSize] = {0x01, 0x02, 0x03, 0x04, 0x01, 0x02,
                                              0x05, 0x06, 0x07, 0x08, 0x09, 0x0a};
  ASSERT_EQ(bytes.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<uint8_t>(bytes[i]), expected[i]) << "byte " << i;
  }
}

TEST(FrameHeader, TruncatedHeaderThrows) {
  EXPECT_THROW(DecodeFrameHeader(std::string(kFrameHeaderSize - 1, '\0')), ProtocolError);
}

TEST(Wire, ScalarsRoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.I64(-42);
  w.F64(3.25);
  w.Str("hello");
  w.Str("");
  w.Str(std::string("nul\0byte", 8));

  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Str(), std::string("nul\0byte", 8));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, ValuesRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),
      Value(int64_t{0}),
      Value(int64_t{-123456789}),
      Value(std::numeric_limits<int64_t>::min()),
      Value(std::numeric_limits<int64_t>::max()),
      Value(0.0),
      Value(-1.5e300),
      Value(""),
      Value("it's quoted"),
      Value(std::string(100000, 'x')),
  };
  WireWriter w;
  w.Params(values);
  WireReader r(w.bytes());
  const std::vector<Value> decoded = r.Params();
  r.ExpectEnd();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(decoded[i].type(), values[i].type()) << i;
    EXPECT_EQ(decoded[i], values[i]) << i;
  }
}

TEST(Wire, ResultSetRoundTrips) {
  sql::ResultSet rs({"ID", "NAME", "SCORE"});
  rs.AddRow({Value(1), Value("alpha"), Value(1.5)});
  rs.AddRow({Value(2), Value::Null(), Value(-2.0)});

  WireWriter w;
  EncodeResultSet(rs, /*cache_hit=*/true, w);
  WireReader r(w.bytes());
  const DecodedResult decoded = DecodeResultSet(r);
  r.ExpectEnd();

  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_EQ(decoded.result.columns(), rs.columns());
  ASSERT_EQ(decoded.result.row_count(), 2u);
  EXPECT_TRUE(decoded.result.Equals(rs));
}

TEST(Wire, EmptyResultSetRoundTrips) {
  sql::ResultSet rs({"COUNT"});
  WireWriter w;
  EncodeResultSet(rs, /*cache_hit=*/false, w);
  WireReader r(w.bytes());
  const DecodedResult decoded = DecodeResultSet(r);
  EXPECT_FALSE(decoded.cache_hit);
  EXPECT_EQ(decoded.result.row_count(), 0u);
  EXPECT_EQ(decoded.result.columns().size(), 1u);
}

TEST(Wire, StatsRoundTrip) {
  std::vector<StatsEntry> entries;
  StatsEntry a;
  a.key = "cache.hits";
  a.kind = 0;
  a.u64 = 0xffffffffffffffffull;
  StatsEntry b;
  b.key = "engine.hit_rate";
  b.kind = 1;
  b.f64 = 0.9375;
  entries.push_back(a);
  entries.push_back(b);

  WireWriter w;
  EncodeStats(entries, w);
  WireReader r(w.bytes());
  const auto decoded = DecodeStats(r);
  r.ExpectEnd();
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].key, "cache.hits");
  EXPECT_EQ(decoded[0].u64, a.u64);
  EXPECT_EQ(decoded[1].key, "engine.hit_rate");
  EXPECT_EQ(decoded[1].f64, b.f64);
}

TEST(Wire, ErrorRoundTrip) {
  WireWriter w;
  EncodeError(ErrorCode::kDraining, "server is draining", w);
  WireReader r(w.bytes());
  const DecodedError e = DecodeError(r);
  EXPECT_EQ(e.code, ErrorCode::kDraining);
  EXPECT_EQ(e.message, "server is draining");
}

TEST(Wire, UnderflowThrows) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U16(), 7);
  EXPECT_THROW(r.U32(), ProtocolError);
}

TEST(Wire, TruncatedStringThrows) {
  WireWriter w;
  w.U32(100);  // claims 100 bytes, supplies none
  WireReader r(w.bytes());
  EXPECT_THROW(r.Str(), ProtocolError);
}

TEST(Wire, UnknownValueTagThrows) {
  WireWriter w;
  w.U8(9);
  WireReader r(w.bytes());
  EXPECT_THROW(r.Val(), ProtocolError);
}

TEST(Wire, TrailingBytesDetected) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  WireReader r(w.bytes());
  r.U8();
  EXPECT_THROW(r.ExpectEnd(), ProtocolError);
  r.U8();
  EXPECT_NO_THROW(r.ExpectEnd());
}

TEST(Wire, BuildFramePrependsHeader) {
  const std::string frame = BuildFrame(Opcode::kPing, 42, "abc");
  ASSERT_EQ(frame.size(), kFrameHeaderSize + 3);
  const FrameHeader h = DecodeFrameHeader(frame);
  EXPECT_EQ(h.length, 3u);
  EXPECT_EQ(h.opcode, Opcode::kPing);
  EXPECT_EQ(h.request_id, 42u);
  EXPECT_EQ(frame.substr(kFrameHeaderSize), "abc");
}

TEST(Names, OpcodeAndErrorCodeNames) {
  EXPECT_STREQ(OpcodeName(Opcode::kQuery), "QUERY");
  EXPECT_STREQ(OpcodeName(Opcode::kBusy), "BUSY");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kUnsupportedVersion), "UNSUPPORTED_VERSION");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kBusy), "BUSY");
}

TEST(Names, CdcOpcodeNames) {
  EXPECT_STREQ(OpcodeName(Opcode::kSubscribe), "SUBSCRIBE");
  EXPECT_STREQ(OpcodeName(Opcode::kQuerySeq), "QUERY_SEQ");
  EXPECT_STREQ(OpcodeName(Opcode::kSubscribed), "SUBSCRIBED");
  EXPECT_STREQ(OpcodeName(Opcode::kCdcEvent), "CDC_EVENT");
  EXPECT_STREQ(OpcodeName(Opcode::kResultSetSeq), "RESULT_SET_SEQ");
}

// --- CDC record wire format (docs/CLUSTER.md, "The CDC stream") ------------

namespace cdc {

/// A record exercising every event kind and every value type, including
/// the asymmetric image rules (INSERT has no before, DELETE no after).
CdcRecord SampleRecord() {
  CdcRecord record;
  record.seq = 0xfeedfacecafebeefull;
  record.table = "ITEMS";

  storage::UpdateEvent update;
  update.kind = storage::UpdateEvent::Kind::kUpdate;
  update.table = "ITEMS";
  update.row = 41;
  update.changes.push_back({2, Value(10), Value::Null()});
  update.changes.push_back({1, Value("old"), Value(std::string("nul\0byte", 8))});
  update.before = {Value(41), Value("old"), Value(10)};
  update.after = {Value(41), Value(std::string("nul\0byte", 8)), Value::Null()};

  storage::UpdateEvent insert;
  insert.kind = storage::UpdateEvent::Kind::kInsert;
  insert.table = "ITEMS";
  insert.row = 42;
  insert.after = {Value(42), Value(""), Value(-1.5)};

  storage::UpdateEvent del;
  del.kind = storage::UpdateEvent::Kind::kDelete;
  del.table = "ITEMS";
  del.row = std::numeric_limits<uint64_t>::max();
  del.before = {Value(std::numeric_limits<int64_t>::min()), Value("gone"), Value(0.0)};

  record.events = {update, insert, del};
  return record;
}

void ExpectRowsEqual(const storage::Row& a, const storage::Row& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type(), b[i].type()) << i;
    EXPECT_EQ(a[i], b[i]) << i;
  }
}

}  // namespace cdc

TEST(Cdc, RecordRoundTripsAllEventKinds) {
  const CdcRecord record = cdc::SampleRecord();
  WireWriter w;
  EncodeCdcRecord(record, w);
  WireReader r(w.bytes());
  const CdcRecord decoded = DecodeCdcRecord(r);
  r.ExpectEnd();

  EXPECT_EQ(decoded.seq, record.seq);
  EXPECT_EQ(decoded.table, record.table);
  ASSERT_EQ(decoded.events.size(), record.events.size());
  for (size_t i = 0; i < record.events.size(); ++i) {
    const storage::UpdateEvent& in = record.events[i];
    const storage::UpdateEvent& out = decoded.events[i];
    EXPECT_EQ(out.kind, in.kind) << i;
    EXPECT_EQ(out.row, in.row) << i;
    ASSERT_EQ(out.changes.size(), in.changes.size()) << i;
    for (size_t c = 0; c < in.changes.size(); ++c) {
      EXPECT_EQ(out.changes[c].column, in.changes[c].column);
      EXPECT_EQ(out.changes[c].old_value, in.changes[c].old_value);
      EXPECT_EQ(out.changes[c].new_value, in.changes[c].new_value);
    }
    cdc::ExpectRowsEqual(out.before, in.before);
    cdc::ExpectRowsEqual(out.after, in.after);
  }
  // The decoded record reassembles into the exact batch shape the DUP
  // engine consumes.
  const storage::UpdateBatch batch = decoded.AsBatch();
  EXPECT_EQ(batch.table, "ITEMS");
  EXPECT_EQ(batch.count, 3u);
}

TEST(Cdc, EmptyRecordRoundTrips) {
  CdcRecord record;
  record.seq = 1;
  record.table = "T";
  WireWriter w;
  EncodeCdcRecord(record, w);
  WireReader r(w.bytes());
  const CdcRecord decoded = DecodeCdcRecord(r);
  EXPECT_EQ(decoded.seq, 1u);
  EXPECT_EQ(decoded.table, "T");
  EXPECT_TRUE(decoded.events.empty());
  EXPECT_TRUE(decoded.AsBatch().empty());
}

TEST(Cdc, EventTableNameIsRestoredFromRecord) {
  // The wire format carries the table once per record, not per event; the
  // decoder must re-stamp it so OnBatch sees consistent events.
  const CdcRecord record = cdc::SampleRecord();
  WireWriter w;
  EncodeCdcRecord(record, w);
  WireReader r(w.bytes());
  const CdcRecord decoded = DecodeCdcRecord(r);
  for (const storage::UpdateEvent& event : decoded.events) {
    EXPECT_EQ(event.table, decoded.table);
  }
}

TEST(Cdc, EveryTruncationPrefixThrowsNeverCrashes) {
  // Fuzz-ish robustness: a CDC frame cut at ANY byte boundary must surface
  // as ProtocolError — never a crash, hang, or silently short record.
  const CdcRecord record = cdc::SampleRecord();
  WireWriter w;
  EncodeCdcRecord(record, w);
  const std::string& bytes = w.bytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WireReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW(
        {
          const CdcRecord d = DecodeCdcRecord(r);
          r.ExpectEnd();
          (void)d;
        },
        ProtocolError)
        << "prefix length " << cut;
  }
}

TEST(Cdc, BadEventKindTagThrows) {
  WireWriter w;
  w.U64(7);     // seq
  w.Str("T");   // table
  w.U32(1);     // one event
  w.U8(3);      // kind tag out of range (valid: 0, 1, 2)
  WireReader r(w.bytes());
  EXPECT_THROW(DecodeCdcRecord(r), ProtocolError);
}

TEST(Cdc, TrailingBytesAfterRecordDetected) {
  CdcRecord record;
  record.seq = 9;
  record.table = "T";
  WireWriter w;
  EncodeCdcRecord(record, w);
  w.U8(0xcc);  // stray byte after a well-formed record
  WireReader r(w.bytes());
  const CdcRecord decoded = DecodeCdcRecord(r);
  EXPECT_EQ(decoded.seq, 9u);
  EXPECT_THROW(r.ExpectEnd(), ProtocolError);
}

TEST(Cdc, OverstatedEventCountThrows) {
  // A hostile frame claiming 2^32-1 events must fail on underflow while
  // decoding, not attempt a giant allocation loop to completion.
  WireWriter w;
  w.U64(1);
  w.Str("T");
  w.U32(0xffffffffu);
  WireReader r(w.bytes());
  EXPECT_THROW(DecodeCdcRecord(r), ProtocolError);
}

}  // namespace
}  // namespace qc::server
