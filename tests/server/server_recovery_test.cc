// Crash/restart tests of the real qcached binary (fork + exec of
// QCACHED_BIN, which CMake points at the qcached target in this build
// tree). The lifecycle under test is the ISSUE acceptance scenario:
//
//   start (disk cache, --recover) -> warm over the wire -> kill -9
//   -> restart on the same spool  -> previously cached queries answer
//   warm (cache_hit over the wire) and engine.recovered_registrations
//   shows up in STATS -> recovered registrations still drive DUP
//   invalidation -> SIGTERM drains with exit status 0.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

#ifndef QCACHED_BIN
#error "QCACHED_BIN must be defined to the qcached binary path"
#endif

namespace qc::server {
namespace {

std::string MakeTempDir() {
  std::string tmpl = "/tmp/qcached_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) throw Error("mkdtemp failed");
  return dir;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out) throw Error("cannot write " + path);
}

/// fork + exec qcached with the given flags. Returns the child pid.
pid_t SpawnServer(const std::vector<std::string>& flags) {
  std::vector<std::string> args;
  args.push_back(QCACHED_BIN);
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw Error("fork failed");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

/// Poll for the --port-file the server writes once it is listening.
uint16_t WaitForPortFile(const std::string& path, pid_t pid) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0) return static_cast<uint16_t>(port);
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      throw Error("qcached exited before writing its port file (status " +
                  std::to_string(status) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  throw Error("timed out waiting for port file " + path);
}

int WaitForExit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) throw Error("waitpid failed");
  return status;
}

class QcachedRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir();
    cache_dir_ = dir_ + "/cache";
    ::mkdir(cache_dir_.c_str(), 0755);
    init_path_ = dir_ + "/init.qc";
    WriteFile(init_path_,
              "# bootstrap: rebuilt on every start; only the cache persists\n"
              "\\create ITEMS ID INT, KIND STRING, PRICE INT\n"
              "INSERT INTO ITEMS VALUES (1, 'even', 10)\n"
              "INSERT INTO ITEMS VALUES (2, 'odd', 20)\n"
              "INSERT INTO ITEMS VALUES (3, 'even', 30)\n"
              "INSERT INTO ITEMS VALUES (4, 'odd', 40)\n"
              "INSERT INTO ITEMS VALUES (5, 'even', 50)\n");
  }

  void TearDown() override {
    // Best-effort cleanup; stray children are killed by the test harness.
    [[maybe_unused]] const int rc =
        std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  /// Start qcached on an ephemeral port with the shared disk spool.
  std::pair<pid_t, uint16_t> Start(const std::string& port_file_name) {
    const std::string port_file = dir_ + "/" + port_file_name;
    const pid_t pid = SpawnServer({"--port", "0", "--port-file", port_file,
                                   "--cache-mode", "disk", "--cache-dir", cache_dir_,
                                   "--recover", "--txlog", dir_ + "/txlog",
                                   "--init", init_path_, "--quiet"});
    const uint16_t port = WaitForPortFile(port_file, pid);
    return {pid, port};
  }

  static QcClient Connect(uint16_t port) {
    QcClient client;
    client.Connect("127.0.0.1", port);
    return client;
  }

  std::string dir_, cache_dir_, init_path_;
};

TEST_F(QcachedRecoveryTest, Kill9RestartAnswersWarmOverTheWire) {
  const std::vector<std::string> queries = {
      "SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'",
      "SELECT ID, PRICE FROM ITEMS WHERE PRICE > 15",
      "SELECT SUM(PRICE) FROM ITEMS WHERE KIND = 'odd'",
  };

  // --- Generation 1: warm the disk cache over the wire, then die hard.
  auto [pid1, port1] = Start("port1");
  std::vector<sql::ResultSet> warm_results;
  {
    QcClient client = Connect(port1);
    for (const std::string& q : queries) {
      auto miss = client.Query(q);
      EXPECT_FALSE(miss.cache_hit) << q;
      auto hit = client.Query(q);
      EXPECT_TRUE(hit.cache_hit) << q;
      EXPECT_TRUE(miss.result.Equals(hit.result)) << q;
      warm_results.push_back(std::move(hit.result));
    }
    const auto stats = client.Stats();
    EXPECT_EQ(stats.at("engine.executions"), 6.0);
    EXPECT_EQ(stats.at("engine.cache_hits"), 3.0);
    EXPECT_EQ(stats.at("cache.entries"), 3.0);
  }
  ASSERT_EQ(::kill(pid1, SIGKILL), 0);
  const int status1 = WaitForExit(pid1);
  ASSERT_TRUE(WIFSIGNALED(status1));
  ASSERT_EQ(WTERMSIG(status1), SIGKILL);

  // --- Generation 2: same spool, fresh process. Spill files written at
  // Put time survive the kill; --recover re-indexes them and re-registers
  // each entry in the ODG.
  auto [pid2, port2] = Start("port2");
  {
    QcClient client = Connect(port2);
    const auto stats = client.Stats();
    EXPECT_GE(stats.at("engine.recovered_registrations"), 3.0)
        << "all three durable tags should re-register exactly";
    EXPECT_EQ(stats.at("engine.recovered_dropped"), 0.0);

    // Every pre-kill query answers warm, with the pre-kill result.
    for (size_t i = 0; i < queries.size(); ++i) {
      auto replay = client.Query(queries[i]);
      EXPECT_TRUE(replay.cache_hit) << queries[i] << " should hit after recovery";
      EXPECT_TRUE(replay.result.Equals(warm_results[i])) << queries[i];
    }

    // Recovered registrations must still drive invalidation: flip row 3
    // to 'odd' and the KIND='even' count drops through the cache.
    EXPECT_EQ(client.Dml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 3"), 1u);
    auto after = client.Query(queries[0]);
    EXPECT_FALSE(after.cache_hit) << "recovered entry must be invalidated by DML";
    EXPECT_EQ(after.result.ScalarAt(0, 0), Value(2));
  }

  // --- SIGTERM drains gracefully: exit status 0.
  ASSERT_EQ(::kill(pid2, SIGTERM), 0);
  const int status2 = WaitForExit(pid2);
  ASSERT_TRUE(WIFEXITED(status2));
  EXPECT_EQ(WEXITSTATUS(status2), 0);
}

TEST_F(QcachedRecoveryTest, SigtermDrainWaitsForInFlightAndExitsZero) {
  // Give misses a synthetic 200 ms so a query is reliably in flight when
  // SIGTERM lands.
  const std::string port_file = dir_ + "/port";
  const pid_t pid = SpawnServer({"--port", "0", "--port-file", port_file,
                                 "--cache-mode", "disk", "--cache-dir", cache_dir_,
                                 "--recover", "--txlog", dir_ + "/txlog",
                                 "--init", init_path_, "--db-latency-us", "200000",
                                 "--quiet"});
  const uint16_t port = WaitForPortFile(port_file, pid);

  std::atomic<bool> completed{false};
  std::thread in_flight([&] {
    try {
      QcClient client = Connect(port);
      const auto result = client.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 15");
      if (result.result.ScalarAt(0, 0) == Value(4)) completed.store(true);
    } catch (const Error&) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  ASSERT_EQ(::kill(pid, SIGTERM), 0);

  const int status = WaitForExit(pid);
  in_flight.join();
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_TRUE(completed.load()) << "the in-flight query must complete during the drain";

  // The drained spool answers warm in the next generation.
  auto [pid2, port2] = Start("port2");
  {
    QcClient client = Connect(port2);
    auto replay = client.Query("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 15");
    EXPECT_TRUE(replay.cache_hit);
    EXPECT_EQ(replay.result.ScalarAt(0, 0), Value(4));
  }
  ASSERT_EQ(::kill(pid2, SIGTERM), 0);
  const int status2 = WaitForExit(pid2);
  ASSERT_TRUE(WIFEXITED(status2));
  EXPECT_EQ(WEXITSTATUS(status2), 0);
}

TEST_F(QcachedRecoveryTest, RejectsBadFlagsWithNonzeroExit) {
  const pid_t pid = SpawnServer({"--cache-mode", "disk"});  // missing --cache-dir
  const int status = WaitForExit(pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);
}

}  // namespace
}  // namespace qc::server
