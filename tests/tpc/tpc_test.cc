#include <gtest/gtest.h>

#include "tpc/tpcc_like.h"
#include "tpc/tpcd_like.h"

namespace qc::tpc {
namespace {

TEST(Tpcc, RunsAndMatchesMixShares) {
  TpccConfig config;
  config.transactions = 1000;
  TpccSimulation sim(config, dup::InvalidationPolicy::kValueAware);
  const MixResult result = sim.Run();
  EXPECT_EQ(result.transactions, 1000u);
  EXPECT_EQ(result.queries + result.updates, 1000u);
  // ~92% of TPC-C transactions bear updates.
  EXPECT_NEAR(static_cast<double>(result.updates) / result.transactions, 0.92, 0.05);
}

TEST(Tpcc, SmartInvalidationBuysLittle) {
  // The paper's §5.1 negative result, as a unit test at small scale.
  TpccConfig config;
  config.transactions = 1500;
  const double flush_all =
      TpccSimulation(config, dup::InvalidationPolicy::kFlushAll).Run().HitRatePercent();
  const double value_aware =
      TpccSimulation(config, dup::InvalidationPolicy::kValueAware).Run().HitRatePercent();
  EXPECT_LT(value_aware, 50.0);
  EXPECT_LT(value_aware - flush_all, 30.0);
}

TEST(Tpcc, DeterministicForSeed) {
  TpccConfig config;
  config.transactions = 500;
  const auto a = TpccSimulation(config, dup::InvalidationPolicy::kValueAware).Run();
  const auto b = TpccSimulation(config, dup::InvalidationPolicy::kValueAware).Run();
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.invalidations, b.invalidations);
}

TEST(Tpcd, BatchRefreshMakesPolicyIrrelevant) {
  TpcdConfig config;
  config.lineitems = 4000;
  config.transactions = 800;
  const double p1 =
      TpcdSimulation(config, dup::InvalidationPolicy::kFlushAll).Run().HitRatePercent();
  const double p2 =
      TpcdSimulation(config, dup::InvalidationPolicy::kValueUnaware).Run().HitRatePercent();
  const double p3 =
      TpcdSimulation(config, dup::InvalidationPolicy::kValueAware).Run().HitRatePercent();
  EXPECT_NEAR(p2, p3, 5.0);
  EXPECT_NEAR(p1, p3, 10.0);
  EXPECT_GT(p3, 80.0);  // high between refreshes
}

TEST(Tpcd, NoRefreshMeansPerfectWarmHitRate) {
  TpcdConfig config;
  config.lineitems = 2000;
  config.transactions = 200;
  config.refresh_interval = 0;  // disable batches
  TpcdSimulation sim(config, dup::InvalidationPolicy::kValueAware);
  const MixResult result = sim.Run();
  // 5 distinct queries miss once each; everything else hits.
  EXPECT_EQ(result.queries - result.hits, 5u);
}

TEST(Tpcd, RefreshCadenceDrivesMissRate) {
  auto misses = [](uint64_t interval) {
    TpcdConfig config;
    config.lineitems = 2000;
    config.transactions = 600;
    config.refresh_interval = interval;
    TpcdSimulation sim(config, dup::InvalidationPolicy::kValueAware);
    const MixResult r = sim.Run();
    return r.queries - r.hits;
  };
  EXPECT_GT(misses(100), misses(300));
}

}  // namespace
}  // namespace qc::tpc
