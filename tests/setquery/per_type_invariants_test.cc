// Parameterized per-query-type regression guard for the Fig. 9 orderings:
// for every Set Query type, Policy III's hit rate is at least Policy II's,
// which is at least Policy I's (within noise), at a small workload scale.
#include <gtest/gtest.h>

#include "middleware/query_engine.h"
#include "setquery/workload.h"

namespace qc::setquery {
namespace {

class PerTypeInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  static double HitRateFor(const std::string& type, dup::InvalidationPolicy policy) {
    storage::Database db;
    BenchTable bench(db, 2000);
    middleware::CachedQueryEngine::Options options;
    options.policy = policy;
    options.extraction = dup::ExtractionOptions::PaperFidelity();
    middleware::CachedQueryEngine engine(db, options);
    WorkloadRunner runner(bench, engine);
    WorkloadConfig config;
    config.update_rate = 0.05;
    config.attributes_per_update = 1;
    config.transactions = 1200;
    config.seed = 9;
    const WorkloadResult result = runner.Run(config);
    auto it = result.per_type.find(type);
    return it == result.per_type.end() ? 0.0 : it->second.HitRatePercent();
  }
};

TEST_P(PerTypeInvariants, PolicyLadderHoldsPerQueryType) {
  const std::string& type = GetParam();
  const double p1 = HitRateFor(type, dup::InvalidationPolicy::kFlushAll);
  const double p2 = HitRateFor(type, dup::InvalidationPolicy::kValueUnaware);
  const double p3 = HitRateFor(type, dup::InvalidationPolicy::kValueAware);
  // Small-sample noise tolerance: 8 points.
  EXPECT_GE(p2, p1 - 8.0) << "II vs I for type " << type;
  EXPECT_GE(p3, p2 - 8.0) << "III vs II for type " << type;
  EXPECT_GT(p3, 0.0) << type;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PerTypeInvariants,
                         ::testing::Values("1", "2A", "2B", "3A", "3B", "4A", "4B", "5", "6A",
                                           "6B"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = "Q" + info.param;
                           return name;
                         });

}  // namespace
}  // namespace qc::setquery
