#include <gtest/gtest.h>

#include <set>

#include "setquery/bench_table.h"
#include "setquery/queries.h"
#include "setquery/workload.h"
#include "sql/binder.h"
#include "sql/evaluator.h"

namespace qc::setquery {
namespace {

TEST(BenchTable, SchemaHasThirteenIntColumns) {
  EXPECT_EQ(BenchAttributeCount(), 13u);
  storage::Database db;
  BenchTable bench(db, 100);
  EXPECT_EQ(bench.table().schema().size(), 13u);
  EXPECT_EQ(bench.table().schema().column(0).name, "KSEQ");
  EXPECT_EQ(bench.table().schema().column(12).name, "K2");
  EXPECT_EQ(bench.table().size(), 100u);
}

TEST(BenchTable, KseqIsUniqueSequence) {
  storage::Database db;
  BenchTable bench(db, 500);
  std::set<int64_t> seen;
  bench.table().ForEachRow([&](storage::RowId row) {
    seen.insert(bench.table().Get(row, 0).as_int());
  });
  EXPECT_EQ(seen.size(), 500u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 500);
}

TEST(BenchTable, ColumnsRespectCardinalities) {
  storage::Database db;
  BenchTable bench(db, 2000);
  const auto& table = bench.table();
  // K2 ∈ {1,2}, K4 ∈ {1..4}, K10 ∈ {1..10}.
  for (auto [name, card] : {std::pair{"K2", 2}, {"K4", 4}, {"K10", 10}}) {
    const uint32_t col = table.schema().Require(name);
    std::set<int64_t> values;
    table.ForEachRow([&](storage::RowId row) { values.insert(table.Get(row, col).as_int()); });
    EXPECT_EQ(values.size(), static_cast<size_t>(card)) << name;
    EXPECT_GE(*values.begin(), 1) << name;
    EXPECT_LE(*values.rbegin(), card) << name;
  }
}

TEST(BenchTable, GenerationIsDeterministic) {
  storage::Database db1, db2;
  BenchTable a(db1, 300, 99), b(db2, 300, 99);
  a.table().ForEachRow([&](storage::RowId row) {
    EXPECT_EQ(a.table().GetRow(row), b.table().GetRow(row));
  });
}

TEST(BenchTable, ScaledKseqPreservesSelectivity) {
  storage::Database db;
  BenchTable bench(db, 100'000);
  EXPECT_EQ(bench.ScaledKseq(400'000), 40'000);
  EXPECT_EQ(bench.ScaledKseq(1'000'000), 100'000);
  EXPECT_EQ(bench.ScaledKseq(0), 0);
}

TEST(BenchTable, RandomValueStaysInDomain) {
  storage::Database db;
  BenchTable bench(db, 50);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const int64_t k2 = bench.RandomValue(12, rng);  // K2
    EXPECT_GE(k2, 1);
    EXPECT_LE(k2, 2);
    const int64_t kseq = bench.RandomValue(0, rng);
    EXPECT_GE(kseq, 1);
    EXPECT_LE(kseq, 50);
  }
}

TEST(Queries, FamiliesHaveExpectedSizesAndParse) {
  storage::Database db;
  BenchTable bench(db, 1000);
  EXPECT_EQ(BuildQ1(bench).size(), 11u);
  EXPECT_EQ(BuildQ2A(bench).size(), 10u);
  EXPECT_EQ(BuildQ2B(bench).size(), 10u);
  EXPECT_EQ(BuildQ3A(bench).size(), 9u);
  EXPECT_EQ(BuildQ3B(bench).size(), 9u);
  EXPECT_EQ(BuildQ4A(bench).size(), 3u);
  EXPECT_EQ(BuildQ4B(bench).size(), 2u);
  EXPECT_EQ(BuildQ5(bench).size(), 3u);
  EXPECT_EQ(BuildQ6A(bench).size(), 5u);
  EXPECT_EQ(BuildQ6B(bench).size(), 4u);

  const auto all = BuildAllQueries(bench);
  EXPECT_EQ(all.size(), 66u);
  std::set<std::string> sqls;
  for (const QuerySpec& spec : all) {
    EXPECT_TRUE(sqls.insert(spec.sql).second) << "duplicate: " << spec.sql;
    // Every query must parse, bind, and execute against the table.
    auto query = sql::ParseAndBind(spec.sql, db);
    EXPECT_NO_THROW(sql::Execute(*query)) << spec.sql;
  }
}

TEST(Queries, ParameterizedFamiliesBindAndExecute) {
  storage::Database db;
  BenchTable bench(db, 1000);
  Rng rng(3);
  for (const ParamQuerySpec& spec : BuildParameterizedQueries(bench)) {
    auto query = sql::ParseAndBind(spec.sql, db);
    EXPECT_EQ(query->param_count(), 1u) << spec.sql;
    const Value param(bench.RandomValue(spec.param_column, rng));
    EXPECT_NO_THROW(sql::Execute(*query, {param})) << spec.sql;
  }
}

TEST(Queries, Q3ASumMatchesManualComputation) {
  storage::Database db;
  BenchTable bench(db, 2000);
  const auto specs = BuildQ3A(bench);
  // KN = K4 variant (last): manual evaluation over the table.
  const QuerySpec& spec = specs.back();
  ASSERT_EQ(spec.variant, "K4");
  auto query = sql::ParseAndBind(spec.sql, db);
  auto result = sql::Execute(*query);

  const auto& table = bench.table();
  const uint32_t k4 = table.schema().Require("K4");
  const uint32_t k1k = table.schema().Require("K1K");
  const int64_t lo = bench.ScaledKseq(400'000), hi = bench.ScaledKseq(500'000);
  int64_t sum = 0;
  bool any = false;
  table.ForEachRow([&](storage::RowId row) {
    const int64_t kseq = table.Get(row, 0).as_int();
    if (kseq >= lo && kseq <= hi && table.Get(row, k4).as_int() == 3) {
      sum += table.Get(row, k1k).as_int();
      any = true;
    }
  });
  ASSERT_TRUE(any);
  EXPECT_EQ(result.ScalarAt(0, 0), Value(sum));
}

TEST(Workload, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    storage::Database db;
    BenchTable bench(db, 1000);
    middleware::CachedQueryEngine engine(db, {});
    WorkloadRunner runner(bench, engine);
    WorkloadConfig config;
    config.transactions = 300;
    config.update_rate = 0.1;
    config.seed = seed;
    return runner.Run(config);
  };
  const auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_NE(a.hits, c.hits);  // different seed, different trajectory
}

TEST(Workload, UpdateRateZeroMeansNoUpdates) {
  storage::Database db;
  BenchTable bench(db, 500);
  middleware::CachedQueryEngine engine(db, {});
  WorkloadRunner runner(bench, engine);
  WorkloadConfig config;
  config.transactions = 200;
  config.update_rate = 0.0;
  const auto result = runner.Run(config);
  EXPECT_EQ(result.updates, 0u);
  EXPECT_EQ(result.queries, 200u);
  EXPECT_EQ(result.invalidations, 0u);
  // With warmup and no updates every query is a hit.
  EXPECT_DOUBLE_EQ(result.HitRatePercent(), 100.0);
}

TEST(Workload, PerTypeStatsCoverAllTypes) {
  storage::Database db;
  BenchTable bench(db, 500);
  middleware::CachedQueryEngine engine(db, {});
  WorkloadRunner runner(bench, engine);
  WorkloadConfig config;
  config.transactions = 2000;
  config.update_rate = 0.0;
  const auto result = runner.Run(config);
  for (const std::string& type : QueryTypeOrder()) {
    EXPECT_TRUE(result.per_type.count(type)) << type;
  }
}

TEST(Workload, CreateDeleteShareKeepsRowCountConstant) {
  storage::Database db;
  BenchTable bench(db, 500);
  middleware::CachedQueryEngine engine(db, {});
  WorkloadRunner runner(bench, engine);
  WorkloadConfig config;
  config.transactions = 300;
  config.update_rate = 0.5;
  config.create_delete_share = 1.0;
  const auto result = runner.Run(config);
  EXPECT_GT(result.updates, 0u);
  EXPECT_EQ(bench.table().size(), 500u);
}

TEST(Workload, ParameterizedModeBuildsLargerPopulation) {
  storage::Database db;
  BenchTable bench(db, 500);
  middleware::CachedQueryEngine engine(db, {});
  WorkloadRunner runner(bench, engine);
  WorkloadConfig config;
  config.transactions = 100;
  config.update_rate = 0.0;
  config.parameterized = true;
  config.param_pool_size = 3;
  const auto result = runner.Run(config);
  EXPECT_EQ(result.queries, 100u);
  // Warmup touched far more distinct instances than the 66 fixed queries.
  EXPECT_GT(engine.stats().db_executions, 100u);
}

TEST(Workload, HigherUpdateRatesLowerHitRates) {
  auto hit_rate = [](double rate) {
    storage::Database db;
    BenchTable bench(db, 1000);
    middleware::CachedQueryEngine::Options options;
    options.extraction = dup::ExtractionOptions::PaperFidelity();
    middleware::CachedQueryEngine engine(db, options);
    WorkloadRunner runner(bench, engine);
    WorkloadConfig config;
    config.transactions = 1500;
    config.update_rate = rate;
    config.attributes_per_update = 2;
    return runner.Run(config).HitRatePercent();
  };
  const double low = hit_rate(0.01), high = hit_rate(0.30);
  EXPECT_GT(low, high + 10);
}

}  // namespace
}  // namespace qc::setquery
