// TSan-targeted stress for the in-process CDC bus (async_delivery): real
// reader threads fill every node's cache while a writer thread commits DML
// and the background applier races the resulting CDC records against
// those fills. After quiescing, no node may hold a stale entry — any
// delayed fill that raced a delivery must have been refused by its
// sequence gate (docs/CLUSTER.md, "Stream-sequence admission").
//
// Run under the tsan-cluster preset to assert the data-race freedom of the
// bus, the gates and the admission path; the staleness assertion itself
// also runs in the tier-1 suite via the cluster label.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"

namespace qc::cluster {
namespace {

TEST(ClusterStressTest, AsyncDeliveryNeverAdmitsStaleEntries) {
  storage::Database db;
  storage::Table& table = db.CreateTable(
      "T", storage::Schema({{"ID", ValueType::kInt, false}, {"N", ValueType::kInt, false}}));
  for (int i = 1; i <= 64; ++i) table.Insert({Value(i), Value(i)});

  ClusterConfig config;
  config.nodes = 3;
  config.async_delivery = true;
  config.verify_staleness = false;  // raced verification would blur the signal
  CacheCluster cluster(db, config);

  const char* kThreshold = "SELECT COUNT(*) FROM T WHERE N <= $1";
  auto query = cluster.Prepare(kThreshold);
  constexpr int kThresholds = 8;
  constexpr int kWrites = 300;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Single writer (the cluster's documented contract); every statement
    // goes through the engine's DML path so readers and the writer
    // serialize on the table's reader-writer lock.
    for (int i = 0; i < kWrites; ++i) {
      const std::string sql = "UPDATE T SET N = " + std::to_string((i * 37) % 200) +
                              " WHERE ID = " + std::to_string(1 + i % 64);
      cluster.PerformUpdate(0, [&] { cluster.node(0).ExecuteDml(sql); });
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (size_t n = 0; n < 3; ++n) {
    readers.emplace_back([&, n] {
      int v = static_cast<int>(n);
      while (!done.load(std::memory_order_acquire)) {
        cluster.ExecuteAt(n, query, {Value(v % kThresholds * 16)});
        ++v;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();
  cluster.Quiesce();

  // No writes since Quiesce: any cached entry that SURVIVED the stress
  // must match a fresh execution — a single mismatch means a stale fill
  // was admitted past its sequence gate. (Most entries have been
  // invalidated by the churn; surviving hits are opportunistic.)
  for (size_t n = 0; n < 3; ++n) {
    for (int v = 0; v < kThresholds; ++v) {
      const std::vector<Value> params{Value(v * 16)};
      auto outcome = cluster.node(n).Execute(query, params);
      if (!outcome.cache_hit) continue;
      EXPECT_TRUE(outcome.result->Equals(cluster.node(n).ExecuteUncached(*query, params)))
          << "node " << n << " threshold " << v * 16;
    }
    EXPECT_EQ(cluster.gate(n).applied(), cluster.committed_seq()) << "node " << n;
  }
  // With the bus drained, fills admit again (the gates are caught up, not
  // wedged shut) and the warm pass both hits and agrees with the data.
  uint64_t checked_hits = 0;
  for (size_t n = 0; n < 3; ++n) {
    for (int v = 0; v < kThresholds; ++v) {
      const std::vector<Value> params{Value(v * 16)};
      cluster.node(n).Execute(query, params);  // fill (or existing entry)
      auto warm = cluster.node(n).Execute(query, params);
      EXPECT_TRUE(warm.cache_hit) << "node " << n << " threshold " << v * 16;
      if (warm.cache_hit) ++checked_hits;
      EXPECT_TRUE(warm.result->Equals(cluster.node(n).ExecuteUncached(*query, params)))
          << "node " << n << " threshold " << v * 16;
    }
  }
  EXPECT_EQ(checked_hits, 3u * kThresholds);
  EXPECT_GT(cluster.committed_seq(), 0u);
  EXPECT_LE(cluster.committed_seq(), static_cast<uint64_t>(kWrites));
}

}  // namespace
}  // namespace qc::cluster
