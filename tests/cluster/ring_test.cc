#include "cluster/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace qc::cluster {
namespace {

std::vector<std::string> Keys(size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.push_back("SELECT * FROM T WHERE ID = " + std::to_string(i));
  return keys;
}

TEST(HashRingTest, EmptyRingThrows) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.OwnerOf("anything"), Error);
}

TEST(HashRingTest, SingleNodeOwnsEverything) {
  HashRing ring;
  ring.AddNode("only");
  for (const std::string& key : Keys(100)) EXPECT_EQ(ring.OwnerOf(key), "only");
}

TEST(HashRingTest, OwnershipIsDeterministicAcrossInstances) {
  // Two rings built with the same members (in different orders) must agree
  // on every owner — this is what lets each cache node compute ownership
  // without coordination.
  HashRing a, b;
  for (const char* name : {"cache0", "cache1", "cache2"}) a.AddNode(name);
  for (const char* name : {"cache2", "cache0", "cache1"}) b.AddNode(name);
  for (const std::string& key : Keys(500)) EXPECT_EQ(a.OwnerOf(key), b.OwnerOf(key));
}

TEST(HashRingTest, VnodesSpreadKeysAcrossNodes) {
  HashRing ring(64);
  for (const char* name : {"cache0", "cache1", "cache2"}) ring.AddNode(name);
  std::map<std::string, size_t> counts;
  for (const std::string& key : Keys(3000)) ++counts[ring.OwnerOf(key)];
  EXPECT_EQ(counts.size(), 3u);  // every node owns something
  for (const auto& [name, count] : counts) {
    // Perfect balance would be 1000 each; vnodes keep the skew moderate.
    EXPECT_GT(count, 300u) << name;
    EXPECT_LT(count, 2000u) << name;
  }
}

TEST(HashRingTest, RemovingANodeOnlyRemapsItsSlice) {
  HashRing ring;
  for (const char* name : {"cache0", "cache1", "cache2"}) ring.AddNode(name);
  const std::vector<std::string> keys = Keys(2000);
  std::map<std::string, std::string> before;
  for (const std::string& key : keys) before[key] = ring.OwnerOf(key);

  ring.RemoveNode("cache1");
  size_t moved = 0;
  for (const std::string& key : keys) {
    const std::string& owner = ring.OwnerOf(key);
    EXPECT_NE(owner, "cache1");
    if (before[key] != "cache1") {
      // Keys the departed node never owned must not move at all.
      EXPECT_EQ(owner, before[key]) << key;
    } else {
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);  // cache1's slice was redistributed
}

TEST(HashRingTest, DuplicateAddAndUnknownRemoveAreNoOps) {
  HashRing ring;
  ring.AddNode("cache0");
  ring.AddNode("cache0");
  EXPECT_EQ(ring.node_count(), 1u);
  ring.RemoveNode("ghost");
  EXPECT_EQ(ring.node_count(), 1u);
  EXPECT_TRUE(ring.HasNode("cache0"));
  EXPECT_FALSE(ring.HasNode("ghost"));
}

TEST(HashRingTest, HashIsStable) {
  // Pin the hash function (FNV-1a + avalanche finalizer): ownership must
  // never change across builds, or a rolling restart would silently
  // re-home every fingerprint.
  EXPECT_EQ(HashRing::Hash(""), 17280346270528514342ull);
  EXPECT_EQ(HashRing::Hash("a"), 9413272369427828315ull);
  EXPECT_EQ(HashRing::Hash("cache0#0"), HashRing::Hash("cache0#0"));
  EXPECT_NE(HashRing::Hash("cache0#0"), HashRing::Hash("cache0#1"));
}

}  // namespace
}  // namespace qc::cluster
