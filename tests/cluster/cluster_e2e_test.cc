// End-to-end cluster test against real qcached processes (fork + exec of
// QCACHED_BIN): one storage node publishing the sequenced CDC stream and
// three cache nodes partitioned by the consistent-hash ring, exactly the
// topology of docs/CLUSTER.md. Asserts over real loopback TCP that
//
//   * a DML routed through any cache node reaches the storage node and the
//     resulting CDC invalidation lands on the owning remote cache within
//     one stream round-trip (no polling of the storage node);
//   * SELECTs for fingerprints another node owns are forwarded
//     (cluster.ring_forwards) so the cluster keeps one cached copy;
//   * a push-lease ClientCache subscribed to a cache node observes the
//     relayed invalidation without polling (WaitForInvalidation);
//   * the cluster counters ride the standard STATS surface;
//   * every node drains cleanly on SIGTERM.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_cache.h"
#include "server/client.h"

#ifndef QCACHED_BIN
#error "QCACHED_BIN must be defined to the qcached binary path"
#endif

namespace qc::cluster {
namespace {

using namespace std::chrono_literals;

std::string MakeTempDir() {
  std::string tmpl = "/tmp/qc_cluster_test_XXXXXX";
  char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) throw Error("mkdtemp failed");
  return dir;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  if (!out) throw Error("cannot write " + path);
}

/// Reserve a port by binding an ephemeral listener and releasing it. The
/// tiny reuse window is acceptable in tests; peers need each other's ports
/// before any of them has started, so truly ephemeral --port 0 cannot work.
uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw Error("bind failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  ::close(fd);
  return ntohs(addr.sin_port);
}

pid_t SpawnServer(const std::vector<std::string>& flags) {
  std::vector<std::string> args;
  args.push_back(QCACHED_BIN);
  args.insert(args.end(), flags.begin(), flags.end());
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw Error("fork failed");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed
  }
  return pid;
}

uint16_t WaitForPortFile(const std::string& path, pid_t pid) {
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(path);
    int port = 0;
    if (in && (in >> port) && port > 0) return static_cast<uint16_t>(port);
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      throw Error("qcached exited before writing its port file (status " +
                  std::to_string(status) + ")");
    }
    std::this_thread::sleep_for(10ms);
  }
  throw Error("timed out waiting for port file " + path);
}

class ClusterE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = MakeTempDir();
    // Storage node: schema + data. Cache nodes: schema only — they need
    // the catalog to bind SELECTs, but their tables stay empty (fills come
    // over QUERY_SEQ).
    WriteFile(dir_ + "/storage.qc",
              "\\create ITEMS ID INT, KIND STRING, PRICE INT\n"
              "INSERT INTO ITEMS VALUES (1, 'even', 10)\n"
              "INSERT INTO ITEMS VALUES (2, 'odd', 20)\n"
              "INSERT INTO ITEMS VALUES (3, 'even', 30)\n"
              "INSERT INTO ITEMS VALUES (4, 'odd', 40)\n"
              "INSERT INTO ITEMS VALUES (5, 'even', 50)\n");
    WriteFile(dir_ + "/schema.qc", "\\create ITEMS ID INT, KIND STRING, PRICE INT\n");

    const pid_t storage_pid = SpawnServer({"--port", "0", "--port-file", dir_ + "/storage.port",
                                           "--init", dir_ + "/storage.qc", "--quiet"});
    pids_.push_back(storage_pid);
    storage_port_ = WaitForPortFile(dir_ + "/storage.port", storage_pid);

    for (size_t i = 0; i < 3; ++i) cache_ports_.push_back(PickFreePort());
    const std::string upstream = "127.0.0.1:" + std::to_string(storage_port_);
    for (size_t i = 0; i < 3; ++i) {
      std::vector<std::string> flags = {
          "--port",      std::to_string(cache_ports_[i]),
          "--port-file", dir_ + "/cache" + std::to_string(i) + ".port",
          "--init",      dir_ + "/schema.qc",
          "--upstream",  upstream,
          "--node-name", "cache" + std::to_string(i),
          "--quiet"};
      for (size_t p = 0; p < 3; ++p) {
        if (p == i) continue;
        flags.push_back("--peer");
        flags.push_back("cache" + std::to_string(p) + "=127.0.0.1:" +
                        std::to_string(cache_ports_[p]));
      }
      const pid_t pid = SpawnServer(flags);
      pids_.push_back(pid);
      WaitForPortFile(dir_ + "/cache" + std::to_string(i) + ".port", pid);
    }
  }

  void TearDown() override {
    // Cache nodes first (their appliers reconnect-loop if storage dies
    // first — harmless, but this order keeps the drain quiet).
    for (auto it = pids_.rbegin(); it != pids_.rend(); ++it) {
      ::kill(*it, SIGTERM);
      int status = 0;
      ::waitpid(*it, &status, 0);
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "pid " << *it << " status " << status;
    }
    [[maybe_unused]] const int rc = std::system(("rm -rf '" + dir_ + "'").c_str());
  }

  static server::QcClient Connect(uint16_t port) {
    server::QcClient client;
    client.Connect("127.0.0.1", port);
    return client;
  }

  std::string dir_;
  uint16_t storage_port_ = 0;
  std::vector<uint16_t> cache_ports_;
  std::vector<pid_t> pids_;  // [0] = storage, then cache0..2
};

constexpr const char* kEvenCount = "SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'";

TEST_F(ClusterE2eTest, CdcInvalidatesOwningRemoteCacheWithinOneRoundTrip) {
  // Warm the owner through cache node 0 (forwarded if 0 is not the owner).
  server::QcClient reader = Connect(cache_ports_[0]);
  auto cold = reader.Query(kEvenCount);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.result.ScalarAt(0, 0), Value(3));
  EXPECT_TRUE(reader.Query(kEvenCount).cache_hit);

  // DML through a DIFFERENT cache node: forwarded to the storage node,
  // which publishes the CDC record; the owner's applier must invalidate
  // the cached count without anyone polling.
  server::QcClient writer = Connect(cache_ports_[1]);
  EXPECT_EQ(writer.Dml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 3"), 1u);
  writer.Close();

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  sql::ResultSet latest;
  while (true) {
    auto outcome = reader.Query(kEvenCount);
    latest = std::move(outcome.result);
    if (latest.ScalarAt(0, 0) == Value(2)) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "owning cache still serves the stale count";
    std::this_thread::sleep_for(5ms);
  }
  // Once fresh, it stays fresh — and serves as a (fresh) hit again.
  auto warm = reader.Query(kEvenCount);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.result.ScalarAt(0, 0), Value(2));

  // The storage node counted the fan-out; some cache node applied it.
  server::QcClient storage = Connect(storage_port_);
  EXPECT_GE(storage.Stats().at("server.cdc_events_sent"), 1.0);
  EXPECT_GE(storage.Stats().at("server.cdc_committed_seq"), 1.0);
  uint64_t applied = 0;
  for (const uint16_t port : cache_ports_) {
    server::QcClient node = Connect(port);
    const auto stats = node.Stats();
    applied += static_cast<uint64_t>(stats.at("cluster.cdc_events_applied"));
    EXPECT_EQ(stats.count("cluster.ring_forwards"), 1u);
    EXPECT_EQ(stats.count("cluster.lease_invalidations"), 1u);
    EXPECT_EQ(stats.count("engine.seq_admit_rejects"), 1u);
  }
  EXPECT_GE(applied, 3u);  // every cache node applied the record
}

TEST_F(ClusterE2eTest, RingForwardsKeepOneCachedCopy) {
  // The same statement from every node lands on one owner: two of the
  // three front doors must forward, and after the first fill everyone
  // serves the owner's cached copy.
  uint64_t hits = 0;
  for (int lap = 0; lap < 2; ++lap) {
    for (const uint16_t port : cache_ports_) {
      server::QcClient client = Connect(port);
      if (client.Query(kEvenCount).cache_hit) ++hits;
    }
  }
  EXPECT_EQ(hits, 5u);  // one cluster-wide miss, five forwarded/local hits

  uint64_t forwards = 0;
  for (const uint16_t port : cache_ports_) {
    server::QcClient client = Connect(port);
    forwards += static_cast<uint64_t>(client.Stats().at("cluster.ring_forwards"));
  }
  EXPECT_GE(forwards, 4u);  // two non-owners, two laps each
}

TEST_F(ClusterE2eTest, ClientCacheObservesPushedInvalidationWithoutPolling) {
  ClientCacheConfig config;
  config.lease_ttl = 1h;  // the push, not the clock, must do the work
  ClientCache browser("127.0.0.1", cache_ports_[2], config);
  const auto healthy_deadline = std::chrono::steady_clock::now() + 5s;
  while (!browser.subscription_healthy() &&
         std::chrono::steady_clock::now() < healthy_deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(browser.subscription_healthy());

  EXPECT_EQ(browser.Execute(kEvenCount).result->ScalarAt(0, 0), Value(3));
  EXPECT_TRUE(browser.Execute(kEvenCount).cache_hit);

  server::QcClient writer = Connect(cache_ports_[0]);
  EXPECT_EQ(writer.Dml("UPDATE ITEMS SET KIND = 'odd' WHERE ID = 1"), 1u);
  writer.Close();

  // storage -> cache node 2 (applier) -> relay -> this subscription.
  EXPECT_TRUE(browser.WaitForInvalidation(kEvenCount, {}, 10s));
  EXPECT_GE(browser.stats().push_invalidations, 1u);
  auto fresh = browser.Execute(kEvenCount);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(2));
  EXPECT_EQ(browser.stats().lease_expiries, 0u);

  // The relaying cache node counted a lease push.
  server::QcClient node = Connect(cache_ports_[2]);
  EXPECT_GE(node.Stats().at("cluster.lease_invalidations"), 1.0);
}

}  // namespace
}  // namespace qc::cluster
