#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sql/evaluator.h"

namespace qc::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"KIND", ValueType::kString, false},
                                                    {"N", ValueType::kInt, false}}));
    table_->CreateHashIndex(1);
    for (int i = 1; i <= 50; ++i) {
      table_->Insert({Value(i), Value(i % 2 == 0 ? "even" : "odd"), Value(i)});
    }
  }

  ClusterConfig Config(uint64_t latency, dup::InvalidationPolicy policy =
                                              dup::InvalidationPolicy::kValueAware) {
    ClusterConfig config;
    config.nodes = 3;
    config.latency_ticks = latency;
    config.policy = policy;
    return config;
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(ClusterTest, EachNodeHasIndependentCache) {
  CacheCluster cluster(db_, Config(0));
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  EXPECT_FALSE(cluster.ExecuteAt(0, query).cache_hit);
  EXPECT_FALSE(cluster.ExecuteAt(1, query).cache_hit);  // separate cache
  EXPECT_TRUE(cluster.ExecuteAt(0, query).cache_hit);
  EXPECT_TRUE(cluster.ExecuteAt(1, query).cache_hit);
  EXPECT_FALSE(cluster.ExecuteAt(2, query).cache_hit);
}

TEST_F(ClusterTest, RingRoutesEachStatementToOneOwner) {
  CacheCluster cluster(db_, Config(0));
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T");
  // Consistent-hash routing sends every execution of one statement to the
  // same owning node: one cluster-wide miss, then hits — unlike the old
  // round-robin, which cached the result on every node it visited.
  for (int i = 0; i < 6; ++i) cluster.Execute(query);
  EXPECT_EQ(cluster.stats().queries, 6u);
  EXPECT_EQ(cluster.stats().hits, 5u);
  // The owner is a function of the fingerprint alone, and parameters are
  // part of the fingerprint, so each binding may live on a different node
  // but is always stable.
  auto by_param = cluster.Prepare("SELECT COUNT(*) FROM T WHERE N <= $1");
  for (int v = 0; v < 8; ++v) {
    const std::vector<Value> params{Value(v)};
    const size_t owner = cluster.OwnerOf(by_param, params);
    EXPECT_EQ(owner, cluster.OwnerOf(by_param, params));
    cluster.Execute(by_param, params);
    EXPECT_TRUE(cluster.Execute(by_param, params).cache_hit) << "param " << v;
  }
}

TEST_F(ClusterTest, SynchronousCoherenceNeverServesStale) {
  CacheCluster cluster(db_, Config(0));
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  for (size_t n = 0; n < 3; ++n) cluster.ExecuteAt(n, query);

  cluster.PerformUpdate(0, [&] { table_->Update(0, 1, Value("even")); });  // id 1 odd -> even
  for (size_t n = 0; n < 3; ++n) {
    auto outcome = cluster.ExecuteAt(n, query);
    EXPECT_FALSE(outcome.cache_hit) << "node " << n;  // token arrived instantly
    EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(26));
  }
  EXPECT_EQ(cluster.stats().stale_hits, 0u);
  EXPECT_EQ(cluster.stats().remote_invalidations, 2u);
  EXPECT_EQ(cluster.stats().local_invalidations, 1u);
  EXPECT_EQ(cluster.stats().tokens_sent, 2u);
  // The CDC bus stamped the update and every node's gate has applied it.
  EXPECT_GT(cluster.committed_seq(), 0u);
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(cluster.gate(n).applied(), cluster.committed_seq()) << "node " << n;
  }
}

TEST_F(ClusterTest, LatencyCreatesBoundedStaleWindow) {
  CacheCluster cluster(db_, Config(5));
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  for (size_t n = 0; n < 3; ++n) cluster.ExecuteAt(n, query);

  cluster.PerformUpdate(0, [&] { table_->Update(0, 1, Value("even")); });
  EXPECT_EQ(cluster.in_flight(), 2u);

  // Writer is correct immediately; a remote node still serves the old count.
  EXPECT_FALSE(cluster.ExecuteAt(0, query).cache_hit);
  auto remote = cluster.ExecuteAt(1, query);
  EXPECT_TRUE(remote.cache_hit);
  EXPECT_EQ(remote.result->ScalarAt(0, 0), Value(25));  // stale value
  EXPECT_EQ(cluster.stats().stale_hits, 1u);

  // After the latency window the token lands and the node recovers.
  cluster.Quiesce();
  EXPECT_EQ(cluster.in_flight(), 0u);
  auto fresh = cluster.ExecuteAt(1, query);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(26));
}

TEST_F(ClusterTest, ValueAwareCutsCoherenceTraffic) {
  // Two clusters over identical state; Policy III's remote invalidations
  // must undercut Policy II's for value-irrelevant updates.
  auto run = [&](dup::InvalidationPolicy policy) {
    storage::Database db;
    storage::Table& t = db.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                             {"N", ValueType::kInt, false}}));
    for (int i = 1; i <= 50; ++i) t.Insert({Value(i), Value(i)});
    ClusterConfig config;
    config.nodes = 3;
    config.policy = policy;
    CacheCluster cluster(db, config);
    auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE N BETWEEN 100 AND 200");
    for (size_t n = 0; n < 3; ++n) cluster.ExecuteAt(n, query);
    for (int i = 0; i < 10; ++i) {
      // N bounces far below the cached range: no result can change.
      cluster.PerformUpdate(0, [&, i] { t.Update(0, 1, Value(10 + i)); });
      for (size_t n = 0; n < 3; ++n) cluster.ExecuteAt(n, query);
    }
    return cluster.stats();
  };
  const ClusterStats ii = run(dup::InvalidationPolicy::kValueUnaware);
  const ClusterStats iii = run(dup::InvalidationPolicy::kValueAware);
  EXPECT_GT(ii.remote_invalidations, 0u);
  EXPECT_EQ(iii.remote_invalidations, 0u);
  EXPECT_GT(iii.HitRatePercent(), ii.HitRatePercent());
  // Token traffic is policy-independent; invalidation work is not.
  EXPECT_EQ(ii.tokens_sent, iii.tokens_sent);
}

TEST_F(ClusterTest, DirectDatabaseWritesRouteThroughNodeZero) {
  CacheCluster cluster(db_, Config(0));
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'odd'");
  for (size_t n = 0; n < 3; ++n) cluster.ExecuteAt(n, query);
  // Mutation outside PerformUpdate: treated as a node-0 write.
  table_->Update(1, 1, Value("odd"));  // id 2 even -> odd
  cluster.Quiesce();
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_FALSE(cluster.ExecuteAt(n, query).cache_hit) << n;
  }
}

TEST_F(ClusterTest, ZeroNodesRejected) {
  ClusterConfig config;
  config.nodes = 0;
  EXPECT_THROW(CacheCluster cluster(db_, config), Error);
}

TEST_F(ClusterTest, FlushAllPolicyFlushesRemotesOnDelivery) {
  CacheCluster cluster(db_, Config(0, dup::InvalidationPolicy::kFlushAll));
  auto even = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  auto all = cluster.Prepare("SELECT COUNT(*) FROM T");
  for (size_t n = 0; n < 3; ++n) {
    cluster.ExecuteAt(n, even);
    cluster.ExecuteAt(n, all);
  }
  cluster.PerformUpdate(2, [&] { table_->Update(0, 2, Value(999)); });
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_FALSE(cluster.ExecuteAt(n, even).cache_hit) << n;
    EXPECT_FALSE(cluster.ExecuteAt(n, all).cache_hit) << n;
  }
}

// The correctness heart of the CDC refactor, demonstrated deterministically
// at the engine layer: a remote fill that observed sequence S must be
// refused admission once an invalidation with a sequence above S has been
// applied — otherwise the delayed fill would re-cache the pre-DML result
// with no invalidation ever coming for it.
TEST_F(ClusterTest, SequenceGuardRefusesDelayedFill) {
  auto gate = std::make_shared<dup::CdcSequenceGate>();
  bool race_delivery = true;
  middleware::CachedQueryEngine::Options options;
  options.subscribe_to_database = false;
  options.seq_gate = gate;
  options.remote_fetch = [&](const sql::BoundQuery& query, const std::vector<Value>& params) {
    middleware::CachedQueryEngine::RemoteFill fill;
    fill.observed_seq = gate->applied();  // the sequence the upstream read saw
    fill.result = std::make_shared<const sql::ResultSet>(sql::Execute(query, params));
    if (race_delivery) {
      // A CDC record lands between the upstream read and this node's
      // StoreResult — exactly the delayed-fill race.
      gate->Advance(fill.observed_seq + 1);
    }
    return fill;
  };
  middleware::CachedQueryEngine engine(db_, options);

  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.stats().seq_admit_rejects, 1u);
  EXPECT_EQ(engine.stats().remote_fills, 1u);
  // Nothing was admitted: the next execution is a miss, not a stale hit.
  race_delivery = false;
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.stats().seq_admit_rejects, 1u);  // clean fill admitted
  EXPECT_TRUE(engine.Execute(query).cache_hit);
}

}  // namespace
}  // namespace qc::cluster
