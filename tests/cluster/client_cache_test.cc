#include "cluster/client_cache.h"

#include <gtest/gtest.h>

namespace qc::cluster {
namespace {

using namespace std::chrono_literals;

class ClientCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"N", ValueType::kInt, false}}));
    for (int i = 1; i <= 20; ++i) table_->Insert({Value(i), Value(i)});
    engine_ = std::make_unique<middleware::CachedQueryEngine>(db_, middleware::CachedQueryEngine::Options{});
  }

  ClientCacheConfig Config() {
    ClientCacheConfig config;
    config.ttl = 30s;
    config.now = [this] { return now_; };
    config.verify_staleness = true;
    return config;
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  cache::TimePoint now_{};
};

TEST_F(ClientCacheTest, LocalHitsOffloadOrigin) {
  ClientCache client(*engine_, Config());
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE N <= 10");
  EXPECT_FALSE(client.Execute(query).cache_hit);  // origin miss too
  EXPECT_TRUE(client.Execute(query).cache_hit);
  EXPECT_TRUE(client.Execute(query).cache_hit);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.local_hits, 2u);
  EXPECT_EQ(stats.origin_requests, 1u);
  // The origin saw exactly one execution.
  EXPECT_EQ(engine_->stats().executions, 1u);
}

TEST_F(ClientCacheTest, NoInvalidationChannelMeansBoundedStaleness) {
  ClientCache client(*engine_, Config());
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE N <= 10");
  EXPECT_EQ(client.Execute(query).result->ScalarAt(0, 0), Value(10));

  table_->Update(0, 1, Value(100));  // server side: count is now 9

  // The origin's DUP cache is already correct...
  EXPECT_EQ(engine_->Execute(query).result->ScalarAt(0, 0), Value(9));
  // ...but the client keeps serving its TTL copy (stale, by design).
  auto local = client.Execute(query);
  EXPECT_TRUE(local.cache_hit);
  EXPECT_EQ(local.result->ScalarAt(0, 0), Value(10));
  EXPECT_EQ(client.stats().stale_local_hits, 1u);

  // Until the TTL expires — the client clock advances past 30s and the
  // next request goes through to the (already-correct) origin.
  now_ += 31s;
  const auto origin_before = client.stats().origin_requests;
  auto fresh = client.Execute(query);
  EXPECT_EQ(client.stats().origin_requests, origin_before + 1);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(9));
}

TEST_F(ClientCacheTest, RefreshDropsLocalCopyOnly) {
  ClientCache client(*engine_, Config());
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE N <= 10");
  client.Execute(query);
  client.Refresh(query);
  auto outcome = client.Execute(query);
  EXPECT_TRUE(outcome.cache_hit);  // served by the ORIGIN's cache
  EXPECT_EQ(client.stats().origin_requests, 2u);
}

TEST_F(ClientCacheTest, ParamsAreSeparateEntries) {
  ClientCache client(*engine_, Config());
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE N <= $1");
  client.Execute(query, {Value(5)});
  client.Execute(query, {Value(15)});
  EXPECT_EQ(client.entry_count(), 2u);
  EXPECT_TRUE(client.Execute(query, {Value(5)}).cache_hit);
}

TEST_F(ClientCacheTest, LruBoundsClientFootprint) {
  ClientCacheConfig config = Config();
  config.max_entries = 2;
  ClientCache client(*engine_, config);
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE N <= $1");
  client.Execute(query, {Value(1)});
  client.Execute(query, {Value(2)});
  client.Execute(query, {Value(3)});
  EXPECT_LE(client.entry_count(), 2u);
  // The first entry was evicted locally: the next request goes to the
  // origin again (whose own cache may well hit — that flag passes through).
  const auto before = client.stats().origin_requests;
  client.Execute(query, {Value(1)});
  EXPECT_EQ(client.stats().origin_requests, before + 1);
}

}  // namespace
}  // namespace qc::cluster
