// Push-lease client cache over a real loopback QcServer: local hits
// offload the origin, pushed CDC invalidations drop entries without any
// polling, and with the subscription disabled the lease TTL bounds
// staleness exactly like the paper's original client tier
// (docs/CLUSTER.md, "Push-lease client caches").
#include "cluster/client_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "middleware/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace qc::cluster {
namespace {

using namespace std::chrono_literals;

class ClientCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table& table = db_.CreateTable(
        "T", storage::Schema({{"ID", ValueType::kInt, false}, {"N", ValueType::kInt, false}}));
    for (int i = 1; i <= 20; ++i) table.Insert({Value(i), Value(i)});
    engine_ = std::make_unique<middleware::CachedQueryEngine>(
        db_, middleware::CachedQueryEngine::Options{});
    server::ServerConfig config;
    config.port = 0;
    config.cdc_publish = true;
    server_ = std::make_unique<server::QcServer>(*engine_, config);
    server_->Start();
  }

  void TearDown() override {
    if (server_) {
      server_->RequestDrain();
      server_->Wait();
    }
  }

  ClientCacheConfig Config() {
    ClientCacheConfig config;
    config.lease_ttl = 30s;
    config.now = [this] { return now_; };
    return config;
  }

  std::unique_ptr<ClientCache> MakeClient(ClientCacheConfig config) {
    auto client = std::make_unique<ClientCache>("127.0.0.1", server_->port(), std::move(config));
    if (config_subscribed_) {
      // Wait for the CDC subscription before caching anything, so pushes
      // cannot slip past an unregistered stream in the assertions below.
      const auto deadline = std::chrono::steady_clock::now() + 5s;
      while (!client->subscription_healthy() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
      }
      EXPECT_TRUE(client->subscription_healthy());
    }
    return client;
  }

  storage::Database db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  std::unique_ptr<server::QcServer> server_;
  cache::TimePoint now_{};
  bool config_subscribed_ = true;
};

constexpr const char* kCount = "SELECT COUNT(*) FROM T WHERE N <= 10";

TEST_F(ClientCacheTest, LocalHitsOffloadOrigin) {
  auto client = MakeClient(Config());
  EXPECT_FALSE(client->Execute(kCount).cache_hit);  // origin miss too
  EXPECT_TRUE(client->Execute(kCount).cache_hit);
  EXPECT_TRUE(client->Execute(kCount).cache_hit);
  const auto stats = client->stats();
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.local_hits, 2u);
  EXPECT_EQ(stats.origin_requests, 1u);
  // The origin saw exactly one execution.
  EXPECT_EQ(engine_->stats().executions, 1u);
}

TEST_F(ClientCacheTest, PushedInvalidationArrivesWithoutPolling) {
  auto client = MakeClient(Config());
  EXPECT_EQ(client->Execute(kCount).result->ScalarAt(0, 0), Value(10));
  EXPECT_EQ(client->entry_count(), 1u);

  // DML from a *different* session: the only way our client can learn of
  // it is the pushed CDC record on its subscription.
  server::QcClient writer;
  writer.Connect("127.0.0.1", server_->port());
  EXPECT_EQ(writer.Dml("UPDATE T SET N = 100 WHERE ID = 1"), 1u);
  writer.Close();

  EXPECT_TRUE(client->WaitForInvalidation(kCount, {}, 5s));
  EXPECT_GE(client->stats().push_invalidations, 1u);
  EXPECT_GT(client->last_push_seq(), 0u);

  auto fresh = client->Execute(kCount);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(9));
  EXPECT_EQ(client->stats().lease_expiries, 0u);  // push, not clock, did the work
}

TEST_F(ClientCacheTest, HealthySubscriptionServesBeyondLease) {
  auto client = MakeClient(Config());
  client->Execute(kCount);
  now_ += 3600s;  // far past the lease — but the push channel is healthy
  EXPECT_TRUE(client->Execute(kCount).cache_hit);
  EXPECT_EQ(client->stats().lease_expiries, 0u);
}

TEST_F(ClientCacheTest, LeaseBoundsStalenessWithoutSubscription) {
  config_subscribed_ = false;
  ClientCacheConfig config = Config();
  config.enable_subscription = false;  // the paper's original client tier
  auto client = MakeClient(std::move(config));

  EXPECT_EQ(client->Execute(kCount).result->ScalarAt(0, 0), Value(10));

  server::QcClient writer;
  writer.Connect("127.0.0.1", server_->port());
  writer.Dml("UPDATE T SET N = 100 WHERE ID = 1");
  writer.Close();

  // No push channel: the client keeps serving its copy (stale, by design)
  // while the lease lasts...
  auto local = client->Execute(kCount);
  EXPECT_TRUE(local.cache_hit);
  EXPECT_EQ(local.result->ScalarAt(0, 0), Value(10));

  // ...and refetches once the lease expires.
  now_ += 31s;
  auto fresh = client->Execute(kCount);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(9));
  EXPECT_EQ(client->stats().lease_expiries, 1u);
}

TEST_F(ClientCacheTest, DmlInvalidatesLocallyForReadYourWrites) {
  auto client = MakeClient(Config());
  EXPECT_EQ(client->Execute(kCount).result->ScalarAt(0, 0), Value(10));
  // Our own write drops our copy immediately — no round-trip wait.
  EXPECT_EQ(client->Dml("UPDATE T SET N = 100 WHERE ID = 1"), 1u);
  EXPECT_EQ(client->entry_count(), 0u);
  EXPECT_EQ(client->Execute(kCount).result->ScalarAt(0, 0), Value(9));
}

TEST_F(ClientCacheTest, RefreshDropsLocalCopyOnly) {
  auto client = MakeClient(Config());
  client->Execute(kCount);
  client->Refresh(kCount);
  auto outcome = client->Execute(kCount);
  EXPECT_FALSE(outcome.cache_hit);  // local refetch...
  EXPECT_EQ(client->stats().origin_requests, 2u);
  EXPECT_EQ(engine_->stats().cache_hits, 1u);  // ...served by the ORIGIN's cache
}

TEST_F(ClientCacheTest, ParamsAreSeparateEntries) {
  auto client = MakeClient(Config());
  const char* by_param = "SELECT COUNT(*) FROM T WHERE N <= $1";
  client->Execute(by_param, {Value(5)});
  client->Execute(by_param, {Value(15)});
  EXPECT_EQ(client->entry_count(), 2u);
  EXPECT_TRUE(client->Execute(by_param, {Value(5)}).cache_hit);
}

TEST_F(ClientCacheTest, LruBoundsClientFootprint) {
  ClientCacheConfig config = Config();
  config.max_entries = 2;
  auto client = MakeClient(std::move(config));
  const char* by_param = "SELECT COUNT(*) FROM T WHERE N <= $1";
  client->Execute(by_param, {Value(1)});
  client->Execute(by_param, {Value(2)});
  client->Execute(by_param, {Value(3)});
  EXPECT_LE(client->entry_count(), 2u);
  // The first entry was evicted locally: the next request goes to the
  // origin again (whose own cache may well hit — server-side).
  const auto before = client->stats().origin_requests;
  client->Execute(by_param, {Value(1)});
  EXPECT_EQ(client->stats().origin_requests, before + 1);
}

}  // namespace
}  // namespace qc::cluster
