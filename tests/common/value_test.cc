#include "common/value.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace qc {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v, Value::Null());
}

TEST(Value, TypePredicates) {
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(3).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
  EXPECT_TRUE(Value(3).is_numeric());
  EXPECT_TRUE(Value(3.5).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
  EXPECT_FALSE(Value::Null().is_numeric());
}

TEST(Value, Accessors) {
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_DOUBLE_EQ(Value(42).numeric(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).numeric(), 2.5);
}

TEST(Value, WrongAccessorThrows) {
  EXPECT_THROW(Value("x").as_int(), std::bad_variant_access);
  EXPECT_THROW(Value(1).as_string(), std::bad_variant_access);
  EXPECT_THROW(Value::Null().as_double(), std::bad_variant_access);
}

TEST(Value, IntComparison) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_GT(Value(5), Value(-5));
  EXPECT_EQ(Value(7), Value(7));
  EXPECT_LE(Value(7), Value(7));
  EXPECT_GE(Value(7), Value(7));
  EXPECT_NE(Value(7), Value(8));
}

TEST(Value, CrossNumericComparison) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_LT(Value(2), Value(2.5));
  EXPECT_GT(Value(3.5), Value(3));
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_EQ(Value("abc"), Value("abc"));
  EXPECT_LT(Value("ab"), Value("abc"));
}

TEST(Value, NullSortsFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{-100000}));
  EXPECT_LT(Value::Null(), Value(""));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, NumericSortsBeforeString) {
  EXPECT_LT(Value(999999), Value(""));
  EXPECT_LT(Value(1.5), Value("0"));
}

TEST(Value, ToStringRendersAllTypes) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(Value, ToStringEscapesQuotes) {
  EXPECT_EQ(Value("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value("''").ToString(), "''''''");
}

TEST(Value, ToStringIsInjectiveAcrossTypes) {
  // '42' (string) and 42 (int) must render differently.
  EXPECT_NE(Value("42").ToString(), Value(42).ToString());
  EXPECT_NE(Value("NULL").ToString(), Value::Null().ToString());
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());  // 2 == 2.0
  EXPECT_EQ(Value("x").Hash(), Value("x").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(Value, WorksAsUnorderedKey) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(1));
  set.insert(Value("1"));
  set.insert(Value::Null());
  set.insert(Value(1));  // duplicate
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.count(Value(1)));
  EXPECT_TRUE(set.count(Value("1")));
}

TEST(Value, WorksAsOrderedKey) {
  std::map<Value, int> map;
  map[Value(3)] = 1;
  map[Value::Null()] = 2;
  map[Value("a")] = 3;
  map[Value(1.5)] = 4;
  EXPECT_EQ(map.begin()->second, 2);           // NULL first
  EXPECT_EQ(std::prev(map.end())->second, 3);  // string last
}

TEST(Value, StreamOutput) {
  std::ostringstream os;
  os << Value(5) << " " << Value("a");
  EXPECT_EQ(os.str(), "5 'a'");
}

}  // namespace
}  // namespace qc
