#include "common/strings.h"

#include <gtest/gtest.h>

namespace qc {
namespace {

TEST(ToUpper, Basics) {
  EXPECT_EQ(ToUpper("select"), "SELECT");
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_EQ(ToUpper(""), "");
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool match;
};

class LikeMatchTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeMatchTest, Matches) {
  const LikeCase& c = GetParam();
  EXPECT_EQ(LikeMatch(c.text, c.pattern), c.match)
      << "text='" << c.text << "' pattern='" << c.pattern << "'";
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeMatchTest,
    ::testing::Values(
        // exact
        LikeCase{"ready", "ready", true}, LikeCase{"ready", "Ready", false},
        LikeCase{"", "", true}, LikeCase{"a", "", false},
        // percent
        LikeCase{"customerLevel", "%", true}, LikeCase{"", "%", true},
        LikeCase{"abcdef", "abc%", true}, LikeCase{"abcdef", "%def", true},
        LikeCase{"abcdef", "%cd%", true}, LikeCase{"abcdef", "%x%", false},
        LikeCase{"abcdef", "a%f", true}, LikeCase{"abcdef", "a%x", false},
        LikeCase{"aaa", "%a", true}, LikeCase{"aaa", "a%a%a", true},
        LikeCase{"aaa", "a%a%a%a", false},
        // underscore
        LikeCase{"abc", "a_c", true}, LikeCase{"abc", "___", true},
        LikeCase{"abc", "__", false}, LikeCase{"abc", "____", false},
        LikeCase{"abc", "_b_", true},
        // mixed
        LikeCase{"classifier", "class%r", true}, LikeCase{"classifier", "c_ass%", true},
        LikeCase{"promotion", "%o_ion", true},
        // backtracking stress
        LikeCase{"aaaaaaaaab", "%aab", true}, LikeCase{"aaaaaaaaab", "%aac", false},
        LikeCase{"mississippi", "%iss%ppi", true}, LikeCase{"mississippi", "%iss%ippx", false}));

TEST(Join, Basics) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "|"), "a|b|c");
}

}  // namespace
}  // namespace qc
