#include "cache/gps_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cache/memory_store.h"
#include "common/error.h"

namespace qc::cache {
namespace {

using namespace std::chrono_literals;

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

std::string Data(const CacheValuePtr& v) {
  return std::static_pointer_cast<const StringValue>(v)->data();
}

// --- MemoryStore -------------------------------------------------------------

TEST(MemoryStore, PutGetErase) {
  MemoryStore store(1 << 20, 100);
  EXPECT_TRUE(store.Put("a", Str("1"), nullptr));
  EXPECT_EQ(Data(store.Get("a")), "1");
  EXPECT_EQ(store.Get("b"), nullptr);
  EXPECT_TRUE(store.Erase("a"));
  EXPECT_FALSE(store.Erase("a"));
  EXPECT_EQ(store.entry_count(), 0u);
}

TEST(MemoryStore, ReplaceUpdatesBytes) {
  MemoryStore store(1 << 20, 100);
  store.Put("a", Str("xx"), nullptr);
  const size_t before = store.byte_count();
  store.Put("a", Str(std::string(1000, 'y')), nullptr);
  EXPECT_GT(store.byte_count(), before);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(Data(store.Get("a")).size(), 1000u);
}

TEST(MemoryStore, LruEvictionOrder) {
  MemoryStore store(1 << 20, 3);
  std::vector<MemoryStore::Evicted> evicted;
  store.Put("a", Str("1"), &evicted);
  store.Put("b", Str("2"), &evicted);
  store.Put("c", Str("3"), &evicted);
  store.Get("a");  // refresh a; b is now LRU
  store.Put("d", Str("4"), &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, "b");
  EXPECT_EQ(store.KeysByRecency().front(), "d");
}

TEST(MemoryStore, PeekDoesNotTouchLru) {
  MemoryStore store(1 << 20, 2);
  std::vector<MemoryStore::Evicted> evicted;
  store.Put("a", Str("1"), &evicted);
  store.Put("b", Str("2"), &evicted);
  store.Peek("a");  // no refresh: a stays LRU
  store.Put("c", Str("3"), &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].key, "a");
}

TEST(MemoryStore, ByteBudgetEviction) {
  MemoryStore store(3000, 100);
  std::vector<MemoryStore::Evicted> evicted;
  store.Put("a", Str(std::string(1000, 'a')), &evicted);
  store.Put("b", Str(std::string(1000, 'b')), &evicted);
  store.Put("c", Str(std::string(1000, 'c')), &evicted);
  EXPECT_FALSE(evicted.empty());
  EXPECT_LE(store.byte_count(), 3000u);
}

TEST(MemoryStore, OversizedObjectRejected) {
  MemoryStore store(100, 10);
  EXPECT_FALSE(store.Put("big", Str(std::string(1000, 'x')), nullptr));
  EXPECT_EQ(store.entry_count(), 0u);
}

// --- DiskStore ---------------------------------------------------------------

class DiskStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "qc_disk_store_test";
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_F(DiskStoreTest, PutGetRoundTrip) {
  DiskStore store(dir_, 1 << 20);
  EXPECT_TRUE(store.Put("k", "payload with\nnewlines", nullptr));
  auto data = store.Get("k");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(*data, "payload with\nnewlines");
  EXPECT_FALSE(store.Get("missing").has_value());
}

TEST_F(DiskStoreTest, ReplaceAndErase) {
  DiskStore store(dir_, 1 << 20);
  store.Put("k", "v1", nullptr);
  store.Put("k", "v2", nullptr);
  EXPECT_EQ(store.entry_count(), 1u);
  EXPECT_EQ(*store.Get("k"), "v2");
  EXPECT_TRUE(store.Erase("k"));
  EXPECT_FALSE(store.Get("k").has_value());
  // The file is gone from disk too.
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator{}),
            0);
}

TEST_F(DiskStoreTest, BudgetEvictsLru) {
  DiskStore store(dir_, 2500);
  std::vector<std::string> evicted;
  store.Put("a", std::string(1000, 'a'), &evicted);
  store.Put("b", std::string(1000, 'b'), &evicted);
  store.Get("a");
  store.Put("c", std::string(1000, 'c'), &evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "b");
  EXPECT_LE(store.byte_count(), 2500u);
}

TEST_F(DiskStoreTest, StartsClean) {
  {
    DiskStore store(dir_, 1 << 20);
    store.Put("stale", "junk", nullptr);
    // Destructor removes files.
  }
  std::ofstream(dir_ / "orphan.obj") << "leftover";
  DiskStore store(dir_, 1 << 20);
  EXPECT_EQ(store.entry_count(), 0u);
  EXPECT_FALSE(store.Get("stale").has_value());
}

// --- GpsCache ------------------------------------------------------------------

TEST(GpsCache, MemoryModeBasics) {
  GpsCache cache(GpsCacheConfig{});
  EXPECT_TRUE(cache.Put("q1", Str("result")));
  EXPECT_EQ(Data(cache.Get("q1")), "result");
  EXPECT_TRUE(cache.Contains("q1"));
  EXPECT_TRUE(cache.Invalidate("q1"));
  EXPECT_FALSE(cache.Invalidate("q1"));
  EXPECT_EQ(cache.Get("q1"), nullptr);
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(GpsCache, ClearRemovesEverythingAndNotifies) {
  GpsCache cache(GpsCacheConfig{});
  std::vector<std::pair<std::string, RemovalCause>> removals;
  cache.SetRemovalListener(
      [&](const std::string& key, RemovalCause cause) { removals.emplace_back(key, cause); });
  cache.Put("a", Str("1"));
  cache.Put("b", Str("2"));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  ASSERT_EQ(removals.size(), 2u);
  EXPECT_EQ(removals[0].second, RemovalCause::kCleared);
}

TEST(GpsCache, ExpirationWithInjectedClock) {
  TimePoint now{};
  GpsCacheConfig config;
  config.now = [&now] { return now; };
  // kLru expires eagerly inside Get (exclusive lock); the kClock lazy
  // counterpart is covered in clock_eviction_test.cc.
  config.eviction = EvictionPolicy::kLru;
  GpsCache cache(config);
  cache.Put("short", Str("1"), 10s);
  cache.Put("long", Str("2"), 100s);
  cache.Put("forever", Str("3"));

  now += 11s;
  EXPECT_EQ(cache.Get("short"), nullptr);  // expired
  EXPECT_NE(cache.Get("long"), nullptr);
  EXPECT_NE(cache.Get("forever"), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1u);

  now += 100s;
  EXPECT_EQ(cache.ExpireDue(), 1u);  // long
  EXPECT_FALSE(cache.Contains("long"));
  EXPECT_TRUE(cache.Contains("forever"));
}

TEST(GpsCache, ReplacementRefreshesExpiration) {
  TimePoint now{};
  GpsCacheConfig config;
  config.now = [&now] { return now; };
  GpsCache cache(config);
  cache.Put("k", Str("v1"), 10s);
  now += 5s;
  cache.Put("k", Str("v2"), 10s);  // new generation
  now += 7s;                       // old deadline passed, new one not
  EXPECT_EQ(Data(cache.Get("k")), "v2");
  now += 5s;
  EXPECT_EQ(cache.Get("k"), nullptr);
}

TEST(GpsCache, ReplacementDoesNotNotifyRemoval) {
  GpsCache cache(GpsCacheConfig{});
  int removals = 0;
  cache.SetRemovalListener([&](const std::string&, RemovalCause) { ++removals; });
  cache.Put("k", Str("v1"));
  cache.Put("k", Str("v2"));
  EXPECT_EQ(removals, 0);
  EXPECT_EQ(Data(cache.Get("k")), "v2");
}

TEST(GpsCache, EvictionNotifiesListener) {
  GpsCacheConfig config;
  config.memory_max_entries = 2;
  GpsCache cache(config);
  std::vector<std::string> evicted;
  cache.SetRemovalListener([&](const std::string& key, RemovalCause cause) {
    if (cause == RemovalCause::kEvicted) evicted.push_back(key);
  });
  cache.Put("a", Str("1"));
  cache.Put("b", Str("2"));
  cache.Put("c", Str("3"));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(GpsCache, DiskModeRoundTrip) {
  GpsCacheConfig config;
  config.mode = CacheMode::kDisk;
  config.disk_directory =
      (std::filesystem::temp_directory_path() / "qc_gps_disk_test").string();
  config.deserializer = &StringValue::Deserialize;
  GpsCache cache(config);
  cache.Put("k", Str("disk payload"));
  EXPECT_EQ(Data(cache.Get("k")), "disk payload");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_GT(cache.disk_bytes(), 0u);
}

TEST(GpsCache, HybridSpillsAndPromotes) {
  GpsCacheConfig config;
  config.mode = CacheMode::kHybrid;
  config.memory_max_entries = 2;
  config.disk_directory =
      (std::filesystem::temp_directory_path() / "qc_gps_hybrid_test").string();
  config.deserializer = &StringValue::Deserialize;
  GpsCache cache(config);
  int full_evictions = 0;
  cache.SetRemovalListener([&](const std::string&, RemovalCause cause) {
    if (cause == RemovalCause::kEvicted) ++full_evictions;
  });

  cache.Put("a", Str("A"));
  cache.Put("b", Str("B"));
  cache.Put("c", Str("C"));  // a spills to disk, not evicted
  EXPECT_EQ(full_evictions, 0);
  EXPECT_EQ(cache.stats().spills, 1u);
  EXPECT_EQ(cache.entry_count(), 3u);

  // Disk hit promotes back into memory (spilling someone else).
  EXPECT_EQ(Data(cache.Get("a")), "A");
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(Data(cache.Get("a")), "A");  // now a memory hit
  EXPECT_EQ(cache.stats().memory_hits, 1u);
}

TEST(GpsCache, DiskModeRequiresConfig) {
  GpsCacheConfig config;
  config.mode = CacheMode::kDisk;
  EXPECT_THROW(GpsCache cache(config), CacheError);
  config.disk_directory = (std::filesystem::temp_directory_path() / "qc_gps_cfg").string();
  EXPECT_THROW(GpsCache cache(config), CacheError);  // missing deserializer
}

// --- TransactionLog ---------------------------------------------------------------

class TxLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() / "qc_txlog_test.log").string();
    std::filesystem::remove(path_);
  }
  std::string ReadAll() {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }
  std::string path_;
};

TEST_F(TxLogTest, EveryRecordPolicyFlushesImmediately) {
  TransactionLog log(path_, LogFlushPolicy::kEveryRecord);
  log.Append("hit", "q1");
  log.Append("miss", "q2", "detail");
  EXPECT_EQ(log.flushes(), 2u);
  const std::string contents = ReadAll();
  EXPECT_NE(contents.find("hit q1"), std::string::npos);
  EXPECT_NE(contents.find("miss q2 detail"), std::string::npos);
}

TEST_F(TxLogTest, BufferedPolicyDefersUntilThreshold) {
  TransactionLog log(path_, LogFlushPolicy::kBuffered, 1 << 20);
  log.Append("hit", "q1");
  EXPECT_EQ(log.flushes(), 0u);
  EXPECT_EQ(ReadAll(), "");  // nothing on disk yet: the §3 durability trade
  log.Flush();
  EXPECT_EQ(log.flushes(), 1u);
  EXPECT_NE(ReadAll().find("hit q1"), std::string::npos);
}

TEST_F(TxLogTest, BufferedPolicyFlushesAtThreshold) {
  TransactionLog log(path_, LogFlushPolicy::kBuffered, 64);
  for (int i = 0; i < 10; ++i) log.Append("op", "key-with-some-length");
  EXPECT_GT(log.flushes(), 0u);
}

TEST_F(TxLogTest, DestructorFlushesManualPolicy) {
  {
    TransactionLog log(path_, LogFlushPolicy::kManual);
    log.Append("put", "q9");
  }
  EXPECT_NE(ReadAll().find("put q9"), std::string::npos);
}

TEST_F(TxLogTest, RecordsCount) {
  TransactionLog log(path_, LogFlushPolicy::kManual);
  for (int i = 0; i < 5; ++i) log.Append("op", "k");
  EXPECT_EQ(log.records_written(), 5u);
}

TEST_F(TxLogTest, UnwritablePathThrows) {
  EXPECT_THROW(TransactionLog("/nonexistent-dir/x/y.log", LogFlushPolicy::kManual), CacheError);
}

TEST(GpsCache, TransactionLoggingRecordsOperations) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "qc_gps_log_test.log").string();
  std::filesystem::remove(path);
  {
    GpsCacheConfig config;
    config.log_path = path;
    config.log_policy = LogFlushPolicy::kEveryRecord;
    GpsCache cache(config);
    cache.Put("q1", Str("v"));
    cache.Get("q1");
    cache.Get("q2");
    cache.Invalidate("q1");
    cache.Clear();
  }
  std::ifstream in(path);
  const std::string contents{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_NE(contents.find("put q1"), std::string::npos);
  EXPECT_NE(contents.find("hit q1"), std::string::npos);
  EXPECT_NE(contents.find("miss q2"), std::string::npos);
  EXPECT_NE(contents.find("invalidate q1"), std::string::npos);
  EXPECT_NE(contents.find("clear *"), std::string::npos);
}

}  // namespace
}  // namespace qc::cache
