// Concurrency stress for the GPS cache: the paper's rule server is "a
// single, multithreaded process", so the cache must tolerate concurrent
// gets, puts, invalidations, clears and expiration sweeps. These tests
// assert freedom from crashes/corruption and basic sanity of the counters
// (run them under TSan for the full story).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cache/gps_cache.h"
#include "dup/engine.h"
#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::cache {
namespace {

using namespace std::chrono_literals;

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

class GpsCacheConcurrency : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(GpsCacheConcurrency, ParallelMixedOperations) {
  GpsCacheConfig config;
  config.memory_max_entries = 256;  // force concurrent evictions
  config.eviction = GetParam();
  GpsCache cache(config);

  std::atomic<uint64_t> listener_calls{0};
  cache.SetRemovalListener(
      [&](const std::string&, RemovalCause) { listener_calls.fetch_add(1); });

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1);
      while (started.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "key" + std::to_string((t * 31 + i) % 512);
        switch (i % 5) {
          case 0:
            cache.Put(key, Str("v" + std::to_string(i)), i % 3 == 0 ? std::optional(50ms)
                                                                    : std::nullopt);
            break;
          case 1:
          case 2: {
            auto hit = cache.Get(key);
            if (hit) {
              // The value, if present, must be intact (no torn reads).
              auto data = std::static_pointer_cast<const StringValue>(hit)->data();
              ASSERT_FALSE(data.empty());
              ASSERT_EQ(data[0], 'v');
            }
            break;
          }
          case 3:
            cache.Invalidate(key);
            break;
          default:
            if (i % 997 == 0) {
              cache.Clear();
            } else {
              cache.ExpireDue();
            }
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lookups, static_cast<uint64_t>(kThreads) * kOpsPerThread * 2 / 5);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(cache.entry_count(), 512u);
  EXPECT_GT(listener_calls.load(), 0u);
}

// Both locking disciplines: kClock resolves hits under the shared shard
// lock, kLru under the exclusive one. The exactly-once counter accounting
// above must hold either way.
INSTANTIATE_TEST_SUITE_P(EvictionModes, GpsCacheConcurrency,
                         ::testing::Values(EvictionPolicy::kLru, EvictionPolicy::kClock),
                         [](const ::testing::TestParamInfo<EvictionPolicy>& info) {
                           return std::string(EvictionPolicyName(info.param));
                         });

TEST(GpsCacheListener, ListenerReentrancyIsSafe) {
  // A removal listener that calls back into the cache (like the DUP engine
  // unregistering) must not deadlock: notifications run outside the lock.
  GpsCache cache(GpsCacheConfig{});
  cache.SetRemovalListener([&](const std::string& key, RemovalCause cause) {
    if (cause == RemovalCause::kInvalidated) {
      (void)cache.Contains(key);  // re-enters the cache mutex
    }
  });
  cache.Put("a", Str("1"));
  EXPECT_TRUE(cache.Invalidate("a"));
}

TEST(DupEngineConcurrency, ParallelRegistrationAndEvents) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                     {"Y", ValueType::kInt, false}}));
  for (int i = 0; i < 64; ++i) table.Insert({Value(i), Value(i)});

  GpsCache cache(GpsCacheConfig{});
  dup::DupEngine::Options options;
  options.policy = dup::InvalidationPolicy::kValueAware;
  dup::DupEngine engine(cache, options);

  std::vector<std::shared_ptr<const sql::BoundQuery>> queries;
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    auto query = sql::ParseAndBind(
        "SELECT COUNT(*) FROM T WHERE X BETWEEN " + std::to_string(i * 4) + " AND " +
            std::to_string(i * 4 + 3),
        db);
    keys.push_back(sql::Fingerprint(query->stmt(), {}));
    queries.push_back(std::move(query));
  }

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    storage::UpdateEvent event;
    event.kind = storage::UpdateEvent::Kind::kUpdate;
    event.table = "T";
    int i = 0;
    while (!stop.load()) {
      event.changes = {{0, Value(i % 64), Value((i + 7) % 64)}};
      engine.OnUpdate(event);
      ++i;
    }
  });

  for (int round = 0; round < 200; ++round) {
    for (size_t i = 0; i < queries.size(); ++i) {
      cache.Put(keys[i], Str("r"));
      engine.RegisterQuery(keys[i], queries[i], {});
    }
  }
  stop.store(true);
  updater.join();

  EXPECT_LE(engine.stats().registered_queries, 16u);
  EXPECT_GT(engine.stats().update_events, 0u);
}

}  // namespace
}  // namespace qc::cache
