// Sharded GPS cache: routing, stats aggregation across shards, eviction
// fairness under the per-shard budget split, and the guarded-Put admission
// check (the publication step of the epoch-validation protocol).
#include <gtest/gtest.h>

#include <string>

#include "cache/gps_cache.h"

namespace qc::cache {
namespace {

using namespace std::chrono_literals;

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

std::string Key(int i) { return "key" + std::to_string(i); }

TEST(ShardedCache, StatsAggregateAcrossShards) {
  GpsCacheConfig config;
  config.shards = 4;
  GpsCache cache(config);
  ASSERT_EQ(cache.shard_count(), 4u);

  constexpr int kKeys = 256;
  for (int i = 0; i < kKeys; ++i) ASSERT_TRUE(cache.Put(Key(i), Str("v")));
  for (int i = 0; i < kKeys; ++i) EXPECT_TRUE(cache.Get(Key(i)) != nullptr);
  for (int i = 0; i < kKeys; ++i) EXPECT_FALSE(cache.Get("absent" + std::to_string(i)));

  const CacheStats total = cache.stats();
  EXPECT_EQ(total.puts, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(total.lookups, static_cast<uint64_t>(2 * kKeys));
  EXPECT_EQ(total.hits, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(total.misses, static_cast<uint64_t>(kKeys));
  EXPECT_EQ(cache.entry_count(), static_cast<size_t>(kKeys));

  // The aggregate equals the sum of the per-shard snapshots, and the keys
  // actually spread: no shard holds everything.
  CacheStats summed;
  size_t entries = 0;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    summed += cache.shard_stats(s);
    const size_t shard_entries = cache.shard_entry_count(s);
    EXPECT_GT(shard_entries, 0u);
    EXPECT_LT(shard_entries, static_cast<size_t>(kKeys));
    entries += shard_entries;
  }
  EXPECT_EQ(entries, static_cast<size_t>(kKeys));
  EXPECT_EQ(summed.puts, total.puts);
  EXPECT_EQ(summed.hits, total.hits);
  EXPECT_EQ(summed.misses, total.misses);
}

TEST(ShardedCache, EvictionFairnessAcrossShards) {
  GpsCacheConfig config;
  config.shards = 4;
  config.memory_max_entries = 64;  // 16 per shard
  GpsCache cache(config);

  constexpr int kKeys = 4096;
  for (int i = 0; i < kKeys; ++i) cache.Put(Key(i), Str("v"));

  // Every shard is at its split budget: the cache is full at the total
  // budget and no shard starved or hoarded.
  EXPECT_EQ(cache.entry_count(), 64u);
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    EXPECT_EQ(cache.shard_entry_count(s), 16u) << "shard " << s;
  }

  // Eviction work is spread roughly evenly (uniform keys → each shard saw
  // ~kKeys/4 puts and evicted all but 16 of them).
  const CacheStats total = cache.stats();
  EXPECT_EQ(total.evictions, static_cast<uint64_t>(kKeys - 64));
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    const CacheStats stats = cache.shard_stats(s);
    EXPECT_GT(stats.evictions, total.evictions / 8) << "shard " << s;
    EXPECT_LT(stats.evictions, total.evictions / 2) << "shard " << s;
  }
}

TEST(ShardedCache, PerShardLruKeepsHotKeys) {
  GpsCacheConfig config;
  config.shards = 2;
  config.memory_max_entries = 8;  // 4 per shard
  GpsCache cache(config);

  // Fill beyond budget while continuously touching key 0: it must survive
  // in its shard's LRU no matter what lands in the other shard.
  cache.Put(Key(0), Str("hot"));
  for (int i = 1; i < 64; ++i) {
    cache.Put(Key(i), Str("v"));
    EXPECT_TRUE(cache.Get(Key(0)) != nullptr) << "after put " << i;
  }
}

TEST(ShardedCache, GuardedPutRejectsAndCounts) {
  GpsCacheConfig config;
  config.shards = 4;
  GpsCache cache(config);

  EXPECT_FALSE(cache.Put("stale", Str("v"), std::nullopt, [] { return false; }));
  EXPECT_FALSE(cache.Contains("stale"));
  EXPECT_TRUE(cache.Put("fresh", Str("v"), std::nullopt, [] { return true; }));
  EXPECT_TRUE(cache.Contains("fresh"));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.admit_rejects, 1u);
  EXPECT_EQ(stats.puts, 1u);

  // A rejected Put must not disturb an existing entry.
  EXPECT_FALSE(cache.Put("fresh", Str("new"), std::nullopt, [] { return false; }));
  auto kept = std::static_pointer_cast<const StringValue>(cache.Get("fresh"));
  ASSERT_TRUE(kept != nullptr);
  EXPECT_EQ(kept->data(), "v");
}

TEST(ShardedCache, ClearCountsOnceAndEmptiesEveryShard) {
  GpsCacheConfig config;
  config.shards = 4;
  GpsCache cache(config);
  for (int i = 0; i < 64; ++i) cache.Put(Key(i), Str("v"));

  int removals = 0;
  cache.SetRemovalListener([&](const std::string&, RemovalCause cause) {
    EXPECT_EQ(cause, RemovalCause::kCleared);
    ++removals;
  });
  cache.Clear();
  EXPECT_EQ(removals, 64);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().clears, 1u);
}

TEST(ShardedCache, TtlExpiresPerShard) {
  GpsCacheConfig config;
  config.shards = 4;
  TimePoint now{};
  config.now = [&now] { return now; };
  GpsCache cache(config);

  for (int i = 0; i < 32; ++i) cache.Put(Key(i), Str("v"), 10ms);
  EXPECT_EQ(cache.entry_count(), 32u);
  now += 11ms;
  EXPECT_EQ(cache.ExpireDue(), 32u);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.stats().expirations, 32u);
}

}  // namespace
}  // namespace qc::cache
