// Hybrid-store edge cases: objects that fit on disk but not in memory,
// eviction cascades through both levels, and budget interactions.
#include <gtest/gtest.h>

#include <filesystem>

#include "cache/gps_cache.h"

namespace qc::cache {
namespace {

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

std::string Data(const CacheValuePtr& v) {
  return std::static_pointer_cast<const StringValue>(v)->data();
}

GpsCacheConfig HybridConfig(const char* tag, size_t memory_bytes, size_t disk_bytes) {
  GpsCacheConfig config;
  config.mode = CacheMode::kHybrid;
  config.memory_budget_bytes = memory_bytes;
  config.disk_budget_bytes = disk_bytes;
  config.disk_directory = (std::filesystem::temp_directory_path() / tag).string();
  config.deserializer = &StringValue::Deserialize;
  return config;
}

TEST(HybridEdge, ObjectTooBigForMemoryStillRejectedAtPut) {
  // Put goes to the memory level first in hybrid mode; an object larger
  // than the memory budget is rejected outright (the caller treats it as
  // uncacheable) rather than silently landing disk-only.
  GpsCache cache(HybridConfig("qc_hybrid_edge1", 1024, 1 << 20));
  EXPECT_FALSE(cache.Put("big", Str(std::string(10'000, 'x'))));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(HybridEdge, DiskBudgetBoundsSpillDepth) {
  // Memory holds ~2 entries, disk ~3: pushing 10 entries must keep the
  // total bounded and evict the oldest outright.
  GpsCacheConfig config = HybridConfig("qc_hybrid_edge2", 2200, 3300);
  GpsCache cache(config);
  int evicted = 0;
  cache.SetRemovalListener([&](const std::string&, RemovalCause cause) {
    if (cause == RemovalCause::kEvicted) ++evicted;
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.Put("key" + std::to_string(i), Str(std::string(1000, 'a' + i))));
  }
  EXPECT_GT(evicted, 0);
  EXPECT_LT(cache.entry_count(), 10u);
  EXPECT_LE(cache.disk_bytes(), 3300u);
  // The newest entry is always retrievable.
  ASSERT_NE(cache.Get("key9"), nullptr);
  EXPECT_EQ(Data(cache.Get("key9"))[0], 'a' + 9);
}

TEST(HybridEdge, SpilledEntryRoundTripsExactBytes) {
  GpsCache cache(HybridConfig("qc_hybrid_edge3", 1200, 1 << 20));
  std::string payload;
  for (int i = 0; i < 256; ++i) payload += static_cast<char>(i);  // all byte values
  cache.Put("binary", Str(payload));
  cache.Put("pusher", Str(std::string(1000, 'p')));  // spills "binary"
  EXPECT_GT(cache.stats().spills, 0u);
  ASSERT_NE(cache.Get("binary"), nullptr);
  EXPECT_EQ(Data(cache.Get("binary")), payload);
}

TEST(HybridEdge, InvalidateRemovesFromBothLevels) {
  GpsCache cache(HybridConfig("qc_hybrid_edge4", 1200, 1 << 20));
  cache.Put("a", Str(std::string(800, 'a')));
  cache.Put("b", Str(std::string(800, 'b')));  // a spills
  EXPECT_TRUE(cache.Invalidate("a"));           // disk-resident
  EXPECT_TRUE(cache.Invalidate("b"));           // memory-resident
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.disk_bytes(), 0u);
}

TEST(HybridEdge, PromoteSurvivesSpillBackEvictionCascade) {
  // Regression for the promote path: Get on a disk-resident key promotes
  // it into memory, which can evict another entry, whose spill-back can in
  // turn overflow the disk budget and evict a disk entry. The key being
  // promoted must never be the disk victim (it is erased from disk before
  // the spill-back runs) and its metadata must survive the cascade.
  GpsCacheConfig config = HybridConfig("qc_hybrid_edge_promote", 1 << 20, 1200);
  config.memory_max_entries = 1;
  GpsCache cache(config);
  std::vector<std::string> evicted;
  cache.SetRemovalListener([&](const std::string& key, RemovalCause cause) {
    if (cause == RemovalCause::kEvicted) evicted.push_back(key);
  });

  cache.Put("a", Str(std::string(100, 'a')));   // small: fits disk alongside one big entry
  cache.Put("b", Str(std::string(1000, 'b')));  // a spills (disk: a)
  cache.Put("c", Str(std::string(1000, 'c')));  // b spills (disk: a+b, just fits)
  ASSERT_EQ(cache.stats().spills, 2u);
  ASSERT_TRUE(evicted.empty());

  // Promote "a": memory evicts "c", whose spill-back (disk would hold b+c)
  // overflows the 1200-byte budget and evicts the disk LRU — "b", not the
  // just-promoted "a".
  ASSERT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(evicted, std::vector<std::string>{"b"});
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_EQ(Data(cache.Get("a")), std::string(100, 'a'));  // memory hit now
  EXPECT_EQ(cache.stats().memory_hits, 1u);
  EXPECT_NE(cache.Get("c"), nullptr);  // spilled back, still served
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(HybridEdge, ExpirationAppliesToSpilledEntries) {
  using namespace std::chrono_literals;
  TimePoint now{};
  GpsCacheConfig config = HybridConfig("qc_hybrid_edge5", 1200, 1 << 20);
  config.now = [&now] { return now; };
  GpsCache cache(config);
  cache.Put("a", Str(std::string(800, 'a')), 10s);
  cache.Put("b", Str(std::string(800, 'b')));  // spills a to disk
  now += 11s;
  EXPECT_EQ(cache.Get("a"), nullptr);  // expired on disk
  EXPECT_NE(cache.Get("b"), nullptr);
}

}  // namespace
}  // namespace qc::cache
