// CLOCK (second-chance) eviction: replacement quality vs. exact LRU, the
// lazy-expiry semantics of the shared-lock read path, hit safety under a
// concurrent eviction sweep, and the CacheStats reflection guarantees the
// striped hit counters rely on (docs/CONCURRENCY.md, "Lock-light hit
// path").
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "cache/gps_cache.h"
#include "cache/memory_store.h"
#include "common/rng.h"

namespace qc::cache {
namespace {

using namespace std::chrono_literals;

CacheValuePtr Str(const std::string& s) { return std::make_shared<StringValue>(s); }

std::string Data(const CacheValuePtr& v) {
  return std::static_pointer_cast<const StringValue>(v)->data();
}

GpsCacheConfig SmallCache(EvictionPolicy eviction, size_t max_entries) {
  GpsCacheConfig config;
  config.eviction = eviction;
  config.memory_max_entries = max_entries;
  return config;
}

// --- Replacement quality -----------------------------------------------------

/// Zipf(s=1) sampler over [0, n) via a precomputed CDF: the skewed re-use
/// distribution where replacement quality actually matters (a uniform
/// trace defeats every policy equally).
class Zipf {
 public:
  explicit Zipf(size_t n) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Next(Rng& rng) const {
    const double u = rng.UniformReal();
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

double ZipfHitRate(EvictionPolicy eviction, size_t budget, size_t keyspace, size_t ops) {
  GpsCache cache(SmallCache(eviction, budget));
  Zipf zipf(keyspace);
  Rng rng(42);  // identical trace for both policies
  for (size_t i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(zipf.Next(rng));
    if (!cache.Get(key)) cache.Put(key, Str(key));
  }
  return cache.stats().HitRate();
}

TEST(ClockEviction, ZipfHitRateWithinFivePointsOfLru) {
  const size_t kBudget = 128, kKeyspace = 1024, kOps = 20'000;
  const double lru = ZipfHitRate(EvictionPolicy::kLru, kBudget, kKeyspace, kOps);
  const double clock = ZipfHitRate(EvictionPolicy::kClock, kBudget, kKeyspace, kOps);
  // Second chance approximates LRU: on a skewed trace it must stay within
  // 5 percentage points of the exact policy at the same budget.
  EXPECT_GT(lru, 0.3) << "trace too easy/hard to discriminate policies";
  EXPECT_GE(clock, lru - 0.05) << "lru=" << lru << " clock=" << clock;
}

TEST(ClockEviction, HotKeySurvivesSweeps) {
  GpsCache cache(SmallCache(EvictionPolicy::kClock, 3));
  cache.Put("hot", Str("hot"));
  // Each iteration re-references the hot key and inserts a fresh cold one;
  // the sweep's second chance must always find a cold victim instead.
  for (int i = 0; i < 32; ++i) {
    ASSERT_NE(cache.Get("hot"), nullptr) << "iteration " << i;
    cache.Put("cold" + std::to_string(i), Str("c"));
  }
  EXPECT_TRUE(cache.Contains("hot"));
}

TEST(ClockEviction, OneShotScanDoesNotDisplaceWorkingSet) {
  // New entries start unreferenced, so a long one-shot scan (every key
  // touched once, never again) cannot push out keys that keep getting
  // re-referenced.
  GpsCache cache(SmallCache(EvictionPolicy::kClock, 4));
  cache.Put("a", Str("a"));
  cache.Put("b", Str("b"));
  for (int i = 0; i < 64; ++i) {
    cache.Get("a");
    cache.Get("b");
    cache.Put("scan" + std::to_string(i), Str("s"));
  }
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("b"));
}

// --- Lazy expiry (shared-lock read path) -------------------------------------

TEST(ClockEviction, ExpiredEntryServedAsMissAndReapedByNextWriter) {
  TimePoint now{};
  GpsCacheConfig config = SmallCache(EvictionPolicy::kClock, 100);
  config.now = [&now] { return now; };
  GpsCache cache(config);
  std::vector<std::pair<std::string, RemovalCause>> removals;
  cache.SetRemovalListener([&](const std::string& key, RemovalCause cause) {
    removals.push_back({key, cause});
  });

  cache.Put("short", Str("s"), 10s);
  cache.Put("forever", Str("f"));
  now += 11s;

  // The shared-lock read path serves the expired entry as a miss but does
  // not remove it — no writer has run yet.
  EXPECT_EQ(cache.Get("short"), nullptr);
  EXPECT_FALSE(cache.Contains("short"));
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.lazy_expired_misses, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.expirations, 0u);
  EXPECT_EQ(cache.entry_count(), 2u);  // still resident
  EXPECT_TRUE(removals.empty());

  // The next writer's expiry sweep reaps it.
  cache.Put("new", Str("n"));
  stats = cache.stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(cache.entry_count(), 2u);  // forever + new
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0].first, "short");
  EXPECT_EQ(removals[0].second, RemovalCause::kExpired);

  // A repeat miss on the already-reaped key is a plain miss, not lazy.
  EXPECT_EQ(cache.Get("short"), nullptr);
  EXPECT_EQ(cache.stats().lazy_expired_misses, 1u);
}

// --- Hit safety under concurrent eviction ------------------------------------

TEST(ClockEviction, HitNeverReturnsVictimizedValue) {
  // Readers race Get() against a writer whose fills continuously trigger
  // eviction sweeps. Every value is its own key, so a hit that handed back
  // a victim's (or any other) entry would be visible immediately. The
  // shared_ptr contract also guarantees a value obtained by a hit stays
  // alive after its entry is victimized.
  GpsCacheConfig config = SmallCache(EvictionPolicy::kClock, 64);
  config.shards = 1;  // one replacement domain = maximum sweep pressure
  GpsCache cache(config);
  constexpr int kKeyspace = 256;
  auto key_of = [](int i) { return "k" + std::to_string(i); };
  for (int i = 0; i < kKeyspace; ++i) cache.Put(key_of(i), Str(key_of(i)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> hits{0};
  std::atomic<int> corrupt{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string key = key_of(static_cast<int>(rng.Uniform(0, kKeyspace - 1)));
        if (CacheValuePtr value = cache.Get(key)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          if (Data(value) != key) corrupt.fetch_add(1);
        }
      }
    });
  }
  {
    Rng rng(7);
    for (int i = 0; i < 20'000; ++i) {
      const std::string key = key_of(static_cast<int>(rng.Uniform(0, kKeyspace - 1)));
      cache.Put(key, Str(key));  // every fill re-runs the sweep
    }
    stop.store(true);
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_GT(hits.load(), 0u);
}

// --- CacheStats reflection ---------------------------------------------------

TEST(CacheStatsReflection, OperatorPlusEqualsCoversEveryCounter) {
  // Assign each counter a distinct value through the mutable visitor, sum,
  // and require exactly 2x per field: a counter silently dropped from
  // operator+= (the bug this guards against) would come back 1x.
  CacheStats a;
  uint64_t seed = 1;
  a.ForEachCounter([&](const char*, uint64_t& value) { value = seed++; });
  ASSERT_GT(seed, 10u) << "visitor saw implausibly few counters";
  CacheStats b = a;
  b += a;
  seed = 1;
  b.ForEachCounter([&](const char* name, uint64_t value) {
    EXPECT_EQ(value, 2 * seed) << "operator+= dropped counter " << name;
    ++seed;
  });
}

TEST(CacheStatsReflection, ShardStatsSumToTotals) {
  for (EvictionPolicy eviction : {EvictionPolicy::kLru, EvictionPolicy::kClock}) {
    TimePoint now{};
    GpsCacheConfig config = SmallCache(eviction, 6);
    config.shards = 4;
    config.now = [&now] { return now; };
    GpsCache cache(config);

    // Touch as many counters as a memory-mode cache can: puts, replaces,
    // hits, misses, TTL expiry (eager and lazy), invalidations (single and
    // batched), evictions, admission rejects, clears.
    for (int i = 0; i < 32; ++i) cache.Put("k" + std::to_string(i), Str("v"));
    for (int i = 0; i < 32; ++i) cache.Get("k" + std::to_string(i));
    for (int i = 0; i < 8; ++i) cache.Get("absent" + std::to_string(i));
    cache.Put("ttl", Str("v"), 5s);
    now += 6s;
    cache.Get("ttl");
    cache.ExpireDue();
    cache.Put("guarded", Str("v"), std::nullopt, [] { return false; });
    // Invalidate keys straight after their Put: a just-inserted key is
    // protected from its own fill's sweep, so it is guaranteed present.
    for (int i = 0; i < 4; ++i) {
      const std::string key = "inv" + std::to_string(i);
      cache.Put(key, Str("v"));
      cache.Invalidate(key);
    }
    cache.Put("batched", Str("v"));
    cache.InvalidateBatch({"batched", "nope"});
    cache.Clear();

    const CacheStats total = cache.stats();
    CacheStats summed;
    for (size_t s = 0; s < cache.shard_count(); ++s) summed += cache.shard_stats(s);

    std::vector<std::pair<std::string, uint64_t>> lhs, rhs;
    total.ForEachCounter([&](const char* name, uint64_t v) { lhs.push_back({name, v}); });
    summed.ForEachCounter([&](const char* name, uint64_t v) { rhs.push_back({name, v}); });
    ASSERT_EQ(lhs.size(), rhs.size());
    for (size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].second, rhs[i].second)
          << "counter " << lhs[i].first << " diverges between stats() and shard sum ("
          << EvictionPolicyName(eviction) << ")";
    }
    // The workload actually exercised the interesting counters.
    EXPECT_GT(total.hits, 0u);
    EXPECT_GT(total.misses, 0u);
    EXPECT_GT(total.evictions, 0u);
    EXPECT_GT(total.expirations, 0u);
    EXPECT_EQ(total.admit_rejects, 1u);
    EXPECT_EQ(total.clears, 1u);
    EXPECT_GE(total.invalidations, 5u);
    if (eviction == EvictionPolicy::kClock) {
      EXPECT_GT(total.lazy_expired_misses, 0u);
    }
    EXPECT_EQ(total.hits + total.misses, total.lookups);
  }
}

}  // namespace
}  // namespace qc::cache
