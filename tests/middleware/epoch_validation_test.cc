// Deterministic reproduction of the miss→execute→register race and the
// update-epoch protocol that closes it (docs/CONCURRENCY.md): a result
// computed from pre-update data must never be published into the cache.
// The whole suite runs under both cache eviction policies — the guarded
// Put executes under the exclusive shard lock either way, but kClock adds
// shared-lock readers around it (the lock-light hit path), and the
// protocol must hold identically. The multi-threaded version of this
// property lives in tests/middleware/concurrent_stress_test.cc (ctest
// label "stress").
#include <gtest/gtest.h>

#include "middleware/query_engine.h"
#include "sql/fingerprint.h"

namespace qc::middleware {
namespace {

class EpochValidationTest : public ::testing::TestWithParam<cache::EvictionPolicy> {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable(
        "T", storage::Schema({{"K", ValueType::kInt, false}, {"V", ValueType::kInt, false}}));
    other_ = &db_.CreateTable("OTHER", storage::Schema({{"X", ValueType::kInt, false}}));
    for (int i = 0; i < 8; ++i) table_->Insert({Value(i), Value(0)});
    other_->Insert({Value(1)});
  }

  CachedQueryEngine::Options Opts() const {
    CachedQueryEngine::Options options;
    options.cache.eviction = GetParam();
    return options;
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
  storage::Table* other_ = nullptr;
};

TEST_P(EpochValidationTest, StaleResultIsRejectedByGuardedPut) {
  CachedQueryEngine engine(db_, Opts());
  auto q = engine.Prepare("SELECT V FROM T WHERE K = 3");
  const std::string key = sql::Fingerprint(q->stmt(), {});

  // Simulate the race window: snapshot + database read, then an update
  // lands before the result is registered/stored.
  auto snapshot = engine.dup_engine().SnapshotDependencies(q);
  auto stale = std::make_shared<const sql::ResultSet>(engine.ExecuteUncached(*q));
  engine.ExecuteDml("UPDATE T SET V = 42 WHERE K = 3");
  EXPECT_FALSE(snapshot.Current());

  engine.dup_engine().RegisterQuery(key, q, {});
  const bool stored =
      engine.cache().Put(key, std::make_shared<ResultValue>(stale), std::nullopt,
                         [&] { return snapshot.Current(); });
  EXPECT_FALSE(stored);
  EXPECT_FALSE(engine.cache().Contains(key));
  EXPECT_EQ(engine.cache_stats().admit_rejects, 1u);
  engine.dup_engine().UnregisterQuery(key);

  // The next Execute() misses, re-reads the database, and serves and
  // caches the post-update value.
  auto fresh = engine.Execute(q);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(42));
  EXPECT_TRUE(engine.Execute(q).cache_hit);
}

TEST_P(EpochValidationTest, CurrentSnapshotAdmitsTheResult) {
  CachedQueryEngine engine(db_, Opts());
  auto q = engine.Prepare("SELECT V FROM T WHERE K = 3");
  const std::string key = sql::Fingerprint(q->stmt(), {});

  auto snapshot = engine.dup_engine().SnapshotDependencies(q);
  auto result = std::make_shared<const sql::ResultSet>(engine.ExecuteUncached(*q));
  EXPECT_TRUE(snapshot.Current());

  engine.dup_engine().RegisterQuery(key, q, {});
  EXPECT_TRUE(engine.cache().Put(key, std::make_shared<ResultValue>(result), std::nullopt,
                                 [&] { return snapshot.Current(); }));
  EXPECT_TRUE(engine.cache().Contains(key));
}

TEST_P(EpochValidationTest, UnrelatedUpdatesDoNotInvalidateTheSnapshot) {
  CachedQueryEngine engine(db_, Opts());
  auto q = engine.Prepare("SELECT V FROM T WHERE K = 3");

  auto snapshot = engine.dup_engine().SnapshotDependencies(q);
  // A different table entirely: no dependency slot in common.
  engine.ExecuteDml("UPDATE OTHER SET X = 9 WHERE X = 1");
  EXPECT_TRUE(snapshot.Current());
}

TEST_P(EpochValidationTest, RowEventsAdvanceTheTableSlot) {
  CachedQueryEngine engine(db_, Opts());
  auto q = engine.Prepare("SELECT COUNT(*) FROM T");

  auto insert_snapshot = engine.dup_engine().SnapshotDependencies(q);
  engine.ExecuteDml("INSERT INTO T VALUES (100, 0)");
  EXPECT_FALSE(insert_snapshot.Current());

  auto delete_snapshot = engine.dup_engine().SnapshotDependencies(q);
  engine.ExecuteDml("DELETE FROM T WHERE K = 100");
  EXPECT_FALSE(delete_snapshot.Current());
}

TEST_P(EpochValidationTest, PolicyNoneNeverStampsEpochs) {
  // TTL-only caching deliberately serves stale results; epoch validation
  // must not discard anything.
  CachedQueryEngine::Options options = Opts();
  options.policy = dup::InvalidationPolicy::kNone;
  CachedQueryEngine engine(db_, options);
  auto q = engine.Prepare("SELECT V FROM T WHERE K = 3");

  auto snapshot = engine.dup_engine().SnapshotDependencies(q);
  engine.ExecuteDml("UPDATE T SET V = 7 WHERE K = 3");
  EXPECT_TRUE(snapshot.Current());
}

TEST_P(EpochValidationTest, FlushAllObservesEveryEvent) {
  // Policy I flushes the whole cache on any update, so any event anywhere
  // must reject an in-flight registration.
  CachedQueryEngine::Options options = Opts();
  options.policy = dup::InvalidationPolicy::kFlushAll;
  CachedQueryEngine engine(db_, options);
  auto q = engine.Prepare("SELECT V FROM T WHERE K = 3");

  auto snapshot = engine.dup_engine().SnapshotDependencies(q);
  engine.ExecuteDml("UPDATE OTHER SET X = 5 WHERE X = 1");
  EXPECT_FALSE(snapshot.Current());
}

INSTANTIATE_TEST_SUITE_P(EvictionModes, EpochValidationTest,
                         ::testing::Values(cache::EvictionPolicy::kLru,
                                           cache::EvictionPolicy::kClock),
                         [](const ::testing::TestParamInfo<cache::EvictionPolicy>& info) {
                           return std::string(cache::EvictionPolicyName(info.param));
                         });

}  // namespace
}  // namespace qc::middleware
