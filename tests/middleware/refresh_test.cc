// Paper Fig. 7, step 10: "result discard/update cache" — the refresh
// alternative to invalidation.
#include <gtest/gtest.h>

#include "middleware/query_engine.h"

namespace qc::middleware {
namespace {

class RefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                    {"Y", ValueType::kInt, false}}));
    for (int i = 1; i <= 10; ++i) table_->Insert({Value(i), Value(i)});
  }

  CachedQueryEngine MakeEngine(bool refresh) {
    CachedQueryEngine::Options options;
    options.refresh_on_invalidate = refresh;
    return CachedQueryEngine(db_, options);
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(RefreshTest, AffectedResultIsUpdatedNotDiscarded) {
  auto engine = MakeEngine(true);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= 5");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(5));

  table_->Update(0, 0, Value(100));  // row leaves the predicate
  // The very next read is a HIT with the NEW value: the update path
  // refreshed the cache eagerly.
  auto outcome = engine.Execute(query);
  EXPECT_TRUE(outcome.cache_hit);
  EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(4));
  EXPECT_EQ(engine.stats().refresh_executions, 1u);
  EXPECT_EQ(engine.dup_stats().refreshes, 1u);
  EXPECT_EQ(engine.dup_stats().invalidations, 0u);
}

TEST_F(RefreshTest, ValueAwareGateStillApplies) {
  auto engine = MakeEngine(true);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= 5");
  engine.Execute(query);
  table_->Update(9, 0, Value(50));  // 10 -> 50 stays outside the predicate
  EXPECT_EQ(engine.stats().refresh_executions, 0u);  // nothing to refresh
  EXPECT_TRUE(engine.Execute(query).cache_hit);
}

TEST_F(RefreshTest, InsertsAndDeletesAlsoRefresh) {
  auto engine = MakeEngine(true);
  auto query = engine.Prepare("SELECT SUM(Y) FROM T WHERE X <= 3");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(6));
  table_->Insert({Value(2), Value(100)});
  auto outcome = engine.Execute(query);
  EXPECT_TRUE(outcome.cache_hit);
  EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(106));
  table_->Delete(0);  // row (1,1)
  outcome = engine.Execute(query);
  EXPECT_TRUE(outcome.cache_hit);
  EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(105));
}

TEST_F(RefreshTest, ParameterizedEntriesRefreshWithTheirOwnParams) {
  auto engine = MakeEngine(true);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= $1");
  engine.Execute(query, {Value(3)});
  engine.Execute(query, {Value(8)});
  table_->Update(0, 0, Value(100));  // affects both (X=1 left both ranges)
  EXPECT_EQ(engine.stats().refresh_executions, 2u);
  auto small = engine.Execute(query, {Value(3)});
  auto large = engine.Execute(query, {Value(8)});
  EXPECT_TRUE(small.cache_hit);
  EXPECT_TRUE(large.cache_hit);
  EXPECT_EQ(small.result->ScalarAt(0, 0), Value(2));
  EXPECT_EQ(large.result->ScalarAt(0, 0), Value(7));
}

TEST_F(RefreshTest, DisabledModeDiscardsAsBefore) {
  auto engine = MakeEngine(false);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= 5");
  engine.Execute(query);
  table_->Update(0, 0, Value(100));
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.stats().refresh_executions, 0u);
  EXPECT_EQ(engine.dup_stats().invalidations, 1u);
}

TEST_F(RefreshTest, FlushAllPolicyIgnoresRefresher) {
  CachedQueryEngine::Options options;
  options.refresh_on_invalidate = true;
  options.policy = dup::InvalidationPolicy::kFlushAll;
  CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T");
  engine.Execute(query);
  table_->Update(0, 1, Value(42));
  EXPECT_FALSE(engine.Execute(query).cache_hit);  // whole-cache flush
}

}  // namespace
}  // namespace qc::middleware
