// Multi-threaded stress for concurrent query serving (ctest label
// "stress"; run it under the tsan preset for the full story).
//
// The invariant under test is the one docs/CONCURRENCY.md promises:
// every query result — cached hit or fresh execution — reflects all
// updates acknowledged before the query began. The updater writes
// monotonically increasing versions into a row and publishes the latest
// acknowledged version *after* ExecuteDml returns; readers snapshot that
// acknowledgment before querying and require result >= snapshot. Without
// the update-epoch admission guard, a miss whose database read raced with
// an update caches the pre-update version, and some later reader observes
// result < snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "middleware/query_engine.h"

namespace qc::middleware {
namespace {

struct StressOutcome {
  uint64_t queries = 0;
  uint64_t hits = 0;
  uint64_t updates = 0;
  uint64_t stale_discards = 0;
  uint64_t violations = 0;
};

StressOutcome RunStress(dup::InvalidationPolicy policy, int query_threads, int keys,
                        int updates_total, size_t shards,
                        cache::EvictionPolicy eviction = cache::EvictionPolicy::kClock) {
  storage::Database db;
  auto& table = db.CreateTable(
      "KV", storage::Schema({{"K", ValueType::kInt, false}, {"V", ValueType::kInt, false}}));
  table.CreateHashIndex(0);
  for (int k = 0; k < keys; ++k) table.Insert({Value(k), Value(0)});

  CachedQueryEngine::Options options;
  options.policy = policy;
  options.cache.shards = shards;
  options.cache.eviction = eviction;
  // A small synthetic miss penalty widens the miss→execute→register window
  // the epoch guard protects, so the race is actually exercised.
  options.simulated_db_latency = std::chrono::microseconds(5);
  CachedQueryEngine engine(db, options);
  auto query = engine.Prepare("SELECT V FROM KV WHERE K = $1");

  // acked[k] = latest version whose ExecuteDml has returned. Released
  // after the DML call completes, acquired by readers before they query.
  std::vector<std::atomic<int64_t>> acked(keys);
  for (auto& a : acked) a.store(0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> total_queries{0};
  std::atomic<uint64_t> total_hits{0};
  std::atomic<uint64_t> violations{0};

  std::vector<std::thread> readers;
  readers.reserve(query_threads);
  for (int t = 0; t < query_threads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      uint64_t queries = 0;
      uint64_t hits = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int k = static_cast<int>(rng.Uniform(0, keys - 1));
        const int64_t before = acked[k].load(std::memory_order_acquire);
        auto outcome = engine.Execute(query, {Value(k)});
        ASSERT_EQ(outcome.result->row_count(), 1u);
        const int64_t seen = outcome.result->ScalarAt(0, 0).as_int();
        if (seen < before) violations.fetch_add(1);
        ++queries;
        if (outcome.cache_hit) ++hits;
      }
      total_queries.fetch_add(queries);
      total_hits.fetch_add(hits);
    });
  }

  Rng rng(7);
  int64_t version = 0;
  for (int u = 0; u < updates_total; ++u) {
    const int k = static_cast<int>(rng.Uniform(0, keys - 1));
    ++version;
    engine.ExecuteDml("UPDATE KV SET V = $1 WHERE K = $2", {Value(version), Value(k)});
    // ExecuteDml returned: the update is acknowledged — epochs stamped,
    // affected entries invalidated. Publish it to the readers.
    acked[k].store(version, std::memory_order_release);
    if (u % 8 == 0) std::this_thread::yield();  // let readers make progress
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();

  StressOutcome out;
  out.queries = total_queries.load();
  out.hits = total_hits.load();
  out.updates = static_cast<uint64_t>(updates_total);
  out.stale_discards = engine.stats().stale_discards.load();
  out.violations = violations.load();

  // Engine counter sanity under concurrency: every execution is a hit or a
  // database execution, and none were lost to racy increments.
  const QueryEngineStats stats = engine.stats();
  EXPECT_EQ(stats.executions.load(), stats.cache_hits.load() + stats.db_executions.load());
  return out;
}

TEST(ConcurrentStress, NoStaleHitsUnderPolicyIII) {
  const StressOutcome out =
      RunStress(dup::InvalidationPolicy::kValueAware, /*query_threads=*/4, /*keys=*/64,
                /*updates_total=*/2000, /*shards=*/8);
  EXPECT_EQ(out.violations, 0u)
      << out.violations << " of " << out.queries << " reads observed a value older than an "
      << "update acknowledged before the read began";
  // The run must actually exercise the machinery: real traffic, real hits.
  EXPECT_GT(out.queries, 1000u);
  EXPECT_GT(out.hits, 0u);
}

TEST(ConcurrentStress, NoStaleHitsUnderPolicyII) {
  const StressOutcome out =
      RunStress(dup::InvalidationPolicy::kValueUnaware, /*query_threads=*/4, /*keys=*/64,
                /*updates_total=*/1000, /*shards=*/8);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_GT(out.queries, 500u);
}

TEST(ConcurrentStress, NoStaleHitsUnderFlushAll) {
  const StressOutcome out =
      RunStress(dup::InvalidationPolicy::kFlushAll, /*query_threads=*/4, /*keys=*/64,
                /*updates_total=*/500, /*shards=*/8);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_GT(out.queries, 250u);
}

TEST(ConcurrentStress, SingleShardIsAlsoSafe) {
  // Sharding is a throughput feature, not a correctness one: the epoch
  // guard must hold on the single-lock cache too.
  const StressOutcome out =
      RunStress(dup::InvalidationPolicy::kValueAware, /*query_threads=*/4, /*keys=*/64,
                /*updates_total=*/1000, /*shards=*/1);
  EXPECT_EQ(out.violations, 0u);
}

TEST(ConcurrentStress, NoStaleHitsUnderExactLru) {
  // The default runs above exercise kClock (shared-lock hits). The exact
  // LRU configuration serializes hits through the exclusive lock — the
  // no-stale-hit invariant must hold identically there.
  const StressOutcome out =
      RunStress(dup::InvalidationPolicy::kValueAware, /*query_threads=*/4, /*keys=*/64,
                /*updates_total=*/1000, /*shards=*/8, cache::EvictionPolicy::kLru);
  EXPECT_EQ(out.violations, 0u);
  EXPECT_GT(out.queries, 500u);
}

}  // namespace
}  // namespace qc::middleware
