#include "middleware/metrics.h"

#include <gtest/gtest.h>

#include <thread>

#include "middleware/query_engine.h"

namespace qc::middleware {
namespace {

using namespace std::chrono_literals;

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0ns);
  EXPECT_EQ(h.Quantile(0.5), 0ns);
}

TEST(LatencyHistogram, MeanAndCount) {
  LatencyHistogram h;
  h.Record(100ns);
  h.Record(300ns);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.mean(), 200ns);
}

TEST(LatencyHistogram, QuantilesAreMonotoneUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(1us);
  for (int i = 0; i < 10; ++i) h.Record(1ms);
  // p50 bounds the fast mass; p99 reaches the slow tail.
  EXPECT_LE(h.Quantile(0.5), 4us);
  EXPECT_GE(h.Quantile(0.5), 1us);
  EXPECT_GE(h.Quantile(0.99), 1ms);
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.95));
  EXPECT_LE(h.Quantile(0.95), h.Quantile(0.99));
}

TEST(LatencyHistogram, ExtremeValuesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.Record(0ns);
  h.Record(-5ns);   // defensive: treated as 0
  h.Record(1000s);  // beyond the last bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.Quantile(1.0), 1s);
}

TEST(LatencyHistogram, SummaryMentionsQuantiles) {
  LatencyHistogram h;
  h.Record(5us);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("p50"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(LatencyHistogram, ConcurrentRecordingKeepsTotals) {
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) h.Record(std::chrono::nanoseconds(100 + i % 7));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), 40000u);
}

TEST(QueryEngineMetrics, HitAndMissHistogramsFill) {
  storage::Database db;
  auto& t = db.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false}}));
  for (int i = 0; i < 2000; ++i) t.Insert({Value(i)});

  CachedQueryEngine::Options options;
  options.collect_latency_metrics = true;
  CachedQueryEngine engine(db, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE A >= 0");  // full scan
  engine.Execute(query);
  for (int i = 0; i < 50; ++i) engine.Execute(query);

  const auto& metrics = engine.latency_metrics();
  EXPECT_EQ(metrics.misses.count(), 1u);
  EXPECT_EQ(metrics.hits.count(), 50u);
  // The scan-paying miss must be slower than the median cached hit.
  EXPECT_GT(metrics.misses.mean(), metrics.hits.Quantile(0.5));
}

TEST(QueryEngineMetrics, DisabledByDefault) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false}}));
  CachedQueryEngine engine(db, {});
  engine.ExecuteSql("SELECT COUNT(*) FROM T");
  EXPECT_EQ(engine.latency_metrics().hits.count(), 0u);
  EXPECT_EQ(engine.latency_metrics().misses.count(), 0u);
}

}  // namespace
}  // namespace qc::middleware
