#include "middleware/query_engine.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace qc::middleware {
namespace {

using namespace std::chrono_literals;

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("ITEMS", storage::Schema({{"ID", ValueType::kInt, false},
                                                        {"KIND", ValueType::kString, false},
                                                        {"PRICE", ValueType::kInt, false}}));
    table_->CreateHashIndex(1);
    for (int i = 1; i <= 20; ++i) {
      table_->Insert({Value(i), Value(i % 2 == 0 ? "even" : "odd"), Value(i * 10)});
    }
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(QueryEngineTest, MissThenHit) {
  CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  auto first = engine.Execute(query);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result->ScalarAt(0, 0), Value(10));
  auto second = engine.Execute(query);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.result->ScalarAt(0, 0), Value(10));
  EXPECT_EQ(engine.stats().db_executions, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
}

TEST_F(QueryEngineTest, PrepareDeduplicatesByCanonicalSql) {
  CachedQueryEngine engine(db_, {});
  auto a = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  auto b = engine.Prepare("select count(*) from items where kind='even'");
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(QueryEngineTest, ParametersSeparateCacheEntries) {
  CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = $1");
  EXPECT_FALSE(engine.Execute(query, {Value("even")}).cache_hit);
  EXPECT_FALSE(engine.Execute(query, {Value("odd")}).cache_hit);
  EXPECT_TRUE(engine.Execute(query, {Value("even")}).cache_hit);
  EXPECT_TRUE(engine.Execute(query, {Value("odd")}).cache_hit);
}

TEST_F(QueryEngineTest, UpdateInvalidatesAffectedEntryOnly) {
  CachedQueryEngine engine(db_, {});
  auto even = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  auto pricey = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 150");
  engine.Execute(even);
  engine.Execute(pricey);

  table_->Update(0, 2, Value(155));  // row 0 price 10 -> 155: crosses >150
  EXPECT_FALSE(engine.Execute(pricey).cache_hit);
  EXPECT_EQ(engine.Execute(pricey).result->ScalarAt(0, 0), Value(6));
  EXPECT_TRUE(engine.Execute(even).cache_hit);  // untouched dependency
}

TEST_F(QueryEngineTest, CachingDisabledAlwaysExecutes) {
  CachedQueryEngine::Options options;
  options.caching_enabled = false;
  CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS");
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.stats().db_executions, 2u);
  EXPECT_EQ(engine.cache_stats().puts, 0u);
}

TEST_F(QueryEngineTest, DefaultTtlExpiresEntries) {
  cache::TimePoint now{};
  CachedQueryEngine::Options options;
  options.default_ttl = 30s;
  options.cache.now = [&now] { return now; };
  CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS");
  engine.Execute(query);
  now += 10s;
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  now += 31s;
  EXPECT_FALSE(engine.Execute(query).cache_hit);
}

TEST_F(QueryEngineTest, ExecuteSqlDynamicPath) {
  CachedQueryEngine engine(db_, {});
  auto first = engine.ExecuteSql("SELECT COUNT(*) FROM ITEMS WHERE PRICE < $1", {Value(55)});
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result->ScalarAt(0, 0), Value(5));
  EXPECT_TRUE(engine.ExecuteSql("select count(*) from items where price < $1", {Value(55)})
                  .cache_hit);
}

TEST_F(QueryEngineTest, TinyCacheEvictsAndStaysConsistent) {
  CachedQueryEngine::Options options;
  options.cache.memory_max_entries = 2;
  CachedQueryEngine engine(db_, options);
  auto q1 = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'even'");
  auto q2 = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE KIND = 'odd'");
  auto q3 = engine.Prepare("SELECT COUNT(*) FROM ITEMS WHERE PRICE > 0");
  engine.Execute(q1);
  engine.Execute(q2);
  engine.Execute(q3);  // evicts q1's entry + its registration
  EXPECT_EQ(engine.dup_stats().registered_queries, 2u);
  EXPECT_FALSE(engine.Execute(q1).cache_hit);
  // After re-execution the dependency is re-registered and updates work.
  table_->Update(2, 1, Value("odd"));  // id 3 already odd -> no-op... use row 1 (id 2, even)
  table_->Update(1, 1, Value("odd"));
  EXPECT_EQ(engine.Execute(q1).result->ScalarAt(0, 0), Value(9));
}

TEST_F(QueryEngineTest, HybridDiskCacheServesResultsAcrossSpill) {
  CachedQueryEngine::Options options;
  options.cache.mode = cache::CacheMode::kHybrid;
  options.cache.memory_max_entries = 1;
  options.cache.disk_directory =
      (std::filesystem::temp_directory_path() / "qc_engine_hybrid").string();
  CachedQueryEngine engine(db_, options);
  auto q1 = engine.Prepare("SELECT ID, PRICE FROM ITEMS WHERE KIND = 'even'");
  auto q2 = engine.Prepare("SELECT ID, PRICE FROM ITEMS WHERE KIND = 'odd'");
  auto r1 = engine.Execute(q1);
  engine.Execute(q2);  // spills q1 to disk
  auto back = engine.Execute(q1);  // disk hit, deserialized
  EXPECT_TRUE(back.cache_hit);
  EXPECT_TRUE(back.result->Equals(*r1.result));
  EXPECT_GT(engine.cache_stats().disk_hits, 0u);
}

TEST_F(QueryEngineTest, StatsHitRate) {
  CachedQueryEngine engine(db_, {});
  auto query = engine.Prepare("SELECT COUNT(*) FROM ITEMS");
  engine.Execute(query);
  engine.Execute(query);
  engine.Execute(query);
  EXPECT_NEAR(engine.stats().HitRate(), 2.0 / 3.0, 1e-9);
}

// --- ResultValue serialization -----------------------------------------------

TEST(ResultValue, RoundTripsAllValueTypes) {
  auto rs = std::make_shared<sql::ResultSet>(
      std::vector<std::string>{"A", "B with space", "C"});
  rs->AddRow({Value(42), Value("text with\nnewline and 'quote'"), Value(2.5)});
  rs->AddRow({Value::Null(), Value(""), Value(int64_t{-7})});
  ResultValue original(rs);

  auto restored = std::static_pointer_cast<const ResultValue>(
      ResultValue::Deserialize(original.Serialize()));
  EXPECT_TRUE(restored->result()->Equals(*rs));
  EXPECT_EQ(restored->result()->columns()[1], "B with space");
}

TEST(ResultValue, RoundTripsEmptyResult) {
  auto rs = std::make_shared<sql::ResultSet>(std::vector<std::string>{"X"});
  ResultValue original(rs);
  auto restored = std::static_pointer_cast<const ResultValue>(
      ResultValue::Deserialize(original.Serialize()));
  EXPECT_TRUE(restored->result()->Equals(*rs));
  EXPECT_EQ(restored->result()->row_count(), 0u);
}

TEST(ResultValue, DeserializeRejectsGarbage) {
  EXPECT_THROW(ResultValue::Deserialize("not a result"), CacheError);
  EXPECT_THROW(ResultValue::Deserialize("RS1\n2\n"), CacheError);
  EXPECT_THROW(ResultValue::Deserialize(""), CacheError);
}

TEST(ResultValue, ByteSizeMatchesResultFootprint) {
  auto rs = std::make_shared<sql::ResultSet>(std::vector<std::string>{"X"});
  rs->AddRow({Value(std::string(1000, 'x'))});
  EXPECT_GT(ResultValue(rs).ByteSize(), 1000u);
}

}  // namespace
}  // namespace qc::middleware
