// Assorted coverage: uncacheable results, engine/DML interplay inside a
// cluster, removal-cause naming, and stats rendering.
#include <gtest/gtest.h>

#include "cache/gps_cache.h"
#include "cluster/cluster.h"
#include "middleware/query_engine.h"

namespace qc {
namespace {

TEST(UncacheableResults, OversizedResultExecutesButIsNotCached) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                     {"BLOB", ValueType::kString, false}}));
  for (int i = 0; i < 50; ++i) table.Insert({Value(i), Value(std::string(4096, 'x'))});

  middleware::CachedQueryEngine::Options options;
  options.cache.memory_budget_bytes = 16 * 1024;  // smaller than the result
  middleware::CachedQueryEngine engine(db, options);
  auto query = engine.Prepare("SELECT * FROM T");

  auto first = engine.Execute(query);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result->row_count(), 50u);
  EXPECT_EQ(engine.stats().uncacheable, 1u);
  // Never cached: the second execution is also a miss but still correct.
  auto second = engine.Execute(query);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.result->Equals(*first.result));
  // The failed Put must not leave a dangling ODG registration.
  EXPECT_EQ(engine.dup_stats().registered_queries, 0u);
}

TEST(UncacheableResults, SmallResultsStillCacheAlongside) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                     {"BLOB", ValueType::kString, false}}));
  for (int i = 0; i < 50; ++i) table.Insert({Value(i), Value(std::string(4096, 'x'))});
  middleware::CachedQueryEngine::Options options;
  options.cache.memory_budget_bytes = 16 * 1024;
  middleware::CachedQueryEngine engine(db, options);
  auto big = engine.Prepare("SELECT * FROM T");
  auto small = engine.Prepare("SELECT COUNT(*) FROM T");
  engine.Execute(big);
  engine.Execute(small);
  EXPECT_TRUE(engine.Execute(small).cache_hit);
}

TEST(ClusterDml, UpdatesThroughNodeEnginesPropagate) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                     {"KIND", ValueType::kString, false}}));
  for (int i = 1; i <= 20; ++i) table.Insert({Value(i), Value(i % 2 ? "odd" : "even")});

  cluster::ClusterConfig config;
  config.nodes = 2;
  cluster::CacheCluster cluster(db, config);
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'even'");
  EXPECT_EQ(cluster.ExecuteAt(0, query).result->ScalarAt(0, 0), Value(10));
  EXPECT_EQ(cluster.ExecuteAt(1, query).result->ScalarAt(0, 0), Value(10));

  // DML issued through node 1's engine, attributed to node 1.
  cluster.PerformUpdate(1, [&] {
    cluster.node(1).ExecuteDml("UPDATE T SET KIND = 'even' WHERE ID = 1");
  });
  EXPECT_EQ(cluster.ExecuteAt(0, query).result->ScalarAt(0, 0), Value(11));
  EXPECT_EQ(cluster.ExecuteAt(1, query).result->ScalarAt(0, 0), Value(11));
  EXPECT_EQ(cluster.stats().stale_hits, 0u);
}

TEST(RemovalCauses, NamesAreStable) {
  EXPECT_STREQ(cache::RemovalCauseName(cache::RemovalCause::kInvalidated), "invalidated");
  EXPECT_STREQ(cache::RemovalCauseName(cache::RemovalCause::kEvicted), "evicted");
  EXPECT_STREQ(cache::RemovalCauseName(cache::RemovalCause::kExpired), "expired");
  EXPECT_STREQ(cache::RemovalCauseName(cache::RemovalCause::kCleared), "cleared");
  EXPECT_STREQ(cache::RemovalCauseName(cache::RemovalCause::kReplaced), "replaced");
}

TEST(PolicyNames, AreDistinctAndDescriptive) {
  std::set<std::string> names;
  for (auto policy : {dup::InvalidationPolicy::kNone, dup::InvalidationPolicy::kFlushAll,
                      dup::InvalidationPolicy::kValueUnaware, dup::InvalidationPolicy::kValueAware,
                      dup::InvalidationPolicy::kRowAware}) {
    names.insert(dup::PolicyName(policy));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(CacheStatsRendering, MentionsEveryCounter) {
  cache::CacheStats stats;
  stats.lookups = 10;
  stats.hits = 7;
  stats.misses = 3;
  const std::string s = stats.ToString();
  for (const char* token : {"lookups=10", "hits=7", "misses=3", "hit_rate=0.7"}) {
    EXPECT_NE(s.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace qc
