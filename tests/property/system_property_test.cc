// System-level property tests for the non-query DUP deployments:
//   * accelerator: cached page == fresh render of the current fragment
//     state, under random multi-level include graphs and random updates;
//   * cluster: with synchronous token delivery, no node ever serves stale
//     data; after Quiesce() every node converges regardless of latency.
#include <gtest/gtest.h>

#include <map>

#include "accel/page_server.h"
#include "cluster/cluster.h"
#include "common/rng.h"

namespace qc {
namespace {

TEST(AccelProperty, CachedPageAlwaysMatchesModelRender) {
  Rng rng(2026);
  accel::PageServer server;

  // Model: our own fragment map + reference renderer.
  std::map<std::string, std::string> fragments;
  auto model_render = [&](const std::string& body) {
    std::function<std::string(const std::string&, int)> render =
        [&](const std::string& text, int depth) -> std::string {
      EXPECT_LT(depth, 16);
      std::string out;
      size_t pos = 0;
      while (pos < text.size()) {
        const size_t open = text.find("{{", pos);
        if (open == std::string::npos) {
          out.append(text, pos, std::string::npos);
          break;
        }
        out.append(text, pos, open - pos);
        const size_t close = text.find("}}", open + 2);
        const std::string name = text.substr(open + 2, close - open - 2);
        out += render(fragments.at(name), depth + 1);
        pos = close + 2;
      }
      return out;
    };
    return render(body, 0);
  };

  // Random acyclic include structure: fragment i may include j < i.
  constexpr int kFragments = 12;
  constexpr int kPages = 6;
  std::vector<std::string> frag_names;
  std::map<std::string, std::string> page_templates;
  for (int i = 0; i < kFragments; ++i) {
    const std::string name = "f" + std::to_string(i);
    std::string body = "[" + name + " v0";
    for (int j = 0; j < i; ++j) {
      if (rng.Chance(0.25)) body += " {{f" + std::to_string(j) + "}}";
    }
    body += "]";
    frag_names.push_back(name);
    fragments[name] = body;
    server.SetFragment(name, body);
  }
  for (int p = 0; p < kPages; ++p) {
    const std::string path = "/p" + std::to_string(p) + ".html";
    std::string body = "<page " + std::to_string(p) + ">";
    for (int i = 0; i < kFragments; ++i) {
      if (rng.Chance(0.3)) body += "{{f" + std::to_string(i) + "}}";
    }
    page_templates[path] = body;
    server.DefinePage(path, body);
  }

  for (int step = 0; step < 600; ++step) {
    if (rng.Chance(0.2)) {
      // Update a random fragment's content (keeping its include list so
      // the graph stays acyclic).
      const std::string& name =
          frag_names[static_cast<size_t>(rng.Uniform(0, kFragments - 1))];
      std::string body = fragments[name];
      const std::string marker = " v";
      const size_t vpos = body.find(marker);
      body = body.substr(0, vpos) + " v" + std::to_string(step) +
             body.substr(body.find_first_of(" ]", vpos + 2));
      fragments[name] = body;
      server.SetFragment(name, body);
    } else {
      const auto it = std::next(page_templates.begin(),
                                rng.Uniform(0, static_cast<int64_t>(kPages) - 1));
      ASSERT_EQ(server.Serve(it->first), model_render(it->second)) << "step " << step;
    }
  }
  EXPECT_GT(server.stats().hits, 0u);
  EXPECT_GT(server.stats().invalidated_pages, 0u);
}

TEST(ClusterProperty, SynchronousClusterNeverStale) {
  Rng rng(31337);
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false},
                                                     {"B", ValueType::kInt, false}}));
  table.CreateHashIndex(0);
  for (int i = 0; i < 200; ++i) table.Insert({Value(i % 20), Value(i % 50)});

  cluster::ClusterConfig config;
  config.nodes = 3;
  config.latency_ticks = 0;
  config.verify_staleness = true;  // the cluster itself checks every hit
  cluster::CacheCluster cluster(db, config);

  std::vector<std::shared_ptr<const sql::BoundQuery>> queries = {
      cluster.Prepare("SELECT COUNT(*) FROM T WHERE A = 3"),
      cluster.Prepare("SELECT COUNT(*) FROM T WHERE B BETWEEN 10 AND 30"),
      cluster.Prepare("SELECT SUM(B) FROM T WHERE A < 5"),
  };

  for (int step = 0; step < 500; ++step) {
    if (rng.Chance(0.25)) {
      const size_t writer = static_cast<size_t>(rng.Uniform(0, 2));
      cluster.PerformUpdate(writer, [&] {
        storage::RowId row;
        do {
          row = static_cast<storage::RowId>(rng.Uniform(0, 199));
        } while (!table.IsLive(row));
        table.Update(row, static_cast<uint32_t>(rng.Uniform(0, 1)),
                     Value(rng.Uniform(0, 49)));
      });
    } else {
      cluster.Execute(queries[static_cast<size_t>(rng.Uniform(0, 2))]);
    }
  }
  EXPECT_EQ(cluster.stats().stale_hits, 0u);
  EXPECT_GT(cluster.stats().hits, 100u);
}

TEST(ClusterProperty, QuiesceConvergesAllNodesUnderLatency) {
  Rng rng(424242);
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false}}));
  for (int i = 0; i < 50; ++i) table.Insert({Value(i)});

  cluster::ClusterConfig config;
  config.nodes = 4;
  config.latency_ticks = 7;
  cluster::CacheCluster cluster(db, config);
  auto query = cluster.Prepare("SELECT COUNT(*) FROM T WHERE A < 25");

  for (int round = 0; round < 50; ++round) {
    for (size_t n = 0; n < 4; ++n) cluster.ExecuteAt(n, query);
    cluster.PerformUpdate(rng.Uniform(0, 3), [&] {
      storage::RowId row;
      do {
        row = static_cast<storage::RowId>(rng.Uniform(0, 49));
      } while (!table.IsLive(row));
      table.Update(row, 0, Value(rng.Uniform(0, 49)));
    });
    cluster.Quiesce();
    // Post-quiesce, every node must agree with the database.
    for (size_t n = 0; n < 4; ++n) {
      auto outcome = cluster.ExecuteAt(n, query);
      ASSERT_TRUE(
          outcome.result->Equals(cluster.node(n).ExecuteUncached(*query)))
          << "round " << round << " node " << n;
    }
  }
  EXPECT_EQ(cluster.in_flight(), 0u);
}

}  // namespace
}  // namespace qc
