// The policy-ladder invariant behind the paper's §5 results: for any
// single update/insert/delete event, the set of query results the
// row-aware policy invalidates is a subset of the value-aware policy's
// set, which is a subset of the value-unaware policy's set. (This is what
// makes Figs. 9–13 monotone in the policy — checked here event by event
// on randomized workloads rather than in aggregate.)
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "dup/engine.h"
#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc {
namespace {

struct PolicyRig {
  explicit PolicyRig(dup::InvalidationPolicy policy)
      : cache(cache::GpsCacheConfig{}), engine(cache, MakeOptions(policy)) {
    engine.SetTracer([this](const std::string& key, const std::string&) {
      current_event_keys.insert(key);
    });
  }

  static dup::DupEngine::Options MakeOptions(dup::InvalidationPolicy policy) {
    dup::DupEngine::Options options;
    options.policy = policy;
    return options;
  }

  void Register(const std::string& key, const std::shared_ptr<const sql::BoundQuery>& query,
                const std::vector<Value>& params) {
    cache.Put(key, std::make_shared<cache::StringValue>("r"));
    engine.RegisterQuery(key, query, params);
  }

  cache::GpsCache cache;
  dup::DupEngine engine;
  std::set<std::string> current_event_keys;
};

TEST(PolicySubsetProperty, RowAwareSubsetOfValueAwareSubsetOfValueUnaware) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                     {"Y", ValueType::kInt, false},
                                                     {"S", ValueType::kString, false}}));
  Rng rng(777);
  for (int i = 0; i < 80; ++i) {
    table.Insert({Value(rng.Uniform(0, 40)), Value(rng.Uniform(0, 40)),
                  Value(rng.Chance(0.5) ? "a" : "b")});
  }

  const std::vector<std::pair<std::string, std::vector<Value>>> query_specs = {
      {"SELECT COUNT(*) FROM T WHERE X = 7", {}},
      {"SELECT COUNT(*) FROM T WHERE X BETWEEN 10 AND 20", {}},
      {"SELECT COUNT(*) FROM T WHERE X BETWEEN 10 AND 20 AND Y = 3", {}},
      {"SELECT COUNT(*) FROM T WHERE NOT X = 5 AND S = 'a'", {}},
      {"SELECT COUNT(*) FROM T WHERE X IN (1, 2, 3) OR Y > 35", {}},
      {"SELECT SUM(Y) FROM T WHERE S = $1", {Value("b")}},
      {"SELECT X, COUNT(*) FROM T GROUP BY X", {}},
      {"SELECT COUNT(*) FROM T", {}},
  };

  PolicyRig value_unaware(dup::InvalidationPolicy::kValueUnaware);
  PolicyRig value_aware(dup::InvalidationPolicy::kValueAware);
  PolicyRig row_aware(dup::InvalidationPolicy::kRowAware);
  std::vector<PolicyRig*> rigs = {&value_unaware, &value_aware, &row_aware};

  std::vector<std::shared_ptr<const sql::BoundQuery>> queries;
  std::vector<std::string> keys;
  for (const auto& [sql_text, params] : query_specs) {
    auto query = sql::ParseAndBind(sql_text, db);
    const std::string key = sql::Fingerprint(query->stmt(), params);
    for (PolicyRig* rig : rigs) rig->Register(key, query, params);
    queries.push_back(std::move(query));
    keys.push_back(key);
  }

  // Feed identical events to all three engines.
  db.Subscribe([&](const storage::UpdateEvent& event) {
    for (PolicyRig* rig : rigs) rig->engine.OnUpdate(event);
  });

  uint64_t strict_gaps = 0;
  for (int step = 0; step < 300; ++step) {
    for (PolicyRig* rig : rigs) rig->current_event_keys.clear();

    const double dice = rng.UniformReal();
    if (dice < 0.6) {
      storage::RowId row;
      do {
        row = static_cast<storage::RowId>(
            rng.Uniform(0, static_cast<int64_t>(table.SlotCount()) - 1));
      } while (!table.IsLive(row));
      const auto col = static_cast<uint32_t>(rng.Uniform(0, 2));
      const Value value = col == 2 ? Value(rng.Chance(0.5) ? "a" : "b")
                                   : Value(rng.Uniform(0, 40));
      table.Update(row, col, value);
    } else if (dice < 0.8 || table.size() < 10) {
      table.Insert({Value(rng.Uniform(0, 40)), Value(rng.Uniform(0, 40)),
                    Value(rng.Chance(0.5) ? "a" : "b")});
    } else {
      storage::RowId row;
      do {
        row = static_cast<storage::RowId>(
            rng.Uniform(0, static_cast<int64_t>(table.SlotCount()) - 1));
      } while (!table.IsLive(row));
      table.Delete(row);
    }

    const auto& unaware_keys = value_unaware.current_event_keys;
    const auto& aware_keys = value_aware.current_event_keys;
    const auto& row_keys = row_aware.current_event_keys;
    ASSERT_TRUE(std::includes(unaware_keys.begin(), unaware_keys.end(), aware_keys.begin(),
                              aware_keys.end()))
        << "step " << step << ": value-aware invalidated something value-unaware kept";
    ASSERT_TRUE(
        std::includes(aware_keys.begin(), aware_keys.end(), row_keys.begin(), row_keys.end()))
        << "step " << step << ": row-aware invalidated something value-aware kept";
    if (aware_keys.size() < unaware_keys.size() || row_keys.size() < aware_keys.size()) {
      ++strict_gaps;
    }

    // Restore full registration on every rig so the next event sees the
    // complete query population again.
    for (PolicyRig* rig : rigs) {
      for (size_t i = 0; i < keys.size(); ++i) {
        if (rig->current_event_keys.count(keys[i]) ||
            !rig->cache.Contains(keys[i])) {
          rig->Register(keys[i], queries[i], query_specs[i].second);
        }
      }
    }
  }
  // The ladder must actually refine somewhere, not just trivially tie.
  EXPECT_GT(strict_gaps, 30u);
}

}  // namespace
}  // namespace qc
