// Robustness fuzzing: the SQL front end must never crash or hang on
// malformed input (throwing ParseError/BindError is the contract), and
// random DML programs must keep the storage layer consistent with a naive
// in-memory model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "sql/binder.h"
#include "sql/dml.h"
#include "sql/evaluator.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc {
namespace {

TEST(ParserFuzz, RandomTokenSoupNeverCrashes) {
  const std::vector<std::string> vocabulary = {
      "SELECT", "FROM",   "WHERE", "AND",  "OR",    "NOT",   "BETWEEN", "IN",     "LIKE",
      "GROUP",  "BY",     "ORDER", "LIMIT", "COUNT", "SUM",  "INSERT",  "UPDATE", "DELETE",
      "INTO",   "VALUES", "SET",   "(",    ")",     ",",     "*",       "=",      "<",
      ">",      "<=",     ">=",    "<>",   "$1",    "?",     "1",       "2.5",    "'s'",
      "T",      "A",      "B",     "NULL", "IS",    ".",     ";"};
  Rng rng(321);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = static_cast<int>(rng.Uniform(0, 14));
    for (int i = 0; i < len; ++i) {
      sql += vocabulary[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(vocabulary.size()) - 1))];
      sql += ' ';
    }
    try {
      sql::ParseStatement(sql);
    } catch (const ParseError&) {
      // expected for most soups
    }
  }
}

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Rng rng(654);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string sql;
    const int len = static_cast<int>(rng.Uniform(0, 24));
    for (int i = 0; i < len; ++i) {
      sql += static_cast<char>(rng.Uniform(32, 126));
    }
    try {
      sql::ParseStatement(sql);
    } catch (const ParseError&) {
    }
  }
}

TEST(BinderFuzz, ValidGrammarRandomNamesNeverCrash) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"A", ValueType::kInt, false},
                                       {"B", ValueType::kString, true}}));
  const std::vector<std::string> columns = {"A", "B", "C", "T.A", "X.B"};
  const std::vector<std::string> tables = {"T", "U", "t"};
  Rng rng(987);
  for (int trial = 0; trial < 2000; ++trial) {
    auto pick = [&](const std::vector<std::string>& pool) {
      return pool[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1))];
    };
    const std::string sql = "SELECT " + pick(columns) + " FROM " + pick(tables) + " WHERE " +
                            pick(columns) + " = " + std::to_string(rng.Uniform(0, 5));
    try {
      auto query = sql::ParseAndBind(sql, db);
      sql::Execute(*query);
    } catch (const ParseError&) {
    } catch (const BindError&) {
    }
  }
}

// Random DML programs vs. a trivially correct model of the table.
TEST(DmlFuzz, StorageMatchesNaiveModel) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"K", ValueType::kInt, false},
                                       {"V", ValueType::kInt, false}}));
  storage::Table& table = db.GetTable("T");
  // Model: multiset of (K, V) pairs.
  std::multimap<int64_t, int64_t> model;

  Rng rng(246);
  for (int step = 0; step < 2000; ++step) {
    const int64_t k = rng.Uniform(0, 9);
    const int64_t v = rng.Uniform(0, 99);
    switch (rng.Uniform(0, 3)) {
      case 0: {  // insert
        sql::AnyStatement stmt = sql::ParseStatement("INSERT INTO T VALUES ($1, $2)");
        sql::ExecuteDml(stmt.dml, db, {Value(k), Value(v)});
        model.emplace(k, v);
        break;
      }
      case 1: {  // update all rows with key k
        sql::AnyStatement stmt = sql::ParseStatement("UPDATE T SET V = $2 WHERE K = $1");
        const uint64_t affected = sql::ExecuteDml(stmt.dml, db, {Value(k), Value(v)});
        EXPECT_EQ(affected, model.count(k));
        auto [begin, end] = model.equal_range(k);
        for (auto it = begin; it != end; ++it) it->second = v;
        break;
      }
      case 2: {  // delete rows with key k and value below v
        sql::AnyStatement stmt = sql::ParseStatement("DELETE FROM T WHERE K = $1 AND V < $2");
        const uint64_t affected = sql::ExecuteDml(stmt.dml, db, {Value(k), Value(v)});
        uint64_t expected = 0;
        for (auto it = model.begin(); it != model.end();) {
          if (it->first == k && it->second < v) {
            it = model.erase(it);
            ++expected;
          } else {
            ++it;
          }
        }
        EXPECT_EQ(affected, expected);
        break;
      }
      default: {  // full comparison: table contents == model contents
        auto query = sql::ParseAndBind("SELECT K, V FROM T", db);
        sql::ResultSet rs = sql::Execute(*query);
        ASSERT_EQ(rs.row_count(), model.size()) << "step " << step;
        std::vector<std::pair<int64_t, int64_t>> seen, expected;
        for (const storage::Row& row : rs.rows()) {
          seen.emplace_back(row[0].as_int(), row[1].as_int());
        }
        expected.assign(model.begin(), model.end());
        std::sort(seen.begin(), seen.end());
        std::sort(expected.begin(), expected.end());
        ASSERT_EQ(seen, expected) << "step " << step;
        break;
      }
    }
  }
  EXPECT_EQ(table.size(), model.size());
}

// Random single-statement round trips through the canonicalizer: parsing
// the canonical form must be a fixed point.
TEST(CanonicalFuzz, CanonicalSqlIsAFixedPoint) {
  Rng rng(135);
  const std::vector<std::string> predicates = {
      "A = 1",        "A <> 2",          "A BETWEEN 1 AND 5", "A IN (1, 2, 3)",
      "B LIKE 'x%'",  "B IS NOT NULL",   "NOT A = 3",         "A >= $1",
      "A < 9 OR B = 'z'"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string sql = "SELECT COUNT(*) FROM T WHERE ";
    const int n = static_cast<int>(rng.Uniform(1, 3));
    for (int i = 0; i < n; ++i) {
      if (i) sql += rng.Chance(0.5) ? " AND " : " OR ";
      sql += predicates[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(predicates.size()) - 1))];
    }
    const std::string canonical = sql::CanonicalSql(sql::Parse(sql));
    EXPECT_EQ(sql::CanonicalSql(sql::Parse(canonical)), canonical) << sql;
  }
}

}  // namespace
}  // namespace qc
