// Property tests for the system's cardinal invariant: a cached read always
// equals a fresh execution, under every invalidation policy, any
// interleaving of queries with attribute updates, inserts and deletes,
// and under cache pressure (evictions) — the invalidation machinery must
// never serve stale data.
#include <gtest/gtest.h>

#include <regex>

#include "common/rng.h"
#include "common/strings.h"
#include "middleware/query_engine.h"
#include "setquery/bench_table.h"
#include "setquery/queries.h"

namespace qc {
namespace {

struct PolicyCase {
  dup::InvalidationPolicy policy;
  bool tiny_cache;   // forces evictions mid-run
  bool refresh = false;  // Fig. 7 step 10: update instead of discard
};

class CachedEqualsFresh : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(CachedEqualsFresh, UnderRandomSetQueryWorkload) {
  const PolicyCase& c = GetParam();
  storage::Database db;
  setquery::BenchTable bench(db, 1500);
  middleware::CachedQueryEngine::Options options;
  options.policy = c.policy;
  options.refresh_on_invalidate = c.refresh;
  if (c.tiny_cache) options.cache.memory_max_entries = 8;
  middleware::CachedQueryEngine engine(db, options);

  std::vector<std::shared_ptr<const sql::BoundQuery>> fixed;
  for (const auto& spec : setquery::BuildAllQueries(bench)) fixed.push_back(engine.Prepare(spec.sql));
  std::vector<std::pair<std::shared_ptr<const sql::BoundQuery>, uint32_t>> parameterized;
  for (const auto& spec : setquery::BuildParameterizedQueries(bench)) {
    parameterized.emplace_back(engine.Prepare(spec.sql), spec.param_column);
  }

  Rng rng(1000 + static_cast<uint64_t>(c.policy) * 10 + (c.tiny_cache ? 1 : 0));
  for (int step = 0; step < 400; ++step) {
    const double dice = rng.UniformReal();
    if (dice < 0.15) {  // multi-attribute update
      const auto row = bench.RandomRow(rng);
      std::vector<std::pair<uint32_t, Value>> sets;
      const int k = static_cast<int>(rng.Uniform(1, 3));
      for (int i = 0; i < k; ++i) {
        const auto col = static_cast<uint32_t>(rng.Uniform(0, 12));
        sets.emplace_back(col, Value(bench.RandomValue(col, rng)));
      }
      bench.table().Update(row, sets);
    } else if (dice < 0.20) {  // delete + insert
      bench.table().Delete(bench.RandomRow(rng));
      storage::Row row(setquery::BenchAttributeCount());
      for (size_t col = 0; col < row.size(); ++col) {
        row[col] = Value(bench.RandomValue(col, rng));
      }
      bench.table().Insert(row);
    } else if (dice < 0.6) {  // fixed query
      const auto& query = fixed[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(fixed.size()) - 1))];
      auto cached = engine.Execute(query);
      ASSERT_TRUE(cached.result->Equals(engine.ExecuteUncached(*query)))
          << "step " << step << " policy " << dup::PolicyName(c.policy) << "\n"
          << sql::CanonicalSql(query->stmt());
    } else {  // parameterized query
      const auto& [query, column] = parameterized[static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(parameterized.size()) - 1))];
      const std::vector<Value> params = {Value(bench.RandomValue(column, rng))};
      auto cached = engine.Execute(query, params);
      ASSERT_TRUE(cached.result->Equals(engine.ExecuteUncached(*query, params)))
          << "step " << step << " policy " << dup::PolicyName(c.policy) << "\n"
          << sql::Fingerprint(query->stmt(), params);
    }
  }
  // The run must have exercised the cache, not just bypassed it. (Under
  // flush-all with this large instance population, actual hits are rare —
  // puts prove the cache path ran.)
  EXPECT_GT(engine.cache_stats().puts, 0u);
  if (c.policy == dup::InvalidationPolicy::kFlushAll) {
    EXPECT_GT(engine.dup_stats().full_flushes, 0u);
  } else {
    EXPECT_GT(engine.stats().cache_hits, 0u);
    EXPECT_GT(engine.dup_stats().invalidations + engine.dup_stats().refreshes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, CachedEqualsFresh,
    ::testing::Values(PolicyCase{dup::InvalidationPolicy::kFlushAll, false},
                      PolicyCase{dup::InvalidationPolicy::kValueUnaware, false},
                      PolicyCase{dup::InvalidationPolicy::kValueAware, false},
                      PolicyCase{dup::InvalidationPolicy::kRowAware, false},
                      PolicyCase{dup::InvalidationPolicy::kValueAware, true},
                      PolicyCase{dup::InvalidationPolicy::kRowAware, true},
                      PolicyCase{dup::InvalidationPolicy::kValueAware, false, true}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name;
      switch (info.param.policy) {
        case dup::InvalidationPolicy::kNone: name = "TtlOnly"; break;
        case dup::InvalidationPolicy::kFlushAll: name = "FlushAll"; break;
        case dup::InvalidationPolicy::kValueUnaware: name = "ValueUnaware"; break;
        case dup::InvalidationPolicy::kValueAware: name = "ValueAware"; break;
        case dup::InvalidationPolicy::kRowAware: name = "RowAware"; break;
      }
      return name + (info.param.tiny_cache ? "TinyCache" : "") +
             (info.param.refresh ? "Refresh" : "");
    });

// Reference-mode (paper Fig. 5) invariant: cached *membership* is always
// current even though projected values are not tracked. We query row
// identities only, so results must match fresh execution exactly.
TEST(ReferenceModeProperty, MembershipAlwaysCurrent) {
  storage::Database db;
  storage::Table& t = db.CreateTable("R", storage::Schema({{"ID", ValueType::kInt, false},
                                                           {"A", ValueType::kInt, false},
                                                           {"B", ValueType::kInt, false}}));
  t.CreateHashIndex(0);
  Rng rng(55);
  for (int i = 1; i <= 300; ++i) {
    t.Insert({Value(i), Value(rng.Uniform(1, 10)), Value(rng.Uniform(1, 100))});
  }

  middleware::CachedQueryEngine::Options options;
  options.extraction.include_projection = false;  // reference-style results
  middleware::CachedQueryEngine engine(db, options);

  std::vector<std::shared_ptr<const sql::BoundQuery>> queries = {
      engine.Prepare("SELECT ID FROM R WHERE A = 3"),
      engine.Prepare("SELECT ID FROM R WHERE B BETWEEN 20 AND 60"),
      engine.Prepare("SELECT ID FROM R WHERE A = 3 AND NOT B = 50"),
      engine.Prepare("SELECT ID FROM R WHERE A IN (1, 2) OR B > 90"),
  };

  int64_t next_id = 1000;
  for (int step = 0; step < 500; ++step) {
    const double dice = rng.UniformReal();
    if (dice < 0.25) {
      // Update a random live row's A or B (never ID: identities are immutable).
      storage::RowId row = 0;
      do {
        row = static_cast<storage::RowId>(rng.Uniform(0, static_cast<int64_t>(t.SlotCount()) - 1));
      } while (!t.IsLive(row));
      const uint32_t col = rng.Chance(0.5) ? 1 : 2;
      t.Update(row, col, Value(rng.Uniform(1, col == 1 ? 10 : 100)));
    } else if (dice < 0.32) {
      t.Insert({Value(next_id++), Value(rng.Uniform(1, 10)), Value(rng.Uniform(1, 100))});
    } else if (dice < 0.38 && t.size() > 10) {
      storage::RowId row = 0;
      do {
        row = static_cast<storage::RowId>(rng.Uniform(0, static_cast<int64_t>(t.SlotCount()) - 1));
      } while (!t.IsLive(row));
      t.Delete(row);
    } else {
      const auto& query =
          queries[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(queries.size()) - 1))];
      auto cached = engine.Execute(query);
      ASSERT_TRUE(cached.result->Equals(engine.ExecuteUncached(*query))) << "step " << step;
    }
  }
  EXPECT_GT(engine.stats().cache_hits, 50u);
}

// Random single-column predicates: the index-assisted access path and a
// forced full scan must agree (the optimizer is an optimization, never a
// semantics change).
TEST(EvaluatorProperty, IndexedAndScannedResultsAgree) {
  storage::Database indexed_db;
  storage::Database scan_db;
  auto make = [](storage::Database& db) -> storage::Table& {
    return db.CreateTable("P", storage::Schema({{"V", ValueType::kInt, false},
                                                {"W", ValueType::kInt, false}}));
  };
  storage::Table& indexed = make(indexed_db);
  storage::Table& scanned = make(scan_db);
  indexed.CreateHashIndex(0);
  indexed.CreateOrderedIndex(0);

  Rng rng(77);
  for (int i = 0; i < 400; ++i) {
    storage::Row row{Value(rng.Uniform(0, 50)), Value(rng.Uniform(0, 50))};
    indexed.Insert(row);
    scanned.Insert(row);
  }

  Rng gen(78);
  for (int trial = 0; trial < 60; ++trial) {
    const int64_t a = gen.Uniform(0, 50), b = gen.Uniform(0, 50);
    std::string predicate;
    switch (gen.Uniform(0, 5)) {
      case 0: predicate = "V = " + std::to_string(a); break;
      case 1: predicate = "V BETWEEN " + std::to_string(std::min(a, b)) + " AND " +
                          std::to_string(std::max(a, b));
              break;
      case 2: predicate = "V >= " + std::to_string(a) + " AND W < " + std::to_string(b); break;
      case 3: predicate = "V IN (" + std::to_string(a) + ", " + std::to_string(b) + ")"; break;
      case 4: predicate = "(V BETWEEN 0 AND " + std::to_string(a) + " OR V BETWEEN " +
                          std::to_string(b) + " AND 50)";
              break;
      default: predicate = "NOT V = " + std::to_string(a); break;
    }
    const std::string sql = "SELECT COUNT(*) FROM P WHERE " + predicate;
    auto qi = sql::ParseAndBind(sql, indexed_db);
    auto qs = sql::ParseAndBind(sql, scan_db);
    ASSERT_TRUE(sql::Execute(*qi).Equals(sql::Execute(*qs))) << sql;
  }
}

// LikeMatch against std::regex as an independent oracle.
TEST(LikeProperty, AgreesWithRegexOracle) {
  Rng rng(99);
  const std::string alphabet = "ab%_";
  for (int trial = 0; trial < 300; ++trial) {
    std::string pattern, text;
    const int plen = static_cast<int>(rng.Uniform(0, 6));
    for (int i = 0; i < plen; ++i) pattern += alphabet[rng.Uniform(0, 3)];
    const int tlen = static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < tlen; ++i) text += alphabet[rng.Uniform(0, 1)];  // 'a'/'b' only

    std::string re;
    for (char c : pattern) {
      if (c == '%') {
        re += ".*";
      } else if (c == '_') {
        re += ".";
      } else {
        re += c;
      }
    }
    const bool expected = std::regex_match(text, std::regex(re));
    EXPECT_EQ(LikeMatch(text, pattern), expected)
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

}  // namespace
}  // namespace qc
