// Weighted-DUP obsolescence tolerance (paper Fig. 2): objects survive a
// bounded number of dependency changes before being invalidated.
#include <gtest/gtest.h>

#include "middleware/query_engine.h"

namespace qc::dup {
namespace {

class ObsolescenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"ID", ValueType::kInt, false},
                                                    {"N", ValueType::kInt, false}}));
    for (int i = 1; i <= 10; ++i) table_->Insert({Value(i), Value(i)});
  }

  middleware::CachedQueryEngine MakeEngine(double threshold) {
    middleware::CachedQueryEngine::Options options;
    options.obsolescence_threshold = threshold;
    return middleware::CachedQueryEngine(db_, options);
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(ObsolescenceTest, ThresholdZeroInvalidatesImmediately) {
  auto engine = MakeEngine(0.0);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE N <= 5");
  engine.Execute(query);
  table_->Update(0, 1, Value(100));  // flips N <= 5 for id 1
  EXPECT_FALSE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.dup_stats().tolerated_changes, 0u);
}

TEST_F(ObsolescenceTest, BudgetAbsorbsChangesThenInvalidates) {
  auto engine = MakeEngine(2.0);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE N <= 5");
  const Value exact = engine.Execute(query).result->ScalarAt(0, 0);
  ASSERT_EQ(exact, Value(5));

  table_->Update(0, 1, Value(100));  // change 1: tolerated
  auto first = engine.Execute(query);
  EXPECT_TRUE(first.cache_hit);
  EXPECT_EQ(first.result->ScalarAt(0, 0), Value(5));  // deliberately stale

  table_->Update(1, 1, Value(100));  // change 2: still within budget
  EXPECT_TRUE(engine.Execute(query).cache_hit);

  table_->Update(2, 1, Value(100));  // change 3: exceeds threshold 2
  auto fresh = engine.Execute(query);
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(2));
  EXPECT_EQ(engine.dup_stats().tolerated_changes, 2u);
}

TEST_F(ObsolescenceTest, BudgetResetsOnRefresh) {
  auto engine = MakeEngine(1.0);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE N <= 5");
  engine.Execute(query);

  table_->Update(0, 1, Value(100));  // tolerated
  table_->Update(1, 1, Value(100));  // invalidates
  EXPECT_FALSE(engine.Execute(query).cache_hit);  // refresh: budget resets

  table_->Update(2, 1, Value(100));  // tolerated again
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  table_->Update(3, 1, Value(100));
  EXPECT_FALSE(engine.Execute(query).cache_hit);
}

TEST_F(ObsolescenceTest, IrrelevantChangesDoNotConsumeBudget) {
  auto engine = MakeEngine(1.0);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE N <= 5");
  engine.Execute(query);
  // Value-aware gating happens before the budget: moves within the same
  // side of the predicate cost nothing.
  for (int i = 0; i < 5; ++i) table_->Update(5 + i, 1, Value(50 + i));  // stays > 5
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.dup_stats().tolerated_changes, 0u);
}

}  // namespace
}  // namespace qc::dup

namespace qc::dup {
namespace {

TEST(TtlOnlyPolicy, NeverInvalidatesOnUpdates) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false}}));
  for (int i = 1; i <= 5; ++i) table.Insert({Value(i)});
  middleware::CachedQueryEngine::Options options;
  options.policy = InvalidationPolicy::kNone;
  middleware::CachedQueryEngine engine(db, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= 3");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(3));

  table.Update(0, 0, Value(100));  // result is now logically 2
  auto cached = engine.Execute(query);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.result->ScalarAt(0, 0), Value(3));  // stale by design
  EXPECT_EQ(engine.dup_stats().invalidations, 0u);
  EXPECT_EQ(engine.dup_stats().update_events, 1u);
  EXPECT_EQ(engine.ExecuteUncached(*query).ScalarAt(0, 0), Value(2));
}

}  // namespace
}  // namespace qc::dup
