// Statement-level update batching: a multi-row DML statement reaches the
// DUP engine as ONE batch — epochs stamped once, affected keys deduplicated
// across rows, the cache invalidated with one shard-lock acquisition per
// touched shard — plus the new observability around it (invalidation
// latency histogram, predicate-index counters, per-source attribution).
#include <gtest/gtest.h>

#include <memory>

#include "dup/engine.h"
#include "middleware/query_engine.h"
#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::dup {
namespace {

middleware::CachedQueryEngine::Options EngineOptions() {
  middleware::CachedQueryEngine::Options options;
  options.policy = InvalidationPolicy::kValueAware;
  return options;
}

TEST(BatchingTest, MultiRowStatementIsOneBatch) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                       {"Y", ValueType::kInt, false}}));
  middleware::CachedQueryEngine engine(db, EngineOptions());
  for (int i = 0; i < 100; ++i) {
    engine.ExecuteDml("INSERT INTO T (X, Y) VALUES (" + std::to_string(i) + ", 0)");
  }

  const DupStats before = engine.dup_stats();
  engine.ExecuteDml("UPDATE T SET Y = 1 WHERE X >= 0");
  const DupStats after = engine.dup_stats();
  EXPECT_EQ(after.update_batches - before.update_batches, 1u);
  EXPECT_EQ(after.update_events - before.update_events, 100u);

  // Rows already at Y = 1 emit nothing (the setter guard), so re-running
  // the same statement delivers an empty batch — not even a batch count.
  const DupStats again = engine.dup_stats();
  engine.ExecuteDml("UPDATE T SET Y = 1 WHERE X >= 0");
  EXPECT_EQ(engine.dup_stats().update_batches, again.update_batches);
}

TEST(BatchingTest, BatchInvalidationLocksShardsNotRows) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                       {"Y", ValueType::kInt, false}}));
  auto options = EngineOptions();
  options.cache.shards = 8;
  middleware::CachedQueryEngine engine(db, options);

  constexpr int kRows = 1000;
  constexpr int kQueries = 50;
  {
    storage::Table& table = db.GetTable("T");
    storage::Table::BatchScope scope(table);
    for (int i = 0; i < kRows; ++i) table.Insert({Value(i % kQueries), Value(i)});
  }
  for (int q = 0; q < kQueries; ++q) {
    const auto result =
        engine.ExecuteSql("SELECT COUNT(*) FROM T WHERE X = " + std::to_string(q));
    ASSERT_FALSE(result.cache_hit);
  }
  ASSERT_EQ(engine.dup_stats().registered_queries, static_cast<uint64_t>(kQueries));

  const cache::CacheStats before = engine.cache_stats();
  engine.ExecuteDml("DELETE FROM T WHERE X >= 0");  // one statement, 1000 rows
  const cache::CacheStats after = engine.cache_stats();

  EXPECT_EQ(after.invalidations - before.invalidations, static_cast<uint64_t>(kQueries));
  const uint64_t lock_acquisitions = after.invalidate_shard_locks - before.invalidate_shard_locks;
  EXPECT_GT(lock_acquisitions, 0u);
  EXPECT_LE(lock_acquisitions, 8u);  // one per touched shard, NOT one per row
}

TEST(BatchingTest, BatchStampsEpochsBeforeInvalidation) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                       {"Y", ValueType::kInt, false}}));
  middleware::CachedQueryEngine engine(db, EngineOptions());
  for (int i = 0; i < 10; ++i) {
    engine.ExecuteDml("INSERT INTO T (X, Y) VALUES (" + std::to_string(i) + ", 0)");
  }
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE Y = 0");
  UpdateEpochs::Snapshot snapshot = engine.dup_engine().SnapshotDependencies(query);
  EXPECT_TRUE(snapshot.Current());
  engine.ExecuteDml("UPDATE T SET Y = 2 WHERE X < 5");
  // The statement's batch advanced the Y column epoch exactly like the
  // per-row path would: an in-flight execution must fail admission.
  EXPECT_FALSE(snapshot.Current());
}

TEST(BatchingTest, InvalidationLatencyHistogramRecordsPerStatement) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                       {"Y", ValueType::kInt, false}}));
  auto options = EngineOptions();
  options.collect_latency_metrics = true;
  middleware::CachedQueryEngine engine(db, options);

  engine.ExecuteDml("INSERT INTO T (X, Y) VALUES (1, 0)");
  engine.ExecuteDml("INSERT INTO T (X, Y) VALUES (2, 0)");
  EXPECT_EQ(engine.latency_metrics().invalidations.count(), 2u);
  engine.ExecuteDml("UPDATE T SET Y = 9 WHERE X >= 0");  // multi-row: ONE sample
  EXPECT_EQ(engine.latency_metrics().invalidations.count(), 3u);
  EXPECT_GT(engine.latency_metrics().invalidations.total().count(), 0);
}

TEST(BatchingTest, PredicateIndexCountersSurfaceInStats) {
  storage::Database db;
  db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                       {"S", ValueType::kString, false}}));
  middleware::CachedQueryEngine engine(db, EngineOptions());
  engine.ExecuteDml("INSERT INTO T (X, S) VALUES (1, 'widget')");
  engine.ExecuteSql("SELECT COUNT(*) FROM T WHERE X = 1");
  engine.ExecuteSql("SELECT COUNT(*) FROM T WHERE S LIKE 'wid%'");  // uncompilable gate

  const DupStats before = engine.dup_stats();
  engine.ExecuteDml("UPDATE T SET X = 2 WHERE X = 1");  // indexed flip probe
  const DupStats after_update = engine.dup_stats();
  EXPECT_GT(after_update.predicate_index_probes, before.predicate_index_probes);

  engine.ExecuteDml("INSERT INTO T (X, S) VALUES (3, 'gadget')");  // row probe
  const DupStats after_insert = engine.dup_stats();
  EXPECT_GT(after_insert.predicate_index_probes, after_update.predicate_index_probes);
  // The wildcard-LIKE registration cannot be interval-compiled: every row
  // probe reports it for direct filter evaluation and counts a fallback.
  EXPECT_GT(after_insert.predicate_index_fallbacks, 0u);
}

// Regression: affected_by_source must attribute only *object* vertices
// (cache churn) to the triggering column — propagation through a
// multi-level ODG also returns intermediate vertices, which previously
// inflated the count.
TEST(BatchingTest, AffectedBySourceCountsOnlyObjectVertices) {
  storage::Database db;
  storage::Table& table =
      db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                           {"Y", ValueType::kInt, false}}));
  cache::GpsCache cache{cache::GpsCacheConfig{}};
  DupEngine::Options options;
  options.policy = InvalidationPolicy::kValueAware;
  DupEngine dup(cache, options);
  db.Subscribe([&dup](const storage::UpdateEvent& event) { dup.OnUpdate(event); });

  auto query = sql::ParseAndBind("SELECT COUNT(*) FROM T WHERE X = 1", db);
  const std::string key = sql::Fingerprint(query->stmt(), {});
  cache.Put(key, std::make_shared<cache::StringValue>("r"));
  dup.RegisterQuery(key, query, {});

  // Multi-level graph (paper Fig. 2): hang an intermediate vertex off the
  // column; Propagate will return it alongside the object vertex.
  odg::Graph& graph = dup.graph_for_test();
  const auto column_vertex = graph.Find("col:T.X");
  ASSERT_TRUE(column_vertex.has_value());
  const odg::VertexId mid = graph.AddVertex("intermediate", odg::VertexKind::kIntermediate);
  graph.AddEdge(*column_vertex, mid);

  const storage::RowId row = table.Insert({Value(0), Value(0)});
  table.Update(row, 0, Value(1));  // 0 -> 1 flips "X = 1"
  const DupStats stats = dup.stats();
  const auto it = stats.affected_by_source.find("col:T.X");
  ASSERT_NE(it, stats.affected_by_source.end());
  EXPECT_EQ(it->second, 1u);  // the object vertex only, not the intermediate
}

}  // namespace
}  // namespace qc::dup
