// Differential property tests for the sublinear invalidation path:
//
//   1. CompileAcceptSet (dup/row_index.h) against ColumnPredicate::Eval —
//      the compiled interval set must contain exactly the values where the
//      filter is definitely true.
//   2. A predicate-indexed DupEngine against a linear-scan DupEngine — for
//      identical registrations and identical randomized event streams
//      (updates, inserts, deletes, NULLs, multi-row batches), the two must
//      invalidate exactly the same cache entries under Policies II/III/IV.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "dup/engine.h"
#include "dup/row_index.h"
#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::dup {
namespace {

Value RandomValue(std::mt19937& rng, bool allow_null) {
  std::uniform_int_distribution<int> pick(0, allow_null ? 3 : 2);
  switch (pick(rng)) {
    case 0:
      return Value(static_cast<int64_t>(std::uniform_int_distribution<int>(-8, 25)(rng)));
    case 1:
      return Value(std::uniform_int_distribution<int>(-8, 25)(rng) / 2.0);
    case 2: {
      static const char* kStrings[] = {"ab", "abc", "alpha", "beta", "zz"};
      return Value(kStrings[std::uniform_int_distribution<size_t>(0, 4)(rng)]);
    }
    default:
      return Value::Null();
  }
}

odg::Atom RandomAtom(std::mt19937& rng) {
  odg::Atom atom;
  switch (std::uniform_int_distribution<int>(0, 4)(rng)) {
    case 0: {
      atom.kind = odg::Atom::Kind::kCmp;
      static const sql::BinaryOp kOps[] = {sql::BinaryOp::kEq, sql::BinaryOp::kNe,
                                           sql::BinaryOp::kLt, sql::BinaryOp::kLe,
                                           sql::BinaryOp::kGt, sql::BinaryOp::kGe};
      atom.cmp_op = kOps[std::uniform_int_distribution<size_t>(0, 5)(rng)];
      atom.a = RandomValue(rng, true);
      break;
    }
    case 1:
      atom.kind = odg::Atom::Kind::kBetween;
      atom.a = RandomValue(rng, true);
      atom.b = RandomValue(rng, true);
      break;
    case 2: {
      atom.kind = odg::Atom::Kind::kIn;
      const size_t n = std::uniform_int_distribution<size_t>(0, 3)(rng);
      for (size_t i = 0; i < n; ++i) atom.set.push_back(RandomValue(rng, true));
      break;
    }
    case 3:
      atom.kind = odg::Atom::Kind::kLike;
      atom.a = Value("beta");  // no wildcard: stays compilable
      break;
    default:
      atom.kind = odg::Atom::Kind::kIsNull;
      break;
  }
  atom.negated = std::uniform_int_distribution<int>(0, 1)(rng) == 1;
  return atom;
}

odg::ColumnPredicate RandomPredicate(std::mt19937& rng, int depth) {
  const int pick = std::uniform_int_distribution<int>(0, depth > 0 ? 4 : 1)(rng);
  switch (pick) {
    case 0:
      return odg::ColumnPredicate::MakeAtom(RandomAtom(rng));
    case 1:
      return odg::ColumnPredicate::True();
    case 2:
    case 3: {
      std::vector<odg::ColumnPredicate> children;
      const int n = std::uniform_int_distribution<int>(1, 3)(rng);
      for (int i = 0; i < n; ++i) children.push_back(RandomPredicate(rng, depth - 1));
      return pick == 2 ? odg::ColumnPredicate::And(std::move(children))
                       : odg::ColumnPredicate::Or(std::move(children));
    }
    default: {
      odg::ColumnPredicate p;
      p.kind = odg::ColumnPredicate::Kind::kNot;
      p.children.push_back(RandomPredicate(rng, depth - 1));
      return p;
    }
  }
}

TEST(CompileAcceptSetTest, MatchesDefinitelyTrueEvaluation) {
  std::mt19937 rng(73);
  int compiled = 0;
  for (int round = 0; round < 400; ++round) {
    const odg::ColumnPredicate pred = RandomPredicate(rng, 3);
    const auto set = CompileAcceptSet(pred);
    if (!set) continue;  // wildcard LIKE inside: legitimately uncompilable
    ++compiled;
    for (int probe = 0; probe < 40; ++probe) {
      const Value v = RandomValue(rng, true);
      const auto eval = pred.Eval(v);
      const bool definitely_true = eval.has_value() && *eval;
      EXPECT_EQ(set->Contains(v), definitely_true)
          << pred.ToString() << " at " << v.ToString() << " (set " << set->ToString() << ")";
    }
  }
  EXPECT_GT(compiled, 200);  // the generator must mostly produce compilable trees
}

TEST(ValueSetTest, AlgebraBasics) {
  const ValueSet r = ValueSet::Range(Value(2), Value(9));
  EXPECT_TRUE(r.Contains(Value(2)));
  EXPECT_TRUE(r.Contains(Value(9)));
  EXPECT_FALSE(r.Contains(Value(10)));
  EXPECT_FALSE(r.Contains(Value::Null()));

  const ValueSet u = ValueSet::Union(ValueSet::Below(Value(3), false), ValueSet::Above(Value(3), false));
  EXPECT_FALSE(u.Contains(Value(3)));  // open bounds do not touch
  const ValueSet c = ValueSet::Complement(u);
  EXPECT_TRUE(c.Contains(Value(3)));
  EXPECT_TRUE(c.contains_null());

  EXPECT_TRUE(ValueSet::Intersect(r, ValueSet::Point(Value(5))).Contains(Value(5)));
  EXPECT_TRUE(ValueSet::Intersect(r, ValueSet::Point(Value(11))).empty());
  EXPECT_TRUE(ValueSet::All(true).IsUniverse());
}

/// Two engines, identical registrations, identical event streams — one
/// answers from the predicate-interval indexes, the other scans linearly.
/// After every delivered event/batch the surviving cache entries must
/// agree exactly.
class EngineDifferential {
 public:
  explicit EngineDifferential(InvalidationPolicy policy) {
    table_ = &db_.CreateTable("T", storage::Schema({{"X", ValueType::kInt, true},
                                                    {"Y", ValueType::kInt, true},
                                                    {"S", ValueType::kString, true}}));
    DupEngine::Options indexed_options;
    indexed_options.policy = policy;
    indexed_options.use_predicate_index = true;
    DupEngine::Options linear_options = indexed_options;
    linear_options.use_predicate_index = false;
    indexed_cache_ = std::make_unique<cache::GpsCache>(cache::GpsCacheConfig{});
    linear_cache_ = std::make_unique<cache::GpsCache>(cache::GpsCacheConfig{});
    indexed_ = std::make_unique<DupEngine>(*indexed_cache_, indexed_options);
    linear_ = std::make_unique<DupEngine>(*linear_cache_, linear_options);
    db_.SubscribeBatch([this](const storage::UpdateBatch& batch) {
      indexed_->OnBatch(batch);
      linear_->OnBatch(batch);
    });
  }

  void Register(const std::string& sql, const std::vector<Value>& params = {}) {
    auto query = sql::ParseAndBind(sql, db_);
    const std::string key = sql::Fingerprint(query->stmt(), params);
    keys_.push_back(key);
    queries_[key] = {query, params};
    Cache(key);
  }

  /// Compare surviving entries, then re-cache whatever was invalidated so
  /// the next event starts from a fully populated cache again.
  void CheckAndRefill(const std::string& context) {
    for (const std::string& key : keys_) {
      const bool in_indexed = indexed_cache_->Contains(key);
      const bool in_linear = linear_cache_->Contains(key);
      EXPECT_EQ(in_indexed, in_linear) << key << " after " << context;
      if (!in_indexed || !in_linear) Cache(key);
    }
  }

  storage::Table& table() { return *table_; }

 private:
  void Cache(const std::string& key) {
    const auto& [query, params] = queries_[key];
    indexed_cache_->Put(key, std::make_shared<cache::StringValue>("r"));
    indexed_->RegisterQuery(key, query, params);
    linear_cache_->Put(key, std::make_shared<cache::StringValue>("r"));
    linear_->RegisterQuery(key, query, params);
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<cache::GpsCache> indexed_cache_, linear_cache_;
  std::unique_ptr<DupEngine> indexed_, linear_;
  std::vector<std::string> keys_;
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<const sql::BoundQuery>, std::vector<Value>>>
      queries_;
};

void RunDifferential(InvalidationPolicy policy, uint32_t seed) {
  EngineDifferential diff(policy);
  diff.Register("SELECT COUNT(*) FROM T WHERE X = 5");
  diff.Register("SELECT COUNT(*) FROM T WHERE X = ?", {Value(12)});
  diff.Register("SELECT COUNT(*) FROM T WHERE X BETWEEN 3 AND 11");
  diff.Register("SELECT COUNT(*) FROM T WHERE X > 15");
  diff.Register("SELECT COUNT(*) FROM T WHERE X <= 0");
  diff.Register("SELECT COUNT(*) FROM T WHERE X <> 7");
  diff.Register("SELECT COUNT(*) FROM T WHERE X IN (1, 2, 3)");
  diff.Register("SELECT COUNT(*) FROM T WHERE X IS NULL");
  diff.Register("SELECT COUNT(*) FROM T WHERE S LIKE 'ab%'");  // wildcard: linear fallback
  diff.Register("SELECT COUNT(*) FROM T WHERE S LIKE 'beta'");
  diff.Register("SELECT SUM(Y) FROM T WHERE X = 4");  // Y is an opaque dependency
  diff.Register("SELECT COUNT(*) FROM T WHERE X = 2 AND S = 'abc'");
  diff.Register("SELECT COUNT(*) FROM T WHERE X < 1 OR X > 20");
  diff.Register("SELECT COUNT(*) FROM T");

  std::mt19937 rng(seed);
  std::vector<storage::RowId> live;
  auto random_int = [&]() -> Value {
    if (std::uniform_int_distribution<int>(0, 4)(rng) == 0) return Value::Null();
    return Value(static_cast<int64_t>(std::uniform_int_distribution<int>(-8, 25)(rng)));
  };
  auto random_str = [&]() -> Value {
    if (std::uniform_int_distribution<int>(0, 4)(rng) == 0) return Value::Null();
    static const char* kStrings[] = {"ab", "abc", "abz", "alpha", "beta", "zz"};
    return Value(kStrings[std::uniform_int_distribution<size_t>(0, 5)(rng)]);
  };
  auto random_row = [&] { return storage::Row{random_int(), random_int(), random_str()}; };
  auto mutate_once = [&] {
    const int op = std::uniform_int_distribution<int>(0, 9)(rng);
    if (op < 5 || live.empty()) {
      live.push_back(diff.table().Insert(random_row()));
    } else if (op < 8) {
      const storage::RowId row =
          live[std::uniform_int_distribution<size_t>(0, live.size() - 1)(rng)];
      const uint32_t column = std::uniform_int_distribution<uint32_t>(0, 2)(rng);
      diff.table().Update(row, column, column == 2 ? random_str() : random_int());
    } else {
      const size_t pos = std::uniform_int_distribution<size_t>(0, live.size() - 1)(rng);
      diff.table().Delete(live[pos]);
      live.erase(live.begin() + pos);
    }
  };

  for (int round = 0; round < 150; ++round) {
    if (round % 10 == 9) {
      // Multi-row statement: events buffer and deliver as one batch.
      storage::Table::BatchScope scope(diff.table());
      const int n = std::uniform_int_distribution<int>(2, 6)(rng);
      for (int i = 0; i < n; ++i) mutate_once();
    } else {
      mutate_once();
    }
    diff.CheckAndRefill("round " + std::to_string(round));
  }
}

TEST(EngineDifferentialTest, PolicyIIMatchesLinear) {
  RunDifferential(InvalidationPolicy::kValueUnaware, 11);
}

TEST(EngineDifferentialTest, PolicyIIIMatchesLinear) {
  RunDifferential(InvalidationPolicy::kValueAware, 22);
}

TEST(EngineDifferentialTest, PolicyIVMatchesLinear) {
  RunDifferential(InvalidationPolicy::kRowAware, 33);
}

}  // namespace
}  // namespace qc::dup
