#include "dup/engine.h"

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace qc::dup {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("A", storage::Schema({{"X", ValueType::kInt, false},
                                                    {"Y", ValueType::kInt, false},
                                                    {"S", ValueType::kString, false}}));
  }

  /// Build a cache + engine with `policy`, register `sql` as a cached
  /// object, and wire database events in. Returns the fingerprint.
  std::string Setup(InvalidationPolicy policy, const std::string& sql,
                    const std::vector<Value>& params = {}) {
    cache_ = std::make_unique<cache::GpsCache>(cache::GpsCacheConfig{});
    DupEngine::Options options;
    options.policy = policy;
    engine_ = std::make_unique<DupEngine>(*cache_, options);
    db_subscription_ = false;
    return Register(sql, params);
  }

  std::string Register(const std::string& sql, const std::vector<Value>& params = {}) {
    auto query = sql::ParseAndBind(sql, db_);
    const std::string key = sql::Fingerprint(query->stmt(), params);
    cache_->Put(key, std::make_shared<cache::StringValue>("result"));
    engine_->RegisterQuery(key, query, params);
    if (!db_subscription_) {
      db_.Subscribe([this](const storage::UpdateEvent& e) { engine_->OnUpdate(e); });
      db_subscription_ = true;
    }
    return key;
  }

  bool Cached(const std::string& key) { return cache_->Contains(key); }

  storage::Database db_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<cache::GpsCache> cache_;
  std::unique_ptr<DupEngine> engine_;
  bool db_subscription_ = false;
};

TEST_F(EngineTest, PolicyIFlushesOnAnyUpdate) {
  const std::string key = Setup(InvalidationPolicy::kFlushAll, "SELECT COUNT(*) FROM A WHERE X = 1");
  const std::string other = Register("SELECT COUNT(*) FROM A WHERE Y = 5");
  const auto row = table_->Insert({Value(9), Value(9), Value("irrelevant")});
  EXPECT_FALSE(Cached(key));
  EXPECT_FALSE(Cached(other));
  EXPECT_EQ(engine_->stats().full_flushes, 1u);
  (void)row;
}

TEST_F(EngineTest, PolicyIIInvalidatesByColumnOnly) {
  const std::string key = Setup(InvalidationPolicy::kValueUnaware,
                                "SELECT COUNT(*) FROM A WHERE X = 1");
  const auto row = table_->Insert({Value(5), Value(5), Value("s")});
  // Insert touches the table -> value-unaware invalidates.
  EXPECT_FALSE(Cached(key));

  const std::string key2 = Register("SELECT COUNT(*) FROM A WHERE X = 1");
  table_->Update(row, 1, Value(77));  // Y is not a dependency of the query
  EXPECT_TRUE(Cached(key2));
  table_->Update(row, 0, Value(77));  // X is, and II ignores values
  EXPECT_FALSE(Cached(key2));
}

TEST_F(EngineTest, PolicyIIIUpdateChecksAtomFlips) {
  const std::string key = Setup(InvalidationPolicy::kValueAware,
                                "SELECT COUNT(*) FROM A WHERE X BETWEEN 10 AND 20");
  const auto row = table_->Insert({Value(50), Value(1), Value("s")});  // outside: no effect
  EXPECT_TRUE(Cached(key));

  table_->Update(row, 0, Value(60));  // outside -> outside
  EXPECT_TRUE(Cached(key));
  table_->Update(row, 0, Value(15));  // outside -> inside: flip
  EXPECT_FALSE(Cached(key));

  const std::string key2 = Register("SELECT COUNT(*) FROM A WHERE X BETWEEN 10 AND 20");
  table_->Update(row, 0, Value(12));  // inside -> inside
  EXPECT_TRUE(Cached(key2));
  table_->Update(row, 1, Value(99));  // other column
  EXPECT_TRUE(Cached(key2));
}

TEST_F(EngineTest, PolicyIIIInsertUsesConjunctiveFilter) {
  // The §4.2 Platinum scenario reduced to its essence: a query constraining
  // two columns is only invalidated by an insert whose row satisfies BOTH
  // single-column filters.
  const std::string q1 = Setup(InvalidationPolicy::kValueAware,
                               "SELECT COUNT(*) FROM A WHERE S = 'classifier' AND X = 1");
  const std::string q2 = Register("SELECT COUNT(*) FROM A WHERE S = 'promotion' AND X = 1");

  table_->Insert({Value(1), Value(0), Value("classifier")});  // matches q1 only
  EXPECT_FALSE(Cached(q1));
  EXPECT_TRUE(Cached(q2));  // "still valid and don't need to be invalidated"

  const std::string q1b = Register("SELECT COUNT(*) FROM A WHERE S = 'classifier' AND X = 1");
  table_->Insert({Value(2), Value(0), Value("classifier")});  // X = 2 fails both
  EXPECT_TRUE(Cached(q1b));
  EXPECT_TRUE(Cached(q2));
}

TEST_F(EngineTest, PolicyIIIDeleteChecksOldRow) {
  const std::string key = Setup(InvalidationPolicy::kValueAware,
                                "SELECT COUNT(*) FROM A WHERE X = 1");
  const auto matching = table_->Insert({Value(1), Value(0), Value("s")});
  const auto other = table_->Insert({Value(2), Value(0), Value("s")});
  const std::string fresh = Register("SELECT COUNT(*) FROM A WHERE X = 1");

  table_->Delete(other);  // non-matching row: no invalidation
  EXPECT_TRUE(Cached(fresh));
  table_->Delete(matching);
  EXPECT_FALSE(Cached(fresh));
  (void)key;
}

TEST_F(EngineTest, OpaqueColumnAlwaysFires) {
  const std::string key = Setup(InvalidationPolicy::kValueAware,
                                "SELECT SUM(Y) FROM A WHERE X = 1");
  const auto row = table_->Insert({Value(1), Value(10), Value("s")});
  const std::string fresh = Register("SELECT SUM(Y) FROM A WHERE X = 1");
  table_->Update(row, 1, Value(20));  // Y is the aggregate input: opaque edge
  EXPECT_FALSE(Cached(fresh));
  (void)key;
}

TEST_F(EngineTest, ExistenceEdgeCoversNoWhereQueries) {
  const std::string key = Setup(InvalidationPolicy::kValueAware, "SELECT COUNT(*) FROM A");
  table_->Insert({Value(1), Value(1), Value("s")});
  EXPECT_FALSE(Cached(key));
}

TEST_F(EngineTest, ParameterizedRegistrationsAreIndependent) {
  const std::string gold = Setup(InvalidationPolicy::kValueAware,
                                 "SELECT COUNT(*) FROM A WHERE S = $1", {Value("gold")});
  const std::string silver = Register("SELECT COUNT(*) FROM A WHERE S = $1", {Value("silver")});
  ASSERT_NE(gold, silver);
  table_->Insert({Value(1), Value(1), Value("silver")});
  EXPECT_TRUE(Cached(gold));
  EXPECT_FALSE(Cached(silver));
}

TEST_F(EngineTest, RowAwareSkipsIrrelevantRowUpdates) {
  const std::string key = Setup(InvalidationPolicy::kRowAware,
                                "SELECT COUNT(*) FROM A WHERE X BETWEEN 10 AND 20 AND Y = 7");
  // Row with Y != 7: X moving into [10,20] flips the X atom (Policy III
  // would invalidate) but the row still cannot match -> IV keeps the entry.
  const auto row = table_->Insert({Value(50), Value(1), Value("s")});
  const std::string fresh = Register("SELECT COUNT(*) FROM A WHERE X BETWEEN 10 AND 20 AND Y = 7");
  table_->Update(row, 0, Value(15));
  EXPECT_TRUE(Cached(fresh));
  EXPECT_GT(engine_->stats().row_aware_saves, 0u);

  // A row that really enters the result must still invalidate.
  table_->Update(row, 1, Value(7));
  EXPECT_FALSE(Cached(fresh));
  (void)key;
}

TEST_F(EngineTest, RowAwareKeepsWhenResultColumnsUntouched) {
  // Row matches before and after, but the changed column is WHERE-only and
  // stays on the same side of its atoms... that case III already skips; the
  // interesting one: X changes within the range -> III skips too (no flip);
  // so probe the aggregate-input case: Y feeds SUM, X is the filter.
  const std::string key = Setup(InvalidationPolicy::kRowAware,
                                "SELECT SUM(Y) FROM A WHERE X = 1");
  const auto row = table_->Insert({Value(2), Value(10), Value("s")});
  const std::string fresh = Register("SELECT SUM(Y) FROM A WHERE X = 1");
  // Y (opaque, feeds result) changes on a row that does NOT match: IV keeps.
  table_->Update(row, 1, Value(30));
  EXPECT_TRUE(Cached(fresh));
  // Same change on a matching row invalidates.
  table_->Update(row, 0, Value(1));   // row now matches (membership flip)
  const std::string again = Register("SELECT SUM(Y) FROM A WHERE X = 1");
  table_->Update(row, 1, Value(40));
  EXPECT_FALSE(Cached(again));
  (void)key;
  (void)fresh;
}

TEST_F(EngineTest, UnregisterOnCacheRemovalKeepsGraphClean) {
  const std::string key = Setup(InvalidationPolicy::kValueAware,
                                "SELECT COUNT(*) FROM A WHERE X = 1");
  const size_t vertices_with = engine_->GraphVertexCount();
  cache_->Invalidate(key);
  EXPECT_LT(engine_->GraphVertexCount(), vertices_with);
  EXPECT_EQ(engine_->stats().registered_queries, 0u);
  // A second invalidation of the same key is a no-op.
  cache_->Invalidate(key);
  EXPECT_EQ(engine_->stats().registered_queries, 0u);
}

TEST_F(EngineTest, ReRegistrationReplacesVertex) {
  const std::string key = Setup(InvalidationPolicy::kValueAware,
                                "SELECT COUNT(*) FROM A WHERE X = 1");
  auto query = sql::ParseAndBind("SELECT COUNT(*) FROM A WHERE X = 1", db_);
  engine_->RegisterQuery(key, query, {});
  engine_->RegisterQuery(key, query, {});
  EXPECT_EQ(engine_->stats().registered_queries, 1u);
}

TEST_F(EngineTest, InvalidationCountsTrackFig13Metric) {
  Setup(InvalidationPolicy::kValueUnaware, "SELECT COUNT(*) FROM A WHERE X = 1");
  Register("SELECT COUNT(*) FROM A WHERE Y = 1");
  const auto row = table_->Insert({Value(1), Value(1), Value("s")});  // both invalidated
  Register("SELECT COUNT(*) FROM A WHERE X = 1");
  Register("SELECT COUNT(*) FROM A WHERE Y = 1");
  table_->Update(row, {{0, Value(2)}, {1, Value(2)}});  // one event, two columns
  const DupStats stats = engine_->stats();
  EXPECT_EQ(stats.update_events, 2u);
  EXPECT_EQ(stats.invalidations, 4u);
  EXPECT_DOUBLE_EQ(stats.InvalidationsPerEvent(), 2.0);
}

TEST_F(EngineTest, DumpGraphShowsAnnotatedEdges) {
  Setup(InvalidationPolicy::kValueAware, "SELECT COUNT(*) FROM A WHERE X BETWEEN 2 AND 9");
  const std::string dot = engine_->DumpGraph();
  EXPECT_NE(dot.find("col:A.X"), std::string::npos);
  EXPECT_NE(dot.find("BETWEEN 2 AND 9"), std::string::npos);
}

TEST_F(EngineTest, EventsForUnknownTablesAreIgnored) {
  Setup(InvalidationPolicy::kValueAware, "SELECT COUNT(*) FROM A WHERE X = 1");
  storage::Table& other = db_.CreateTable("OTHER", storage::Schema({{"C", ValueType::kInt, false}}));
  EXPECT_NO_THROW(other.Insert({Value(1)}));
  EXPECT_EQ(engine_->stats().invalidations, 0u);
}

}  // namespace
}  // namespace qc::dup
