#include <gtest/gtest.h>

#include "middleware/query_engine.h"

namespace qc::dup {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                    {"KIND", ValueType::kString, false}}));
    for (int i = 1; i <= 10; ++i) table_->Insert({Value(i), Value("a")});
    engine_ = std::make_unique<middleware::CachedQueryEngine>(db_, middleware::CachedQueryEngine::Options{});
    engine_->dup_engine().SetTracer([this](const std::string& key, const std::string& reason) {
      traces_.emplace_back(key, reason);
    });
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  std::vector<std::pair<std::string, std::string>> traces_;
};

TEST_F(TracerTest, UpdateTraceNamesColumnAndValues) {
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE X BETWEEN 3 AND 7");
  engine_->Execute(query);
  table_->Update(0, 0, Value(5));  // 1 -> 5 enters the range
  ASSERT_EQ(traces_.size(), 1u);
  EXPECT_NE(traces_[0].second.find("T.X"), std::string::npos);
  EXPECT_NE(traces_[0].second.find("1 -> 5"), std::string::npos);
  EXPECT_NE(traces_[0].second.find("annotation"), std::string::npos);
  // Fingerprint normalization renders BETWEEN as its bound pair (sorted
  // conjuncts), so the trace key carries the canonical spelling.
  EXPECT_NE(traces_[0].first.find("X >= 3"), std::string::npos);
  EXPECT_NE(traces_[0].first.find("X <= 7"), std::string::npos);
}

TEST_F(TracerTest, NoTraceWhenNothingInvalidates) {
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE X BETWEEN 3 AND 7");
  engine_->Execute(query);
  table_->Update(9, 0, Value(100));  // 10 -> 100 stays outside
  EXPECT_TRUE(traces_.empty());
}

TEST_F(TracerTest, InsertTraceMentionsFilters) {
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'a'");
  engine_->Execute(query);
  table_->Insert({Value(11), Value("a")});
  ASSERT_EQ(traces_.size(), 1u);
  EXPECT_NE(traces_[0].second.find("insert into T"), std::string::npos);
  EXPECT_NE(traces_[0].second.find("filter"), std::string::npos);
}

TEST_F(TracerTest, DeleteTraceUsesDeleteVerb) {
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'a'");
  engine_->Execute(query);
  table_->Delete(0);
  ASSERT_EQ(traces_.size(), 1u);
  EXPECT_NE(traces_[0].second.find("delete from T"), std::string::npos);
}

TEST_F(TracerTest, TracerCanBeCleared) {
  auto query = engine_->Prepare("SELECT COUNT(*) FROM T WHERE KIND = 'a'");
  engine_->Execute(query);
  engine_->dup_engine().SetTracer(nullptr);
  table_->Insert({Value(12), Value("a")});
  EXPECT_TRUE(traces_.empty());
}

}  // namespace
}  // namespace qc::dup

namespace qc::dup {
namespace {

TEST(SourceAttribution, CountsAffectedKeysPerColumnAndRowEvent) {
  storage::Database db;
  auto& table = db.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                     {"S", ValueType::kString, false}}));
  table.Insert({Value(1), Value("a")});
  middleware::CachedQueryEngine engine(db, {});
  auto by_x = engine.Prepare("SELECT COUNT(*) FROM T WHERE X <= 5");
  auto by_s = engine.Prepare("SELECT COUNT(*) FROM T WHERE S = 'a'");
  engine.Execute(by_x);
  engine.Execute(by_s);

  table.Update(0, 0, Value(50));  // X crosses: 1 affected via col:T.X
  engine.Execute(by_x);
  table.Insert({Value(2), Value("a")});  // affects both queries via insert
  const auto sources = engine.dup_stats().affected_by_source;
  EXPECT_EQ(sources.at("col:T.X"), 1u);
  EXPECT_EQ(sources.at("insert:T"), 2u);
  EXPECT_EQ(sources.count("col:T.S"), 0u);  // never fired on its own
}

}  // namespace
}  // namespace qc::dup
