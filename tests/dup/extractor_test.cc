#include "dup/extractor.h"

#include <gtest/gtest.h>

#include "sql/binder.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace qc::dup {
namespace {

class ExtractorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.CreateTable("A", storage::Schema({{"X", ValueType::kInt, false},
                                          {"Y", ValueType::kInt, false},
                                          {"Z", ValueType::kInt, false},
                                          {"S", ValueType::kString, true}}));
    db_.CreateTable("B", storage::Schema({{"Y", ValueType::kInt, false},
                                          {"W", ValueType::kInt, false}}));
  }

  std::shared_ptr<const DependencyTemplate> Extract(const std::string& sql,
                                                    ExtractionOptions options = {}) {
    query_ = sql::ParseAndBind(sql, db_);
    return ExtractDependencies(*query_, options);
  }

  const ColumnDependencyTemplate* Column(const DependencyTemplate& deps, const std::string& table,
                                         const std::string& column) {
    for (const auto& col : deps.columns) {
      if (col.table_name == table && col.column_name == column) return &col;
    }
    return nullptr;
  }

  storage::Database db_;
  std::shared_ptr<const sql::BoundQuery> query_;
};

TEST_F(ExtractorTest, PaperFig4Example) {
  // select A where A.x > 2 and A.x < 9 and A.z = B.y
  auto deps = Extract(
      "SELECT COUNT(*) FROM A, B WHERE A.X > 2 AND A.X < 9 AND A.Z = B.Y");
  ASSERT_EQ(deps->columns.size(), 3u);

  const auto* x = Column(*deps, "A", "X");
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->opaque);
  EXPECT_EQ(x->atoms.size(), 2u);  // > 2 and < 9

  // "There are no annotations of edges originating from A.z and B.y ...
  // any change to A.z or B.y might affect the value of Q1."
  const auto* z = Column(*deps, "A", "Z");
  ASSERT_NE(z, nullptr);
  EXPECT_TRUE(z->opaque);
  const auto* by = Column(*deps, "B", "Y");
  ASSERT_NE(by, nullptr);
  EXPECT_TRUE(by->opaque);

  // Instantiated annotation behaves like the "2,9" edge of Fig. 4.
  auto annotation = x->Instantiate({});
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(5), Value(9)));   // left the range
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(1), Value(3)));   // entered
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(3), Value(8)));  // inside -> inside
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(5)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(9)));  // 9 fails A.x < 9
}

TEST_F(ExtractorTest, EqualityAnnotation) {
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X = 3");
  const auto* x = Column(*deps, "A", "X");
  ASSERT_NE(x, nullptr);
  auto annotation = x->Instantiate({});
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(3), Value(4)));
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(7), Value(3)));
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(7), Value(8)));
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(3)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(4)));
}

TEST_F(ExtractorTest, NegatedEqualityFilterKeepsPolarity) {
  // Set Query Q2B shape: K2 = 2 AND NOT KN = 3.
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X = 2 AND NOT Y = 3");
  const auto* y = Column(*deps, "A", "Y");
  ASSERT_NE(y, nullptr);
  EXPECT_FALSE(y->opaque);
  auto annotation = y->Instantiate({});
  // An inserted row with Y = 5 satisfies "NOT Y = 3": it can affect the count.
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(5)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(3)));
  // Updates: only 3 <-> non-3 transitions matter.
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(3), Value(5)));
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(5), Value(6)));
}

TEST_F(ExtractorTest, OrOfRangesAnnotation) {
  // Set Query Q3B shape.
  auto deps = Extract(
      "SELECT COUNT(*) FROM A WHERE (X BETWEEN 10 AND 19 OR X BETWEEN 30 AND 39) AND Y = 1");
  const auto* x = Column(*deps, "A", "X");
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->opaque);
  EXPECT_EQ(x->atoms.size(), 2u);
  auto annotation = x->Instantiate({});
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(20), Value(25)));  // gap -> gap
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(20), Value(35)));
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(15)));
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(35)));
  EXPECT_FALSE(annotation.AffectedByRowValue(Value(25)));
}

TEST_F(ExtractorTest, DisjunctionRelaxesOtherColumnsFilters) {
  // X = 1 OR Y = 2: a row with X = 9 could still match via Y; the X filter
  // must not reject it.
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X = 1 OR Y = 2");
  const auto* x = Column(*deps, "A", "X");
  ASSERT_NE(x, nullptr);
  EXPECT_FALSE(x->opaque);
  auto annotation = x->Instantiate({});
  EXPECT_TRUE(annotation.AffectedByRowValue(Value(9)));  // filter is (X=1 OR TRUE)
  // but updates still gate on the atom:
  EXPECT_FALSE(annotation.AffectedByUpdate(Value(5), Value(6)));
  EXPECT_TRUE(annotation.AffectedByUpdate(Value(5), Value(1)));
}

TEST_F(ExtractorTest, ColumnComparedToColumnOfSameTableIsOpaque) {
  // Paper §5: "queries of Type 6 involve relationships between two
  // different attributes (A.x > A.y), where both Policy II and III are
  // also equivalent".
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X > Y");
  EXPECT_TRUE(Column(*deps, "A", "X")->opaque);
  EXPECT_TRUE(Column(*deps, "A", "Y")->opaque);
}

TEST_F(ExtractorTest, ProjectionAndAggregateDependencies) {
  ExtractionOptions sound;  // defaults: include everything
  auto deps = Extract("SELECT X, SUM(Y) FROM A WHERE Z = 1 GROUP BY X", sound);
  EXPECT_TRUE(Column(*deps, "A", "X")->opaque);   // group key
  EXPECT_TRUE(Column(*deps, "A", "Y")->opaque);   // aggregate arg
  EXPECT_FALSE(Column(*deps, "A", "Z")->opaque);  // annotated WHERE column
}

TEST_F(ExtractorTest, PaperFidelityDropsProjectionAndAggregateArgs) {
  auto deps = Extract("SELECT X, SUM(Y) FROM A WHERE Z = 1 GROUP BY X",
                      ExtractionOptions::PaperFidelity());
  EXPECT_TRUE(Column(*deps, "A", "X")->opaque);      // GROUP BY keys always stay
  EXPECT_EQ(Column(*deps, "A", "Y"), nullptr);       // SUM arg dropped (paper Fig. 8)
  EXPECT_NE(Column(*deps, "A", "Z"), nullptr);
  // result_columns still reflect the true result structure for Policy IV.
  ASSERT_EQ(deps->result_columns_per_slot.size(), 1u);
  EXPECT_EQ(deps->result_columns_per_slot[0].size(), 2u);  // X and Y
}

TEST_F(ExtractorTest, SelectStarMarksAllColumnsOpaque) {
  auto deps = Extract("SELECT * FROM A WHERE X = 1");
  EXPECT_EQ(deps->columns.size(), 4u);
  EXPECT_TRUE(Column(*deps, "A", "S")->opaque);
  // X appears in both the projection (opaque) and the WHERE (annotated):
  // opaque wins.
  EXPECT_TRUE(Column(*deps, "A", "X")->opaque);
}

TEST_F(ExtractorTest, ReferenceModeKeepsOnlyWhereColumns) {
  auto deps = Extract("SELECT * FROM A WHERE X = 1", ExtractionOptions::PaperFidelity());
  ASSERT_EQ(deps->columns.size(), 1u);
  EXPECT_EQ(deps->columns[0].column_name, "X");
  EXPECT_FALSE(deps->columns[0].opaque);
}

TEST_F(ExtractorTest, NoWhereNeedsExistenceEdge) {
  auto deps = Extract("SELECT COUNT(*) FROM A");
  EXPECT_TRUE(deps->columns.empty());
  ASSERT_EQ(deps->tables_needing_existence_edge.size(), 1u);
  EXPECT_EQ(deps->tables_needing_existence_edge[0], "A");
}

TEST_F(ExtractorTest, SelfJoinListsTableOnce) {
  auto deps = Extract("SELECT COUNT(*) FROM A A1, A A2 WHERE A1.X = A2.Y AND A1.Z = 5");
  ASSERT_EQ(deps->tables.size(), 1u);
  EXPECT_EQ(deps->tables[0], "A");
  EXPECT_TRUE(deps->tables_needing_existence_edge.empty());
}

TEST_F(ExtractorTest, ParameterizedAnnotationBindsAtRuntime) {
  // The §4.2 Q2($1) pattern: the skeleton is static, the annotation constant
  // is the run-time parameter.
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE S LIKE $1 AND X = 2");
  const auto* s = Column(*deps, "A", "S");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->opaque);
  auto gold = s->Instantiate({Value("Gold")});
  EXPECT_TRUE(gold.AffectedByRowValue(Value("Gold")));
  EXPECT_FALSE(gold.AffectedByRowValue(Value("Silver")));
  auto silver = s->Instantiate({Value("Silver")});
  EXPECT_TRUE(silver.AffectedByRowValue(Value("Silver")));
  EXPECT_FALSE(silver.AffectedByRowValue(Value("Gold")));
}

TEST_F(ExtractorTest, MissingParameterAtInstantiationThrows) {
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X = $1");
  const auto* x = Column(*deps, "A", "X");
  ASSERT_NE(x, nullptr);
  EXPECT_THROW(x->Instantiate({}), BindError);
}

TEST_F(ExtractorTest, InAndLikeAndIsNullAtoms) {
  auto deps = Extract(
      "SELECT COUNT(*) FROM A WHERE X IN (1, 2) AND S LIKE 'ready' AND Z IS NOT NULL");
  auto x = Column(*deps, "A", "X")->Instantiate({});
  EXPECT_TRUE(x.AffectedByRowValue(Value(2)));
  EXPECT_FALSE(x.AffectedByRowValue(Value(3)));
  auto s = Column(*deps, "A", "S")->Instantiate({});
  EXPECT_TRUE(s.AffectedByRowValue(Value("ready")));
  EXPECT_FALSE(s.AffectedByRowValue(Value("draft")));
  auto z = Column(*deps, "A", "Z")->Instantiate({});
  EXPECT_TRUE(z.AffectedByRowValue(Value(1)));
  EXPECT_FALSE(z.AffectedByRowValue(Value::Null()));
  EXPECT_TRUE(z.AffectedByUpdate(Value::Null(), Value(1)));
}

TEST_F(ExtractorTest, BetweenWithColumnBoundIsOpaque) {
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE X BETWEEN Y AND 10");
  EXPECT_TRUE(Column(*deps, "A", "X")->opaque);
  EXPECT_TRUE(Column(*deps, "A", "Y")->opaque);
}

TEST_F(ExtractorTest, ConstantOnLeftNormalizes) {
  auto deps = Extract("SELECT COUNT(*) FROM A WHERE 5 < X");
  auto x = Column(*deps, "A", "X")->Instantiate({});
  EXPECT_TRUE(x.AffectedByRowValue(Value(6)));   // X > 5
  EXPECT_FALSE(x.AffectedByRowValue(Value(5)));
  EXPECT_TRUE(x.AffectedByUpdate(Value(5), Value(6)));
}

}  // namespace
}  // namespace qc::dup
