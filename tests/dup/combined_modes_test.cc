// Interactions between engine options: row-aware policy + obsolescence
// budgets + refresh, composed.
#include <gtest/gtest.h>

#include "middleware/query_engine.h"

namespace qc::dup {
namespace {

class CombinedModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = &db_.CreateTable("T", storage::Schema({{"X", ValueType::kInt, false},
                                                    {"Y", ValueType::kInt, false}}));
    for (int i = 1; i <= 10; ++i) table_->Insert({Value(i), Value(i * 10)});
  }

  storage::Database db_;
  storage::Table* table_ = nullptr;
};

TEST_F(CombinedModesTest, RowAwareWithBudgetAppliesBothFilters) {
  middleware::CachedQueryEngine::Options options;
  options.policy = InvalidationPolicy::kRowAware;
  options.obsolescence_threshold = 1.0;
  middleware::CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X BETWEEN 3 AND 6 AND Y >= 40");

  engine.Execute(query);
  // Row-aware filter: X enters [3,6] but Y=10 keeps the row out — no budget
  // consumed, still cached.
  table_->Update(0, 0, Value(4));
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  EXPECT_EQ(engine.dup_stats().tolerated_changes, 0u);

  // A real membership change consumes one budget unit (tolerated)...
  table_->Update(0, 1, Value(100));  // row (4,100) now matches
  EXPECT_TRUE(engine.Execute(query).cache_hit);  // stale within budget
  EXPECT_EQ(engine.dup_stats().tolerated_changes, 1u);

  // ...and the second one exceeds the budget.
  table_->Update(1, 0, Value(5));  // row 2: X=5, Y=20 — Y fails, row-aware keeps!
  EXPECT_TRUE(engine.Execute(query).cache_hit);
  table_->Update(1, 1, Value(90));  // row 2 joins the result: second real change
  auto fresh = engine.Execute(query);
  EXPECT_FALSE(fresh.cache_hit);
  // Initially {4,5,6} matched (3 rows); rows 1 and 2 joined since: 5 rows.
  EXPECT_EQ(fresh.result->ScalarAt(0, 0), Value(5));
}

TEST_F(CombinedModesTest, RefreshWithRowAwareOnlyRefreshesRealChanges) {
  middleware::CachedQueryEngine::Options options;
  options.policy = InvalidationPolicy::kRowAware;
  options.refresh_on_invalidate = true;
  middleware::CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT SUM(Y) FROM T WHERE X <= 3");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(60));

  table_->Update(5, 1, Value(999));  // row X=6: irrelevant — no refresh
  EXPECT_EQ(engine.stats().refresh_executions, 0u);

  table_->Update(0, 1, Value(1000));  // row X=1 feeds the SUM — refreshed
  EXPECT_EQ(engine.stats().refresh_executions, 1u);
  auto outcome = engine.Execute(query);
  EXPECT_TRUE(outcome.cache_hit);
  EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(1050));
}

TEST_F(CombinedModesTest, PaperFidelityWithRowAwareStillSound) {
  // Row-aware refinement on top of paper-fidelity extraction: the reduced
  // dependency set still never under-invalidates WHERE-membership changes.
  middleware::CachedQueryEngine::Options options;
  options.policy = InvalidationPolicy::kRowAware;
  options.extraction = ExtractionOptions::PaperFidelity();
  middleware::CachedQueryEngine engine(db_, options);
  auto query = engine.Prepare("SELECT COUNT(*) FROM T WHERE X BETWEEN 3 AND 6");
  EXPECT_EQ(engine.Execute(query).result->ScalarAt(0, 0), Value(4));
  table_->Update(0, 0, Value(5));  // X 1 -> 5 joins the range
  auto outcome = engine.Execute(query);
  EXPECT_FALSE(outcome.cache_hit);
  EXPECT_EQ(outcome.result->ScalarAt(0, 0), Value(5));
}

}  // namespace
}  // namespace qc::dup
