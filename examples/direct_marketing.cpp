// Direct-marketing scenario — one of the three domains the Set Query
// benchmark explicitly models ("document searching, direct marketing, and
// decision support"). A campaign tool keeps segmentation counts and
// audience pulls cached while account managers continuously edit customer
// attributes; per-source invalidation statistics show which edits churn
// the cache.
//
//   build/examples/direct_marketing
#include <iostream>

#include "common/rng.h"
#include "middleware/query_engine.h"

using namespace qc;

int main() {
  storage::Database db;
  auto& customers = db.CreateTable(
      "CUSTOMERS", storage::Schema({{"ID", ValueType::kInt, false},
                                    {"REGION", ValueType::kString, false},
                                    {"SEGMENT", ValueType::kString, true},
                                    {"LTV", ValueType::kInt, false},        // lifetime value
                                    {"LAST_ORDER", ValueType::kInt, false}, // yyyymmdd
                                    {"OPTED_IN", ValueType::kInt, false}}));
  customers.CreateHashIndex(1);
  customers.CreateHashIndex(2);
  customers.CreateOrderedIndex(3);
  customers.CreateOrderedIndex(4);

  const char* regions[] = {"NE", "SE", "MW", "W"};
  const char* segments[] = {"new", "loyal", "lapsing", "vip"};
  Rng rng(99);
  for (int i = 1; i <= 20'000; ++i) {
    customers.Insert({Value(i), Value(regions[rng.Uniform(0, 3)]),
                      Value(segments[rng.Uniform(0, 3)]), Value(rng.Uniform(0, 5000)),
                      Value(20250101 + rng.Uniform(0, 500)), Value(rng.Chance(0.8) ? 1 : 0)});
  }

  middleware::CachedQueryEngine::Options options;
  options.policy = dup::InvalidationPolicy::kValueAware;
  middleware::CachedQueryEngine engine(db, options);

  // The campaign tool's dashboard queries (all value-annotated).
  auto segment_counts = engine.Prepare(
      "SELECT SEGMENT, COUNT(*) FROM CUSTOMERS WHERE OPTED_IN = 1 GROUP BY SEGMENT");
  auto vip_audience = engine.Prepare(
      "SELECT ID FROM CUSTOMERS WHERE SEGMENT = 'vip' AND OPTED_IN = 1 AND LTV >= 2000");
  auto winback = engine.Prepare(
      "SELECT COUNT(*) FROM CUSTOMERS WHERE SEGMENT = 'lapsing' AND LAST_ORDER < 20250301 "
      "AND OPTED_IN = 1");
  auto regional = engine.Prepare(
      "SELECT COUNT(*) FROM CUSTOMERS WHERE REGION = $1 AND LTV BETWEEN 1000 AND 3000");

  std::cout << "--- campaign dashboard warms up ---\n";
  engine.Execute(segment_counts);
  engine.Execute(vip_audience);
  engine.Execute(winback);
  for (const char* region : regions) engine.Execute(regional, {Value(region)});

  // Account managers edit customers all day; dashboards keep refreshing.
  const uint32_t ltv_col = customers.schema().Require("LTV");
  const uint32_t seg_col = customers.schema().Require("SEGMENT");
  const uint32_t order_col = customers.schema().Require("LAST_ORDER");
  for (int i = 0; i < 3000; ++i) {
    const auto row = static_cast<storage::RowId>(rng.Uniform(0, 19'999));
    switch (rng.Uniform(0, 2)) {
      case 0:  // small LTV drift rarely crosses the 1000..3000 / >=2000 lines
        customers.Update(row, ltv_col,
                         Value(customers.Get(row, ltv_col).as_int() + rng.Uniform(-50, 50)));
        break;
      case 1:  // segment reassignment hits segment-anchored queries
        customers.Update(row, seg_col, Value(segments[rng.Uniform(0, 3)]));
        break;
      default:  // a new order bumps LAST_ORDER
        customers.Update(row, order_col, Value(20250601 + rng.Uniform(0, 30)));
        break;
    }
    engine.Execute(segment_counts);
    engine.Execute(vip_audience);
    engine.Execute(winback);
    engine.Execute(regional, {Value(regions[rng.Uniform(0, 3)])});
  }

  const auto stats = engine.stats();
  std::cout << "dashboard refreshes: " << stats.executions << ", hit rate "
            << 100.0 * stats.HitRate() << "%\n\n"
            << "which edits churned the cache (affected keys by source):\n";
  for (const auto& [source, count] : engine.dup_stats().affected_by_source) {
    std::cout << "  " << source << ": " << count << "\n";
  }
  std::cout << "\n(SEGMENT edits dominate: every segment-anchored query depends on them;\n"
               " LTV drift barely registers because the value-aware annotations only fire\n"
               " when a customer crosses a campaign threshold.)\n";
  return 0;
}
