// qcsh — an interactive shell over the cached query middleware.
//
// Usage:  build/examples/qcsh                      (local, in-process engine)
//         build/examples/qcsh < script             (local, batch)
//         build/examples/qcsh --connect HOST:PORT  (client of a running qcached)
//
// Statements: SELECT / INSERT / UPDATE / DELETE (terminated by the line
// end). Shell commands start with a backslash:
//   \create T A INT, B STRING NULL, C DOUBLE   create a table
//   \index T A [ordered]                       add a hash/ordered index
//   \import T file.csv        \export T file.csv
//   \tables                   \schema T
//   \policy I|II|III|IV       rebuild the engine under a policy
//   \trace on|off             print invalidation reasons as they happen
//   \stats                    engine + cache + DUP counters
//   \odg                      dump the object dependence graph
//   \help                     \quit
//
// In --connect mode the shell speaks QCP/1 (docs/SERVING.md) to a qcached
// server instead of owning an engine. SQL works the same; the session
// commands are:
//   \prepare SQL          register a prepared statement (prints its id)
//   \execute ID [args]    run it (args: 42, 3.5, 'text', NULL)
//   \close ID             deallocate a prepared statement
//   \stats                full server counter dump over the wire
//   \ping                 liveness round-trip
//   \drain                ask the server to drain and exit
// Local-only commands (\create, \import, ...) report as such — the
// server's schema comes from its --init script.
#include <unistd.h>

#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "middleware/query_engine.h"
#include "server/client.h"
#include "sql/evaluator.h"
#include "sql/vectorized.h"
#include "storage/csv.h"

using namespace qc;

namespace {

class Shell {
 public:
  Shell() { RebuildEngine(dup::InvalidationPolicy::kValueAware); }

  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      try {
        if (!Dispatch(line)) break;
      } catch (const Error& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      Prompt();
    }
    return 0;
  }

 private:
  void Prompt() {
    if (interactive_) std::cout << "qcache> " << std::flush;
  }

  void RebuildEngine(dup::InvalidationPolicy policy) {
    middleware::CachedQueryEngine::Options options;
    options.policy = policy;
    engine_ = std::make_unique<middleware::CachedQueryEngine>(db_, options);
    if (trace_) EnableTrace();
    std::cout << "engine ready: " << dup::PolicyName(policy) << "\n";
  }

  void EnableTrace() {
    engine_->dup_engine().SetTracer([](const std::string& key, const std::string& reason) {
      std::cout << "  [invalidate] " << key << "\n               " << reason << "\n";
    });
  }

  bool Dispatch(const std::string& line) {
    std::string trimmed = line;
    while (!trimmed.empty() && (trimmed.back() == ' ' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    size_t start = trimmed.find_first_not_of(' ');
    if (start == std::string::npos) return true;
    trimmed = trimmed.substr(start);

    if (trimmed[0] == '\\') return Command(trimmed);
    RunSql(trimmed);
    return true;
  }

  bool Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "\\quit" || cmd == "\\q") return false;
    if (cmd == "\\help") {
      std::cout << "statements: SELECT ... / INSERT ... / UPDATE ... / DELETE ...\n"
                   "commands: \\create \\index \\import \\export \\tables \\schema\n"
                   "          \\policy \\trace \\stats \\odg \\quit\n";
    } else if (cmd == "\\create") {
      CreateTable(in);
    } else if (cmd == "\\index") {
      std::string table, column, kind;
      in >> table >> column >> kind;
      auto& t = db_.GetTable(table);
      const uint32_t col = t.schema().Require(column);
      if (kind == "ordered") {
        t.CreateOrderedIndex(col);
      } else {
        t.CreateHashIndex(col);
      }
      std::cout << "indexed " << table << "." << column << "\n";
    } else if (cmd == "\\import") {
      std::string table, path;
      in >> table >> path;
      std::cout << storage::ImportCsvFile(db_.GetTable(table), path) << " rows imported\n";
    } else if (cmd == "\\export") {
      std::string table, path;
      in >> table >> path;
      storage::ExportCsvFile(db_.GetTable(table), path);
      std::cout << "exported to " << path << "\n";
    } else if (cmd == "\\tables") {
      for (const std::string& name : db_.TableNames()) {
        std::cout << "  " << name << " (" << db_.GetTable(name).size() << " rows)\n";
      }
    } else if (cmd == "\\schema") {
      std::string table;
      in >> table;
      for (const auto& col : db_.GetTable(table).schema().columns()) {
        std::cout << "  " << col.name << " "
                  << (col.type == ValueType::kInt      ? "INT"
                      : col.type == ValueType::kDouble ? "DOUBLE"
                                                       : "STRING")
                  << (col.nullable ? " NULL" : "") << "\n";
      }
    } else if (cmd == "\\policy") {
      std::string which;
      in >> which;
      dup::InvalidationPolicy policy;
      if (which == "I") {
        policy = dup::InvalidationPolicy::kFlushAll;
      } else if (which == "II") {
        policy = dup::InvalidationPolicy::kValueUnaware;
      } else if (which == "IV") {
        policy = dup::InvalidationPolicy::kRowAware;
      } else {
        policy = dup::InvalidationPolicy::kValueAware;
      }
      RebuildEngine(policy);
    } else if (cmd == "\\trace") {
      std::string mode;
      in >> mode;
      trace_ = (mode == "on");
      if (trace_) {
        EnableTrace();
      } else {
        engine_->dup_engine().SetTracer(nullptr);
      }
      std::cout << "trace " << (trace_ ? "on" : "off") << "\n";
    } else if (cmd == "\\stats") {
      const auto stats = engine_->stats();
      std::cout << "engine: executions=" << stats.executions << " hits=" << stats.cache_hits
                << " db=" << stats.db_executions << " hit_rate=" << stats.HitRate() << "\n"
                << "cache:  " << engine_->cache_stats().ToString() << "\n"
                << "dup:    invalidations=" << engine_->dup_stats().invalidations
                << " events=" << engine_->dup_stats().update_events
                << " registered=" << engine_->dup_stats().registered_queries << "\n";
      const sql::VectorizedStats vs = sql::GetVectorizedStats();
      std::cout << "vec:    vectorized=" << vs.queries_vectorized << " (joins="
                << vs.joins_vectorized << ") fallback=" << vs.queries_fallback
                << " (join=" << vs.fallback_join << " expr=" << vs.fallback_expression
                << " shape=" << vs.fallback_shape << " type=" << vs.fallback_type
                << ") batches=" << vs.batches << " rows_scanned=" << vs.rows_scanned
                << " parallel_scans=" << vs.parallel_scans
                << " conjunct_reorders=" << vs.conjunct_reorders << "\n"
                << "row:    join_nested_loop_rows="
                << sql::GetRowEngineStats().join_nested_loop_rows << "\n";
    } else if (cmd == "\\odg") {
      std::cout << engine_->dup_engine().DumpGraph();
    } else {
      std::cout << "unknown command " << cmd << " (try \\help)\n";
    }
    return true;
  }

  // \create T A INT, B STRING NULL, C DOUBLE
  void CreateTable(std::istringstream& in) {
    std::string table;
    in >> table;
    std::string rest;
    std::getline(in, rest);
    std::vector<storage::ColumnDef> columns;
    std::istringstream cols(rest);
    std::string spec;
    while (std::getline(cols, spec, ',')) {
      std::istringstream parts(spec);
      storage::ColumnDef def;
      std::string type, null_marker;
      parts >> def.name >> type >> null_marker;
      if (def.name.empty() || type.empty()) throw Error("\\create: bad column spec '" + spec + "'");
      const std::string upper = ToUpper(type);
      def.type = upper == "INT"      ? ValueType::kInt
                 : upper == "DOUBLE" ? ValueType::kDouble
                                     : ValueType::kString;
      def.nullable = ToUpper(null_marker) == "NULL";
      columns.push_back(std::move(def));
    }
    const size_t column_count = columns.size();
    db_.CreateTable(table, storage::Schema(std::move(columns)));
    std::cout << "created " << table << " with " << column_count << " columns\n";
  }

  void RunSql(const std::string& sql) {
    const std::string head = ToUpper(sql.substr(0, sql.find(' ')));
    if (head == "SELECT") {
      auto outcome = engine_->ExecuteSql(sql);
      std::cout << outcome.result->ToString(50) << "(" << outcome.result->row_count() << " rows, "
                << (outcome.cache_hit ? "cache hit" : "database") << ")\n";
    } else {
      std::cout << engine_->ExecuteDml(sql) << " rows affected\n";
    }
  }

  storage::Database db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  bool trace_ = false;
  bool interactive_ = isatty(0);
};

/// qcsh --connect: the same line-oriented shell, but every statement goes
/// over the wire to a running qcached.
class RemoteShell {
 public:
  RemoteShell(const std::string& host, uint16_t port) {
    client_.Connect(host, port);
    std::cout << "connected to " << client_.server_banner() << " at " << host << ":" << port
              << "\n";
  }

  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      try {
        if (!Dispatch(line)) break;
      } catch (const server::RpcError& e) {
        std::cout << "error: " << e.what() << "\n";
      } catch (const server::NetError& e) {
        std::cout << "connection lost: " << e.what() << "\n";
        return 1;
      } catch (const Error& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      if (!client_.connected()) break;
      Prompt();
    }
    return 0;
  }

 private:
  void Prompt() {
    if (interactive_) std::cout << "qcached> " << std::flush;
  }

  bool Dispatch(const std::string& line) {
    std::string trimmed = line;
    while (!trimmed.empty() && (trimmed.back() == ' ' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    const size_t start = trimmed.find_first_not_of(' ');
    if (start == std::string::npos) return true;
    trimmed = trimmed.substr(start);

    if (trimmed[0] == '\\') return Command(trimmed);
    RunSql(trimmed);
    return true;
  }

  bool Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "\\quit" || cmd == "\\q") return false;
    if (cmd == "\\help") {
      std::cout << "statements: SELECT ... / INSERT ... / UPDATE ... / DELETE ...\n"
                   "commands: \\prepare SQL   \\execute ID [args]   \\close ID\n"
                   "          \\stats \\ping \\drain \\quit\n"
                   "args: 42, 3.5, 'text', NULL\n";
    } else if (cmd == "\\prepare") {
      std::string sql;
      std::getline(in, sql);
      const size_t s = sql.find_first_not_of(' ');
      if (s == std::string::npos) throw Error("\\prepare needs a statement");
      const auto stmt = client_.Prepare(sql.substr(s));
      std::cout << "prepared statement " << stmt.id << " (" << stmt.param_count << " params)\n";
    } else if (cmd == "\\execute") {
      uint32_t id = 0;
      in >> id;
      PrintResult(client_.Execute(id, ParseArgs(in)));
    } else if (cmd == "\\close") {
      uint32_t id = 0;
      in >> id;
      client_.CloseStmt(id);
      std::cout << "closed statement " << id << "\n";
    } else if (cmd == "\\stats") {
      for (const auto& [key, value] : client_.Stats()) {
        std::cout << "  " << key << " = " << value << "\n";
      }
    } else if (cmd == "\\ping") {
      client_.Ping();
      std::cout << "pong\n";
    } else if (cmd == "\\drain") {
      client_.Drain(/*wait_for_close=*/true);
      std::cout << "server drained; connection closed\n";
      return false;
    } else if (cmd == "\\create" || cmd == "\\index" || cmd == "\\import" ||
               cmd == "\\export" || cmd == "\\tables" || cmd == "\\schema" ||
               cmd == "\\policy" || cmd == "\\trace" || cmd == "\\odg") {
      std::cout << cmd << " is local-only; in --connect mode the server owns the\n"
                   "database (schema comes from its --init script)\n";
    } else {
      std::cout << "unknown command " << cmd << " (try \\help)\n";
    }
    return true;
  }

  /// Whitespace-separated literals: 42, 3.5, 'quoted string', NULL.
  static std::vector<Value> ParseArgs(std::istringstream& in) {
    std::vector<Value> args;
    std::string token;
    while (in >> token) {
      if (token.front() == '\'') {
        // Re-join tokens until the closing quote.
        while (token.size() < 2 || token.back() != '\'') {
          std::string more;
          if (!(in >> more)) throw Error("unterminated string literal");
          token += " " + more;
        }
        args.emplace_back(token.substr(1, token.size() - 2));
      } else if (ToUpper(token) == "NULL") {
        args.push_back(Value::Null());
      } else if (token.find('.') != std::string::npos) {
        args.emplace_back(std::stod(token));
      } else {
        args.emplace_back(static_cast<int64_t>(std::stoll(token)));
      }
    }
    return args;
  }

  void PrintResult(const server::QcClient::QueryResult& outcome) {
    std::cout << outcome.result.ToString(50) << "(" << outcome.result.row_count() << " rows, "
              << (outcome.cache_hit ? "cache hit" : "database") << ")\n";
  }

  void RunSql(const std::string& sql) {
    const std::string head = ToUpper(sql.substr(0, sql.find(' ')));
    if (head == "SELECT") {
      PrintResult(client_.Query(sql));
    } else {
      std::cout << client_.Dml(sql) << " rows affected\n";
    }
  }

  server::QcClient client_;
  bool interactive_ = isatty(0);
};

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: qcsh [--connect HOST:PORT]\n"
                   "  without --connect: local in-process engine (\\help for commands)\n"
                   "  with --connect:    client shell against a running qcached\n";
      return 0;
    } else {
      std::cerr << "qcsh: unknown flag '" << arg << "' (try --help)\n";
      return 1;
    }
  }
  if (!connect.empty()) {
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "qcsh: --connect expects HOST:PORT\n";
      return 1;
    }
    try {
      return RemoteShell(connect.substr(0, colon),
                         static_cast<uint16_t>(std::stoi(connect.substr(colon + 1))))
          .Run();
    } catch (const Error& e) {
      std::cerr << "qcsh: " << e.what() << "\n";
      return 1;
    }
  }
  std::cout << "qcache shell — \\help for commands\n";
  return Shell().Run();
}
