// qcsh — an interactive shell over the cached query middleware.
//
// Usage:  build/examples/qcsh            (interactive)
//         build/examples/qcsh < script   (batch)
//
// Statements: SELECT / INSERT / UPDATE / DELETE (terminated by the line
// end). Shell commands start with a backslash:
//   \create T A INT, B STRING NULL, C DOUBLE   create a table
//   \index T A [ordered]                       add a hash/ordered index
//   \import T file.csv        \export T file.csv
//   \tables                   \schema T
//   \policy I|II|III|IV       rebuild the engine under a policy
//   \trace on|off             print invalidation reasons as they happen
//   \stats                    engine + cache + DUP counters
//   \odg                      dump the object dependence graph
//   \help                     \quit
#include <unistd.h>

#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "middleware/query_engine.h"
#include "storage/csv.h"

using namespace qc;

namespace {

class Shell {
 public:
  Shell() { RebuildEngine(dup::InvalidationPolicy::kValueAware); }

  int Run() {
    std::string line;
    Prompt();
    while (std::getline(std::cin, line)) {
      try {
        if (!Dispatch(line)) break;
      } catch (const Error& e) {
        std::cout << "error: " << e.what() << "\n";
      }
      Prompt();
    }
    return 0;
  }

 private:
  void Prompt() {
    if (interactive_) std::cout << "qcache> " << std::flush;
  }

  void RebuildEngine(dup::InvalidationPolicy policy) {
    middleware::CachedQueryEngine::Options options;
    options.policy = policy;
    engine_ = std::make_unique<middleware::CachedQueryEngine>(db_, options);
    if (trace_) EnableTrace();
    std::cout << "engine ready: " << dup::PolicyName(policy) << "\n";
  }

  void EnableTrace() {
    engine_->dup_engine().SetTracer([](const std::string& key, const std::string& reason) {
      std::cout << "  [invalidate] " << key << "\n               " << reason << "\n";
    });
  }

  bool Dispatch(const std::string& line) {
    std::string trimmed = line;
    while (!trimmed.empty() && (trimmed.back() == ' ' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    size_t start = trimmed.find_first_not_of(' ');
    if (start == std::string::npos) return true;
    trimmed = trimmed.substr(start);

    if (trimmed[0] == '\\') return Command(trimmed);
    RunSql(trimmed);
    return true;
  }

  bool Command(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "\\quit" || cmd == "\\q") return false;
    if (cmd == "\\help") {
      std::cout << "statements: SELECT ... / INSERT ... / UPDATE ... / DELETE ...\n"
                   "commands: \\create \\index \\import \\export \\tables \\schema\n"
                   "          \\policy \\trace \\stats \\odg \\quit\n";
    } else if (cmd == "\\create") {
      CreateTable(in);
    } else if (cmd == "\\index") {
      std::string table, column, kind;
      in >> table >> column >> kind;
      auto& t = db_.GetTable(table);
      const uint32_t col = t.schema().Require(column);
      if (kind == "ordered") {
        t.CreateOrderedIndex(col);
      } else {
        t.CreateHashIndex(col);
      }
      std::cout << "indexed " << table << "." << column << "\n";
    } else if (cmd == "\\import") {
      std::string table, path;
      in >> table >> path;
      std::cout << storage::ImportCsvFile(db_.GetTable(table), path) << " rows imported\n";
    } else if (cmd == "\\export") {
      std::string table, path;
      in >> table >> path;
      storage::ExportCsvFile(db_.GetTable(table), path);
      std::cout << "exported to " << path << "\n";
    } else if (cmd == "\\tables") {
      for (const std::string& name : db_.TableNames()) {
        std::cout << "  " << name << " (" << db_.GetTable(name).size() << " rows)\n";
      }
    } else if (cmd == "\\schema") {
      std::string table;
      in >> table;
      for (const auto& col : db_.GetTable(table).schema().columns()) {
        std::cout << "  " << col.name << " "
                  << (col.type == ValueType::kInt      ? "INT"
                      : col.type == ValueType::kDouble ? "DOUBLE"
                                                       : "STRING")
                  << (col.nullable ? " NULL" : "") << "\n";
      }
    } else if (cmd == "\\policy") {
      std::string which;
      in >> which;
      dup::InvalidationPolicy policy;
      if (which == "I") {
        policy = dup::InvalidationPolicy::kFlushAll;
      } else if (which == "II") {
        policy = dup::InvalidationPolicy::kValueUnaware;
      } else if (which == "IV") {
        policy = dup::InvalidationPolicy::kRowAware;
      } else {
        policy = dup::InvalidationPolicy::kValueAware;
      }
      RebuildEngine(policy);
    } else if (cmd == "\\trace") {
      std::string mode;
      in >> mode;
      trace_ = (mode == "on");
      if (trace_) {
        EnableTrace();
      } else {
        engine_->dup_engine().SetTracer(nullptr);
      }
      std::cout << "trace " << (trace_ ? "on" : "off") << "\n";
    } else if (cmd == "\\stats") {
      const auto stats = engine_->stats();
      std::cout << "engine: executions=" << stats.executions << " hits=" << stats.cache_hits
                << " db=" << stats.db_executions << " hit_rate=" << stats.HitRate() << "\n"
                << "cache:  " << engine_->cache_stats().ToString() << "\n"
                << "dup:    invalidations=" << engine_->dup_stats().invalidations
                << " events=" << engine_->dup_stats().update_events
                << " registered=" << engine_->dup_stats().registered_queries << "\n";
    } else if (cmd == "\\odg") {
      std::cout << engine_->dup_engine().DumpGraph();
    } else {
      std::cout << "unknown command " << cmd << " (try \\help)\n";
    }
    return true;
  }

  // \create T A INT, B STRING NULL, C DOUBLE
  void CreateTable(std::istringstream& in) {
    std::string table;
    in >> table;
    std::string rest;
    std::getline(in, rest);
    std::vector<storage::ColumnDef> columns;
    std::istringstream cols(rest);
    std::string spec;
    while (std::getline(cols, spec, ',')) {
      std::istringstream parts(spec);
      storage::ColumnDef def;
      std::string type, null_marker;
      parts >> def.name >> type >> null_marker;
      if (def.name.empty() || type.empty()) throw Error("\\create: bad column spec '" + spec + "'");
      const std::string upper = ToUpper(type);
      def.type = upper == "INT"      ? ValueType::kInt
                 : upper == "DOUBLE" ? ValueType::kDouble
                                     : ValueType::kString;
      def.nullable = ToUpper(null_marker) == "NULL";
      columns.push_back(std::move(def));
    }
    const size_t column_count = columns.size();
    db_.CreateTable(table, storage::Schema(std::move(columns)));
    std::cout << "created " << table << " with " << column_count << " columns\n";
  }

  void RunSql(const std::string& sql) {
    const std::string head = ToUpper(sql.substr(0, sql.find(' ')));
    if (head == "SELECT") {
      auto outcome = engine_->ExecuteSql(sql);
      std::cout << outcome.result->ToString(50) << "(" << outcome.result->row_count() << " rows, "
                << (outcome.cache_hit ? "cache hit" : "database") << ")\n";
    } else {
      std::cout << engine_->ExecuteDml(sql) << " rows affected\n";
    }
  }

  storage::Database db_;
  std::unique_ptr<middleware::CachedQueryEngine> engine_;
  bool trace_ = false;
  bool interactive_ = isatty(0);
};

}  // namespace

int main() {
  std::cout << "qcache shell — \\help for commands\n";
  return Shell().Run();
}
