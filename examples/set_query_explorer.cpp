// Interactive-ish Set Query explorer: run the paper's §5 workload at a
// chosen policy / update rate and print the per-type hit-rate table.
//
//   build/examples/set_query_explorer [policy I|II|III|IV] [update_rate%] [rows]
//   e.g. build/examples/set_query_explorer III 5 20000
#include <cstdlib>
#include <iostream>
#include <string>

#include "middleware/query_engine.h"
#include "setquery/workload.h"

using namespace qc;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "III";
  const double update_rate = argc > 2 ? std::atof(argv[2]) / 100.0 : 0.02;
  const uint64_t rows = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20'000;

  dup::InvalidationPolicy policy;
  if (policy_name == "I") {
    policy = dup::InvalidationPolicy::kFlushAll;
  } else if (policy_name == "II") {
    policy = dup::InvalidationPolicy::kValueUnaware;
  } else if (policy_name == "IV") {
    policy = dup::InvalidationPolicy::kRowAware;
  } else {
    policy = dup::InvalidationPolicy::kValueAware;
  }

  std::cout << "Set Query workload: " << dup::PolicyName(policy) << ", "
            << update_rate * 100 << "% updates, " << rows << " rows\n\n";

  storage::Database db;
  setquery::BenchTable bench(db, rows);
  middleware::CachedQueryEngine::Options options;
  options.policy = policy;
  options.extraction = dup::ExtractionOptions::PaperFidelity();
  middleware::CachedQueryEngine engine(db, options);
  setquery::WorkloadRunner runner(bench, engine);

  setquery::WorkloadConfig config;
  config.update_rate = update_rate;
  config.attributes_per_update = 2;
  config.transactions = 3000;
  const auto result = runner.Run(config);

  std::cout << "type   queries   hit rate %\n";
  for (const std::string& type : setquery::QueryTypeOrder()) {
    auto it = result.per_type.find(type);
    if (it == result.per_type.end()) continue;
    std::printf("%-6s %7lu %12.1f\n", type.c_str(),
                static_cast<unsigned long>(it->second.executions), it->second.HitRatePercent());
  }
  std::printf("\noverall hit rate: %.1f%% over %lu queries (%lu updates)\n",
              result.HitRatePercent(), static_cast<unsigned long>(result.queries),
              static_cast<unsigned long>(result.updates));
  std::printf("invalidations/transaction: %.3f\n", result.InvalidationsPerTransaction());
  std::cout << "cache: " << engine.cache_stats().ToString() << "\n";
  return 0;
}
