// The complete Fig. 1 picture, upgraded to the CDC refactor: a three-node
// rule-server group over one shared database with the sequenced
// invalidation bus between the server caches, and a browser client whose
// local cache is kept fresh by *pushed* CDC invalidations over QCP/1
// instead of the paper's expiration times (docs/CLUSTER.md).
//
//   build/examples/cluster_group
#include <chrono>
#include <iostream>

#include "cluster/client_cache.h"
#include "cluster/cluster.h"
#include "middleware/query_engine.h"
#include "server/server.h"

using namespace qc;
using namespace std::chrono_literals;

int main() {
  // Shared backing store: a product catalog.
  storage::Database db;
  auto& products = db.CreateTable("PRODUCTS", storage::Schema({
      {"ID", ValueType::kInt, false},
      {"CATEGORY", ValueType::kString, false},
      {"PRICE", ValueType::kInt, false}}));
  products.CreateHashIndex(1);
  for (int i = 1; i <= 200; ++i) {
    products.Insert({Value(i), Value(i % 3 ? "toy" : "book"), Value(5 + i % 40)});
  }

  // The server group: 3 cloned nodes, value-aware DUP, 5-tick delivery on
  // the sequenced CDC bus.
  cluster::ClusterConfig config;
  config.nodes = 3;
  config.policy = dup::InvalidationPolicy::kValueAware;
  config.latency_ticks = 5;
  cluster::CacheCluster group(db, config);
  auto query = group.Prepare("SELECT COUNT(*) FROM PRODUCTS WHERE CATEGORY = 'book'");
  const char* kSql = "SELECT COUNT(*) FROM PRODUCTS WHERE CATEGORY = 'book'";

  // The browser tier: a real qcached endpoint over the same database
  // (loopback TCP, CDC publishing on) with a push-lease client cache in
  // front. The lease is long — the pushed invalidations, not the clock,
  // keep the browser honest.
  middleware::CachedQueryEngine edge(db, middleware::CachedQueryEngine::Options{});
  server::ServerConfig server_config;
  server_config.port = 0;
  server_config.cdc_publish = true;
  server::QcServer server(edge, server_config);
  server.Start();
  cluster::ClientCacheConfig client_config;
  client_config.lease_ttl = 60s;
  cluster::ClientCache browser("127.0.0.1", server.port(), client_config);

  std::cout << "--- cold start: each tier misses once ---\n";
  auto show = [&](const char* who, bool hit, const Value& count) {
    std::cout << "  " << who << ": " << (hit ? "hit " : "miss") << "  count=" << count.ToString()
              << "\n";
  };
  for (int i = 0; i < 2; ++i) {
    auto server_side = group.ExecuteAt(0, query);
    show("server node 0", server_side.cache_hit, server_side.result->ScalarAt(0, 0));
    auto client_side = browser.Execute(kSql);
    show("browser (push-lease)", client_side.cache_hit, client_side.result->ScalarAt(0, 0));
  }

  std::cout << "\n--- node 2 reprices a toy into the 'book' shelf ---\n";
  group.PerformUpdate(2, [&] { products.Update(0, 1, Value("book")); });
  auto writer = group.ExecuteAt(2, query);
  show("writer node 2 (sync invalidation)", writer.cache_hit, writer.result->ScalarAt(0, 0));
  auto remote = group.ExecuteAt(0, query);
  show("node 0 (CDC record in flight)", remote.cache_hit, remote.result->ScalarAt(0, 0));
  group.Quiesce();
  remote = group.ExecuteAt(0, query);
  show("node 0 (CDC record delivered)", remote.cache_hit, remote.result->ScalarAt(0, 0));

  // The paper's client tier would keep serving the stale count until its
  // TTL ran out. The push-lease cache hears about the write instead.
  const bool pushed = browser.WaitForInvalidation(kSql, {}, 5s);
  std::cout << "  browser push received: " << (pushed ? "yes" : "no") << "\n";
  auto fresh_browser = browser.Execute(kSql);
  show("browser (after push)", fresh_browser.cache_hit, fresh_browser.result->ScalarAt(0, 0));

  const auto stats = group.stats();
  std::cout << "\ncluster: hit rate " << stats.HitRatePercent() << "%, tokens sent "
            << stats.tokens_sent << ", remote invalidations " << stats.remote_invalidations
            << ", stale server hits " << stats.stale_hits << ", committed seq "
            << group.committed_seq() << "\n"
            << "browser: " << browser.stats().LocalHitRatePercent() << "% served locally, "
            << browser.stats().push_invalidations << " push invalidations\n";

  server.RequestDrain();
  server.Wait();
  return 0;
}
