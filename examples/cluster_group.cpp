// The complete Fig. 1 picture: a three-node rule-server group over one
// shared database, browser clients with their own TTL caches in front,
// and invalidation tokens flowing between the server caches with a
// delivery delay. Shows where each tier's hit comes from and what
// consistency each tier can promise.
//
//   build/examples/cluster_group
#include <iostream>

#include "cluster/client_cache.h"
#include "cluster/cluster.h"

using namespace qc;
using namespace std::chrono_literals;

int main() {
  // Shared backing store: a product catalog.
  storage::Database db;
  auto& products = db.CreateTable("PRODUCTS", storage::Schema({
      {"ID", ValueType::kInt, false},
      {"CATEGORY", ValueType::kString, false},
      {"PRICE", ValueType::kInt, false}}));
  products.CreateHashIndex(1);
  for (int i = 1; i <= 200; ++i) {
    products.Insert({Value(i), Value(i % 3 ? "toy" : "book"), Value(5 + i % 40)});
  }

  // The server group: 3 cloned nodes, value-aware DUP, 5-tick delivery.
  cluster::ClusterConfig config;
  config.nodes = 3;
  config.policy = dup::InvalidationPolicy::kValueAware;
  config.latency_ticks = 5;
  cluster::CacheCluster group(db, config);
  auto query = group.Prepare("SELECT COUNT(*) FROM PRODUCTS WHERE CATEGORY = 'book'");

  // A browser in front of node 1, with a 60 s TTL cache.
  cluster::ClientCacheConfig client_config;
  client_config.ttl = 60s;
  cluster::ClientCache browser(group.node(1), client_config);

  std::cout << "--- cold start: each tier misses once ---\n";
  auto show = [&](const char* who, bool hit, const Value& count) {
    std::cout << "  " << who << ": " << (hit ? "hit " : "miss") << "  count=" << count.ToString()
              << "\n";
  };
  for (int i = 0; i < 2; ++i) {
    auto server_side = group.ExecuteAt(0, query);
    show("server node 0", server_side.cache_hit, server_side.result->ScalarAt(0, 0));
    auto client_side = browser.Execute(query);
    show("browser (via node 1)", client_side.cache_hit, client_side.result->ScalarAt(0, 0));
  }

  std::cout << "\n--- node 2 reprices a toy into the 'book' shelf ---\n";
  group.PerformUpdate(2, [&] { products.Update(0, 1, Value("book")); });
  auto writer = group.ExecuteAt(2, query);
  show("writer node 2 (sync invalidation)", writer.cache_hit, writer.result->ScalarAt(0, 0));
  auto remote = group.ExecuteAt(0, query);
  show("node 0 (token in flight)", remote.cache_hit, remote.result->ScalarAt(0, 0));
  group.Quiesce();
  remote = group.ExecuteAt(0, query);
  show("node 0 (token delivered)", remote.cache_hit, remote.result->ScalarAt(0, 0));
  auto stale_browser = browser.Execute(query);
  show("browser (TTL window)", stale_browser.cache_hit, stale_browser.result->ScalarAt(0, 0));

  const auto stats = group.stats();
  std::cout << "\ncluster: hit rate " << stats.HitRatePercent() << "%, tokens sent "
            << stats.tokens_sent << ", remote invalidations " << stats.remote_invalidations
            << ", stale server hits " << stats.stale_hits << "\n"
            << "browser: " << browser.stats().LocalHitRatePercent() << "% served locally\n";
  return 0;
}
