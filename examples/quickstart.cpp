// Quickstart: cache query results over an in-memory table and watch DUP
// keep the cache consistent through updates.
//
//   build/examples/quickstart
#include <iostream>

#include "middleware/query_engine.h"

using namespace qc;

int main() {
  // 1. A database with one table.
  storage::Database db;
  storage::Table& products = db.CreateTable(
      "PRODUCTS", storage::Schema({{"ID", ValueType::kInt, false},
                                   {"CATEGORY", ValueType::kString, false},
                                   {"PRICE", ValueType::kInt, false},
                                   {"STOCK", ValueType::kInt, false}}));
  products.CreateHashIndex(products.schema().Require("CATEGORY"));
  for (int i = 1; i <= 100; ++i) {
    products.Insert({Value(i), Value(i % 3 == 0 ? "book" : "toy"), Value(10 + i), Value(5)});
  }

  // 2. A cached query engine with value-aware (Policy III) invalidation.
  middleware::CachedQueryEngine::Options options;
  options.policy = dup::InvalidationPolicy::kValueAware;
  middleware::CachedQueryEngine engine(db, options);

  // 3. Prepared, parameterized query — the ODG skeleton is built once, the
  //    $1 annotation is bound per execution.
  auto query = engine.Prepare(
      "SELECT COUNT(*) FROM PRODUCTS WHERE CATEGORY = $1 AND PRICE BETWEEN 20 AND 80");

  auto first = engine.Execute(query, {Value("book")});
  std::cout << "first run  (hit=" << first.cache_hit << "): " << first.result->ToString();
  auto second = engine.Execute(query, {Value("book")});
  std::cout << "second run (hit=" << second.cache_hit << "): cached!\n\n";

  // 4. Value-aware invalidation, two ways:
  //    (a) a price move that CROSSES the [20,80] boundary fires the edge
  //        annotation and invalidates the cached count;
  products.Update(0, products.schema().Require("PRICE"), Value(25));  // 11 -> 25: entered range
  auto third = engine.Execute(query, {Value("book")});
  std::cout << "after PRICE 11 -> 25 (crossed into [20,80]): hit=" << third.cache_hit
            << " -> re-executed\n";
  //    (b) an update to a column the query never mentions (STOCK) leaves
  //        the cached result untouched.
  products.Update(1, products.schema().Require("STOCK"), Value(999));
  auto fourth = engine.Execute(query, {Value("book")});
  std::cout << "after STOCK update (column not in the query): hit=" << fourth.cache_hit << "\n\n";

  // 5. Statistics and the automatically built ODG.
  std::cout << "engine: hits=" << engine.stats().cache_hits
            << " db executions=" << engine.stats().db_executions << "\n"
            << "dup: invalidations=" << engine.dup_stats().invalidations << "\n\n"
            << "Object dependence graph (Graphviz):\n"
            << engine.dup_engine().DumpGraph();
  return 0;
}
