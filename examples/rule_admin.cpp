// The paper's second Fig. 7 scenario: a rule administration client
// changing RuleUse attributes while query results sit in the cache. Shows
// which cached queries each administrative action invalidates — and which
// survive thanks to value-aware annotations.
//
//   build/examples/rule_admin
#include <iostream>

#include "abr/rule_server.h"

using namespace qc;
using namespace qc::abr;

namespace {

size_t g_action = 0;

void Act(RuleServer& server, const std::string& what, const std::function<void()>& action) {
  const auto before = server.engine().dup_stats().invalidations;
  action();
  const auto after = server.engine().dup_stats().invalidations;
  std::cout << ++g_action << ". " << what << "\n   -> invalidated " << (after - before)
            << " cached quer" << ((after - before) == 1 ? "y" : "ies") << "\n";
}

void Warm(RuleServer& server) {
  // Populate the cache with a spread of the 23 server queries.
  server.Find("findAllReady");
  server.Find("findClassifiers", {Value("customerLevel")});
  server.Find("findPromotions", {Value("Gold")});
  server.Find("findPromotions", {Value("Silver")});
  server.Find("findByFolderReady", {Value("seasonal")});
  server.Find("findByPriorityAtLeast", {Value(5)});
  server.Find("findActiveAt", {Value(20260701)});
  server.Find("findByContextNotClassification", {Value("promotion"), Value("Bronze")});
}

}  // namespace

int main() {
  storage::Database db;
  RuleServer server(db);

  RuleUseData rule;
  rule.name = "summerSale";
  rule.context_id = "promotion";
  rule.type = "situational";
  rule.classification = "Gold";
  rule.folder = "seasonal";
  rule.priority = 7;
  rule.start_date = 20260601;
  rule.end_date = 20260831;
  rule.implementation = "emit_promotion";
  const RuleId summer = server.CreateRuleUse(rule);

  rule.name = "classifySpend";
  rule.context_id = "customerLevel";
  rule.type = "classifier";
  rule.classification = "";
  rule.folder = "core";
  rule.priority = 1;
  rule.implementation = "classify_by_spend";
  const RuleId classify = server.CreateRuleUse(rule);

  Warm(server);
  std::cout << "cache warm: " << server.engine().cache().entry_count()
            << " cached query results\n\n";

  Act(server, "set summerSale PRIORITY 7 -> 7 (no-op set, paper Fig. 6 guard)",
      [&] { server.SetAttribute(summer, "PRIORITY", Value(7)); });

  Act(server, "set summerSale PRIORITY 7 -> 9 (crosses no annotation boundary for >=5)",
      [&] { server.SetAttribute(summer, "PRIORITY", Value(9)); });

  Act(server, "set summerSale PRIORITY 9 -> 2 (crosses the >=5 annotation)",
      [&] { server.SetAttribute(summer, "PRIORITY", Value(2)); });

  Warm(server);
  Act(server, "set summerSale CLASSIFICATION Gold -> Platinum (hits Gold promos, 'not Bronze')",
      [&] { server.SetAttribute(summer, "CLASSIFICATION", Value("Platinum")); });

  Warm(server);
  Act(server, "set classifySpend OWNER '' -> 'ops' (no cached query constrains OWNER)",
      [&] { server.SetAttribute(classify, "OWNER", Value("ops")); });

  Warm(server);
  Act(server, "create a draft rule (COMPLETIONSTATUS='draft' fails every 'ready' filter)", [&] {
    RuleUseData draft;
    draft.name = "wip";
    draft.context_id = "promotion";
    draft.type = "situational";
    draft.completion_status = "draft";
    server.CreateRuleUse(draft);
  });

  Warm(server);
  Act(server, "delete the summerSale rule (member of several cached results)",
      [&] { server.DeleteRuleUse(summer); });

  std::cout << "\nfinal ODG:\n" << server.engine().dup_engine().DumpGraph();
  return 0;
}
