// The GPS cache outside ABR: a Web-server accelerator (the paper's other
// DUP deployment, §3 / Levy et al. / Challenger et al.). Pages are
// composed of shared fragments; the multi-level ODG is built automatically
// from the template structure, and fragment changes propagate
// transitively to exactly the cached pages that embed them.
//
//   build/examples/web_accelerator
#include <iostream>

#include "accel/page_server.h"

using namespace qc;

int main() {
  accel::PageServer server;

  // A fragment tree: nav embeds the price list, every page embeds nav.
  server.SetFragment("header", "<h1>MegaShop</h1>");
  server.SetFragment("prices", "<ul><li>widget $9</li></ul>");
  server.SetFragment("nav", "<nav>{{prices}}</nav>");
  server.DefinePage("/index.html", "{{header}}{{nav}}<p>welcome</p>");
  server.DefinePage("/products/widget.html", "{{header}}{{nav}}<p>widget details</p>");
  server.DefinePage("/about.html", "{{header}}<p>since 2000</p>");

  auto serve = [&](const std::string& path) {
    const auto renders = server.stats().renders;
    const std::string html = server.Serve(path);
    std::cout << "  " << path
              << (server.stats().renders > renders ? "  [rendered]" : "  [cache hit]") << "\n";
    return html;
  };

  std::cout << "--- first requests render, repeats hit ---\n";
  for (const char* path : {"/index.html", "/products/widget.html", "/about.html",
                           "/index.html", "/about.html"}) {
    serve(path);
  }

  std::cout << "--- price change: DUP reaches pages through nav (two hops) ---\n";
  server.SetFragment("prices", "<ul><li>widget $7 SALE</li></ul>");
  serve("/index.html");            // re-rendered (embeds prices via nav)
  serve("/products/widget.html");  // re-rendered
  serve("/about.html");            // untouched: still cached

  std::cout << "--- an obsolescence budget tolerates minor churn (paper Fig. 2) ---\n";
  accel::PageServer::Options lazy_options;
  lazy_options.obsolescence_budget = 2.0;
  accel::PageServer lazy(lazy_options);
  lazy.SetFragment("ticker", "DOW 10941", /*weight=*/1.0);
  lazy.DefinePage("/live.html", "<span>{{ticker}}</span>");
  lazy.Serve("/live.html");
  lazy.SetFragment("ticker", "DOW 10948");
  lazy.SetFragment("ticker", "DOW 10951");
  std::cout << "  after 2 ticker updates (within budget): " << lazy.Serve("/live.html") << "\n";
  lazy.SetFragment("ticker", "DOW 10960");
  std::cout << "  after the 3rd (budget exceeded):        " << lazy.Serve("/live.html") << "\n";

  std::cout << "\nstats: hit rate " << server.stats().HitRatePercent() << "% over "
            << server.stats().requests << " requests; " << server.stats().invalidated_pages
            << " selective page invalidations\n\n"
            << "ODG (Graphviz):\n"
            << server.DumpOdg();
  return 0;
}
