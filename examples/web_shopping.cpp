// The paper's §4.2 Web-shopping scenario, end to end.
//
// A rule-enabled page has a "hole" filled with a product promotion chosen
// by the shopper's classification (Gold / Silver / Bronze). The decision
// point issues the paper's two queries:
//   Q1        — classifier rules for context 'customerLevel'
//   Q2($1)    — situational promotion rules for the classification
// Both are cached; a rule administrator then introduces a *Platinum*
// level, and — exactly as the paper describes — Q1 is invalidated while
// the cached Q2 results for the old classifications stay valid.
//
//   build/examples/web_shopping
#include <iostream>

#include "abr/firing.h"
#include "abr/rule_server.h"

using namespace qc;
using namespace qc::abr;

namespace {

void ServePage(ClassifyAndSelectDecisionPoint& decision_point, const std::string& shopper,
               int64_t monthly_spend) {
  RuleContext context{{"shopper", Value(shopper)}, {"monthlySpend", Value(monthly_spend)}};
  auto outcome = decision_point.Run(context);
  std::cout << "  " << shopper << " (spend " << monthly_spend << "): class=[";
  for (size_t i = 0; i < outcome.classifications.size(); ++i) {
    std::cout << (i ? ", " : "") << outcome.classifications[i];
  }
  std::cout << "] promo=[";
  for (size_t i = 0; i < outcome.content.size(); ++i) {
    std::cout << (i ? ", " : "") << outcome.content[i].as_string();
  }
  std::cout << "]  Q1 " << (outcome.q1_cache_hit ? "hit" : "MISS") << ", Q2 "
            << (outcome.q2_cache_hit ? "hit" : "MISS") << "\n";
}

}  // namespace

int main() {
  storage::Database db;
  RuleServer server(db);

  // --- rule base: one classifier + one promotion rule per level ------------
  RuleUseData classifier;
  classifier.name = "classifyBySpend";
  classifier.context_id = "customerLevel";
  classifier.type = "classifier";
  classifier.implementation = "classify_by_spend";
  classifier.init_params = "1000,200";  // gold/silver thresholds
  server.CreateRuleUse(classifier);

  auto promo = [&](const std::string& level, const std::string& url) {
    RuleUseData rule;
    rule.name = "promo" + level;
    rule.context_id = "promotion";
    rule.type = "situational";
    rule.classification = level;
    rule.implementation = "emit_promotion";
    rule.init_params = url;
    server.CreateRuleUse(rule);
  };
  promo("Gold", "/promos/champagne.html");
  promo("Silver", "/promos/wine.html");
  promo("Bronze", "/promos/beer.html");

  // --- rule implementations -------------------------------------------------
  RuleRegistry registry;
  registry.Register("classify_by_spend", [](const RuleUseView& rule, const RuleContext& ctx) {
    const std::string params = rule.GetString("INITPARAMS");
    const auto comma = params.find(',');
    const int64_t gold = std::stoll(params.substr(0, comma));
    const int64_t silver = std::stoll(params.substr(comma + 1));
    const int64_t spend = ctx.at("monthlySpend").as_int();
    if (spend >= gold) return Value("Gold");
    if (spend >= silver) return Value("Silver");
    return Value("Bronze");
  });
  registry.Register("classify_platinum", [](const RuleUseView& rule, const RuleContext& ctx) {
    const int64_t threshold = std::stoll(rule.GetString("INITPARAMS"));
    if (ctx.at("monthlySpend").as_int() >= threshold) return Value("Platinum");
    return Value::Null();
  });
  registry.Register("emit_promotion", [](const RuleUseView& rule, const RuleContext&) {
    return Value(rule.GetString("INITPARAMS"));
  });

  ClassifyAndSelectDecisionPoint decision_point(server, registry, "customerLevel");

  std::cout << "--- cold cache ---\n";
  ServePage(decision_point, "alice", 1500);
  ServePage(decision_point, "bob", 350);
  std::cout << "--- warm cache ---\n";
  ServePage(decision_point, "carol", 2200);  // Gold again: full hits
  ServePage(decision_point, "dave", 80);     // Bronze promo is a miss once
  ServePage(decision_point, "erin", 90);

  std::cout << "\n--- administrator introduces a Platinum level ---\n";
  RuleUseData platinum_classifier;
  platinum_classifier.name = "classifyPlatinum";
  platinum_classifier.context_id = "customerLevel";
  platinum_classifier.type = "classifier";
  platinum_classifier.priority = 10;
  platinum_classifier.implementation = "classify_platinum";
  platinum_classifier.init_params = "5000";
  server.CreateRuleUse(platinum_classifier);
  promo("Platinum", "/promos/yacht.html");

  std::cout << "(paper: Q1 must be invalidated; cached Q2 results for the old\n"
               " classifications are still valid and must NOT be invalidated)\n";
  ServePage(decision_point, "frank", 9000);  // Q1 MISS (new classifier), new promo MISS
  ServePage(decision_point, "grace", 1500);  // Q1 hit again; Gold promo still cached?

  const auto stats = server.engine().stats();
  std::cout << "\nengine: executions=" << stats.executions << " hits=" << stats.cache_hits
            << " db=" << stats.db_executions << "\n"
            << "dup invalidations=" << server.engine().dup_stats().invalidations << "\n";
  return 0;
}
