#!/usr/bin/env bash
# Full verification pipeline, runnable locally or in CI:
#
#   1. tier-1: default preset, the whole test suite (unit, property,
#      recovery, stress, dup-labeled invalidation tests);
#   2. dup:    `ctest -L dup` on the same build — the sublinear-invalidation
#      suite on its own, for quick iteration on the DUP engine;
#   3. tsan:   ThreadSanitizer build, stress-, server-, vec- and
#              semantic-labeled tests (exercises the default kClock
#              shared-lock hit path, the qcached I/O-thread/worker handoff,
#              the vectorized scan worker pool, and the semantic tier's
#              concurrent no-stale-hit suite);
#   4. asan:   AddressSanitizer build, recovery-, server-, vec- and
#              semantic-labeled tests;
#   5. bench-smoke: the self-checking extension benches (ext_hit_contention,
#              ext_invalidation_scale, ext_server_latency, ext_scan_speed,
#              ext_semantic_hit)
#              in quick mode — their [VIOLATION] checks gate the stage and
#              each drops a BENCH_<name>.json artifact into build/bench/
#              (committed snapshots live in bench/artifacts/).
#   6. serve-smoke: build qcached + qcsh, boot a real server on an
#              ephemeral port with a disk cache, and drive a scripted
#              `qcsh --connect` session (prepare, query xN, stats, drain);
#              gates on the hit transition, clean drain, and exit code 0.
#
# Stages can be selected by name: `scripts/ci.sh tier1 dup` runs only the
# first two. Default is all six. JOBS controls build parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier1 dup tsan asan bench-smoke serve-smoke)

want() {
  local stage
  for stage in "${STAGES[@]}"; do
    [ "$stage" = "$1" ] && return 0
  done
  return 1
}

banner() { printf '\n=== %s ===\n' "$1"; }

if want tier1 || want dup || want bench-smoke || want serve-smoke; then
  banner "configure+build (default preset)"
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS"
fi

if want tier1; then
  banner "tier-1 test suite"
  ctest --preset default -j "$JOBS"
fi

if want dup; then
  banner "dup-labeled invalidation suite (ctest -L dup)"
  ctest --test-dir build -L dup --output-on-failure -j "$JOBS"
fi

if want tsan; then
  banner "tsan stress + server suites"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan-stress -j "$JOBS"
  ctest --preset tsan-server -j "$JOBS"
  ctest --preset tsan-vec -j "$JOBS"
  ctest --preset tsan-semantic -j "$JOBS"
fi

if want asan; then
  banner "asan recovery + server suites"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan-recovery -j "$JOBS"
  ctest --preset asan-server -j "$JOBS"
  ctest --preset asan-vec -j "$JOBS"
  ctest --preset asan-semantic -j "$JOBS"
fi

if want bench-smoke; then
  banner "bench smoke (self-checking extension benches, quick mode)"
  # Quick-mode envs shrink the measure windows/sweeps so the stage stays
  # under a minute; the benches' own [VIOLATION] checks (exit code) gate it,
  # and hard perf-ratio checks self-skip on low-core machines.
  BENCH_JSON_DIR=build/bench HIT_MS=100 HIT_READERS=8 ./build/bench/ext_hit_contention
  BENCH_JSON_DIR=build/bench EXT_INV_MAX_QUERIES=10000 ./build/bench/ext_invalidation_scale
  BENCH_JSON_DIR=build/bench SRV_CONNS=8 SRV_REQS_PER_CONN=500 ./build/bench/ext_server_latency
  BENCH_JSON_DIR=build/bench EXT_SCAN_ROWS=150000 ./build/bench/ext_scan_speed
  BENCH_JSON_DIR=build/bench SEM_ROWS=100000 ./build/bench/ext_semantic_hit
  ls -l build/bench/BENCH_ext_hit_contention.json build/bench/BENCH_ext_invalidation_scale.json \
        build/bench/BENCH_ext_server_latency.json build/bench/BENCH_ext_scan_speed.json \
        build/bench/BENCH_ext_semantic_hit.json
fi

if want serve-smoke; then
  banner "serve smoke (qcached + scripted qcsh --connect session)"
  ctest --preset server -j "$JOBS"
  SMOKE_DIR=$(mktemp -d)
  SERVER_PID=""
  trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
  mkdir -p "$SMOKE_DIR/cache"
  cat > "$SMOKE_DIR/init.qc" <<'INIT'
\create ITEMS ID INT, KIND STRING, PRICE INT
INSERT INTO ITEMS VALUES (1, 'a', 10)
INSERT INTO ITEMS VALUES (2, 'b', 20)
INSERT INTO ITEMS VALUES (3, 'a', 30)
INSERT INTO ITEMS VALUES (4, 'b', 40)
INIT
  ./build/tools/qcached --port 0 --port-file "$SMOKE_DIR/port" \
      --cache-mode disk --cache-dir "$SMOKE_DIR/cache" --recover \
      --txlog "$SMOKE_DIR/txlog" --init "$SMOKE_DIR/init.qc" &
  SERVER_PID=$!
  for _ in $(seq 1 200); do [ -s "$SMOKE_DIR/port" ] && break; sleep 0.05; done
  [ -s "$SMOKE_DIR/port" ] || { echo "serve-smoke: server never wrote its port file"; exit 1; }
  PORT=$(cat "$SMOKE_DIR/port")
  cat > "$SMOKE_DIR/session.qc" <<'SESSION'
\ping
\prepare SELECT COUNT(*) FROM ITEMS WHERE KIND = $1
\execute 1 'a'
\execute 1 'a'
\execute 1 'b'
SELECT ID, PRICE FROM ITEMS WHERE PRICE > 15
SELECT ID, PRICE FROM ITEMS WHERE PRICE > 15
UPDATE ITEMS SET PRICE = 99 WHERE ID = 1
\execute 1 'a'
\close 1
\stats
\drain
SESSION
  ./build/examples/qcsh --connect "127.0.0.1:$PORT" < "$SMOKE_DIR/session.qc" \
      | tee "$SMOKE_DIR/session.out"
  wait "$SERVER_PID"   # drain must exit 0 (set -e gates on it)
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  grep -q "cache hit" "$SMOKE_DIR/session.out" \
      || { echo "serve-smoke: expected a cache hit in the session"; exit 1; }
  grep -q "server drained; connection closed" "$SMOKE_DIR/session.out" \
      || { echo "serve-smoke: expected a clean drain"; exit 1; }
fi

banner "all requested stages passed"
