#!/usr/bin/env bash
# Full verification pipeline, runnable locally or in CI:
#
#   1. tier-1: default preset, the whole test suite (unit, property,
#      recovery, stress, dup-labeled invalidation tests);
#   2. dup:    `ctest -L dup` on the same build — the sublinear-invalidation
#      suite on its own, for quick iteration on the DUP engine;
#   3. tsan:   ThreadSanitizer build, stress-labeled concurrency tests;
#   4. asan:   AddressSanitizer build, recovery-labeled crash-recovery tests.
#
# Stages can be selected by name: `scripts/ci.sh tier1 dup` runs only the
# first two. Default is all four. JOBS controls build parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier1 dup tsan asan)

want() {
  local stage
  for stage in "${STAGES[@]}"; do
    [ "$stage" = "$1" ] && return 0
  done
  return 1
}

banner() { printf '\n=== %s ===\n' "$1"; }

if want tier1 || want dup; then
  banner "configure+build (default preset)"
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS"
fi

if want tier1; then
  banner "tier-1 test suite"
  ctest --preset default -j "$JOBS"
fi

if want dup; then
  banner "dup-labeled invalidation suite (ctest -L dup)"
  ctest --test-dir build -L dup --output-on-failure -j "$JOBS"
fi

if want tsan; then
  banner "tsan stress suite"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan-stress -j "$JOBS"
fi

if want asan; then
  banner "asan recovery suite"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan-recovery -j "$JOBS"
fi

banner "all requested stages passed"
