#!/usr/bin/env bash
# Full verification pipeline, runnable locally or in CI:
#
#   1. tier-1: default preset, the whole test suite (unit, property,
#      recovery, stress, dup-labeled invalidation tests);
#   2. dup:    `ctest -L dup` on the same build — the sublinear-invalidation
#      suite on its own, for quick iteration on the DUP engine;
#   3. tsan:   ThreadSanitizer build, stress-, server-, vec- and
#              semantic-labeled tests (exercises the default kClock
#              shared-lock hit path, the qcached I/O-thread/worker handoff,
#              the vectorized scan worker pool and hash-join/arithmetic
#              differential rounds, and the semantic tier's concurrent
#              no-stale-hit suite);
#   4. asan:   AddressSanitizer build, recovery-, server-, vec- and
#              semantic-labeled tests;
#   5. bench-smoke: the self-checking extension benches (ext_hit_contention,
#              ext_invalidation_scale, ext_server_latency, ext_scan_speed,
#              ext_semantic_hit, ext_cluster_invalidation)
#              in quick mode — their [VIOLATION] checks gate the stage and
#              each drops a BENCH_<name>.json artifact into build/bench/
#              (committed snapshots live in bench/artifacts/).
#   6. serve-smoke: build qcached + qcsh, boot a real server on an
#              ephemeral port with a disk cache, and drive a scripted
#              `qcsh --connect` session (prepare, query xN, stats, drain);
#              gates on the hit transition, clean drain, and exit code 0.
#   7. cluster-smoke: boot one storage node plus three qcached cache nodes
#              wired as a ring (--upstream/--peer, docs/CLUSTER.md), route
#              a SELECT through the ring to a cache hit, run a DML through
#              a different cache node, and gate on the pushed CDC
#              invalidation landing remotely: the re-query must show the
#              fresh count, never the stale one, and ring_forwards must be
#              visible in \stats.
#
# Stages can be selected by name: `scripts/ci.sh tier1 dup` runs only the
# first two. Default is all seven. JOBS controls build parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier1 dup tsan asan bench-smoke serve-smoke cluster-smoke)

want() {
  local stage
  for stage in "${STAGES[@]}"; do
    [ "$stage" = "$1" ] && return 0
  done
  return 1
}

banner() { printf '\n=== %s ===\n' "$1"; }

if want tier1 || want dup || want bench-smoke || want serve-smoke || want cluster-smoke; then
  banner "configure+build (default preset)"
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS"
fi

if want tier1; then
  banner "tier-1 test suite"
  ctest --preset default -j "$JOBS"
fi

if want dup; then
  banner "dup-labeled invalidation suite (ctest -L dup)"
  ctest --test-dir build -L dup --output-on-failure -j "$JOBS"
fi

if want tsan; then
  banner "tsan stress + server suites"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan-stress -j "$JOBS"
  ctest --preset tsan-server -j "$JOBS"
  ctest --preset tsan-vec -j "$JOBS"
  ctest --preset tsan-semantic -j "$JOBS"
  ctest --preset tsan-cluster -j "$JOBS"
fi

if want asan; then
  banner "asan recovery + server suites"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan-recovery -j "$JOBS"
  ctest --preset asan-server -j "$JOBS"
  ctest --preset asan-vec -j "$JOBS"
  ctest --preset asan-semantic -j "$JOBS"
  ctest --preset asan-cluster -j "$JOBS"
fi

if want bench-smoke; then
  banner "bench smoke (self-checking extension benches, quick mode)"
  # Quick-mode envs shrink the measure windows/sweeps so the stage stays
  # under a minute; the benches' own [VIOLATION] checks (exit code) gate it,
  # and hard perf-ratio checks self-skip on low-core machines.
  BENCH_JSON_DIR=build/bench HIT_MS=100 HIT_READERS=8 ./build/bench/ext_hit_contention
  BENCH_JSON_DIR=build/bench EXT_INV_MAX_QUERIES=10000 ./build/bench/ext_invalidation_scale
  BENCH_JSON_DIR=build/bench SRV_CONNS=8 SRV_REQS_PER_CONN=500 ./build/bench/ext_server_latency
  BENCH_JSON_DIR=build/bench EXT_SCAN_ROWS=150000 \
    EXT_SCAN_MIN_JOIN_SPEEDUP=3 EXT_SCAN_MIN_GROUP_SPEEDUP=3 ./build/bench/ext_scan_speed
  BENCH_JSON_DIR=build/bench SEM_ROWS=100000 ./build/bench/ext_semantic_hit
  BENCH_JSON_DIR=build/bench CLUSTER_DMLS=50 CLUSTER_FILLS=300 ./build/bench/ext_cluster_invalidation
  ls -l build/bench/BENCH_ext_hit_contention.json build/bench/BENCH_ext_invalidation_scale.json \
        build/bench/BENCH_ext_server_latency.json build/bench/BENCH_ext_scan_speed.json \
        build/bench/BENCH_ext_semantic_hit.json build/bench/BENCH_ext_cluster_invalidation.json
fi

if want serve-smoke; then
  banner "serve smoke (qcached + scripted qcsh --connect session)"
  ctest --preset server -j "$JOBS"
  SMOKE_DIR=$(mktemp -d)
  SERVER_PID=""
  trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
  mkdir -p "$SMOKE_DIR/cache"
  cat > "$SMOKE_DIR/init.qc" <<'INIT'
\create ITEMS ID INT, KIND STRING, PRICE INT
INSERT INTO ITEMS VALUES (1, 'a', 10)
INSERT INTO ITEMS VALUES (2, 'b', 20)
INSERT INTO ITEMS VALUES (3, 'a', 30)
INSERT INTO ITEMS VALUES (4, 'b', 40)
INIT
  ./build/tools/qcached --port 0 --port-file "$SMOKE_DIR/port" \
      --cache-mode disk --cache-dir "$SMOKE_DIR/cache" --recover \
      --txlog "$SMOKE_DIR/txlog" --init "$SMOKE_DIR/init.qc" &
  SERVER_PID=$!
  for _ in $(seq 1 200); do [ -s "$SMOKE_DIR/port" ] && break; sleep 0.05; done
  [ -s "$SMOKE_DIR/port" ] || { echo "serve-smoke: server never wrote its port file"; exit 1; }
  PORT=$(cat "$SMOKE_DIR/port")
  cat > "$SMOKE_DIR/session.qc" <<'SESSION'
\ping
\prepare SELECT COUNT(*) FROM ITEMS WHERE KIND = $1
\execute 1 'a'
\execute 1 'a'
\execute 1 'b'
SELECT ID, PRICE FROM ITEMS WHERE PRICE > 15
SELECT ID, PRICE FROM ITEMS WHERE PRICE > 15
UPDATE ITEMS SET PRICE = 99 WHERE ID = 1
\execute 1 'a'
\close 1
\stats
\drain
SESSION
  ./build/examples/qcsh --connect "127.0.0.1:$PORT" < "$SMOKE_DIR/session.qc" \
      | tee "$SMOKE_DIR/session.out"
  wait "$SERVER_PID"   # drain must exit 0 (set -e gates on it)
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  grep -q "cache hit" "$SMOKE_DIR/session.out" \
      || { echo "serve-smoke: expected a cache hit in the session"; exit 1; }
  grep -q "server drained; connection closed" "$SMOKE_DIR/session.out" \
      || { echo "serve-smoke: expected a clean drain"; exit 1; }
fi

if want cluster-smoke; then
  banner "cluster smoke (1 storage node + 3 ring-routed cache nodes)"
  ctest --preset cluster -j "$JOBS"
  CLUSTER_DIR=$(mktemp -d)
  CLUSTER_PIDS=()
  # (also keeps cleaning the serve-smoke dir, whose trap this replaces)
  trap 'kill "${CLUSTER_PIDS[@]}" 2>/dev/null || true; rm -rf "$CLUSTER_DIR" "${SMOKE_DIR:-}"' EXIT
  cat > "$CLUSTER_DIR/init.qc" <<'INIT'
\create ITEMS ID INT, KIND STRING, PRICE INT
INSERT INTO ITEMS VALUES (1, 'a', 7)
INSERT INTO ITEMS VALUES (2, 'a', 7)
INSERT INTO ITEMS VALUES (3, 'a', 7)
INSERT INTO ITEMS VALUES (4, 'a', 7)
INSERT INTO ITEMS VALUES (5, 'a', 7)
INSERT INTO ITEMS VALUES (6, 'a', 7)
INSERT INTO ITEMS VALUES (7, 'a', 7)
INSERT INTO ITEMS VALUES (8, 'a', 7)
INSERT INTO ITEMS VALUES (9, 'a', 7)
INSERT INTO ITEMS VALUES (10, 'a', 7)
INSERT INTO ITEMS VALUES (11, 'a', 7)
INSERT INTO ITEMS VALUES (12, 'b', 7)
INIT
  # Cache nodes only need the catalog; their fills come over QUERY_SEQ.
  head -1 "$CLUSTER_DIR/init.qc" > "$CLUSTER_DIR/schema.qc"

  ./build/tools/qcached --port 0 --port-file "$CLUSTER_DIR/storage.port" \
      --init "$CLUSTER_DIR/init.qc" &
  CLUSTER_PIDS+=($!)
  for _ in $(seq 1 200); do [ -s "$CLUSTER_DIR/storage.port" ] && break; sleep 0.05; done
  [ -s "$CLUSTER_DIR/storage.port" ] || { echo "cluster-smoke: storage node never came up"; exit 1; }
  STORAGE_PORT=$(cat "$CLUSTER_DIR/storage.port")

  # Peers must know each other's ports before any of them starts, so pick a
  # free contiguous block up front (ephemeral --port 0 cannot work here).
  pick_ports() {
    local attempt base p
    for attempt in $(seq 1 20); do
      base=$((20000 + RANDOM % 20000))
      for p in 0 1 2; do
        (exec 3<>"/dev/tcp/127.0.0.1/$((base + p))") 2>/dev/null && { exec 3>&-; continue 2; }
      done
      echo "$base"; return 0
    done
    return 1
  }
  BASE=$(pick_ports) || { echo "cluster-smoke: no free port block"; exit 1; }
  for i in 0 1 2; do
    PEERS=()
    for p in 0 1 2; do
      [ "$p" = "$i" ] || PEERS+=(--peer "cache$p=127.0.0.1:$((BASE + p))")
    done
    ./build/tools/qcached --port $((BASE + i)) \
        --port-file "$CLUSTER_DIR/cache$i.port" --init "$CLUSTER_DIR/schema.qc" \
        --upstream "127.0.0.1:$STORAGE_PORT" --node-name "cache$i" "${PEERS[@]}" &
    CLUSTER_PIDS+=($!)
  done
  for i in 0 1 2; do
    for _ in $(seq 1 200); do [ -s "$CLUSTER_DIR/cache$i.port" ] && break; sleep 0.05; done
    [ -s "$CLUSTER_DIR/cache$i.port" ] || { echo "cluster-smoke: cache$i never came up"; exit 1; }
  done

  QCSH=./build/examples/qcsh
  # Route the same SELECT through cache0 twice: the ring forwards it to its
  # owner, and the second pass must be a cluster-wide cache hit.
  printf "SELECT COUNT(*) FROM ITEMS WHERE KIND = 'a'\nSELECT COUNT(*) FROM ITEMS WHERE KIND = 'a'\n\\stats\n" \
      | "$QCSH" --connect "127.0.0.1:$((BASE + 0))" | tee "$CLUSTER_DIR/warm.out"
  grep -q "cache hit" "$CLUSTER_DIR/warm.out" \
      || { echo "cluster-smoke: expected a ring-routed cache hit"; exit 1; }
  grep -q "cluster.ring_forwards" "$CLUSTER_DIR/warm.out" \
      || { echo "cluster-smoke: expected cluster counters in \\stats"; exit 1; }

  # DML through a DIFFERENT cache node: forwarded to the storage node,
  # whose CDC stream must invalidate the owning cache remotely.
  printf "UPDATE ITEMS SET KIND = 'b' WHERE ID = 1\n" \
      | "$QCSH" --connect "127.0.0.1:$((BASE + 1))" | grep -q "1 rows affected" \
      || { echo "cluster-smoke: DML through a cache node failed"; exit 1; }

  # The fresh count (10) must appear within one CDC round-trip; a stale
  # cache hit of the old count (11) after it settles is a failure.
  FRESH=0
  for _ in $(seq 1 100); do
    printf "SELECT COUNT(*) FROM ITEMS WHERE KIND = 'a'\n" \
        | "$QCSH" --connect "127.0.0.1:$((BASE + 2))" > "$CLUSTER_DIR/requery.out"
    if grep -q "^10$" <(grep -oE "[0-9]+" "$CLUSTER_DIR/requery.out"); then FRESH=1; break; fi
    sleep 0.05
  done
  [ "$FRESH" = 1 ] || { echo "cluster-smoke: remote invalidation never landed"; exit 1; }
  printf "SELECT COUNT(*) FROM ITEMS WHERE KIND = 'a'\n" \
      | "$QCSH" --connect "127.0.0.1:$((BASE + 2))" | tee "$CLUSTER_DIR/settled.out"
  grep -oE "[0-9]+" "$CLUSTER_DIR/settled.out" | grep -q "^11$" \
      && { echo "cluster-smoke: stale count served after invalidation"; exit 1; }

  kill "${CLUSTER_PIDS[@]}" 2>/dev/null || true
  wait "${CLUSTER_PIDS[@]}" 2>/dev/null || true
  CLUSTER_PIDS=()
  trap 'rm -rf "$CLUSTER_DIR" "${SMOKE_DIR:-}"' EXIT
fi

banner "all requested stages passed"
