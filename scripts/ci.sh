#!/usr/bin/env bash
# Full verification pipeline, runnable locally or in CI:
#
#   1. tier-1: default preset, the whole test suite (unit, property,
#      recovery, stress, dup-labeled invalidation tests);
#   2. dup:    `ctest -L dup` on the same build — the sublinear-invalidation
#      suite on its own, for quick iteration on the DUP engine;
#   3. tsan:   ThreadSanitizer build, stress-labeled concurrency tests
#              (exercises the default kClock shared-lock hit path);
#   4. asan:   AddressSanitizer build, recovery-labeled crash-recovery tests;
#   5. bench-smoke: the self-checking extension benches (ext_hit_contention,
#              ext_invalidation_scale) in quick mode — their [VIOLATION]
#              checks gate the stage and each drops a BENCH_<name>.json
#              artifact into build/bench/.
#
# Stages can be selected by name: `scripts/ci.sh tier1 dup` runs only the
# first two. Default is all five. JOBS controls build parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
STAGES=("$@")
[ ${#STAGES[@]} -eq 0 ] && STAGES=(tier1 dup tsan asan bench-smoke)

want() {
  local stage
  for stage in "${STAGES[@]}"; do
    [ "$stage" = "$1" ] && return 0
  done
  return 1
}

banner() { printf '\n=== %s ===\n' "$1"; }

if want tier1 || want dup || want bench-smoke; then
  banner "configure+build (default preset)"
  cmake --preset default >/dev/null
  cmake --build --preset default -j "$JOBS"
fi

if want tier1; then
  banner "tier-1 test suite"
  ctest --preset default -j "$JOBS"
fi

if want dup; then
  banner "dup-labeled invalidation suite (ctest -L dup)"
  ctest --test-dir build -L dup --output-on-failure -j "$JOBS"
fi

if want tsan; then
  banner "tsan stress suite"
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j "$JOBS"
  ctest --preset tsan-stress -j "$JOBS"
fi

if want asan; then
  banner "asan recovery suite"
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j "$JOBS"
  ctest --preset asan-recovery -j "$JOBS"
fi

if want bench-smoke; then
  banner "bench smoke (self-checking extension benches, quick mode)"
  # Quick-mode envs shrink the measure windows/sweeps so the stage stays
  # under a minute; the benches' own [VIOLATION] checks (exit code) gate it,
  # and hard perf-ratio checks self-skip on low-core machines.
  BENCH_JSON_DIR=build/bench HIT_MS=100 HIT_READERS=8 ./build/bench/ext_hit_contention
  BENCH_JSON_DIR=build/bench EXT_INV_MAX_QUERIES=10000 ./build/bench/ext_invalidation_scale
  ls -l build/bench/BENCH_ext_hit_contention.json build/bench/BENCH_ext_invalidation_scale.json
fi

banner "all requested stages passed"
