// qcached — the query-cache middleware as a network server (ROADMAP item
// 1; protocol spec in docs/SERVING.md, operator quickstart in README.md).
//
// Wraps a CachedQueryEngine behind the QCP/1 wire protocol: clients
// connect with src/server/client.h or `qcsh --connect`, QUERY/PREPARE/
// EXECUTE run against the cache + database, STATS serializes every counter
// surface, and SIGTERM (or a DRAIN frame) drains gracefully — the listener
// closes, in-flight queries finish, the txlog flushes — so a restart with
// --recover serves the previous process's cached results warm.
//
// The storage layer is in-memory and rebuilt from --init on every start;
// only the cache tier (spill files under --cache-dir) persists across
// restarts. Run the same --init script on restart so recovered results
// stay consistent with the rebuilt tables.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/cache_node.h"
#include "common/error.h"
#include "common/strings.h"
#include "middleware/query_engine.h"
#include "server/server.h"
#include "sql/dml.h"
#include "sql/parser.h"
#include "storage/csv.h"

using namespace qc;

namespace {

server::QcServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: RequestDrain only stores an atomic and writes one
  // byte to the wake pipe.
  if (g_server != nullptr) g_server->RequestDrain();
}

struct Flags {
  std::string host = "127.0.0.1";
  int port = 7433;
  std::string port_file;
  size_t threads = 4;
  size_t max_in_flight = 256;
  size_t max_write_queue_bytes = 4 * 1024 * 1024;
  uint32_t max_frame_bytes = server::kDefaultMaxFrameBytes;
  std::string policy = "III";
  std::string cache_mode = "memory";
  std::string cache_dir;
  bool recover = false;
  size_t shards = 1;
  std::string eviction = "clock";
  size_t memory_budget_bytes = 256 * 1024 * 1024;
  int64_t ttl_ms = 0;  // 0 = no TTL
  std::string txlog;
  int64_t db_latency_us = 0;
  bool refresh = false;
  std::string init_script;
  bool quiet = false;

  // Cluster mode (docs/CLUSTER.md). --upstream turns the process into a
  // cache node: misses fill over QUERY_SEQ, DML forwards upstream, and the
  // CDC applier replaces the local-database subscription. Without it the
  // process is a storage node and publishes the CDC stream.
  std::string node_name = "cache0";
  std::string upstream;                // HOST:PORT of the storage node
  std::vector<std::string> peers;      // NAME=HOST:PORT per --peer
  size_t ring_vnodes = 64;
};

void PrintUsage() {
  std::cout <<
      "qcached — network server for the cached query middleware (docs/SERVING.md)\n"
      "\n"
      "  --host ADDR                listen address (default 127.0.0.1)\n"
      "  --port N                   listen port; 0 = ephemeral (default 7433)\n"
      "  --port-file PATH           write the bound port here once listening\n"
      "  --threads N                worker threads (default 4)\n"
      "  --max-in-flight N          global request cap before BUSY shedding (default 256)\n"
      "  --max-write-queue-bytes N  per-connection response queue cap (default 4194304)\n"
      "  --max-frame-bytes N        largest accepted frame payload (default 16777216)\n"
      "  --policy I|II|III|IV       DUP invalidation policy (default III)\n"
      "  --cache-mode MODE          memory | disk | hybrid (default memory)\n"
      "  --cache-dir PATH           spill directory (required for disk/hybrid)\n"
      "  --recover                  recover_on_open: warm-restart from the spool\n"
      "  --shards N                 GPS cache shards (default 1)\n"
      "  --eviction clock|lru       replacement policy (default clock)\n"
      "  --memory-budget-bytes N    cache memory budget (default 268435456)\n"
      "  --ttl-ms N                 default TTL per cached result; 0 = none\n"
      "  --txlog PATH               transaction log file (default off)\n"
      "  --db-latency-us N          simulated persistent-store miss latency\n"
      "  --refresh                  refresh-on-invalidate instead of discard\n"
      "  --init PATH                bootstrap script: \\create / \\index /\n"
      "                             \\import lines and INSERT/UPDATE/DELETE SQL\n"
      "  --quiet                    suppress startup/drain log lines\n"
      "  --upstream HOST:PORT       run as a cache node of this storage node\n"
      "                             (docs/CLUSTER.md; cache nodes still need the\n"
      "                             schema half of --init to bind SELECTs)\n"
      "  --node-name NAME           this cache node's ring name (default cache0)\n"
      "  --peer NAME=HOST:PORT      a sibling cache node; repeatable, same set\n"
      "                             on every node\n"
      "  --ring-vnodes N            vnodes per ring member (default 64)\n"
      "  --help                     this text\n";
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  const auto need_value = [&](int i) -> std::string {
    if (i + 1 >= argc) throw Error(std::string("missing value for ") + argv[i]);
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--host") {
      flags.host = need_value(i++);
    } else if (arg == "--port") {
      flags.port = std::stoi(need_value(i++));
    } else if (arg == "--port-file") {
      flags.port_file = need_value(i++);
    } else if (arg == "--threads") {
      flags.threads = std::stoul(need_value(i++));
    } else if (arg == "--max-in-flight") {
      flags.max_in_flight = std::stoul(need_value(i++));
    } else if (arg == "--max-write-queue-bytes") {
      flags.max_write_queue_bytes = std::stoul(need_value(i++));
    } else if (arg == "--max-frame-bytes") {
      flags.max_frame_bytes = static_cast<uint32_t>(std::stoul(need_value(i++)));
    } else if (arg == "--policy") {
      flags.policy = need_value(i++);
    } else if (arg == "--cache-mode") {
      flags.cache_mode = need_value(i++);
    } else if (arg == "--cache-dir") {
      flags.cache_dir = need_value(i++);
    } else if (arg == "--recover") {
      flags.recover = true;
    } else if (arg == "--shards") {
      flags.shards = std::stoul(need_value(i++));
    } else if (arg == "--eviction") {
      flags.eviction = need_value(i++);
    } else if (arg == "--memory-budget-bytes") {
      flags.memory_budget_bytes = std::stoul(need_value(i++));
    } else if (arg == "--ttl-ms") {
      flags.ttl_ms = std::stoll(need_value(i++));
    } else if (arg == "--txlog") {
      flags.txlog = need_value(i++);
    } else if (arg == "--db-latency-us") {
      flags.db_latency_us = std::stoll(need_value(i++));
    } else if (arg == "--refresh") {
      flags.refresh = true;
    } else if (arg == "--init") {
      flags.init_script = need_value(i++);
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg == "--upstream") {
      flags.upstream = need_value(i++);
    } else if (arg == "--node-name") {
      flags.node_name = need_value(i++);
    } else if (arg == "--peer") {
      flags.peers.push_back(need_value(i++));
    } else if (arg == "--ring-vnodes") {
      flags.ring_vnodes = std::stoul(need_value(i++));
    } else {
      throw Error("unknown flag '" + arg + "' (try --help)");
    }
  }
  return flags;
}

dup::InvalidationPolicy ParsePolicy(const std::string& name) {
  if (name == "I") return dup::InvalidationPolicy::kFlushAll;
  if (name == "II") return dup::InvalidationPolicy::kValueUnaware;
  if (name == "III") return dup::InvalidationPolicy::kValueAware;
  if (name == "IV") return dup::InvalidationPolicy::kRowAware;
  throw Error("unknown policy '" + name + "' (I, II, III, or IV)");
}

// \create T A INT, B STRING NULL, C DOUBLE — same syntax as qcsh.
void CreateTable(storage::Database& db, std::istringstream& in) {
  std::string table;
  in >> table;
  std::string rest;
  std::getline(in, rest);
  std::vector<storage::ColumnDef> columns;
  std::istringstream cols(rest);
  std::string spec;
  while (std::getline(cols, spec, ',')) {
    std::istringstream parts(spec);
    storage::ColumnDef def;
    std::string type, null_marker;
    parts >> def.name >> type >> null_marker;
    if (def.name.empty() || type.empty()) throw Error("\\create: bad column spec '" + spec + "'");
    const std::string upper = ToUpper(type);
    def.type = upper == "INT"      ? ValueType::kInt
               : upper == "DOUBLE" ? ValueType::kDouble
                                   : ValueType::kString;
    def.nullable = ToUpper(null_marker) == "NULL";
    columns.push_back(std::move(def));
  }
  db.CreateTable(table, storage::Schema(std::move(columns)));
}

/// Run the bootstrap script against the bare database. This happens
/// *before* the engine is constructed so that warm-restart re-registration
/// (which re-binds recovered SQL against the catalog) sees every table.
void RunInitScript(storage::Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open init script '" + path + "'");
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    const size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line[0] == '#' || line.rfind("--", 0) == 0) continue;
    try {
      if (line[0] == '\\') {
        std::istringstream cmd_in(line);
        std::string cmd;
        cmd_in >> cmd;
        if (cmd == "\\create") {
          CreateTable(db, cmd_in);
        } else if (cmd == "\\index") {
          std::string table, column, kind;
          cmd_in >> table >> column >> kind;
          storage::Table& t = db.GetTable(table);
          const uint32_t col = t.schema().Require(column);
          if (kind == "ordered") {
            t.CreateOrderedIndex(col);
          } else {
            t.CreateHashIndex(col);
          }
        } else if (cmd == "\\import") {
          std::string table, csv_path;
          cmd_in >> table >> csv_path;
          storage::ImportCsvFile(db.GetTable(table), csv_path);
        } else {
          throw Error("unsupported init command " + cmd);
        }
      } else {
        const sql::AnyStatement stmt = sql::ParseStatement(line);
        if (stmt.kind != sql::AnyStatement::Kind::kDml) {
          throw Error("init scripts take DDL and DML only (no SELECT)");
        }
        sql::ExecuteDml(stmt.dml, db);
      }
    } catch (const Error& e) {
      throw Error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
}

middleware::CachedQueryEngine::Options EngineOptions(const Flags& flags) {
  middleware::CachedQueryEngine::Options options;
  options.policy = ParsePolicy(flags.policy);
  if (flags.cache_mode == "memory") {
    options.cache.mode = cache::CacheMode::kMemory;
  } else if (flags.cache_mode == "disk") {
    options.cache.mode = cache::CacheMode::kDisk;
  } else if (flags.cache_mode == "hybrid") {
    options.cache.mode = cache::CacheMode::kHybrid;
  } else {
    throw Error("unknown cache mode '" + flags.cache_mode + "'");
  }
  if (options.cache.mode != cache::CacheMode::kMemory) {
    if (flags.cache_dir.empty()) throw Error("--cache-dir is required for disk/hybrid modes");
    options.cache.disk_directory = flags.cache_dir;
  }
  options.cache.recover_on_open = flags.recover;
  options.cache.shards = flags.shards;
  if (flags.eviction == "lru") {
    options.cache.eviction = cache::EvictionPolicy::kLru;
  } else if (flags.eviction == "clock") {
    options.cache.eviction = cache::EvictionPolicy::kClock;
  } else {
    throw Error("unknown eviction policy '" + flags.eviction + "'");
  }
  options.cache.memory_budget_bytes = flags.memory_budget_bytes;
  if (!flags.txlog.empty()) options.cache.log_path = flags.txlog;
  if (flags.ttl_ms > 0) options.default_ttl = std::chrono::milliseconds(flags.ttl_ms);
  options.simulated_db_latency = std::chrono::microseconds(flags.db_latency_us);
  options.refresh_on_invalidate = flags.refresh;
  return options;
}

std::pair<std::string, uint16_t> ParseHostPort(const std::string& spec, const char* what) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw Error(std::string(what) + " must be HOST:PORT, got '" + spec + "'");
  }
  return {spec.substr(0, colon), static_cast<uint16_t>(std::stoul(spec.substr(colon + 1)))};
}

cluster::CacheNodeConfig NodeConfig(const Flags& flags) {
  cluster::CacheNodeConfig config;
  config.name = flags.node_name;
  std::tie(config.upstream_host, config.upstream_port) =
      ParseHostPort(flags.upstream, "--upstream");
  config.ring_vnodes = flags.ring_vnodes;
  for (const std::string& spec : flags.peers) {
    const size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw Error("--peer must be NAME=HOST:PORT, got '" + spec + "'");
    }
    cluster::PeerAddress peer;
    peer.name = spec.substr(0, eq);
    std::tie(peer.host, peer.port) = ParseHostPort(spec.substr(eq + 1), "--peer");
    config.peers.push_back(std::move(peer));
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags = ParseFlags(argc, argv);

    storage::Database db;
    if (!flags.init_script.empty()) RunInitScript(db, flags.init_script);

    // --upstream switches the process from storage-node duty (local
    // database, publishes the CDC stream) to cache-node duty (fills and
    // DML go upstream, the CDC applier feeds invalidations).
    const bool is_cache_node = !flags.upstream.empty();
    std::optional<cluster::CacheNodeRuntime> runtime;
    middleware::CachedQueryEngine::Options options = EngineOptions(flags);
    if (is_cache_node) {
      runtime.emplace(NodeConfig(flags));
      options = runtime->DecorateEngineOptions(std::move(options));
    }

    middleware::CachedQueryEngine engine(db, options);

    server::ServerConfig config;
    config.host = flags.host;
    config.port = static_cast<uint16_t>(flags.port);
    config.worker_threads = flags.threads;
    config.max_in_flight = flags.max_in_flight;
    config.max_write_queue_bytes = flags.max_write_queue_bytes;
    config.max_frame_bytes = flags.max_frame_bytes;
    config.cdc_publish = !is_cache_node;  // cache nodes relay the upstream stream

    server::QcServer server(engine, config);
    if (runtime) runtime->AttachServer(engine, server);
    server.Start();
    if (runtime) runtime->Start();

    g_server = &server;
    struct sigaction action{};
    action.sa_handler = HandleSignal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    if (!flags.port_file.empty()) {
      // Write-then-rename so a polling reader never sees a partial write.
      const std::string tmp = flags.port_file + ".tmp";
      {
        std::ofstream out(tmp, std::ios::trunc);
        out << server.port() << "\n";
      }
      std::rename(tmp.c_str(), flags.port_file.c_str());
    }

    const auto stats = engine.stats();
    if (!flags.quiet) {
      std::cout << "qcached listening on " << flags.host << ":" << server.port() << " (pid "
                << ::getpid() << ", policy " << flags.policy << ", cache " << flags.cache_mode
                << ")\n";
      if (flags.recover) {
        std::cout << "warm restart: " << stats.recovered_registrations << " exact + "
                  << stats.recovered_conservative << " conservative re-registrations, "
                  << stats.recovered_dropped << " dropped\n";
      }
      std::cout.flush();
    }

    server.Wait();
    if (runtime) runtime->Stop();
    g_server = nullptr;

    if (!flags.quiet) {
      const auto final_stats = engine.stats();
      std::cout << "qcached drained cleanly: executions="
                << final_stats.executions.load(std::memory_order_relaxed)
                << " hits=" << final_stats.cache_hits.load(std::memory_order_relaxed)
                << " hit_rate=" << final_stats.HitRate() << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "qcached: " << e.what() << "\n";
    return 1;
  }
}
