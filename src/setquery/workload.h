// The paper's §5 workload: the Set Query mix with update transactions
// blended in at a configurable rate, update size (attributes per update
// transaction), and optional 80/20 hot-spot access skew.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "middleware/query_engine.h"
#include "setquery/bench_table.h"
#include "setquery/queries.h"

namespace qc::setquery {

struct WorkloadConfig {
  /// Fraction of transactions that are updates (paper x axes: 0.01 … 0.5).
  double update_rate = 0.02;

  /// Attributes modified per update transaction (1 = 7.69 %, 2 = 15.38 %,
  /// 6 = 46.15 %, 13 = 100 % of the 13 attributes).
  int attributes_per_update = 1;

  /// 80 % of query accesses go to a random 20 % of the query population
  /// (paper Fig. 12); updates stay uniform.
  bool hot_spot = false;

  /// Fraction of update transactions realized as a delete + insert pair
  /// instead of attribute sets (0 reproduces the paper's figures; > 0
  /// exercises the create/delete invalidation path).
  double create_delete_share = 0.0;

  uint64_t transactions = 4000;
  uint64_t seed = 42;

  /// Execute every query once before measuring (steady-state hit rates).
  bool warmup = true;

  /// Parameterized mode (Fig. 12): instead of the fixed-constant query
  /// population, each query template's anchor constant is a run-time
  /// parameter drawn from a per-template pool of `param_pool_size` values.
  /// The cached-object population is then (template × pool value), and the
  /// hot-spot skew ranges over it — "accesses distributed among the data".
  bool parameterized = false;
  int param_pool_size = 10;
};

struct TypeStats {
  uint64_t executions = 0;
  uint64_t hits = 0;
  double HitRatePercent() const {
    return executions == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(executions);
  }
};

struct WorkloadResult {
  std::map<std::string, TypeStats> per_type;  // keyed by query type label
  uint64_t transactions = 0;
  uint64_t queries = 0;
  uint64_t updates = 0;  // update transactions (incl. create/delete pairs)
  uint64_t hits = 0;
  uint64_t invalidations = 0;  // during the measured phase
  uint64_t full_flushes = 0;

  double HitRatePercent() const {
    return queries == 0 ? 0.0 : 100.0 * static_cast<double>(hits) / static_cast<double>(queries);
  }
  double InvalidationsPerTransaction() const {
    return transactions == 0
               ? 0.0
               : static_cast<double>(invalidations) / static_cast<double>(transactions);
  }
};

class WorkloadRunner {
 public:
  /// `engine` must be wired to the database `bench` lives in.
  WorkloadRunner(BenchTable& bench, middleware::CachedQueryEngine& engine);

  WorkloadResult Run(const WorkloadConfig& config);

  size_t query_count() const { return queries_.size(); }

 private:
  struct Instance {
    std::shared_ptr<const sql::BoundQuery> query;
    std::vector<Value> params;
    const std::string* type = nullptr;
  };

  void RunUpdateTransaction(Rng& rng, const WorkloadConfig& config);
  std::vector<Instance> BuildInstances(const WorkloadConfig& config, Rng& rng);

  BenchTable& bench_;
  middleware::CachedQueryEngine& engine_;
  std::vector<QuerySpec> specs_;
  std::vector<std::shared_ptr<const sql::BoundQuery>> queries_;  // parallel to specs_
  std::vector<ParamQuerySpec> param_specs_;
  std::vector<std::shared_ptr<const sql::BoundQuery>> param_queries_;  // parallel
};

}  // namespace qc::setquery
