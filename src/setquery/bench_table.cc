#include "setquery/bench_table.h"

#include "common/error.h"

namespace qc::setquery {

const std::vector<BenchColumn>& BenchColumns() {
  static const std::vector<BenchColumn> kColumns = {
      {"KSEQ", 0},      {"K500K", 500'000}, {"K250K", 250'000}, {"K100K", 100'000},
      {"K40K", 40'000}, {"K10K", 10'000},   {"K1K", 1'000},     {"K100", 100},
      {"K25", 25},      {"K10", 10},        {"K5", 5},          {"K4", 4},
      {"K2", 2},
  };
  return kColumns;
}

size_t BenchAttributeCount() { return BenchColumns().size(); }

BenchTable::BenchTable(storage::Database& db, uint64_t rows, uint64_t seed) : rows_(rows) {
  if (rows == 0) throw StorageError("BENCH table needs at least one row");
  std::vector<storage::ColumnDef> defs;
  defs.reserve(BenchColumns().size());
  for (const BenchColumn& col : BenchColumns()) {
    defs.push_back({col.name, ValueType::kInt, /*nullable=*/false});
  }
  table_ = &db.CreateTable("BENCH", storage::Schema(std::move(defs)));

  Rng rng(seed);
  storage::Row row(BenchColumns().size());
  for (uint64_t i = 1; i <= rows; ++i) {
    for (size_t c = 0; c < BenchColumns().size(); ++c) {
      const BenchColumn& col = BenchColumns()[c];
      row[c] = Value(col.cardinality == 0 ? static_cast<int64_t>(i)
                                          : rng.Uniform(1, col.cardinality));
    }
    table_->Insert(row);
  }

  // Indexes after the bulk load (cheaper than maintaining them during it):
  // equality on every column, ordered on KSEQ for the BETWEEN queries.
  for (uint32_t c = 0; c < BenchColumns().size(); ++c) table_->CreateHashIndex(c);
  table_->CreateOrderedIndex(0);
}

int64_t BenchTable::ScaledKseq(int64_t canonical) const {
  return canonical * static_cast<int64_t>(rows_) / static_cast<int64_t>(kCanonicalRows);
}

int64_t BenchTable::RandomValue(size_t column_index, Rng& rng) const {
  const BenchColumn& col = BenchColumns().at(column_index);
  const int64_t hi = col.cardinality == 0 ? static_cast<int64_t>(rows_) : col.cardinality;
  return rng.Uniform(1, hi);
}

storage::RowId BenchTable::RandomRow(Rng& rng) const {
  // Row ids are dense (the generator never deletes), so a uniform id over
  // the slot range is a uniform live row as long as callers who delete
  // rows re-insert replacements (the workload generator does).
  for (;;) {
    auto candidate = static_cast<storage::RowId>(
        rng.Uniform(0, static_cast<int64_t>(table_->SlotCount()) - 1));
    if (table_->IsLive(candidate)) return candidate;
  }
}

}  // namespace qc::setquery
