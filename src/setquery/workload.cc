#include "setquery/workload.h"

#include <algorithm>
#include <numeric>

namespace qc::setquery {

WorkloadRunner::WorkloadRunner(BenchTable& bench, middleware::CachedQueryEngine& engine)
    : bench_(bench),
      engine_(engine),
      specs_(BuildAllQueries(bench)),
      param_specs_(BuildParameterizedQueries(bench)) {
  queries_.reserve(specs_.size());
  for (const QuerySpec& spec : specs_) queries_.push_back(engine_.Prepare(spec.sql));
  param_queries_.reserve(param_specs_.size());
  for (const ParamQuerySpec& spec : param_specs_) {
    param_queries_.push_back(engine_.Prepare(spec.sql));
  }
}

std::vector<WorkloadRunner::Instance> WorkloadRunner::BuildInstances(const WorkloadConfig& config,
                                                                     Rng& rng) {
  std::vector<Instance> instances;
  if (!config.parameterized) {
    instances.reserve(queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      instances.push_back({queries_[i], {}, &specs_[i].type});
    }
    return instances;
  }
  // One instance per (template, pool value); pool values are uniform over
  // the parameter column's domain, deduplicated so instances are distinct
  // cached objects.
  for (size_t i = 0; i < param_queries_.size(); ++i) {
    const ParamQuerySpec& spec = param_specs_[i];
    std::vector<int64_t> pool;
    while (static_cast<int>(pool.size()) < config.param_pool_size) {
      const int64_t v = bench_.RandomValue(spec.param_column, rng);
      if (std::find(pool.begin(), pool.end(), v) == pool.end()) {
        pool.push_back(v);
      } else if (BenchColumns()[spec.param_column].cardinality != 0 &&
                 BenchColumns()[spec.param_column].cardinality <=
                     static_cast<int64_t>(pool.size())) {
        break;  // domain exhausted (K2, K4, ...)
      }
    }
    for (int64_t v : pool) {
      instances.push_back({param_queries_[i], {Value(v)}, &spec.type});
    }
  }
  // Fixed-constant templates with no natural parameter (Q5) join the mix.
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (specs_[i].type == "5") instances.push_back({queries_[i], {}, &specs_[i].type});
  }
  return instances;
}

void WorkloadRunner::RunUpdateTransaction(Rng& rng, const WorkloadConfig& config) {
  if (config.create_delete_share > 0 && rng.Chance(config.create_delete_share)) {
    // Create/delete pair: "equivalent to resetting all of the object's
    // attributes" (§5). Row count stays constant.
    storage::Table& table = bench_.table();
    const storage::RowId victim = bench_.RandomRow(rng);
    table.Delete(victim);
    storage::Row row(BenchAttributeCount());
    for (size_t c = 0; c < BenchAttributeCount(); ++c) {
      row[c] = Value(bench_.RandomValue(c, rng));
    }
    table.Insert(row);
    return;
  }

  // Choose `attributes_per_update` distinct attributes uniformly; new
  // values uniform over each attribute's full domain (paper §5).
  const size_t n_attrs = BenchAttributeCount();
  std::vector<uint32_t> attrs(n_attrs);
  std::iota(attrs.begin(), attrs.end(), 0);
  std::shuffle(attrs.begin(), attrs.end(), rng.engine());
  const int k = std::min<int>(config.attributes_per_update, static_cast<int>(n_attrs));

  const storage::RowId row = bench_.RandomRow(rng);
  std::vector<std::pair<uint32_t, Value>> sets;
  sets.reserve(k);
  for (int i = 0; i < k; ++i) {
    sets.emplace_back(attrs[i], Value(bench_.RandomValue(attrs[i], rng)));
  }
  bench_.table().Update(row, sets);
}

WorkloadResult WorkloadRunner::Run(const WorkloadConfig& config) {
  Rng rng(config.seed);
  const std::vector<Instance> instances = BuildInstances(config, rng);

  // Hot-spot partition: a seeded shuffle marks 20 % of the cached-object
  // population as hot; 80 % of accesses draw from it (Fig. 12).
  std::vector<size_t> order(instances.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng.engine());
  const size_t hot_count = std::max<size_t>(1, order.size() / 5);

  auto pick_query = [&]() -> size_t {
    if (!config.hot_spot) {
      return order[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(order.size()) - 1))];
    }
    if (rng.Chance(0.8)) {
      return order[static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(hot_count) - 1))];
    }
    return order[static_cast<size_t>(
        rng.Uniform(static_cast<int64_t>(hot_count), static_cast<int64_t>(order.size()) - 1))];
  };

  if (config.warmup) {
    for (const Instance& instance : instances) engine_.Execute(instance.query, instance.params);
  }

  const dup::DupStats dup_before = engine_.dup_stats();

  WorkloadResult result;
  for (uint64_t t = 0; t < config.transactions; ++t) {
    ++result.transactions;
    if (rng.Chance(config.update_rate)) {
      ++result.updates;
      RunUpdateTransaction(rng, config);
    } else {
      const Instance& instance = instances[pick_query()];
      auto outcome = engine_.Execute(instance.query, instance.params);
      ++result.queries;
      TypeStats& type = result.per_type[*instance.type];
      ++type.executions;
      if (outcome.cache_hit) {
        ++type.hits;
        ++result.hits;
      }
    }
  }

  const dup::DupStats dup_after = engine_.dup_stats();
  result.invalidations = dup_after.invalidations - dup_before.invalidations;
  result.full_flushes = dup_after.full_flushes - dup_before.full_flushes;
  return result;
}

}  // namespace qc::setquery
