// The Set Query benchmark query families (paper appendix), instantiated
// against a (possibly rescaled) BENCH table.
#pragma once

#include <string>
#include <vector>

#include "setquery/bench_table.h"

namespace qc::setquery {

struct QuerySpec {
  std::string type;     // "1", "2A", "2B", "3A", "3B", "4A", "4B", "5", "6A", "6B"
  std::string variant;  // e.g. the KN column the instance uses
  std::string sql;
};

/// All query instances for one family (each KN / condition-set variant).
std::vector<QuerySpec> BuildQ1(const BenchTable& bench);
std::vector<QuerySpec> BuildQ2A(const BenchTable& bench);
std::vector<QuerySpec> BuildQ2B(const BenchTable& bench);
std::vector<QuerySpec> BuildQ3A(const BenchTable& bench);
std::vector<QuerySpec> BuildQ3B(const BenchTable& bench);
std::vector<QuerySpec> BuildQ4A(const BenchTable& bench);
std::vector<QuerySpec> BuildQ4B(const BenchTable& bench);
std::vector<QuerySpec> BuildQ5(const BenchTable& bench);
std::vector<QuerySpec> BuildQ6A(const BenchTable& bench);
std::vector<QuerySpec> BuildQ6B(const BenchTable& bench);

/// The full benchmark mix in paper order (Fig. 9's x axis).
std::vector<QuerySpec> BuildAllQueries(const BenchTable& bench);

/// Distinct type labels in paper order.
std::vector<std::string> QueryTypeOrder();

/// A parameterized query template: the anchor equality constant is a
/// statement parameter ($1) drawn from `param_column`'s domain at run
/// time — the Q2($1) pattern of paper §4.2. The Fig. 12 hot-spot workload
/// skews accesses over these parameter values ("80% of the accesses ...
/// among 20% of the data").
struct ParamQuerySpec {
  std::string type;
  std::string variant;
  std::string sql;            // contains $1
  uint32_t param_column = 0;  // BENCH schema index whose domain feeds $1
};

std::vector<ParamQuerySpec> BuildParameterizedQueries(const BenchTable& bench);

}  // namespace qc::setquery
