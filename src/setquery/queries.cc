#include "setquery/queries.h"

#include <sstream>

namespace qc::setquery {

namespace {

// KN sets per query family (paper appendix). K2 is omitted where the paper
// lists it for Q2A because "K2 = 2 AND K2 = 3" is degenerate (provably
// empty); the original benchmark excludes the anchor column as well.
const std::vector<std::string> kQ1Columns = {"KSEQ", "K100K", "K40K", "K10K", "K1K",
                                             "K100", "K25",   "K10",  "K5",   "K4",  "K2"};
const std::vector<std::string> kQ2Columns = {"KSEQ", "K100K", "K40K", "K10K", "K1K",
                                             "K100", "K25",   "K10",  "K5",   "K4"};
const std::vector<std::string> kQ3Columns = {"K100K", "K40K", "K10K", "K1K", "K100",
                                             "K25",   "K10",  "K5",   "K4"};
const std::vector<std::string> kQ6AColumns = {"K100K", "K40K", "K10K", "K1K", "K100"};
const std::vector<std::string> kQ6BColumns = {"K40K", "K10K", "K1K", "K100"};

std::string S(int64_t v) { return std::to_string(v); }

}  // namespace

std::vector<QuerySpec> BuildQ1(const BenchTable&) {
  std::vector<QuerySpec> out;
  for (const std::string& kn : kQ1Columns) {
    out.push_back({"1", kn, "SELECT COUNT(*) FROM BENCH WHERE " + kn + " = 2"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ2A(const BenchTable&) {
  std::vector<QuerySpec> out;
  for (const std::string& kn : kQ2Columns) {
    out.push_back({"2A", kn, "SELECT COUNT(*) FROM BENCH WHERE K2 = 2 AND " + kn + " = 3"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ2B(const BenchTable&) {
  std::vector<QuerySpec> out;
  for (const std::string& kn : kQ2Columns) {
    out.push_back({"2B", kn, "SELECT COUNT(*) FROM BENCH WHERE K2 = 2 AND NOT " + kn + " = 3"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ3A(const BenchTable& bench) {
  std::vector<QuerySpec> out;
  const std::string range =
      "KSEQ BETWEEN " + S(bench.ScaledKseq(400'000)) + " AND " + S(bench.ScaledKseq(500'000));
  for (const std::string& kn : kQ3Columns) {
    out.push_back({"3A", kn,
                   "SELECT SUM(K1K) FROM BENCH WHERE " + range + " AND " + kn + " = 3"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ3B(const BenchTable& bench) {
  std::vector<QuerySpec> out;
  auto seg = [&](int64_t lo, int64_t hi) {
    return "KSEQ BETWEEN " + S(bench.ScaledKseq(lo)) + " AND " + S(bench.ScaledKseq(hi));
  };
  const std::string ranges = "(" + seg(400'000, 410'000) + " OR " + seg(420'000, 430'000) +
                             " OR " + seg(440'000, 450'000) + " OR " + seg(460'000, 470'000) +
                             " OR " + seg(480'000, 500'000) + ")";
  for (const std::string& kn : kQ3Columns) {
    out.push_back({"3B", kn,
                   "SELECT SUM(K1K) FROM BENCH WHERE " + ranges + " AND " + kn + " = 3"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ4A(const BenchTable& bench) {
  // The Set Query spec leaves the exact Q4 condition sets to the suite;
  // these three-condition mixes follow its template (one low-cardinality
  // anchor, one open range, one bounded range). KSEQ bounds are rescaled.
  (void)bench;
  return {
      {"4A", "c1", "SELECT KSEQ, K500K FROM BENCH WHERE K2 = 1 AND K100 > 80 AND K10K BETWEEN 2000 AND 3000"},
      {"4A", "c2", "SELECT KSEQ, K500K FROM BENCH WHERE K4 = 3 AND K25 > 19 AND K1K BETWEEN 100 AND 250"},
      {"4A", "c3", "SELECT KSEQ, K500K FROM BENCH WHERE K5 = 2 AND K10 > 7 AND K40K BETWEEN 10000 AND 20000"},
  };
}

std::vector<QuerySpec> BuildQ4B(const BenchTable& bench) {
  const std::string r1 =
      "KSEQ BETWEEN " + S(bench.ScaledKseq(400'000)) + " AND " + S(bench.ScaledKseq(500'000));
  const std::string r2 =
      "KSEQ BETWEEN " + S(bench.ScaledKseq(100'000)) + " AND " + S(bench.ScaledKseq(300'000));
  return {
      {"4B", "c1",
       "SELECT KSEQ, K500K FROM BENCH WHERE K2 = 1 AND K100 > 80 AND K5 = 3 AND K25 IN (11, 19) AND " + r1},
      {"4B", "c2",
       "SELECT KSEQ, K500K FROM BENCH WHERE K4 = 2 AND K10 > 5 AND K2 = 2 AND K100 BETWEEN 40 AND 60 AND " + r2},
  };
}

std::vector<QuerySpec> BuildQ5(const BenchTable&) {
  // Paper lists (K2,K100), (K10,K25), (K10,K25); the duplicate is almost
  // certainly a typo — we use (K4,K25) as the third pair.
  std::vector<QuerySpec> out;
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"K2", "K100"}, {"K10", "K25"}, {"K4", "K25"}};
  for (const auto& [a, b] : pairs) {
    out.push_back({"5", a + "," + b,
                   "SELECT " + a + ", " + b + ", COUNT(*) FROM BENCH GROUP BY " + a + ", " + b});
  }
  return out;
}

std::vector<QuerySpec> BuildQ6A(const BenchTable&) {
  std::vector<QuerySpec> out;
  for (const std::string& kn : kQ6AColumns) {
    out.push_back({"6A", kn,
                   "SELECT COUNT(*) FROM BENCH B1, BENCH B2 WHERE B1." + kn +
                       " = 49 AND B1.K250K = B2.K500K"});
  }
  return out;
}

std::vector<QuerySpec> BuildQ6B(const BenchTable&) {
  std::vector<QuerySpec> out;
  for (const std::string& kn : kQ6BColumns) {
    out.push_back({"6B", kn,
                   "SELECT B1.KSEQ, B2.KSEQ FROM BENCH B1, BENCH B2 WHERE B1." + kn +
                       " = 99 AND B1.K250K = B2.K500K AND B2.K25 = 19"});
  }
  return out;
}

std::vector<QuerySpec> BuildAllQueries(const BenchTable& bench) {
  std::vector<QuerySpec> all;
  for (auto* builder : {&BuildQ1, &BuildQ2A, &BuildQ2B, &BuildQ3A, &BuildQ3B, &BuildQ4A,
                        &BuildQ4B, &BuildQ5, &BuildQ6A, &BuildQ6B}) {
    auto family = (*builder)(bench);
    all.insert(all.end(), family.begin(), family.end());
  }
  return all;
}

std::vector<std::string> QueryTypeOrder() {
  return {"1", "2A", "2B", "3A", "3B", "4A", "4B", "5", "6A", "6B"};
}

std::vector<ParamQuerySpec> BuildParameterizedQueries(const BenchTable& bench) {
  std::vector<ParamQuerySpec> out;
  auto column_index = [&](const std::string& name) {
    return bench.table().schema().Require(name);
  };

  for (const std::string& kn : kQ1Columns) {
    out.push_back({"1", kn, "SELECT COUNT(*) FROM BENCH WHERE " + kn + " = $1",
                   column_index(kn)});
  }
  for (const std::string& kn : kQ2Columns) {
    out.push_back({"2A", kn, "SELECT COUNT(*) FROM BENCH WHERE K2 = 2 AND " + kn + " = $1",
                   column_index(kn)});
    out.push_back({"2B", kn, "SELECT COUNT(*) FROM BENCH WHERE K2 = 2 AND NOT " + kn + " = $1",
                   column_index(kn)});
  }
  const std::string range =
      "KSEQ BETWEEN " + S(bench.ScaledKseq(400'000)) + " AND " + S(bench.ScaledKseq(500'000));
  auto seg = [&](int64_t lo, int64_t hi) {
    return "KSEQ BETWEEN " + S(bench.ScaledKseq(lo)) + " AND " + S(bench.ScaledKseq(hi));
  };
  const std::string or_ranges = "(" + seg(400'000, 410'000) + " OR " + seg(420'000, 430'000) +
                                " OR " + seg(440'000, 450'000) + " OR " + seg(460'000, 470'000) +
                                " OR " + seg(480'000, 500'000) + ")";
  for (const std::string& kn : kQ3Columns) {
    out.push_back({"3A", kn,
                   "SELECT SUM(K1K) FROM BENCH WHERE " + range + " AND " + kn + " = $1",
                   column_index(kn)});
    out.push_back({"3B", kn,
                   "SELECT SUM(K1K) FROM BENCH WHERE " + or_ranges + " AND " + kn + " = $1",
                   column_index(kn)});
  }
  out.push_back({"4A", "c1",
                 "SELECT KSEQ, K500K FROM BENCH WHERE K2 = $1 AND K100 > 80 AND K10K BETWEEN 2000 AND 3000",
                 column_index("K2")});
  out.push_back({"4A", "c2",
                 "SELECT KSEQ, K500K FROM BENCH WHERE K4 = $1 AND K25 > 19 AND K1K BETWEEN 100 AND 250",
                 column_index("K4")});
  out.push_back({"4A", "c3",
                 "SELECT KSEQ, K500K FROM BENCH WHERE K5 = $1 AND K10 > 7 AND K40K BETWEEN 10000 AND 20000",
                 column_index("K5")});
  out.push_back({"4B", "c1",
                 "SELECT KSEQ, K500K FROM BENCH WHERE K2 = 1 AND K100 > 80 AND K5 = 3 AND K25 IN (11, 19) AND K10K = $1",
                 column_index("K10K")});
  for (const std::string& kn : kQ6AColumns) {
    out.push_back({"6A", kn,
                   "SELECT COUNT(*) FROM BENCH B1, BENCH B2 WHERE B1." + kn +
                       " = $1 AND B1.K250K = B2.K500K",
                   column_index(kn)});
  }
  for (const std::string& kn : kQ6BColumns) {
    out.push_back({"6B", kn,
                   "SELECT B1.KSEQ, B2.KSEQ FROM BENCH B1, BENCH B2 WHERE B1." + kn +
                       " = $1 AND B1.K250K = B2.K500K AND B2.K25 = 19",
                   column_index(kn)});
  }
  return out;
}

}  // namespace qc::setquery
