// The Set Query benchmark's BENCH table (O'Neil; paper §5 and appendix).
//
// The canonical table has one million rows and thirteen indexed integer
// columns whose cardinalities span 2 … 1,000,000:
//
//   KSEQ   unique sequence 1..N        K100K  uniform 1..100000
//   K500K  uniform 1..500000           K40K   uniform 1..40000
//   K250K  uniform 1..250000           K10K   uniform 1..10000
//   K1K    uniform 1..1000             K100   uniform 1..100
//   K25    uniform 1..25               K10    uniform 1..10
//   K5     uniform 1..5                K4     uniform 1..4
//   K2     uniform 1..2
//
// The row count is a parameter so experiments can run at laptop scale;
// KSEQ-range constants taken from the paper are rescaled by row_count/1e6
// (ScaledKseq) so selectivities match the original benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/database.h"

namespace qc::setquery {

inline constexpr uint64_t kCanonicalRows = 1'000'000;

struct BenchColumn {
  const char* name;
  int64_t cardinality;  // 0 = unique sequence (KSEQ)
};

/// The 13 benchmark columns, KSEQ first.
const std::vector<BenchColumn>& BenchColumns();

/// Number of attributes (13).
size_t BenchAttributeCount();

class BenchTable {
 public:
  /// Create and populate table BENCH in `db` with `rows` rows, hash
  /// indexes on every column and an ordered index on KSEQ (the range
  /// column). Deterministic for a given seed.
  BenchTable(storage::Database& db, uint64_t rows, uint64_t seed = 0xbe7c4);

  storage::Table& table() { return *table_; }
  const storage::Table& table() const { return *table_; }
  uint64_t rows() const { return rows_; }

  /// Rescale a KSEQ constant from the canonical 1M-row benchmark to this
  /// table's size (e.g. 400000 → 40000 at 100k rows).
  int64_t ScaledKseq(int64_t canonical) const;

  /// Uniform random value from `column`'s domain.
  int64_t RandomValue(size_t column_index, Rng& rng) const;

  /// A uniformly random live row id.
  storage::RowId RandomRow(Rng& rng) const;

 private:
  storage::Table* table_ = nullptr;
  uint64_t rows_;
};

}  // namespace qc::setquery
