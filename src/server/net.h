// Thin POSIX TCP helpers shared by the qcached server and its client
// library. Everything reports failure with NetError (a qc::Error), so
// callers never check errno themselves.
//
// @thread_safety Free functions over caller-owned file descriptors; safe
// from any thread as long as one fd is not used from two threads at once.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"

namespace qc::server {

class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error("net error: " + what) {}
};

/// Create, bind, and listen on a TCP socket. `port` 0 binds an ephemeral
/// port. Returns the listening fd (non-blocking, CLOEXEC, SO_REUSEADDR).
int ListenTcp(const std::string& host, uint16_t port, int backlog = 128);

/// The port a bound socket actually listens on (resolves port 0).
uint16_t LocalPort(int fd);

/// Blocking connect; returns a blocking CLOEXEC fd with TCP_NODELAY set.
int ConnectTcp(const std::string& host, uint16_t port);

void SetNonBlocking(int fd);
void SetNoDelay(int fd);

/// Write all of `data`, retrying on EINTR / short writes. Throws NetError
/// on failure (including EPIPE — callers treat that as peer-closed).
void WriteAll(int fd, std::string_view data);

/// Read exactly `n` bytes into `out` (appended). Returns false on clean
/// EOF at a frame boundary (zero bytes read); throws NetError on errors or
/// mid-buffer EOF.
bool ReadExact(int fd, size_t n, std::string& out);

/// A pipe pair used to wake a poll loop from other threads and from signal
/// handlers (write end is async-signal-safe to write one byte to).
struct WakePipe {
  int read_fd = -1;
  int write_fd = -1;

  void Open();   // throws NetError; fds are non-blocking + CLOEXEC
  void Close();
  void Notify() const;  // best-effort single-byte write; signal-safe
  void DrainPending() const;  // consume queued wake bytes
};

}  // namespace qc::server
