#include "server/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace qc::server {

namespace {

[[noreturn]] void Fail(const std::string& op) {
  throw NetError(op + ": " + std::string(strerror(errno)));
}

sockaddr_in MakeAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address '" + host + "'");
  }
  return addr;
}

void SetCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0) Fail("fcntl(FD_CLOEXEC)");
}

}  // namespace

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) Fail("fcntl(O_NONBLOCK)");
}

void SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    Fail("setsockopt(TCP_NODELAY)");
  }
}

int ListenTcp(const std::string& host, uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("socket");
  try {
    SetCloexec(fd);
    const int one = 1;
    if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
      Fail("setsockopt(SO_REUSEADDR)");
    }
    sockaddr_in addr = MakeAddr(host, port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) Fail("bind");
    if (::listen(fd, backlog) < 0) Fail("listen");
    SetNonBlocking(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) Fail("getsockname");
  return ntohs(addr.sin_port);
}

int ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("socket");
  try {
    SetCloexec(fd);
    sockaddr_in addr = MakeAddr(host, port);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) Fail("connect");
    SetNoDelay(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  return fd;
}

void WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("write");
    }
    off += static_cast<size_t>(n);
  }
}

bool ReadExact(int fd, size_t n, std::string& out) {
  const size_t start = out.size();
  out.resize(start + n);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out.data() + start + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      out.resize(start);
      Fail("read");
    }
    if (r == 0) {
      out.resize(start);
      if (got == 0) return false;  // clean EOF between frames
      throw NetError("peer closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

void WakePipe::Open() {
  int fds[2];
  if (::pipe(fds) < 0) Fail("pipe");
  read_fd = fds[0];
  write_fd = fds[1];
  SetNonBlocking(read_fd);
  SetNonBlocking(write_fd);
  SetCloexec(read_fd);
  SetCloexec(write_fd);
}

void WakePipe::Close() {
  if (read_fd >= 0) ::close(read_fd);
  if (write_fd >= 0) ::close(write_fd);
  read_fd = write_fd = -1;
}

void WakePipe::Notify() const {
  if (write_fd < 0) return;
  const char byte = 1;
  // Best effort: EAGAIN means a wake-up is already pending, which is all we
  // need. Must stay async-signal-safe (no locks, no allocation).
  [[maybe_unused]] const ssize_t rc = ::write(write_fd, &byte, 1);
}

void WakePipe::DrainPending() const {
  char buf[64];
  while (::read(read_fd, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace qc::server
