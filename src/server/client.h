// QcClient — a small blocking client for the qcached wire protocol
// (docs/SERVING.md). Used by the end-to-end test suites, the wire-latency
// bench, and `qcsh --connect`.
//
// One client = one connection = one server session: prepared statement ids
// returned by Prepare() are scoped to this connection. Calls are
// synchronous (one outstanding request); protocol-level errors surface as
// RpcError with the server's typed ErrorCode, transport failures as
// NetError.
//
// @thread_safety Not thread-safe: one QcClient per thread (the protocol
// itself supports pipelining via request_id, but this client does not).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "server/net.h"
#include "server/protocol.h"
#include "sql/result.h"

namespace qc::server {

/// A typed error frame (ERROR or BUSY) returned by the server.
class RpcError : public Error {
 public:
  RpcError(ErrorCode code, const std::string& message)
      : Error(std::string("rpc error [") + ErrorCodeName(code) + "]: " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }
  bool IsBusy() const { return code_ == ErrorCode::kBusy; }
  bool IsDraining() const { return code_ == ErrorCode::kDraining; }

 private:
  ErrorCode code_;
};

class QcClient {
 public:
  QcClient() = default;
  ~QcClient() { Close(); }

  QcClient(const QcClient&) = delete;
  QcClient& operator=(const QcClient&) = delete;
  QcClient(QcClient&& other) noexcept;
  QcClient& operator=(QcClient&& other) noexcept;

  /// Connect and perform the HELLO handshake. Throws NetError / RpcError.
  void Connect(const std::string& host, uint16_t port);

  bool connected() const { return fd_ >= 0; }
  const std::string& server_banner() const { return banner_; }

  struct QueryResult {
    sql::ResultSet result;
    bool cache_hit = false;
  };

  /// Dynamic SELECT over the wire (QUERY frame -> RESULT_SET).
  QueryResult Query(const std::string& sql, const std::vector<Value>& params = {});

  /// Dynamic DML over the wire (QUERY frame -> DML_OK). Returns the
  /// affected row count.
  uint64_t Dml(const std::string& sql, const std::vector<Value>& params = {});

  struct PreparedHandle {
    uint32_t id = 0;
    uint16_t param_count = 0;
  };

  /// Register a statement in this connection's session.
  PreparedHandle Prepare(const std::string& sql);

  /// Execute a prepared statement by id.
  QueryResult Execute(uint32_t stmt_id, const std::vector<Value>& params = {});

  /// Deallocate a prepared statement.
  void CloseStmt(uint32_t stmt_id);

  struct SeqQueryResult {
    sql::ResultSet result;
    bool cache_hit = false;
    /// The server's committed CDC sequence loaded *before* the read: the
    /// result reflects every update with seq <= observed_seq. A remote fill
    /// must carry this into its sequence-guarded admission
    /// (docs/CLUSTER.md, "Sequence-guarded admission").
    uint64_t observed_seq = 0;
  };

  /// SELECT over the wire with CDC sequence observation (QUERY_SEQ frame ->
  /// RESULT_SET_SEQ). SELECT-only: the server refuses DML on this opcode.
  SeqQueryResult QuerySeq(const std::string& sql, const std::vector<Value>& params = {});

  /// Join this connection to the server's CDC invalidation stream
  /// (SUBSCRIBE -> SUBSCRIBED). Returns the server's current committed
  /// sequence; if it exceeds `last_seen_seq` the caller missed records and
  /// must treat the gap as a flush (docs/CLUSTER.md). After subscribing the
  /// server pushes CDC_EVENT frames; consume them with ReadCdcEvent — do
  /// not interleave other calls on a subscribed connection (a pushed frame
  /// would be mistaken for the response).
  uint64_t SubscribeCdc(uint64_t last_seen_seq = 0);

  /// Block until the next pushed CDC_EVENT frame, a timeout (nullopt), or
  /// disconnection (NetError). `timeout_ms` < 0 waits indefinitely.
  std::optional<CdcRecord> ReadCdcEvent(int timeout_ms = -1);

  /// Full counter dump. u64 counters are widened to double (exact up to
  /// 2^53, far beyond any counter in practice).
  std::map<std::string, double> Stats();

  void Ping();

  /// Ask the server to drain. When `wait_for_close` is set, block until
  /// the server finishes draining and closes this connection.
  void Drain(bool wait_for_close = true);

  void Close();

  /// Escape hatch for protocol tests: send a raw frame and return the next
  /// frame's header + payload.
  std::pair<FrameHeader, std::string> RoundTrip(Opcode opcode, std::string_view payload,
                                                uint8_t version = kProtocolVersion,
                                                uint16_t flags = 0);

 private:
  std::pair<FrameHeader, std::string> ReadFrame();
  /// Send `opcode` and read the response; throws RpcError on ERROR/BUSY,
  /// ProtocolError when the response opcode differs from `expect`.
  std::string Call(Opcode opcode, std::string_view payload, Opcode expect);

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  std::string banner_;
};

}  // namespace qc::server
