#include "server/protocol.h"

#include <algorithm>
#include <cstring>

namespace qc::server {

namespace {

// Value type tags on the wire (spec: docs/SERVING.md "Values").
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

}  // namespace

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHello: return "HELLO";
    case Opcode::kQuery: return "QUERY";
    case Opcode::kPrepare: return "PREPARE";
    case Opcode::kExecute: return "EXECUTE";
    case Opcode::kStats: return "STATS";
    case Opcode::kDrain: return "DRAIN";
    case Opcode::kPing: return "PING";
    case Opcode::kCloseStmt: return "CLOSE_STMT";
    case Opcode::kSubscribe: return "SUBSCRIBE";
    case Opcode::kQuerySeq: return "QUERY_SEQ";
    case Opcode::kHelloOk: return "HELLO_OK";
    case Opcode::kResultSet: return "RESULT_SET";
    case Opcode::kDmlOk: return "DML_OK";
    case Opcode::kPrepared: return "PREPARED";
    case Opcode::kStatsResult: return "STATS_RESULT";
    case Opcode::kDrainAck: return "DRAIN_ACK";
    case Opcode::kPong: return "PONG";
    case Opcode::kStmtClosed: return "STMT_CLOSED";
    case Opcode::kSubscribed: return "SUBSCRIBED";
    case Opcode::kCdcEvent: return "CDC_EVENT";
    case Opcode::kResultSetSeq: return "RESULT_SET_SEQ";
    case Opcode::kBusy: return "BUSY";
    case Opcode::kError: return "ERROR";
  }
  return "UNKNOWN";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse: return "PARSE";
    case ErrorCode::kBind: return "BIND";
    case ErrorCode::kUnknownStatement: return "UNKNOWN_STATEMENT";
    case ErrorCode::kBadParams: return "BAD_PARAMS";
    case ErrorCode::kMalformedFrame: return "MALFORMED_FRAME";
    case ErrorCode::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case ErrorCode::kDraining: return "DRAINING";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kTooLarge: return "TOO_LARGE";
    case ErrorCode::kStorage: return "STORAGE";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

void EncodeFrameHeader(const FrameHeader& header, std::string& out) {
  const auto put32 = [&out](uint32_t v) {
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
    out.push_back(static_cast<char>((v >> 16) & 0xff));
    out.push_back(static_cast<char>((v >> 24) & 0xff));
  };
  put32(header.length);
  out.push_back(static_cast<char>(header.version));
  out.push_back(static_cast<char>(header.opcode));
  out.push_back(static_cast<char>(header.flags & 0xff));
  out.push_back(static_cast<char>((header.flags >> 8) & 0xff));
  put32(header.request_id);
}

FrameHeader DecodeFrameHeader(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderSize) {
    throw ProtocolError("frame header truncated");
  }
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const auto get32 = [p](size_t at) {
    return static_cast<uint32_t>(p[at]) | (static_cast<uint32_t>(p[at + 1]) << 8) |
           (static_cast<uint32_t>(p[at + 2]) << 16) | (static_cast<uint32_t>(p[at + 3]) << 24);
  };
  FrameHeader h;
  h.length = get32(0);
  h.version = p[4];
  h.opcode = static_cast<Opcode>(p[5]);
  h.flags = static_cast<uint16_t>(p[6] | (p[7] << 8));
  h.request_id = get32(8);
  return h;
}

void WireWriter::U16(uint16_t v) {
  out_.push_back(static_cast<char>(v & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void WireWriter::U32(uint32_t v) {
  U16(static_cast<uint16_t>(v & 0xffff));
  U16(static_cast<uint16_t>(v >> 16));
}

void WireWriter::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xffffffffu));
  U32(static_cast<uint32_t>(v >> 32));
}

void WireWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s.data(), s.size());
}

void WireWriter::Val(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      U8(kTagNull);
      break;
    case ValueType::kInt:
      U8(kTagInt);
      I64(v.as_int());
      break;
    case ValueType::kDouble:
      U8(kTagDouble);
      F64(v.as_double());
      break;
    case ValueType::kString:
      U8(kTagString);
      Str(v.as_string());
      break;
  }
}

void WireWriter::Params(const std::vector<Value>& params) {
  if (params.size() > 0xffff) throw ProtocolError("too many parameters");
  U16(static_cast<uint16_t>(params.size()));
  for (const Value& p : params) Val(p);
}

std::string_view WireReader::Take(size_t n) {
  if (bytes_.size() - pos_ < n) throw ProtocolError("payload truncated");
  std::string_view out = bytes_.substr(pos_, n);
  pos_ += n;
  return out;
}

uint8_t WireReader::U8() { return static_cast<uint8_t>(Take(1)[0]); }

uint16_t WireReader::U16() {
  const auto* p = reinterpret_cast<const uint8_t*>(Take(2).data());
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t WireReader::U32() {
  const auto* p = reinterpret_cast<const uint8_t*>(Take(4).data());
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t WireReader::U64() {
  const uint64_t lo = U32();
  const uint64_t hi = U32();
  return lo | (hi << 32);
}

double WireReader::F64() {
  const uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::Str() {
  const uint32_t len = U32();
  return std::string(Take(len));
}

Value WireReader::Val() {
  switch (U8()) {
    case kTagNull: return Value::Null();
    case kTagInt: return Value(I64());
    case kTagDouble: return Value(F64());
    case kTagString: return Value(Str());
    default: throw ProtocolError("unknown value type tag");
  }
}

std::vector<Value> WireReader::Params() {
  const uint16_t n = U16();
  std::vector<Value> params;
  params.reserve(n);
  for (uint16_t i = 0; i < n; ++i) params.push_back(Val());
  return params;
}

void WireReader::ExpectEnd() const {
  if (pos_ != bytes_.size()) throw ProtocolError("trailing bytes in payload");
}

void EncodeResultSet(const sql::ResultSet& result, bool cache_hit, WireWriter& w) {
  if (result.columns().size() > 0xffff) throw ProtocolError("too many result columns");
  w.U8(cache_hit ? 1 : 0);
  w.U16(static_cast<uint16_t>(result.columns().size()));
  for (const std::string& name : result.columns()) w.Str(name);
  w.U32(static_cast<uint32_t>(result.row_count()));
  for (const auto& row : result.rows()) {
    for (const Value& cell : row) w.Val(cell);
  }
}

DecodedResult DecodeResultSet(WireReader& r) {
  DecodedResult out;
  out.cache_hit = r.U8() != 0;
  const uint16_t ncols = r.U16();
  std::vector<std::string> columns;
  columns.reserve(ncols);
  for (uint16_t c = 0; c < ncols; ++c) columns.push_back(r.Str());
  out.result = sql::ResultSet(std::move(columns));
  const uint32_t nrows = r.U32();
  for (uint32_t i = 0; i < nrows; ++i) {
    storage::Row row;
    row.reserve(ncols);
    for (uint16_t c = 0; c < ncols; ++c) row.push_back(r.Val());
    out.result.AddRow(std::move(row));
  }
  return out;
}

void EncodeStats(const std::vector<StatsEntry>& entries, WireWriter& w) {
  w.U32(static_cast<uint32_t>(entries.size()));
  for (const StatsEntry& e : entries) {
    w.Str(e.key);
    w.U8(e.kind);
    if (e.kind == 0) {
      w.U64(e.u64);
    } else {
      w.F64(e.f64);
    }
  }
}

std::vector<StatsEntry> DecodeStats(WireReader& r) {
  const uint32_t n = r.U32();
  std::vector<StatsEntry> entries;
  entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    StatsEntry e;
    e.key = r.Str();
    e.kind = r.U8();
    if (e.kind == 0) {
      e.u64 = r.U64();
    } else if (e.kind == 1) {
      e.f64 = r.F64();
    } else {
      throw ProtocolError("unknown stats entry kind");
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

namespace {

// Event-kind tags on the wire (CDC_EVENT; spec: docs/CLUSTER.md).
constexpr uint8_t kKindUpdate = 0;
constexpr uint8_t kKindInsert = 1;
constexpr uint8_t kKindDelete = 2;

uint8_t KindTag(storage::UpdateEvent::Kind kind) {
  switch (kind) {
    case storage::UpdateEvent::Kind::kUpdate: return kKindUpdate;
    case storage::UpdateEvent::Kind::kInsert: return kKindInsert;
    case storage::UpdateEvent::Kind::kDelete: return kKindDelete;
  }
  throw ProtocolError("unrepresentable event kind");
}

storage::UpdateEvent::Kind KindFromTag(uint8_t tag) {
  switch (tag) {
    case kKindUpdate: return storage::UpdateEvent::Kind::kUpdate;
    case kKindInsert: return storage::UpdateEvent::Kind::kInsert;
    case kKindDelete: return storage::UpdateEvent::Kind::kDelete;
    default: throw ProtocolError("unknown CDC event kind tag");
  }
}

}  // namespace

void EncodeCdcRecord(const CdcRecord& record, WireWriter& w) {
  w.U64(record.seq);
  w.Str(record.table);
  w.U32(static_cast<uint32_t>(record.events.size()));
  for (const storage::UpdateEvent& event : record.events) {
    w.U8(KindTag(event.kind));
    w.U64(event.row);
    if (event.changes.size() > 0xffff) throw ProtocolError("too many attribute changes");
    w.U16(static_cast<uint16_t>(event.changes.size()));
    for (const storage::AttributeChange& change : event.changes) {
      w.U32(change.column);
      w.Val(change.old_value);
      w.Val(change.new_value);
    }
    w.U32(static_cast<uint32_t>(event.before.size()));
    for (const Value& v : event.before) w.Val(v);
    w.U32(static_cast<uint32_t>(event.after.size()));
    for (const Value& v : event.after) w.Val(v);
  }
}

CdcRecord DecodeCdcRecord(WireReader& r) {
  CdcRecord record;
  record.seq = r.U64();
  record.table = r.Str();
  const uint32_t nevents = r.U32();
  record.events.reserve(std::min<uint32_t>(nevents, 4096));
  for (uint32_t i = 0; i < nevents; ++i) {
    storage::UpdateEvent event;
    event.kind = KindFromTag(r.U8());
    event.table = record.table;
    event.row = r.U64();
    const uint16_t nchanges = r.U16();
    event.changes.reserve(nchanges);
    for (uint16_t c = 0; c < nchanges; ++c) {
      storage::AttributeChange change;
      change.column = r.U32();
      change.old_value = r.Val();
      change.new_value = r.Val();
      event.changes.push_back(std::move(change));
    }
    const uint32_t nbefore = r.U32();
    event.before.reserve(std::min<uint32_t>(nbefore, 4096));
    for (uint32_t c = 0; c < nbefore; ++c) event.before.push_back(r.Val());
    const uint32_t nafter = r.U32();
    event.after.reserve(std::min<uint32_t>(nafter, 4096));
    for (uint32_t c = 0; c < nafter; ++c) event.after.push_back(r.Val());
    record.events.push_back(std::move(event));
  }
  return record;
}

void EncodeError(ErrorCode code, std::string_view message, WireWriter& w) {
  w.U16(static_cast<uint16_t>(code));
  w.Str(message);
}

DecodedError DecodeError(WireReader& r) {
  DecodedError e;
  e.code = static_cast<ErrorCode>(r.U16());
  e.message = r.Str();
  return e;
}

std::string BuildFrame(Opcode opcode, uint32_t request_id, std::string_view payload,
                       uint8_t version) {
  FrameHeader h;
  h.length = static_cast<uint32_t>(payload.size());
  h.version = version;
  h.opcode = opcode;
  h.request_id = request_id;
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  EncodeFrameHeader(h, out);
  out.append(payload.data(), payload.size());
  return out;
}

}  // namespace qc::server
