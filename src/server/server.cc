#include "server/server.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/strings.h"
#include "sql/evaluator.h"
#include "sql/vectorized.h"

namespace qc::server {

namespace {

/// First SQL keyword, upper-cased — routes QUERY frames to the read or the
/// DML path (the same dispatch examples/qcsh.cpp uses).
std::string FirstKeyword(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r')) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() && std::isalpha(static_cast<unsigned char>(sql[j]))) ++j;
  return ToUpper(std::string_view(sql).substr(i, j - i));
}

}  // namespace

QcServer::QcServer(middleware::CachedQueryEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_in_flight == 0) config_.max_in_flight = 1;
}

QcServer::~QcServer() { Stop(); }

void QcServer::Start() {
  if (started_.exchange(true)) throw NetError("server already started");
  if (config_.cdc_publish) {
    // Storage-node mode: publish every committed batch on the CDC stream.
    // Subscribed *before* the listener opens, so no DML a client could
    // observe predates the stream. The engine's own subscription was
    // installed at engine construction, i.e. ahead of this one, and the
    // database notifies observers in subscription order — so by the time a
    // record is fanned out (and cdc_committed_ advances past it), its
    // local invalidations have run. QUERY_SEQ leans on that ordering.
    cdc_subscription_ =
        engine_.database().SubscribeBatch([this](const storage::UpdateBatch& batch) {
          CdcRecord record;
          record.table = std::string(batch.table);
          record.events.assign(batch.events, batch.events + batch.count);
          std::lock_guard<std::mutex> lock(cdc_mutex_);
          record.seq = ++cdc_next_seq_;
          FanOutLocked(record);
          cdc_committed_.store(record.seq, std::memory_order_release);
        });
  }
  listen_fd_ = ListenTcp(config_.host, config_.port, config_.listen_backlog);
  port_ = LocalPort(listen_fd_);
  wake_.Open();
  workers_.reserve(config_.worker_threads);
  for (size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
}

void QcServer::RequestDrain() {
  // Async-signal-safe: one atomic store + one pipe write.
  drain_requested_.store(true, std::memory_order_relaxed);
  wake_.Notify();
}

void QcServer::Wait() {
  std::lock_guard<std::mutex> guard(lifecycle_mutex_);
  if (joined_ || !started_.load()) return;
  joined_ = true;
  if (io_thread_.joinable()) io_thread_.join();
  {
    std::lock_guard<std::mutex> qlock(queue_mutex_);
    queue_stopped_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (cdc_subscription_) {
    engine_.database().Unsubscribe(cdc_subscription_);
    cdc_subscription_ = {};
  }
  wake_.Close();
}

void QcServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  wake_.Notify();
  Wait();
}

ServerStatsSnapshot QcServer::stats() const {
  ServerStatsSnapshot s;
  s.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.busy_rejections = busy_rejections_.load(std::memory_order_relaxed);
  s.drain_rejections = drain_rejections_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.slow_consumer_closes = slow_consumer_closes_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  s.draining = draining_.load(std::memory_order_relaxed) ? 1 : 0;
  s.cdc_events_sent = cdc_events_sent_.load(std::memory_order_relaxed);
  s.cdc_events_dropped = cdc_events_dropped_.load(std::memory_order_relaxed);
  s.cdc_committed_seq = cdc_committed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cdc_mutex_);
    s.cdc_subscribers = cdc_subscribers_.size();
  }
  return s;
}

// --- Event loop ------------------------------------------------------------

void QcServer::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<ConnPtr> order;  // conns_ entries in fds order (from index 2)
  while (true) {
    fds.clear();
    order.clear();
    fds.push_back({wake_.read_fd, POLLIN, 0});
    const bool listening = listen_fd_ >= 0 && !draining_.load(std::memory_order_relaxed);
    fds.push_back({listening ? listen_fd_ : -1, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (!conn->outq.empty()) events |= POLLOUT;
      }
      fds.push_back({fd, events, 0});
      order.push_back(conn);
    }

    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) break;

    wake_.DrainPending();
    if (stop_.load(std::memory_order_relaxed)) break;

    if (drain_requested_.load(std::memory_order_relaxed) &&
        !draining_.load(std::memory_order_relaxed)) {
      draining_.store(true, std::memory_order_relaxed);
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
    }

    if (listening && (fds[1].revents & POLLIN)) AcceptPending();

    std::vector<ConnPtr> to_close;
    for (size_t i = 0; i < order.size(); ++i) {
      const ConnPtr& conn = order[i];
      const short revents = fds[i + 2].revents;
      bool ok = true;
      {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->overflowed) {
          slow_consumer_closes_.fetch_add(1, std::memory_order_relaxed);
          ok = false;
        }
      }
      if (ok && (revents & (POLLERR | POLLHUP | POLLNVAL))) ok = false;
      if (ok && (revents & POLLIN)) {
        try {
          ReadInput(conn);
        } catch (const Error&) {
          ok = false;
        }
      }
      if (ok) {
        try {
          FlushWrites(conn);
        } catch (const Error&) {
          ok = false;
        }
      }
      if (ok && conn->close_after_flush) {
        std::lock_guard<std::mutex> lock(conn->write_mutex);
        if (conn->outq.empty()) ok = false;  // error response flushed; close
      }
      if (!ok) to_close.push_back(conn);
    }
    for (const ConnPtr& conn : to_close) CloseConn(conn);

    if (draining_.load(std::memory_order_relaxed) &&
        in_flight_.load(std::memory_order_relaxed) == 0 && AllQueuesIdle()) {
      // Drain complete: every accepted request answered and flushed. Flush
      // the transaction log so the on-disk state is consistent up to the
      // last drained operation (spill files themselves are written at Put
      // time and are already durable — docs/PERSISTENCE.md).
      engine_.cache().FlushLog();
      break;
    }
  }

  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    conn->dead = true;
    ::close(conn->fd);
    conn->fd = -1;
  }
  connections_open_.store(0, std::memory_order_relaxed);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void QcServer::AcceptPending() {
  while (listen_fd_ >= 0) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient accept failure; keep serving existing conns
    }
    try {
      SetNonBlocking(fd);
      SetNoDelay(fd);
    } catch (const Error&) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QcServer::ReadInput(const ConnPtr& conn) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      throw NetError("read failed");
    }
    if (n == 0) throw NetError("peer closed");
    conn->inbuf.append(buf, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  ParseFrames(conn);
}

void QcServer::ParseFrames(const ConnPtr& conn) {
  size_t pos = 0;
  while (!conn->close_after_flush && conn->inbuf.size() - pos >= kFrameHeaderSize) {
    const FrameHeader header =
        DecodeFrameHeader(std::string_view(conn->inbuf).substr(pos, kFrameHeaderSize));
    if (header.length > config_.max_frame_bytes) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendError(conn, header, ErrorCode::kTooLarge, "frame payload exceeds maximum");
      conn->close_after_flush = true;
      break;
    }
    if (conn->inbuf.size() - pos < kFrameHeaderSize + header.length) break;
    std::string payload = conn->inbuf.substr(pos + kFrameHeaderSize, header.length);
    pos += kFrameHeaderSize + header.length;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    DispatchFrame(conn, header, std::move(payload));
  }
  conn->inbuf.erase(0, pos);
}

void QcServer::DispatchFrame(const ConnPtr& conn, const FrameHeader& header,
                             std::string payload) {
  const auto protocol_error = [&](ErrorCode code, std::string_view message) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(conn, header, code, message);
    conn->close_after_flush = true;
  };

  if (header.flags != 0) {
    protocol_error(ErrorCode::kMalformedFrame, "nonzero flags");
    return;
  }

  if (!conn->hello_done) {
    if (header.opcode != Opcode::kHello) {
      protocol_error(ErrorCode::kMalformedFrame, "expected HELLO");
      return;
    }
    try {
      WireReader r(payload);
      const uint32_t magic = r.U32();
      const uint8_t min_version = r.U8();
      const uint8_t max_version = r.U8();
      r.ExpectEnd();
      if (magic != kProtocolMagic) {
        protocol_error(ErrorCode::kMalformedFrame, "bad protocol magic");
        return;
      }
      if (kProtocolVersion < min_version || kProtocolVersion > max_version) {
        protocol_error(ErrorCode::kUnsupportedVersion, "server speaks only QCP/1");
        return;
      }
    } catch (const ProtocolError& e) {
      protocol_error(ErrorCode::kMalformedFrame, e.what());
      return;
    }
    conn->hello_done = true;
    WireWriter w;
    w.U8(kProtocolVersion);
    w.Str("qcached/1");
    Enqueue(conn, BuildFrame(Opcode::kHelloOk, header.request_id, w.bytes()));
    return;
  }

  if (header.version != kProtocolVersion) {
    protocol_error(ErrorCode::kMalformedFrame, "version changed after HELLO");
    return;
  }

  switch (header.opcode) {
    case Opcode::kPing:
      Enqueue(conn, BuildFrame(Opcode::kPong, header.request_id, {}));
      return;
    case Opcode::kStats: {
      WireWriter w;
      EncodeStats(BuildStatsEntries(), w);
      Enqueue(conn, BuildFrame(Opcode::kStatsResult, header.request_id, w.bytes()));
      return;
    }
    case Opcode::kDrain:
      Enqueue(conn, BuildFrame(Opcode::kDrainAck, header.request_id, {}));
      RequestDrain();
      return;
    case Opcode::kSubscribe:
      // Inline on the I/O thread like the other control frames: it only
      // touches the subscriber list, never table data.
      if (draining_.load(std::memory_order_relaxed)) {
        drain_rejections_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, header, ErrorCode::kDraining, "server is draining");
        return;
      }
      try {
        HandleSubscribe(conn, header, payload);
      } catch (const ProtocolError& e) {
        protocol_error(ErrorCode::kMalformedFrame, e.what());
      }
      return;
    case Opcode::kQuery:
    case Opcode::kQuerySeq:
    case Opcode::kPrepare:
    case Opcode::kExecute:
    case Opcode::kCloseStmt: {
      if (draining_.load(std::memory_order_relaxed)) {
        drain_rejections_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, header, ErrorCode::kDraining, "server is draining");
        return;
      }
      if (in_flight_.load(std::memory_order_relaxed) >= config_.max_in_flight) {
        busy_rejections_.fetch_add(1, std::memory_order_relaxed);
        SendError(conn, header, ErrorCode::kBusy, "in-flight cap reached; retry",
                  Opcode::kBusy);
        return;
      }
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        queue_.push_back(WorkItem{conn, header, std::move(payload)});
      }
      queue_cv_.notify_one();
      return;
    }
    default:
      protocol_error(ErrorCode::kMalformedFrame, "unknown opcode");
      return;
  }
}

void QcServer::FlushWrites(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  while (!conn->outq.empty()) {
    const std::string& front = conn->outq.front();
    const ssize_t n = ::write(conn->fd, front.data() + conn->front_offset,
                              front.size() - conn->front_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      throw NetError("write failed");
    }
    conn->front_offset += static_cast<size_t>(n);
    if (conn->front_offset == front.size()) {
      conn->outq_bytes -= front.size();
      conn->outq.pop_front();
      conn->front_offset = 0;
    }
  }
}

void QcServer::CloseConn(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->dead) return;
    conn->dead = true;
    ::close(conn->fd);
  }
  conns_.erase(conn->fd);
  conn->fd = -1;
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
}

bool QcServer::AllQueuesIdle() {
  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (!conn->outq.empty()) return false;
  }
  return true;
}

bool QcServer::Enqueue(const ConnPtr& conn, std::string frame) {
  bool queued = false;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (conn->dead || conn->overflowed) return false;
    if (conn->outq_bytes + frame.size() > config_.max_write_queue_bytes) {
      conn->overflowed = true;  // I/O thread disconnects on its next pass
    } else {
      conn->outq_bytes += frame.size();
      conn->outq.push_back(std::move(frame));
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      queued = true;
    }
  }
  wake_.Notify();
  return queued;
}

// --- CDC stream ------------------------------------------------------------

void QcServer::HandleSubscribe(const ConnPtr& conn, const FrameHeader& header,
                               const std::string& payload) {
  WireReader r(payload);
  const uint64_t last_seen = r.U64();
  (void)last_seen;  // reconciliation is the subscriber's job (gap => flush)
  r.ExpectEnd();
  uint64_t current;
  {
    std::lock_guard<std::mutex> lock(cdc_mutex_);
    bool present = false;
    for (const ConnPtr& c : cdc_subscribers_) present = present || c == conn;
    if (!present) cdc_subscribers_.push_back(conn);
    // Read under cdc_mutex_: every record <= current was fanned out before
    // this registration (the subscriber reconciles against last_seen);
    // every later record will be delivered to it.
    current = cdc_committed_.load(std::memory_order_acquire);
  }
  WireWriter w;
  w.U64(current);
  Enqueue(conn, BuildFrame(Opcode::kSubscribed, header.request_id, w.bytes()));
}

void QcServer::FanOutLocked(const CdcRecord& record) {
  WireWriter w;
  EncodeCdcRecord(record, w);
  // Server-push: request_id 0, never a reply to anything.
  const std::string frame = BuildFrame(Opcode::kCdcEvent, 0, w.bytes());
  size_t alive = 0;
  for (ConnPtr& conn : cdc_subscribers_) {
    bool dead;
    {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      dead = conn->dead;
    }
    if (dead) continue;  // pruned below
    if (Enqueue(conn, frame)) {
      cdc_events_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      cdc_events_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    cdc_subscribers_[alive++] = conn;
  }
  cdc_subscribers_.resize(alive);
}

void QcServer::PublishCdc(const CdcRecord& record) {
  std::lock_guard<std::mutex> lock(cdc_mutex_);
  FanOutLocked(record);
  // Relay mode keeps the upstream's numbering; fetch-max in case records
  // are relayed from several appliers.
  if (cdc_committed_.load(std::memory_order_relaxed) < record.seq) {
    cdc_committed_.store(record.seq, std::memory_order_release);
  }
}

void QcServer::SendError(const ConnPtr& conn, const FrameHeader& req, ErrorCode code,
                         std::string_view message, Opcode opcode) {
  WireWriter w;
  EncodeError(code, message, w);
  Enqueue(conn, BuildFrame(opcode, req.request_id, w.bytes()));
}

// --- Workers ---------------------------------------------------------------

void QcServer::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return queue_stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only when stopped
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    HandleWorkItem(item);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    wake_.Notify();  // re-evaluate drain completion / pending writes
  }
}

void QcServer::HandleWorkItem(const WorkItem& item) {
  try {
    switch (item.header.opcode) {
      case Opcode::kQuery: HandleQuery(item); return;
      case Opcode::kQuerySeq: HandleQuerySeq(item); return;
      case Opcode::kPrepare: HandlePrepare(item); return;
      case Opcode::kExecute: HandleExecute(item); return;
      case Opcode::kCloseStmt: HandleCloseStmt(item); return;
      default:
        SendError(item.conn, item.header, ErrorCode::kInternal, "bad dispatch");
        return;
    }
  } catch (const ProtocolError& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    SendError(item.conn, item.header, ErrorCode::kMalformedFrame, e.what());
  } catch (const ParseError& e) {
    SendError(item.conn, item.header, ErrorCode::kParse, e.what());
  } catch (const BindError& e) {
    SendError(item.conn, item.header, ErrorCode::kBind, e.what());
  } catch (const StorageError& e) {
    SendError(item.conn, item.header, ErrorCode::kStorage, e.what());
  } catch (const std::exception& e) {
    SendError(item.conn, item.header, ErrorCode::kInternal, e.what());
  }
}

void QcServer::HandleQuery(const WorkItem& item) {
  WireReader r(item.payload);
  const std::string sql = r.Str();
  const std::vector<Value> params = r.Params();
  r.ExpectEnd();
  if (FirstKeyword(sql) == "SELECT") {
    // Ring routing (cache nodes): a fingerprint another node owns is
    // served by forwarding, so each cached result lives on exactly one
    // node. nullopt = this node owns it (or no router installed).
    middleware::CachedQueryEngine::ExecuteResult outcome;
    std::optional<middleware::CachedQueryEngine::ExecuteResult> routed;
    if (select_router_) routed = select_router_(sql, params);
    outcome = routed ? std::move(*routed) : engine_.ExecuteSql(sql, params);
    WireWriter w;
    EncodeResultSet(*outcome.result, outcome.cache_hit, w);
    Enqueue(item.conn, BuildFrame(Opcode::kResultSet, item.header.request_id, w.bytes()));
  } else {
    // Cache nodes never mutate locally: DML goes upstream to the storage
    // node, and the resulting invalidations come back on the CDC stream.
    const uint64_t affected =
        dml_forwarder_ ? dml_forwarder_(sql, params) : engine_.ExecuteDml(sql, params);
    WireWriter w;
    w.U64(affected);
    Enqueue(item.conn, BuildFrame(Opcode::kDmlOk, item.header.request_id, w.bytes()));
  }
}

void QcServer::HandleQuerySeq(const WorkItem& item) {
  WireReader r(item.payload);
  const std::string sql = r.Str();
  const std::vector<Value> params = r.Params();
  r.ExpectEnd();
  if (FirstKeyword(sql) != "SELECT") {
    SendError(item.conn, item.header, ErrorCode::kParse, "QUERY_SEQ is SELECT-only");
    return;
  }
  // Load the committed sequence *before* the read (which takes its table
  // locks inside ExecuteSql): every update with seq <= observed is then
  // both reflected in the result and already fanned out as a CDC record —
  // the invariant the cache node's sequence-gate admission relies on
  // (docs/CLUSTER.md).
  const uint64_t observed = cdc_committed_.load(std::memory_order_acquire);
  const auto outcome = engine_.ExecuteSql(sql, params);
  WireWriter w;
  w.U64(observed);
  EncodeResultSet(*outcome.result, outcome.cache_hit, w);
  Enqueue(item.conn, BuildFrame(Opcode::kResultSetSeq, item.header.request_id, w.bytes()));
}

void QcServer::HandlePrepare(const WorkItem& item) {
  WireReader r(item.payload);
  const std::string sql = r.Str();
  r.ExpectEnd();
  auto query = engine_.Prepare(sql);
  uint32_t id;
  {
    std::lock_guard<std::mutex> lock(item.conn->stmt_mutex);
    id = item.conn->next_stmt_id++;
    item.conn->stmts.emplace(id, query);
  }
  WireWriter w;
  w.U32(id);
  w.U16(static_cast<uint16_t>(query->param_count()));
  Enqueue(item.conn, BuildFrame(Opcode::kPrepared, item.header.request_id, w.bytes()));
}

void QcServer::HandleExecute(const WorkItem& item) {
  WireReader r(item.payload);
  const uint32_t id = r.U32();
  const std::vector<Value> params = r.Params();
  r.ExpectEnd();
  std::shared_ptr<const sql::BoundQuery> query;
  {
    std::lock_guard<std::mutex> lock(item.conn->stmt_mutex);
    const auto it = item.conn->stmts.find(id);
    if (it != item.conn->stmts.end()) query = it->second;
  }
  if (!query) {
    SendError(item.conn, item.header, ErrorCode::kUnknownStatement,
              "no prepared statement with that id in this session");
    return;
  }
  if (params.size() != query->param_count()) {
    SendError(item.conn, item.header, ErrorCode::kBadParams,
              "statement expects " + std::to_string(query->param_count()) + " parameters, got " +
                  std::to_string(params.size()));
    return;
  }
  const auto outcome = engine_.Execute(query, params);
  WireWriter w;
  EncodeResultSet(*outcome.result, outcome.cache_hit, w);
  Enqueue(item.conn, BuildFrame(Opcode::kResultSet, item.header.request_id, w.bytes()));
}

void QcServer::HandleCloseStmt(const WorkItem& item) {
  WireReader r(item.payload);
  const uint32_t id = r.U32();
  r.ExpectEnd();
  size_t erased;
  {
    std::lock_guard<std::mutex> lock(item.conn->stmt_mutex);
    erased = item.conn->stmts.erase(id);
  }
  if (erased == 0) {
    SendError(item.conn, item.header, ErrorCode::kUnknownStatement,
              "no prepared statement with that id in this session");
    return;
  }
  Enqueue(item.conn, BuildFrame(Opcode::kStmtClosed, item.header.request_id, {}));
}

// --- Stats -----------------------------------------------------------------

std::vector<StatsEntry> QcServer::BuildStatsEntries() {
  std::vector<StatsEntry> entries;
  const auto u64 = [&entries](std::string key, uint64_t value) {
    StatsEntry e;
    e.key = std::move(key);
    e.kind = 0;
    e.u64 = value;
    entries.push_back(std::move(e));
  };
  const auto f64 = [&entries](std::string key, double value) {
    StatsEntry e;
    e.key = std::move(key);
    e.kind = 1;
    e.f64 = value;
    entries.push_back(std::move(e));
  };

  const middleware::QueryEngineStats es = engine_.stats();
  u64("engine.executions", es.executions.load(std::memory_order_relaxed));
  u64("engine.cache_hits", es.cache_hits.load(std::memory_order_relaxed));
  u64("engine.db_executions", es.db_executions.load(std::memory_order_relaxed));
  u64("engine.uncacheable", es.uncacheable.load(std::memory_order_relaxed));
  u64("engine.stale_discards", es.stale_discards.load(std::memory_order_relaxed));
  u64("engine.seq_admit_rejects", es.seq_admit_rejects.load(std::memory_order_relaxed));
  u64("engine.remote_fills", es.remote_fills.load(std::memory_order_relaxed));
  u64("engine.refresh_executions", es.refresh_executions.load(std::memory_order_relaxed));
  u64("engine.recovered_registrations",
      es.recovered_registrations.load(std::memory_order_relaxed));
  u64("engine.recovered_conservative",
      es.recovered_conservative.load(std::memory_order_relaxed));
  u64("engine.recovered_dropped", es.recovered_dropped.load(std::memory_order_relaxed));
  f64("engine.hit_rate", es.HitRate());

  engine_.cache_stats().ForEachCounter(
      [&u64](const char* name, uint64_t value) { u64(std::string("cache.") + name, value); });
  u64("cache.entries", engine_.cache().entry_count());
  u64("cache.memory_bytes", engine_.cache().memory_bytes());
  u64("cache.disk_bytes", engine_.cache().disk_bytes());

  // Vectorized execution mix (process-wide; docs/EXECUTION.md): how many
  // statements ran on the batch engine vs fell back to the tree-walker.
  const sql::VectorizedStats vs = sql::GetVectorizedStats();
  u64("vec.queries_vectorized", vs.queries_vectorized);
  u64("vec.queries_fallback", vs.queries_fallback);
  u64("vec.fallback_join", vs.fallback_join);
  u64("vec.fallback_expression", vs.fallback_expression);
  u64("vec.fallback_shape", vs.fallback_shape);
  u64("vec.fallback_type", vs.fallback_type);
  u64("vec.joins_vectorized", vs.joins_vectorized);
  u64("vec.batches", vs.batches);
  u64("vec.rows_scanned", vs.rows_scanned);
  u64("vec.parallel_scans", vs.parallel_scans);
  u64("vec.conjunct_reorders", vs.conjunct_reorders);

  const sql::RowEngineStats rs = sql::GetRowEngineStats();
  u64("row.join_nested_loop_rows", rs.join_nested_loop_rows);

  const dup::DupStats ds = engine_.dup_stats();
  u64("dup.update_events", ds.update_events);
  u64("dup.update_batches", ds.update_batches);
  u64("dup.invalidations", ds.invalidations);
  u64("dup.predicate_index_probes", ds.predicate_index_probes);
  u64("dup.predicate_index_fallbacks", ds.predicate_index_fallbacks);
  u64("dup.full_flushes", ds.full_flushes);
  u64("dup.row_aware_saves", ds.row_aware_saves);
  u64("dup.tolerated_changes", ds.tolerated_changes);
  u64("dup.refreshes", ds.refreshes);
  u64("dup.registered_queries", ds.registered_queries);
  for (const auto& [source, count] : ds.affected_by_source) {
    u64("dup.affected_by_source." + source, count);
  }

  const ServerStatsSnapshot ss = stats();
  u64("server.connections_accepted", ss.connections_accepted);
  u64("server.connections_open", ss.connections_open);
  u64("server.frames_received", ss.frames_received);
  u64("server.responses_sent", ss.responses_sent);
  u64("server.busy_rejections", ss.busy_rejections);
  u64("server.drain_rejections", ss.drain_rejections);
  u64("server.protocol_errors", ss.protocol_errors);
  u64("server.slow_consumer_closes", ss.slow_consumer_closes);
  u64("server.in_flight", ss.in_flight);
  u64("server.draining", ss.draining);
  u64("server.cdc_events_sent", ss.cdc_events_sent);
  u64("server.cdc_events_dropped", ss.cdc_events_dropped);
  u64("server.cdc_committed_seq", ss.cdc_committed_seq);
  u64("server.cdc_subscribers", ss.cdc_subscribers);

  // Cluster-runtime counters (cdc_events_applied, ring_forwards,
  // lease_invalidations, ...) ride in through the extra-stats hook.
  if (extra_stats_) {
    for (auto& [key, value] : extra_stats_()) u64(std::move(key), value);
  }
  return entries;
}

}  // namespace qc::server
