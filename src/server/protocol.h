// QCP/1 — the qcached wire protocol (docs/SERVING.md is the normative
// spec; this header is its implementation and must stay byte-for-byte in
// agreement).
//
// Every frame is a fixed 12-byte little-endian header followed by `length`
// payload bytes:
//
//   offset  size  field
//   0       4     length      payload bytes after the header (u32)
//   4       1     version     protocol version, currently 1
//   5       1     opcode      Opcode below
//   6       2     flags       reserved, must be 0
//   8       4     request_id  client-chosen, echoed verbatim in responses
//
// A connection starts with a HELLO / HELLO_OK exchange that carries the
// protocol magic and negotiates the version; every later frame repeats the
// negotiated version in its header. Scalar encodings are unconditionally
// little-endian; strings are u32-length-prefixed bytes (no terminator).
//
// @thread_safety Free functions only; everything here is pure and
// reentrant. WireReader/WireWriter instances are not shared across threads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "common/value.h"
#include "sql/result.h"
#include "storage/events.h"

namespace qc::server {

/// Protocol magic carried in the HELLO payload: "QCP1" read as a
/// little-endian u32.
inline constexpr uint32_t kProtocolMagic = 0x31504351;  // 'Q''C''P''1'

/// The one protocol version this build speaks.
inline constexpr uint8_t kProtocolVersion = 1;

/// Fixed frame header size in bytes.
inline constexpr size_t kFrameHeaderSize = 12;

/// Default ceiling on a single frame's payload; both sides refuse larger
/// frames with kErrTooLarge instead of buffering them.
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u * 1024 * 1024;

/// Frame opcodes. Requests have the high bit clear, responses set.
enum class Opcode : uint8_t {
  // Requests.
  kHello = 0x01,      // magic + supported version range
  kQuery = 0x02,      // dynamic SQL (SELECT or DML) + params
  kPrepare = 0x03,    // SQL text -> session statement id
  kExecute = 0x04,    // statement id + params
  kStats = 0x05,      // engine/cache/DUP/server counters
  kDrain = 0x06,      // begin graceful drain (admin)
  kPing = 0x07,       // liveness probe
  kCloseStmt = 0x08,  // deallocate a session statement id
  kSubscribe = 0x09,  // join the CDC invalidation stream (docs/CLUSTER.md)
  kQuerySeq = 0x0A,   // SELECT that also reports the observed CDC sequence

  // Responses.
  kHelloOk = 0x81,     // negotiated version + server banner
  kResultSet = 0x82,   // SELECT result (QUERY / EXECUTE)
  kDmlOk = 0x83,       // DML result: affected row count
  kPrepared = 0x84,    // statement id + parameter count
  kStatsResult = 0x85, // counter list
  kDrainAck = 0x86,    // drain accepted
  kPong = 0x87,        // PING response
  kStmtClosed = 0x88,  // CLOSE_STMT response
  kSubscribed = 0x89,  // SUBSCRIBE accepted: current committed sequence
  kCdcEvent = 0x8A,    // server push: one serialized CDC record (request_id 0)
  kResultSetSeq = 0x8B,// QUERY_SEQ result: u64 observed seq + RESULT_SET payload
  kBusy = 0xBE,        // load shed: retry later (same payload shape as kError)
  kError = 0xEF,       // typed error
};

const char* OpcodeName(Opcode op);

/// Typed error codes carried by kError / kBusy payloads.
enum class ErrorCode : uint16_t {
  kParse = 1,               // SQL failed to parse
  kBind = 2,                // SQL failed to bind (unknown table/column, ...)
  kUnknownStatement = 3,    // EXECUTE/CLOSE_STMT with an unknown statement id
  kBadParams = 4,           // wrong parameter count for the statement
  kMalformedFrame = 5,      // undecodable payload, bad flags, missing HELLO
  kUnsupportedVersion = 6,  // HELLO version range does not include ours
  kDraining = 7,            // server is draining; no new work accepted
  kBusy = 8,                // global in-flight cap reached (kBusy frames)
  kTooLarge = 9,            // frame payload exceeds the negotiated maximum
  kStorage = 10,            // storage-layer error during execution
  kInternal = 11,           // anything else; message has details
};

const char* ErrorCodeName(ErrorCode code);

/// Raised by WireReader (and frame decoding) on malformed input.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

struct FrameHeader {
  uint32_t length = 0;
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  uint16_t flags = 0;
  uint32_t request_id = 0;
};

/// Serialize `header` into exactly kFrameHeaderSize bytes appended to `out`.
void EncodeFrameHeader(const FrameHeader& header, std::string& out);

/// Decode a header from exactly kFrameHeaderSize bytes. Throws
/// ProtocolError if fewer bytes are supplied; the opcode byte is preserved
/// verbatim (unknown opcodes are the dispatcher's problem, not a decode
/// failure).
FrameHeader DecodeFrameHeader(std::string_view bytes);

/// Append-only little-endian payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(std::string_view s);  // u32 length + bytes
  void Val(const Value& v);      // u8 type tag + payload
  void Params(const std::vector<Value>& params);  // u16 count + values

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload reader. Every method throws
/// ProtocolError on underflow or a malformed tag.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64();
  std::string Str();
  Value Val();
  std::vector<Value> Params();

  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  /// Call when a payload must have been fully consumed; trailing garbage is
  /// a protocol error (catches mis-framed requests early).
  void ExpectEnd() const;

 private:
  std::string_view Take(size_t n);
  std::string_view bytes_;
  size_t pos_ = 0;
};

// --- Payload encodings shared by client and server -------------------------

/// Value encoding: u8 type tag (0=NULL, 1=INT, 2=DOUBLE, 3=STRING) followed
/// by nothing / i64 / f64 bits / u32-prefixed bytes. (Implemented by
/// WireWriter::Val / WireReader::Val; documented here for the spec.)

/// RESULT_SET payload: u8 cache_hit, u16 column_count, column names
/// (strings), u32 row_count, then row-major values.
void EncodeResultSet(const sql::ResultSet& result, bool cache_hit, WireWriter& w);

struct DecodedResult {
  sql::ResultSet result;
  bool cache_hit = false;
};
DecodedResult DecodeResultSet(WireReader& r);

/// STATS_RESULT payload: u32 entry_count, then per entry a string key, a
/// u8 kind (0 = u64, 1 = f64) and 8 value bytes. Keys are dotted:
/// "engine.executions", "cache.hits", "dup.invalidations", "server.…".
struct StatsEntry {
  std::string key;
  uint8_t kind = 0;  // 0 = u64, 1 = f64
  uint64_t u64 = 0;
  double f64 = 0.0;
};
void EncodeStats(const std::vector<StatsEntry>& entries, WireWriter& w);
std::vector<StatsEntry> DecodeStats(WireReader& r);

/// One CDC stream record: a committed storage::UpdateBatch plus the
/// monotonically increasing stream sequence number the publishing node
/// assigned to it (docs/CLUSTER.md, "The CDC stream"). Unlike UpdateBatch
/// this is an owning copy — batches are views valid only inside the
/// database observer call, so the publisher copies before the statement
/// returns.
///
/// CDC_EVENT payload layout:
///   u64 seq, string table, u32 event_count, then per event:
///     u8  kind            (0 = UPDATE, 1 = INSERT, 2 = DELETE)
///     u64 row_id
///     u16 change_count, per change: u32 column, Value old, Value new
///     u32 before_count + Values (full before-image; empty for INSERT)
///     u32 after_count + Values  (full after-image; empty for DELETE)
struct CdcRecord {
  uint64_t seq = 0;
  std::string table;
  std::vector<storage::UpdateEvent> events;

  /// View of the owned events in the shape DupEngine::OnBatch consumes.
  storage::UpdateBatch AsBatch() const { return {table, events.data(), events.size()}; }
};

void EncodeCdcRecord(const CdcRecord& record, WireWriter& w);
CdcRecord DecodeCdcRecord(WireReader& r);

/// SUBSCRIBE payload: u64 last_seen_seq (0 on a fresh subscription). The
/// SUBSCRIBED response carries u64 current committed sequence; a subscriber
/// whose last_seen_seq lags it missed invalidations and must flush its
/// cache before admitting new fills (docs/CLUSTER.md, "Resubscribe gaps").

/// ERROR / BUSY payload: u16 ErrorCode + string message.
void EncodeError(ErrorCode code, std::string_view message, WireWriter& w);
struct DecodedError {
  ErrorCode code;
  std::string message;
};
DecodedError DecodeError(WireReader& r);

/// Build one complete frame (header + payload) ready to write to a socket.
std::string BuildFrame(Opcode opcode, uint32_t request_id, std::string_view payload,
                       uint8_t version = kProtocolVersion);

}  // namespace qc::server
