#include "server/client.h"

#include <poll.h>
#include <unistd.h>

#include <utility>

namespace qc::server {

QcClient::QcClient(QcClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      banner_(std::move(other.banner_)) {}

QcClient& QcClient::operator=(QcClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    banner_ = std::move(other.banner_);
  }
  return *this;
}

void QcClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ConnectTcp(host, port);
  WireWriter w;
  w.U32(kProtocolMagic);
  w.U8(kProtocolVersion);  // min supported
  w.U8(kProtocolVersion);  // max supported
  const std::string payload = Call(Opcode::kHello, w.bytes(), Opcode::kHelloOk);
  WireReader r(payload);
  const uint8_t version = r.U8();
  banner_ = r.Str();
  r.ExpectEnd();
  if (version != kProtocolVersion) {
    Close();
    throw ProtocolError("server negotiated unsupported version");
  }
}

void QcClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<FrameHeader, std::string> QcClient::ReadFrame() {
  std::string header_bytes;
  if (!ReadExact(fd_, kFrameHeaderSize, header_bytes)) {
    throw NetError("server closed connection");
  }
  const FrameHeader header = DecodeFrameHeader(header_bytes);
  std::string payload;
  if (header.length > 0 && !ReadExact(fd_, header.length, payload)) {
    throw NetError("server closed mid-frame");
  }
  return {header, std::move(payload)};
}

std::pair<FrameHeader, std::string> QcClient::RoundTrip(Opcode opcode, std::string_view payload,
                                                        uint8_t version, uint16_t flags) {
  if (fd_ < 0) throw NetError("not connected");
  FrameHeader h;
  h.length = static_cast<uint32_t>(payload.size());
  h.version = version;
  h.opcode = opcode;
  h.flags = flags;
  h.request_id = next_request_id_++;
  std::string frame;
  EncodeFrameHeader(h, frame);
  frame.append(payload.data(), payload.size());
  WriteAll(fd_, frame);
  return ReadFrame();
}

std::string QcClient::Call(Opcode opcode, std::string_view payload, Opcode expect) {
  auto [header, body] = RoundTrip(opcode, payload);
  if (header.opcode == Opcode::kError || header.opcode == Opcode::kBusy) {
    WireReader r(body);
    const DecodedError e = DecodeError(r);
    throw RpcError(e.code, e.message);
  }
  if (header.opcode != expect) {
    throw ProtocolError(std::string("expected ") + OpcodeName(expect) + ", got " +
                        OpcodeName(header.opcode));
  }
  return std::move(body);
}

QcClient::QueryResult QcClient::Query(const std::string& sql,
                                      const std::vector<Value>& params) {
  WireWriter w;
  w.Str(sql);
  w.Params(params);
  const std::string payload = Call(Opcode::kQuery, w.bytes(), Opcode::kResultSet);
  WireReader r(payload);
  DecodedResult decoded = DecodeResultSet(r);
  r.ExpectEnd();
  return QueryResult{std::move(decoded.result), decoded.cache_hit};
}

uint64_t QcClient::Dml(const std::string& sql, const std::vector<Value>& params) {
  WireWriter w;
  w.Str(sql);
  w.Params(params);
  const std::string payload = Call(Opcode::kQuery, w.bytes(), Opcode::kDmlOk);
  WireReader r(payload);
  const uint64_t affected = r.U64();
  r.ExpectEnd();
  return affected;
}

QcClient::SeqQueryResult QcClient::QuerySeq(const std::string& sql,
                                            const std::vector<Value>& params) {
  WireWriter w;
  w.Str(sql);
  w.Params(params);
  const std::string payload = Call(Opcode::kQuerySeq, w.bytes(), Opcode::kResultSetSeq);
  WireReader r(payload);
  SeqQueryResult out;
  out.observed_seq = r.U64();
  DecodedResult decoded = DecodeResultSet(r);
  r.ExpectEnd();
  out.result = std::move(decoded.result);
  out.cache_hit = decoded.cache_hit;
  return out;
}

uint64_t QcClient::SubscribeCdc(uint64_t last_seen_seq) {
  WireWriter w;
  w.U64(last_seen_seq);
  const std::string payload = Call(Opcode::kSubscribe, w.bytes(), Opcode::kSubscribed);
  WireReader r(payload);
  const uint64_t current_seq = r.U64();
  r.ExpectEnd();
  return current_seq;
}

std::optional<CdcRecord> QcClient::ReadCdcEvent(int timeout_ms) {
  if (fd_ < 0) throw NetError("not connected");
  if (timeout_ms >= 0) {
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) throw NetError("poll failed");
    if (rc == 0) return std::nullopt;
    if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) throw NetError("server closed connection");
  }
  auto [header, payload] = ReadFrame();
  if (header.opcode != Opcode::kCdcEvent) {
    throw ProtocolError(std::string("expected CDC_EVENT, got ") + OpcodeName(header.opcode));
  }
  WireReader r(payload);
  CdcRecord record = DecodeCdcRecord(r);
  r.ExpectEnd();
  return record;
}

QcClient::PreparedHandle QcClient::Prepare(const std::string& sql) {
  WireWriter w;
  w.Str(sql);
  const std::string payload = Call(Opcode::kPrepare, w.bytes(), Opcode::kPrepared);
  WireReader r(payload);
  PreparedHandle handle;
  handle.id = r.U32();
  handle.param_count = r.U16();
  r.ExpectEnd();
  return handle;
}

QcClient::QueryResult QcClient::Execute(uint32_t stmt_id, const std::vector<Value>& params) {
  WireWriter w;
  w.U32(stmt_id);
  w.Params(params);
  const std::string payload = Call(Opcode::kExecute, w.bytes(), Opcode::kResultSet);
  WireReader r(payload);
  DecodedResult decoded = DecodeResultSet(r);
  r.ExpectEnd();
  return QueryResult{std::move(decoded.result), decoded.cache_hit};
}

void QcClient::CloseStmt(uint32_t stmt_id) {
  WireWriter w;
  w.U32(stmt_id);
  Call(Opcode::kCloseStmt, w.bytes(), Opcode::kStmtClosed);
}

std::map<std::string, double> QcClient::Stats() {
  const std::string payload = Call(Opcode::kStats, {}, Opcode::kStatsResult);
  WireReader r(payload);
  std::map<std::string, double> out;
  for (const StatsEntry& e : DecodeStats(r)) {
    out[e.key] = e.kind == 0 ? static_cast<double>(e.u64) : e.f64;
  }
  r.ExpectEnd();
  return out;
}

void QcClient::Ping() { Call(Opcode::kPing, {}, Opcode::kPong); }

void QcClient::Drain(bool wait_for_close) {
  Call(Opcode::kDrain, {}, Opcode::kDrainAck);
  if (!wait_for_close) return;
  // The server closes every connection once the drain completes; read
  // until EOF (any late frames are drained responses for other requests —
  // this client has none outstanding).
  try {
    while (true) ReadFrame();
  } catch (const NetError&) {
    // EOF or reset: drain finished.
  }
  Close();
}

}  // namespace qc::server
