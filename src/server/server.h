// qcached — the network serving layer around CachedQueryEngine
// (ROADMAP item 1; protocol spec in docs/SERVING.md).
//
// Connection/threading model:
//   * one I/O thread runs a poll(2) event loop over the listener, a wake
//     pipe, and every connection: it accepts, reads and frames requests,
//     and performs all socket writes;
//   * a worker pool executes QUERY / PREPARE / EXECUTE / CLOSE_STMT
//     against the engine and enqueues the response on the connection's
//     bounded write queue (the I/O thread is woken through the pipe);
//   * HELLO, PING, STATS and DRAIN are answered inline on the I/O thread
//     (they never touch table data, only short-lived stats locks).
//
// Backpressure (two independent valves, docs/SERVING.md "Backpressure"):
//   * a global in-flight cap: once `max_in_flight` dispatched requests are
//     queued or executing, further requests are answered immediately with
//     a typed BUSY frame instead of being queued without bound;
//   * a per-connection write-queue byte cap: a client that stops reading
//     while responses accumulate past `max_write_queue_bytes` is
//     disconnected (counted in slow_consumer_closes) rather than allowed
//     to pin unbounded response memory.
//
// Graceful drain (SIGTERM via RequestDrain, or a DRAIN frame): the
// listener closes, new work is refused with ERROR/DRAINING, in-flight
// requests finish and their responses flush, then the engine's txlog is
// flushed (the disk spill tier is already durable — entries are persisted
// at Put time) and every connection is closed. A subsequent start with
// recover_on_open serves the drained process's cached results warm.
//
// @thread_safety Start/Wait/Stop/RequestDrain may be called from any
// thread; RequestDrain is additionally async-signal-safe (it only sets an
// atomic flag and writes one byte to a pipe), so a SIGTERM handler may
// call it directly. The engine must outlive the server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "middleware/query_engine.h"
#include "server/net.h"
#include "server/protocol.h"

namespace qc::server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; QcServer::port() reports the binding

  /// Worker threads executing queries against the engine.
  size_t worker_threads = 4;

  /// Global cap on dispatched-but-unanswered requests; excess load is shed
  /// with BUSY frames instead of queuing without bound.
  size_t max_in_flight = 256;

  /// Per-connection write-queue byte cap; a connection whose client stops
  /// reading past this is closed (slow-consumer protection).
  size_t max_write_queue_bytes = 4 * 1024 * 1024;

  /// Frames with a larger payload are refused with TOO_LARGE.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  int listen_backlog = 128;

  /// Storage-node mode (docs/CLUSTER.md): serialize every committed
  /// storage::UpdateBatch as a CDC_EVENT frame with a monotonically
  /// increasing stream sequence and fan it out to SUBSCRIBE'd
  /// connections. Off by default — a plain qcached and the cache nodes
  /// themselves publish only what PublishCdc() relays.
  bool cdc_publish = false;
};

/// Monotonic server counters, snapshotted by stats() and serialized into
/// STATS_RESULT frames under the "server." prefix.
struct ServerStatsSnapshot {
  uint64_t connections_accepted = 0;
  uint64_t connections_open = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  uint64_t busy_rejections = 0;      // shed by the in-flight cap
  uint64_t drain_rejections = 0;     // refused because the server is draining
  uint64_t protocol_errors = 0;      // malformed frames / bad handshakes
  uint64_t slow_consumer_closes = 0; // write-queue cap disconnects
  uint64_t in_flight = 0;            // currently dispatched requests
  uint64_t draining = 0;             // 0 or 1

  // CDC invalidation stream (docs/CLUSTER.md).
  uint64_t cdc_events_sent = 0;      // CDC_EVENT frames queued to subscribers
  uint64_t cdc_events_dropped = 0;   // frames not queued (dead/overflowed conn)
  uint64_t cdc_committed_seq = 0;    // last published stream sequence
  uint64_t cdc_subscribers = 0;      // live SUBSCRIBE'd connections
};

class QcServer {
 public:
  QcServer(middleware::CachedQueryEngine& engine, ServerConfig config);
  ~QcServer();

  QcServer(const QcServer&) = delete;
  QcServer& operator=(const QcServer&) = delete;

  /// Bind, listen, and launch the I/O thread + worker pool. Throws
  /// NetError if the address cannot be bound.
  void Start();

  /// The bound port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Begin graceful drain. Async-signal-safe; idempotent. The drain
  /// completes asynchronously — Wait() returns once it has.
  void RequestDrain();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Block until the event loop exits (drain completed or Stop called),
  /// then join every thread. Idempotent.
  void Wait();

  /// Immediate shutdown: abandon the event loop without waiting for
  /// in-flight work to flush (test teardown; prefer RequestDrain+Wait).
  void Stop();

  ServerStatsSnapshot stats() const;

  /// Serialize engine + cache + DUP + server counters into STATS_RESULT
  /// entries (also used by the DRAIN log line in tools/qcached.cc).
  std::vector<StatsEntry> BuildStatsEntries();

  // --- Cluster hooks (docs/CLUSTER.md). All three must be installed
  // --- before Start(); they are read without locks afterwards.

  /// Cache-node DML offload: when set, QUERY frames carrying DML are
  /// answered by this hook (a forward to the storage node) instead of
  /// engine_.ExecuteDml. Returns the affected-row count.
  using DmlForwarder = std::function<uint64_t(const std::string& sql,
                                              const std::vector<Value>& params)>;
  void SetDmlForwarder(DmlForwarder forwarder) { dml_forwarder_ = std::move(forwarder); }

  /// Fingerprint-ownership routing: consulted for every SELECT QUERY
  /// frame. Returning a result means the statement was served elsewhere
  /// (forwarded to the owning peer); nullopt falls through to the local
  /// engine.
  using SelectRouter = std::function<std::optional<middleware::CachedQueryEngine::ExecuteResult>(
      const std::string& sql, const std::vector<Value>& params)>;
  void SetSelectRouter(SelectRouter router) { select_router_ = std::move(router); }

  /// Extra (key, value) counters appended to STATS_RESULT — the cluster
  /// runtime exports cdc_events_applied / ring_forwards /
  /// lease_invalidations through this without a server→cluster dependency.
  using ExtraStatsFn = std::function<std::vector<std::pair<std::string, uint64_t>>()>;
  void SetExtraStats(ExtraStatsFn fn) { extra_stats_ = std::move(fn); }

  /// Fan one CDC record out to this server's SUBSCRIBE'd connections and
  /// advance the committed sequence to record.seq (monotonic). Relay mode:
  /// a cache node republishes upstream records — with their upstream
  /// sequence numbers — to its own subscribers (push-lease client caches).
  /// Thread-safe; callable from any thread after Start().
  void PublishCdc(const CdcRecord& record);

  /// Last stream sequence published (or relayed) by this server; the
  /// sequence a SUBSCRIBED reply reports. Wait-free.
  uint64_t cdc_committed_seq() const { return cdc_committed_.load(std::memory_order_acquire); }

 private:
  struct Connection {
    int fd = -1;

    // Read side and handshake state: I/O thread only.
    std::string inbuf;
    bool hello_done = false;
    bool close_after_flush = false;

    // Write side, shared between the I/O thread and workers.
    std::mutex write_mutex;
    std::deque<std::string> outq;
    size_t outq_bytes = 0;
    size_t front_offset = 0;  // bytes of outq.front() already written
    bool dead = false;        // fd closed; workers must drop responses
    bool overflowed = false;  // write-queue cap exceeded; close on next pass

    // Session state: prepared statements, touched by workers.
    std::mutex stmt_mutex;
    std::unordered_map<uint32_t, std::shared_ptr<const sql::BoundQuery>> stmts;
    uint32_t next_stmt_id = 1;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct WorkItem {
    ConnPtr conn;
    FrameHeader header;
    std::string payload;
  };

  void IoLoop();
  void WorkerLoop();

  // I/O thread helpers.
  void AcceptPending();
  void ReadInput(const ConnPtr& conn);
  void ParseFrames(const ConnPtr& conn);
  void DispatchFrame(const ConnPtr& conn, const FrameHeader& header, std::string payload);
  void FlushWrites(const ConnPtr& conn);
  void CloseConn(const ConnPtr& conn);
  bool AllQueuesIdle();

  // Response plumbing (any thread). Returns whether the frame was queued
  // (false: connection dead or its write queue overflowed).
  bool Enqueue(const ConnPtr& conn, std::string frame);
  void SendError(const ConnPtr& conn, const FrameHeader& req, ErrorCode code,
                 std::string_view message, Opcode opcode = Opcode::kError);

  // CDC stream (docs/CLUSTER.md).
  void HandleSubscribe(const ConnPtr& conn, const FrameHeader& header,
                       const std::string& payload);
  void FanOutLocked(const CdcRecord& record);  // cdc_mutex_ held

  // Worker-side request execution.
  void HandleWorkItem(const WorkItem& item);
  void HandleQuery(const WorkItem& item);
  void HandleQuerySeq(const WorkItem& item);
  void HandlePrepare(const WorkItem& item);
  void HandleExecute(const WorkItem& item);
  void HandleCloseStmt(const WorkItem& item);

  middleware::CachedQueryEngine& engine_;
  ServerConfig config_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  WakePipe wake_;

  std::thread io_thread_;
  std::vector<std::thread> workers_;
  std::unordered_map<int, ConnPtr> conns_;  // I/O thread only

  // Work queue.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool queue_stopped_ = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> draining_{false};
  std::mutex lifecycle_mutex_;  // serializes Wait/Stop joins
  bool joined_ = false;

  // CDC invalidation stream. The mutex orders sequence assignment with
  // fan-out: a subscriber registered under it either receives a record or
  // sees its sequence already committed in the SUBSCRIBED reply (and
  // reconciles the gap by flushing) — no record is silently missed.
  // cdc_committed_ is stored only *after* fan-out, so a QUERY_SEQ reader
  // observing sequence S knows every record <= S was both applied locally
  // (the engine's subscription runs first) and queued to subscribers.
  mutable std::mutex cdc_mutex_;  // mutable: stats() counts subscribers
  uint64_t cdc_next_seq_ = 0;                // storage mode; guarded by cdc_mutex_
  std::vector<ConnPtr> cdc_subscribers_;     // guarded by cdc_mutex_; lazily pruned
  std::atomic<uint64_t> cdc_committed_{0};
  std::atomic<uint64_t> cdc_events_sent_{0};
  std::atomic<uint64_t> cdc_events_dropped_{0};
  storage::Database::BatchSubscription cdc_subscription_{};
  DmlForwarder dml_forwarder_;
  SelectRouter select_router_;
  ExtraStatsFn extra_stats_;

  // Counters (relaxed; exact once the touching threads are quiescent).
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_open_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> busy_rejections_{0};
  std::atomic<uint64_t> drain_rejections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> slow_consumer_closes_{0};
};

}  // namespace qc::server
