#include "storage/schema.h"

#include "common/error.h"
#include "common/strings.h"

namespace qc::storage {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (uint32_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = by_name_.emplace(ToUpper(columns_[i].name), i);
    if (!inserted) throw StorageError("duplicate column name: " + columns_[i].name);
  }
}

std::optional<uint32_t> Schema::Find(const std::string& name) const {
  auto it = by_name_.find(ToUpper(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

uint32_t Schema::Require(const std::string& name) const {
  auto pos = Find(name);
  if (!pos) throw StorageError("unknown column: " + name);
  return *pos;
}

bool Schema::Accepts(size_t i, const Value& v) const {
  const ColumnDef& def = columns_.at(i);
  if (v.is_null()) return def.nullable;
  switch (def.type) {
    case ValueType::kInt: return v.is_int();
    case ValueType::kDouble: return v.is_numeric();
    case ValueType::kString: return v.is_string();
    case ValueType::kNull: return false;
  }
  return false;
}

}  // namespace qc::storage
