// CSV import/export for tables: the practical on-ramp for feeding real
// data into the storage substrate (and dumping it back out for
// inspection). RFC-4180-style quoting; NULL cells are written as the
// unquoted token \N (a quoted "\N" is the two-character string).
#pragma once

#include <iosfwd>
#include <string>

#include "storage/table.h"

namespace qc::storage {

struct CsvOptions {
  char separator = ',';
  bool header = true;  // write/expect a header row of column names
};

/// Serialize all live rows (schema order). Deterministic row order (by
/// row id).
std::string ExportCsv(const Table& table, const CsvOptions& options = {});
void ExportCsvFile(const Table& table, const std::string& path, const CsvOptions& options = {});

/// Append rows parsed from CSV text. Cells are converted to each column's
/// declared type (int/double parsed, strings taken verbatim); \N becomes
/// NULL. With options.header, the first row must name every schema column
/// (any order — columns are matched by name; missing columns get NULL).
/// Returns the number of rows inserted. Throws StorageError on malformed
/// input or type violations.
uint64_t ImportCsv(Table& table, const std::string& csv, const CsvOptions& options = {});
uint64_t ImportCsvFile(Table& table, const std::string& path, const CsvOptions& options = {});

}  // namespace qc::storage
