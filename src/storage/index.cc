#include "storage/index.h"

#include <algorithm>

#include "common/error.h"

namespace qc::storage {

const std::vector<RowId> HashIndex::kEmpty;
const std::vector<RowId> OrderedIndex::kEmpty;

namespace {

template <typename Map>
void EraseFrom(Map& buckets, const Value& v, RowId row) {
  auto it = buckets.find(v);
  if (it == buckets.end()) throw StorageError("index erase: value not present");
  auto& rows = it->second;
  auto pos = std::find(rows.begin(), rows.end(), row);
  if (pos == rows.end()) throw StorageError("index erase: row not present");
  // Order within a bucket is not meaningful; swap-remove is O(1).
  *pos = rows.back();
  rows.pop_back();
  if (rows.empty()) buckets.erase(it);
}

}  // namespace

void HashIndex::Erase(const Value& v, RowId row) { EraseFrom(buckets_, v, row); }

const std::vector<RowId>& HashIndex::Lookup(const Value& v) const {
  auto it = buckets_.find(v);
  return it == buckets_.end() ? kEmpty : it->second;
}

void OrderedIndex::Erase(const Value& v, RowId row) { EraseFrom(buckets_, v, row); }

const std::vector<RowId>& OrderedIndex::Lookup(const Value& v) const {
  auto it = buckets_.find(v);
  return it == buckets_.end() ? kEmpty : it->second;
}

size_t OrderedIndex::CountRangeRows(const Value& lo, bool lo_inclusive,
                                    const Value& hi, bool hi_inclusive, size_t cap) const {
  if (!lo.is_null() && !hi.is_null()) {
    if (lo > hi || (lo == hi && !(lo_inclusive && hi_inclusive))) return 0;
  }
  auto begin = lo.is_null() ? buckets_.begin()
               : (lo_inclusive ? buckets_.lower_bound(lo) : buckets_.upper_bound(lo));
  auto end = hi.is_null() ? buckets_.end()
             : (hi_inclusive ? buckets_.upper_bound(hi) : buckets_.lower_bound(hi));
  size_t count = 0;
  for (auto it = begin; it != end; ++it) {
    count += it->second.size();
    if (count > cap) return count;
  }
  return count;
}

std::vector<RowId> OrderedIndex::LookupRange(const Value& lo, bool lo_inclusive,
                                             const Value& hi, bool hi_inclusive) const {
  // An empty interval (lo > hi, or lo == hi without both ends closed) must
  // be rejected up front: its begin iterator would land AFTER its end
  // iterator and the walk below would run off the map.
  if (!lo.is_null() && !hi.is_null()) {
    if (lo > hi || (lo == hi && !(lo_inclusive && hi_inclusive))) return {};
  }
  auto begin = lo.is_null() ? buckets_.begin()
               : (lo_inclusive ? buckets_.lower_bound(lo) : buckets_.upper_bound(lo));
  auto end = hi.is_null() ? buckets_.end()
             : (hi_inclusive ? buckets_.upper_bound(hi) : buckets_.lower_bound(hi));
  std::vector<RowId> out;
  for (auto it = begin; it != end; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace qc::storage
