// Database: a catalog of tables plus a process-wide update-event bus.
//
// @thread_safety The catalog is not internally synchronized: CreateTable
// and Subscribe must complete before concurrent queries/updates start
// (table lookups are then read-only). Per-table data access is guarded by
// each Table's cooperative reader-writer lock — see storage/table.h and
// docs/CONCURRENCY.md.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace qc::storage {

class Database {
 public:
  /// Create a table; returns a reference owned by the database. Observers
  /// already subscribed at the database level see the new table's events.
  Table& CreateTable(const std::string& name, Schema schema);

  Table& GetTable(const std::string& name);
  const Table& GetTable(const std::string& name) const;
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// A live database-level subscription; pass back to Unsubscribe.
  using Subscription = std::shared_ptr<UpdateObserver>;

  /// Subscribe to mutations of every table, present and future. The
  /// observer fires until Unsubscribe(handle) — an observer that captures
  /// `this` of a shorter-lived object MUST unsubscribe in its destructor
  /// (tables hold thunks to the handle, so they would otherwise keep
  /// invoking a dead object).
  Subscription Subscribe(UpdateObserver observer);

  /// Neutralize and forget a subscription. Per-table thunks referencing
  /// the handle remain registered but become no-ops. Like Subscribe, must
  /// not run concurrently with table mutations.
  void Unsubscribe(const Subscription& subscription);

  /// A live database-level batch subscription; pass back to Unsubscribe.
  using BatchSubscription = std::shared_ptr<BatchObserver>;

  /// Subscribe to statement-level batches of every table, present and
  /// future (see Table::SubscribeBatch). Same lifetime and threading rules
  /// as Subscribe.
  BatchSubscription SubscribeBatch(BatchObserver observer);
  void Unsubscribe(const BatchSubscription& subscription);

 private:
  // Table names are case-insensitive; keys are upper-cased.
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::shared_ptr<UpdateObserver>> observers_;
  std::vector<std::shared_ptr<BatchObserver>> batch_observers_;
};

}  // namespace qc::storage
