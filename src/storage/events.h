// Update events emitted by the storage layer.
//
// This is the hook the paper's §4.2 describes as "invalidation code in the
// attribute setter, creation and deletion methods": every mutation of a
// table produces one UpdateEvent carrying the changed attributes with
// their old and new values, which the DUP engine turns into cache
// invalidations.
//
// Ordering contract (load-bearing for docs/CONCURRENCY.md): observers run
// synchronously on the mutating thread, after the table data/indexes have
// been updated, before the mutation call returns. Inside a
// Table::BatchScope (one scope per multi-row DML statement) delivery is
// deferred to the end of the scope: all of the statement's rows mutate
// first, then every event is delivered — still synchronously, still before
// the *statement* returns to its caller. The DUP engine stamps its update
// epochs as the first step of handling an event or batch, so "mutation
// acknowledged" implies "epoch stamped and invalidations applied".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.h"

namespace qc::storage {

using RowId = uint64_t;
using Row = std::vector<Value>;

struct AttributeChange {
  uint32_t column = 0;  // position in the table schema
  Value old_value;
  Value new_value;
};

struct UpdateEvent {
  enum class Kind { kUpdate, kInsert, kDelete };

  Kind kind = Kind::kUpdate;
  std::string table;  // table name (catalog key)
  RowId row = 0;

  /// For kUpdate: the attributes this transaction modified (only those
  /// whose value actually changed). Empty for kInsert/kDelete, which the
  /// paper treats as "resetting all of the object's attributes".
  std::vector<AttributeChange> changes;

  /// Full row images. For kInsert `after` is set; for kDelete `before`;
  /// for kUpdate both (enabling row-aware invalidation refinements).
  Row before;
  Row after;
};

using UpdateObserver = std::function<void(const UpdateEvent&)>;

/// A statement-scoped group of events on one table, delivered as one unit
/// to batch observers so per-statement work (epoch stamping, affected-key
/// dedup, cache shard locking) is paid once instead of once per row. A
/// single-row mutation outside any BatchScope is delivered as a batch of
/// one. The struct is a *view* into the emitting table's buffer: valid only
/// for the duration of the observer call — copy what must outlive it.
struct UpdateBatch {
  std::string_view table;  // table name (catalog key); same for every event
  const UpdateEvent* events = nullptr;
  size_t count = 0;

  const UpdateEvent* begin() const { return events; }
  const UpdateEvent* end() const { return events + count; }
  const UpdateEvent& operator[](size_t i) const { return events[i]; }
  bool empty() const { return count == 0; }
};

using BatchObserver = std::function<void(const UpdateBatch&)>;

}  // namespace qc::storage
