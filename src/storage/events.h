// Update events emitted by the storage layer.
//
// This is the hook the paper's §4.2 describes as "invalidation code in the
// attribute setter, creation and deletion methods": every mutation of a
// table produces one UpdateEvent carrying the changed attributes with
// their old and new values, which the DUP engine turns into cache
// invalidations.
//
// Ordering contract (load-bearing for docs/CONCURRENCY.md): observers run
// synchronously on the mutating thread, after the table data/indexes have
// been updated, before the mutation call returns. The DUP engine stamps
// its update epochs as the first step of handling an event, so "mutation
// acknowledged" implies "epoch stamped and invalidations applied".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/value.h"

namespace qc::storage {

using RowId = uint64_t;
using Row = std::vector<Value>;

struct AttributeChange {
  uint32_t column = 0;  // position in the table schema
  Value old_value;
  Value new_value;
};

struct UpdateEvent {
  enum class Kind { kUpdate, kInsert, kDelete };

  Kind kind = Kind::kUpdate;
  std::string table;  // table name (catalog key)
  RowId row = 0;

  /// For kUpdate: the attributes this transaction modified (only those
  /// whose value actually changed). Empty for kInsert/kDelete, which the
  /// paper treats as "resetting all of the object's attributes".
  std::vector<AttributeChange> changes;

  /// Full row images. For kInsert `after` is set; for kDelete `before`;
  /// for kUpdate both (enabling row-aware invalidation refinements).
  Row before;
  Row after;
};

using UpdateObserver = std::function<void(const UpdateEvent&)>;

}  // namespace qc::storage
