// A mutable in-memory table with typed columnar storage, optional
// secondary indexes, and update-event emission. This is the substitute
// for the DB2 store behind the paper's ABR rule server (see DESIGN.MD §2).
//
// @thread_safety Table is *cooperatively* synchronized: its methods do not
// lock, but every table carries a reader-writer mutex exposed via
// ReadLock()/WriteLock(). CachedQueryEngine holds ReadLock on every table
// a SELECT touches for the duration of the scan and WriteLock around each
// DML statement, which makes concurrent query serving data-race-free (see
// docs/CONCURRENCY.md). Callers that drive a Table single-threaded (tests,
// single-threaded benches) may skip the locks entirely. The schema and the
// observer list are immutable/append-only and must be finalized before
// threads start.
//
// Event ordering: mutations emit their UpdateEvent synchronously on the
// mutating thread, *after* the data and indexes are updated (and, when the
// caller holds WriteLock, while that lock is still held). The DUP epoch
// protocol relies on this: by the time a mutation is acknowledged to its
// caller, the event — epoch stamp included — has fully propagated.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/events.h"
#include "storage/index.h"
#include "storage/schema.h"

namespace qc::storage {

class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t size() const { return live_count_; }

  /// One past the largest row id ever allocated (scan bound).
  RowId SlotCount() const { return live_.size(); }
  bool IsLive(RowId row) const { return row < live_.size() && live_[row]; }

  /// Insert a full row; returns its RowId. Validates arity and types.
  RowId Insert(const Row& values);

  /// Delete a live row.
  void Delete(RowId row);

  /// Update one or more attributes of a live row as a single transaction
  /// (one UpdateEvent). Attributes whose new value equals the old value
  /// are dropped from the event, mirroring the paper's setter guard
  /// `if (!contextId.equals(inContextId))`.
  void Update(RowId row, const std::vector<std::pair<uint32_t, Value>>& sets);
  void Update(RowId row, uint32_t column, const Value& value);

  Value Get(RowId row, uint32_t column) const;
  Row GetRow(RowId row) const;

  /// Build a secondary index over `column`. Indexes may be added after
  /// data is loaded; they are backfilled. At most one of each kind per
  /// column.
  void CreateHashIndex(uint32_t column);
  void CreateOrderedIndex(uint32_t column);
  bool HasHashIndex(uint32_t column) const { return column < hash_indexes_.size() && hash_indexes_[column] != nullptr; }
  bool HasOrderedIndex(uint32_t column) const { return column < ordered_indexes_.size() && ordered_indexes_[column] != nullptr; }

  /// Index lookups; throw StorageError if the index is missing. Results may
  /// be filtered by IsLive (they always are live — indexes track deletes).
  const std::vector<RowId>& LookupEqual(uint32_t column, const Value& v) const;
  std::vector<RowId> LookupRange(uint32_t column, const Value& lo, bool lo_inclusive,
                                 const Value& hi, bool hi_inclusive) const;
  bool CanLookupEqual(uint32_t column) const { return HasHashIndex(column) || HasOrderedIndex(column); }

  /// Size a LookupRange cheaply: exact live-row count of the range, walking
  /// the ordered index's distinct-value buckets with early exit once the sum
  /// exceeds `cap` (see OrderedIndex::CountRangeRows). Requires an ordered
  /// index on `column`.
  size_t EstimateRangeRows(uint32_t column, const Value& lo, bool lo_inclusive,
                           const Value& hi, bool hi_inclusive, size_t cap) const;

  /// Visit every live row id.
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (RowId r = 0; r < live_.size(); ++r) {
      if (live_[r]) fn(r);
    }
  }

  /// Direct column access for hot evaluator paths.
  const ColumnStore& column_store(uint32_t column) const { return columns_.at(column); }

  /// Register an observer for all mutations of this table. Not thread-safe
  /// against concurrent mutations — subscribe before threads start.
  void Subscribe(UpdateObserver observer) { observers_.push_back(std::move(observer)); }

  /// Register a batch observer: receives one UpdateBatch per BatchScope
  /// (or a batch of one for mutations outside any scope). Same threading
  /// rules as Subscribe. Per-event observers and batch observers both see
  /// every mutation; an object should subscribe through exactly one of the
  /// two channels.
  void SubscribeBatch(BatchObserver observer) { batch_observers_.push_back(std::move(observer)); }

  /// RAII statement scope: while alive, this table's mutations buffer
  /// their events; the scope's destruction delivers them — first to each
  /// per-event observer (in emission order), then to each batch observer
  /// as a single UpdateBatch. Used by multi-row DML so the DUP engine sees
  /// one batch per statement. Scopes nest (delivery happens when the
  /// outermost one ends) and must not outlive the table. The caller keeps
  /// holding the table's write lock for the scope's whole lifetime, as DML
  /// already does — delivery runs under it.
  class BatchScope {
   public:
    explicit BatchScope(Table& table) : table_(table) { ++table_.batch_depth_; }
    /// Delivers the buffered events; observer exceptions propagate, as
    /// they do from an unbatched mutation.
    ~BatchScope() noexcept(false) {
      if (--table_.batch_depth_ == 0) table_.EmitBatchEnd();
    }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;

   private:
    Table& table_;
  };

  /// Cooperative reader-writer lock (see @thread_safety above). Readers
  /// acquiring multiple tables' locks must do so in a consistent order
  /// (CachedQueryEngine sorts by table address); writers lock one table at
  /// a time.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(rw_mutex_);
  }
  std::unique_lock<std::shared_mutex> WriteLock() {
    return std::unique_lock<std::shared_mutex>(rw_mutex_);
  }

 private:
  void ValidateLive(RowId row) const;
  void IndexInsert(uint32_t column, const Value& v, RowId row);
  void IndexErase(uint32_t column, const Value& v, RowId row);
  void Emit(UpdateEvent event);
  void EmitBatchEnd();

  std::string name_;
  Schema schema_;
  std::vector<ColumnStore> columns_;
  std::vector<uint8_t> live_;
  std::vector<RowId> free_slots_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<HashIndex>> hash_indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
  std::vector<UpdateObserver> observers_;
  std::vector<BatchObserver> batch_observers_;
  uint32_t batch_depth_ = 0;            // open BatchScope nesting level
  std::vector<UpdateEvent> pending_;    // events buffered by open scopes
  mutable std::shared_mutex rw_mutex_;
};

}  // namespace qc::storage
