#include "storage/database.h"

#include "common/error.h"
#include "common/strings.h"

namespace qc::storage {

Table& Database::CreateTable(const std::string& name, Schema schema) {
  auto key = ToUpper(name);
  auto [it, inserted] = tables_.emplace(key, std::make_unique<Table>(name, std::move(schema)));
  if (!inserted) throw StorageError("table already exists: " + name);
  Table& table = *it->second;
  for (const auto& observer : observers_) {
    auto handle = observer;  // keep the shared target alive in the lambda
    table.Subscribe([handle](const UpdateEvent& e) { (*handle)(e); });
  }
  for (const auto& observer : batch_observers_) {
    auto handle = observer;
    table.SubscribeBatch([handle](const UpdateBatch& b) { (*handle)(b); });
  }
  return table;
}

Table& Database::GetTable(const std::string& name) {
  Table* t = FindTable(name);
  if (!t) throw StorageError("unknown table: " + name);
  return *t;
}

const Table& Database::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (!t) throw StorageError("unknown table: " + name);
  return *t;
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(ToUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(ToUpper(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(ToUpper(name)) > 0;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

Database::Subscription Database::Subscribe(UpdateObserver observer) {
  auto handle = std::make_shared<UpdateObserver>(std::move(observer));
  observers_.push_back(handle);
  for (auto& [key, table] : tables_) {
    table->Subscribe([handle](const UpdateEvent& e) { (*handle)(e); });
  }
  return handle;
}

void Database::Unsubscribe(const Subscription& subscription) {
  if (!subscription) return;
  *subscription = [](const UpdateEvent&) {};
  std::erase(observers_, subscription);
}

Database::BatchSubscription Database::SubscribeBatch(BatchObserver observer) {
  auto handle = std::make_shared<BatchObserver>(std::move(observer));
  batch_observers_.push_back(handle);
  for (auto& [key, table] : tables_) {
    table->SubscribeBatch([handle](const UpdateBatch& b) { (*handle)(b); });
  }
  return handle;
}

void Database::Unsubscribe(const BatchSubscription& subscription) {
  if (!subscription) return;
  *subscription = [](const UpdateBatch&) {};
  std::erase(batch_observers_, subscription);
}

}  // namespace qc::storage
