// Table schemas: ordered, typed column definitions with name lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace qc::storage {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
  bool nullable = false;
};

/// An immutable ordered list of column definitions. Column positions are
/// stable for the lifetime of the schema; lookups by name are
/// case-insensitive (SQL identifier semantics).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t size() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_.at(i); }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Position of column `name`, or nullopt if absent.
  std::optional<uint32_t> Find(const std::string& name) const;

  /// Position of column `name`; throws StorageError if absent.
  uint32_t Require(const std::string& name) const;

  /// True if `v` may be stored in column `i` (matching type class or
  /// NULL-into-nullable).
  bool Accepts(size_t i, const Value& v) const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, uint32_t> by_name_;  // upper-cased keys
};

}  // namespace qc::storage
