#include "storage/table.h"

#include "common/error.h"

namespace qc::storage {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const ColumnDef& def : schema_.columns()) columns_.emplace_back(def.type);
  hash_indexes_.resize(schema_.size());
  ordered_indexes_.resize(schema_.size());
}

RowId Table::Insert(const Row& values) {
  if (values.size() != schema_.size()) {
    throw StorageError("insert arity mismatch on " + name_);
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!schema_.Accepts(i, values[i])) {
      throw StorageError("type mismatch for column " + schema_.column(i).name +
                         " of " + name_ + ": " + values[i].ToString());
    }
  }

  RowId row;
  if (!free_slots_.empty()) {
    row = free_slots_.back();
    free_slots_.pop_back();
    live_[row] = 1;
    for (size_t i = 0; i < values.size(); ++i) columns_[i].Set(row, values[i]);
  } else {
    row = live_.size();
    live_.push_back(1);
    for (size_t i = 0; i < values.size(); ++i) columns_[i].Append(values[i]);
  }
  ++live_count_;
  for (size_t i = 0; i < values.size(); ++i) IndexInsert(static_cast<uint32_t>(i), values[i], row);

  UpdateEvent event;
  event.kind = UpdateEvent::Kind::kInsert;
  event.table = name_;
  event.row = row;
  event.after = values;
  Emit(event);
  return row;
}

void Table::Delete(RowId row) {
  ValidateLive(row);
  Row old = GetRow(row);
  for (size_t i = 0; i < old.size(); ++i) IndexErase(static_cast<uint32_t>(i), old[i], row);
  live_[row] = 0;
  free_slots_.push_back(row);
  --live_count_;

  UpdateEvent event;
  event.kind = UpdateEvent::Kind::kDelete;
  event.table = name_;
  event.row = row;
  event.before = std::move(old);
  Emit(event);
}

void Table::Update(RowId row, const std::vector<std::pair<uint32_t, Value>>& sets) {
  ValidateLive(row);
  UpdateEvent event;
  event.kind = UpdateEvent::Kind::kUpdate;
  event.table = name_;
  event.row = row;
  event.before = GetRow(row);

  for (const auto& [column, value] : sets) {
    if (column >= schema_.size()) throw StorageError("update: bad column index");
    if (!schema_.Accepts(column, value)) {
      throw StorageError("type mismatch for column " + schema_.column(column).name +
                         " of " + name_ + ": " + value.ToString());
    }
    Value old = columns_[column].Get(row);
    if (old == value) continue;  // no-op set: no event entry, no index churn
    IndexErase(column, old, row);
    columns_[column].Set(row, value);
    IndexInsert(column, value, row);
    event.changes.push_back({column, std::move(old), value});
  }
  if (event.changes.empty()) return;
  event.after = GetRow(row);
  Emit(event);
}

void Table::Update(RowId row, uint32_t column, const Value& value) {
  Update(row, std::vector<std::pair<uint32_t, Value>>{{column, value}});
}

Value Table::Get(RowId row, uint32_t column) const {
  ValidateLive(row);
  if (column >= schema_.size()) throw StorageError("get: bad column index");
  return columns_[column].Get(row);
}

Row Table::GetRow(RowId row) const {
  ValidateLive(row);
  Row out;
  out.reserve(schema_.size());
  for (const ColumnStore& col : columns_) out.push_back(col.Get(row));
  return out;
}

void Table::CreateHashIndex(uint32_t column) {
  if (column >= schema_.size()) throw StorageError("index: bad column index");
  if (hash_indexes_[column]) return;
  auto index = std::make_unique<HashIndex>();
  ForEachRow([&](RowId r) { index->Insert(columns_[column].Get(r), r); });
  hash_indexes_[column] = std::move(index);
}

void Table::CreateOrderedIndex(uint32_t column) {
  if (column >= schema_.size()) throw StorageError("index: bad column index");
  if (ordered_indexes_[column]) return;
  auto index = std::make_unique<OrderedIndex>();
  ForEachRow([&](RowId r) { index->Insert(columns_[column].Get(r), r); });
  ordered_indexes_[column] = std::move(index);
}

const std::vector<RowId>& Table::LookupEqual(uint32_t column, const Value& v) const {
  if (HasHashIndex(column)) return hash_indexes_[column]->Lookup(v);
  if (HasOrderedIndex(column)) return ordered_indexes_[column]->Lookup(v);
  throw StorageError("no equality index on column " + schema_.column(column).name);
}

std::vector<RowId> Table::LookupRange(uint32_t column, const Value& lo, bool lo_inclusive,
                                      const Value& hi, bool hi_inclusive) const {
  if (!HasOrderedIndex(column)) {
    throw StorageError("no ordered index on column " + schema_.column(column).name);
  }
  return ordered_indexes_[column]->LookupRange(lo, lo_inclusive, hi, hi_inclusive);
}

size_t Table::EstimateRangeRows(uint32_t column, const Value& lo, bool lo_inclusive,
                                const Value& hi, bool hi_inclusive, size_t cap) const {
  if (!HasOrderedIndex(column)) {
    throw StorageError("no ordered index on column " + schema_.column(column).name);
  }
  return ordered_indexes_[column]->CountRangeRows(lo, lo_inclusive, hi, hi_inclusive, cap);
}

void Table::ValidateLive(RowId row) const {
  if (!IsLive(row)) throw StorageError("row " + std::to_string(row) + " of " + name_ + " is not live");
}

void Table::IndexInsert(uint32_t column, const Value& v, RowId row) {
  if (hash_indexes_[column]) hash_indexes_[column]->Insert(v, row);
  if (ordered_indexes_[column]) ordered_indexes_[column]->Insert(v, row);
}

void Table::IndexErase(uint32_t column, const Value& v, RowId row) {
  if (hash_indexes_[column]) hash_indexes_[column]->Erase(v, row);
  if (ordered_indexes_[column]) ordered_indexes_[column]->Erase(v, row);
}

void Table::Emit(UpdateEvent event) {
  if (batch_depth_ > 0) {
    pending_.push_back(std::move(event));
    return;
  }
  for (const UpdateObserver& observer : observers_) observer(event);
  if (!batch_observers_.empty()) {
    const UpdateBatch batch{name_, &event, 1};
    for (const BatchObserver& observer : batch_observers_) observer(batch);
  }
}

void Table::EmitBatchEnd() {
  if (pending_.empty()) return;
  // Move the buffer out first: an observer may mutate this table again
  // (refresh-on-invalidate), and with no scope open such mutations deliver
  // immediately rather than appending under our feet.
  std::vector<UpdateEvent> events = std::move(pending_);
  pending_.clear();
  for (const UpdateEvent& event : events) {
    for (const UpdateObserver& observer : observers_) observer(event);
  }
  if (!batch_observers_.empty()) {
    const UpdateBatch batch{name_, events.data(), events.size()};
    for (const BatchObserver& observer : batch_observers_) observer(batch);
  }
}

}  // namespace qc::storage
