#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace qc::storage {

namespace {

constexpr const char* kNullToken = "\\N";

bool NeedsQuoting(const std::string& cell, char separator) {
  return cell.find_first_of(std::string("\"\r\n") + separator) != std::string::npos ||
         cell == kNullToken;
}

void AppendCell(std::string& out, const std::string& cell, char separator) {
  if (!NeedsQuoting(cell, separator)) {
    out += cell;
    return;
  }
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

std::string CellOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return kNullToken;
    case ValueType::kInt:
      return std::to_string(v.as_int());
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.as_double();
      return os.str();
    }
    case ValueType::kString:
      return v.as_string();
  }
  return "";
}

/// One parsed cell: text plus whether it was quoted (a quoted \N is data).
struct Cell {
  std::string text;
  bool quoted = false;
};

class CsvReader {
 public:
  CsvReader(const std::string& data, char separator) : data_(data), separator_(separator) {}

  /// Parse the next record; false at end of input. Handles quoted cells
  /// with embedded separators, quotes and newlines.
  bool NextRecord(std::vector<Cell>& out) {
    out.clear();
    if (pos_ >= data_.size()) return false;
    Cell cell;
    bool in_quotes = false;
    bool cell_started_quoted = false;
    for (;;) {
      if (pos_ >= data_.size()) {
        cell.quoted = cell_started_quoted;
        out.push_back(std::move(cell));
        return true;
      }
      const char c = data_[pos_++];
      if (in_quotes) {
        if (c == '"') {
          if (pos_ < data_.size() && data_[pos_] == '"') {
            cell.text += '"';
            ++pos_;
          } else {
            in_quotes = false;
          }
        } else {
          cell.text += c;
        }
        continue;
      }
      if (c == '"' && cell.text.empty() && !cell_started_quoted) {
        in_quotes = true;
        cell_started_quoted = true;
        continue;
      }
      if (c == separator_) {
        cell.quoted = cell_started_quoted;
        out.push_back(std::move(cell));
        cell = Cell{};
        cell_started_quoted = false;
        continue;
      }
      if (c == '\n' || c == '\r') {
        if (c == '\r' && pos_ < data_.size() && data_[pos_] == '\n') ++pos_;
        cell.quoted = cell_started_quoted;
        out.push_back(std::move(cell));
        return true;
      }
      cell.text += c;
    }
  }

 private:
  const std::string& data_;
  char separator_;
  size_t pos_ = 0;
};

Value ParseCell(const Cell& cell, const ColumnDef& def) {
  if (!cell.quoted && cell.text == kNullToken) return Value::Null();
  switch (def.type) {
    case ValueType::kInt: {
      try {
        size_t consumed = 0;
        const int64_t v = std::stoll(cell.text, &consumed);
        if (consumed != cell.text.size()) throw std::invalid_argument("trailing");
        return Value(v);
      } catch (const std::exception&) {
        throw StorageError("CSV: cannot parse '" + cell.text + "' as integer for column " +
                           def.name);
      }
    }
    case ValueType::kDouble: {
      try {
        size_t consumed = 0;
        const double v = std::stod(cell.text, &consumed);
        if (consumed != cell.text.size()) throw std::invalid_argument("trailing");
        return Value(v);
      } catch (const std::exception&) {
        throw StorageError("CSV: cannot parse '" + cell.text + "' as double for column " +
                           def.name);
      }
    }
    case ValueType::kString:
      return Value(cell.text);
    case ValueType::kNull:
      break;
  }
  throw StorageError("CSV: column of type NULL");
}

}  // namespace

std::string ExportCsv(const Table& table, const CsvOptions& options) {
  std::string out;
  const Schema& schema = table.schema();
  if (options.header) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c) out += options.separator;
      AppendCell(out, schema.column(c).name, options.separator);
    }
    out += '\n';
  }
  table.ForEachRow([&](RowId row) {
    for (size_t c = 0; c < schema.size(); ++c) {
      if (c) out += options.separator;
      const Value v = table.Get(row, static_cast<uint32_t>(c));
      if (v.is_null()) {
        out += kNullToken;  // unquoted: the NULL marker (a quoted "\N" is data)
      } else {
        AppendCell(out, CellOf(v), options.separator);
      }
    }
    out += '\n';
  });
  return out;
}

void ExportCsvFile(const Table& table, const std::string& path, const CsvOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw StorageError("cannot write CSV file " + path);
  out << ExportCsv(table, options);
}

uint64_t ImportCsv(Table& table, const std::string& csv, const CsvOptions& options) {
  const Schema& schema = table.schema();
  CsvReader reader(csv, options.separator);
  std::vector<Cell> record;

  // Column mapping: identity without a header; by name with one.
  std::vector<int32_t> source_for_column(schema.size(), -1);
  if (options.header) {
    if (!reader.NextRecord(record)) return 0;
    for (size_t i = 0; i < record.size(); ++i) {
      auto pos = schema.Find(record[i].text);
      if (!pos) throw StorageError("CSV header names unknown column: " + record[i].text);
      source_for_column[*pos] = static_cast<int32_t>(i);
    }
  } else {
    for (size_t c = 0; c < schema.size(); ++c) source_for_column[c] = static_cast<int32_t>(c);
  }

  uint64_t inserted = 0;
  while (reader.NextRecord(record)) {
    if (record.size() == 1 && record[0].text.empty() && !record[0].quoted) continue;  // blank line
    Row row(schema.size(), Value::Null());
    for (size_t c = 0; c < schema.size(); ++c) {
      const int32_t source = source_for_column[c];
      if (source < 0) continue;  // column absent from the header: NULL
      if (static_cast<size_t>(source) >= record.size()) {
        throw StorageError("CSV record too short at row " + std::to_string(inserted + 1));
      }
      row[c] = ParseCell(record[static_cast<size_t>(source)], schema.column(c));
    }
    table.Insert(row);
    ++inserted;
  }
  return inserted;
}

uint64_t ImportCsvFile(Table& table, const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StorageError("cannot read CSV file " + path);
  const std::string data{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  return ImportCsv(table, data, options);
}

}  // namespace qc::storage
