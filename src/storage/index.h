// Secondary indexes over a single column: hash (equality) and ordered
// (range). Indexes are maintained eagerly by Table on every mutation.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "storage/events.h"

namespace qc::storage {

/// Equality index: value -> row ids (multiset semantics).
class HashIndex {
 public:
  void Insert(const Value& v, RowId row) { buckets_[v].push_back(row); }
  void Erase(const Value& v, RowId row);

  /// Rows whose cell equals `v` (order unspecified).
  const std::vector<RowId>& Lookup(const Value& v) const;

  size_t distinct_values() const { return buckets_.size(); }

 private:
  std::unordered_map<Value, std::vector<RowId>, ValueHash> buckets_;
  static const std::vector<RowId> kEmpty;
};

/// Ordered index: supports equality and inclusive range lookups.
class OrderedIndex {
 public:
  void Insert(const Value& v, RowId row) { buckets_[v].push_back(row); }
  void Erase(const Value& v, RowId row);

  const std::vector<RowId>& Lookup(const Value& v) const;

  /// Rows with cell in [lo, hi]; unbounded ends use is_null() sentinels.
  std::vector<RowId> LookupRange(const Value& lo, bool lo_inclusive,
                                 const Value& hi, bool hi_inclusive) const;

  /// Exact row count of LookupRange without materializing row ids, walking
  /// distinct-value buckets and stopping early once the running sum exceeds
  /// `cap` (the return value is then a lower bound that is already > cap).
  /// Cost is output-sensitive: O(distinct values in range) bucket steps,
  /// capped — the access-path planner uses it to size range candidates
  /// against the best alternative seen so far.
  size_t CountRangeRows(const Value& lo, bool lo_inclusive,
                        const Value& hi, bool hi_inclusive, size_t cap) const;

  size_t distinct_values() const { return buckets_.size(); }

 private:
  std::map<Value, std::vector<RowId>> buckets_;
  static const std::vector<RowId> kEmpty;
};

}  // namespace qc::storage
