// Typed columnar storage. Each column stores its cells in a contiguous
// vector of the native type plus a null bitmap, so a 13-column million-row
// BENCH table costs ~100 MB instead of the ~0.5 GB a row-of-variants
// layout would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/value.h"

namespace qc::storage {

class ColumnStore {
 public:
  explicit ColumnStore(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return nulls_.size(); }

  /// Append one cell; `v` must already be validated against the schema.
  void Append(const Value& v) {
    nulls_.push_back(v.is_null() ? 1 : 0);
    switch (type_) {
      case ValueType::kInt: ints_.push_back(v.is_null() ? 0 : v.as_int()); break;
      case ValueType::kDouble: doubles_.push_back(v.is_null() ? 0.0 : v.numeric()); break;
      case ValueType::kString: strings_.push_back(v.is_null() ? std::string() : v.as_string()); break;
      case ValueType::kNull: throw StorageError("column of type NULL");
    }
  }

  Value Get(size_t i) const {
    if (nulls_[i]) return Value::Null();
    switch (type_) {
      case ValueType::kInt: return Value(ints_[i]);
      case ValueType::kDouble: return Value(doubles_[i]);
      case ValueType::kString: return Value(strings_[i]);
      case ValueType::kNull: break;
    }
    throw StorageError("column of type NULL");
  }

  void Set(size_t i, const Value& v) {
    nulls_[i] = v.is_null() ? 1 : 0;
    if (v.is_null()) return;
    switch (type_) {
      case ValueType::kInt: ints_[i] = v.as_int(); break;
      case ValueType::kDouble: doubles_[i] = v.numeric(); break;
      case ValueType::kString: strings_[i] = v.as_string(); break;
      case ValueType::kNull: throw StorageError("column of type NULL");
    }
  }

  /// Fast typed access for hot query paths (caller checked type & null).
  int64_t GetInt(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }
  bool IsNull(size_t i) const { return nulls_[i] != 0; }

 private:
  ValueType type_;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace qc::storage
