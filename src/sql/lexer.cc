#include "sql/lexer.h"

#include <cctype>

#include "common/error.h"

namespace qc::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();

  auto push = [&](Token t, size_t offset) {
    t.offset = offset;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;

    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      Token t;
      t.type = TokenType::kIdentifier;
      t.text = sql.substr(i, j - i);
      push(std::move(t), start);
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      bool is_float = false;
      if (j < n && sql[j] == '.' && j + 1 < n && std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      }
      Token t;
      const std::string text = sql.substr(i, j - i);
      if (is_float) {
        t.type = TokenType::kFloat;
        t.literal = Value(std::stod(text));
      } else {
        t.type = TokenType::kInteger;
        t.literal = Value(static_cast<int64_t>(std::stoll(text)));
      }
      push(std::move(t), start);
      i = j;
      continue;
    }

    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) throw ParseError("unterminated string literal at offset " + std::to_string(i));
      Token t;
      t.type = TokenType::kString;
      t.literal = Value(std::move(text));
      push(std::move(t), start);
      i = j;
      continue;
    }

    if (c == '$') {
      size_t j = i + 1;
      while (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) ++j;
      if (j == i + 1) throw ParseError("'$' must be followed by a parameter number");
      Token t;
      t.type = TokenType::kParam;
      const int64_t one_based = std::stoll(sql.substr(i + 1, j - i - 1));
      if (one_based < 1) throw ParseError("parameter numbers are 1-based");
      t.number = one_based - 1;
      push(std::move(t), start);
      i = j;
      continue;
    }

    if (c == '?') {
      Token t;
      t.type = TokenType::kParam;
      t.number = -1;  // positional; parser assigns the next index
      push(std::move(t), start);
      ++i;
      continue;
    }

    // Two-character operators first.
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
        Token t;
        t.type = TokenType::kSymbol;
        t.text = two == "!=" ? "<>" : two;  // normalize != to <>
        push(std::move(t), start);
        i += 2;
        continue;
      }
    }

    if (std::string("(),.*=<>;+-/").find(c) != std::string::npos) {
      Token t;
      t.type = TokenType::kSymbol;
      t.text = std::string(1, c);
      push(std::move(t), start);
      ++i;
      continue;
    }

    throw ParseError(std::string("unexpected character '") + c + "' at offset " + std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace qc::sql
