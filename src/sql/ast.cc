#include "sql/ast.h"

#include "common/error.h"

namespace qc::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  return op != BinaryOp::kAnd && op != BinaryOp::kOr;
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

Value EvalArithValue(ArithOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    throw BindError(std::string("arithmetic requires numeric operands ('") +
                    ArithOpName(op) + "')");
  }
  if (op == ArithOp::kDiv) {
    const double divisor = rhs.numeric();
    if (divisor == 0.0) return Value::Null();
    return Value(lhs.numeric() / divisor);
  }
  if (lhs.is_int() && rhs.is_int()) {
    int64_t out = 0;
    bool overflow = false;
    switch (op) {
      case ArithOp::kAdd: overflow = __builtin_add_overflow(lhs.as_int(), rhs.as_int(), &out); break;
      case ArithOp::kSub: overflow = __builtin_sub_overflow(lhs.as_int(), rhs.as_int(), &out); break;
      case ArithOp::kMul: overflow = __builtin_mul_overflow(lhs.as_int(), rhs.as_int(), &out); break;
      case ArithOp::kDiv: break;
    }
    if (!overflow) return Value(out);
    // fall through: overflow degrades to double, like the SUM accumulator
  }
  const double l = lhs.numeric();
  const double r = rhs.numeric();
  switch (op) {
    case ArithOp::kAdd: return Value(l + r);
    case ArithOp::kSub: return Value(l - r);
    case ArithOp::kMul: return Value(l * r);
    case ArithOp::kDiv: break;
  }
  return Value::Null();
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone: return "";
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->value = std::move(v);
  return e;
}

ExprPtr Expr::Param(uint32_t index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

ExprPtr Expr::Column(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnaryNot;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Between(ExprPtr subject, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBetween;
  e->negated = negated;
  e->children.push_back(std::move(subject));
  e->children.push_back(std::move(lo));
  e->children.push_back(std::move(hi));
  return e;
}

ExprPtr Expr::In(ExprPtr subject, std::vector<ExprPtr> list, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIn;
  e->negated = negated;
  e->children.push_back(std::move(subject));
  for (auto& item : list) e->children.push_back(std::move(item));
  return e;
}

ExprPtr Expr::Like(ExprPtr subject, ExprPtr pattern, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLike;
  e->negated = negated;
  e->children.push_back(std::move(subject));
  e->children.push_back(std::move(pattern));
  return e;
}

ExprPtr Expr::IsNull(ExprPtr subject, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kIsNull;
  e->negated = negated;
  e->children.push_back(std::move(subject));
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kArith;
  e->arith_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->value = value;
  e->param_index = param_index;
  e->qualifier = qualifier;
  e->column = column;
  e->table_slot = table_slot;
  e->column_index = column_index;
  e->op = op;
  e->arith_op = arith_op;
  e->negated = negated;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

SelectStmt SelectStmt::Clone() const {
  SelectStmt out;
  out.items.reserve(items.size());
  for (const SelectItem& item : items) {
    SelectItem copy;
    copy.kind = item.kind;
    copy.func = item.func;
    if (item.expr) copy.expr = item.expr->Clone();
    out.items.push_back(std::move(copy));
  }
  out.from = from;
  if (where) out.where = where->Clone();
  out.group_by.reserve(group_by.size());
  for (const auto& g : group_by) out.group_by.push_back(g->Clone());
  out.order_by.reserve(order_by.size());
  for (const OrderKey& key : order_by) {
    OrderKey copy;
    copy.column = key.column->Clone();
    copy.descending = key.descending;
    out.order_by.push_back(std::move(copy));
  }
  out.limit = limit;
  out.param_count = param_count;
  return out;
}

}  // namespace qc::sql
