#include "sql/evaluator.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"

namespace qc::sql {

namespace {

using storage::Row;
using storage::RowId;
using storage::Table;

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Where column references read their cells from: either stored rows
/// (per-slot row ids) or an explicit row image for one slot.
struct EvalContext {
  const BoundQuery* query = nullptr;               // null when row image mode
  const std::vector<RowId>* rows = nullptr;        // per-slot current row ids
  const Row* row_image = nullptr;                  // explicit single-slot image
  int32_t image_slot = 0;
  const std::vector<Value>* params = nullptr;
};

Value EvalScalarCtx(const EvalContext& ctx, const Expr& e);

std::optional<bool> EvalPredCtx(const EvalContext& ctx, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kUnaryNot: {
      auto inner = EvalPredCtx(ctx, *e.children[0]);
      if (!inner) return std::nullopt;
      return !*inner;
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kAnd) {
        auto l = EvalPredCtx(ctx, *e.children[0]);
        if (l && !*l) return false;  // definite false short-circuits
        auto r = EvalPredCtx(ctx, *e.children[1]);
        if (r && !*r) return false;
        if (l && r) return true;
        return std::nullopt;
      }
      if (e.op == BinaryOp::kOr) {
        auto l = EvalPredCtx(ctx, *e.children[0]);
        if (l && *l) return true;
        auto r = EvalPredCtx(ctx, *e.children[1]);
        if (r && *r) return true;
        if (l && r) return false;
        return std::nullopt;
      }
      const Value lhs = EvalScalarCtx(ctx, *e.children[0]);
      const Value rhs = EvalScalarCtx(ctx, *e.children[1]);
      if (lhs.is_null() || rhs.is_null()) return std::nullopt;
      const auto cmp = lhs.compare(rhs);
      switch (e.op) {
        case BinaryOp::kEq: return cmp == std::strong_ordering::equal;
        case BinaryOp::kNe: return cmp != std::strong_ordering::equal;
        case BinaryOp::kLt: return cmp == std::strong_ordering::less;
        case BinaryOp::kLe: return cmp != std::strong_ordering::greater;
        case BinaryOp::kGt: return cmp == std::strong_ordering::greater;
        case BinaryOp::kGe: return cmp != std::strong_ordering::less;
        default: break;
      }
      return std::nullopt;
    }
    case Expr::Kind::kBetween: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const Value lo = EvalScalarCtx(ctx, *e.children[1]);
      const Value hi = EvalScalarCtx(ctx, *e.children[2]);
      if (subject.is_null() || lo.is_null() || hi.is_null()) return std::nullopt;
      const bool in = subject >= lo && subject <= hi;
      return e.negated ? !in : in;
    }
    case Expr::Kind::kIn: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      if (subject.is_null()) return std::nullopt;
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        const Value item = EvalScalarCtx(ctx, *e.children[i]);
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (subject == item) return e.negated ? std::optional<bool>(false) : std::optional<bool>(true);
      }
      if (saw_null) return std::nullopt;  // NOT IN / IN with NULL member: unknown
      return e.negated ? std::optional<bool>(true) : std::optional<bool>(false);
    }
    case Expr::Kind::kLike: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const Value pattern = EvalScalarCtx(ctx, *e.children[1]);
      if (subject.is_null() || pattern.is_null()) return std::nullopt;
      if (!subject.is_string() || !pattern.is_string()) {
        throw BindError("LIKE requires string operands");
      }
      const bool match = LikeMatch(subject.as_string(), pattern.as_string());
      return e.negated ? !match : match;
    }
    case Expr::Kind::kIsNull: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const bool is_null = subject.is_null();
      return e.negated ? !is_null : is_null;
    }
    default:
      throw BindError("expression is not a predicate: " + std::to_string(int(e.kind)));
  }
}

Value EvalScalarCtx(const EvalContext& ctx, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.value;
    case Expr::Kind::kParam: {
      if (!ctx.params || e.param_index >= ctx.params->size()) {
        throw BindError("unbound parameter $" + std::to_string(e.param_index + 1));
      }
      return (*ctx.params)[e.param_index];
    }
    case Expr::Kind::kColumn: {
      if (ctx.row_image) {
        if (e.table_slot != ctx.image_slot) {
          throw BindError("row-image evaluation crossed table slots");
        }
        return ctx.row_image->at(e.column_index);
      }
      const Table& table = ctx.query->table(e.table_slot);
      return table.column_store(e.column_index).Get((*ctx.rows)[e.table_slot]);
    }
    default:
      throw BindError("expected a scalar expression");
  }
}

// ---------------------------------------------------------------------------
// Access-path selection
// ---------------------------------------------------------------------------

/// Split a WHERE tree into its top-level AND conjuncts.
void SplitConjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinaryOp::kAnd) {
    SplitConjuncts(*e.children[0], out);
    SplitConjuncts(*e.children[1], out);
    return;
  }
  out.push_back(&e);
}

/// Which table slots does `e` reference?
void CollectSlots(const Expr& e, std::vector<bool>& slots) {
  if (e.kind == Expr::Kind::kColumn) {
    if (e.table_slot >= 0 && static_cast<size_t>(e.table_slot) < slots.size()) {
      slots[e.table_slot] = true;
    }
    return;
  }
  for (const ExprPtr& c : e.children) CollectSlots(*c, slots);
}

std::optional<Value> ConstValue(const Expr& e, const std::vector<Value>& params) {
  if (e.kind == Expr::Kind::kLiteral) return e.value;
  if (e.kind == Expr::Kind::kParam) {
    if (e.param_index >= params.size()) throw BindError("unbound parameter");
    return params[e.param_index];
  }
  return std::nullopt;
}

/// A LIKE pattern with no wildcards is an exact match usable by an index.
std::optional<std::string> ExactLikePattern(const Value& pattern) {
  if (!pattern.is_string()) return std::nullopt;
  const std::string& p = pattern.as_string();
  if (p.find('%') != std::string::npos || p.find('_') != std::string::npos) return std::nullopt;
  return p;
}

struct IndexProbe {
  enum class Kind { kEq, kRange } kind = Kind::kEq;
  uint32_t column = 0;
  Value eq;                    // kEq
  Value lo, hi;                // kRange (null = unbounded)
  bool lo_inclusive = true, hi_inclusive = true;
};

/// Try to turn one conjunct into index probes on table `slot`. Returns true
/// and appends probes whose UNION covers all rows that can satisfy the
/// conjunct (a single probe for eq/range; several for IN and OR-of-ranges).
bool ExtractProbes(const Expr& e, int32_t slot, const Table& table,
                   const std::vector<Value>& params, std::vector<IndexProbe>& out) {
  auto column_of = [&](const Expr& c) -> std::optional<uint32_t> {
    if (c.kind == Expr::Kind::kColumn && c.table_slot == slot) {
      return static_cast<uint32_t>(c.column_index);
    }
    return std::nullopt;
  };

  switch (e.kind) {
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kOr) {
        // OR-of-ranges on one column (Set Query Q3B). Every disjunct must
        // itself extract, and all probes must target the same column.
        std::vector<IndexProbe> probes;
        if (!ExtractProbes(*e.children[0], slot, table, params, probes)) return false;
        if (!ExtractProbes(*e.children[1], slot, table, params, probes)) return false;
        if (probes.empty()) return false;
        for (const IndexProbe& p : probes) {
          if (p.column != probes[0].column) return false;
        }
        out.insert(out.end(), probes.begin(), probes.end());
        return true;
      }
      if (!IsComparison(e.op)) return false;
      // col OP const, or const OP col (flip).
      auto lcol = column_of(*e.children[0]);
      auto rcol = column_of(*e.children[1]);
      std::optional<uint32_t> col;
      std::optional<Value> constant;
      BinaryOp op = e.op;
      if (lcol && (constant = ConstValue(*e.children[1], params))) {
        col = lcol;
      } else if (rcol && (constant = ConstValue(*e.children[0], params))) {
        col = rcol;
        switch (op) {  // flip operand order
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return false;
      }
      if (constant->is_null()) return false;  // NULL comparison selects nothing
      IndexProbe probe;
      probe.column = *col;
      switch (op) {
        case BinaryOp::kEq:
          if (!table.CanLookupEqual(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kEq;
          probe.eq = *constant;
          break;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
          if (!table.HasOrderedIndex(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kRange;
          probe.hi = *constant;
          probe.hi_inclusive = (op == BinaryOp::kLe);
          break;
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!table.HasOrderedIndex(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kRange;
          probe.lo = *constant;
          probe.lo_inclusive = (op == BinaryOp::kGe);
          break;
        default:
          return false;  // <> is not index-friendly
      }
      out.push_back(std::move(probe));
      return true;
    }
    case Expr::Kind::kBetween: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      auto lo = ConstValue(*e.children[1], params);
      auto hi = ConstValue(*e.children[2], params);
      if (!col || !lo || !hi || lo->is_null() || hi->is_null()) return false;
      if (!table.HasOrderedIndex(*col)) return false;
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kRange;
      probe.column = *col;
      probe.lo = *lo;
      probe.hi = *hi;
      out.push_back(std::move(probe));
      return true;
    }
    case Expr::Kind::kIn: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      if (!col || !table.CanLookupEqual(*col)) return false;
      std::vector<IndexProbe> probes;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = ConstValue(*e.children[i], params);
        if (!item) return false;
        if (item->is_null()) continue;
        IndexProbe probe;
        probe.kind = IndexProbe::Kind::kEq;
        probe.column = *col;
        probe.eq = *item;
        probes.push_back(std::move(probe));
      }
      out.insert(out.end(), probes.begin(), probes.end());
      return true;
    }
    case Expr::Kind::kLike: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      auto pattern = ConstValue(*e.children[1], params);
      if (!col || !pattern || !table.CanLookupEqual(*col)) return false;
      auto exact = ExactLikePattern(*pattern);
      if (!exact) return false;
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kEq;
      probe.column = *col;
      probe.eq = Value(*exact);
      out.push_back(std::move(probe));
      return true;
    }
    default:
      return false;
  }
}

std::vector<RowId> RunProbes(const Table& table, const std::vector<IndexProbe>& probes) {
  std::vector<RowId> rows;
  for (const IndexProbe& probe : probes) {
    if (probe.kind == IndexProbe::Kind::kEq) {
      const auto& bucket = table.LookupEqual(probe.column, probe.eq);
      rows.insert(rows.end(), bucket.begin(), bucket.end());
    } else {
      auto range = table.LookupRange(probe.column, probe.lo, probe.lo_inclusive,
                                     probe.hi, probe.hi_inclusive);
      rows.insert(rows.end(), range.begin(), range.end());
    }
  }
  if (probes.size() > 1) {  // union semantics: dedupe overlaps
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  return rows;
}

/// Pick the cheapest indexed conjunct among `conjuncts` (all referencing
/// only `slot`), and return its candidate row ids. nullopt → full scan.
/// Losing conjuncts are never materialized: all-equality candidates are
/// sized exactly from index bucket sizes (IN members hit disjoint
/// buckets), and only the winner's rows are fetched.
std::optional<std::vector<RowId>> IndexedCandidates(const Table& table, int32_t slot,
                                                    const std::vector<const Expr*>& conjuncts,
                                                    const std::vector<Value>& params) {
  std::vector<std::vector<IndexProbe>> candidates;
  for (const Expr* conjunct : conjuncts) {
    std::vector<IndexProbe> probes;
    if (ExtractProbes(*conjunct, slot, table, params, probes)) {
      candidates.push_back(std::move(probes));
    }
  }
  if (candidates.empty()) return std::nullopt;

  const std::vector<IndexProbe>* eq_winner = nullptr;
  size_t eq_winner_size = 0;
  const std::vector<IndexProbe>* first_range = nullptr;
  for (const std::vector<IndexProbe>& probes : candidates) {
    const bool all_eq = std::all_of(probes.begin(), probes.end(), [](const IndexProbe& p) {
      return p.kind == IndexProbe::Kind::kEq;
    });
    if (!all_eq) {
      if (!first_range) first_range = &probes;
      continue;
    }
    size_t size = 0;
    for (const IndexProbe& p : probes) size += table.LookupEqual(p.column, p.eq).size();
    if (!eq_winner || size < eq_winner_size) {
      eq_winner = &probes;
      eq_winner_size = size;
    }
  }
  // Prefer the sized equality winner: its candidate count is known, while
  // a range conjunct cannot be sized without materializing its rows.
  if (eq_winner) {
    if (eq_winner_size == 0) return std::vector<RowId>{};
    return RunProbes(table, *eq_winner);
  }
  // Only range candidates remain: run one instead of materializing every
  // candidate just to compare sizes.
  return RunProbes(table, *first_range);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct Accumulator {
  AggFunc func = AggFunc::kNone;
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool sum_is_int = true;
  Value min, max;

  void Add(const Value& v) {
    if (func == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;  // SQL aggregates skip NULLs
    ++count;
    switch (func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.is_int()) {
          int_sum += v.as_int();
        } else {
          sum_is_int = false;
        }
        double_sum += v.numeric();
        break;
      case AggFunc::kMin:
        if (min.is_null() || v < min) min = v;
        break;
      case AggFunc::kMax:
        if (max.is_null() || v > max) max = v;
        break;
      default:
        break;
    }
  }

  Value Result() const {
    switch (func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_is_int ? Value(int_sum) : Value(double_sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value(double_sum / static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
      case AggFunc::kNone:
        break;
    }
    return Value::Null();
  }
};

struct RowVectorHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x811c9dc5;
    for (const Value& v : row) h = h * 31 + v.Hash();
    return h;
  }
};

// ---------------------------------------------------------------------------
// Top-level execution
// ---------------------------------------------------------------------------

std::vector<std::string> OutputColumnNames(const BoundQuery& query) {
  const SelectStmt& stmt = query.stmt();
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        for (size_t slot = 0; slot < query.tables().size(); ++slot) {
          const Table& table = query.table(slot);
          for (const auto& col : table.schema().columns()) {
            names.push_back(query.tables().size() > 1
                                ? ToUpper(stmt.from[slot].effective_name()) + "." + col.name
                                : col.name);
          }
        }
        break;
      case SelectItem::Kind::kColumn:
        names.push_back(item.expr->column);
        break;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          names.push_back("COUNT(*)");
        } else {
          names.push_back(std::string(AggFuncName(item.func)) + "(" + item.expr->column + ")");
        }
        break;
    }
  }
  return names;
}

class Execution {
 public:
  Execution(const BoundQuery& query, const std::vector<Value>& params)
      : query_(query), params_(params), stmt_(query.stmt()) {
    if (params.size() < stmt_.param_count) {
      throw BindError("statement needs " + std::to_string(stmt_.param_count) +
                      " parameters, got " + std::to_string(params.size()));
    }
    ctx_.query = &query_;
    ctx_.params = &params_;
    grouped_ = !stmt_.group_by.empty();
    for (const SelectItem& item : stmt_.items) {
      if (item.kind == SelectItem::Kind::kAggregate) has_aggregates_ = true;
    }
    result_ = ResultSet(OutputColumnNames(query_));
  }

  ResultSet Run() {
    if (stmt_.where) SplitConjuncts(*stmt_.where, conjuncts_);
    if (query_.tables().size() == 1) {
      RunSingle();
    } else {
      RunJoin();
    }
    EmitGroups();
    ApplyOrderAndLimit();
    return std::move(result_);
  }

 private:
  void RunSingle() {
    const Table& table = query_.table(0);
    auto candidates = IndexedCandidates(table, 0, conjuncts_, params_);
    std::vector<RowId> tuple(1);
    auto consider = [&](RowId row) {
      tuple[0] = row;
      ctx_.rows = &tuple;
      if (stmt_.where) {
        auto keep = EvalPredCtx(ctx_, *stmt_.where);
        if (!keep || !*keep) return;
      }
      Consume(tuple);
    };
    if (candidates) {
      for (RowId row : *candidates) consider(row);
    } else {
      table.ForEachRow(consider);
    }
  }

  /// Conjuncts referencing only `slot`.
  std::vector<const Expr*> LocalConjuncts(int32_t slot) const {
    std::vector<const Expr*> out;
    for (const Expr* conjunct : conjuncts_) {
      std::vector<bool> slots(query_.tables().size(), false);
      CollectSlots(*conjunct, slots);
      bool local = true;
      for (size_t s = 0; s < slots.size(); ++s) {
        if (slots[s] && static_cast<int32_t>(s) != slot) local = false;
      }
      if (local) out.push_back(conjunct);
    }
    return out;
  }

  /// Rows of `slot` that satisfy all of that slot's local conjuncts.
  std::vector<RowId> FilteredSide(int32_t slot, const std::vector<const Expr*>& local) {
    const Table& table = query_.table(slot);
    auto candidates = IndexedCandidates(table, slot, local, params_);
    std::vector<RowId> out;
    std::vector<RowId> tuple(query_.tables().size(), 0);
    auto consider = [&](RowId row) {
      tuple[slot] = row;
      ctx_.rows = &tuple;
      for (const Expr* conjunct : local) {
        auto keep = EvalPredCtx(ctx_, *conjunct);
        if (!keep || !*keep) return;
      }
      out.push_back(row);
    };
    if (candidates) {
      for (RowId row : *candidates) consider(row);
    } else {
      table.ForEachRow(consider);
    }
    return out;
  }

  void RunJoin() {
    // Find an equi-join conjunct colA = colB across the two slots.
    const Expr* join_lhs = nullptr;
    const Expr* join_rhs = nullptr;
    for (const Expr* conjunct : conjuncts_) {
      if (conjunct->kind != Expr::Kind::kBinary || conjunct->op != BinaryOp::kEq) continue;
      const Expr& l = *conjunct->children[0];
      const Expr& r = *conjunct->children[1];
      if (l.kind == Expr::Kind::kColumn && r.kind == Expr::Kind::kColumn &&
          l.table_slot != r.table_slot) {
        join_lhs = &l;
        join_rhs = &r;
        break;
      }
    }

    auto local0 = LocalConjuncts(0);
    auto local1 = LocalConjuncts(1);
    std::vector<RowId> side0 = FilteredSide(0, local0);
    std::vector<RowId> side1 = FilteredSide(1, local1);

    std::vector<RowId> tuple(2);
    auto consider = [&](RowId r0, RowId r1) {
      tuple[0] = r0;
      tuple[1] = r1;
      ctx_.rows = &tuple;
      if (stmt_.where) {
        auto keep = EvalPredCtx(ctx_, *stmt_.where);
        if (!keep || !*keep) return;
      }
      Consume(tuple);
    };

    if (join_lhs) {
      // Hash join: build on the smaller filtered side.
      const Expr* key0 = join_lhs->table_slot == 0 ? join_lhs : join_rhs;
      const Expr* key1 = join_lhs->table_slot == 0 ? join_rhs : join_lhs;
      const bool build0 = side0.size() <= side1.size();
      const auto& build_rows = build0 ? side0 : side1;
      const auto& probe_rows = build0 ? side1 : side0;
      const Expr* build_key = build0 ? key0 : key1;
      const Expr* probe_key = build0 ? key1 : key0;
      const int build_slot = build0 ? 0 : 1;
      const int probe_slot = build0 ? 1 : 0;

      std::unordered_map<Value, std::vector<RowId>, ValueHash> hash;
      hash.reserve(build_rows.size());
      const auto& build_store = query_.table(build_slot).column_store(build_key->column_index);
      for (RowId row : build_rows) {
        Value key = build_store.Get(row);
        if (key.is_null()) continue;  // NULL never equi-joins
        hash[std::move(key)].push_back(row);
      }
      const auto& probe_store = query_.table(probe_slot).column_store(probe_key->column_index);
      for (RowId row : probe_rows) {
        Value key = probe_store.Get(row);
        if (key.is_null()) continue;
        auto it = hash.find(key);
        if (it == hash.end()) continue;
        for (RowId match : it->second) {
          if (build_slot == 0) {
            consider(match, row);
          } else {
            consider(row, match);
          }
        }
      }
      return;
    }

    // No equi-join conjunct: nested loop over the filtered sides. This is
    // quadratic and intended for small inputs (none of the paper workloads
    // hit it); correctness over speed.
    for (RowId r0 : side0) {
      for (RowId r1 : side1) consider(r0, r1);
    }
  }

  void Consume(const std::vector<RowId>& tuple) {
    if (!has_aggregates_ && !grouped_) {
      result_.AddRow(ProjectRow(tuple));
      return;
    }
    Row key;
    key.reserve(stmt_.group_by.size());
    ctx_.rows = &tuple;
    for (const ExprPtr& g : stmt_.group_by) key.push_back(EvalScalarCtx(ctx_, *g));
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      std::vector<Accumulator> accs;
      for (const SelectItem& item : stmt_.items) {
        if (item.kind == SelectItem::Kind::kAggregate) {
          Accumulator acc;
          acc.func = item.func;
          accs.push_back(acc);
        }
      }
      it = groups_.emplace(std::move(key), std::move(accs)).first;
      group_order_.push_back(&*it);
    }
    size_t acc_index = 0;
    for (const SelectItem& item : stmt_.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      Accumulator& acc = it->second[acc_index++];
      if (item.func == AggFunc::kCountStar) {
        acc.Add(Value::Null());
      } else {
        acc.Add(EvalScalarCtx(ctx_, *item.expr));
      }
    }
  }

  Row ProjectRow(const std::vector<RowId>& tuple) {
    Row out;
    ctx_.rows = &tuple;
    for (const SelectItem& item : stmt_.items) {
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          for (size_t slot = 0; slot < query_.tables().size(); ++slot) {
            const Table& table = query_.table(slot);
            for (size_t c = 0; c < table.schema().size(); ++c) {
              out.push_back(table.column_store(static_cast<uint32_t>(c)).Get(tuple[slot]));
            }
          }
          break;
        case SelectItem::Kind::kColumn:
          out.push_back(EvalScalarCtx(ctx_, *item.expr));
          break;
        case SelectItem::Kind::kAggregate:
          throw BindError("aggregate in non-aggregate projection");
      }
    }
    return out;
  }

  void ApplyOrderAndLimit() {
    if (!query_.order_outputs().empty()) {
      std::vector<std::pair<size_t, bool>> keys;
      keys.reserve(query_.order_outputs().size());
      for (const auto& key : query_.order_outputs()) {
        keys.emplace_back(key.output_index, key.descending);
      }
      result_.SortByKeys(keys);
    }
    if (stmt_.limit) result_.Truncate(*stmt_.limit);
  }

  void EmitGroups() {
    if (!has_aggregates_ && !grouped_) return;
    if (groups_.empty() && !grouped_) {
      // Aggregates over an empty input still yield one row (COUNT=0, SUM=NULL).
      Row row;
      for (const SelectItem& item : stmt_.items) {
        Accumulator acc;
        acc.func = item.func;
        row.push_back(acc.Result());
      }
      result_.AddRow(std::move(row));
      return;
    }
    for (const auto* entry : group_order_) {
      const Row& key = entry->first;
      const std::vector<Accumulator>& accs = entry->second;
      Row row;
      size_t acc_index = 0;
      for (const SelectItem& item : stmt_.items) {
        if (item.kind == SelectItem::Kind::kAggregate) {
          row.push_back(accs[acc_index++].Result());
        } else {
          // Bound checks guarantee plain columns are grouping keys; emit the
          // key cell matching this column.
          const Expr& col = *item.expr;
          size_t pos = 0;
          for (size_t g = 0; g < stmt_.group_by.size(); ++g) {
            if (stmt_.group_by[g]->table_slot == col.table_slot &&
                stmt_.group_by[g]->column_index == col.column_index) {
              pos = g;
              break;
            }
          }
          row.push_back(key[pos]);
        }
      }
      result_.AddRow(std::move(row));
    }
  }

  const BoundQuery& query_;
  const std::vector<Value>& params_;
  const SelectStmt& stmt_;
  EvalContext ctx_;
  std::vector<const Expr*> conjuncts_;
  bool grouped_ = false;
  bool has_aggregates_ = false;
  ResultSet result_;
  std::unordered_map<Row, std::vector<Accumulator>, RowVectorHash> groups_;
  std::vector<const std::pair<const Row, std::vector<Accumulator>>*> group_order_;
};

}  // namespace

ResultSet Execute(const BoundQuery& query, const std::vector<Value>& params) {
  return Execution(query, params).Run();
}

Value EvalScalar(const BoundQuery& query, const Expr& expr, const std::vector<storage::RowId>& rows,
                 const std::vector<Value>& params) {
  EvalContext ctx;
  ctx.query = &query;
  ctx.rows = &rows;
  ctx.params = &params;
  return EvalScalarCtx(ctx, expr);
}

std::optional<bool> EvalPredicate(const BoundQuery& query, const Expr& expr,
                                  const std::vector<storage::RowId>& rows,
                                  const std::vector<Value>& params) {
  EvalContext ctx;
  ctx.query = &query;
  ctx.rows = &rows;
  ctx.params = &params;
  return EvalPredCtx(ctx, expr);
}

std::optional<bool> EvalPredicateOnRow(const Expr& expr, const storage::Row& row,
                                       const std::vector<Value>& params, int32_t table_slot) {
  EvalContext ctx;
  ctx.row_image = &row;
  ctx.image_slot = table_slot;
  ctx.params = &params;
  return EvalPredCtx(ctx, expr);
}

}  // namespace qc::sql
