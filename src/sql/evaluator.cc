#include "sql/evaluator.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"
#include "sql/exec_common.h"
#include "sql/planner.h"
#include "sql/vectorized.h"

namespace qc::sql {

namespace {

using storage::Row;
using storage::RowId;
using storage::Table;

/// Row-pair count fed through the quadratic no-equi-conjunct join path.
/// Monotonic; a production deployment watching STATS can alert on growth.
std::atomic<uint64_t> g_nested_loop_rows{0};

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Where column references read their cells from: either stored rows
/// (per-slot row ids) or an explicit row image for one slot.
struct EvalContext {
  const BoundQuery* query = nullptr;               // null when row image mode
  const std::vector<RowId>* rows = nullptr;        // per-slot current row ids
  const Row* row_image = nullptr;                  // explicit single-slot image
  int32_t image_slot = 0;
  const std::vector<Value>* params = nullptr;
};

Value EvalScalarCtx(const EvalContext& ctx, const Expr& e);

std::optional<bool> EvalPredCtx(const EvalContext& ctx, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kUnaryNot: {
      auto inner = EvalPredCtx(ctx, *e.children[0]);
      if (!inner) return std::nullopt;
      return !*inner;
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kAnd) {
        auto l = EvalPredCtx(ctx, *e.children[0]);
        if (l && !*l) return false;  // definite false short-circuits
        auto r = EvalPredCtx(ctx, *e.children[1]);
        if (r && !*r) return false;
        if (l && r) return true;
        return std::nullopt;
      }
      if (e.op == BinaryOp::kOr) {
        auto l = EvalPredCtx(ctx, *e.children[0]);
        if (l && *l) return true;
        auto r = EvalPredCtx(ctx, *e.children[1]);
        if (r && *r) return true;
        if (l && r) return false;
        return std::nullopt;
      }
      const Value lhs = EvalScalarCtx(ctx, *e.children[0]);
      const Value rhs = EvalScalarCtx(ctx, *e.children[1]);
      if (lhs.is_null() || rhs.is_null()) return std::nullopt;
      const auto cmp = lhs.compare(rhs);
      switch (e.op) {
        case BinaryOp::kEq: return cmp == std::strong_ordering::equal;
        case BinaryOp::kNe: return cmp != std::strong_ordering::equal;
        case BinaryOp::kLt: return cmp == std::strong_ordering::less;
        case BinaryOp::kLe: return cmp != std::strong_ordering::greater;
        case BinaryOp::kGt: return cmp == std::strong_ordering::greater;
        case BinaryOp::kGe: return cmp != std::strong_ordering::less;
        default: break;
      }
      return std::nullopt;
    }
    case Expr::Kind::kBetween: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const Value lo = EvalScalarCtx(ctx, *e.children[1]);
      const Value hi = EvalScalarCtx(ctx, *e.children[2]);
      if (subject.is_null() || lo.is_null() || hi.is_null()) return std::nullopt;
      const bool in = subject >= lo && subject <= hi;
      return e.negated ? !in : in;
    }
    case Expr::Kind::kIn: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      if (subject.is_null()) return std::nullopt;
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        const Value item = EvalScalarCtx(ctx, *e.children[i]);
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (subject == item) return e.negated ? std::optional<bool>(false) : std::optional<bool>(true);
      }
      if (saw_null) return std::nullopt;  // NOT IN / IN with NULL member: unknown
      return e.negated ? std::optional<bool>(true) : std::optional<bool>(false);
    }
    case Expr::Kind::kLike: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const Value pattern = EvalScalarCtx(ctx, *e.children[1]);
      if (subject.is_null() || pattern.is_null()) return std::nullopt;
      if (!subject.is_string() || !pattern.is_string()) {
        throw BindError("LIKE requires string operands");
      }
      const bool match = LikeMatch(subject.as_string(), pattern.as_string());
      return e.negated ? !match : match;
    }
    case Expr::Kind::kIsNull: {
      const Value subject = EvalScalarCtx(ctx, *e.children[0]);
      const bool is_null = subject.is_null();
      return e.negated ? !is_null : is_null;
    }
    default:
      throw BindError("expression is not a predicate: " + std::to_string(int(e.kind)));
  }
}

Value EvalScalarCtx(const EvalContext& ctx, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.value;
    case Expr::Kind::kParam: {
      if (!ctx.params || e.param_index >= ctx.params->size()) {
        throw BindError("unbound parameter $" + std::to_string(e.param_index + 1));
      }
      return (*ctx.params)[e.param_index];
    }
    case Expr::Kind::kColumn: {
      if (ctx.row_image) {
        if (e.table_slot != ctx.image_slot) {
          throw BindError("row-image evaluation crossed table slots");
        }
        return ctx.row_image->at(e.column_index);
      }
      const Table& table = ctx.query->table(e.table_slot);
      return table.column_store(e.column_index).Get((*ctx.rows)[e.table_slot]);
    }
    case Expr::Kind::kArith:
      return EvalArithValue(e.arith_op, EvalScalarCtx(ctx, *e.children[0]),
                            EvalScalarCtx(ctx, *e.children[1]));
    default:
      throw BindError("expected a scalar expression");
  }
}

/// Which table slots does `e` reference?
void CollectSlots(const Expr& e, std::vector<bool>& slots) {
  if (e.kind == Expr::Kind::kColumn) {
    if (e.table_slot >= 0 && static_cast<size_t>(e.table_slot) < slots.size()) {
      slots[e.table_slot] = true;
    }
    return;
  }
  for (const ExprPtr& c : e.children) CollectSlots(*c, slots);
}

// ---------------------------------------------------------------------------
// Row-at-a-time execution (the general engine and differential oracle)
// ---------------------------------------------------------------------------

class Execution {
 public:
  Execution(const BoundQuery& query, const std::vector<Value>& params)
      : query_(query), params_(params), stmt_(query.stmt()) {
    if (params.size() < stmt_.param_count) {
      throw BindError("statement needs " + std::to_string(stmt_.param_count) +
                      " parameters, got " + std::to_string(params.size()));
    }
    ctx_.query = &query_;
    ctx_.params = &params_;
    grouped_ = !stmt_.group_by.empty();
    for (const SelectItem& item : stmt_.items) {
      if (item.kind == SelectItem::Kind::kAggregate) has_aggregates_ = true;
    }
    result_ = ResultSet(exec::OutputColumnNames(query_));
  }

  ResultSet Run() {
    if (stmt_.where) exec::SplitConjuncts(*stmt_.where, conjuncts_);
    if (query_.tables().size() == 1) {
      RunSingle();
    } else {
      RunJoin();
    }
    if (has_aggregates_ || grouped_) {
      exec::EmitGroupRows(stmt_, groups_, grouped_, result_);
    }
    exec::ApplyOrderAndLimit(query_, result_);
    return std::move(result_);
  }

 private:
  void RunSingle() {
    const Table& table = query_.table(0);
    auto candidates = IndexedCandidates(table, 0, conjuncts_, params_);
    std::vector<RowId> tuple(1);
    auto consider = [&](RowId row) {
      tuple[0] = row;
      ctx_.rows = &tuple;
      if (stmt_.where) {
        auto keep = EvalPredCtx(ctx_, *stmt_.where);
        if (!keep || !*keep) return;
      }
      Consume(tuple);
    };
    if (candidates) {
      for (RowId row : *candidates) consider(row);
    } else {
      table.ForEachRow(consider);
    }
  }

  /// Conjuncts referencing only `slot`.
  std::vector<const Expr*> LocalConjuncts(int32_t slot) const {
    std::vector<const Expr*> out;
    for (const Expr* conjunct : conjuncts_) {
      std::vector<bool> slots(query_.tables().size(), false);
      CollectSlots(*conjunct, slots);
      bool local = true;
      for (size_t s = 0; s < slots.size(); ++s) {
        if (slots[s] && static_cast<int32_t>(s) != slot) local = false;
      }
      if (local) out.push_back(conjunct);
    }
    return out;
  }

  /// Rows of `slot` that satisfy all of that slot's local conjuncts.
  std::vector<RowId> FilteredSide(int32_t slot, const std::vector<const Expr*>& local) {
    const Table& table = query_.table(slot);
    auto candidates = IndexedCandidates(table, slot, local, params_);
    std::vector<RowId> out;
    std::vector<RowId> tuple(query_.tables().size(), 0);
    auto consider = [&](RowId row) {
      tuple[slot] = row;
      ctx_.rows = &tuple;
      for (const Expr* conjunct : local) {
        auto keep = EvalPredCtx(ctx_, *conjunct);
        if (!keep || !*keep) return;
      }
      out.push_back(row);
    };
    if (candidates) {
      for (RowId row : *candidates) consider(row);
    } else {
      table.ForEachRow(consider);
    }
    return out;
  }

  void RunJoin() {
    // Find an equi-join conjunct colA = colB across the two slots.
    const Expr* join_lhs = nullptr;
    const Expr* join_rhs = nullptr;
    for (const Expr* conjunct : conjuncts_) {
      if (conjunct->kind != Expr::Kind::kBinary || conjunct->op != BinaryOp::kEq) continue;
      const Expr& l = *conjunct->children[0];
      const Expr& r = *conjunct->children[1];
      if (l.kind == Expr::Kind::kColumn && r.kind == Expr::Kind::kColumn &&
          l.table_slot != r.table_slot) {
        join_lhs = &l;
        join_rhs = &r;
        break;
      }
    }

    auto local0 = LocalConjuncts(0);
    auto local1 = LocalConjuncts(1);
    std::vector<RowId> side0 = FilteredSide(0, local0);
    std::vector<RowId> side1 = FilteredSide(1, local1);

    std::vector<RowId> tuple(2);
    auto consider = [&](RowId r0, RowId r1) {
      tuple[0] = r0;
      tuple[1] = r1;
      ctx_.rows = &tuple;
      if (stmt_.where) {
        auto keep = EvalPredCtx(ctx_, *stmt_.where);
        if (!keep || !*keep) return;
      }
      Consume(tuple);
    };

    if (join_lhs) {
      // Hash join: build on the smaller filtered side.
      const Expr* key0 = join_lhs->table_slot == 0 ? join_lhs : join_rhs;
      const Expr* key1 = join_lhs->table_slot == 0 ? join_rhs : join_lhs;
      const bool build0 = side0.size() <= side1.size();
      const auto& build_rows = build0 ? side0 : side1;
      const auto& probe_rows = build0 ? side1 : side0;
      const Expr* build_key = build0 ? key0 : key1;
      const Expr* probe_key = build0 ? key1 : key0;
      const int build_slot = build0 ? 0 : 1;
      const int probe_slot = build0 ? 1 : 0;

      std::unordered_map<Value, std::vector<RowId>, ValueHash> hash;
      hash.reserve(build_rows.size());
      const auto& build_store = query_.table(build_slot).column_store(build_key->column_index);
      for (RowId row : build_rows) {
        Value key = build_store.Get(row);
        if (key.is_null()) continue;  // NULL never equi-joins
        hash[std::move(key)].push_back(row);
      }
      const auto& probe_store = query_.table(probe_slot).column_store(probe_key->column_index);
      for (RowId row : probe_rows) {
        Value key = probe_store.Get(row);
        if (key.is_null()) continue;
        auto it = hash.find(key);
        if (it == hash.end()) continue;
        for (RowId match : it->second) {
          if (build_slot == 0) {
            consider(match, row);
          } else {
            consider(row, match);
          }
        }
      }
      return;
    }

    // No equi-join conjunct: nested loop over the filtered sides. This is
    // quadratic and intended for small inputs (none of the paper workloads
    // hit it); correctness over speed. The pair counter makes accidental
    // nested-loop blowups observable in STATS.
    g_nested_loop_rows.fetch_add(side0.size() * side1.size(), std::memory_order_relaxed);
    for (RowId r0 : side0) {
      for (RowId r1 : side1) consider(r0, r1);
    }
  }

  void Consume(const std::vector<RowId>& tuple) {
    if (!has_aggregates_ && !grouped_) {
      result_.AddRow(ProjectRow(tuple));
      return;
    }
    Row key;
    key.reserve(stmt_.group_by.size());
    ctx_.rows = &tuple;
    for (const ExprPtr& g : stmt_.group_by) key.push_back(EvalScalarCtx(ctx_, *g));
    auto& accs = groups_.Touch(std::move(key), stmt_);
    size_t acc_index = 0;
    for (const SelectItem& item : stmt_.items) {
      if (item.kind != SelectItem::Kind::kAggregate) continue;
      exec::Accumulator& acc = accs[acc_index++];
      if (item.func == AggFunc::kCountStar) {
        acc.Add(Value::Null());
      } else {
        acc.Add(EvalScalarCtx(ctx_, *item.expr));
      }
    }
  }

  Row ProjectRow(const std::vector<RowId>& tuple) {
    Row out;
    ctx_.rows = &tuple;
    for (const SelectItem& item : stmt_.items) {
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          for (size_t slot = 0; slot < query_.tables().size(); ++slot) {
            const Table& table = query_.table(slot);
            for (size_t c = 0; c < table.schema().size(); ++c) {
              out.push_back(table.column_store(static_cast<uint32_t>(c)).Get(tuple[slot]));
            }
          }
          break;
        case SelectItem::Kind::kColumn:
        case SelectItem::Kind::kScalar:
          out.push_back(EvalScalarCtx(ctx_, *item.expr));
          break;
        case SelectItem::Kind::kAggregate:
          throw BindError("aggregate in non-aggregate projection");
      }
    }
    return out;
  }

  const BoundQuery& query_;
  const std::vector<Value>& params_;
  const SelectStmt& stmt_;
  EvalContext ctx_;
  std::vector<const Expr*> conjuncts_;
  bool grouped_ = false;
  bool has_aggregates_ = false;
  ResultSet result_;
  exec::GroupState groups_;
};

}  // namespace

RowEngineStats GetRowEngineStats() {
  RowEngineStats s;
  s.join_nested_loop_rows = g_nested_loop_rows.load(std::memory_order_relaxed);
  return s;
}

ResultSet ExecuteRowAtATime(const BoundQuery& query, const std::vector<Value>& params) {
  return Execution(query, params).Run();
}

ResultSet Execute(const BoundQuery& query, const std::vector<Value>& params) {
  if (auto vec = TryExecuteVectorized(query, params)) return std::move(*vec);
  return ExecuteRowAtATime(query, params);
}

Value EvalScalar(const BoundQuery& query, const Expr& expr, const std::vector<storage::RowId>& rows,
                 const std::vector<Value>& params) {
  EvalContext ctx;
  ctx.query = &query;
  ctx.rows = &rows;
  ctx.params = &params;
  return EvalScalarCtx(ctx, expr);
}

std::optional<bool> EvalPredicate(const BoundQuery& query, const Expr& expr,
                                  const std::vector<storage::RowId>& rows,
                                  const std::vector<Value>& params) {
  EvalContext ctx;
  ctx.query = &query;
  ctx.rows = &rows;
  ctx.params = &params;
  return EvalPredCtx(ctx, expr);
}

std::optional<bool> EvalPredicateOnRow(const Expr& expr, const storage::Row& row,
                                       const std::vector<Value>& params, int32_t table_slot) {
  EvalContext ctx;
  ctx.row_image = &row;
  ctx.image_slot = table_slot;
  ctx.params = &params;
  return EvalPredCtx(ctx, expr);
}

}  // namespace qc::sql
