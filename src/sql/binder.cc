#include "sql/binder.h"

#include "common/error.h"
#include "common/strings.h"
#include "sql/parser.h"

namespace qc::sql {

namespace {

class Binder {
 public:
  Binder(SelectStmt& stmt, const storage::Database& db) : stmt_(stmt) {
    for (const TableRef& ref : stmt_.from) {
      const storage::Table* table = db.FindTable(ref.table);
      if (!table) throw BindError("unknown table: " + ref.table);
      tables_.push_back(table);
    }
    if (tables_.empty()) throw BindError("FROM list is empty");
  }

  std::vector<const storage::Table*> Run() {
    for (SelectItem& item : stmt_.items) {
      if (item.expr) BindExpr(*item.expr);
      if (item.kind == SelectItem::Kind::kAggregate && item.expr &&
          item.expr->kind != Expr::Kind::kColumn) {
        throw BindError("aggregate arguments must be plain columns");
      }
    }
    if (stmt_.where) BindExpr(*stmt_.where);
    for (ExprPtr& g : stmt_.group_by) {
      BindExpr(*g);
      if (g->kind != Expr::Kind::kColumn) throw BindError("GROUP BY supports plain columns only");
    }
    for (OrderKey& key : stmt_.order_by) BindExpr(*key.column);
    CheckGrouping();
    return tables_;
  }

  /// Map each ORDER BY key to its position in the output row. Keys must be
  /// projected — sorting on non-output columns is not supported.
  std::vector<BoundQuery::OrderOutput> ResolveOrderOutputs() const {
    std::vector<BoundQuery::OrderOutput> out;
    for (const OrderKey& key : stmt_.order_by) {
      // Walk the select list counting output positions ('*' expands).
      size_t position = 0;
      bool found = false;
      for (const SelectItem& item : stmt_.items) {
        switch (item.kind) {
          case SelectItem::Kind::kStar:
            for (size_t slot = 0; slot < tables_.size() && !found; ++slot) {
              for (size_t c = 0; c < tables_[slot]->schema().size(); ++c) {
                if (key.column->table_slot == static_cast<int32_t>(slot) &&
                    key.column->column_index == static_cast<int32_t>(c)) {
                  found = true;
                  break;
                }
                ++position;
              }
            }
            if (!found) {
              // position already advanced inside the loops above
            }
            break;
          case SelectItem::Kind::kColumn:
            if (item.expr->table_slot == key.column->table_slot &&
                item.expr->column_index == key.column->column_index) {
              found = true;
            } else {
              ++position;
            }
            break;
          case SelectItem::Kind::kScalar:
          case SelectItem::Kind::kAggregate:
            ++position;
            break;
        }
        if (found) break;
      }
      if (!found) {
        throw BindError("ORDER BY column must be projected: " + key.column->column);
      }
      out.push_back({position, key.descending});
    }
    return out;
  }

 private:
  void BindExpr(Expr& e) {
    if (e.kind == Expr::Kind::kColumn) {
      BindColumn(e);
      return;
    }
    for (ExprPtr& child : e.children) BindExpr(*child);

    // Bind-time type check for LIKE: silently matching nothing against a
    // numeric column would mask a query bug.
    if (e.kind == Expr::Kind::kLike) {
      const Expr& subject = *e.children[0];
      if (subject.kind == Expr::Kind::kColumn &&
          tables_[subject.table_slot]->schema().column(subject.column_index).type !=
              ValueType::kString) {
        throw BindError("LIKE requires a string column: " + subject.column);
      }
      const Expr& pattern = *e.children[1];
      if (pattern.kind == Expr::Kind::kLiteral && !pattern.value.is_string() &&
          !pattern.value.is_null()) {
        throw BindError("LIKE pattern must be a string");
      }
    }
  }

  void BindColumn(Expr& e) {
    int found_slot = -1;
    int found_col = -1;
    for (size_t slot = 0; slot < tables_.size(); ++slot) {
      if (!e.qualifier.empty() &&
          ToUpper(e.qualifier) != ToUpper(stmt_.from[slot].effective_name()) &&
          ToUpper(e.qualifier) != ToUpper(stmt_.from[slot].table)) {
        continue;
      }
      auto col = tables_[slot]->schema().Find(e.column);
      if (!col) continue;
      if (found_slot >= 0) {
        throw BindError("ambiguous column reference: " + e.column);
      }
      found_slot = static_cast<int>(slot);
      found_col = static_cast<int>(*col);
    }
    if (found_slot < 0) {
      throw BindError("unresolved column: " +
                      (e.qualifier.empty() ? e.column : e.qualifier + "." + e.column));
    }
    e.table_slot = found_slot;
    e.column_index = found_col;
  }

  void CheckGrouping() {
    const bool grouped = !stmt_.group_by.empty();
    bool has_aggregate = false;
    bool has_plain_column = false;
    bool has_star = false;
    bool has_scalar = false;
    for (const SelectItem& item : stmt_.items) {
      switch (item.kind) {
        case SelectItem::Kind::kAggregate: has_aggregate = true; break;
        case SelectItem::Kind::kColumn: has_plain_column = true; break;
        case SelectItem::Kind::kScalar: has_scalar = true; break;
        case SelectItem::Kind::kStar: has_star = true; break;
      }
    }
    if (grouped) {
      if (has_star) throw BindError("SELECT * is not allowed with GROUP BY");
      if (has_scalar) {
        throw BindError("grouped SELECT supports group keys and aggregates only");
      }
      // Every plain projected column must be a grouping key.
      for (const SelectItem& item : stmt_.items) {
        if (item.kind != SelectItem::Kind::kColumn) continue;
        bool is_key = false;
        for (const ExprPtr& g : stmt_.group_by) {
          if (g->table_slot == item.expr->table_slot && g->column_index == item.expr->column_index) {
            is_key = true;
            break;
          }
        }
        if (!is_key) {
          throw BindError("projected column " + item.expr->column + " is not a GROUP BY key");
        }
      }
    } else if (has_aggregate && (has_plain_column || has_scalar || has_star)) {
      throw BindError("cannot mix aggregates and plain columns without GROUP BY");
    }
  }

  SelectStmt& stmt_;
  std::vector<const storage::Table*> tables_;
};

}  // namespace

std::shared_ptr<const BoundQuery> Bind(SelectStmt stmt, const storage::Database& db) {
  Binder binder(stmt, db);
  auto tables = binder.Run();
  auto order_outputs = binder.ResolveOrderOutputs();
  return std::make_shared<const BoundQuery>(std::move(stmt), std::move(tables),
                                            std::move(order_outputs));
}

std::shared_ptr<const BoundQuery> ParseAndBind(const std::string& sql, const storage::Database& db) {
  return Bind(Parse(sql), db);
}

}  // namespace qc::sql
