// Access-path selection, shared by the row-at-a-time evaluator and the
// vectorized batch engine (both run exactly the same planner so their
// scan order — and therefore their un-ORDERed output order — matches).
//
// A WHERE clause's top-level AND conjuncts are each tried as an index
// probe set (equality / IN → hash or ordered index, range / BETWEEN /
// OR-of-ranges → ordered index); the planner sizes every candidate and
// materializes only the narrowest. Equality candidates are sized exactly
// from bucket sizes; range candidates are sized with an output-sensitive
// bucket walk (Table::EstimateRangeRows) capped by the best candidate seen
// so far, bounded-both-ends candidates sized before half-open ones so the
// cap tightens early. Before this sizing existed the planner took the
// *first* range conjunct whenever no equality candidate applied — e.g.
// `WHERE K100 < 99 AND KSEQ BETWEEN 1000 AND 2000` materialized ~99% of
// the table instead of the 1000-row BETWEEN (regression-tested in
// tests/sql/planner_test.cc).
#pragma once

#include <optional>
#include <vector>

#include "sql/ast.h"
#include "storage/table.h"

namespace qc::sql {

/// One index lookup the planner wants to run.
struct IndexProbe {
  enum class Kind { kEq, kRange } kind = Kind::kEq;
  uint32_t column = 0;
  Value eq;                    // kEq
  Value lo, hi;                // kRange (null = unbounded)
  bool lo_inclusive = true, hi_inclusive = true;
};

/// Try to turn one conjunct into index probes on table `slot`. Returns true
/// and appends probes whose UNION covers all rows that can satisfy the
/// conjunct (a single probe for eq/range; several for IN and OR-of-ranges).
bool ExtractProbes(const Expr& e, int32_t slot, const storage::Table& table,
                   const std::vector<Value>& params, std::vector<IndexProbe>& out);

/// Materialize a probe set's row ids (union semantics; deduped when more
/// than one probe contributed).
std::vector<storage::RowId> RunProbes(const storage::Table& table,
                                      const std::vector<IndexProbe>& probes);

/// Pick the cheapest indexed conjunct among `conjuncts` (all referencing
/// only `slot`), and return its candidate row ids. nullopt → full scan.
/// Only the winning candidate is ever materialized.
std::optional<std::vector<storage::RowId>> IndexedCandidates(
    const storage::Table& table, int32_t slot, const std::vector<const Expr*>& conjuncts,
    const std::vector<Value>& params);

/// Constant-fold a literal or bound parameter; nullopt for anything else.
std::optional<Value> ConstValue(const Expr& e, const std::vector<Value>& params);

}  // namespace qc::sql
