#include "sql/parser.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"
#include "sql/lexer.h"

namespace qc::sql {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& sql) : tokens_(Lex(sql)) {}

  AnyStatement ParseAny() {
    AnyStatement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = AnyStatement::Kind::kSelect;
      stmt.select = ParseSelect();
      return stmt;
    }
    stmt.kind = AnyStatement::Kind::kDml;
    if (AcceptKeyword("INSERT")) {
      stmt.dml = ParseInsert();
    } else if (AcceptKeyword("UPDATE")) {
      stmt.dml = ParseUpdate();
    } else if (AcceptKeyword("DELETE")) {
      stmt.dml = ParseDelete();
    } else {
      throw ParseError("expected SELECT, INSERT, UPDATE or DELETE at offset " +
                       std::to_string(Peek().offset));
    }
    FinishStatement();
    stmt.dml.param_count = param_count_;
    return stmt;
  }

  SelectStmt ParseSelect() {
    ExpectKeyword("SELECT");
    SelectStmt stmt;
    stmt.items = ParseSelectList();
    ExpectKeyword("FROM");
    stmt.from = ParseFromList();
    if (AcceptKeyword("WHERE")) stmt.where = ParsePredicateExpr();
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      do {
        stmt.group_by.push_back(ParseColumnRef());
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      do {
        OrderKey key;
        key.column = ParseColumnRef();
        if (AcceptKeyword("DESC")) {
          key.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        throw ParseError("LIMIT expects an integer literal at offset " +
                         std::to_string(Peek().offset));
      }
      const int64_t n = Advance().literal.as_int();
      if (n < 0) throw ParseError("LIMIT must be non-negative");
      stmt.limit = static_cast<uint64_t>(n);
    }
    AcceptSymbol(";");
    if (!AtEnd()) {
      throw ParseError("trailing input at offset " + std::to_string(Peek().offset));
    }
    stmt.param_count = param_count_;
    return stmt;
  }

 private:
  void FinishStatement() {
    AcceptSymbol(";");
    if (!AtEnd()) {
      throw ParseError("trailing input at offset " + std::to_string(Peek().offset));
    }
  }

  DmlStmt ParseInsert() {
    ExpectKeyword("INTO");
    DmlStmt stmt;
    stmt.kind = DmlStmt::Kind::kInsert;
    stmt.table = ExpectIdentifier("table name");
    if (AcceptSymbol("(")) {
      do {
        stmt.columns.push_back(ExpectIdentifier("column name"));
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
    }
    ExpectKeyword("VALUES");
    ExpectSymbol("(");
    do {
      stmt.values.push_back(ParseScalar());
    } while (AcceptSymbol(","));
    ExpectSymbol(")");
    return stmt;
  }

  DmlStmt ParseUpdate() {
    DmlStmt stmt;
    stmt.kind = DmlStmt::Kind::kUpdate;
    stmt.table = ExpectIdentifier("table name");
    ExpectKeyword("SET");
    do {
      stmt.columns.push_back(ExpectIdentifier("column name"));
      ExpectSymbol("=");
      stmt.values.push_back(ParseScalar());
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) stmt.where = ParsePredicateExpr();
    return stmt;
  }

  DmlStmt ParseDelete() {
    ExpectKeyword("FROM");
    DmlStmt stmt;
    stmt.kind = DmlStmt::Kind::kDelete;
    stmt.table = ExpectIdentifier("table name");
    if (AcceptKeyword("WHERE")) stmt.where = ParsePredicateExpr();
    return stmt;
  }

  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && ToUpper(t.text) == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  void ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      throw ParseError(std::string("expected ") + kw + " at offset " + std::to_string(Peek().offset));
    }
  }
  bool PeekSymbol(const char* sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool AcceptSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }
  void ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      throw ParseError(std::string("expected '") + sym + "' at offset " + std::to_string(Peek().offset));
    }
  }

  static bool IsReserved(const std::string& upper) {
    static const char* kReserved[] = {"SELECT", "FROM",    "WHERE",   "GROUP",  "BY",  "AND",
                                      "OR",     "NOT",     "BETWEEN", "IN",     "LIKE", "IS",
                                      "NULL",   "AS",      "INSERT",  "INTO",   "VALUES",
                                      "UPDATE", "SET",     "DELETE",  "ORDER",  "LIMIT"};
    return std::find_if(std::begin(kReserved), std::end(kReserved),
                        [&](const char* k) { return upper == k; }) != std::end(kReserved);
  }

  // --- grammar -------------------------------------------------------------

  std::vector<SelectItem> ParseSelectList() {
    std::vector<SelectItem> items;
    do {
      items.push_back(ParseSelectItem());
    } while (AcceptSymbol(","));
    return items;
  }

  SelectItem ParseSelectItem() {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.kind = SelectItem::Kind::kStar;
      return item;
    }
    static const std::pair<const char*, AggFunc> kAggs[] = {
        {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum}, {"MIN", AggFunc::kMin},
        {"MAX", AggFunc::kMax},     {"AVG", AggFunc::kAvg},
    };
    for (const auto& [name, func] : kAggs) {
      if (PeekKeyword(name) && PeekSymbol("(", 1)) {
        Advance();  // function name
        Advance();  // (
        item.kind = SelectItem::Kind::kAggregate;
        if (func == AggFunc::kCount && AcceptSymbol("*")) {
          item.func = AggFunc::kCountStar;
        } else {
          item.func = func;
          item.expr = ParseColumnRef();
        }
        ExpectSymbol(")");
        return item;
      }
    }
    item.expr = ParseScalar();
    item.kind = item.expr->kind == Expr::Kind::kColumn ? SelectItem::Kind::kColumn
                                                       : SelectItem::Kind::kScalar;
    return item;
  }

  std::vector<TableRef> ParseFromList() {
    std::vector<TableRef> from;
    do {
      TableRef ref;
      ref.table = ExpectIdentifier("table name");
      if (AcceptKeyword("AS")) {
        ref.alias = ExpectIdentifier("table alias");
      } else if (Peek().type == TokenType::kIdentifier && !IsReserved(ToUpper(Peek().text))) {
        ref.alias = Advance().text;
      }
      from.push_back(std::move(ref));
    } while (AcceptSymbol(","));
    if (from.size() > 2) throw ParseError("at most two tables in FROM are supported");
    return from;
  }

  std::string ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier || IsReserved(ToUpper(Peek().text))) {
      throw ParseError(std::string("expected ") + what + " at offset " + std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  ExprPtr ParseColumnRef() {
    std::string first = ExpectIdentifier("column name");
    if (AcceptSymbol(".")) {
      std::string second = ExpectIdentifier("column name");
      return Expr::Column(std::move(first), std::move(second));
    }
    return Expr::Column("", std::move(first));
  }

  // Precedence: OR < AND < NOT < predicate; inside predicate operands,
  // + and - bind looser than * and /.
  ExprPtr ParseExpr() { return ParseOr(); }

  /// A WHERE clause: a full expression that must be boolean-shaped at the
  /// top level (a bare column or arithmetic expression is rejected here,
  /// matching the pre-arithmetic parser's behaviour).
  ExprPtr ParsePredicateExpr() {
    const size_t offset = Peek().offset;
    ExprPtr e = ParseExpr();
    if (!IsBooleanShaped(*e)) {
      throw ParseError("expected a predicate operator at offset " + std::to_string(offset));
    }
    return e;
  }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (AcceptKeyword("OR")) {
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (AcceptKeyword("AND")) {
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), ParseNot());
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("NOT")) return Expr::Not(ParseNot());
    return ParsePredicate();
  }

  static bool IsBooleanShaped(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kUnaryNot:
      case Expr::Kind::kBetween:
      case Expr::Kind::kIn:
      case Expr::Kind::kLike:
      case Expr::Kind::kIsNull:
        return true;
      case Expr::Kind::kBinary:
        return true;  // comparisons and AND/OR are all boolean
      default:
        return false;
    }
  }

  ExprPtr ParsePredicate() {
    ExprPtr lhs = ParseScalar();

    bool negated = false;
    if (PeekKeyword("NOT") && (PeekKeyword("BETWEEN", 1) || PeekKeyword("IN", 1) || PeekKeyword("LIKE", 1))) {
      Advance();
      negated = true;
    }

    if (AcceptKeyword("BETWEEN")) {
      ExprPtr lo = ParseScalar();
      ExpectKeyword("AND");
      ExprPtr hi = ParseScalar();
      return Expr::Between(std::move(lhs), std::move(lo), std::move(hi), negated);
    }
    if (AcceptKeyword("IN")) {
      ExpectSymbol("(");
      std::vector<ExprPtr> list;
      do {
        list.push_back(ParseScalar());
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      return Expr::In(std::move(lhs), std::move(list), negated);
    }
    if (AcceptKeyword("LIKE")) {
      return Expr::Like(std::move(lhs), ParseScalar(), negated);
    }
    if (AcceptKeyword("IS")) {
      bool is_not = AcceptKeyword("NOT");
      ExpectKeyword("NULL");
      return Expr::IsNull(std::move(lhs), is_not);
    }
    if (negated) throw ParseError("dangling NOT before offset " + std::to_string(Peek().offset));

    static const std::pair<const char*, BinaryOp> kCmps[] = {
        {"=", BinaryOp::kEq}, {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt}, {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kCmps) {
      if (AcceptSymbol(sym)) {
        return Expr::Binary(op, std::move(lhs), ParseScalar());
      }
    }
    // No operator followed. A parenthesized predicate like
    // `(KSEQ BETWEEN 1 AND 2 OR KSEQ = 9)` already is the predicate; a bare
    // scalar (column, literal, arithmetic) is returned as-is so it can serve
    // as the value of an enclosing scalar context — ParsePredicateExpr
    // rejects it when the enclosing context required a predicate.
    return lhs;
  }

  /// A scalar expression: additive level (`+`/`-` over multiplicative).
  ExprPtr ParseScalar() {
    ExprPtr lhs = ParseMultiplicative();
    for (;;) {
      if (AcceptSymbol("+")) {
        lhs = Expr::Arith(ArithOp::kAdd, std::move(lhs), ParseMultiplicative());
      } else if (AcceptSymbol("-")) {
        lhs = Expr::Arith(ArithOp::kSub, std::move(lhs), ParseMultiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseOperand();
    for (;;) {
      if (AcceptSymbol("*")) {
        lhs = Expr::Arith(ArithOp::kMul, std::move(lhs), ParseOperand());
      } else if (AcceptSymbol("/")) {
        lhs = Expr::Arith(ArithOp::kDiv, std::move(lhs), ParseOperand());
      } else {
        return lhs;
      }
    }
  }

  /// An operand: literal, parameter, column reference, or parenthesized
  /// expression — boolean (a nested predicate) or scalar (grouped
  /// arithmetic); the evaluator rejects type confusion at bind time.
  ExprPtr ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
      case TokenType::kFloat:
      case TokenType::kString: {
        Value v = t.literal;
        Advance();
        return Expr::Literal(std::move(v));
      }
      case TokenType::kParam: {
        const int64_t n = t.number;
        Advance();
        uint32_t index = n >= 0 ? static_cast<uint32_t>(n) : next_positional_++;
        param_count_ = std::max(param_count_, index + 1);
        return Expr::Param(index);
      }
      case TokenType::kIdentifier:
        if (ToUpper(t.text) == "NULL") {
          Advance();
          return Expr::Literal(Value::Null());
        }
        return ParseColumnRef();
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          ExprPtr inner = ParseExpr();
          ExpectSymbol(")");
          return inner;
        }
        break;
      default:
        break;
    }
    throw ParseError("expected an operand at offset " + std::to_string(t.offset));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  uint32_t param_count_ = 0;
  uint32_t next_positional_ = 0;
};

}  // namespace

SelectStmt Parse(const std::string& sql) { return Parser(sql).ParseSelect(); }

AnyStatement ParseStatement(const std::string& sql) { return Parser(sql).ParseAny(); }

}  // namespace qc::sql
