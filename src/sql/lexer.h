// Tokenizer for the SQL subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace qc::sql {

enum class TokenType {
  kIdentifier,   // BENCH, A.x is three tokens (ident, dot, ident)
  kInteger,
  kFloat,
  kString,       // 'text' with '' escaping
  kParam,        // $1 / ? ; token.number holds the 0-based index for $n, -1 for ?
  kSymbol,       // ( ) , . * = <> != < <= > >=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier text (original case) or symbol spelling
  Value literal;        // kInteger/kFloat/kString
  int64_t number = -1;  // kParam: explicit index, or -1 for '?'
  size_t offset = 0;    // byte offset in the source, for error messages
};

/// Tokenize `sql`. Throws ParseError on malformed input (unterminated
/// string, stray character).
std::vector<Token> Lex(const std::string& sql);

}  // namespace qc::sql
