// DML execution: routes INSERT / UPDATE / DELETE statements through the
// storage layer, so every mutation emits UpdateEvents and therefore drives
// DUP invalidation exactly like the programmatic setter API.
#pragma once

#include <cstdint>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"

namespace qc::sql {

/// Execute one DML statement. Returns the number of affected rows.
/// Throws BindError on unresolved tables/columns or type errors.
///
/// Semantics notes:
///   * INSERT without a column list supplies the full schema order; with a
///     column list, omitted columns get NULL (must be nullable).
///   * UPDATE SET values may reference columns of the row being updated
///     (evaluated against the pre-update image).
///   * WHERE uses SQL three-valued logic: only definitely-true rows are
///     touched.
uint64_t ExecuteDml(const DmlStmt& stmt, storage::Database& db,
                    const std::vector<Value>& params = {});

}  // namespace qc::sql
