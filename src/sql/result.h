// Query results: a named-column table of values. This is the "object"
// that the GPS cache stores and the ODG hangs dependencies on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/events.h"

namespace qc::sql {

class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<storage::Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(storage::Row row) { rows_.push_back(std::move(row)); }

  /// Single-cell convenience for aggregate results (COUNT/SUM queries).
  const Value& ScalarAt(size_t row, size_t col) const { return rows_.at(row).at(col); }

  /// Sort rows lexicographically. Our SQL subset has no ORDER BY, so row
  /// order is an evaluation artifact; normalized form makes results
  /// comparable (used by the correctness property tests and by Equals).
  void Normalize();

  /// Order-insensitive comparison (both sides are normalized copies).
  bool Equals(const ResultSet& other) const;

  /// Stable sort by the given (output column index, descending) keys —
  /// ORDER BY support.
  void SortByKeys(const std::vector<std::pair<size_t, bool>>& keys);

  /// Keep at most `n` rows — LIMIT support.
  void Truncate(size_t n);

  /// Approximate in-memory footprint, used for cache byte budgets.
  size_t ByteSize() const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<storage::Row> rows_;
};

using ResultPtr = std::shared_ptr<const ResultSet>;

}  // namespace qc::sql
