#include "sql/dml.h"

#include "common/error.h"
#include "common/strings.h"
#include "sql/evaluator.h"

namespace qc::sql {

namespace {

/// Resolve every column reference in `e` against `table` (slot 0).
void BindColumns(Expr& e, const storage::Table& table) {
  if (e.kind == Expr::Kind::kColumn) {
    if (!e.qualifier.empty() && ToUpper(e.qualifier) != ToUpper(table.name())) {
      throw BindError("unknown qualifier in DML: " + e.qualifier);
    }
    e.table_slot = 0;
    e.column_index = static_cast<int32_t>(table.schema().Require(e.column));
    return;
  }
  for (ExprPtr& child : e.children) BindColumns(*child, table);
}

/// Evaluate a scalar DML expression against a row image (for INSERT the
/// image is empty and column references are rejected by the evaluator).
Value EvalDmlScalar(const Expr& e, const storage::Row& row, const std::vector<Value>& params) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.value;
    case Expr::Kind::kParam:
      if (e.param_index >= params.size()) {
        throw BindError("unbound parameter $" + std::to_string(e.param_index + 1));
      }
      return params[e.param_index];
    case Expr::Kind::kColumn:
      if (row.empty()) throw BindError("INSERT values cannot reference columns");
      return row.at(e.column_index);
    case Expr::Kind::kArith:
      return EvalArithValue(e.arith_op, EvalDmlScalar(*e.children[0], row, params),
                            EvalDmlScalar(*e.children[1], row, params));
    default:
      throw BindError("DML values must be scalar expressions");
  }
}

std::vector<storage::RowId> MatchingRows(const storage::Table& table, const Expr* where,
                                         const std::vector<Value>& params) {
  std::vector<storage::RowId> rows;
  table.ForEachRow([&](storage::RowId row) {
    if (where) {
      auto keep = EvalPredicateOnRow(*where, table.GetRow(row), params, 0);
      if (!keep || !*keep) return;
    }
    rows.push_back(row);
  });
  return rows;
}

uint64_t ExecuteInsert(const DmlStmt& stmt, storage::Table& table,
                       const std::vector<Value>& params) {
  const storage::Schema& schema = table.schema();
  storage::Row row(schema.size(), Value::Null());
  if (stmt.columns.empty()) {
    if (stmt.values.size() != schema.size()) {
      throw BindError("INSERT arity mismatch: " + std::to_string(stmt.values.size()) +
                      " values for " + std::to_string(schema.size()) + " columns");
    }
    for (size_t i = 0; i < stmt.values.size(); ++i) {
      row[i] = EvalDmlScalar(*stmt.values[i], {}, params);
    }
  } else {
    if (stmt.values.size() != stmt.columns.size()) {
      throw BindError("INSERT column list and VALUES arity differ");
    }
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      row[schema.Require(stmt.columns[i])] = EvalDmlScalar(*stmt.values[i], {}, params);
    }
  }
  table.Insert(row);
  return 1;
}

uint64_t ExecuteUpdate(const DmlStmt& stmt, storage::Table& table,
                       const std::vector<Value>& params) {
  const storage::Schema& schema = table.schema();
  std::vector<uint32_t> columns;
  columns.reserve(stmt.columns.size());
  for (const std::string& name : stmt.columns) columns.push_back(schema.Require(name));

  uint64_t affected = 0;
  // One batch per statement: the DUP engine stamps epochs and takes cache
  // shard locks once for all rows this UPDATE touches.
  storage::Table::BatchScope scope(table);
  for (storage::RowId row_id : MatchingRows(table, stmt.where.get(), params)) {
    const storage::Row image = table.GetRow(row_id);
    std::vector<std::pair<uint32_t, Value>> sets;
    sets.reserve(columns.size());
    for (size_t i = 0; i < columns.size(); ++i) {
      sets.emplace_back(columns[i], EvalDmlScalar(*stmt.values[i], image, params));
    }
    table.Update(row_id, sets);
    ++affected;
  }
  return affected;
}

uint64_t ExecuteDelete(const DmlStmt& stmt, storage::Table& table,
                       const std::vector<Value>& params) {
  const auto rows = MatchingRows(table, stmt.where.get(), params);
  storage::Table::BatchScope scope(table);
  for (storage::RowId row : rows) table.Delete(row);
  return rows.size();
}

}  // namespace

uint64_t ExecuteDml(const DmlStmt& stmt, storage::Database& db,
                    const std::vector<Value>& params) {
  storage::Table* table = db.FindTable(stmt.table);
  if (!table) throw BindError("unknown table: " + stmt.table);
  if (params.size() < stmt.param_count) {
    throw BindError("statement needs " + std::to_string(stmt.param_count) + " parameters, got " +
                    std::to_string(params.size()));
  }

  // Bind column references (WHERE and UPDATE values may carry them).
  DmlStmt bound;
  bound.kind = stmt.kind;
  bound.table = stmt.table;
  bound.columns = stmt.columns;
  for (const ExprPtr& v : stmt.values) {
    ExprPtr copy = v->Clone();
    BindColumns(*copy, *table);
    bound.values.push_back(std::move(copy));
  }
  if (stmt.where) {
    bound.where = stmt.where->Clone();
    BindColumns(*bound.where, *table);
  }
  bound.param_count = stmt.param_count;

  switch (bound.kind) {
    case DmlStmt::Kind::kInsert:
      return ExecuteInsert(bound, *table, params);
    case DmlStmt::Kind::kUpdate:
      return ExecuteUpdate(bound, *table, params);
    case DmlStmt::Kind::kDelete:
      return ExecuteDelete(bound, *table, params);
  }
  return 0;
}

}  // namespace qc::sql
