#include "sql/planner.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace qc::sql {

namespace {

using storage::RowId;
using storage::Table;

/// A LIKE pattern with no wildcards is an exact match usable by an index.
std::optional<std::string> ExactLikePattern(const Value& pattern) {
  if (!pattern.is_string()) return std::nullopt;
  const std::string& p = pattern.as_string();
  if (p.find('%') != std::string::npos || p.find('_') != std::string::npos) return std::nullopt;
  return p;
}

}  // namespace

std::optional<Value> ConstValue(const Expr& e, const std::vector<Value>& params) {
  if (e.kind == Expr::Kind::kLiteral) return e.value;
  if (e.kind == Expr::Kind::kParam) {
    if (e.param_index >= params.size()) throw BindError("unbound parameter");
    return params[e.param_index];
  }
  return std::nullopt;
}

bool ExtractProbes(const Expr& e, int32_t slot, const Table& table,
                   const std::vector<Value>& params, std::vector<IndexProbe>& out) {
  auto column_of = [&](const Expr& c) -> std::optional<uint32_t> {
    if (c.kind == Expr::Kind::kColumn && c.table_slot == slot) {
      return static_cast<uint32_t>(c.column_index);
    }
    return std::nullopt;
  };

  switch (e.kind) {
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kOr) {
        // OR-of-ranges on one column (Set Query Q3B). Every disjunct must
        // itself extract, and all probes must target the same column.
        std::vector<IndexProbe> probes;
        if (!ExtractProbes(*e.children[0], slot, table, params, probes)) return false;
        if (!ExtractProbes(*e.children[1], slot, table, params, probes)) return false;
        if (probes.empty()) return false;
        for (const IndexProbe& p : probes) {
          if (p.column != probes[0].column) return false;
        }
        out.insert(out.end(), probes.begin(), probes.end());
        return true;
      }
      if (!IsComparison(e.op)) return false;
      // col OP const, or const OP col (flip).
      auto lcol = column_of(*e.children[0]);
      auto rcol = column_of(*e.children[1]);
      std::optional<uint32_t> col;
      std::optional<Value> constant;
      BinaryOp op = e.op;
      if (lcol && (constant = ConstValue(*e.children[1], params))) {
        col = lcol;
      } else if (rcol && (constant = ConstValue(*e.children[0], params))) {
        col = rcol;
        switch (op) {  // flip operand order
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return false;
      }
      if (constant->is_null()) return false;  // NULL comparison selects nothing
      IndexProbe probe;
      probe.column = *col;
      switch (op) {
        case BinaryOp::kEq:
          if (!table.CanLookupEqual(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kEq;
          probe.eq = *constant;
          break;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
          if (!table.HasOrderedIndex(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kRange;
          probe.hi = *constant;
          probe.hi_inclusive = (op == BinaryOp::kLe);
          break;
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!table.HasOrderedIndex(probe.column)) return false;
          probe.kind = IndexProbe::Kind::kRange;
          probe.lo = *constant;
          probe.lo_inclusive = (op == BinaryOp::kGe);
          break;
        default:
          return false;  // <> is not index-friendly
      }
      out.push_back(std::move(probe));
      return true;
    }
    case Expr::Kind::kBetween: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      auto lo = ConstValue(*e.children[1], params);
      auto hi = ConstValue(*e.children[2], params);
      if (!col || !lo || !hi || lo->is_null() || hi->is_null()) return false;
      if (!table.HasOrderedIndex(*col)) return false;
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kRange;
      probe.column = *col;
      probe.lo = *lo;
      probe.hi = *hi;
      out.push_back(std::move(probe));
      return true;
    }
    case Expr::Kind::kIn: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      if (!col || !table.CanLookupEqual(*col)) return false;
      std::vector<IndexProbe> probes;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = ConstValue(*e.children[i], params);
        if (!item) return false;
        if (item->is_null()) continue;
        IndexProbe probe;
        probe.kind = IndexProbe::Kind::kEq;
        probe.column = *col;
        probe.eq = *item;
        probes.push_back(std::move(probe));
      }
      out.insert(out.end(), probes.begin(), probes.end());
      return true;
    }
    case Expr::Kind::kLike: {
      if (e.negated) return false;
      auto col = column_of(*e.children[0]);
      auto pattern = ConstValue(*e.children[1], params);
      if (!col || !pattern || !table.CanLookupEqual(*col)) return false;
      auto exact = ExactLikePattern(*pattern);
      if (!exact) return false;
      IndexProbe probe;
      probe.kind = IndexProbe::Kind::kEq;
      probe.column = *col;
      probe.eq = Value(*exact);
      out.push_back(std::move(probe));
      return true;
    }
    default:
      return false;
  }
}

std::vector<RowId> RunProbes(const Table& table, const std::vector<IndexProbe>& probes) {
  std::vector<RowId> rows;
  for (const IndexProbe& probe : probes) {
    if (probe.kind == IndexProbe::Kind::kEq) {
      const auto& bucket = table.LookupEqual(probe.column, probe.eq);
      rows.insert(rows.end(), bucket.begin(), bucket.end());
    } else {
      auto range = table.LookupRange(probe.column, probe.lo, probe.lo_inclusive,
                                     probe.hi, probe.hi_inclusive);
      rows.insert(rows.end(), range.begin(), range.end());
    }
  }
  if (probes.size() > 1) {  // union semantics: dedupe overlaps
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  }
  return rows;
}

namespace {

/// Does every probe of this candidate bound its range on both ends? (Eq
/// probes count as bounded.) Bounded candidates are sized first: they are
/// the likely-narrow ones, so the sizing cap tightens before any half-open
/// walk starts.
bool FullyBounded(const std::vector<IndexProbe>& probes) {
  for (const IndexProbe& p : probes) {
    if (p.kind == IndexProbe::Kind::kRange && (p.lo.is_null() || p.hi.is_null())) return false;
  }
  return true;
}

/// Upper-bound row count for one candidate's probe union, walking ordered
/// index buckets with early exit once the sum exceeds `cap` (overlapping
/// probes may double-count; that only penalizes the candidate).
size_t SizeCandidate(const Table& table, const std::vector<IndexProbe>& probes, size_t cap) {
  size_t size = 0;
  for (const IndexProbe& p : probes) {
    if (p.kind == IndexProbe::Kind::kEq) {
      size += table.LookupEqual(p.column, p.eq).size();
    } else {
      size += table.EstimateRangeRows(p.column, p.lo, p.lo_inclusive, p.hi, p.hi_inclusive,
                                      cap > size ? cap - size : 0);
    }
    if (size > cap) return size;
  }
  return size;
}

}  // namespace

std::optional<std::vector<RowId>> IndexedCandidates(const Table& table, int32_t slot,
                                                    const std::vector<const Expr*>& conjuncts,
                                                    const std::vector<Value>& params) {
  std::vector<std::vector<IndexProbe>> candidates;
  for (const Expr* conjunct : conjuncts) {
    std::vector<IndexProbe> probes;
    if (ExtractProbes(*conjunct, slot, table, params, probes)) {
      candidates.push_back(std::move(probes));
    }
  }
  if (candidates.empty()) return std::nullopt;
  if (candidates.size() == 1) {
    // Nothing to choose between; skip sizing and materialize directly.
    return RunProbes(table, candidates[0]);
  }

  // Size every candidate and keep the narrowest; nothing is materialized
  // until the winner is known. All-equality candidates are sized exactly
  // from index bucket sizes (IN members hit disjoint buckets) and are
  // sized first — their exact counts seed the cap that bounds the range
  // walks. Among range candidates, bounded-both-ends are sized before
  // half-open ones (see FullyBounded). Ties prefer the earlier, cheaper
  // class: an equality probe set beats a range walk of the same size.
  std::vector<const std::vector<IndexProbe>*> sized_order;
  auto all_eq = [](const std::vector<IndexProbe>& probes) {
    return std::all_of(probes.begin(), probes.end(), [](const IndexProbe& p) {
      return p.kind == IndexProbe::Kind::kEq;
    });
  };
  for (const auto& c : candidates) {
    if (all_eq(c)) sized_order.push_back(&c);
  }
  for (const auto& c : candidates) {
    if (!all_eq(c) && FullyBounded(c)) sized_order.push_back(&c);
  }
  for (const auto& c : candidates) {
    if (!all_eq(c) && !FullyBounded(c)) sized_order.push_back(&c);
  }

  const std::vector<IndexProbe>* winner = nullptr;
  size_t winner_size = std::numeric_limits<size_t>::max();
  for (const std::vector<IndexProbe>* probes : sized_order) {
    const size_t size = SizeCandidate(table, *probes, winner_size);
    if (!winner || size < winner_size) {
      winner = probes;
      winner_size = size;
    }
  }
  if (winner_size == 0) return std::vector<RowId>{};  // provably empty
  return RunProbes(table, *winner);
}

}  // namespace qc::sql
