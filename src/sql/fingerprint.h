// Canonical query text used as cache keys.
//
// Two textual spellings of the same statement (case, whitespace, != vs <>)
// produce the same canonical form, so they share one cache entry. The
// fingerprint of a *parameterized* query additionally folds in the bound
// parameter values, so Q2('Gold') and Q2('Silver') are distinct cached
// objects hanging off one statement skeleton — exactly the paper's §4.2
// compile-time/run-time split.
#pragma once

#include <string>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"

namespace qc::sql {

/// Canonical serialization of a statement; parameters render as $n.
std::string CanonicalSql(const SelectStmt& stmt);

/// Canonical serialization of one expression (used in ODG annotations and
/// debug output as well).
std::string CanonicalExpr(const Expr& e);

/// Cache key for a statement executed with `params` (empty for static SQL).
std::string Fingerprint(const SelectStmt& stmt, const std::vector<Value>& params);

}  // namespace qc::sql
