#include "sql/exec_common.h"

#include "common/error.h"
#include "common/strings.h"
#include "sql/fingerprint.h"

namespace qc::sql::exec {

using storage::Row;
using storage::Table;

void Accumulator::Add(const Value& v) {
  if (func == AggFunc::kCountStar) {
    ++count;
    return;
  }
  if (v.is_null()) return;  // SQL aggregates skip NULLs
  ++count;
  switch (func) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (v.is_int()) {
        AddIntToSum(v.as_int());
      } else {
        sum_is_int = false;
        double_sum += v.numeric();
      }
      break;
    case AggFunc::kMin:
      if (min.is_null() || v < min) min = v;
      break;
    case AggFunc::kMax:
      if (max.is_null() || v > max) max = v;
      break;
    default:
      break;
  }
}

void Accumulator::Merge(const Accumulator& other) {
  count += other.count;
  if (other.sum_is_int) {
    if (sum_is_int && __builtin_add_overflow(int_sum, other.int_sum, &int_sum)) {
      sum_is_int = false;
    }
  } else {
    sum_is_int = false;
  }
  double_sum += other.double_sum;
  if (min.is_null() || (!other.min.is_null() && other.min < min)) min = other.min;
  if (max.is_null() || (!other.max.is_null() && other.max > max)) max = other.max;
}

Value Accumulator::Result() const {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value(count);
    case AggFunc::kSum:
      if (count == 0) return Value::Null();
      return sum_is_int ? Value(int_sum) : Value(double_sum);
    case AggFunc::kAvg:
      if (count == 0) return Value::Null();
      return Value(double_sum / static_cast<double>(count));
    case AggFunc::kMin:
      return min;
    case AggFunc::kMax:
      return max;
    case AggFunc::kNone:
      break;
  }
  return Value::Null();
}

std::vector<Accumulator> MakeAccumulators(const SelectStmt& stmt) {
  std::vector<Accumulator> accs;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) {
      Accumulator acc;
      acc.func = item.func;
      accs.push_back(acc);
    }
  }
  return accs;
}

std::vector<Accumulator>& GroupState::Touch(Row key, const SelectStmt& stmt) {
  auto it = groups.find(key);
  if (it == groups.end()) {
    it = groups.emplace(std::move(key), MakeAccumulators(stmt)).first;
    order.push_back(&*it);
  }
  return it->second;
}

std::vector<Accumulator>& GroupState::TouchView(const Value* key, size_t n,
                                                const SelectStmt& stmt) {
  auto it = groups.find(RowView{key, n});
  if (it == groups.end()) {
    Row boxed(key, key + n);
    it = groups.emplace(std::move(boxed), MakeAccumulators(stmt)).first;
    order.push_back(&*it);
  }
  return it->second;
}

void GroupState::Merge(const GroupState& other) {
  for (const auto* entry : other.order) {
    auto it = groups.find(entry->first);
    if (it == groups.end()) {
      it = groups.emplace(entry->first, entry->second).first;
      order.push_back(&*it);
      continue;
    }
    auto& accs = it->second;
    for (size_t i = 0; i < accs.size(); ++i) accs[i].Merge(entry->second[i]);
  }
}

std::vector<std::string> OutputColumnNames(const BoundQuery& query) {
  const SelectStmt& stmt = query.stmt();
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        for (size_t slot = 0; slot < query.tables().size(); ++slot) {
          const Table& table = query.table(slot);
          for (const auto& col : table.schema().columns()) {
            names.push_back(query.tables().size() > 1
                                ? ToUpper(stmt.from[slot].effective_name()) + "." + col.name
                                : col.name);
          }
        }
        break;
      case SelectItem::Kind::kColumn:
        names.push_back(item.expr->column);
        break;
      case SelectItem::Kind::kScalar:
        names.push_back(CanonicalExpr(*item.expr));
        break;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          names.push_back("COUNT(*)");
        } else {
          names.push_back(std::string(AggFuncName(item.func)) + "(" + item.expr->column + ")");
        }
        break;
    }
  }
  return names;
}

void SplitConjuncts(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == Expr::Kind::kBinary && e.op == BinaryOp::kAnd) {
    SplitConjuncts(*e.children[0], out);
    SplitConjuncts(*e.children[1], out);
    return;
  }
  out.push_back(&e);
}

void EmitGroupRows(const SelectStmt& stmt, const GroupState& state, bool grouped,
                   ResultSet& result) {
  if (state.groups.empty() && !grouped) {
    // Aggregates over an empty input still yield one row (COUNT=0, SUM=NULL).
    Row row;
    for (const SelectItem& item : stmt.items) {
      Accumulator acc;
      acc.func = item.func;
      row.push_back(acc.Result());
    }
    result.AddRow(std::move(row));
    return;
  }
  for (const auto* entry : state.order) {
    const Row& key = entry->first;
    const std::vector<Accumulator>& accs = entry->second;
    Row row;
    size_t acc_index = 0;
    for (const SelectItem& item : stmt.items) {
      if (item.kind == SelectItem::Kind::kAggregate) {
        row.push_back(accs[acc_index++].Result());
        continue;
      }
      // The binder guarantees a projected plain column is a grouping key;
      // emit the key cell matching this column. If the invariant ever
      // breaks, fail loudly instead of silently emitting key cell 0.
      const Expr& col = *item.expr;
      const Value* cell = nullptr;
      for (size_t g = 0; g < stmt.group_by.size(); ++g) {
        if (stmt.group_by[g]->table_slot == col.table_slot &&
            stmt.group_by[g]->column_index == col.column_index) {
          cell = &key[g];
          break;
        }
      }
      if (!cell) {
        throw BindError("projected column " + col.column +
                        " is not a GROUP BY key (binder invariant violated)");
      }
      row.push_back(*cell);
    }
    result.AddRow(std::move(row));
  }
}

void ApplyOrderAndLimit(const BoundQuery& query, ResultSet& result) {
  if (!query.order_outputs().empty()) {
    std::vector<std::pair<size_t, bool>> keys;
    keys.reserve(query.order_outputs().size());
    for (const auto& key : query.order_outputs()) {
      keys.emplace_back(key.output_index, key.descending);
    }
    result.SortByKeys(keys);
  }
  if (query.stmt().limit) result.Truncate(*query.stmt().limit);
}

}  // namespace qc::sql::exec
