// The binder resolves a parsed SelectStmt against a Database catalog:
// table names are checked, column references get (table_slot, column_index)
// filled in, and simple semantic rules are enforced. The result is a
// BoundQuery, the unit the evaluator executes and the DUP dependency
// extractor analyzes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/database.h"

namespace qc::sql {

class BoundQuery {
 public:
  /// ORDER BY keys resolved to output-column positions.
  struct OrderOutput {
    size_t output_index;
    bool descending;
  };

  BoundQuery(SelectStmt stmt, std::vector<const storage::Table*> tables,
             std::vector<OrderOutput> order_outputs)
      : stmt_(std::move(stmt)),
        tables_(std::move(tables)),
        order_outputs_(std::move(order_outputs)) {}

  const SelectStmt& stmt() const { return stmt_; }
  const std::vector<const storage::Table*>& tables() const { return tables_; }
  const storage::Table& table(size_t slot) const { return *tables_.at(slot); }
  const std::vector<OrderOutput>& order_outputs() const { return order_outputs_; }
  uint32_t param_count() const { return stmt_.param_count; }

 private:
  SelectStmt stmt_;
  std::vector<const storage::Table*> tables_;
  std::vector<OrderOutput> order_outputs_;
};

/// Resolve `stmt` against `db`. Throws BindError on unknown table/column,
/// ambiguous unqualified column, or a grouped query projecting a column
/// that is not a grouping key.
std::shared_ptr<const BoundQuery> Bind(SelectStmt stmt, const storage::Database& db);

/// Convenience: parse + bind.
std::shared_ptr<const BoundQuery> ParseAndBind(const std::string& sql, const storage::Database& db);

}  // namespace qc::sql
