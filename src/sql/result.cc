#include "sql/result.h"

#include <algorithm>
#include <sstream>

namespace qc::sql {

namespace {

bool RowLess(const storage::Row& a, const storage::Row& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    auto c = a[i].compare(b[i]);
    if (c != std::strong_ordering::equal) return c == std::strong_ordering::less;
  }
  return a.size() < b.size();
}

}  // namespace

void ResultSet::Normalize() { std::sort(rows_.begin(), rows_.end(), RowLess); }

bool ResultSet::Equals(const ResultSet& other) const {
  if (columns_ != other.columns_) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::vector<storage::Row> a = rows_, b = other.rows_;
  std::sort(a.begin(), a.end(), RowLess);
  std::sort(b.begin(), b.end(), RowLess);
  return a == b;
}

void ResultSet::SortByKeys(const std::vector<std::pair<size_t, bool>>& keys) {
  std::stable_sort(rows_.begin(), rows_.end(), [&](const storage::Row& a, const storage::Row& b) {
    for (const auto& [index, descending] : keys) {
      const auto cmp = a.at(index).compare(b.at(index));
      if (cmp == std::strong_ordering::equal) continue;
      const bool less = cmp == std::strong_ordering::less;
      return descending ? !less : less;
    }
    return false;
  });
}

void ResultSet::Truncate(size_t n) {
  if (rows_.size() > n) rows_.resize(n);
}

size_t ResultSet::ByteSize() const {
  size_t bytes = sizeof(ResultSet);
  for (const std::string& c : columns_) bytes += c.size() + sizeof(std::string);
  for (const storage::Row& row : rows_) {
    bytes += sizeof(storage::Row);
    for (const Value& v : row) {
      bytes += sizeof(Value);
      if (v.is_string()) bytes += v.as_string().size();
    }
  }
  return bytes;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << " | ";
    os << columns_[i];
  }
  os << "\n";
  size_t shown = 0;
  for (const storage::Row& row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << " | ";
      os << row[i].ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace qc::sql
