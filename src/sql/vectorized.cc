#include "sql/vectorized.h"

#include <algorithm>
#include <atomic>
#include <compare>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "common/error.h"
#include "common/strings.h"
#include "sql/exec_common.h"
#include "sql/planner.h"

namespace qc::sql {

namespace {

using storage::ColumnStore;
using storage::Row;
using storage::RowId;
using storage::Table;

// ---------------------------------------------------------------------------
// Engine knobs and counters
// ---------------------------------------------------------------------------

std::atomic<bool> g_enabled{true};
std::atomic<size_t> g_parallel_threshold{65536};
std::atomic<size_t> g_scan_threads{0};  // 0 = auto (QC_SCAN_THREADS or hardware)

constexpr size_t kMaxScanThreads = 16;

struct StatCounters {
  std::atomic<uint64_t> queries_vectorized{0};
  std::atomic<uint64_t> queries_fallback{0};
  std::atomic<uint64_t> fallback_join{0};
  std::atomic<uint64_t> fallback_expression{0};
  std::atomic<uint64_t> fallback_shape{0};
  std::atomic<uint64_t> fallback_type{0};
  std::atomic<uint64_t> joins_vectorized{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> parallel_scans{0};
  std::atomic<uint64_t> conjunct_reorders{0};
};
StatCounters g_stats;

/// Why the engine refused a query (one per fallback; see VectorizedStats).
enum class FallbackReason { kJoin, kExpression, kShape, kType };

void CountFallback(FallbackReason reason) {
  g_stats.queries_fallback.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case FallbackReason::kJoin:
      g_stats.fallback_join.fetch_add(1, std::memory_order_relaxed);
      break;
    case FallbackReason::kExpression:
      g_stats.fallback_expression.fetch_add(1, std::memory_order_relaxed);
      break;
    case FallbackReason::kShape:
      g_stats.fallback_shape.fetch_add(1, std::memory_order_relaxed);
      break;
    case FallbackReason::kType:
      g_stats.fallback_type.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

size_t EffectiveScanThreads() {
  size_t n = g_scan_threads.load(std::memory_order_relaxed);
  if (n == 0) {
    static const size_t env_or_hw = [] {
      if (const char* env = std::getenv("QC_SCAN_THREADS")) {
        const long v = std::atol(env);
        if (v > 0) return static_cast<size_t>(v);
      }
      const unsigned hw = std::thread::hardware_concurrency();
      return static_cast<size_t>(hw == 0 ? 1 : hw);
    }();
    n = env_or_hw;
  }
  return std::min(std::max<size_t>(n, 1), kMaxScanThreads);
}

// ---------------------------------------------------------------------------
// Three-valued predicate states
// ---------------------------------------------------------------------------

constexpr uint8_t kTriF = 0;
constexpr uint8_t kTriT = 1;
constexpr uint8_t kTriU = 2;

inline uint8_t TriNot(uint8_t a) { return a == kTriU ? kTriU : (a == kTriT ? kTriF : kTriT); }
inline uint8_t TriAnd(uint8_t a, uint8_t b) {
  if (a == kTriF || b == kTriF) return kTriF;
  if (a == kTriU || b == kTriU) return kTriU;
  return kTriT;
}
inline uint8_t TriOr(uint8_t a, uint8_t b) {
  if (a == kTriT || b == kTriT) return kTriT;
  if (a == kTriU || b == kTriU) return kTriU;
  return kTriF;
}

/// One batch of candidate rows (all live).
struct Batch {
  const Table* table;
  const RowId* rows;
  size_t n;
};

/// Compiled predicate node: fills `out[0..n)` with kTriF/kTriT/kTriU,
/// column-at-a-time. Nodes are immutable after compilation and shared by
/// all scan workers.
struct VecNode {
  virtual ~VecNode() = default;
  virtual void Eval(const Batch& b, uint8_t* out) const = 0;
};
using VecNodePtr = std::unique_ptr<VecNode>;

// ---------------------------------------------------------------------------
// Typed kernels
// ---------------------------------------------------------------------------

/// Run `f(row) -> tri` over non-null cells; null cells are Unknown.
template <typename Fn>
inline void ForBatchNonNull(const ColumnStore& col, const Batch& b, uint8_t* out, Fn f) {
  for (size_t i = 0; i < b.n; ++i) {
    const RowId r = b.rows[i];
    out[i] = col.IsNull(r) ? kTriU : f(r);
  }
}

/// Comparison loop specialized per (value getter, constant type, operator).
template <typename Get, typename T>
inline void CmpLoop(BinaryOp op, const ColumnStore& col, const Batch& b, uint8_t* out,
                    Get get, T c) {
  switch (op) {
    case BinaryOp::kEq:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) == c ? kTriT : kTriF; });
      break;
    case BinaryOp::kNe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) != c ? kTriT : kTriF; });
      break;
    case BinaryOp::kLt:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) < c ? kTriT : kTriF; });
      break;
    case BinaryOp::kLe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) <= c ? kTriT : kTriF; });
      break;
    case BinaryOp::kGt:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) > c ? kTriT : kTriF; });
      break;
    case BinaryOp::kGe:
      ForBatchNonNull(col, b, out, [&](RowId r) { return get(r) >= c ? kTriT : kTriF; });
      break;
    default:
      throw BindError("not a comparison operator");
  }
}

/// Fixed truth value for every row (comparison against a NULL constant, or
/// a constant-folded column-less conjunct).
struct TriConstNode final : VecNode {
  uint8_t tri;
  explicit TriConstNode(uint8_t t) : tri(t) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    std::fill(out, out + b.n, tri);
  }
};

/// Cross-type-class comparison (numeric column vs string constant or vice
/// versa): Value's total order ranks the classes, so every non-null cell
/// compares the same way. NULL cells stay Unknown.
struct FixedRankCmpNode final : VecNode {
  uint32_t col;
  uint8_t tri_nonnull;
  FixedRankCmpNode(uint32_t c, uint8_t t) : col(c), tri_nonnull(t) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    for (size_t i = 0; i < b.n; ++i) {
      out[i] = cs.IsNull(b.rows[i]) ? kTriU : tri_nonnull;
    }
  }
};

/// column OP constant, same type class. The constant is pre-coerced at
/// compile time; Eval dispatches once on the column type, then runs the
/// tight typed loop.
struct CmpConstNode final : VecNode {
  uint32_t col;
  BinaryOp op;
  Value c;
  CmpConstNode(uint32_t col_, BinaryOp op_, Value c_) : col(col_), op(op_), c(std::move(c_)) {}

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    switch (cs.type()) {
      case ValueType::kInt:
        if (c.is_int()) {
          const int64_t cv = c.as_int();
          CmpLoop(op, cs, b, out, [&cs](RowId r) { return cs.GetInt(r); }, cv);
        } else {
          const double cv = c.numeric();
          CmpLoop(op, cs, b, out,
                  [&cs](RowId r) { return static_cast<double>(cs.GetInt(r)); }, cv);
        }
        break;
      case ValueType::kDouble: {
        const double cv = c.numeric();
        CmpLoop(op, cs, b, out, [&cs](RowId r) { return cs.GetDouble(r); }, cv);
        break;
      }
      case ValueType::kString: {
        const std::string& cv = c.as_string();
        CmpLoop(op, cs, b, out,
                [&cs](RowId r) -> const std::string& { return cs.GetString(r); }, cv);
        break;
      }
      case ValueType::kNull:
        throw StorageError("column of type NULL");
    }
  }
};

/// columnA OP columnB on the same table slot, same type class.
struct CmpColColNode final : VecNode {
  uint32_t lhs, rhs;
  BinaryOp op;
  CmpColColNode(uint32_t l, uint32_t r, BinaryOp o) : lhs(l), rhs(r), op(o) {}

  template <typename GetL, typename GetR>
  void Loop(const Batch& b, uint8_t* out, const ColumnStore& lc, const ColumnStore& rc,
            GetL gl, GetR gr) const {
    auto run = [&](auto cmp) {
      for (size_t i = 0; i < b.n; ++i) {
        const RowId r = b.rows[i];
        out[i] = (lc.IsNull(r) || rc.IsNull(r)) ? kTriU : (cmp(gl(r), gr(r)) ? kTriT : kTriF);
      }
    };
    switch (op) {
      case BinaryOp::kEq: run([](auto a, auto c) { return a == c; }); break;
      case BinaryOp::kNe: run([](auto a, auto c) { return a != c; }); break;
      case BinaryOp::kLt: run([](auto a, auto c) { return a < c; }); break;
      case BinaryOp::kLe: run([](auto a, auto c) { return a <= c; }); break;
      case BinaryOp::kGt: run([](auto a, auto c) { return a > c; }); break;
      case BinaryOp::kGe: run([](auto a, auto c) { return a >= c; }); break;
      default: throw BindError("not a comparison operator");
    }
  }

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& lc = b.table->column_store(lhs);
    const ColumnStore& rc = b.table->column_store(rhs);
    const bool l_num = lc.type() != ValueType::kString;
    const bool r_num = rc.type() != ValueType::kString;
    if (l_num && r_num) {
      if (lc.type() == ValueType::kInt && rc.type() == ValueType::kInt) {
        Loop(b, out, lc, rc, [&lc](RowId r) { return lc.GetInt(r); },
             [&rc](RowId r) { return rc.GetInt(r); });
      } else {
        auto num = [](const ColumnStore& c) {
          return [&c](RowId r) {
            return c.type() == ValueType::kInt ? static_cast<double>(c.GetInt(r)) : c.GetDouble(r);
          };
        };
        Loop(b, out, lc, rc, num(lc), num(rc));
      }
    } else if (!l_num && !r_num) {
      Loop(b, out, lc, rc, [&lc](RowId r) -> const std::string& { return lc.GetString(r); },
           [&rc](RowId r) -> const std::string& { return rc.GetString(r); });
    } else {
      // Cross-class: the type-rank comparison is the same for every pair of
      // non-null cells (numeric ranks below string).
      const auto rank_cmp = l_num ? std::strong_ordering::less : std::strong_ordering::greater;
      bool fixed;
      switch (op) {
        case BinaryOp::kEq: fixed = false; break;
        case BinaryOp::kNe: fixed = true; break;
        case BinaryOp::kLt: fixed = rank_cmp == std::strong_ordering::less; break;
        case BinaryOp::kLe: fixed = rank_cmp != std::strong_ordering::greater; break;
        case BinaryOp::kGt: fixed = rank_cmp == std::strong_ordering::greater; break;
        case BinaryOp::kGe: fixed = rank_cmp != std::strong_ordering::less; break;
        default: throw BindError("not a comparison operator");
      }
      const uint8_t tri = fixed ? kTriT : kTriF;
      for (size_t i = 0; i < b.n; ++i) {
        const RowId r = b.rows[i];
        out[i] = (lc.IsNull(r) || rc.IsNull(r)) ? kTriU : tri;
      }
    }
  }
};

/// col BETWEEN lo AND hi for an int column with int bounds — the common
/// BENCH shape gets a single-pass kernel. General BETWEEN compiles to
/// AND(col >= lo, col <= hi) (plus NOT when negated), which is equivalent
/// under Kleene semantics because the bounds are non-null constants.
struct BetweenIntNode final : VecNode {
  uint32_t col;
  int64_t lo, hi;
  bool negated;
  BetweenIntNode(uint32_t c, int64_t l, int64_t h, bool n) : col(c), lo(l), hi(h), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    const uint8_t in_tri = negated ? kTriF : kTriT;
    const uint8_t out_tri = negated ? kTriT : kTriF;
    for (size_t i = 0; i < b.n; ++i) {
      const RowId r = b.rows[i];
      if (cs.IsNull(r)) {
        out[i] = kTriU;
      } else {
        const int64_t v = cs.GetInt(r);
        out[i] = (v >= lo && v <= hi) ? in_tri : out_tri;
      }
    }
  }
};

/// col [NOT] IN (consts...). Members are pre-partitioned by type class at
/// compile time; a NULL member makes non-matches Unknown (SQL's IN/NOT IN
/// NULL semantics).
struct InNode final : VecNode {
  uint32_t col;
  bool negated = false;
  bool has_null_member = false;
  std::vector<int64_t> int_members;         // sorted
  std::vector<double> double_members;       // sorted
  std::vector<std::string> string_members;  // sorted

  uint8_t Hit() const { return negated ? kTriF : kTriT; }
  uint8_t MissTri() const {
    if (has_null_member) return kTriU;
    return negated ? kTriT : kTriF;
  }

  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    const uint8_t hit = Hit(), miss = MissTri();
    switch (cs.type()) {
      case ValueType::kInt: {
        // IN lists are almost always tiny and all-int; a branch-free linear
        // sweep over a small member array beats binary_search's call +
        // log-n branches, so that common case gets its own fully-inlined
        // loop (the batch-level dispatch keeps the per-row path clean).
        const int64_t* mb = int_members.data();
        const size_t mn = int_members.size();
        if (double_members.empty() && mn <= 16) {
          ForBatchNonNull(cs, b, out, [&](RowId r) {
            const int64_t v = cs.GetInt(r);
            bool found = false;
            for (size_t k = 0; k < mn; ++k) found |= (mb[k] == v);
            return found ? hit : miss;
          });
          break;
        }
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          const int64_t v = cs.GetInt(r);
          if (std::binary_search(int_members.begin(), int_members.end(), v)) return hit;
          if (!double_members.empty() &&
              std::binary_search(double_members.begin(), double_members.end(),
                                 static_cast<double>(v))) {
            return hit;
          }
          return miss;
        });
        break;
      }
      case ValueType::kDouble:
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          const double v = cs.GetDouble(r);
          if (std::binary_search(double_members.begin(), double_members.end(), v)) return hit;
          for (int64_t m : int_members) {
            if (static_cast<double>(m) == v) return hit;
          }
          return miss;
        });
        break;
      case ValueType::kString:
        ForBatchNonNull(cs, b, out, [&](RowId r) {
          return std::binary_search(string_members.begin(), string_members.end(),
                                    cs.GetString(r))
                     ? hit
                     : miss;
        });
        break;
      case ValueType::kNull:
        throw StorageError("column of type NULL");
    }
  }
};

/// string_col [NOT] LIKE 'pattern'.
struct LikeNode final : VecNode {
  uint32_t col;
  std::string pattern;
  bool negated;
  LikeNode(uint32_t c, std::string p, bool n) : col(c), pattern(std::move(p)), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    ForBatchNonNull(cs, b, out, [&](RowId r) {
      const bool m = LikeMatch(cs.GetString(r), pattern);
      return (m != negated) ? kTriT : kTriF;
    });
  }
};

/// col IS [NOT] NULL — reads only the null bitmap, never Unknown.
struct IsNullNode final : VecNode {
  uint32_t col;
  bool negated;
  IsNullNode(uint32_t c, bool n) : col(c), negated(n) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    const ColumnStore& cs = b.table->column_store(col);
    for (size_t i = 0; i < b.n; ++i) {
      const bool is_null = cs.IsNull(b.rows[i]);
      out[i] = (is_null != negated) ? kTriT : kTriF;
    }
  }
};

struct NotNode final : VecNode {
  VecNodePtr child;
  explicit NotNode(VecNodePtr c) : child(std::move(c)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    child->Eval(b, out);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriNot(out[i]);
  }
};

struct AndNode final : VecNode {
  VecNodePtr lhs, rhs;
  AndNode(VecNodePtr l, VecNodePtr r) : lhs(std::move(l)), rhs(std::move(r)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    uint8_t tmp[kVectorBatchRows];
    lhs->Eval(b, out);
    rhs->Eval(b, tmp);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriAnd(out[i], tmp[i]);
  }
};

struct OrNode final : VecNode {
  VecNodePtr lhs, rhs;
  OrNode(VecNodePtr l, VecNodePtr r) : lhs(std::move(l)), rhs(std::move(r)) {}
  void Eval(const Batch& b, uint8_t* out) const override {
    uint8_t tmp[kVectorBatchRows];
    lhs->Eval(b, out);
    rhs->Eval(b, tmp);
    for (size_t i = 0; i < b.n; ++i) out[i] = TriOr(out[i], tmp[i]);
  }
};

// ---------------------------------------------------------------------------
// Scalar arithmetic kernels
// ---------------------------------------------------------------------------

/// One batch of numeric scalar values, kept unboxed: per row a tag selects
/// NULL / exact int64 / double. Mirrors EvalArithValue's type rules so the
/// vectorized result is cell-for-cell identical to the row engine's.
struct NumVec {
  static constexpr uint8_t kNull = 0, kInt = 1, kDouble = 2;
  uint8_t tag[kVectorBatchRows];
  int64_t i64[kVectorBatchRows];
  double f64[kVectorBatchRows];

  double AsDouble(size_t i) const {
    return tag[i] == kInt ? static_cast<double>(i64[i]) : f64[i];
  }
  Value Box(size_t i) const {
    switch (tag[i]) {
      case kInt: return Value(i64[i]);
      case kDouble: return Value(f64[i]);
      default: return Value::Null();
    }
  }
};

/// Compiled numeric scalar expression over one table's rows (columns,
/// numeric constants, + - * /). String columns and constants do not
/// compile — the whole query falls back so the row engine raises the same
/// BindError it always has.
struct NumNode {
  virtual ~NumNode() = default;
  virtual void Eval(const Table& table, const RowId* rows, size_t n, NumVec& out) const = 0;
};
using NumNodePtr = std::unique_ptr<NumNode>;

struct ColumnNumNode final : NumNode {
  uint32_t col;
  explicit ColumnNumNode(uint32_t c) : col(c) {}
  void Eval(const Table& table, const RowId* rows, size_t n, NumVec& out) const override {
    const ColumnStore& cs = table.column_store(col);
    if (cs.type() == ValueType::kInt) {
      for (size_t i = 0; i < n; ++i) {
        const RowId r = rows[i];
        if (cs.IsNull(r)) {
          out.tag[i] = NumVec::kNull;
        } else {
          out.tag[i] = NumVec::kInt;
          out.i64[i] = cs.GetInt(r);
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        const RowId r = rows[i];
        if (cs.IsNull(r)) {
          out.tag[i] = NumVec::kNull;
        } else {
          out.tag[i] = NumVec::kDouble;
          out.f64[i] = cs.GetDouble(r);
        }
      }
    }
  }
};

struct ConstNumNode final : NumNode {
  uint8_t tag;
  int64_t i = 0;
  double d = 0;
  explicit ConstNumNode(const Value& v) {
    if (v.is_int()) {
      tag = NumVec::kInt;
      i = v.as_int();
    } else if (v.is_double()) {
      tag = NumVec::kDouble;
      d = v.as_double();
    } else {
      tag = NumVec::kNull;
    }
  }
  void Eval(const Table&, const RowId*, size_t n, NumVec& out) const override {
    std::fill(out.tag, out.tag + n, tag);
    if (tag == NumVec::kInt) std::fill(out.i64, out.i64 + n, i);
    if (tag == NumVec::kDouble) std::fill(out.f64, out.f64 + n, d);
  }
};

struct ArithNumNode final : NumNode {
  ArithOp op;
  NumNodePtr lhs, rhs;
  ArithNumNode(ArithOp o, NumNodePtr l, NumNodePtr r)
      : op(o), lhs(std::move(l)), rhs(std::move(r)) {}

  void Eval(const Table& table, const RowId* rows, size_t n, NumVec& out) const override {
    NumVec a, b;
    lhs->Eval(table, rows, n, a);
    rhs->Eval(table, rows, n, b);
    for (size_t i = 0; i < n; ++i) {
      if (a.tag[i] == NumVec::kNull || b.tag[i] == NumVec::kNull) {
        out.tag[i] = NumVec::kNull;
        continue;
      }
      if (op == ArithOp::kDiv) {
        const double divisor = b.AsDouble(i);
        if (divisor == 0.0) {
          out.tag[i] = NumVec::kNull;
        } else {
          out.tag[i] = NumVec::kDouble;
          out.f64[i] = a.AsDouble(i) / divisor;
        }
        continue;
      }
      if (a.tag[i] == NumVec::kInt && b.tag[i] == NumVec::kInt) {
        int64_t v = 0;
        bool overflow = false;
        switch (op) {
          case ArithOp::kAdd: overflow = __builtin_add_overflow(a.i64[i], b.i64[i], &v); break;
          case ArithOp::kSub: overflow = __builtin_sub_overflow(a.i64[i], b.i64[i], &v); break;
          case ArithOp::kMul: overflow = __builtin_mul_overflow(a.i64[i], b.i64[i], &v); break;
          case ArithOp::kDiv: break;
        }
        if (!overflow) {
          out.tag[i] = NumVec::kInt;
          out.i64[i] = v;
          continue;
        }
        // overflow degrades to double, matching EvalArithValue
      }
      const double l = a.AsDouble(i), r = b.AsDouble(i);
      out.tag[i] = NumVec::kDouble;
      switch (op) {
        case ArithOp::kAdd: out.f64[i] = l + r; break;
        case ArithOp::kSub: out.f64[i] = l - r; break;
        case ArithOp::kMul: out.f64[i] = l * r; break;
        case ArithOp::kDiv: break;
      }
    }
  }
};

/// numeric-expr OP numeric-expr: comparison over two NumVecs. Int pairs
/// compare exactly; any double promotes both sides (Value::compare does the
/// same). NULL on either side is Unknown.
struct CmpNumNode final : VecNode {
  NumNodePtr lhs, rhs;
  BinaryOp op;
  CmpNumNode(NumNodePtr l, NumNodePtr r, BinaryOp o)
      : lhs(std::move(l)), rhs(std::move(r)), op(o) {}

  void Eval(const Batch& b, uint8_t* out) const override {
    NumVec a, c;
    lhs->Eval(*b.table, b.rows, b.n, a);
    rhs->Eval(*b.table, b.rows, b.n, c);
    auto run = [&](auto cmp) {
      for (size_t i = 0; i < b.n; ++i) {
        if (a.tag[i] == NumVec::kNull || c.tag[i] == NumVec::kNull) {
          out[i] = kTriU;
        } else if (a.tag[i] == NumVec::kInt && c.tag[i] == NumVec::kInt) {
          out[i] = cmp(a.i64[i], c.i64[i]) ? kTriT : kTriF;
        } else {
          out[i] = cmp(a.AsDouble(i), c.AsDouble(i)) ? kTriT : kTriF;
        }
      }
    };
    switch (op) {
      case BinaryOp::kEq: run([](auto x, auto y) { return x == y; }); break;
      case BinaryOp::kNe: run([](auto x, auto y) { return x != y; }); break;
      case BinaryOp::kLt: run([](auto x, auto y) { return x < y; }); break;
      case BinaryOp::kLe: run([](auto x, auto y) { return x <= y; }); break;
      case BinaryOp::kGt: run([](auto x, auto y) { return x > y; }); break;
      case BinaryOp::kGe: run([](auto x, auto y) { return x >= y; }); break;
      default: throw BindError("not a comparison operator");
    }
  }
};

// ---------------------------------------------------------------------------
// Predicate compilation
// ---------------------------------------------------------------------------

bool SameTypeClass(ValueType col, const Value& c) {
  if (col == ValueType::kString) return c.is_string();
  return c.is_numeric();
}

/// Compile a numeric scalar expression (columns of `slot`, numeric
/// constants, + - * /) into a NumNode tree, or nullptr when not covered.
/// String columns/constants are refused: the row engine throws BindError
/// when it actually evaluates one, and falling back preserves both the
/// error and the no-rows-no-error case.
NumNodePtr CompileNumNode(const Expr& e, const Table& table, const std::vector<Value>& params,
                          int32_t slot) {
  switch (e.kind) {
    case Expr::Kind::kColumn: {
      if (e.table_slot != slot || e.column_index < 0) return nullptr;
      const uint32_t col = static_cast<uint32_t>(e.column_index);
      if (table.column_store(col).type() == ValueType::kString) return nullptr;
      return std::make_unique<ColumnNumNode>(col);
    }
    case Expr::Kind::kLiteral:
    case Expr::Kind::kParam: {
      auto v = ConstValue(e, params);
      if (!v || v->is_string()) return nullptr;
      return std::make_unique<ConstNumNode>(*v);
    }
    case Expr::Kind::kArith: {
      auto l = CompileNumNode(*e.children[0], table, params, slot);
      if (!l) return nullptr;
      auto r = CompileNumNode(*e.children[1], table, params, slot);
      if (!r) return nullptr;
      return std::make_unique<ArithNumNode>(e.arith_op, std::move(l), std::move(r));
    }
    default:
      return nullptr;
  }
}

/// Compile `e` into a kernel tree over columns of table slot `slot`, or
/// nullptr when the shape is not covered (the whole query then falls back
/// to the row engine, which either handles it or raises the same error).
VecNodePtr CompileNode(const Expr& e, const Table& table, const std::vector<Value>& params,
                       int32_t slot) {
  auto column_of = [slot](const Expr& c) -> std::optional<uint32_t> {
    if (c.kind == Expr::Kind::kColumn && c.table_slot == slot && c.column_index >= 0) {
      return static_cast<uint32_t>(c.column_index);
    }
    return std::nullopt;
  };
  auto const_of = [&](const Expr& c) { return ConstValue(c, params); };

  switch (e.kind) {
    case Expr::Kind::kUnaryNot: {
      auto child = CompileNode(*e.children[0], table, params, slot);
      if (!child) return nullptr;
      return std::make_unique<NotNode>(std::move(child));
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        auto l = CompileNode(*e.children[0], table, params, slot);
        if (!l) return nullptr;
        auto r = CompileNode(*e.children[1], table, params, slot);
        if (!r) return nullptr;
        if (e.op == BinaryOp::kAnd) return std::make_unique<AndNode>(std::move(l), std::move(r));
        return std::make_unique<OrNode>(std::move(l), std::move(r));
      }
      if (!IsComparison(e.op)) return nullptr;
      if (e.children[0]->kind == Expr::Kind::kArith ||
          e.children[1]->kind == Expr::Kind::kArith) {
        // Arithmetic on either side: evaluate both sides as numeric vectors
        // and compare per EvalScalarCtx + Value::compare semantics.
        auto l = CompileNumNode(*e.children[0], table, params, slot);
        if (!l) return nullptr;
        auto r = CompileNumNode(*e.children[1], table, params, slot);
        if (!r) return nullptr;
        return std::make_unique<CmpNumNode>(std::move(l), std::move(r), e.op);
      }
      auto lcol = column_of(*e.children[0]);
      auto rcol = column_of(*e.children[1]);
      if (lcol && rcol) return std::make_unique<CmpColColNode>(*lcol, *rcol, e.op);
      auto lconst = lcol ? std::nullopt : const_of(*e.children[0]);
      auto rconst = rcol ? std::nullopt : const_of(*e.children[1]);
      if (lconst && rconst) {
        // Column-less conjunct: fold to a fixed truth value.
        if (lconst->is_null() || rconst->is_null()) return std::make_unique<TriConstNode>(kTriU);
        const auto cmp = lconst->compare(*rconst);
        bool v;
        switch (e.op) {
          case BinaryOp::kEq: v = cmp == std::strong_ordering::equal; break;
          case BinaryOp::kNe: v = cmp != std::strong_ordering::equal; break;
          case BinaryOp::kLt: v = cmp == std::strong_ordering::less; break;
          case BinaryOp::kLe: v = cmp != std::strong_ordering::greater; break;
          case BinaryOp::kGt: v = cmp == std::strong_ordering::greater; break;
          default: v = cmp != std::strong_ordering::less; break;
        }
        return std::make_unique<TriConstNode>(v ? kTriT : kTriF);
      }
      uint32_t col;
      Value c;
      BinaryOp op = e.op;
      if (lcol && rconst) {
        col = *lcol;
        c = *rconst;
      } else if (rcol && lconst) {
        col = *rcol;
        c = *lconst;
        switch (op) {  // flip operand order
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      } else {
        return nullptr;  // side is neither a local column nor a constant
      }
      if (c.is_null()) return std::make_unique<TriConstNode>(kTriU);
      const ValueType col_type = table.column_store(col).type();
      if (!SameTypeClass(col_type, c)) {
        // Cross-class comparison: Value's total order ranks numerics below
        // strings, the same for every non-null cell.
        const bool col_less = col_type != ValueType::kString;
        bool v;
        switch (op) {
          case BinaryOp::kEq: v = false; break;
          case BinaryOp::kNe: v = true; break;
          case BinaryOp::kLt: v = col_less; break;
          case BinaryOp::kLe: v = col_less; break;
          case BinaryOp::kGt: v = !col_less; break;
          default: v = !col_less; break;
        }
        return std::make_unique<FixedRankCmpNode>(col, v ? kTriT : kTriF);
      }
      return std::make_unique<CmpConstNode>(col, op, std::move(c));
    }
    case Expr::Kind::kBetween: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      auto lo = const_of(*e.children[1]);
      auto hi = const_of(*e.children[2]);
      if (!lo || !hi) return nullptr;
      if (lo->is_null() || hi->is_null()) return std::make_unique<TriConstNode>(kTriU);
      const ValueType col_type = table.column_store(*col).type();
      if (col_type == ValueType::kInt && lo->is_int() && hi->is_int()) {
        return std::make_unique<BetweenIntNode>(*col, lo->as_int(), hi->as_int(), e.negated);
      }
      // General form: AND of the two bound comparisons, NOT when negated —
      // equivalent under Kleene logic because both bounds are non-null.
      auto ge = [&]() -> VecNodePtr {
        if (!SameTypeClass(col_type, *lo)) {
          const bool col_less = col_type != ValueType::kString;  // col >= lo
          return std::make_unique<FixedRankCmpNode>(*col, !col_less ? kTriT : kTriF);
        }
        return std::make_unique<CmpConstNode>(*col, BinaryOp::kGe, *lo);
      }();
      auto le = [&]() -> VecNodePtr {
        if (!SameTypeClass(col_type, *hi)) {
          const bool col_less = col_type != ValueType::kString;  // col <= hi
          return std::make_unique<FixedRankCmpNode>(*col, col_less ? kTriT : kTriF);
        }
        return std::make_unique<CmpConstNode>(*col, BinaryOp::kLe, *hi);
      }();
      VecNodePtr both = std::make_unique<AndNode>(std::move(ge), std::move(le));
      if (e.negated) return std::make_unique<NotNode>(std::move(both));
      return both;
    }
    case Expr::Kind::kIn: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      auto node = std::make_unique<InNode>();
      node->col = *col;
      node->negated = e.negated;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = const_of(*e.children[i]);
        if (!item) return nullptr;
        if (item->is_null()) {
          node->has_null_member = true;
        } else if (item->is_int()) {
          node->int_members.push_back(item->as_int());
        } else if (item->is_double()) {
          node->double_members.push_back(item->as_double());
        } else {
          node->string_members.push_back(item->as_string());
        }
      }
      std::sort(node->int_members.begin(), node->int_members.end());
      std::sort(node->double_members.begin(), node->double_members.end());
      std::sort(node->string_members.begin(), node->string_members.end());
      return node;
    }
    case Expr::Kind::kLike: {
      auto col = column_of(*e.children[0]);
      auto pattern = const_of(*e.children[1]);
      if (!col || !pattern) return nullptr;
      if (pattern->is_null()) return std::make_unique<TriConstNode>(kTriU);
      // Non-string operands make the row engine throw BindError; fall back
      // so the behavior (and message) stays identical.
      if (!pattern->is_string()) return nullptr;
      if (table.column_store(*col).type() != ValueType::kString) return nullptr;
      return std::make_unique<LikeNode>(*col, pattern->as_string(), e.negated);
    }
    case Expr::Kind::kIsNull: {
      auto col = column_of(*e.children[0]);
      if (!col) return nullptr;
      return std::make_unique<IsNullNode>(*col, e.negated);
    }
    default:
      return nullptr;
  }
}

// ---------------------------------------------------------------------------
// Scan worker pool
// ---------------------------------------------------------------------------

/// A lazily-spawned pool shared by all scans in the process. Workers never
/// take table locks: they read under the calling thread's ReadLock, which
/// stays held until Run returns (see docs/EXECUTION.md and CONCURRENCY.md).
class ScanPool {
 public:
  static ScanPool& Instance() {
    static ScanPool pool;
    return pool;
  }

  /// Run fn(0..task_count-1) across the pool plus the calling thread;
  /// blocks until every task finished. At most `max_threads` threads
  /// (including the caller) participate. Rethrows the first task error.
  void Run(size_t task_count, size_t max_threads, const std::function<void(size_t)>& fn) {
    Job job;
    job.fn = &fn;
    job.count = task_count;
    job.max_participants = max_threads;
    {
      std::lock_guard<std::mutex> lk(m_);
      EnsureWorkersLocked();
      ++seq_;
      job_ = &job;
      job.participants = 1;  // the caller
    }
    cv_.notify_all();
    WorkOn(job);
    std::unique_lock<std::mutex> lk(m_);
    --job.participants;
    done_cv_.wait(lk, [&] { return job.participants == 0; });
    job_ = nullptr;
    if (job.error) std::rethrow_exception(job.error);
  }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t count = 0;
    size_t max_participants = 1;
    std::atomic<size_t> next{0};
    size_t participants = 0;     // guarded by m_
    std::exception_ptr error;    // guarded by m_
  };

  ~ScanPool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void EnsureWorkersLocked() {
    if (!workers_.empty()) return;
    const size_t n = kMaxScanThreads - 1;  // participation is capped per job
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkOn(Job& job) {
    for (;;) {
      const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.count) return;
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m_);
        if (!job.error) job.error = std::current_exception();
      }
    }
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || seq_ != seen; });
      if (stop_) return;
      seen = seq_;
      Job* job = job_;
      if (!job || job->participants >= job->max_participants) continue;
      ++job->participants;
      lk.unlock();
      WorkOn(*job);
      lk.lock();
      if (--job->participants == 0) done_cv_.notify_all();
    }
  }

  std::mutex m_;
  std::condition_variable cv_;       // workers: new job or stop
  std::condition_variable done_cv_;  // caller: all participants exited
  std::vector<std::thread> workers_;
  Job* job_ = nullptr;   // guarded by m_
  uint64_t seq_ = 0;     // guarded by m_
  bool stop_ = false;    // guarded by m_
};

// ---------------------------------------------------------------------------
// Filter driver: adaptive conjunct ordering + compaction
// ---------------------------------------------------------------------------

/// Per-scan (per-worker) runtime state of the compiled conjuncts. The
/// compiled nodes are shared and immutable; selectivity stats and ordering
/// are thread-local so parallel chunks adapt independently without sharing
/// mutable state.
struct FilterState {
  struct Conjunct {
    const VecNode* node;
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
  };
  std::vector<Conjunct> conjuncts;
  std::vector<size_t> order;  // evaluation order, re-sorted by pass rate
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t reorders = 0;

  explicit FilterState(const std::vector<VecNodePtr>& nodes) {
    conjuncts.reserve(nodes.size());
    for (const auto& n : nodes) conjuncts.push_back({n.get(), 0, 0});
    order.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) order[i] = i;
  }

  /// Keep only definitely-true rows of sel[0..n); returns the new count.
  size_t FilterBatch(const Table& table, RowId* sel, size_t n) {
    ++batches;
    rows_scanned += n;
    uint8_t states[kVectorBatchRows];
    for (size_t oi = 0; oi < order.size() && n > 0; ++oi) {
      Conjunct& c = conjuncts[order[oi]];
      c.node->Eval(Batch{&table, sel, n}, states);
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        if (states[i] == kTriT) sel[m++] = sel[i];
      }
      c.rows_in += n;
      c.rows_out += m;
      n = m;  // short-circuit: later conjuncts see only survivors
    }
    Reorder();
    return n;
  }

 private:
  /// Re-sort the evaluation order by observed pass rate (most selective
  /// first). Unobserved conjuncts keep rate 0 so the initial WHERE order
  /// is preserved until real data arrives (stable sort).
  void Reorder() {
    if (order.size() < 2) return;
    auto rate = [&](size_t i) {
      const Conjunct& c = conjuncts[i];
      return c.rows_in == 0 ? 0.0
                            : static_cast<double>(c.rows_out) / static_cast<double>(c.rows_in);
    };
    const std::vector<size_t> before = order;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return rate(a) < rate(b); });
    if (order != before) ++reorders;
  }
};

// ---------------------------------------------------------------------------
// Sinks: where filtered batches go
// ---------------------------------------------------------------------------

/// Aggregate one select item over a filtered batch using typed column
/// reads — no Value boxing on the scan path.
void AddAggBatch(exec::Accumulator& acc, const Table& table, int32_t column, const RowId* sel,
                 size_t n) {
  if (acc.func == AggFunc::kCountStar) {
    acc.count += static_cast<int64_t>(n);
    return;
  }
  const ColumnStore& col = table.column_store(static_cast<uint32_t>(column));
  switch (acc.func) {
    case AggFunc::kCount:
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(sel[i])) ++acc.count;
      }
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (col.type() == ValueType::kInt) {
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          acc.AddIntToSum(col.GetInt(r));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          acc.sum_is_int = false;
          acc.double_sum += col.GetDouble(r);
        }
      }
      break;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool want_min = acc.func == AggFunc::kMin;
      // Typed batch-local best, folded into the boxed running best once.
      bool seen = false;
      size_t best = 0;
      auto better = [&](auto a, auto b) { return want_min ? a < b : a > b; };
      if (col.type() == ValueType::kInt) {
        int64_t bv = 0;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const int64_t v = col.GetInt(r);
          if (!seen || better(v, bv)) { seen = true; bv = v; best = i; }
        }
      } else if (col.type() == ValueType::kDouble) {
        double bv = 0;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const double v = col.GetDouble(r);
          if (!seen || better(v, bv)) { seen = true; bv = v; best = i; }
        }
      } else {
        const std::string* bv = nullptr;
        for (size_t i = 0; i < n; ++i) {
          const RowId r = sel[i];
          if (col.IsNull(r)) continue;
          ++acc.count;
          const std::string& v = col.GetString(r);
          if (!bv || better(v, *bv)) { bv = &v; seen = true; best = i; }
        }
      }
      if (seen) {
        const Value v = col.Get(sel[best]);
        Value& slot = want_min ? acc.min : acc.max;
        if (slot.is_null() || (want_min ? v < slot : v > slot)) slot = v;
      }
      break;
    }
    default:
      break;
  }
}

/// Per-chunk output: exactly one of `rows` (projection) or the aggregate
/// state is populated; chunks are merged in chunk order so the final
/// result matches the serial scan's row/group order.
struct ChunkOutput {
  std::vector<Row> rows;
  std::vector<exec::Accumulator> accs;
  int64_t agg_rows_consumed = 0;
  exec::GroupState groups;
  // Packed grouping state (only when the query has a PackedLayout): a
  // direct LUT from packed index to dense group id, group ids assigned in
  // first-encounter order so the merged output order matches GroupState's.
  std::vector<int32_t> packed_lut;
  std::vector<std::vector<exec::Accumulator>> packed_accs;  // per group id
  std::vector<uint64_t> packed_of_gid;
  uint64_t batches = 0;
  uint64_t rows_scanned = 0;
  uint64_t reorders = 0;
};

/// Direct-array grouping layout for provably small all-int key spaces:
/// every group key packs into one array index (component 0 of each
/// dimension is reserved for NULL), so the per-row hash probe becomes a
/// handful of arithmetic ops and one array load.
struct PackedLayout {
  std::vector<int64_t> lo;        // per group column: min over live rows
  std::vector<uint64_t> dims;     // (max-lo+1)+1, the +1 for NULL
  std::vector<uint64_t> strides;  // mixed-radix strides
  uint64_t product = 0;           // total packed slots (<= kMaxPackedSlots)
};

/// Upper bound on the packed key space: one int32 LUT entry per slot keeps
/// a chunk's table at 256 KiB worst case.
constexpr uint64_t kMaxPackedSlots = uint64_t{1} << 16;
constexpr size_t kMaxPackedGroupCols = 8;

/// What a compiled query projects/aggregates, derived once per execution.
struct CompiledQuery {
  const BoundQuery* query = nullptr;
  const Table* table = nullptr;
  const SelectStmt* stmt = nullptr;
  std::vector<VecNodePtr> conjunct_nodes;
  std::vector<const Expr*> conjunct_exprs;  // parallel, feeds the planner
  bool grouped = false;
  bool has_aggregates = false;
  std::vector<uint32_t> group_cols;      // GROUP BY column indexes
  std::vector<int32_t> agg_cols;         // per aggregate item; -1 = COUNT(*)
  bool packable = false;                 // grouped and all group cols are int
  std::optional<PackedLayout> packed;    // set by RunCompiled when profitable
  // Projection plan when the select list carries scalar expressions;
  // empty for plain column/star lists (those read stmt->items directly).
  std::vector<NumNodePtr> scalar_nodes;  // one per kScalar item, in order
};

void ConsumeProjection(const CompiledQuery& cq, const RowId* sel, size_t n,
                       std::vector<Row>& out) {
  const Table& table = *cq.table;
  if (!cq.scalar_nodes.empty()) {
    // Evaluate each scalar expression once per batch, then box per row.
    std::vector<NumVec> scalars(cq.scalar_nodes.size());
    for (size_t s = 0; s < cq.scalar_nodes.size(); ++s) {
      cq.scalar_nodes[s]->Eval(table, sel, n, scalars[s]);
    }
    for (size_t i = 0; i < n; ++i) {
      const RowId r = sel[i];
      Row row;
      size_t scalar_index = 0;
      for (const SelectItem& item : cq.stmt->items) {
        switch (item.kind) {
          case SelectItem::Kind::kStar:
            for (size_t c = 0; c < table.schema().size(); ++c) {
              row.push_back(table.column_store(static_cast<uint32_t>(c)).Get(r));
            }
            break;
          case SelectItem::Kind::kScalar:
            row.push_back(scalars[scalar_index++].Box(i));
            break;
          default:
            row.push_back(
                table.column_store(static_cast<uint32_t>(item.expr->column_index)).Get(r));
            break;
        }
      }
      out.push_back(std::move(row));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    const RowId r = sel[i];
    Row row;
    for (const SelectItem& item : cq.stmt->items) {
      if (item.kind == SelectItem::Kind::kStar) {
        for (size_t c = 0; c < table.schema().size(); ++c) {
          row.push_back(table.column_store(static_cast<uint32_t>(c)).Get(r));
        }
      } else {
        row.push_back(table.column_store(static_cast<uint32_t>(item.expr->column_index)).Get(r));
      }
    }
    out.push_back(std::move(row));
  }
}

void ConsumeAggregate(const CompiledQuery& cq, const RowId* sel, size_t n, ChunkOutput& out) {
  if (!cq.grouped) {
    for (size_t a = 0; a < out.accs.size(); ++a) {
      AddAggBatch(out.accs[a], *cq.table, cq.agg_cols[a], sel, n);
    }
    out.agg_rows_consumed += static_cast<int64_t>(n);
    return;
  }
  const Table& table = *cq.table;
  if (cq.packed) {
    // Packed fast path: the key is an arithmetic index into a per-chunk
    // LUT — no Value boxing, no hashing, no probe chain.
    const PackedLayout& pl = *cq.packed;
    if (out.packed_lut.empty()) out.packed_lut.assign(pl.product, -1);
    const size_t gcols = cq.group_cols.size();
    const ColumnStore* gstore[kMaxPackedGroupCols] = {};
    for (size_t c = 0; c < gcols; ++c) gstore[c] = &table.column_store(cq.group_cols[c]);
    for (size_t i = 0; i < n; ++i) {
      const RowId r = sel[i];
      uint64_t idx = 0;
      for (size_t c = 0; c < gcols; ++c) {
        const uint64_t comp =
            gstore[c]->IsNull(r)
                ? 0
                : 1 + (static_cast<uint64_t>(gstore[c]->GetInt(r)) -
                       static_cast<uint64_t>(pl.lo[c]));
        idx += comp * pl.strides[c];
      }
      int32_t gid = out.packed_lut[idx];
      if (gid < 0) {
        gid = static_cast<int32_t>(out.packed_accs.size());
        out.packed_lut[idx] = gid;
        out.packed_accs.push_back(exec::MakeAccumulators(*cq.stmt));
        out.packed_of_gid.push_back(idx);
      }
      auto& accs = out.packed_accs[static_cast<size_t>(gid)];
      for (size_t a = 0; a < accs.size(); ++a) {
        AddAggBatch(accs[a], table, cq.agg_cols[a], &r, 1);
      }
    }
    return;
  }
  // Grouped: the hash probe runs per selected row (post-filter
  // cardinality) but the key stays in a stack buffer — TouchView only
  // boxes it on a group's first encounter, so the steady state does no
  // per-row allocation. See docs/EXECUTION.md "what stays row-at-a-time".
  constexpr size_t kMaxInlineKey = 8;
  const size_t gcols = cq.group_cols.size();
  Value keybuf[kMaxInlineKey];
  const ColumnStore* gstore[kMaxInlineKey] = {};
  if (gcols <= kMaxInlineKey) {
    for (size_t c = 0; c < gcols; ++c) gstore[c] = &table.column_store(cq.group_cols[c]);
  }
  for (size_t i = 0; i < n; ++i) {
    const RowId r = sel[i];
    std::vector<exec::Accumulator>* accs;
    if (gcols <= kMaxInlineKey) {
      for (size_t c = 0; c < gcols; ++c) keybuf[c] = gstore[c]->Get(r);
      accs = &out.groups.TouchView(keybuf, gcols, *cq.stmt);
    } else {
      Row key;
      key.reserve(gcols);
      for (uint32_t c : cq.group_cols) key.push_back(table.column_store(c).Get(r));
      accs = &out.groups.Touch(std::move(key), *cq.stmt);
    }
    for (size_t a = 0; a < accs->size(); ++a) {
      const RowId one = r;
      AddAggBatch((*accs)[a], table, cq.agg_cols[a], &one, 1);
    }
  }
}

/// Scan one row-id range (full scan) through the filter into a chunk output.
void ScanRange(const CompiledQuery& cq, RowId lo, RowId hi, ChunkOutput& out) {
  const Table& table = *cq.table;
  FilterState fs(cq.conjunct_nodes);
  RowId sel[kVectorBatchRows];
  size_t n = 0;
  auto flush = [&] {
    if (n == 0) return;
    const size_t kept = fs.FilterBatch(table, sel, n);
    if (kept > 0) {
      if (cq.has_aggregates || cq.grouped) {
        ConsumeAggregate(cq, sel, kept, out);
      } else {
        ConsumeProjection(cq, sel, kept, out.rows);
      }
    }
    n = 0;
  };
  for (RowId r = lo; r < hi; ++r) {
    if (!table.IsLive(r)) continue;
    sel[n++] = r;
    if (n == kVectorBatchRows) flush();
  }
  flush();
  out.batches += fs.batches;
  out.rows_scanned += fs.rows_scanned;
  out.reorders += fs.reorders;
}

/// Scan an explicit candidate list (index sargs) serially.
void ScanCandidates(const CompiledQuery& cq, const std::vector<RowId>& candidates,
                    ChunkOutput& out) {
  const Table& table = *cq.table;
  FilterState fs(cq.conjunct_nodes);
  RowId sel[kVectorBatchRows];
  size_t offset = 0;
  while (offset < candidates.size()) {
    const size_t n = std::min(kVectorBatchRows, candidates.size() - offset);
    std::copy(candidates.begin() + offset, candidates.begin() + offset + n, sel);
    const size_t kept = fs.FilterBatch(table, sel, n);
    if (kept > 0) {
      if (cq.has_aggregates || cq.grouped) {
        ConsumeAggregate(cq, sel, kept, out);
      } else {
        ConsumeProjection(cq, sel, kept, out.rows);
      }
    }
    offset += n;
  }
  out.batches += fs.batches;
  out.rows_scanned += fs.rows_scanned;
  out.reorders += fs.reorders;
}

// ---------------------------------------------------------------------------
// Query compilation and the top-level run
// ---------------------------------------------------------------------------

/// Compile a single-table query, or nullopt (with `reason` set) when its
/// shape is not covered.
std::optional<CompiledQuery> Compile(const BoundQuery& query, const std::vector<Value>& params,
                                     FallbackReason& reason) {
  if (query.tables().size() != 1) {
    reason = FallbackReason::kJoin;
    return std::nullopt;
  }
  CompiledQuery cq;
  cq.query = &query;
  cq.table = &query.table(0);
  cq.stmt = &query.stmt();
  const SelectStmt& stmt = *cq.stmt;

  cq.grouped = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) cq.has_aggregates = true;
  }

  if (stmt.where) {
    std::vector<const Expr*> conjuncts;
    exec::SplitConjuncts(*stmt.where, conjuncts);
    for (const Expr* conjunct : conjuncts) {
      auto node = CompileNode(*conjunct, *cq.table, params, 0);
      if (!node) {
        reason = FallbackReason::kExpression;
        return std::nullopt;
      }
      cq.conjunct_nodes.push_back(std::move(node));
      cq.conjunct_exprs.push_back(conjunct);
    }
  }

  cq.packable = cq.grouped && stmt.group_by.size() <= kMaxPackedGroupCols;
  for (const ExprPtr& g : stmt.group_by) {
    if (g->kind != Expr::Kind::kColumn || g->column_index < 0) {
      reason = FallbackReason::kShape;
      return std::nullopt;
    }
    cq.group_cols.push_back(static_cast<uint32_t>(g->column_index));
    if (cq.table->column_store(cq.group_cols.back()).type() != ValueType::kInt) {
      cq.packable = false;  // still runs, just on the hash GroupState path
    }
  }
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        if (cq.has_aggregates || cq.grouped) {
          reason = FallbackReason::kShape;  // binder rejects anyway
          return std::nullopt;
        }
        break;
      case SelectItem::Kind::kColumn:
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0) {
          reason = FallbackReason::kShape;
          return std::nullopt;
        }
        break;
      case SelectItem::Kind::kScalar: {
        // The binder keeps scalar items out of grouped/aggregate queries,
        // so these only show up in plain projections.
        auto node = item.expr ? CompileNumNode(*item.expr, *cq.table, params, 0) : nullptr;
        if (!node) {
          reason = FallbackReason::kExpression;
          return std::nullopt;
        }
        cq.scalar_nodes.push_back(std::move(node));
        break;
      }
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          cq.agg_cols.push_back(-1);
          break;
        }
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0) {
          reason = FallbackReason::kShape;
          return std::nullopt;
        }
        // SUM/AVG over a string column makes the row engine throw on the
        // first non-null cell; keep that behavior by not covering it.
        if ((item.func == AggFunc::kSum || item.func == AggFunc::kAvg) &&
            cq.table->column_store(static_cast<uint32_t>(item.expr->column_index)).type() ==
                ValueType::kString) {
          reason = FallbackReason::kType;
          return std::nullopt;
        }
        cq.agg_cols.push_back(item.expr->column_index);
        break;
    }
  }
  return cq;
}

/// Min/max pre-pass over live rows: if every group key fits a small packed
/// integer space, return the direct-array layout; otherwise nullopt (the
/// plain hash path runs — this is a layout choice, not a query fallback).
std::optional<PackedLayout> ComputePackedLayout(const CompiledQuery& cq) {
  const Table& table = *cq.table;
  const RowId slots = table.SlotCount();
  PackedLayout pl;
  pl.product = 1;
  for (uint32_t gc : cq.group_cols) {
    const ColumnStore& cs = table.column_store(gc);
    bool seen = false;
    int64_t lo = 0, hi = 0;
    for (RowId r = 0; r < slots; ++r) {
      if (!table.IsLive(r) || cs.IsNull(r)) continue;
      const int64_t v = cs.GetInt(r);
      if (!seen) {
        seen = true;
        lo = hi = v;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!seen) return std::nullopt;  // empty/all-NULL column: not worth it
    // Unsigned subtraction is exact for any int64 pair with hi >= lo.
    const uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    if (range >= kMaxPackedSlots) return std::nullopt;
    const uint64_t dim = range + 2;  // +1 inclusive range, +1 NULL slot
    pl.lo.push_back(lo);
    pl.dims.push_back(dim);
    pl.strides.push_back(pl.product);
    if (__builtin_mul_overflow(pl.product, dim, &pl.product) || pl.product > kMaxPackedSlots) {
      return std::nullopt;
    }
  }
  return pl;
}

void MergeChunk(const CompiledQuery& cq, ChunkOutput& total, ChunkOutput& chunk,
                ResultSet& result) {
  if (cq.has_aggregates || cq.grouped) {
    if (!cq.grouped) {
      for (size_t i = 0; i < total.accs.size(); ++i) total.accs[i].Merge(chunk.accs[i]);
      total.agg_rows_consumed += chunk.agg_rows_consumed;
    } else if (cq.packed) {
      // Reconstruct boxed keys from packed indexes in group-id order
      // (first-encounter order within the chunk), preserving the exact
      // group emission order of the hash path.
      const PackedLayout& pl = *cq.packed;
      for (size_t gid = 0; gid < chunk.packed_accs.size(); ++gid) {
        const uint64_t idx = chunk.packed_of_gid[gid];
        Row key;
        key.reserve(pl.dims.size());
        for (size_t c = 0; c < pl.dims.size(); ++c) {
          const uint64_t comp = (idx / pl.strides[c]) % pl.dims[c];
          key.push_back(comp == 0 ? Value::Null()
                                  : Value(static_cast<int64_t>(
                                        static_cast<uint64_t>(pl.lo[c]) + (comp - 1))));
        }
        auto& accs = total.groups.Touch(std::move(key), *cq.stmt);
        for (size_t a = 0; a < accs.size(); ++a) accs[a].Merge(chunk.packed_accs[gid][a]);
      }
    } else {
      total.groups.Merge(chunk.groups);
    }
  } else {
    for (Row& row : chunk.rows) result.AddRow(std::move(row));
  }
  total.batches += chunk.batches;
  total.rows_scanned += chunk.rows_scanned;
  total.reorders += chunk.reorders;
}

ResultSet RunCompiled(CompiledQuery& cq, const std::vector<Value>& params) {
  const Table& table = *cq.table;
  ResultSet result(exec::OutputColumnNames(*cq.query));

  // Decide the grouping layout once per execution, under the caller's
  // ReadLock (the min/max pre-pass reads live rows).
  if (cq.packable) cq.packed = ComputePackedLayout(cq);

  // The same planner the row engine runs — identical candidates, identical
  // scan order, so un-ORDERed outputs match row for row.
  auto candidates = IndexedCandidates(table, 0, cq.conjunct_exprs, params);

  ChunkOutput total;
  if (!cq.grouped && cq.has_aggregates) {
    total.accs = exec::MakeAccumulators(*cq.stmt);
  }

  bool parallel = false;
  if (candidates) {
    ChunkOutput chunk;
    if (!cq.grouped && cq.has_aggregates) chunk.accs = exec::MakeAccumulators(*cq.stmt);
    ScanCandidates(cq, *candidates, chunk);
    MergeChunk(cq, total, chunk, result);
  } else {
    const RowId slots = table.SlotCount();
    const size_t threads = EffectiveScanThreads();
    const size_t threshold = g_parallel_threshold.load(std::memory_order_relaxed);
    if (slots >= threshold && threads > 1) {
      parallel = true;
      // Several chunks per worker so uneven selectivity balances out; chunk
      // results merge in chunk order, reproducing the serial scan order.
      const size_t max_chunks = threads * 4;
      const size_t min_chunk_rows = std::max<size_t>(kVectorBatchRows * 4, slots / max_chunks);
      const size_t chunks = std::max<size_t>(1, std::min<size_t>(max_chunks, slots / min_chunk_rows));
      const RowId chunk_rows = (slots + chunks - 1) / chunks;
      std::vector<ChunkOutput> outputs(chunks);
      for (auto& out : outputs) {
        if (!cq.grouped && cq.has_aggregates) out.accs = exec::MakeAccumulators(*cq.stmt);
      }
      ScanPool::Instance().Run(chunks, threads, [&](size_t i) {
        const RowId lo = static_cast<RowId>(i) * chunk_rows;
        const RowId hi = std::min<RowId>(lo + chunk_rows, slots);
        if (lo < hi) ScanRange(cq, lo, hi, outputs[i]);
      });
      for (auto& out : outputs) MergeChunk(cq, total, out, result);
    } else {
      ChunkOutput chunk;
      if (!cq.grouped && cq.has_aggregates) chunk.accs = exec::MakeAccumulators(*cq.stmt);
      ScanRange(cq, 0, slots, chunk);
      MergeChunk(cq, total, chunk, result);
    }
  }

  if (cq.has_aggregates || cq.grouped) {
    exec::GroupState state;
    if (cq.grouped) {
      state = std::move(total.groups);
    } else if (total.agg_rows_consumed > 0) {
      // The single implicit group exists iff at least one row passed the
      // WHERE clause (matching the row engine's Consume).
      state.Touch(Row{}, *cq.stmt) = std::move(total.accs);
    }
    exec::EmitGroupRows(*cq.stmt, state, cq.grouped, result);
  }
  exec::ApplyOrderAndLimit(*cq.query, result);

  g_stats.batches.fetch_add(total.batches, std::memory_order_relaxed);
  g_stats.rows_scanned.fetch_add(total.rows_scanned, std::memory_order_relaxed);
  g_stats.conjunct_reorders.fetch_add(total.reorders, std::memory_order_relaxed);
  if (parallel) g_stats.parallel_scans.fetch_add(1, std::memory_order_relaxed);
  return result;
}

// ---------------------------------------------------------------------------
// Two-table equi-join execution
// ---------------------------------------------------------------------------

/// Cross-slot residual conjunct: slot-0 column OP slot-1 column, applied
/// per matched pair with Value::compare semantics.
struct PairCmp {
  uint32_t col0;
  uint32_t col1;
  BinaryOp op;
};

struct CompiledJoin {
  const BoundQuery* query = nullptr;
  const Table* tables[2] = {nullptr, nullptr};
  const SelectStmt* stmt = nullptr;
  uint32_t key_col[2] = {0, 0};
  bool key_is_string = false;
  std::vector<VecNodePtr> local_nodes[2];   // per-slot pre-join filters
  std::vector<const Expr*> local_exprs[2];  // parallel, feed the planner
  std::vector<PairCmp> residuals;
  bool grouped = false;
  bool has_aggregates = false;
  std::vector<std::pair<int32_t, uint32_t>> group_keys;  // (slot, column)
  std::vector<std::pair<int32_t, int32_t>> agg_args;     // (slot, column); slot -1 = COUNT(*)
};

void CollectSlotMask(const Expr& e, uint32_t& mask) {
  if (e.kind == Expr::Kind::kColumn) {
    if (e.table_slot >= 0 && e.table_slot < 32) mask |= (1u << e.table_slot);
    return;
  }
  for (const ExprPtr& c : e.children) CollectSlotMask(*c, mask);
}

BinaryOp FlipComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // kEq/kNe are symmetric
  }
}

/// Compile a two-table query, or nullopt (with `reason` set) when its
/// shape is not covered. Classification mirrors the row engine's RunJoin
/// exactly: the FIRST cross-slot `col = col` conjunct is the hash key,
/// single-slot (and slot-less) conjuncts are pre-join filters, and every
/// other cross-slot conjunct must be a column-vs-column comparison applied
/// per matched pair.
std::optional<CompiledJoin> CompileJoin(const BoundQuery& query, const std::vector<Value>& params,
                                        FallbackReason& reason) {
  reason = FallbackReason::kJoin;
  if (query.tables().size() != 2) return std::nullopt;
  CompiledJoin cj;
  cj.query = &query;
  cj.tables[0] = &query.table(0);
  cj.tables[1] = &query.table(1);
  cj.stmt = &query.stmt();
  const SelectStmt& stmt = *cj.stmt;
  cj.grouped = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kAggregate) cj.has_aggregates = true;
  }

  std::vector<const Expr*> conjuncts;
  if (stmt.where) exec::SplitConjuncts(*stmt.where, conjuncts);

  auto is_eq_colcol = [](const Expr& e) {
    return e.kind == Expr::Kind::kBinary && e.op == BinaryOp::kEq &&
           e.children[0]->kind == Expr::Kind::kColumn &&
           e.children[1]->kind == Expr::Kind::kColumn &&
           e.children[0]->table_slot != e.children[1]->table_slot;
  };
  const Expr* join_key = nullptr;
  for (const Expr* conjunct : conjuncts) {
    if (is_eq_colcol(*conjunct)) {
      join_key = conjunct;
      break;
    }
  }
  if (!join_key) return std::nullopt;  // nested-loop shape stays row-at-a-time

  for (const Expr* conjunct : conjuncts) {
    uint32_t mask = 0;
    CollectSlotMask(*conjunct, mask);
    if (mask == 0b11u) {
      if (conjunct == join_key) continue;
      if (conjunct->kind != Expr::Kind::kBinary || !IsComparison(conjunct->op)) {
        return std::nullopt;
      }
      const Expr& l = *conjunct->children[0];
      const Expr& r = *conjunct->children[1];
      if (l.kind != Expr::Kind::kColumn || r.kind != Expr::Kind::kColumn ||
          l.table_slot == r.table_slot || l.column_index < 0 || r.column_index < 0) {
        return std::nullopt;
      }
      if (l.table_slot == 0) {
        cj.residuals.push_back({static_cast<uint32_t>(l.column_index),
                                static_cast<uint32_t>(r.column_index), conjunct->op});
      } else {
        cj.residuals.push_back({static_cast<uint32_t>(r.column_index),
                                static_cast<uint32_t>(l.column_index),
                                FlipComparison(conjunct->op)});
      }
      continue;
    }
    // Single-slot conjunct; a slot-less (constant) conjunct filters both
    // sides, exactly like the row engine's LocalConjuncts.
    for (int32_t s = 0; s < 2; ++s) {
      if (mask != 0 && mask != (1u << s)) continue;
      auto node = CompileNode(*conjunct, *cj.tables[s], params, s);
      if (!node) {
        reason = FallbackReason::kExpression;
        return std::nullopt;
      }
      cj.local_nodes[s].push_back(std::move(node));
      cj.local_exprs[s].push_back(conjunct);
    }
  }

  const Expr& kl = *join_key->children[0];
  const Expr& kr = *join_key->children[1];
  if (kl.table_slot < 0 || kl.table_slot > 1 || kr.table_slot < 0 || kr.table_slot > 1 ||
      kl.column_index < 0 || kr.column_index < 0) {
    return std::nullopt;
  }
  cj.key_col[kl.table_slot] = static_cast<uint32_t>(kl.column_index);
  cj.key_col[kr.table_slot] = static_cast<uint32_t>(kr.column_index);
  const ValueType kt0 = cj.tables[0]->column_store(cj.key_col[0]).type();
  const ValueType kt1 = cj.tables[1]->column_store(cj.key_col[1]).type();
  if (kt0 == ValueType::kInt && kt1 == ValueType::kInt) {
    cj.key_is_string = false;
  } else if (kt0 == ValueType::kString && kt1 == ValueType::kString) {
    cj.key_is_string = true;
  } else {
    // Double or mixed-class keys keep the row engine's boxed-Value hashing.
    reason = FallbackReason::kType;
    return std::nullopt;
  }

  for (const ExprPtr& g : stmt.group_by) {
    if (g->kind != Expr::Kind::kColumn || g->column_index < 0 || g->table_slot < 0 ||
        g->table_slot > 1) {
      reason = FallbackReason::kShape;
      return std::nullopt;
    }
    cj.group_keys.emplace_back(g->table_slot, static_cast<uint32_t>(g->column_index));
  }
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        if (cj.has_aggregates || cj.grouped) {
          reason = FallbackReason::kShape;  // binder rejects anyway
          return std::nullopt;
        }
        break;
      case SelectItem::Kind::kColumn:
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0 ||
            item.expr->table_slot < 0 || item.expr->table_slot > 1) {
          reason = FallbackReason::kShape;
          return std::nullopt;
        }
        break;
      case SelectItem::Kind::kScalar:
        // Scalar projections over joins stay row-at-a-time for now.
        reason = FallbackReason::kExpression;
        return std::nullopt;
      case SelectItem::Kind::kAggregate:
        if (item.func == AggFunc::kCountStar) {
          cj.agg_args.emplace_back(-1, -1);
          break;
        }
        if (!item.expr || item.expr->kind != Expr::Kind::kColumn || item.expr->column_index < 0 ||
            item.expr->table_slot < 0 || item.expr->table_slot > 1) {
          reason = FallbackReason::kShape;
          return std::nullopt;
        }
        if ((item.func == AggFunc::kSum || item.func == AggFunc::kAvg) &&
            cj.tables[item.expr->table_slot]
                    ->column_store(static_cast<uint32_t>(item.expr->column_index))
                    .type() == ValueType::kString) {
          reason = FallbackReason::kType;
          return std::nullopt;
        }
        cj.agg_args.emplace_back(item.expr->table_slot, item.expr->column_index);
        break;
    }
  }
  return cj;
}

/// Vectorized FilteredSide: rows of `slot` passing all its local
/// conjuncts, in the row engine's scan order (index candidates when the
/// planner finds a sarg, rowid order otherwise).
std::vector<RowId> FilteredSideVec(const CompiledJoin& cj, int32_t slot,
                                   const std::vector<Value>& params, ChunkOutput& stats) {
  const Table& table = *cj.tables[slot];
  auto candidates = IndexedCandidates(table, slot, cj.local_exprs[slot], params);
  FilterState fs(cj.local_nodes[slot]);
  std::vector<RowId> out;
  RowId sel[kVectorBatchRows];
  size_t n = 0;
  auto flush = [&] {
    if (n == 0) return;
    const size_t kept = fs.FilterBatch(table, sel, n);
    out.insert(out.end(), sel, sel + kept);
    n = 0;
  };
  if (candidates) {
    for (RowId r : *candidates) {
      sel[n++] = r;
      if (n == kVectorBatchRows) flush();
    }
  } else {
    table.ForEachRow([&](RowId r) {
      sel[n++] = r;
      if (n == kVectorBatchRows) flush();
    });
  }
  flush();
  stats.batches += fs.batches;
  stats.rows_scanned += fs.rows_scanned;
  stats.reorders += fs.reorders;
  return out;
}

/// Keep pairs where `col0(s0[i]) OP col1(s1[i])` is definitely true,
/// replicating Value::compare across the two tables (NULL on either side
/// drops the pair, cross-class pairs take the fixed type-rank outcome).
/// Compacts both arrays in place; returns the surviving count.
size_t FilterPairs(const PairCmp& pc, const Table& t0, const Table& t1, RowId* s0, RowId* s1,
                   size_t n) {
  const ColumnStore& c0 = t0.column_store(pc.col0);
  const ColumnStore& c1 = t1.column_store(pc.col1);
  size_t m = 0;
  auto compact = [&](auto holds) {
    for (size_t i = 0; i < n; ++i) {
      if (c0.IsNull(s0[i]) || c1.IsNull(s1[i])) continue;
      if (!holds(i)) continue;
      s0[m] = s0[i];
      s1[m] = s1[i];
      ++m;
    }
  };
  auto with_op = [&](auto get0, auto get1) {
    switch (pc.op) {
      case BinaryOp::kEq: compact([&](size_t i) { return get0(i) == get1(i); }); break;
      case BinaryOp::kNe: compact([&](size_t i) { return get0(i) != get1(i); }); break;
      case BinaryOp::kLt: compact([&](size_t i) { return get0(i) < get1(i); }); break;
      case BinaryOp::kLe: compact([&](size_t i) { return get0(i) <= get1(i); }); break;
      case BinaryOp::kGt: compact([&](size_t i) { return get0(i) > get1(i); }); break;
      case BinaryOp::kGe: compact([&](size_t i) { return get0(i) >= get1(i); }); break;
      default: throw BindError("not a comparison operator");
    }
  };
  const bool num0 = c0.type() != ValueType::kString;
  const bool num1 = c1.type() != ValueType::kString;
  if (num0 && num1) {
    if (c0.type() == ValueType::kInt && c1.type() == ValueType::kInt) {
      with_op([&](size_t i) { return c0.GetInt(s0[i]); },
              [&](size_t i) { return c1.GetInt(s1[i]); });
    } else {
      auto num = [](const ColumnStore& c, const RowId* s) {
        return [&c, s](size_t i) {
          return c.type() == ValueType::kInt ? static_cast<double>(c.GetInt(s[i]))
                                             : c.GetDouble(s[i]);
        };
      };
      with_op(num(c0, s0), num(c1, s1));
    }
  } else if (!num0 && !num1) {
    with_op([&](size_t i) -> const std::string& { return c0.GetString(s0[i]); },
            [&](size_t i) -> const std::string& { return c1.GetString(s1[i]); });
  } else {
    // Cross-class: every non-null pair compares the same way (Value's
    // total order ranks numerics below strings).
    const auto rank = num0 ? std::strong_ordering::less : std::strong_ordering::greater;
    bool fixed;
    switch (pc.op) {
      case BinaryOp::kEq: fixed = false; break;
      case BinaryOp::kNe: fixed = true; break;
      case BinaryOp::kLt: fixed = rank == std::strong_ordering::less; break;
      case BinaryOp::kLe: fixed = rank != std::strong_ordering::greater; break;
      case BinaryOp::kGt: fixed = rank == std::strong_ordering::greater; break;
      case BinaryOp::kGe: fixed = rank != std::strong_ordering::less; break;
      default: throw BindError("not a comparison operator");
    }
    compact([&](size_t) { return fixed; });
  }
  return m;
}

/// splitmix64 finalizer: cheap full-avalanche mix for the open-addressing
/// build table.
inline uint64_t HashKey64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ResultSet RunJoinCompiled(const CompiledJoin& cj, const std::vector<Value>& params) {
  ResultSet result(exec::OutputColumnNames(*cj.query));
  const SelectStmt& stmt = *cj.stmt;
  ChunkOutput out;
  if (!cj.grouped && cj.has_aggregates) out.accs = exec::MakeAccumulators(stmt);

  // A side with no local conjuncts is the whole table in row-id order: its
  // filtered size is `table.size()` without a scan, and when it ends up as
  // the probe side the probe streams straight off ForEachRow instead of
  // materializing a million-entry row-id vector first.
  const bool whole0 = cj.local_exprs[0].empty();
  const bool whole1 = cj.local_exprs[1].empty();
  std::vector<RowId> side0, side1;
  if (!whole0) side0 = FilteredSideVec(cj, 0, params, out);
  if (!whole1) side1 = FilteredSideVec(cj, 1, params, out);
  const size_t size0 = whole0 ? cj.tables[0]->size() : side0.size();
  const size_t size1 = whole1 ? cj.tables[1]->size() : side1.size();

  // Build on the smaller filtered side — the row engine's exact tie-break,
  // so match pairs stream out in the same (probe-outer, build-insertion)
  // order and un-ORDERed results align row for row.
  const bool build0 = size0 <= size1;
  const int32_t bs = build0 ? 0 : 1;
  const int32_t ps = 1 - bs;
  std::vector<RowId>& build_rows = build0 ? side0 : side1;
  if ((build0 ? whole0 : whole1)) {  // the build pass needs the actual ids
    build_rows.reserve(cj.tables[bs]->size());
    cj.tables[bs]->ForEachRow([&](RowId r) { build_rows.push_back(r); });
    out.rows_scanned += build_rows.size();
  }
  const bool probe_whole = build0 ? whole1 : whole0;
  const std::vector<RowId>& probe_rows = build0 ? side1 : side0;
  const ColumnStore& build_store = cj.tables[bs]->column_store(cj.key_col[bs]);
  const ColumnStore& probe_store = cj.tables[ps]->column_store(cj.key_col[ps]);

  // Group build rows by key into contiguous per-key runs, insertion order
  // preserved (pass A counts and assigns key ids in first-encounter order,
  // pass B fills) — the same layout the row engine's
  // unordered_map<Value, vector<RowId>> yields, without boxing a key.
  std::vector<uint32_t> uid_of_row(build_rows.size(), UINT32_MAX);
  std::vector<uint32_t> counts;

  size_t cap = 16;
  while (cap < build_rows.size() * 2) cap <<= 1;
  std::vector<int64_t> int_keys;
  std::vector<int32_t> int_uid;
  // Direct-addressed alternative: when the build keys span a provably
  // narrow range, `(key - dir_lo)` indexes a dense uid array and the probe
  // needs no hash and no collision chain.
  constexpr uint64_t kMaxDirectSlots = 1ull << 20;
  bool direct = false;
  int64_t dir_lo = 0;
  std::vector<int32_t> dir_uid;
  std::unordered_map<std::string_view, uint32_t> intern;

  if (!cj.key_is_string) {
    // Gather non-null build keys once, tracking their range.
    std::vector<int64_t> bkeys(build_rows.size());
    std::vector<uint8_t> bvalid(build_rows.size(), 0);
    int64_t lo = 0, hi = 0;
    bool any = false;
    for (size_t i = 0; i < build_rows.size(); ++i) {
      const RowId r = build_rows[i];
      if (build_store.IsNull(r)) continue;  // NULL never equi-joins
      const int64_t k = build_store.GetInt(r);
      bkeys[i] = k;
      bvalid[i] = 1;
      lo = any ? std::min(lo, k) : k;
      hi = any ? std::max(hi, k) : k;
      any = true;
    }
    const uint64_t range =
        any ? static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) : 0;
    if (any && range < kMaxDirectSlots) {
      direct = true;
      dir_lo = lo;
      dir_uid.assign(range + 1, -1);
      for (size_t i = 0; i < build_rows.size(); ++i) {
        if (!bvalid[i]) continue;
        int32_t& u =
            dir_uid[static_cast<uint64_t>(bkeys[i]) - static_cast<uint64_t>(lo)];
        if (u < 0) {
          u = static_cast<int32_t>(counts.size());
          counts.push_back(0);
        }
        uid_of_row[i] = static_cast<uint32_t>(u);
        ++counts[u];
      }
    } else {
      int_keys.resize(cap);
      int_uid.assign(cap, -1);
      for (size_t i = 0; i < build_rows.size(); ++i) {
        if (!bvalid[i]) continue;
        const int64_t k = bkeys[i];
        size_t h = HashKey64(static_cast<uint64_t>(k)) & (cap - 1);
        while (int_uid[h] >= 0 && int_keys[h] != k) h = (h + 1) & (cap - 1);
        if (int_uid[h] < 0) {
          int_uid[h] = static_cast<int32_t>(counts.size());
          int_keys[h] = k;
          counts.push_back(0);
        }
        uid_of_row[i] = static_cast<uint32_t>(int_uid[h]);
        ++counts[uid_of_row[i]];
      }
    }
  } else {
    intern.reserve(build_rows.size());
    for (size_t i = 0; i < build_rows.size(); ++i) {
      const RowId r = build_rows[i];
      if (build_store.IsNull(r)) continue;
      // The view points into ColumnStore's string storage, stable under
      // the caller's ReadLock for the whole join.
      const std::string& s = build_store.GetString(r);
      auto [it, inserted] =
          intern.try_emplace(std::string_view(s), static_cast<uint32_t>(counts.size()));
      if (inserted) counts.push_back(0);
      uid_of_row[i] = it->second;
      ++counts[uid_of_row[i]];
    }
  }

  std::vector<uint32_t> starts(counts.size() + 1, 0);
  for (size_t u = 0; u < counts.size(); ++u) starts[u + 1] = starts[u] + counts[u];
  std::vector<RowId> rows_flat(starts.back());
  std::vector<uint32_t> fill(counts.size(), 0);
  for (size_t i = 0; i < build_rows.size(); ++i) {
    const uint32_t u = uid_of_row[i];
    if (u == UINT32_MAX) continue;
    rows_flat[starts[u] + fill[u]++] = build_rows[i];
  }

  // Matched pairs stream through slot-indexed selection vectors; a batch
  // flushes through the residual compaction into the sinks. A probe row's
  // matches may straddle a flush — order is still preserved.
  RowId sel0[kVectorBatchRows];
  RowId sel1[kVectorBatchRows];
  size_t np = 0;
  uint64_t pairs_consumed = 0;
  constexpr size_t kMaxInlineKey = 8;
  Value keybuf[kMaxInlineKey];

  auto flush_pairs = [&] {
    if (np == 0) return;
    ++out.batches;
    out.rows_scanned += np;
    size_t n = np;
    np = 0;
    for (const PairCmp& pc : cj.residuals) {
      n = FilterPairs(pc, *cj.tables[0], *cj.tables[1], sel0, sel1, n);
      if (n == 0) return;
    }
    pairs_consumed += n;
    if (cj.has_aggregates && !cj.grouped) {
      for (size_t a = 0; a < out.accs.size(); ++a) {
        const auto [slot, col] = cj.agg_args[a];
        if (slot < 0) {
          out.accs[a].count += static_cast<int64_t>(n);
        } else {
          AddAggBatch(out.accs[a], *cj.tables[slot], col, slot == 0 ? sel0 : sel1, n);
        }
      }
      return;
    }
    if (cj.grouped) {
      const size_t gcols = cj.group_keys.size();
      for (size_t i = 0; i < n; ++i) {
        std::vector<exec::Accumulator>* accs;
        if (gcols <= kMaxInlineKey) {
          for (size_t c = 0; c < gcols; ++c) {
            const auto [slot, col] = cj.group_keys[c];
            keybuf[c] = cj.tables[slot]->column_store(col).Get(slot == 0 ? sel0[i] : sel1[i]);
          }
          accs = &out.groups.TouchView(keybuf, gcols, stmt);
        } else {
          Row key;
          key.reserve(gcols);
          for (const auto& [slot, col] : cj.group_keys) {
            key.push_back(cj.tables[slot]->column_store(col).Get(slot == 0 ? sel0[i] : sel1[i]));
          }
          accs = &out.groups.Touch(std::move(key), stmt);
        }
        for (size_t a = 0; a < accs->size(); ++a) {
          const auto [slot, col] = cj.agg_args[a];
          if (slot < 0) {
            ++(*accs)[a].count;
          } else {
            const RowId one = slot == 0 ? sel0[i] : sel1[i];
            AddAggBatch((*accs)[a], *cj.tables[slot], col, &one, 1);
          }
        }
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      Row row;
      for (const SelectItem& item : stmt.items) {
        if (item.kind == SelectItem::Kind::kStar) {
          for (int32_t slot = 0; slot < 2; ++slot) {
            const Table& t = *cj.tables[slot];
            const RowId r = slot == 0 ? sel0[i] : sel1[i];
            for (size_t c = 0; c < t.schema().size(); ++c) {
              row.push_back(t.column_store(static_cast<uint32_t>(c)).Get(r));
            }
          }
        } else {
          const int32_t slot = item.expr->table_slot;
          row.push_back(cj.tables[slot]
                            ->column_store(static_cast<uint32_t>(item.expr->column_index))
                            .Get(slot == 0 ? sel0[i] : sel1[i]));
        }
      }
      result.AddRow(std::move(row));
    }
  };

  auto emit_matches = [&](uint32_t uid, RowId prow) {
    for (uint32_t idx = starts[uid]; idx < starts[uid + 1]; ++idx) {
      if (bs == 0) {
        sel0[np] = rows_flat[idx];
        sel1[np] = prow;
      } else {
        sel0[np] = prow;
        sel1[np] = rows_flat[idx];
      }
      if (++np == kVectorBatchRows) flush_pairs();
    }
  };

  // An unfiltered probe side streams straight off the liveness bitmap —
  // ForEachRow visits the same ascending row ids FilteredSideVec would
  // have materialized, so pair order is unchanged.
  auto for_each_probe = [&](auto&& probe_one) {
    if (probe_whole) {
      cj.tables[ps]->ForEachRow(probe_one);
      out.rows_scanned += cj.tables[ps]->size();
    } else {
      for (RowId prow : probe_rows) probe_one(prow);
    }
  };
  if (direct) {
    for_each_probe([&](RowId prow) {
      if (probe_store.IsNull(prow)) return;
      const uint64_t idx = static_cast<uint64_t>(probe_store.GetInt(prow)) -
                           static_cast<uint64_t>(dir_lo);
      if (idx >= dir_uid.size()) return;  // below-range keys wrap huge
      const int32_t uid = dir_uid[idx];
      if (uid < 0) return;
      emit_matches(static_cast<uint32_t>(uid), prow);
    });
  } else if (!cj.key_is_string) {
    for_each_probe([&](RowId prow) {
      if (probe_store.IsNull(prow)) return;
      const int64_t k = probe_store.GetInt(prow);
      size_t h = HashKey64(static_cast<uint64_t>(k)) & (cap - 1);
      int32_t uid = -1;
      while (int_uid[h] >= 0) {
        if (int_keys[h] == k) {
          uid = int_uid[h];
          break;
        }
        h = (h + 1) & (cap - 1);
      }
      if (uid < 0) return;
      emit_matches(static_cast<uint32_t>(uid), prow);
    });
  } else {
    for_each_probe([&](RowId prow) {
      if (probe_store.IsNull(prow)) return;
      auto it = intern.find(std::string_view(probe_store.GetString(prow)));
      if (it == intern.end()) return;
      emit_matches(it->second, prow);
    });
  }
  flush_pairs();

  if (cj.has_aggregates || cj.grouped) {
    exec::GroupState state;
    if (cj.grouped) {
      state = std::move(out.groups);
    } else if (pairs_consumed > 0) {
      // The single implicit group exists iff at least one pair survived
      // the full WHERE (matching the row engine's Consume).
      state.Touch(Row{}, stmt) = std::move(out.accs);
    }
    exec::EmitGroupRows(stmt, state, cj.grouped, result);
  }
  exec::ApplyOrderAndLimit(*cj.query, result);

  g_stats.batches.fetch_add(out.batches, std::memory_order_relaxed);
  g_stats.rows_scanned.fetch_add(out.rows_scanned, std::memory_order_relaxed);
  g_stats.conjunct_reorders.fetch_add(out.reorders, std::memory_order_relaxed);
  return result;
}

}  // namespace

VectorizedStats GetVectorizedStats() {
  VectorizedStats s;
  s.queries_vectorized = g_stats.queries_vectorized.load(std::memory_order_relaxed);
  s.queries_fallback = g_stats.queries_fallback.load(std::memory_order_relaxed);
  s.fallback_join = g_stats.fallback_join.load(std::memory_order_relaxed);
  s.fallback_expression = g_stats.fallback_expression.load(std::memory_order_relaxed);
  s.fallback_shape = g_stats.fallback_shape.load(std::memory_order_relaxed);
  s.fallback_type = g_stats.fallback_type.load(std::memory_order_relaxed);
  s.joins_vectorized = g_stats.joins_vectorized.load(std::memory_order_relaxed);
  s.batches = g_stats.batches.load(std::memory_order_relaxed);
  s.rows_scanned = g_stats.rows_scanned.load(std::memory_order_relaxed);
  s.parallel_scans = g_stats.parallel_scans.load(std::memory_order_relaxed);
  s.conjunct_reorders = g_stats.conjunct_reorders.load(std::memory_order_relaxed);
  return s;
}

std::optional<ResultSet> TryExecuteVectorized(const BoundQuery& query,
                                              const std::vector<Value>& params) {
  if (!g_enabled.load(std::memory_order_relaxed)) return std::nullopt;
  if (params.size() < query.stmt().param_count) {
    throw BindError("statement needs " + std::to_string(query.stmt().param_count) +
                    " parameters, got " + std::to_string(params.size()));
  }
  if (query.tables().size() >= 2) {
    FallbackReason reason = FallbackReason::kJoin;
    auto join = CompileJoin(query, params, reason);
    if (!join) {
      CountFallback(reason);
      return std::nullopt;
    }
    g_stats.queries_vectorized.fetch_add(1, std::memory_order_relaxed);
    g_stats.joins_vectorized.fetch_add(1, std::memory_order_relaxed);
    return RunJoinCompiled(*join, params);
  }
  FallbackReason reason = FallbackReason::kExpression;
  auto compiled = Compile(query, params, reason);
  if (!compiled) {
    CountFallback(reason);
    return std::nullopt;
  }
  g_stats.queries_vectorized.fetch_add(1, std::memory_order_relaxed);
  return RunCompiled(*compiled, params);
}

bool SetVectorizedEnabled(bool enabled) { return g_enabled.exchange(enabled); }
size_t SetParallelScanThreshold(size_t rows) { return g_parallel_threshold.exchange(rows); }
size_t SetScanThreads(size_t threads) { return g_scan_threads.exchange(threads); }

}  // namespace qc::sql
